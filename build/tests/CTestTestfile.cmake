# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/assembler_test[1]_include.cmake")
include("/root/repo/build/tests/linker_test[1]_include.cmake")
include("/root/repo/build/tests/memsys_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/epoxie_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/traced_system_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
