// wrlverify: the static instrumentation verifier CLI.
//
// Rebuilds the same artifacts the harness runs — the instrumented kernel
// and every paper workload, in epoxie mode and the pixie baseline — and
// runs the wrl_verify passes (shape, liveness, relocation, tracetable,
// scavenge) over each instrumented object plus the image-level audit over
// each linked executable.  Object targets also carry the static dilation
// prediction (per-procedure text growth, trace words per visit, memtrace
// density) computed by src/dataflow.  This is the CI gate: any
// error-severity finding makes the tool exit nonzero.
//
// Usage:
//   wrlverify [--json PATH] [--scale F] [--jobs N] [--quiet]
//
// --jobs audits targets on a worker pool; findings and the report order
// stay deterministic regardless of N (results are slot-indexed and
// printed in task order).
//
// --json writes the machine-readable report (schema "wrlverify/1"):
//   {
//     "schema": "wrlverify/1",
//     "targets": [{"name": ..., "report": {...}, "dilation": {...}}, ...],
//     "totals": {"targets": N, "errors": N, "warnings": N, ...}
//   }
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "asm/assembler.h"
#include "dataflow/dilation.h"
#include "epoxie/epoxie.h"
#include "kernel/kernel_asm.h"
#include "kernel/kernel_config.h"
#include "kernel/system_build.h"
#include "obj/object_file.h"
#include "stats/stats.h"
#include "support/error.h"
#include "support/json.h"
#include "support/strings.h"
#include "trace/abi.h"
#include "trace/support_asm.h"
#include "verify/verify.h"
#include "workloads/workloads.h"

using namespace wrl;

namespace {

struct TargetResult {
  VerifyReport report;
  // Static dilation prediction; object targets only.
  std::optional<DilationPrediction> dilation;
};

struct Task {
  std::string name;
  std::function<TargetResult()> run;
};

struct TargetReport {
  std::string name;
  TargetResult result;
};

const char* ModeName(InstrumentMode mode) {
  return mode == InstrumentMode::kEpoxie ? "epoxie" : "pixie";
}

// The absolute bookkeeping-area symbol the user link environment provides
// (mirrors the harness's link recipe in src/kernel/system_build.cc).
ObjectFile UserAbsSymbols() {
  ObjectFile obj;
  obj.source_name = "user-abs";
  Symbol bk;
  bk.name = "bk_area";
  bk.value = kUserBkBase;
  bk.section = SectionId::kAbs;
  bk.global = true;
  obj.symbols.push_back(bk);
  return obj;
}

TargetResult ObjectTarget(const ObjectFile& orig, const InstrumentResult& res,
                          const EpoxieConfig& config, uint32_t text_base) {
  VerifyOptions options;
  options.epoxie = config;
  options.text_base = text_base;
  TargetResult out;
  out.report = VerifyInstrumentedObject(orig, res, options);
  out.dilation = PredictDilation(orig, res);
  return out;
}

// Runs every task, optionally on a worker pool; results keep task order.
std::vector<TargetReport> RunTasks(const std::vector<Task>& tasks, unsigned jobs) {
  std::vector<TargetResult> results(tasks.size());
  std::vector<std::exception_ptr> errors(tasks.size());
  if (jobs <= 1) {
    for (size_t t = 0; t < tasks.size(); ++t) {
      try {
        results[t] = tasks[t].run();
      } catch (...) {
        errors[t] = std::current_exception();
      }
    }
  } else {
    std::atomic<size_t> next{0};
    auto worker = [&]() {
      for (;;) {
        const size_t t = next.fetch_add(1);
        if (t >= tasks.size()) {
          return;
        }
        try {
          results[t] = tasks[t].run();
        } catch (...) {
          errors[t] = std::current_exception();
        }
      }
    };
    const unsigned n = static_cast<unsigned>(std::min<size_t>(jobs, tasks.size()));
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (unsigned k = 0; k < n; ++k) {
      threads.emplace_back(worker);
    }
    for (std::thread& th : threads) {
      th.join();
    }
  }
  for (size_t t = 0; t < tasks.size(); ++t) {
    if (errors[t]) {
      std::rethrow_exception(errors[t]);
    }
  }
  std::vector<TargetReport> out;
  out.reserve(tasks.size());
  for (size_t t = 0; t < tasks.size(); ++t) {
    out.push_back({tasks[t].name, std::move(results[t])});
  }
  return out;
}

void PrintTarget(const TargetReport& t, bool quiet) {
  const VerifyReport& report = t.result.report;
  if (!quiet) {
    std::string growth;
    if (t.result.dilation.has_value()) {
      growth = StrFormat("  growth %.2fx", t.result.dilation->Growth());
    }
    printf("%-38s %5llu blocks %7llu insts %5llu relocs  %llu errors, %llu warnings%s\n",
           t.name.c_str(), static_cast<unsigned long long>(report.stats.blocks),
           static_cast<unsigned long long>(report.stats.instructions),
           static_cast<unsigned long long>(report.stats.relocations),
           static_cast<unsigned long long>(report.stats.errors),
           static_cast<unsigned long long>(report.stats.warnings), growth.c_str());
  }
  for (const VerifyFinding& f : report.findings) {
    fprintf(f.severity == VerifySeverity::kError ? stderr : stdout,
            "  [%s] %s: pc=0x%08x block=%d%s%s: %s\n", VerifySeverityName(f.severity),
            VerifyPassName(f.pass), f.pc, f.block, f.symbol.empty() ? "" : " sym=",
            f.symbol.c_str(), f.message.c_str());
  }
}

void WriteDilationJson(JsonWriter& writer, const DilationPrediction& d) {
  writer.BeginObject();
  writer.KV("orig_insts", d.orig_insts);
  writer.KV("instr_words", d.instr_words);
  writer.KV("mem_ops", d.mem_ops);
  writer.KV("trace_words_per_visit", d.trace_words_per_visit);
  writer.KV("ra_dead_leaders", static_cast<uint64_t>(d.ra_dead_leaders));
  writer.KV("growth", d.Growth());
  writer.KV("memtrace_density", d.MemtraceDensity());
  writer.Key("procs");
  writer.BeginArray();
  for (const ProcDilation& p : d.procs) {
    writer.BeginObject();
    writer.KV("name", p.name);
    writer.KV("addr", StrFormat("0x%x", p.addr));
    writer.KV("blocks", static_cast<uint64_t>(p.blocks));
    writer.KV("orig_insts", static_cast<uint64_t>(p.orig_insts));
    writer.KV("instr_words", static_cast<uint64_t>(p.instr_words));
    writer.KV("mem_ops", static_cast<uint64_t>(p.mem_ops));
    writer.KV("trace_words_per_visit", static_cast<uint64_t>(p.trace_words_per_visit));
    writer.KV("ra_dead_leaders", static_cast<uint64_t>(p.ra_dead_leaders));
    writer.KV("growth", p.Growth());
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
}

void WriteJsonReport(const std::string& path, const std::vector<TargetReport>& targets,
                     const StatsRegistry& registry) {
  JsonWriter writer;
  writer.BeginObject();
  writer.KV("schema", "wrlverify/1");
  writer.Key("targets");
  writer.BeginArray();
  for (const TargetReport& t : targets) {
    writer.BeginObject();
    writer.KV("name", t.name);
    writer.Key("report");
    t.result.report.WriteJson(writer);
    if (t.result.dilation.has_value()) {
      writer.Key("dilation");
      WriteDilationJson(writer, *t.result.dilation);
    }
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("totals");
  writer.BeginObject();
  writer.KV("targets", static_cast<uint64_t>(targets.size()));
  for (const std::string& name : registry.Names()) {
    writer.KV(name, registry.CounterValue(name));
  }
  writer.EndObject();
  writer.EndObject();
  std::ofstream out(path);
  if (!out) {
    throw Error("wrlverify: cannot write " + path);
  }
  out << writer.TakeString() << "\n";
}

int Run(int argc, char** argv) {
  std::string json_path;
  double scale = 1.0;
  unsigned jobs = 1;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--scale" && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::atoi(argv[++i]));
      if (jobs == 0) {
        jobs = std::max(1u, std::thread::hardware_concurrency());
      }
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      fprintf(stderr, "usage: wrlverify [--json PATH] [--scale F] [--jobs N] [--quiet]\n");
      return 2;
    }
  }

  // ---- Shared inputs, assembled once up front (the tasks only read) ----
  ObjectFile kernel_obj = Assemble("kernel.s", KernelAsm());
  ObjectFile support = Assemble("support.s", TraceSupportAsm());
  ObjectFile userlib = Assemble("userlib.s", UserLibAsm());
  ObjectFile abs = UserAbsSymbols();
  std::vector<WorkloadSpec> workloads = PaperWorkloads(scale);
  WorkloadSpec server;
  server.name = "server";
  server.source = ServerAsm();
  workloads.push_back(server);

  std::vector<Task> tasks;

  // ---- Kernel: epoxie-instrumented object + linked image ----
  tasks.push_back({"kernel/epoxie", [&]() {
    EpoxieConfig config;
    InstrumentResult ikernel = Instrument(kernel_obj, config);
    return ObjectTarget(kernel_obj, ikernel, config, kKseg0);
  }});
  tasks.push_back({"kernel/epoxie/image", [&]() {
    EpoxieConfig config;
    InstrumentResult ikernel = Instrument(kernel_obj, config);
    LinkOptions kopts;
    kopts.text_base = kKseg0;
    kopts.fixed_data_base = kKernelDataBase;
    kopts.entry_symbol = "_start";
    TargetResult out;
    out.report = VerifyImage(Link({ikernel.object, support}, kopts));
    return out;
  }});

  // ---- User programs: every workload plus the Mach server, both modes ----
  for (InstrumentMode mode : {InstrumentMode::kEpoxie, InstrumentMode::kPixie}) {
    tasks.push_back({std::string("userlib/") + ModeName(mode), [&userlib, mode]() {
      EpoxieConfig config;
      config.mode = mode;
      InstrumentResult ilib = Instrument(userlib, config);
      return ObjectTarget(userlib, ilib, config, kUserTracedTextBase);
    }});
    for (const WorkloadSpec& w : workloads) {
      tasks.push_back({w.name + "/" + ModeName(mode), [&w, mode]() {
        EpoxieConfig config;
        config.mode = mode;
        ObjectFile prog = Assemble(w.name + ".s", w.source);
        InstrumentResult iprog = Instrument(prog, config);
        return ObjectTarget(prog, iprog, config, kUserTracedTextBase);
      }});
      tasks.push_back({w.name + "/" + ModeName(mode) + "/image",
                       [&userlib, &support, &abs, &w, mode]() {
        EpoxieConfig config;
        config.mode = mode;
        InstrumentResult ilib = Instrument(userlib, config);
        ObjectFile prog = Assemble(w.name + ".s", w.source);
        InstrumentResult iprog = Instrument(prog, config);
        LinkOptions orig_opts;
        orig_opts.text_base = kUserTextBase;
        Executable orig_exe = Link({userlib, prog}, orig_opts);
        LinkOptions traced_opts;
        traced_opts.text_base = kUserTracedTextBase;
        traced_opts.fixed_data_base = orig_exe.data_base;
        TargetResult out;
        out.report = VerifyImage(Link({ilib.object, iprog.object, support, abs}, traced_opts));
        return out;
      }});
    }
  }

  std::vector<TargetReport> targets = RunTasks(tasks, jobs);

  // ---- Totals, wrlstats binding, JSON report ----
  VerifyReport total;
  for (const TargetReport& t : targets) {
    PrintTarget(t, quiet);
    total.Merge(t.result.report);
  }
  StatsRegistry registry;
  total.RegisterStats(registry);
  if (!quiet) {
    printf("\n%zu targets: %llu blocks, %llu instructions, %llu memory ops, "
           "%llu relocations — %llu errors, %llu warnings\n",
           targets.size(), static_cast<unsigned long long>(total.stats.blocks),
           static_cast<unsigned long long>(total.stats.instructions),
           static_cast<unsigned long long>(total.stats.mem_ops),
           static_cast<unsigned long long>(total.stats.relocations),
           static_cast<unsigned long long>(total.stats.errors),
           static_cast<unsigned long long>(total.stats.warnings));
  }
  if (!json_path.empty()) {
    WriteJsonReport(json_path, targets, registry);
  }
  return total.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::exception& e) {
    fprintf(stderr, "wrlverify: %s\n", e.what());
    return 2;
  }
}
