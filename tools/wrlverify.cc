// wrlverify: the static instrumentation verifier CLI.
//
// Rebuilds the same artifacts the harness runs — the instrumented kernel
// and every paper workload, in epoxie mode and the pixie baseline — and
// runs the wrl_verify passes (shape, liveness, relocation, tracetable)
// over each instrumented object plus the image-level audit over each
// linked executable.  This is the CI gate: any error-severity finding
// makes the tool exit nonzero.
//
// Usage:
//   wrlverify [--json PATH] [--scale F] [--quiet]
//
// --json writes the machine-readable report (schema "wrlverify/1"):
//   {
//     "schema": "wrlverify/1",
//     "targets": [{"name": ..., "stats": {...}, "findings": [...]}, ...],
//     "totals": {"targets": N, "errors": N, "warnings": N, ...}
//   }
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "asm/assembler.h"
#include "epoxie/epoxie.h"
#include "kernel/kernel_asm.h"
#include "kernel/kernel_config.h"
#include "kernel/system_build.h"
#include "obj/object_file.h"
#include "stats/stats.h"
#include "support/error.h"
#include "support/json.h"
#include "trace/abi.h"
#include "trace/support_asm.h"
#include "verify/verify.h"
#include "workloads/workloads.h"

using namespace wrl;

namespace {

struct TargetReport {
  std::string name;
  VerifyReport report;
};

const char* ModeName(InstrumentMode mode) {
  return mode == InstrumentMode::kEpoxie ? "epoxie" : "pixie";
}

// The absolute bookkeeping-area symbol the user link environment provides
// (mirrors the harness's link recipe in src/kernel/system_build.cc).
ObjectFile UserAbsSymbols() {
  ObjectFile obj;
  obj.source_name = "user-abs";
  Symbol bk;
  bk.name = "bk_area";
  bk.value = kUserBkBase;
  bk.section = SectionId::kAbs;
  bk.global = true;
  obj.symbols.push_back(bk);
  return obj;
}

class Runner {
 public:
  explicit Runner(bool quiet) : quiet_(quiet) {}

  void AddObjectTarget(const std::string& name, const ObjectFile& orig,
                       const InstrumentResult& res, const EpoxieConfig& config,
                       uint32_t text_base) {
    VerifyOptions options;
    options.epoxie = config;
    options.text_base = text_base;
    Finish(name, VerifyInstrumentedObject(orig, res, options));
  }

  void AddImageTarget(const std::string& name, const Executable& exe) {
    Finish(name, VerifyImage(exe));
  }

  const std::vector<TargetReport>& targets() const { return targets_; }
  const VerifyReport& total() const { return total_; }

 private:
  void Finish(const std::string& name, VerifyReport report) {
    if (!quiet_) {
      printf("%-38s %5llu blocks %7llu insts %5llu relocs  %llu errors, %llu warnings\n",
             name.c_str(), static_cast<unsigned long long>(report.stats.blocks),
             static_cast<unsigned long long>(report.stats.instructions),
             static_cast<unsigned long long>(report.stats.relocations),
             static_cast<unsigned long long>(report.stats.errors),
             static_cast<unsigned long long>(report.stats.warnings));
    }
    for (const VerifyFinding& f : report.findings) {
      fprintf(f.severity == VerifySeverity::kError ? stderr : stdout,
              "  [%s] %s: pc=0x%08x block=%d: %s\n", VerifySeverityName(f.severity),
              VerifyPassName(f.pass), f.pc, f.block, f.message.c_str());
    }
    total_.Merge(report);
    targets_.push_back({name, std::move(report)});
  }

  bool quiet_;
  std::vector<TargetReport> targets_;
  VerifyReport total_;
};

void WriteJsonReport(const std::string& path, const Runner& runner,
                     const StatsRegistry& registry) {
  JsonWriter writer;
  writer.BeginObject();
  writer.KV("schema", "wrlverify/1");
  writer.Key("targets");
  writer.BeginArray();
  for (const TargetReport& t : runner.targets()) {
    writer.BeginObject();
    writer.KV("name", t.name);
    writer.Key("report");
    t.report.WriteJson(writer);
    writer.EndObject();
  }
  writer.EndArray();
  writer.Key("totals");
  writer.BeginObject();
  writer.KV("targets", static_cast<uint64_t>(runner.targets().size()));
  for (const std::string& name : registry.Names()) {
    writer.KV(name, registry.CounterValue(name));
  }
  writer.EndObject();
  writer.EndObject();
  std::ofstream out(path);
  if (!out) {
    throw Error("wrlverify: cannot write " + path);
  }
  out << writer.TakeString() << "\n";
}

int Run(int argc, char** argv) {
  std::string json_path;
  double scale = 1.0;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--scale" && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      fprintf(stderr, "usage: wrlverify [--json PATH] [--scale F] [--quiet]\n");
      return 2;
    }
  }

  Runner runner(quiet);

  // ---- Kernel: epoxie-instrumented object + linked image ----
  ObjectFile kernel_obj = Assemble("kernel.s", KernelAsm());
  ObjectFile support = Assemble("support.s", TraceSupportAsm());
  EpoxieConfig kernel_config;
  InstrumentResult ikernel = Instrument(kernel_obj, kernel_config);
  runner.AddObjectTarget("kernel/epoxie", kernel_obj, ikernel, kernel_config, kKseg0);
  LinkOptions kopts;
  kopts.text_base = kKseg0;
  kopts.fixed_data_base = kKernelDataBase;
  kopts.entry_symbol = "_start";
  Executable kernel_exe = Link({ikernel.object, support}, kopts);
  runner.AddImageTarget("kernel/epoxie/image", kernel_exe);

  // ---- User programs: every workload plus the Mach server, both modes ----
  ObjectFile userlib = Assemble("userlib.s", UserLibAsm());
  ObjectFile abs = UserAbsSymbols();
  std::vector<WorkloadSpec> workloads = PaperWorkloads(scale);
  WorkloadSpec server;
  server.name = "server";
  server.source = ServerAsm();
  workloads.push_back(server);

  for (InstrumentMode mode : {InstrumentMode::kEpoxie, InstrumentMode::kPixie}) {
    EpoxieConfig config;
    config.mode = mode;
    InstrumentResult ilib = Instrument(userlib, config);
    runner.AddObjectTarget(std::string("userlib/") + ModeName(mode), userlib, ilib, config,
                           kUserTracedTextBase);
    for (const WorkloadSpec& w : workloads) {
      ObjectFile prog = Assemble(w.name + ".s", w.source);
      InstrumentResult iprog = Instrument(prog, config);
      runner.AddObjectTarget(w.name + "/" + ModeName(mode), prog, iprog, config,
                             kUserTracedTextBase);

      LinkOptions orig_opts;
      orig_opts.text_base = kUserTextBase;
      Executable orig_exe = Link({userlib, prog}, orig_opts);
      LinkOptions traced_opts;
      traced_opts.text_base = kUserTracedTextBase;
      traced_opts.fixed_data_base = orig_exe.data_base;
      Executable traced_exe = Link({ilib.object, iprog.object, support, abs}, traced_opts);
      runner.AddImageTarget(w.name + "/" + ModeName(mode) + "/image", traced_exe);
    }
  }

  // ---- Totals, wrlstats binding, JSON report ----
  StatsRegistry registry;
  VerifyReport total = runner.total();
  total.RegisterStats(registry);
  if (!quiet) {
    printf("\n%zu targets: %llu blocks, %llu instructions, %llu memory ops, "
           "%llu relocations — %llu errors, %llu warnings\n",
           runner.targets().size(), static_cast<unsigned long long>(total.stats.blocks),
           static_cast<unsigned long long>(total.stats.instructions),
           static_cast<unsigned long long>(total.stats.mem_ops),
           static_cast<unsigned long long>(total.stats.relocations),
           static_cast<unsigned long long>(total.stats.errors),
           static_cast<unsigned long long>(total.stats.warnings));
  }
  if (!json_path.empty()) {
    WriteJsonReport(json_path, runner, registry);
  }
  return total.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::exception& e) {
    fprintf(stderr, "wrlverify: %s\n", e.what());
    return 2;
  }
}
