// wrlprof: the trace-attribution profiler CLI.
//
// Runs one paper workload on the traced system, reconstructs the reference
// stream, and attributes every reference back to the basic block, symbol,
// and page that generated it — plus the §5 distortion accounting: trace
// words and epoxie-inserted instructions charged per block.
//
// Two analysis modes, bit-identical by construction:
//   * capture (default): drains are captured into a TraceLog and the
//     profiler replays the materialized stream (ReplayEngine, one parse);
//   * --live: the profiler consumes batches behind the parser during the
//     traced run itself.
//
// The built-in reconciliation gate cross-checks the profile against the
// wrlstats parser counters — Σ block insts == parser.ifetches, Σ loads ==
// parser.loads, Σ stores == parser.stores, Σ entries == parser.blocks, no
// unattributed references — and the tool exits nonzero when any of it is
// off (--no-verify downgrades that to a warning).
//
// Usage:
//   wrlprof [--workload NAME] [--personality ultrix|mach] [--scale F]
//           [--live] [--top N] [--window REFS] [--json PATH]
//           [--folded PATH] [--no-verify] [--quiet]
//
// --json writes a schema-versioned document ("wrlprof/1"):
//   {
//     "schema": "wrlprof/1", "tool": "wrlprof",
//     "workload": ..., "personality": ..., "scale": ..., "mode": ...,
//     "reconcile": {"exact": true, ...},
//     "profile": { "totals": ..., "blocks": [...], "symbols": [...],
//                  "pages": [...], "working_set": [...] },
//     "counters": {"parser.words": ..., ...}
//   }
// --folded writes flamegraph-compatible folded stacks
// ("space;symbol;block_0xADDR insts" per line).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "harness/replay_engine.h"
#include "kernel/system_build.h"
#include "prof/prof.h"
#include "support/error.h"
#include "support/json.h"
#include "support/strings.h"
#include "trace/parser.h"
#include "trace/trace_log.h"
#include "workloads/workloads.h"

using namespace wrl;

namespace {

struct CliOptions {
  std::string workload = "sed";
  Personality personality = Personality::kUltrix;
  double scale = 1.0;
  bool live = false;
  size_t top = 10;
  uint64_t window_refs = 1u << 18;
  std::string json_path;
  std::string folded_path;
  bool verify = true;
  bool quiet = false;
  uint64_t max_instructions = 3'000'000'000;
};

struct Reconcile {
  uint64_t parser_ifetches = 0;
  uint64_t parser_loads = 0;
  uint64_t parser_stores = 0;
  uint64_t parser_blocks = 0;
  uint64_t parser_idle = 0;
  const ProfileTotals* totals = nullptr;

  bool Exact() const {
    return totals->insts == parser_ifetches && totals->loads == parser_loads &&
           totals->stores == parser_stores && totals->block_entries == parser_blocks &&
           totals->idle_insts == parser_idle && totals->unattributed_insts == 0 &&
           totals->unattributed_data == 0;
  }
};

void Usage() {
  std::fprintf(stderr,
               "usage: wrlprof [--workload NAME] [--personality ultrix|mach] [--scale F]\n"
               "               [--live] [--top N] [--window REFS] [--json PATH]\n"
               "               [--folded PATH] [--no-verify] [--quiet]\n");
}

void WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out || !(out << content)) {
    throw Error("wrlprof: cannot write " + path);
  }
}

void PrintTables(const TraceProfiler& profiler, const Profile& profile, size_t top) {
  const ProfileTotals& t = profile.totals;
  std::printf("refs %llu: %llu ifetches (%llu kernel, %llu user, %llu idle), "
              "%llu loads, %llu stores\n",
              static_cast<unsigned long long>(t.refs),
              static_cast<unsigned long long>(t.insts),
              static_cast<unsigned long long>(t.kernel_insts),
              static_cast<unsigned long long>(t.user_insts),
              static_cast<unsigned long long>(t.idle_insts),
              static_cast<unsigned long long>(t.loads),
              static_cast<unsigned long long>(t.stores));
  std::printf("attribution: %llu block entries, %llu trace words, "
              "%llu epoxie-inserted instructions (dilation x%.2f over traced insts)\n",
              static_cast<unsigned long long>(t.block_entries),
              static_cast<unsigned long long>(t.trace_words),
              static_cast<unsigned long long>(t.overhead_insts),
              t.insts == 0 ? 1.0
                           : 1.0 + static_cast<double>(t.overhead_insts) /
                                       static_cast<double>(t.insts));

  std::printf("\n%-44s %12s %10s %10s %10s\n", "hot symbols", "insts", "loads", "stores",
              "trace_w");
  size_t n = top == 0 ? profile.symbols.size() : std::min(top, profile.symbols.size());
  for (size_t i = 0; i < n; ++i) {
    const SymbolProfile& s = profile.symbols[i];
    std::printf("%-44s %12llu %10llu %10llu %10llu\n",
                (s.space + ":" + s.name).c_str(),
                static_cast<unsigned long long>(s.insts),
                static_cast<unsigned long long>(s.loads),
                static_cast<unsigned long long>(s.stores),
                static_cast<unsigned long long>(s.trace_words));
  }

  std::printf("\n%-44s %12s %10s %10s %10s\n", "hot blocks", "insts", "entries", "trace_w",
              "ovh_insts");
  n = top == 0 ? profile.blocks.size() : std::min(top, profile.blocks.size());
  for (size_t i = 0; i < n; ++i) {
    const BlockProfile& b = profile.blocks[i];
    std::printf("%-44s %12llu %10llu %10llu %10llu\n",
                StrFormat("%s:%s @0x%08x", b.space.c_str(), b.symbol.c_str(), b.addr).c_str(),
                static_cast<unsigned long long>(b.insts),
                static_cast<unsigned long long>(b.entries),
                static_cast<unsigned long long>(b.TraceWords()),
                static_cast<unsigned long long>(b.OverheadInsts()));
  }

  std::printf("\n%-44s %12s %10s %10s\n", "hot pages", "ifetches", "loads", "stores");
  n = top == 0 ? profile.pages.size() : std::min(top, profile.pages.size());
  for (size_t i = 0; i < n; ++i) {
    const PageProfile& p = profile.pages[i];
    std::printf("%-44s %12llu %10llu %10llu\n",
                StrFormat("%s:0x%08x", p.space.c_str(), p.page_addr).c_str(),
                static_cast<unsigned long long>(p.ifetches),
                static_cast<unsigned long long>(p.loads),
                static_cast<unsigned long long>(p.stores));
  }

  if (!profile.working_set.empty()) {
    std::printf("\nworking set (unique pages per %llu-ref window):",
                static_cast<unsigned long long>(profile.window_refs));
    for (uint64_t pages : profile.working_set) {
      std::printf(" %llu", static_cast<unsigned long long>(pages));
    }
    std::printf("\n");
  }
  (void)profiler;
}

void WriteJsonReport(const std::string& path, const CliOptions& cli, const char* mode,
                     const Reconcile& reconcile, const Profile& profile,
                     const TraceParserStats& pstats) {
  JsonWriter writer;
  writer.BeginObject();
  writer.KV("schema", "wrlprof/1");
  writer.KV("tool", "wrlprof");
  writer.KV("workload", cli.workload);
  writer.KV("personality", cli.personality == Personality::kUltrix ? "ultrix" : "mach");
  writer.KV("scale", cli.scale);
  writer.KV("mode", mode);

  writer.Key("reconcile");
  writer.BeginObject();
  writer.KV("exact", reconcile.Exact());
  writer.KV("parser_ifetches", reconcile.parser_ifetches);
  writer.KV("profile_insts", profile.totals.insts);
  writer.KV("parser_loads", reconcile.parser_loads);
  writer.KV("profile_loads", profile.totals.loads);
  writer.KV("parser_stores", reconcile.parser_stores);
  writer.KV("profile_stores", profile.totals.stores);
  writer.KV("parser_blocks", reconcile.parser_blocks);
  writer.KV("profile_block_entries", profile.totals.block_entries);
  writer.KV("unattributed_insts", profile.totals.unattributed_insts);
  writer.KV("unattributed_data", profile.totals.unattributed_data);
  writer.EndObject();

  writer.Key("profile");
  profile.WriteJson(writer);

  writer.Key("counters");
  writer.BeginObject();
  writer.KV("parser.words", pstats.words);
  writer.KV("parser.blocks", pstats.blocks);
  writer.KV("parser.refs", pstats.refs);
  writer.KV("parser.ifetches", pstats.ifetches);
  writer.KV("parser.loads", pstats.loads);
  writer.KV("parser.stores", pstats.stores);
  writer.KV("parser.kernel_ifetches", pstats.kernel_ifetches);
  writer.KV("parser.user_ifetches", pstats.user_ifetches);
  writer.KV("parser.idle_instructions", pstats.idle_instructions);
  writer.KV("parser.markers", pstats.markers);
  writer.KV("parser.validation_errors", pstats.validation_errors);
  writer.EndObject();
  writer.EndObject();
  WriteTextFile(path, writer.TakeString() + "\n");
}

int Run(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--workload" && i + 1 < argc) {
      cli.workload = argv[++i];
    } else if (arg == "--personality" && i + 1 < argc) {
      std::string p = argv[++i];
      if (p == "ultrix") {
        cli.personality = Personality::kUltrix;
      } else if (p == "mach") {
        cli.personality = Personality::kMach;
      } else {
        Usage();
        return 2;
      }
    } else if (arg == "--scale" && i + 1 < argc) {
      cli.scale = std::atof(argv[++i]);
    } else if (arg == "--live") {
      cli.live = true;
    } else if (arg == "--top" && i + 1 < argc) {
      cli.top = static_cast<size_t>(std::atol(argv[++i]));
    } else if (arg == "--window" && i + 1 < argc) {
      cli.window_refs = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--json" && i + 1 < argc) {
      cli.json_path = argv[++i];
    } else if (arg == "--folded" && i + 1 < argc) {
      cli.folded_path = argv[++i];
    } else if (arg == "--no-verify") {
      cli.verify = false;
    } else if (arg == "--quiet") {
      cli.quiet = true;
    } else {
      Usage();
      return 2;
    }
  }

  WorkloadSpec workload = PaperWorkload(cli.workload, cli.scale);

  SystemConfig config;
  config.personality = cli.personality;
  config.tracing = true;
  config.clock_period = 200000 * 15;  // The harness's dilated traced clock.
  config.program_source = workload.source;
  config.program_name = workload.name;
  config.files = workload.files;
  if (cli.personality == Personality::kMach) {
    config.policy = PagePolicy::kScrambled;
    config.policy_mult = 9;
  }
  std::unique_ptr<SystemInstance> traced = BuildSystem(config);

  ProfileOptions popts;
  popts.window_refs = cli.window_refs;
  TraceProfiler profiler(popts);
  profiler.AddTable(kKernelPid, &traced->kernel_table());
  profiler.AddTable(1, &traced->user_table());
  profiler.AddSymbols(kKernelPid, traced->kernel_orig());
  profiler.AddSymbols(1, traced->workload_orig());
  profiler.SetSpaceName(1, workload.name);
  if (cli.personality == Personality::kMach) {
    profiler.AddTable(2, &traced->server_table());
    profiler.AddSymbols(2, traced->server_orig());
    profiler.SetSpaceName(2, "server");
  }

  TraceLog trace_log;
  std::unique_ptr<TraceParser> parser;
  if (cli.live) {
    parser = std::make_unique<TraceParser>(&traced->kernel_table());
    parser->SetUserTable(1, &traced->user_table());
    if (cli.personality == Personality::kMach) {
      parser->SetUserTable(2, &traced->server_table());
    }
    parser->SetInitialContext(kKernelPid);
    parser->SetBatchSink(&profiler);
    traced->SetTraceSink(
        [&parser](const uint32_t* words, size_t count) { parser->Feed(words, count); });
  } else {
    traced->SetTraceSink(
        [&trace_log](const uint32_t* words, size_t count) { trace_log.Append(words, count); });
  }

  RunResult run = traced->Run(cli.max_instructions);
  if (!run.halted) {
    throw Error(StrFormat("traced run of '%s' did not halt (pc=0x%08x)",
                          workload.name.c_str(), traced->machine().pc()));
  }

  TraceParserStats pstats;
  if (cli.live) {
    parser->Finish();
    pstats = parser->stats();
  } else {
    ReplaySource source;
    source.log = &trace_log;
    source.kernel_table = &traced->kernel_table();
    source.user_tables.emplace_back(1, &traced->user_table());
    if (cli.personality == Personality::kMach) {
      source.user_tables.emplace_back(2, &traced->server_table());
    }
    ReplayEngine engine(std::move(source));
    engine.Parse();
    if (BatchRefsEnabled()) {
      // Replay the materialized stream in parser-sized batches.
      const std::vector<TraceRef>& refs = engine.refs();
      for (size_t i = 0; i < refs.size(); i += kRefBatchCapacity) {
        profiler.OnRefBatch(refs.data() + i, std::min(kRefBatchCapacity, refs.size() - i));
      }
    } else {
      for (const TraceRef& ref : engine.refs()) {
        profiler.OnRef(ref);
      }
    }
    pstats = engine.parser_stats();
  }

  Profile profile = profiler.Finish();
  Reconcile reconcile;
  reconcile.parser_ifetches = pstats.ifetches;
  reconcile.parser_loads = pstats.loads;
  reconcile.parser_stores = pstats.stores;
  reconcile.parser_blocks = pstats.blocks;
  reconcile.parser_idle = pstats.idle_instructions;
  reconcile.totals = &profile.totals;

  if (!cli.quiet) {
    std::printf("wrlprof: %s (%s, scale %g, %s analysis)\n", workload.name.c_str(),
                cli.personality == Personality::kUltrix ? "ultrix" : "mach", cli.scale,
                cli.live ? "live" : "capture-replay");
    PrintTables(profiler, profile, cli.top);
  }

  if (!cli.json_path.empty()) {
    WriteJsonReport(cli.json_path, cli, cli.live ? "live" : "capture", reconcile, profile,
                    pstats);
  }
  if (!cli.folded_path.empty()) {
    WriteTextFile(cli.folded_path, profile.FoldedStacks());
  }

  if (!reconcile.Exact()) {
    std::fprintf(stderr,
                 "wrlprof: profile does NOT reconcile with parser counters: "
                 "insts %llu/%llu loads %llu/%llu stores %llu/%llu entries %llu/%llu "
                 "unattributed %llu+%llu\n",
                 static_cast<unsigned long long>(profile.totals.insts),
                 static_cast<unsigned long long>(pstats.ifetches),
                 static_cast<unsigned long long>(profile.totals.loads),
                 static_cast<unsigned long long>(pstats.loads),
                 static_cast<unsigned long long>(profile.totals.stores),
                 static_cast<unsigned long long>(pstats.stores),
                 static_cast<unsigned long long>(profile.totals.block_entries),
                 static_cast<unsigned long long>(pstats.blocks),
                 static_cast<unsigned long long>(profile.totals.unattributed_insts),
                 static_cast<unsigned long long>(profile.totals.unattributed_data));
    if (cli.verify) {
      return 1;
    }
  } else if (!cli.quiet) {
    std::printf("\nreconcile: exact (profile == parser counters)\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wrlprof: %s\n", e.what());
    return 2;
  }
}
