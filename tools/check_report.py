#!/usr/bin/env python3
"""Schema and invariant checks for wrltrace's machine-readable reports.

One entry point for every JSON document the CI smoke jobs assert over:

    check_report.py wrlstats         report.json      # tlb_study full report
    check_report.py wrlverify        wrlverify.json
    check_report.py replay-sweep     BENCH_replay_sweep.json
    check_report.py sweep-smoke      sweep_smoke.json
    check_report.py wrlprof          wrlprof.json --folded wrlprof.folded
    check_report.py wrltrace-analysis live.json

Each check loads the document, asserts the schema tag and the invariants
that keep the report's consumers honest (counter presence, conservation
laws, monotone sweep curves, reconciliation flags), and prints a one-line
summary.  Any violated invariant raises AssertionError and exits nonzero.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def check_wrlstats(path, args):
    """The tlb_study wrlstats/1 report: counters, metrics, timeline."""
    report = load(path)
    assert report["schema"] == "wrlstats/1", report.get("schema")
    assert report["tool"] == "tlb_study"
    counters = report["counters"]
    for key in (
        "measured.machine.cycles",
        "measured.kernel.utlb_misses",
        "measured.machine.memsys.dcache_misses",
        "parser.refs",
        "parser.validation_errors",
        "tlbsim.utlb_misses",
    ):
        assert key in counters, f"missing counter: {key}"
    assert counters["measured.machine.cycles"] > 0
    assert counters["parser.validation_errors"] == 0
    metrics = report["metrics"]
    assert metrics, "empty metrics object"
    # The capture-once/replay-many contract: one traced machine run feeds
    # the whole sweep, and replaying the capture beats the live-analysis
    # bound by a wide margin.
    assert metrics["traced_machine_runs"] == 1, metrics["traced_machine_runs"]
    assert metrics["tracelog.compression_ratio"] > 1.0
    assert metrics["replay.speedup_vs_live"] >= 5.0, metrics["replay.speedup_vs_live"]
    assert report["traceEvents"], "empty event timeline"
    print(f"report OK: {len(counters)} counters, "
          f"{len(report['traceEvents'])} timeline events, "
          f"{metrics['tracelog.compression_ratio']:.2f}x capture, "
          f"replay {metrics['replay.speedup_vs_live']:.1f}x live")


def check_wrlverify(path, args):
    """The wrlverify/1 static-verification report: zero findings."""
    report = load(path)
    assert report["schema"] == "wrlverify/1", report.get("schema")
    targets = report["targets"]
    assert len(targets) > 40, f"only {len(targets)} targets verified"
    totals = report["totals"]
    assert totals["verify.errors"] == 0, totals
    assert totals["verify.warnings"] == 0, totals
    assert totals["verify.traced_blocks"] > 1000
    print(f"wrlverify OK: {len(targets)} targets, "
          f"{int(totals['verify.blocks'])} blocks, "
          f"{int(totals['verify.mem_ops'])} memory ops, 0 findings")


def check_replay_sweep(path, args):
    """The bench-smoke replay sweep: one traced run, one sweep pass."""
    metrics = load(path)["metrics"]
    assert metrics["traced_machine_runs"] == 1, metrics["traced_machine_runs"]
    # production64 + ONE sweep pass, regardless of how many sizes the curve
    # covers (the old per-size fan-out would have been 3).
    assert metrics["replay.configs"] == 2, metrics["replay.configs"]
    assert metrics["tracelog.compression_ratio"] > 1.0
    assert metrics["replay.mrefs_per_sec"] > 0
    assert metrics["sweep.mrefs_per_sec"] > 0
    assert metrics["sweep.family_points"] == 16, metrics["sweep.family_points"]
    print(f"replay sweep OK: {metrics['tracelog.compression_ratio']:.2f}x capture, "
          f"{metrics['replay.mrefs_per_sec']:.1f} Mrefs/s over "
          f"{int(metrics['replay.configs'])} configs, sweep "
          f"{metrics['sweep.mrefs_per_sec']:.0f} Mrefs/s equivalent")


def check_sweep_smoke(path, args):
    """The end-to-end sweep report: family points, monotone curves."""
    report = load(path)
    assert report["schema"] == "wrlstats/1", report.get("schema")
    assert report["tool"] == "tlb_study"
    metrics = report["metrics"]
    # One traced machine run feeds everything.
    assert metrics["traced_machine_runs"] == 1, metrics["traced_machine_runs"]
    # The 8-point I-cache family + the 8-point D-cache family.
    assert metrics["sweep.family_points"] == 16, metrics["sweep.family_points"]
    assert metrics["sweep.tlb_max_entries"] == 256
    assert metrics["sweep.mrefs_per_sec"] > 0
    # --check ran: the measured sweep-vs-replay speedup is recorded.
    assert metrics["sweep.speedup_vs_replay"] > 1.0, metrics["sweep.speedup_vs_replay"]
    # The exact LRU curve is monotone in capacity.
    curve = [metrics[f"eqntott.sweep.entries_{n}.misses"]
             for n in (8, 16, 32, 64, 128, 256)]
    assert all(a >= b for a, b in zip(curve, curve[1:])), curve
    # Both 8-point cache families, monotone in size.
    for side in ("icache", "dcache"):
        family = [metrics[f"eqntott.sweep.{side}_{kb}k.misses"]
                  for kb in (4, 8, 16, 32, 64, 128, 256, 512)]
        assert all(a >= b for a, b in zip(family, family[1:])), family
    counters = report["counters"]
    assert counters["sweep.refs"] > 0
    assert counters["sweep.synthesized_refs"] > 0
    assert counters["sweep.tlbsim.utlb_misses"] == \
        metrics["eqntott.simulated_utlb_misses"]
    print(f"sweep smoke OK: {int(metrics['sweep.family_points'])} family "
          f"points + {int(metrics['sweep.tlb_max_entries'])}-entry curve, "
          f"{metrics['sweep.speedup_vs_replay']:.1f}x vs dedicated replays, "
          f"{metrics['sweep.mrefs_per_sec']:.0f} Mrefs/s equivalent")


def check_wrlprof(path, args):
    """The wrlprof/1 attribution profile: exact reconciliation."""
    report = load(path)
    assert report["schema"] == "wrlprof/1", report.get("schema")
    assert report["tool"] == "wrlprof"
    assert report["reconcile"]["exact"] is True, report["reconcile"]
    profile = report["profile"]
    totals = profile["totals"]
    assert totals["refs"] > 0 and totals["insts"] > 0
    assert totals["unattributed_insts"] == 0, totals
    assert totals["block_entries"] > 0
    assert profile["blocks"] and profile["symbols"] and profile["pages"]
    assert profile["working_set"], "empty working-set curve"
    for block in profile["blocks"]:
        assert block["insts"] >= block["entries"], block
    folded = []
    if args.folded:
        with open(args.folded) as f:
            folded = f.read().splitlines()
        assert folded and all(";" in line for line in folded)
    print(f"wrlprof OK: {int(totals['refs'])} refs, "
          f"{len(profile['symbols'])} symbols, "
          f"{len(folded)} folded stacks, reconcile exact")


def check_wrltrace_analysis(path, args):
    """The wrltrace-analysis/1 counter document record/replay agree over."""
    report = load(path)
    assert report["schema"] == "wrltrace-analysis/1", report.get("schema")
    assert report["tool"] == "wrltrace"
    assert report["mode"] in ("record", "replay"), report.get("mode")
    assert report["workload"], "missing workload identity"
    counters = report["counters"]
    assert counters, "empty counters object"
    for key in ("parser.refs", "parser.validation_errors", "predicted.instructions"):
        assert key in counters, f"missing counter: {key}"
    assert counters["parser.refs"] > 0
    assert counters["parser.validation_errors"] == 0, counters
    assert report["predicted_cycles"] > 0, report["predicted_cycles"]
    print(f"wrltrace analysis OK ({report['mode']}): {len(counters)} counters, "
          f"{int(counters['parser.refs'])} refs, "
          f"{report['predicted_cycles']:.0f} predicted cycles")


CHECKS = {
    "wrlstats": check_wrlstats,
    "wrlverify": check_wrlverify,
    "replay-sweep": check_replay_sweep,
    "sweep-smoke": check_sweep_smoke,
    "wrlprof": check_wrlprof,
    "wrltrace-analysis": check_wrltrace_analysis,
}


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("kind", choices=sorted(CHECKS))
    parser.add_argument("path")
    parser.add_argument("--folded", help="folded-stacks file (wrlprof only)")
    args = parser.parse_args(argv)
    try:
        CHECKS[args.kind](args.path, args)
    except AssertionError as e:
        print(f"check_report: {args.kind}: {args.path}: FAILED: {e}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
