// wrlbench_diff: the perf-trajectory gate.
//
// Compares the flat `metrics` objects of two wrlstats/1 reports (a pinned
// BENCH_baseline.json and a fresh run) metric by metric.  Each metric's
// "good" direction is inferred from its name — throughputs up, times and
// miss counts down, everything else neutral — and a change in the bad
// direction beyond the threshold is a regression.
//
// Usage:
//   wrlbench_diff BASELINE.json CURRENT.json
//       [--threshold PCT]     regression threshold, percent (default 10)
//       [--metric NAME=PCT]   per-metric threshold override (repeatable)
//       [--enforce NAME]      metric gates even under --advisory (repeatable)
//       [--advisory]          report regressions but exit 0
//       [--quiet]             print regressions and summary only
//
// Exit codes: 0 ok (or --advisory), 1 regression(s), 2 usage/IO error.
//
// Neutral metrics (no inferable direction) and metrics present in only one
// report are listed but never gate.  Wall-clock metrics are inherently
// noisy — pick thresholds accordingly; the default 10% suits the
// deterministic counters, CI uses --advisory for the wall-clock ones and
// --enforce for the handful of throughput floors that must hold even on
// shared runners (an enforced metric missing from either report also
// fails: a gate that silently evaporates is no gate).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "support/error.h"
#include "support/json.h"

using namespace wrl;

namespace {

enum class Direction { kHigherBetter, kLowerBetter, kNeutral };

Direction DirectionOf(const std::string& name) {
  static const char* kHigher[] = {"per_sec", "per_second", "mips", "speedup",
                                  "compression_ratio", "hit_rate"};
  static const char* kLower[] = {"_ns",     "seconds", "misses",   "errors", "stall",
                                 "wall_us", "bytes",   "dropins",  "_us",    "cycles",
                                 "faults",  "switches"};
  for (const char* pattern : kHigher) {
    if (name.find(pattern) != std::string::npos) {
      return Direction::kHigherBetter;
    }
  }
  for (const char* pattern : kLower) {
    if (name.find(pattern) != std::string::npos) {
      return Direction::kLowerBetter;
    }
  }
  return Direction::kNeutral;
}

std::map<std::string, double> LoadMetrics(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error("wrlbench_diff: cannot read " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  JsonValue doc = ParseJson(buffer.str());
  const JsonValue* metrics = doc.Find("metrics");
  if (metrics == nullptr || !metrics->IsObject()) {
    throw Error("wrlbench_diff: " + path + " has no metrics object");
  }
  std::map<std::string, double> out;
  for (const auto& [key, value] : metrics->object) {
    if (value.IsNumber()) {
      out[key] = value.number;
    }
  }
  return out;
}

int Run(int argc, char** argv) {
  std::vector<std::string> paths;
  double threshold = 10.0;
  std::map<std::string, double> overrides;
  std::set<std::string> enforced;
  bool advisory = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--threshold" && i + 1 < argc) {
      threshold = std::atof(argv[++i]);
    } else if (arg == "--metric" && i + 1 < argc) {
      std::string spec = argv[++i];
      size_t eq = spec.rfind('=');
      if (eq == std::string::npos) {
        fprintf(stderr, "wrlbench_diff: --metric wants NAME=PCT, got '%s'\n", spec.c_str());
        return 2;
      }
      overrides[spec.substr(0, eq)] = std::atof(spec.c_str() + eq + 1);
    } else if (arg == "--enforce" && i + 1 < argc) {
      enforced.insert(argv[++i]);
    } else if (arg == "--advisory") {
      advisory = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      fprintf(stderr,
              "usage: wrlbench_diff BASELINE.json CURRENT.json [--threshold PCT]\n"
              "                     [--metric NAME=PCT] [--enforce NAME] [--advisory]\n"
              "                     [--quiet]\n");
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    fprintf(stderr, "wrlbench_diff: need exactly two report paths\n");
    return 2;
  }

  std::map<std::string, double> baseline = LoadMetrics(paths[0]);
  std::map<std::string, double> current = LoadMetrics(paths[1]);

  size_t compared = 0;
  size_t regressions = 0;
  size_t enforced_regressions = 0;
  size_t improvements = 0;
  size_t only_baseline = 0;
  size_t only_current = 0;
  for (const auto& [name, base_value] : baseline) {
    auto it = current.find(name);
    if (it == current.end()) {
      ++only_baseline;
      if (enforced.count(name) != 0) {
        ++enforced_regressions;
        printf("REGRESSION %-47s ENFORCED metric missing from current report\n", name.c_str());
      } else if (!quiet) {
        printf("  %-56s baseline-only\n", name.c_str());
      }
      continue;
    }
    double cur_value = it->second;
    ++compared;
    double delta_pct = 0;
    if (base_value != 0) {
      delta_pct = 100.0 * (cur_value - base_value) / std::fabs(base_value);
    } else if (cur_value != 0) {
      delta_pct = cur_value > 0 ? 100.0 : -100.0;
    }
    Direction direction = DirectionOf(name);
    double limit = threshold;
    auto override_it = overrides.find(name);
    if (override_it != overrides.end()) {
      limit = override_it->second;
    }
    bool regressed = false;
    bool improved = false;
    if (direction == Direction::kLowerBetter) {
      regressed = delta_pct > limit;
      improved = delta_pct < -limit;
    } else if (direction == Direction::kHigherBetter) {
      regressed = delta_pct < -limit;
      improved = delta_pct > limit;
    }
    bool gate = enforced.count(name) != 0;
    if (regressed) {
      ++regressions;
      if (gate) {
        ++enforced_regressions;
      }
      printf("REGRESSION %-47s %14.6g -> %14.6g  (%+.1f%%, limit %.1f%%)%s\n", name.c_str(),
             base_value, cur_value, delta_pct, limit, gate ? "  ENFORCED" : "");
    } else if (!quiet || gate) {
      const char* tag = improved ? "improved  " : (direction == Direction::kNeutral
                                                       ? "neutral   "
                                                       : "ok        ");
      printf("%s %-47s %14.6g -> %14.6g  (%+.1f%%)%s\n", tag, name.c_str(), base_value,
             cur_value, delta_pct, gate ? "  ENFORCED" : "");
    }
    if (improved) {
      ++improvements;
    }
  }
  for (const auto& [name, value] : current) {
    (void)value;
    if (baseline.find(name) == baseline.end()) {
      ++only_current;
      if (!quiet) {
        printf("  %-56s current-only\n", name.c_str());
      }
    }
  }

  // Enforced metrics must exist in the baseline too, or the gate is vacuous.
  for (const std::string& name : enforced) {
    if (baseline.find(name) == baseline.end()) {
      ++enforced_regressions;
      printf("REGRESSION %-47s ENFORCED metric missing from baseline report\n", name.c_str());
    }
  }
  printf("%zu metrics compared: %zu regression(s) (%zu enforced), %zu improvement(s), "
         "%zu baseline-only, %zu current-only (threshold %.1f%%)\n",
         compared, regressions, enforced_regressions, improvements, only_baseline, only_current,
         threshold);
  if (regressions > 0 && advisory && enforced_regressions == 0) {
    printf("advisory mode: regressions reported, exit 0\n");
  }
  if (enforced_regressions > 0) {
    return 1;
  }
  return (regressions > 0 && !advisory) ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::exception& e) {
    fprintf(stderr, "wrlbench_diff: %s\n", e.what());
    return 2;
  }
}
