// wrltrace: the wrltrace/1 archive tool — record, inspect, verify, dump,
// replay, and diff durable trace captures (src/trace/trace_archive.h).
//
// The capture-once / analyze-many leverage, across *processes*: `record`
// runs one paper workload through the full experiment harness with the
// archive tee active, and any later invocation — on another machine, in
// another CI job — rebuilds the capturing system from the archive's
// identity metadata and replays the identical reference stream.
//
// Subcommands:
//   record  --workload NAME --out FILE [--scale F] [--personality P]
//           [--json PATH]
//       Run the experiment (live analysis), tee the capture to FILE, and
//       write the analysis-counter document (--json) that `replay --expect`
//       checks bit-for-bit.
//   info    FILE [--json PATH]
//       Header, identity metadata, chunk directory summary, compression,
//       and any degraded-capture diagnostics.
//   verify  FILE
//       Full integrity sweep: every framing CRC, every payload CRC, every
//       payload bounds-decoded, then the capture parsed through the §4.3
//       trace-parser defenses of a freshly rebuilt system.  Exit 0 only
//       when everything is clean.
//   cat     FILE [--chunk I] [--limit N]
//       Decoded trace words as hex, one per line.
//   replay  FILE [--json PATH] [--expect PATH] [--decode-workers N]
//       Rebuild the capturing system from metadata, replay the archive
//       through the ReplayEngine, and (with --expect) require every
//       analysis counter to match a `record --json` document bit-for-bit.
//   diff    A B
//       Byte-level (chunk framing + payload CRCs) and reference-level
//       (decoded word streams) comparison; exit 0 only when identical.
//
// Exit codes: 0 ok/identical, 1 difference or integrity finding, 2 usage
// or hard error (wrong magic, unreadable file, unknown workload).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/replay_engine.h"
#include "kernel/system_build.h"
#include "support/error.h"
#include "support/json.h"
#include "support/strings.h"
#include "trace/trace_archive.h"
#include "workloads/workloads.h"

using namespace wrl;

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: wrltrace record --workload NAME --out FILE [--scale F]\n"
      "                       [--personality ultrix|mach] [--json PATH]\n"
      "       wrltrace info FILE [--json PATH]\n"
      "       wrltrace verify FILE\n"
      "       wrltrace cat FILE [--chunk I] [--limit N]\n"
      "       wrltrace replay FILE [--json PATH] [--expect PATH] [--decode-workers N]\n"
      "       wrltrace diff A B\n");
}

void WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out || !(out << content)) {
    throw Error("wrltrace: cannot write " + path);
  }
}

std::string ReadTextFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error("wrltrace: cannot read " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// The analysis-counter document shared by `record` and `replay`: every
// parser.* and predicted.* instrument from the run's registry snapshot.
// Bit-identity between a live capture and its archived replay is asserted
// over exactly this object.
void WriteAnalysisJson(const std::string& path, const std::string& mode,
                       const std::string& workload, Personality personality,
                       const std::string& archive_path, double predicted_cycles,
                       const StatsSnapshot& stats) {
  JsonWriter writer;
  writer.BeginObject();
  writer.KV("schema", "wrltrace-analysis/1");
  writer.KV("tool", "wrltrace");
  writer.KV("mode", mode);
  writer.KV("workload", workload);
  writer.KV("personality", PersonalityName(personality));
  writer.KV("archive", archive_path);
  writer.KV("predicted_cycles", predicted_cycles);
  writer.Key("counters");
  writer.BeginObject();
  for (const auto& [name, value] : stats.values()) {
    if (name.rfind("parser.", 0) != 0 && name.rfind("predicted.", 0) != 0) {
      continue;
    }
    if (value.kind == StatValue::Kind::kCounter) {
      writer.KV(name, value.counter);
    } else if (value.kind == StatValue::Kind::kGauge) {
      writer.KV(name, value.gauge);
    }
    // Histograms are shape, not analysis output; skipped.
  }
  writer.EndObject();
  writer.EndObject();
  WriteTextFile(path, writer.TakeString() + "\n");
}

// The capturing system, rebuilt deterministically from archive metadata: the
// measured instance supplies the page map and original binaries, the traced
// instance the instrumentation tables — the exact inputs the live analysis
// used, so the replay is bit-identical by construction.
struct RebuiltSystems {
  WorkloadSpec workload;
  Personality personality = Personality::kUltrix;
  double scale = 1.0;
  std::unique_ptr<SystemInstance> measured;
  std::unique_ptr<SystemInstance> traced;
  PredictorConfig pconfig;
};

RebuiltSystems RebuildFromMeta(const ArchiveReader& archive) {
  RebuiltSystems sys;
  const std::string workload_name = archive.MetaValue("workload");
  if (workload_name.empty()) {
    throw Error("wrltrace: archive has no 'workload' metadata — cannot rebuild the "
                "capturing system (was it recorded by the harness?)");
  }
  sys.personality = PersonalityFromName(archive.MetaValue("personality", "ultrix"));
  sys.scale = std::strtod(archive.MetaValue("scale", "1").c_str(), nullptr);
  sys.workload = PaperWorkload(workload_name, sys.scale);

  const uint32_t clock_period = static_cast<uint32_t>(
      std::strtoul(archive.MetaValue("clock_period", "200000").c_str(), nullptr, 10));
  const double dilation = std::strtod(archive.MetaValue("dilation", "15").c_str(), nullptr);
  const bool scavenge = archive.MetaValue("scavenge", "1") != "0";
  const uint32_t trace_buf_bytes = static_cast<uint32_t>(
      std::strtoul(archive.MetaValue("trace_buf_bytes", "16777216").c_str(), nullptr, 10));

  auto make_config = [&](bool tracing) {
    SystemConfig config;
    config.personality = sys.personality;
    config.tracing = tracing;
    config.clock_period =
        tracing ? clock_period * static_cast<uint32_t>(dilation) : clock_period;
    config.program_source = sys.workload.source;
    config.program_name = sys.workload.name;
    config.files = sys.workload.files;
    config.trace_buf_bytes = trace_buf_bytes;
    config.scavenge = scavenge;
    if (sys.personality == Personality::kMach) {
      config.policy = PagePolicy::kScrambled;
      config.policy_mult = 9;
    }
    return config;
  };
  sys.measured = BuildSystem(make_config(false));
  sys.traced = BuildSystem(make_config(true));

  sys.pconfig.dilation = dilation;
  // Same page-map draws the harness makes (experiment.cc): deterministic
  // policy reproduces the measured map; Mach takes a different permutation.
  sys.pconfig.page_map = sys.personality == Personality::kMach
                             ? sys.measured->PageMap(13)
                             : sys.measured->PageMap();
  return sys;
}

ReplaySource MakeSource(const ArchiveReader& archive, const RebuiltSystems& sys) {
  ReplaySource source;
  source.log = &archive;
  source.kernel_table = &sys.traced->kernel_table();
  source.user_tables.emplace_back(1, &sys.traced->user_table());
  if (sys.personality == Personality::kMach) {
    source.user_tables.emplace_back(2, &sys.traced->server_table());
  }
  return source;
}

void PrintDiagnostics(const ArchiveReader& archive) {
  for (const std::string& line : archive.diagnostics()) {
    std::fprintf(stderr, "wrltrace: %s\n", line.c_str());
  }
}

// ---- record ---------------------------------------------------------------

int CmdRecord(int argc, char** argv) {
  std::string workload_name;
  std::string out_path;
  std::string json_path;
  double scale = 1.0;
  Personality personality = Personality::kUltrix;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--workload" && i + 1 < argc) {
      workload_name = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--scale" && i + 1 < argc) {
      scale = std::atof(argv[++i]);
    } else if (arg == "--personality" && i + 1 < argc) {
      personality = PersonalityFromName(argv[++i]);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      Usage();
      return 2;
    }
  }
  if (workload_name.empty() || out_path.empty()) {
    Usage();
    return 2;
  }

  WorkloadSpec workload = PaperWorkload(workload_name, scale);
  ExperimentOptions options;
  options.personality = personality;
  options.archive_path = out_path;
  options.archive_meta.emplace_back("scale", StrFormat("%.17g", scale));
  ExperimentResult result = RunExperiment(workload, options);

  std::printf("wrltrace: recorded %s (%s, scale %g) -> %s\n", workload.name.c_str(),
              PersonalityName(personality), scale, out_path.c_str());
  std::printf("  %llu trace words, %llu chunks, %.0f bytes on disk (%.2fx compression)\n",
              static_cast<unsigned long long>(result.stats.CounterValue("archive.words")),
              static_cast<unsigned long long>(
                  static_cast<uint64_t>(result.stats.GaugeValue("archive.chunks"))),
              static_cast<double>(result.stats.CounterValue("archive.file_bytes")),
              result.stats.GaugeValue("archive.compression_ratio"));
  for (const std::string& warning : result.Warnings()) {
    std::fprintf(stderr, "wrltrace: %s\n", warning.c_str());
  }
  if (!json_path.empty()) {
    WriteAnalysisJson(json_path, "record", workload.name, personality, out_path,
                      result.prediction.PredictedCycles(), result.stats);
  }
  return result.parser_errors > 0 ? 1 : 0;
}

// ---- info -----------------------------------------------------------------

int CmdInfo(int argc, char** argv) {
  std::string path;
  std::string json_path;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (path.empty()) {
      path = arg;
    } else {
      Usage();
      return 2;
    }
  }
  if (path.empty()) {
    Usage();
    return 2;
  }
  ArchiveReader archive(path);
  std::printf("%s: wrltrace/%u, %s payloads%s\n", path.c_str(), kArchiveVersion,
              archive.packed() ? "packed" : "raw",
              archive.degraded() ? " [DEGRADED: recovered by scan]" : "");
  std::printf("  %zu chunks, %llu words, %llu file bytes, %llu payload bytes "
              "(%.2fx compression)\n",
              archive.chunk_count(), static_cast<unsigned long long>(archive.word_count()),
              static_cast<unsigned long long>(archive.file_bytes()),
              static_cast<unsigned long long>(archive.payload_bytes()),
              archive.CompressionRatio());
  for (const auto& [key, value] : archive.meta()) {
    std::printf("  meta %s = %s\n", key.c_str(), value.c_str());
  }
  PrintDiagnostics(archive);
  if (!json_path.empty()) {
    JsonWriter writer;
    writer.BeginObject();
    writer.KV("schema", "wrltrace-info/1");
    writer.KV("path", path);
    writer.KV("version", kArchiveVersion);
    writer.KV("packed", archive.packed());
    writer.KV("degraded", archive.degraded());
    writer.KV("chunks", static_cast<uint64_t>(archive.chunk_count()));
    writer.KV("words", archive.word_count());
    writer.KV("file_bytes", archive.file_bytes());
    writer.KV("payload_bytes", archive.payload_bytes());
    writer.KV("compression_ratio", archive.CompressionRatio());
    writer.Key("meta");
    writer.BeginObject();
    for (const auto& [key, value] : archive.meta()) {
      writer.KV(key, value);
    }
    writer.EndObject();
    writer.Key("diagnostics");
    writer.BeginArray();
    for (const std::string& line : archive.diagnostics()) {
      writer.Value(line);
    }
    writer.EndArray();
    writer.EndObject();
    WriteTextFile(json_path, writer.TakeString() + "\n");
  }
  return 0;
}

// ---- verify ---------------------------------------------------------------

int CmdVerify(int argc, char** argv) {
  if (argc != 1) {
    Usage();
    return 2;
  }
  const std::string path = argv[0];
  ArchiveReader archive(path);
  std::vector<std::string> findings;
  archive.Verify(&findings);
  for (const std::string& finding : findings) {
    std::fprintf(stderr, "wrltrace: %s: %s\n", path.c_str(), finding.c_str());
  }

  // Integrity past the CRCs: the decoded stream must survive the trace
  // parser's §4.3 defenses (key-table bounds, marker protocol, context
  // tracking) against a freshly rebuilt system.
  RebuiltSystems sys = RebuildFromMeta(archive);
  ReplayEngine engine(MakeSource(archive, sys));
  engine.Parse();
  const uint64_t parse_errors = engine.parser_stats().validation_errors;
  for (const std::string& error : engine.parser_errors()) {
    std::fprintf(stderr, "wrltrace: %s: parser: %s\n", path.c_str(), error.c_str());
  }

  const bool clean = findings.empty() && parse_errors == 0;
  std::printf("%s: %zu chunks, %llu words, %llu refs: %s\n", path.c_str(),
              archive.chunk_count(), static_cast<unsigned long long>(archive.word_count()),
              static_cast<unsigned long long>(engine.parser_stats().refs),
              clean ? "OK" : "FAILED");
  return clean ? 0 : 1;
}

// ---- cat ------------------------------------------------------------------

int CmdCat(int argc, char** argv) {
  std::string path;
  size_t chunk = static_cast<size_t>(-1);
  uint64_t limit = 0;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--chunk" && i + 1 < argc) {
      chunk = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--limit" && i + 1 < argc) {
      limit = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (path.empty()) {
      path = arg;
    } else {
      Usage();
      return 2;
    }
  }
  if (path.empty()) {
    Usage();
    return 2;
  }
  ArchiveReader archive(path);
  PrintDiagnostics(archive);
  uint64_t printed = 0;
  std::vector<uint32_t> buffer;
  const size_t begin = chunk == static_cast<size_t>(-1) ? 0 : chunk;
  const size_t end = chunk == static_cast<size_t>(-1) ? archive.chunk_count() : chunk + 1;
  if (begin >= archive.chunk_count() && begin != end) {
    throw Error(StrFormat("wrltrace: chunk %zu out of range (archive has %zu)", begin,
                          archive.chunk_count()));
  }
  for (size_t i = begin; i < end && i < archive.chunk_count(); ++i) {
    archive.DecodeChunk(i, buffer);
    for (uint32_t word : buffer) {
      std::printf("0x%08x\n", word);
      if (limit != 0 && ++printed >= limit) {
        return 0;
      }
    }
  }
  return 0;
}

// ---- replay ---------------------------------------------------------------

int CmdReplay(int argc, char** argv) {
  std::string path;
  std::string json_path;
  std::string expect_path;
  unsigned decode_workers = 1;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--expect" && i + 1 < argc) {
      expect_path = argv[++i];
    } else if (arg == "--decode-workers" && i + 1 < argc) {
      decode_workers = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (path.empty()) {
      path = arg;
    } else {
      Usage();
      return 2;
    }
  }
  if (path.empty()) {
    Usage();
    return 2;
  }

  ArchiveReader archive(path);
  PrintDiagnostics(archive);
  RebuiltSystems sys = RebuildFromMeta(archive);

  TraceDrivenSimulator simulator(sys.pconfig);
  simulator.AddTextImage(sys.measured->kernel_exe());
  simulator.AddTextImage(sys.measured->workload_orig());

  ReplayEngine engine(MakeSource(archive, sys));
  std::vector<ReplayEngine::Config> configs;
  configs.push_back({"primary", [&simulator] {
                       // Non-owning: the simulator outlives the fan-out.
                       class Borrowed : public RefBatchSink {
                        public:
                         explicit Borrowed(RefBatchSink* t) : t_(t) {}
                         void OnRefBatch(const TraceRef* refs, size_t n) override {
                           t_->OnRefBatch(refs, n);
                         }

                        private:
                         RefBatchSink* t_;
                       };
                       return std::make_unique<Borrowed>(&simulator);
                     }});
  ReplayEngine::Options ropts;
  ropts.decode_workers = decode_workers;
  engine.Run(configs, ropts);
  Prediction prediction = simulator.Finish();

  StatsRegistry registry;
  engine.RegisterParserStats(registry, "parser.");
  simulator.RegisterStats(registry, "predicted.");
  StatsSnapshot stats = registry.Snapshot();

  std::printf("wrltrace: replayed %s: %llu words -> %llu refs, predicted %.0f cycles\n",
              path.c_str(), static_cast<unsigned long long>(archive.word_count()),
              static_cast<unsigned long long>(engine.parser_stats().refs),
              prediction.PredictedCycles());
  if (engine.parser_stats().validation_errors > 0) {
    std::fprintf(stderr, "wrltrace: %llu parser validation error(s) during replay\n",
                 static_cast<unsigned long long>(engine.parser_stats().validation_errors));
  }
  if (!json_path.empty()) {
    WriteAnalysisJson(json_path, "replay", sys.workload.name, sys.personality, path,
                      prediction.PredictedCycles(), stats);
  }

  if (!expect_path.empty()) {
    // Bit-identity gate: every analysis counter of the live run must be
    // reproduced exactly by the archived replay — same keys, same values.
    JsonValue expect = ParseJson(ReadTextFile(expect_path));
    const JsonValue& expected = expect.At("counters");
    size_t mismatches = 0;
    size_t compared = 0;
    for (const auto& [name, value] : expected.object) {
      ++compared;
      const StatValue* actual = stats.Find(name);
      if (actual == nullptr) {
        std::fprintf(stderr, "wrltrace: expect: counter '%s' missing from replay\n",
                     name.c_str());
        ++mismatches;
        continue;
      }
      const double actual_value = actual->kind == StatValue::Kind::kCounter
                                      ? static_cast<double>(actual->counter)
                                      : actual->gauge;
      if (actual_value != value.number) {
        std::fprintf(stderr, "wrltrace: expect: %s: replay %.17g != live %.17g\n",
                     name.c_str(), actual_value, value.number);
        ++mismatches;
      }
    }
    for (const auto& [name, value] : stats.values()) {
      (void)value;
      if ((name.rfind("parser.", 0) == 0 || name.rfind("predicted.", 0) == 0) &&
          !expected.Has(name)) {
        std::fprintf(stderr, "wrltrace: expect: replay counter '%s' absent from %s\n",
                     name.c_str(), expect_path.c_str());
        ++mismatches;
      }
    }
    const double expected_cycles = expect.At("predicted_cycles").number;
    if (expected_cycles != prediction.PredictedCycles()) {
      std::fprintf(stderr, "wrltrace: expect: predicted_cycles: replay %.17g != live %.17g\n",
                   prediction.PredictedCycles(), expected_cycles);
      ++mismatches;
    }
    if (mismatches > 0) {
      std::fprintf(stderr, "wrltrace: replay does NOT match %s (%zu mismatch(es))\n",
                   expect_path.c_str(), mismatches);
      return 1;
    }
    std::printf("wrltrace: replay matches %s bit-for-bit (%zu counters)\n",
                expect_path.c_str(), compared);
  }
  return 0;
}

// ---- diff -----------------------------------------------------------------

int CmdDiff(int argc, char** argv) {
  if (argc != 2) {
    Usage();
    return 2;
  }
  ArchiveReader a(argv[0]);
  ArchiveReader b(argv[1]);
  PrintDiagnostics(a);
  PrintDiagnostics(b);
  size_t differences = 0;
  auto report = [&differences](const std::string& line) {
    std::fprintf(stderr, "wrltrace: diff: %s\n", line.c_str());
    ++differences;
  };

  if (a.meta() != b.meta()) {
    report("identity metadata differs");
    for (const auto& [key, value] : a.meta()) {
      const std::string other = b.MetaValue(key, "<absent>");
      if (other != value) {
        report("  meta " + key + ": " + value + " != " + other);
      }
    }
    for (const auto& [key, value] : b.meta()) {
      if (a.MetaValue(key, "<absent>") == "<absent>") {
        report("  meta " + key + ": <absent> != " + value);
      }
    }
  }
  if (a.chunk_count() != b.chunk_count()) {
    report(StrFormat("chunk count %zu != %zu", a.chunk_count(), b.chunk_count()));
  }
  if (a.word_count() != b.word_count()) {
    report(StrFormat("word count %llu != %llu",
                     static_cast<unsigned long long>(a.word_count()),
                     static_cast<unsigned long long>(b.word_count())));
  }

  // Reference-level comparison: the decoded word streams, chunk by chunk.
  // (Payload CRCs already pin the byte level — identical words from both
  // decoders plus matching framing means byte-identical payloads.)
  const size_t chunks = std::min(a.chunk_count(), b.chunk_count());
  std::vector<uint32_t> wa;
  std::vector<uint32_t> wb;
  size_t word_diffs = 0;
  for (size_t i = 0; i < chunks; ++i) {
    a.DecodeChunk(i, wa);
    b.DecodeChunk(i, wb);
    if (wa.size() != wb.size()) {
      report(StrFormat("chunk %zu: %zu words != %zu words", i, wa.size(), wb.size()));
      continue;
    }
    for (size_t w = 0; w < wa.size(); ++w) {
      if (wa[w] != wb[w]) {
        if (++word_diffs <= 8) {
          report(StrFormat("chunk %zu word %zu: 0x%08x != 0x%08x", i, w, wa[w], wb[w]));
        }
      }
    }
  }
  if (word_diffs > 8) {
    report(StrFormat("... %zu differing word(s) total", word_diffs));
  }

  if (differences == 0) {
    std::printf("wrltrace: %s and %s are identical (%zu chunks, %llu words, "
                "byte-identical payloads)\n",
                argv[0], argv[1], a.chunk_count(),
                static_cast<unsigned long long>(a.word_count()));
    return 0;
  }
  return 1;
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "record") {
    return CmdRecord(argc - 2, argv + 2);
  }
  if (cmd == "info") {
    return CmdInfo(argc - 2, argv + 2);
  }
  if (cmd == "verify") {
    return CmdVerify(argc - 2, argv + 2);
  }
  if (cmd == "cat") {
    return CmdCat(argc - 2, argv + 2);
  }
  if (cmd == "replay") {
    return CmdReplay(argc - 2, argv + 2);
  }
  if (cmd == "diff") {
    return CmdDiff(argc - 2, argv + 2);
  }
  Usage();
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return Run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wrltrace: %s\n", e.what());
    return 2;
  }
}
