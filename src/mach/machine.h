// The simulated DS32 machine: CPU core, physical memory, TLB, devices.
//
// The machine plays the role of the paper's DECstation 5000/200.  In
// *timing* mode it charges memory-system stalls (through memsys) and
// multiply/divide latencies, and its cycle counter is the "high resolution
// timer" the paper measures ground truth with (§5.1).  In *functional* mode
// it is the independent "CPU simulator" against which epoxie trace is
// validated (§4.3): the reference-trace hook emits the exact sequence of
// instruction and data references an uninstrumented run performs.
//
// Faithfulness notes:
//   * one architectural branch delay slot (epoxie's packing depends on it);
//   * software-managed TLB, dedicated UTLB refill vector for kuseg misses,
//     general vector for everything else (kseg2 "KTLB" misses included);
//   * R3000-style three-deep KU/IE status stack with rfe;
//   * mult/div busy latencies are the machine's "arithmetic stalls";
//   * exception entry/exit costs extra cycles that the trace-driven
//     predictor knowingly does not model (a named error source in §5.1).
#ifndef WRLTRACE_MACH_MACHINE_H_
#define WRLTRACE_MACH_MACHINE_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "isa/isa.h"
#include "mach/address_space.h"
#include "mach/devices.h"
#include "mach/phys_mem.h"
#include "mach/tlb.h"
#include "memsys/memsys.h"
#include "obj/object_file.h"
#include "stats/stats.h"

namespace wrl {

enum class Exc : uint8_t {
  kInt = 0,
  kMod = 1,
  kTlbL = 2,
  kTlbS = 3,
  kAdEL = 4,
  kAdES = 5,
  kSys = 8,
  kBp = 9,
  kRI = 10,
  kOv = 12,
};

// Status register bits (R3000).
enum StatusBits : uint32_t {
  kStatusIEc = 1u << 0,
  kStatusKUc = 1u << 1,  // 1 = user mode.
  kStatusIEp = 1u << 2,
  kStatusKUp = 1u << 3,
  kStatusIEo = 1u << 4,
  kStatusKUo = 1u << 5,
  kStatusImShift = 8,    // IM mask in bits 15:8.
};

// Hardware interrupt lines (bit positions within the IP field).
constexpr unsigned kIrqDisk = 6;
constexpr unsigned kIrqClock = 7;

// One reference in the machine's own (ground-truth) trace.
struct RefEvent {
  enum Kind : uint8_t { kIfetch, kLoad, kStore };
  Kind kind;
  uint32_t vaddr;
  uint8_t bytes;
  bool user_mode;
  uint32_t pc;  // The instruction performing the reference (== vaddr for fetches).
};

// The layered simulation fast path.  Every layer is a pure optimization:
// with any combination of flags, the architectural state sequence, every
// counter, and every trace word are byte-identical to the all-off slow
// path (tests/fastpath_test.cc holds the machine to that).  `WRL_FASTPATH=0`
// in the environment forces everything off, for A/B runs without a rebuild.
struct FastPathConfig {
  // Cache Decode() results per physical page; invalidated on stores, DMA,
  // and image loads into the page (self-modifying code keeps working).
  bool predecode = true;
  // One-entry fetch/data last-translation caches in front of the 64-entry
  // TLB scan, keyed on (VPN, ASID, user-mode); flushed on tlbwi/tlbwr,
  // EntryHi writes, and mode transitions.
  bool micro_tlb = true;
  // Tick device models only when the cycle counter crosses the next
  // computed deadline (clock tick or disk completion) instead of on every
  // instruction.
  bool event_devices = true;

  static FastPathConfig AllOff() { return FastPathConfig{false, false, false}; }
};

struct MachineConfig {
  uint32_t phys_bytes = 64u << 20;
  bool timing = false;
  MemSysConfig memsys;
  DiskConfig disk;
  unsigned tlb_wired = 8;
  // Hardware cost of entering an exception handler (flush + vector fetch).
  unsigned exception_entry_cycles = 10;
  FastPathConfig fastpath;
};

struct RunResult {
  bool halted = false;
  uint32_t halt_code = 0;
  uint64_t instructions = 0;
  uint64_t cycles = 0;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  // ---- Execution ----
  void Step();
  // Runs until halt or the instruction budget is exhausted.
  RunResult Run(uint64_t max_instructions);
  bool halted() const { return halted_; }
  uint32_t halt_code() const { return halt_code_; }

  // ---- Architectural state ----
  uint32_t gpr(unsigned i) const { return gpr_[i]; }
  void set_gpr(unsigned i, uint32_t v) {
    if (i != 0) {
      gpr_[i] = v;
    }
  }
  uint32_t pc() const { return pc_; }
  void SetPc(uint32_t pc) {
    pc_ = pc;
    next_pc_ = pc + 4;
    in_delay_ = false;
  }
  uint32_t cop0(unsigned reg) const { return cop0_[reg & 15]; }
  void set_cop0(unsigned reg, uint32_t v) { cop0_[reg & 15] = v; }
  bool user_mode() const { return (cop0_[kCop0Status] & kStatusKUc) != 0; }
  Tlb& tlb() { return tlb_; }

  // ---- Physical memory ----
  // Direct writers of executable code through phys() must call
  // InvalidateDecodeRange afterwards; PhysWrite*/LoadImage do it themselves.
  PhysMem& phys() { return phys_; }
  const PhysMem& phys() const { return phys_; }
  uint32_t PhysRead32(uint32_t paddr) const {
    if (static_cast<uint64_t>(paddr) + 4 > phys_.size() || (paddr & 3) != 0) [[unlikely]] {
      PhysAccessFail("read", paddr);
    }
    uint32_t v;
    std::memcpy(&v, phys_.data() + paddr, 4);
    return v;
  }
  void PhysWrite32(uint32_t paddr, uint32_t value) {
    if (static_cast<uint64_t>(paddr) + 4 > phys_.size() || (paddr & 3) != 0) [[unlikely]] {
      PhysAccessFail("write", paddr);
    }
    std::memcpy(phys_.data() + paddr, &value, 4);
    InvalidateDecodePage(paddr);
  }
  void PhysWrite(uint32_t paddr, const std::vector<uint8_t>& bytes);
  // Drops cached predecoded instructions for every page overlapping
  // [paddr, paddr + bytes).
  void InvalidateDecodeRange(uint32_t paddr, size_t bytes);
  // Places an executable's text/data at fixed physical addresses and zeroes
  // its bss.  `vaddr_to_paddr` maps the image's virtual bases.
  void LoadImage(const Executable& exe, std::function<uint32_t(uint32_t)> vaddr_to_paddr);

  // ---- Devices ----
  Console& console() { return console_; }
  Disk& disk() { return disk_; }
  Clock& clock() { return clock_; }
  // Host upcall: invoked when the kernel writes the HOSTCALL register; the
  // return value becomes readable at the same register.
  void set_hostcall_handler(std::function<uint32_t(uint32_t)> handler) {
    hostcall_handler_ = std::move(handler);
  }

  // ---- Ground-truth reference tracing ----
  void set_trace_hook(std::function<void(const RefEvent&)> hook) { trace_hook_ = std::move(hook); }

  // ---- Counters ----
  // The counters live as registry-bindable wrl::Counter instruments; these
  // accessors are thin shims over the same storage (see RegisterStats).
  uint64_t cycles() const { return cycles_; }
  uint64_t instructions() const { return instructions_; }
  uint64_t user_instructions() const { return user_instructions_; }
  uint64_t kernel_instructions() const { return kernel_instructions_; }
  uint64_t arith_stall_cycles() const { return arith_stall_cycles_; }
  uint64_t utlb_miss_exceptions() const { return utlb_miss_exceptions_; }
  uint64_t exception_count(Exc code) const { return exception_counts_[static_cast<unsigned>(code)]; }
  uint64_t interrupts_taken() const { return exception_counts_[0]; }

  // Binds every machine counter (and, in timing mode, the memory-system
  // counters under `<prefix>memsys.`) into `registry`.  The machine must
  // outlive snapshots of the registry.
  void RegisterStats(StatsRegistry& registry, const std::string& prefix = "machine.");
  const MemorySystem* memsys() const { return timing_ ? &memsys_ : nullptr; }
  MemorySystem* mutable_memsys() { return timing_ ? &memsys_ : nullptr; }

  // Counts instruction fetches whose PC lies in [lo, hi): used by tests and
  // benches to watch the kernel idle loop from outside.
  void SetIdleRange(uint32_t lo, uint32_t hi) {
    idle_lo_ = lo;
    idle_hi_ = hi;
  }
  uint64_t idle_instructions() const { return idle_instructions_; }

  // Active fast-path layers (config, possibly overridden by WRL_FASTPATH=0).
  const FastPathConfig& fastpath() const { return fastpath_; }

 private:
  enum class Access : uint8_t { kFetch, kLoad, kStore };

  struct Translation {
    bool ok = false;
    uint32_t paddr = 0;
    bool cached = true;
    bool device = false;
  };

  // One physical page of predecoded instructions.
  struct DecodedPage {
    std::array<Inst, kPageBytes / 4> inst;
  };

  // A one-entry last-translation cache.  `key` packs (VPN, ASID, user-mode);
  // kuseg VPNs fit 19 bits, so the all-ones sentinel can never match.
  struct MicroTlb {
    static constexpr uint32_t kNoKey = 0xffffffffu;
    uint32_t key = kNoKey;
    uint32_t frame = 0;  // pfn << kPageShift
    bool cached = true;
    bool writable = false;  // TLB dirty bit: stores may only hit when set.
  };
  static uint32_t MicroTlbKey(uint32_t vaddr, uint8_t asid, bool user) {
    return ((vaddr >> kPageShift) << 8) | (uint32_t{asid} << 1) | (user ? 1u : 0u);
  }
  void FlushMicroTlb() {
    micro_itlb_.key = MicroTlb::kNoKey;
    micro_dtlb_.key = MicroTlb::kNoKey;
  }

  Translation Translate(uint32_t vaddr, Access access, uint32_t faulting_pc, bool in_delay);
  void RaiseException(Exc code, uint32_t faulting_pc, bool in_delay, uint32_t badvaddr,
                      bool badvaddr_valid, bool utlb_vector);
  void Execute(const Inst& inst, uint32_t cur, bool delay);
  bool CheckInterrupts();
  void TickDevices();
  // Recomputes the next cycle at which TickDevices can change device state.
  void UpdateDeviceDeadline();
  // Refreshes the hardware IP bits in Cause from the current irq lines
  // without advancing device time (used after device-register writes).
  void SyncIrqCause();

  DecodedPage* FillDecodedPage(uint32_t ppage);
  void InvalidateDecodePage(uint32_t paddr) {
    uint32_t ppage = paddr >> kPageShift;
    if (ppage < decode_cache_.size() && decode_cache_[ppage] != nullptr) {
      decode_cache_[ppage].reset();
    }
  }

  uint32_t MmioRead(uint32_t offset);
  void MmioWrite(uint32_t offset, uint32_t value);

  void WaitMulDiv();
  void UncountInstruction(uint32_t cur, bool was_user);
  [[noreturn]] void PhysAccessFail(const char* op, uint32_t paddr) const;

  MachineConfig config_;
  FastPathConfig fastpath_;
  PhysMem phys_;
  Tlb tlb_;
  MemorySystem memsys_;
  bool timing_;

  std::vector<std::unique_ptr<DecodedPage>> decode_cache_;  // Indexed by phys page.
  MicroTlb micro_itlb_;
  MicroTlb micro_dtlb_;
  // Next cycle at which devices must be ticked.  0 when event_devices is
  // off (tick every step, the slow path); kNoDeadline when nothing pends.
  static constexpr uint64_t kNoDeadline = ~uint64_t{0};
  uint64_t device_deadline_ = 0;

  uint32_t gpr_[32] = {0};
  uint32_t hi_ = 0;
  uint32_t lo_ = 0;
  uint32_t pc_ = kVecReset;
  uint32_t next_pc_ = kVecReset + 4;
  bool in_delay_ = false;
  uint32_t cop0_[16] = {0};

  Console console_;
  Disk disk_;
  Clock clock_;
  std::function<uint32_t(uint32_t)> hostcall_handler_;
  uint32_t hostcall_reply_ = 0;
  std::function<void(const RefEvent&)> trace_hook_;

  bool halted_ = false;
  uint32_t halt_code_ = 0;

  Counter cycles_;
  Counter instructions_;
  Counter user_instructions_;
  Counter kernel_instructions_;
  uint64_t muldiv_ready_ = 0;
  Counter arith_stall_cycles_;
  Counter utlb_miss_exceptions_;
  uint64_t exception_counts_[16] = {0};
  uint32_t idle_lo_ = 0;
  uint32_t idle_hi_ = 0;
  Counter idle_instructions_;
  uint64_t cycle_latch_hi_ = 0;
};

}  // namespace wrl

#endif  // WRLTRACE_MACH_MACHINE_H_
