// Physical memory for the simulated machine.
//
// A thin owning buffer that replaces the old `std::vector<uint8_t>` backing
// store.  The difference is construction cost: a vector value-initializes
// (memsets) every byte up front, which made *building* a 64 MB machine cost
// more than *running* a small workload on it — visible as the dominant term
// of BM_TracedExecution, which boots a fresh machine per iteration.  PhysMem
// allocates with calloc, so large simulated memories come straight from the
// OS as lazily-faulted zero pages and construction is O(1); only pages the
// workload actually touches ever get committed.
#ifndef WRLTRACE_MACH_PHYS_MEM_H_
#define WRLTRACE_MACH_PHYS_MEM_H_

#include <cstdint>
#include <cstdlib>
#include <new>

namespace wrl {

class PhysMem {
 public:
  explicit PhysMem(size_t bytes)
      : data_(static_cast<uint8_t*>(std::calloc(bytes == 0 ? 1 : bytes, 1))), size_(bytes) {
    if (data_ == nullptr) {
      throw std::bad_alloc();
    }
  }
  ~PhysMem() { std::free(data_); }

  PhysMem(const PhysMem&) = delete;
  PhysMem& operator=(const PhysMem&) = delete;

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  uint8_t& operator[](size_t i) { return data_[i]; }
  uint8_t operator[](size_t i) const { return data_[i]; }

 private:
  uint8_t* data_;
  size_t size_;
};

}  // namespace wrl

#endif  // WRLTRACE_MACH_PHYS_MEM_H_
