// The R3000-style software-managed TLB: 64 fully-associative entries,
// tlbwr-based random replacement with a free-running Random register
// confined to the unwired range, and an ASID tag so address spaces need not
// be flushed on context switch.
#ifndef WRLTRACE_MACH_TLB_H_
#define WRLTRACE_MACH_TLB_H_

#include <array>
#include <cstdint>
#include <optional>

namespace wrl {

// EntryHi layout: VPN in 31:12, ASID in 11:6.
// EntryLo layout: PFN in 31:12, N=11 (uncached), D=10 (dirty/writable),
//                 V=9 (valid), G=8 (global: ignore ASID).
struct TlbEntry {
  uint32_t entry_hi = 0;
  uint32_t entry_lo = 0;

  uint32_t vpn() const { return entry_hi >> 12; }
  uint8_t asid() const { return static_cast<uint8_t>((entry_hi >> 6) & 63); }
  uint32_t pfn() const { return entry_lo >> 12; }
  bool uncached() const { return (entry_lo >> 11) & 1; }
  bool dirty() const { return (entry_lo >> 10) & 1; }
  bool valid() const { return (entry_lo >> 9) & 1; }
  bool global() const { return (entry_lo >> 8) & 1; }
};

inline uint32_t MakeEntryHi(uint32_t vaddr, uint8_t asid) {
  return (vaddr & 0xfffff000u) | (uint32_t{asid} << 6);
}
inline uint32_t MakeEntryLo(uint32_t paddr, bool dirty, bool valid, bool global,
                            bool uncached = false) {
  return (paddr & 0xfffff000u) | (uint32_t{uncached} << 11) | (uint32_t{dirty} << 10) |
         (uint32_t{valid} << 9) | (uint32_t{global} << 8);
}

class Tlb {
 public:
  static constexpr unsigned kEntries = 64;

  explicit Tlb(unsigned wired = 8) : wired_(wired) { Reset(); }

  // Associative lookup.  Returns the matching entry index, or nullopt.
  // A match requires VPN equality and (global || asid match); validity and
  // dirtiness are the caller's business, as on real hardware.
  std::optional<unsigned> Lookup(uint32_t vaddr, uint8_t asid) const;

  TlbEntry& entry(unsigned index) { return entries_[index]; }
  const TlbEntry& entry(unsigned index) const { return entries_[index]; }

  // The Random register: decrements every instruction, wrapping within
  // [wired, kEntries).  Deterministic given the instruction count.
  unsigned Random(uint64_t instruction_count) const {
    unsigned range = kEntries - wired_;
    return wired_ + static_cast<unsigned>((kEntries - 1 - (instruction_count % range)) % range);
  }

  unsigned wired() const { return wired_; }
  void Reset();

 private:
  unsigned wired_;
  std::array<TlbEntry, kEntries> entries_{};
};

}  // namespace wrl

#endif  // WRLTRACE_MACH_TLB_H_
