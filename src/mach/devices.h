// Memory-mapped devices of the simulated DECstation.
//
// All devices live in one page of kseg1 (see address_space.h):
//
//   +0x00  CONSOLE_PUTC   (w)  emit one character
//   +0x04  HALT           (w)  stop the machine; value = exit code
//   +0x08  CYCLE_LO       (r)  low 32 bits of the cycle counter; latches HI
//   +0x0c  CYCLE_HI       (r)  latched high 32 bits
//   +0x10  CLOCK_PERIOD   (rw) cycles between clock interrupts (0 = off)
//   +0x14  CLOCK_ACK      (w)  acknowledge a clock interrupt
//   +0x20  DISK_SECTOR    (rw) first sector of the transfer
//   +0x24  DISK_ADDR      (rw) physical byte address of the DMA buffer
//   +0x28  DISK_COUNT     (rw) sectors to transfer
//   +0x2c  DISK_CMD       (w)  1 = read, 2 = write
//   +0x30  DISK_STATUS    (r)  0 idle, 1 busy, 2 done (interrupt pending)
//   +0x34  DISK_ACK       (w)  acknowledge a disk interrupt
//   +0x40  HOSTCALL       (rw) write: invoke the host callback with the
//                              value; read: the callback's last reply.  The
//                              traced kernel uses this to hand the in-kernel
//                              buffer to the analysis program.
//   +0x44  CONSOLE_PUTDEC (w)  emit a decimal number (debug convenience)
//
// The disk charges a latency in *machine cycles* before completing a
// transfer and raising its interrupt, so a workload doing synchronous I/O
// spends real simulated time in the kernel idle loop — the raw material for
// the paper's time-dilation and read-ahead discussions (§4.1, §5.1).
#ifndef WRLTRACE_MACH_DEVICES_H_
#define WRLTRACE_MACH_DEVICES_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mach/phys_mem.h"

namespace wrl {

// Device register offsets within the device page.
enum DeviceReg : uint32_t {
  kDevConsolePutc = 0x00,
  kDevHalt = 0x04,
  kDevCycleLo = 0x08,
  kDevCycleHi = 0x0c,
  kDevClockPeriod = 0x10,
  kDevClockAck = 0x14,
  kDevDiskSector = 0x20,
  kDevDiskAddr = 0x24,
  kDevDiskCount = 0x28,
  kDevDiskCmd = 0x2c,
  kDevDiskStatus = 0x30,
  kDevDiskAck = 0x34,
  kDevHostcall = 0x40,
  kDevConsolePutdec = 0x44,
};

constexpr uint32_t kDiskSectorBytes = 512;

struct DiskConfig {
  uint32_t num_sectors = 32 * 1024;      // 16 MB disk.
  uint64_t seek_cycles = 200000;         // Fixed per-operation latency.
  uint64_t per_sector_cycles = 10000;    // Transfer time per sector.
};

// The DMA disk.  Owns the disk image (flat byte array).
class Disk {
 public:
  explicit Disk(const DiskConfig& config);

  std::vector<uint8_t>& image() { return image_; }
  const DiskConfig& config() const { return config_; }

  // Register interface (called by the machine's MMIO dispatch).
  void WriteReg(uint32_t reg, uint32_t value, uint64_t now);
  uint32_t ReadReg(uint32_t reg) const;

  // Advances device time; performs DMA on completion.  Returns true while
  // the completion interrupt should be asserted.  When a read transfer
  // completes, `*dma_paddr`/`*dma_bytes` (if non-null) report the physical
  // range the DMA wrote, so the machine can invalidate predecoded pages.
  bool Tick(uint64_t now, PhysMem& phys_mem, uint32_t* dma_paddr = nullptr,
            uint32_t* dma_bytes = nullptr);

  bool busy() const { return status_ == 1; }
  bool irq() const { return irq_; }
  uint64_t completion_time() const { return completion_time_; }
  uint64_t operations() const { return operations_; }

 private:
  DiskConfig config_;
  std::vector<uint8_t> image_;
  uint32_t sector_ = 0;
  uint32_t dma_addr_ = 0;
  uint32_t count_ = 0;
  uint32_t command_ = 0;
  uint32_t status_ = 0;  // 0 idle, 1 busy, 2 done.
  bool irq_ = false;
  uint64_t completion_time_ = 0;
  uint64_t operations_ = 0;
};

// The programmable interval clock.
class Clock {
 public:
  void WriteReg(uint32_t reg, uint32_t value, uint64_t now);
  uint32_t ReadReg(uint32_t /*reg*/) const { return period_; }
  // Returns true while the clock interrupt should be asserted.
  bool Tick(uint64_t now);

  uint32_t period() const { return period_; }
  bool irq() const { return irq_; }
  // The next cycle at which Tick can change state (only meaningful while
  // the clock is running, i.e. period() != 0).
  uint64_t next_tick() const { return next_tick_; }
  uint64_t ticks() const { return ticks_; }

 private:
  uint32_t period_ = 0;
  uint64_t next_tick_ = 0;
  uint64_t ticks_ = 0;
  bool irq_ = false;
};

// The console: collects output for the harness/tests.
class Console {
 public:
  void PutChar(char c) { output_.push_back(c); }
  void PutDec(uint32_t value) { output_ += std::to_string(value); }
  const std::string& output() const { return output_; }
  void Clear() { output_.clear(); }

 private:
  std::string output_;
};

}  // namespace wrl

#endif  // WRLTRACE_MACH_DEVICES_H_
