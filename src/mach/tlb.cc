#include "mach/tlb.h"

#include "mach/address_space.h"

namespace wrl {

std::optional<unsigned> Tlb::Lookup(uint32_t vaddr, uint8_t asid) const {
  uint32_t vpn = vaddr >> 12;
  for (unsigned i = 0; i < kEntries; ++i) {
    const TlbEntry& e = entries_[i];
    if (e.vpn() == vpn && (e.global() || e.asid() == asid)) {
      return i;
    }
  }
  return std::nullopt;
}

void Tlb::Reset() {
  // Park every entry on a distinct kseg0 VPN: kseg0 is unmapped, so these
  // can never match a lookup.  (Real R3000 kernels flush the TLB the same
  // way — a freshly zeroed TLB would spuriously match VPN 0.)
  for (unsigned i = 0; i < kEntries; ++i) {
    entries_[i].entry_hi = MakeEntryHi(kKseg0 + i * kPageBytes, 0);
    entries_[i].entry_lo = 0;
  }
}

}  // namespace wrl
