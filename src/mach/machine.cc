#include "mach/machine.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "support/error.h"
#include "support/strings.h"

namespace wrl {

namespace {

// `WRL_FASTPATH=0` forces every fast-path layer off, so a rebuilt-free A/B
// run (or a bisection of a suspected fast-path bug) is always one
// environment variable away.
FastPathConfig ResolveFastPath(const FastPathConfig& configured) {
  const char* env = std::getenv("WRL_FASTPATH");
  if (env != nullptr && env[0] == '0' && env[1] == '\0') {
    return FastPathConfig::AllOff();
  }
  return configured;
}

}  // namespace

Machine::Machine(const MachineConfig& config)
    : config_(config),
      fastpath_(ResolveFastPath(config.fastpath)),
      phys_(config.phys_bytes),
      tlb_(config.tlb_wired),
      memsys_(config.memsys),
      timing_(config.timing),
      disk_(config.disk) {
  WRL_CHECK(config.phys_bytes % kPageBytes == 0);
  WRL_CHECK_MSG(config.phys_bytes <= kDevicePhysBase, "RAM would shadow the device page");
  cop0_[kCop0Prid] = 0x0230;  // R3000-ish.
  if (fastpath_.predecode) {
    decode_cache_.resize(config.phys_bytes / kPageBytes);
  }
  // device_deadline_ == 0 makes the per-step deadline test always fire, which
  // *is* the slow path: TickDevices on every instruction.
  if (fastpath_.event_devices) {
    UpdateDeviceDeadline();
  }
}

void Machine::PhysAccessFail(const char* op, uint32_t paddr) const {
  throw InternalError(StrFormat("phys %s out of range at 0x%08x", op, paddr));
}

void Machine::PhysWrite(uint32_t paddr, const std::vector<uint8_t>& bytes) {
  WRL_CHECK_MSG(static_cast<uint64_t>(paddr) + bytes.size() <= phys_.size(),
                StrFormat("phys image write out of range at 0x%08x", paddr));
  std::memcpy(phys_.data() + paddr, bytes.data(), bytes.size());
  InvalidateDecodeRange(paddr, bytes.size());
}

void Machine::InvalidateDecodeRange(uint32_t paddr, size_t bytes) {
  if (bytes == 0 || decode_cache_.empty()) {
    return;
  }
  uint32_t first = paddr >> kPageShift;
  uint64_t last = (static_cast<uint64_t>(paddr) + bytes - 1) >> kPageShift;
  for (uint64_t p = first; p <= last && p < decode_cache_.size(); ++p) {
    decode_cache_[p].reset();
  }
}

Machine::DecodedPage* Machine::FillDecodedPage(uint32_t ppage) {
  auto page = std::make_unique<DecodedPage>();
  const uint8_t* base = phys_.data() + (static_cast<size_t>(ppage) << kPageShift);
  for (size_t i = 0; i < page->inst.size(); ++i) {
    uint32_t word;
    std::memcpy(&word, base + i * 4, 4);
    page->inst[i] = Decode(word);
  }
  DecodedPage* out = page.get();
  decode_cache_[ppage] = std::move(page);
  return out;
}

void Machine::LoadImage(const Executable& exe, std::function<uint32_t(uint32_t)> vaddr_to_paddr) {
  PhysWrite(vaddr_to_paddr(exe.text_base), exe.text);
  if (!exe.data.empty()) {
    PhysWrite(vaddr_to_paddr(exe.data_base), exe.data);
  }
  if (exe.bss_size > 0) {
    uint32_t paddr = vaddr_to_paddr(exe.bss_base);
    WRL_CHECK(static_cast<uint64_t>(paddr) + exe.bss_size <= phys_.size());
    std::memset(phys_.data() + paddr, 0, exe.bss_size);
    InvalidateDecodeRange(paddr, exe.bss_size);
  }
}

void Machine::RaiseException(Exc code, uint32_t faulting_pc, bool in_delay, uint32_t badvaddr,
                             bool badvaddr_valid, bool utlb_vector) {
  ++exception_counts_[static_cast<unsigned>(code)];
  if (utlb_vector) {
    ++utlb_miss_exceptions_;
  }
  uint32_t cause = cop0_[kCop0Cause];
  cause &= ~0x7cu;  // Clear ExcCode.
  cause |= static_cast<uint32_t>(code) << 2;
  if (in_delay) {
    cause |= 0x80000000u;  // BD
    cop0_[kCop0Epc] = faulting_pc - 4;
  } else {
    cause &= ~0x80000000u;
    cop0_[kCop0Epc] = faulting_pc;
  }
  cop0_[kCop0Cause] = cause;
  if (badvaddr_valid) {
    cop0_[kCop0BadVAddr] = badvaddr;
    // Context: PTEBase | BadVPN<<2 — points straight at the PTE when the
    // kernel keeps a linear page table at PTEBase (the 9-instruction UTLB
    // handler depends on this).
    uint32_t ptebase = cop0_[kCop0Context] & 0xffe00000u;
    cop0_[kCop0Context] = ptebase | (((badvaddr >> 12) & 0x7ffffu) << 2);
    cop0_[kCop0EntryHi] = MakeEntryHi(badvaddr, static_cast<uint8_t>((cop0_[kCop0EntryHi] >> 6) & 63));
  }
  // Push the KU/IE stack: old<-prev, prev<-current, current<-(kernel, off).
  uint32_t status = cop0_[kCop0Status];
  uint32_t stack = status & 0x3f;
  stack = ((stack << 2) & 0x3c);
  cop0_[kCop0Status] = (status & ~0x3fu) | stack;
  pc_ = utlb_vector ? kVecUtlbMiss : kVecGeneral;
  next_pc_ = pc_ + 4;
  in_delay_ = false;
  cycles_ += config_.exception_entry_cycles;
  // Exception entry is a mode transition (and may rewrite EntryHi above).
  FlushMicroTlb();
}

Machine::Translation Machine::Translate(uint32_t vaddr, Access access, uint32_t faulting_pc,
                                        bool in_delay) {
  Translation t;
  bool user = user_mode();
  bool store = access == Access::kStore;
  MicroTlb& mt = access == Access::kFetch ? micro_itlb_ : micro_dtlb_;
  if (fastpath_.micro_tlb && (InKuseg(vaddr) || InKseg2(vaddr))) {
    uint8_t asid = static_cast<uint8_t>((cop0_[kCop0EntryHi] >> 6) & 63);
    uint32_t key = MicroTlbKey(vaddr, asid, user);
    // Stores may only hit a writable (TLB-dirty) cached translation; a clean
    // page must fall through so the slow path raises the Mod exception.
    if (mt.key == key && (!store || mt.writable)) {
      t.ok = true;
      t.paddr = mt.frame | (vaddr & (kPageBytes - 1));
      t.cached = mt.cached;
      return t;
    }
  }
  if (InKuseg(vaddr)) {
    uint8_t asid = static_cast<uint8_t>((cop0_[kCop0EntryHi] >> 6) & 63);
    auto index = tlb_.Lookup(vaddr, asid);
    if (!index) {
      // kuseg refill goes through the dedicated UTLB vector — unless the
      // CPU is already in kernel mode *handling* something at the general
      // vector; R3000 kernels keep the UTLB path valid in that case too, so
      // we always use the dedicated vector for kuseg misses.
      RaiseException(store ? Exc::kTlbS : Exc::kTlbL, faulting_pc, in_delay, vaddr, true, true);
      return t;
    }
    const TlbEntry& e = tlb_.entry(*index);
    if (!e.valid()) {
      RaiseException(store ? Exc::kTlbS : Exc::kTlbL, faulting_pc, in_delay, vaddr, true, false);
      return t;
    }
    if (store && !e.dirty()) {
      RaiseException(Exc::kMod, faulting_pc, in_delay, vaddr, true, false);
      return t;
    }
    t.ok = true;
    t.paddr = (e.pfn() << 12) | (vaddr & 0xfff);
    t.cached = !e.uncached();
    if (fastpath_.micro_tlb) {
      mt.key = MicroTlbKey(vaddr, asid, user);
      mt.frame = e.pfn() << kPageShift;
      mt.cached = t.cached;
      mt.writable = e.dirty();
    }
    return t;
  }
  if (user) {
    RaiseException(store ? Exc::kAdES : Exc::kAdEL, faulting_pc, in_delay, vaddr, true, false);
    return t;
  }
  if (InKseg0(vaddr)) {
    t.ok = true;
    t.paddr = vaddr - kKseg0;
    t.cached = true;
    return t;
  }
  if (InKseg1(vaddr)) {
    t.ok = true;
    t.paddr = vaddr - kKseg1;
    t.cached = false;
    t.device = (t.paddr >= kDevicePhysBase && t.paddr < kDevicePhysBase + kDeviceBytes);
    return t;
  }
  // kseg2: mapped kernel segment; misses use the *general* vector (the
  // paper's slow KTLB path).
  uint8_t asid = static_cast<uint8_t>((cop0_[kCop0EntryHi] >> 6) & 63);
  auto index = tlb_.Lookup(vaddr, asid);
  if (!index || !tlb_.entry(*index).valid()) {
    RaiseException(store ? Exc::kTlbS : Exc::kTlbL, faulting_pc, in_delay, vaddr, true, false);
    return t;
  }
  const TlbEntry& e = tlb_.entry(*index);
  if (store && !e.dirty()) {
    RaiseException(Exc::kMod, faulting_pc, in_delay, vaddr, true, false);
    return t;
  }
  t.ok = true;
  t.paddr = (e.pfn() << 12) | (vaddr & 0xfff);
  t.cached = !e.uncached();
  if (fastpath_.micro_tlb) {
    mt.key = MicroTlbKey(vaddr, asid, user);
    mt.frame = e.pfn() << kPageShift;
    mt.cached = t.cached;
    mt.writable = e.dirty();
  }
  return t;
}

void Machine::TickDevices() {
  uint32_t ip = 0;
  uint32_t dma_paddr = 0;
  uint32_t dma_bytes = 0;
  if (disk_.Tick(cycles_, phys_, &dma_paddr, &dma_bytes)) {
    ip |= 1u << kIrqDisk;
  }
  if (dma_bytes != 0) {
    // A completed disk read just rewrote RAM behind the decode cache.
    InvalidateDecodeRange(dma_paddr, dma_bytes);
  }
  if (clock_.Tick(cycles_)) {
    ip |= 1u << kIrqClock;
  }
  uint32_t cause = cop0_[kCop0Cause];
  cause &= ~(0xfcu << 8);  // Hardware IP bits 15:10 (IP2..IP7).
  cause |= ip << 8;
  cop0_[kCop0Cause] = cause;
  if (fastpath_.event_devices) {
    UpdateDeviceDeadline();
  }
}

void Machine::UpdateDeviceDeadline() {
  uint64_t deadline = kNoDeadline;
  if (disk_.busy()) {
    deadline = std::min(deadline, disk_.completion_time());
  }
  if (clock_.period() != 0) {
    deadline = std::min(deadline, clock_.next_tick());
  }
  device_deadline_ = deadline;
}

void Machine::SyncIrqCause() {
  uint32_t ip = 0;
  if (disk_.irq()) {
    ip |= 1u << kIrqDisk;
  }
  if (clock_.irq()) {
    ip |= 1u << kIrqClock;
  }
  uint32_t cause = cop0_[kCop0Cause];
  cause &= ~(0xfcu << 8);
  cause |= ip << 8;
  cop0_[kCop0Cause] = cause;
}

bool Machine::CheckInterrupts() {
  uint32_t status = cop0_[kCop0Status];
  if ((status & kStatusIEc) == 0) {
    return false;
  }
  uint32_t pending = (cop0_[kCop0Cause] >> 8) & 0xff;
  uint32_t mask = (status >> kStatusImShift) & 0xff;
  if ((pending & mask) == 0) {
    return false;
  }
  RaiseException(Exc::kInt, pc_, in_delay_, 0, false, false);
  return true;
}

uint32_t Machine::MmioRead(uint32_t offset) {
  switch (offset) {
    case kDevCycleLo:
      cycle_latch_hi_ = cycles_ >> 32;
      return static_cast<uint32_t>(cycles_);
    case kDevCycleHi:
      return static_cast<uint32_t>(cycle_latch_hi_);
    case kDevClockPeriod:
      return clock_.ReadReg(offset);
    case kDevDiskSector:
    case kDevDiskAddr:
    case kDevDiskCount:
    case kDevDiskStatus:
      return disk_.ReadReg(offset);
    case kDevHostcall:
      return hostcall_reply_;
    default:
      throw Error(StrFormat("MMIO read from bad register 0x%x", offset));
  }
}

void Machine::MmioWrite(uint32_t offset, uint32_t value) {
  switch (offset) {
    case kDevConsolePutc:
      console_.PutChar(static_cast<char>(value));
      break;
    case kDevConsolePutdec:
      console_.PutDec(value);
      break;
    case kDevHalt:
      halted_ = true;
      halt_code_ = value;
      break;
    case kDevClockPeriod:
    case kDevClockAck:
      clock_.WriteReg(offset, value, cycles_);
      if (fastpath_.event_devices) {
        // Do NOT tick here — that could advance device time earlier than the
        // slow path would.  Refresh the IP bits from the (possibly acked)
        // irq lines and recompute when the models next need attention.
        SyncIrqCause();
        UpdateDeviceDeadline();
      }
      break;
    case kDevDiskSector:
    case kDevDiskAddr:
    case kDevDiskCount:
    case kDevDiskCmd:
    case kDevDiskAck:
      disk_.WriteReg(offset, value, cycles_);
      if (fastpath_.event_devices) {
        SyncIrqCause();
        UpdateDeviceDeadline();
      }
      break;
    case kDevHostcall:
      hostcall_reply_ = hostcall_handler_ ? hostcall_handler_(value) : 0;
      break;
    default:
      throw Error(StrFormat("MMIO write to bad register 0x%x", offset));
  }
}

void Machine::UncountInstruction(uint32_t cur, bool was_user) {
  // A data-access fault aborts the instruction; it will re-execute after
  // the handler, so the first attempt must not inflate the architectural
  // instruction counters (the trace of the original binary records it once).
  // `was_user` is the mode *before* any exception push.
  --instructions_;
  if (was_user) {
    --user_instructions_;
  } else {
    --kernel_instructions_;
  }
  if (cur >= idle_lo_ && cur < idle_hi_) {
    --idle_instructions_;
  }
}

void Machine::WaitMulDiv() {
  if (cycles_ < muldiv_ready_) {
    arith_stall_cycles_ += muldiv_ready_ - cycles_;
    cycles_ = muldiv_ready_;
  }
}

void Machine::Step() {
  if (halted_) {
    return;
  }
  // With event_devices off the deadline stays 0, so this fires on every
  // step — exactly the old per-instruction TickDevices.
  if (cycles_ >= device_deadline_) {
    TickDevices();
  }
  if (CheckInterrupts()) {
    return;
  }

  uint32_t cur = pc_;
  bool delay = in_delay_;

  Translation ft = Translate(cur, Access::kFetch, cur, delay);
  if (!ft.ok) {
    return;
  }
  if (ft.device || (cur & 3) != 0) {
    RaiseException(Exc::kAdEL, cur, delay, cur, true, false);
    return;
  }
  Inst inst;
  if (fastpath_.predecode && (ft.paddr >> kPageShift) < decode_cache_.size()) [[likely]] {
    uint32_t ppage = ft.paddr >> kPageShift;
    DecodedPage* dp = decode_cache_[ppage] ? decode_cache_[ppage].get() : FillDecodedPage(ppage);
    inst = dp->inst[(ft.paddr & (kPageBytes - 1)) >> 2];
  } else {
    // Slow path; also catches fetches beyond RAM (PhysRead32 faults).
    inst = Decode(PhysRead32(ft.paddr));
  }
  if (timing_) {
    cycles_ += ft.cached ? memsys_.Fetch(ft.paddr, cycles_) : memsys_.UncachedLoad(ft.paddr, cycles_);
  }
  bool user = user_mode();
  if (trace_hook_) {
    trace_hook_({RefEvent::kIfetch, cur, 4, user, cur});
  }
  ++instructions_;
  if (user) {
    ++user_instructions_;
  } else {
    ++kernel_instructions_;
  }
  if (cur >= idle_lo_ && cur < idle_hi_) {
    ++idle_instructions_;
  }

  pc_ = next_pc_;
  next_pc_ = pc_ + 4;
  in_delay_ = false;
  ++cycles_;

  Execute(inst, cur, delay);
}

void Machine::Execute(const Inst& inst, uint32_t cur, bool delay) {
  auto rs = [&] { return gpr_[inst.rs]; };
  auto rt = [&] { return gpr_[inst.rt]; };
  auto write_rd = [&](uint32_t v) { set_gpr(inst.rd, v); };
  auto write_rt = [&](uint32_t v) { set_gpr(inst.rt, v); };
  auto branch_to = [&](uint32_t target) {
    WRL_CHECK_MSG(!delay, StrFormat("control transfer in a delay slot at 0x%08x", cur));
    next_pc_ = target;
    in_delay_ = true;
  };
  int32_t simm = inst.imm;
  uint32_t uimm = static_cast<uint16_t>(inst.imm);

  switch (inst.op) {
    case Op::kInvalid:
      RaiseException(Exc::kRI, cur, delay, 0, false, false);
      return;

    // --- ALU, register form ---
    case Op::kSll: write_rd(rt() << inst.shamt); return;
    case Op::kSrl: write_rd(rt() >> inst.shamt); return;
    case Op::kSra: write_rd(static_cast<uint32_t>(static_cast<int32_t>(rt()) >> inst.shamt)); return;
    case Op::kSllv: write_rd(rt() << (rs() & 31)); return;
    case Op::kSrlv: write_rd(rt() >> (rs() & 31)); return;
    case Op::kSrav:
      write_rd(static_cast<uint32_t>(static_cast<int32_t>(rt()) >> (rs() & 31)));
      return;
    case Op::kAdd: {
      int64_t sum = static_cast<int64_t>(static_cast<int32_t>(rs())) + static_cast<int32_t>(rt());
      if (sum != static_cast<int32_t>(sum)) {
        RaiseException(Exc::kOv, cur, delay, 0, false, false);
        return;
      }
      write_rd(static_cast<uint32_t>(sum));
      return;
    }
    case Op::kAddu: write_rd(rs() + rt()); return;
    case Op::kSub: {
      int64_t diff = static_cast<int64_t>(static_cast<int32_t>(rs())) - static_cast<int32_t>(rt());
      if (diff != static_cast<int32_t>(diff)) {
        RaiseException(Exc::kOv, cur, delay, 0, false, false);
        return;
      }
      write_rd(static_cast<uint32_t>(diff));
      return;
    }
    case Op::kSubu: write_rd(rs() - rt()); return;
    case Op::kAnd: write_rd(rs() & rt()); return;
    case Op::kOr: write_rd(rs() | rt()); return;
    case Op::kXor: write_rd(rs() ^ rt()); return;
    case Op::kNor: write_rd(~(rs() | rt())); return;
    case Op::kSlt: write_rd(static_cast<int32_t>(rs()) < static_cast<int32_t>(rt()) ? 1 : 0); return;
    case Op::kSltu: write_rd(rs() < rt() ? 1 : 0); return;

    // --- Multiply/divide ---
    case Op::kMult: {
      WaitMulDiv();
      int64_t prod = static_cast<int64_t>(static_cast<int32_t>(rs())) *
                     static_cast<int64_t>(static_cast<int32_t>(rt()));
      lo_ = static_cast<uint32_t>(prod);
      hi_ = static_cast<uint32_t>(prod >> 32);
      muldiv_ready_ = cycles_ + ArithStallCycles(inst.op);
      return;
    }
    case Op::kMultu: {
      WaitMulDiv();
      uint64_t prod = static_cast<uint64_t>(rs()) * rt();
      lo_ = static_cast<uint32_t>(prod);
      hi_ = static_cast<uint32_t>(prod >> 32);
      muldiv_ready_ = cycles_ + ArithStallCycles(inst.op);
      return;
    }
    case Op::kDiv: {
      WaitMulDiv();
      int32_t a = static_cast<int32_t>(rs());
      int32_t b = static_cast<int32_t>(rt());
      if (b == 0) {
        lo_ = (a >= 0) ? 0xffffffffu : 1;
        hi_ = static_cast<uint32_t>(a);
      } else if (a == INT32_MIN && b == -1) {
        lo_ = static_cast<uint32_t>(INT32_MIN);
        hi_ = 0;
      } else {
        lo_ = static_cast<uint32_t>(a / b);
        hi_ = static_cast<uint32_t>(a % b);
      }
      muldiv_ready_ = cycles_ + ArithStallCycles(inst.op);
      return;
    }
    case Op::kDivu: {
      WaitMulDiv();
      if (rt() == 0) {
        lo_ = 0xffffffffu;
        hi_ = rs();
      } else {
        lo_ = rs() / rt();
        hi_ = rs() % rt();
      }
      muldiv_ready_ = cycles_ + ArithStallCycles(inst.op);
      return;
    }
    case Op::kMfhi:
      WaitMulDiv();
      write_rd(hi_);
      return;
    case Op::kMflo:
      WaitMulDiv();
      write_rd(lo_);
      return;
    case Op::kMthi: hi_ = rs(); return;
    case Op::kMtlo: lo_ = rs(); return;

    // --- ALU, immediate form ---
    case Op::kAddi: {
      int64_t sum = static_cast<int64_t>(static_cast<int32_t>(rs())) + simm;
      if (sum != static_cast<int32_t>(sum)) {
        RaiseException(Exc::kOv, cur, delay, 0, false, false);
        return;
      }
      write_rt(static_cast<uint32_t>(sum));
      return;
    }
    case Op::kAddiu: write_rt(rs() + static_cast<uint32_t>(simm)); return;
    case Op::kSlti: write_rt(static_cast<int32_t>(rs()) < simm ? 1 : 0); return;
    case Op::kSltiu: write_rt(rs() < static_cast<uint32_t>(simm) ? 1 : 0); return;
    case Op::kAndi: write_rt(rs() & uimm); return;
    case Op::kOri: write_rt(rs() | uimm); return;
    case Op::kXori: write_rt(rs() ^ uimm); return;
    case Op::kLui: write_rt(uimm << 16); return;

    // --- Control transfer ---
    case Op::kJ: branch_to(JumpTarget(cur, inst.target)); return;
    case Op::kJal:
      set_gpr(kRa, cur + 8);
      branch_to(JumpTarget(cur, inst.target));
      return;
    case Op::kJr: branch_to(rs()); return;
    case Op::kJalr: {
      uint32_t target = rs();
      write_rd(cur + 8);
      branch_to(target);
      return;
    }
    case Op::kBeq:
      if (rs() == rt()) {
        branch_to(BranchTarget(cur, inst.imm));
      }
      return;
    case Op::kBne:
      if (rs() != rt()) {
        branch_to(BranchTarget(cur, inst.imm));
      }
      return;
    case Op::kBlez:
      if (static_cast<int32_t>(rs()) <= 0) {
        branch_to(BranchTarget(cur, inst.imm));
      }
      return;
    case Op::kBgtz:
      if (static_cast<int32_t>(rs()) > 0) {
        branch_to(BranchTarget(cur, inst.imm));
      }
      return;
    case Op::kBltz:
      if (static_cast<int32_t>(rs()) < 0) {
        branch_to(BranchTarget(cur, inst.imm));
      }
      return;
    case Op::kBgez:
      if (static_cast<int32_t>(rs()) >= 0) {
        branch_to(BranchTarget(cur, inst.imm));
      }
      return;

    // --- Memory ---
    case Op::kLb:
    case Op::kLh:
    case Op::kLw:
    case Op::kLbu:
    case Op::kLhu: {
      uint32_t vaddr = rs() + static_cast<uint32_t>(simm);
      unsigned bytes = MemAccessBytes(inst.op);
      bool was_user = user_mode();
      if (vaddr % bytes != 0) {
        UncountInstruction(cur, was_user);
        RaiseException(Exc::kAdEL, cur, delay, vaddr, true, false);
        return;
      }
      Translation t = Translate(vaddr, Access::kLoad, cur, delay);
      if (!t.ok) {
        UncountInstruction(cur, was_user);
        return;
      }
      uint32_t value;
      if (t.device) {
        value = MmioRead(t.paddr - kDevicePhysBase);
      } else {
        // The 64-bit sum keeps the bounds check honest near 0xfffffffc
        // (uint32 `paddr + bytes` would wrap and pass).
        if (static_cast<uint64_t>(t.paddr) + bytes > phys_.size()) [[unlikely]] {
          throw InternalError(
              StrFormat("load beyond physical memory: va 0x%08x pa 0x%08x", vaddr, t.paddr));
        }
        uint32_t w = 0;
        std::memcpy(&w, phys_.data() + t.paddr, bytes);
        value = w;
      }
      if (timing_) {
        cycles_ += t.cached ? memsys_.Load(t.paddr, cycles_) : memsys_.UncachedLoad(t.paddr, cycles_);
      }
      if (trace_hook_) {
        trace_hook_({RefEvent::kLoad, vaddr, static_cast<uint8_t>(bytes), user_mode(), cur});
      }
      switch (inst.op) {
        case Op::kLb: value = static_cast<uint32_t>(static_cast<int8_t>(value)); break;
        case Op::kLh: value = static_cast<uint32_t>(static_cast<int16_t>(value)); break;
        default: break;
      }
      write_rt(value);
      return;
    }
    case Op::kSb:
    case Op::kSh:
    case Op::kSw: {
      uint32_t vaddr = rs() + static_cast<uint32_t>(simm);
      unsigned bytes = MemAccessBytes(inst.op);
      bool was_user = user_mode();
      if (vaddr % bytes != 0) {
        UncountInstruction(cur, was_user);
        RaiseException(Exc::kAdES, cur, delay, vaddr, true, false);
        return;
      }
      Translation t = Translate(vaddr, Access::kStore, cur, delay);
      if (!t.ok) {
        UncountInstruction(cur, was_user);
        return;
      }
      if (t.device) {
        MmioWrite(t.paddr - kDevicePhysBase, rt());
      } else {
        if (static_cast<uint64_t>(t.paddr) + bytes > phys_.size()) [[unlikely]] {
          throw InternalError(
              StrFormat("store beyond physical memory: va 0x%08x pa 0x%08x", vaddr, t.paddr));
        }
        uint32_t value = rt();
        std::memcpy(phys_.data() + t.paddr, &value, bytes);
        // Aligned sub-word stores never cross a page, so one page suffices.
        InvalidateDecodePage(t.paddr);
      }
      if (timing_) {
        cycles_ += t.cached ? memsys_.Store(t.paddr, cycles_) : memsys_.UncachedStore(t.paddr, cycles_);
      }
      if (trace_hook_) {
        trace_hook_({RefEvent::kStore, vaddr, static_cast<uint8_t>(bytes), user_mode(), cur});
      }
      return;
    }

    // --- Traps ---
    case Op::kSyscall:
      RaiseException(Exc::kSys, cur, delay, 0, false, false);
      return;
    case Op::kBreak:
      RaiseException(Exc::kBp, cur, delay, 0, false, false);
      return;

    // --- COP0 ---
    case Op::kMfc0:
    case Op::kMtc0:
    case Op::kTlbr:
    case Op::kTlbwi:
    case Op::kTlbwr:
    case Op::kTlbp:
    case Op::kRfe: {
      if (user_mode()) {
        RaiseException(Exc::kRI, cur, delay, 0, false, false);
        return;
      }
      switch (inst.op) {
        case Op::kMfc0:
          if (inst.rd == kCop0Random) {
            write_rt(static_cast<uint32_t>(tlb_.Random(instructions_)) << 8);
          } else {
            write_rt(cop0_[inst.rd & 15]);
          }
          break;
        case Op::kMtc0: {
          unsigned reg = inst.rd & 15;
          cop0_[reg] = rt();
          if (reg == kCop0EntryHi || reg == kCop0Status) {
            // ASID or mode may have changed.
            FlushMicroTlb();
          }
          if (reg == kCop0Cause && fastpath_.event_devices) {
            // The slow path rewrites the hardware IP bits from the irq
            // lines on the very next step; mirror that immediately.
            SyncIrqCause();
          }
          break;
        }
        case Op::kTlbr: {
          unsigned index = (cop0_[kCop0Index] >> 8) & 63;
          cop0_[kCop0EntryHi] = tlb_.entry(index).entry_hi;
          cop0_[kCop0EntryLo] = tlb_.entry(index).entry_lo;
          break;
        }
        case Op::kTlbwi: {
          unsigned index = (cop0_[kCop0Index] >> 8) & 63;
          tlb_.entry(index) = {cop0_[kCop0EntryHi], cop0_[kCop0EntryLo]};
          FlushMicroTlb();
          break;
        }
        case Op::kTlbwr: {
          unsigned index = tlb_.Random(instructions_);
          tlb_.entry(index) = {cop0_[kCop0EntryHi], cop0_[kCop0EntryLo]};
          FlushMicroTlb();
          break;
        }
        case Op::kTlbp: {
          uint32_t vaddr = cop0_[kCop0EntryHi] & 0xfffff000u;
          uint8_t asid = static_cast<uint8_t>((cop0_[kCop0EntryHi] >> 6) & 63);
          auto index = tlb_.Lookup(vaddr, asid);
          cop0_[kCop0Index] = index ? (static_cast<uint32_t>(*index) << 8) : 0x80000000u;
          break;
        }
        case Op::kRfe: {
          // Pop the KU/IE stack: current<-prev, prev<-old.
          uint32_t status = cop0_[kCop0Status];
          uint32_t stack = status & 0x3f;
          stack = ((stack >> 2) & 0x0f) | (stack & 0x30);
          cop0_[kCop0Status] = (status & ~0x3fu) | stack;
          // rfe is the kernel->user mode transition.
          FlushMicroTlb();
          break;
        }
        default:
          break;
      }
      return;
    }
  }
}

RunResult Machine::Run(uint64_t max_instructions) {
  uint64_t limit = instructions_ + max_instructions;
  while (!halted_ && instructions_ < limit) {
    Step();
  }
  RunResult r;
  r.halted = halted_;
  r.halt_code = halt_code_;
  r.instructions = instructions_;
  r.cycles = cycles_;
  return r;
}

void Machine::RegisterStats(StatsRegistry& registry, const std::string& prefix) {
  registry.AddCounter(prefix + "cycles", &cycles_);
  registry.AddCounter(prefix + "instructions", &instructions_);
  registry.AddCounter(prefix + "user_instructions", &user_instructions_);
  registry.AddCounter(prefix + "kernel_instructions", &kernel_instructions_);
  registry.AddCounter(prefix + "idle_instructions", &idle_instructions_);
  registry.AddCounter(prefix + "arith_stall_cycles", &arith_stall_cycles_);
  registry.AddCounter(prefix + "utlb_miss_exceptions", &utlb_miss_exceptions_);
  registry.AddCounter(prefix + "exc.interrupts", &exception_counts_[static_cast<unsigned>(Exc::kInt)]);
  registry.AddCounter(prefix + "exc.tlb_mod", &exception_counts_[static_cast<unsigned>(Exc::kMod)]);
  registry.AddCounter(prefix + "exc.tlb_load", &exception_counts_[static_cast<unsigned>(Exc::kTlbL)]);
  registry.AddCounter(prefix + "exc.tlb_store", &exception_counts_[static_cast<unsigned>(Exc::kTlbS)]);
  registry.AddCounter(prefix + "exc.addr_error",
                      &exception_counts_[static_cast<unsigned>(Exc::kAdEL)]);
  registry.AddCounter(prefix + "exc.syscalls", &exception_counts_[static_cast<unsigned>(Exc::kSys)]);
  if (timing_) {
    memsys_.RegisterStats(registry, prefix + "memsys.");
  }
}

}  // namespace wrl
