#include "mach/devices.h"

#include <algorithm>
#include <cstring>

#include "support/error.h"
#include "support/strings.h"

namespace wrl {

Disk::Disk(const DiskConfig& config) : config_(config) {
  image_.assign(static_cast<size_t>(config.num_sectors) * kDiskSectorBytes, 0);
}

void Disk::WriteReg(uint32_t reg, uint32_t value, uint64_t now) {
  switch (reg) {
    case kDevDiskSector:
      sector_ = value;
      break;
    case kDevDiskAddr:
      dma_addr_ = value;
      break;
    case kDevDiskCount:
      count_ = value;
      break;
    case kDevDiskCmd:
      if (status_ == 1) {
        throw Error("disk command issued while busy");
      }
      if (value != 1 && value != 2) {
        throw Error(StrFormat("bad disk command %u", value));
      }
      if (static_cast<uint64_t>(sector_) + count_ > config_.num_sectors) {
        throw Error(StrFormat("disk transfer beyond end of disk (sector %u count %u)", sector_,
                              count_));
      }
      command_ = value;
      status_ = 1;
      completion_time_ = now + config_.seek_cycles +
                         static_cast<uint64_t>(count_) * config_.per_sector_cycles;
      ++operations_;
      break;
    case kDevDiskAck:
      irq_ = false;
      if (status_ == 2) {
        status_ = 0;
      }
      break;
    default:
      throw Error(StrFormat("bad disk register write 0x%x", reg));
  }
}

uint32_t Disk::ReadReg(uint32_t reg) const {
  switch (reg) {
    case kDevDiskSector: return sector_;
    case kDevDiskAddr: return dma_addr_;
    case kDevDiskCount: return count_;
    case kDevDiskStatus: return status_;
    default:
      throw Error(StrFormat("bad disk register read 0x%x", reg));
  }
}

bool Disk::Tick(uint64_t now, PhysMem& phys_mem, uint32_t* dma_paddr, uint32_t* dma_bytes) {
  if (status_ == 1 && now >= completion_time_) {
    size_t bytes = static_cast<size_t>(count_) * kDiskSectorBytes;
    size_t disk_off = static_cast<size_t>(sector_) * kDiskSectorBytes;
    WRL_CHECK_MSG(static_cast<size_t>(dma_addr_) + bytes <= phys_mem.size(),
                  StrFormat("disk DMA out of physical memory at 0x%08x", dma_addr_));
    if (command_ == 1) {
      std::memcpy(phys_mem.data() + dma_addr_, image_.data() + disk_off, bytes);
      if (dma_paddr != nullptr) {
        *dma_paddr = dma_addr_;
        *dma_bytes = static_cast<uint32_t>(bytes);
      }
    } else {
      std::memcpy(image_.data() + disk_off, phys_mem.data() + dma_addr_, bytes);
    }
    status_ = 2;
    irq_ = true;
  }
  return irq_;
}

void Clock::WriteReg(uint32_t reg, uint32_t value, uint64_t now) {
  switch (reg) {
    case kDevClockPeriod:
      period_ = value;
      next_tick_ = (value == 0) ? 0 : now + value;
      break;
    case kDevClockAck:
      irq_ = false;
      break;
    default:
      throw Error(StrFormat("bad clock register write 0x%x", reg));
  }
}

bool Clock::Tick(uint64_t now) {
  if (period_ != 0 && now >= next_tick_) {
    irq_ = true;
    ++ticks_;
    next_tick_ = now + period_;
  }
  return irq_;
}

}  // namespace wrl
