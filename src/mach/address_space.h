// The DS32 address-space layout (R3000-style).
//
//   kuseg  0x00000000–0x7fffffff   mapped through the TLB, user-accessible
//   kseg0  0x80000000–0x9fffffff   unmapped, cached,   kernel only
//   kseg1  0xa0000000–0xbfffffff   unmapped, uncached, kernel only (MMIO here)
//   kseg2  0xc0000000–0xffffffff   mapped through the TLB, kernel only
//
// Kernel text and most kernel data live in kseg0 and therefore never touch
// the TLB — the property the paper leans on when it distinguishes UTLB
// misses (user segment, 9-instruction dedicated handler) from KTLB misses
// (mapped kernel segment, slow general-exception path) in §4.1.
#ifndef WRLTRACE_MACH_ADDRESS_SPACE_H_
#define WRLTRACE_MACH_ADDRESS_SPACE_H_

#include <cstdint>

namespace wrl {

constexpr uint32_t kKuseg = 0x00000000;
constexpr uint32_t kKseg0 = 0x80000000;
constexpr uint32_t kKseg1 = 0xa0000000;
constexpr uint32_t kKseg2 = 0xc0000000;

constexpr uint32_t kPageBytes = 4096;
constexpr uint32_t kPageShift = 12;

// Exception vectors.
constexpr uint32_t kVecUtlbMiss = 0x80000000;  // Dedicated user-TLB refill.
constexpr uint32_t kVecGeneral = 0x80000080;   // Everything else.
// Boot entry (where the loader places the kernel's startup code).
constexpr uint32_t kVecReset = 0x80000200;

// MMIO device page (physical; virtual = kseg1 + this).  Placed above the
// largest supported RAM size so it never shadows memory.
constexpr uint32_t kDevicePhysBase = 0x1fd00000;
constexpr uint32_t kDeviceVirtBase = kKseg1 + kDevicePhysBase;
constexpr uint32_t kDeviceBytes = 0x1000;

// The word reserved for trace *marker* entries: addresses in the top page
// are never mapped, so a trace word in this range is unambiguously a marker
// rather than a data address (see trace/format.h).
constexpr uint32_t kMarkerBase = 0xfffff000;

inline bool InKuseg(uint32_t va) { return va < kKseg0; }
inline bool InKseg0(uint32_t va) { return va >= kKseg0 && va < kKseg1; }
inline bool InKseg1(uint32_t va) { return va >= kKseg1 && va < kKseg2; }
inline bool InKseg2(uint32_t va) { return va >= kKseg2; }

inline uint32_t PageOf(uint32_t va) { return va >> kPageShift; }
inline uint32_t PageBase(uint32_t va) { return va & ~(kPageBytes - 1); }

}  // namespace wrl

#endif  // WRLTRACE_MACH_ADDRESS_SPACE_H_
