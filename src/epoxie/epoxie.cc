#include "epoxie/epoxie.h"

#include <algorithm>
#include <array>
#include <bit>
#include <map>
#include <optional>
#include <set>

#include "dataflow/dataflow.h"
#include "isa/isa.h"
#include "support/error.h"
#include "support/strings.h"
#include "trace/abi.h"

namespace wrl {
namespace {

constexpr uint32_t kStolenMask = (1u << kXreg1) | (1u << kXreg2) | (1u << kXreg3);
constexpr uint32_t kRaMask = 1u << kRa;
constexpr uint32_t kAtMask = 1u << kAt;

// Registers a scavenged window may never borrow: the constant/assembler
// registers, the kernel scratch pair (clobbered asynchronously by any
// exception), the stack/global conventions, $ra (clobbered by the window's
// own trace call), and the stolen registers themselves.
constexpr uint32_t kNeverScavenge = (1u << kZero) | (1u << kAt) | (1u << kK0) | (1u << kK1) |
                                    (1u << kGp) | (1u << kSp) | (1u << kRa) | kStolenMask;

// Scratch preference order: caller-saved temps first (most often dead),
// then argument/value registers, then the callee-saved set.
constexpr uint8_t kScavengeOrder[] = {kT0, kT1, kT2, kT3, kT4, kT5, kT6, kV0, kV1,
                                      kA0, kA1, kA2, kA3, kS0, kS1, kS2, kS3, kS4,
                                      kS5, kS6, kS7, kFp};

// Identity register map with the stolen registers redirected to scavenged
// scratch registers.
using RegMap = std::array<uint8_t, 32>;

RegMap IdentityMap() {
  RegMap map;
  for (size_t i = 0; i < map.size(); ++i) {
    map[i] = static_cast<uint8_t>(i);
  }
  return map;
}

bool IsThreeRegAlu(Op op) {
  switch (op) {
    case Op::kSll:
    case Op::kSrl:
    case Op::kSra:
    case Op::kSllv:
    case Op::kSrlv:
    case Op::kSrav:
    case Op::kMfhi:
    case Op::kMthi:
    case Op::kMflo:
    case Op::kMtlo:
    case Op::kMult:
    case Op::kMultu:
    case Op::kDiv:
    case Op::kDivu:
    case Op::kAdd:
    case Op::kAddu:
    case Op::kSub:
    case Op::kSubu:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kNor:
    case Op::kSlt:
    case Op::kSltu:
      return true;
    default:
      return false;
  }
}

// Re-encodes `inst` with its register fields pushed through `map` (the
// scavenging substitution).  Immediates, shift amounts, and opcodes are
// preserved bit-exactly, so a relocation attached to the word still patches
// the same field.
uint32_t RewriteRegs(const Inst& inst, const RegMap& map) {
  if (IsThreeRegAlu(inst.op)) {
    return EncodeRType(inst.op, map[inst.rs], map[inst.rt], map[inst.rd], inst.shamt);
  }
  switch (inst.op) {
    case Op::kMfc0:
    case Op::kMtc0:
      return EncodeCop0(inst.op, map[inst.rt], inst.rd);
    case Op::kLui:
      return EncodeIType(inst.op, 0, map[inst.rt], static_cast<uint16_t>(inst.imm));
    default:
      return EncodeIType(inst.op, map[inst.rs], map[inst.rt], static_cast<uint16_t>(inst.imm));
  }
}

// Builds the surrogate no-op for a memory instruction: an addiu to $zero
// with the same base register and offset, so memtrace can decode the
// effective address from identical field positions without the surrogate
// touching memory (paper §3.2).
uint32_t MakeSurrogate(const Inst& mem, uint8_t base_override = 0xff) {
  uint8_t base = base_override == 0xff ? mem.rs : base_override;
  return EncodeIType(Op::kAddiu, base, kZero, static_cast<uint16_t>(mem.imm));
}

class Instrumenter {
 public:
  Instrumenter(const ObjectFile& input, const EpoxieConfig& config)
      : input_(input), config_(config) {}

  InstrumentResult Run() {
    DecodeInput();
    EmitAll();
    FixBranches();
    BuildOutputObject();
    result_.original_text_words = n_words_;
    result_.instrumented_text_words = static_cast<uint32_t>(out_.size());
    return std::move(result_);
  }

 private:
  [[noreturn]] void Fail(uint32_t word_index, const std::string& message) const {
    throw Error(StrFormat("epoxie: %s at %s+0x%x: %s", input_.source_name.c_str(),
                          input_.source_name.c_str(), word_index * 4, message.c_str()));
  }

  void DecodeInput() {
    WRL_CHECK(input_.text.size() % 4 == 0);
    n_words_ = input_.NumTextWords();
    insts_.reserve(n_words_);
    for (uint32_t i = 0; i < n_words_; ++i) {
      insts_.push_back(Decode(input_.TextWord(i * 4)));
    }
    for (const BlockAnnotation& b : input_.blocks) {
      WRL_CHECK(b.offset % 4 == 0);
      leaders_.insert(b.offset / 4);
      flags_[b.offset / 4] = b.flags;
    }
    if (n_words_ > 0) {
      leaders_.insert(0);
    }
    // Reject labels on delay slots: a header inserted there would split a
    // CTI from its slot.
    for (uint32_t i = 0; i + 1 < n_words_; ++i) {
      if (HasDelaySlot(insts_[i].op) && leaders_.count(i + 1) != 0) {
        Fail(i + 1, "basic-block leader on a delay slot");
      }
    }
    inst_new_pos_.assign(n_words_, UINT32_MAX);
    target_new_pos_.assign(n_words_ + 1, UINT32_MAX);
    if (config_.mode == InstrumentMode::kEpoxie && config_.scavenge) {
      live_ = ComputeLiveness(input_);
    }
  }

  // ---- Scavenging decisions (all gated on the liveness analysis) ----

  bool RaDeadAt(uint32_t index) const {
    return live_.has_value() && (live_->LiveIn(index) & kRaMask) == 0;
  }

  // Picks one provably dead scratch register per stolen register `touched`
  // by instruction `index`; returns nullopt (→ fall back to the spill
  // window) unless every touched register gets a distinct scratch.
  std::optional<RegMap> FindScavengeMap(uint32_t index, uint32_t touched) const {
    if (!live_.has_value()) {
      return std::nullopt;
    }
    const Inst& inst = insts_[index];
    // A register is borrowable across the window iff nothing from this
    // point on reads it before writing it, and the instruction itself
    // neither reads nor writes it under its original name.
    uint32_t busy = live_->LiveIn(index) | RegsRead(inst) | RegsWritten(inst) | kNeverScavenge;
    RegMap map = IdentityMap();
    for (uint8_t x : {kXreg1, kXreg2, kXreg3}) {
      if ((touched & (1u << x)) == 0) {
        continue;
      }
      uint8_t pick = 0;
      for (uint8_t cand : kScavengeOrder) {
        if ((busy & (1u << cand)) == 0) {
          pick = cand;
          break;
        }
      }
      if (pick == 0) {
        return std::nullopt;
      }
      busy |= 1u << pick;
      map[x] = pick;
    }
    return map;
  }

  // ---- Emission helpers ----
  void Emit(uint32_t word) { out_.push_back(word); }

  // Emits an *original* instruction word, recording its position for
  // relocation moving and branch fixups.
  void EmitOriginal(uint32_t index) {
    inst_new_pos_[index] = static_cast<uint32_t>(out_.size());
    const Inst& inst = insts_[index];
    if (IsBranch(inst.op)) {
      // Old target (word index) for later retargeting.
      int64_t target = static_cast<int64_t>(index) + 1 + inst.imm;
      if (target < 0 || target > n_words_) {
        Fail(index, "branch target outside object");
      }
      branch_fixups_.push_back({static_cast<uint32_t>(out_.size()), static_cast<uint32_t>(target)});
    }
    Emit(inst.raw);
  }

  void EmitLoadBk() {
    // lui at, %hi(bk); ori at, at, %lo(bk) with relocations against the
    // bookkeeping symbol.
    Relocation hi;
    hi.offset = static_cast<uint32_t>(out_.size()) * 4;
    hi.section = SectionId::kText;
    hi.type = RelocType::kHi16;
    hi.symbol = config_.bookkeeping_symbol;
    new_relocs_.push_back(hi);
    Emit(EncodeIType(Op::kLui, 0, kAt, 0));
    Relocation lo = hi;
    lo.offset = static_cast<uint32_t>(out_.size()) * 4;
    lo.type = RelocType::kLo16;
    new_relocs_.push_back(lo);
    Emit(EncodeIType(Op::kOri, kAt, kAt, 0));
  }

  void EmitJalTo(const std::string& symbol) {
    Relocation r;
    r.offset = static_cast<uint32_t>(out_.size()) * 4;
    r.section = SectionId::kText;
    r.type = RelocType::kJump26;
    r.symbol = symbol;
    new_relocs_.push_back(r);
    Emit(EncodeJType(Op::kJal, 0));
  }

  // Emits the shadow window around instruction `index`, which touches the
  // stolen registers in `touched` (a register mask).
  void EmitWindow(uint32_t index, uint32_t touched) {
    const Inst& inst = insts_[index];
    uint32_t reads = RegsRead(inst) & touched;
    uint32_t writes = RegsWritten(inst) & touched;
    if ((RegsRead(inst) | RegsWritten(inst)) & kAtMask) {
      Fail(index, "instruction uses both $at and a stolen register");
    }
    EmitLoadBk();
    for (uint8_t x : {kXreg1, kXreg2, kXreg3}) {
      if (touched & (1u << x)) {
        Emit(EncodeIType(Op::kSw, kAt, x, static_cast<uint16_t>(kBkSpill0 + 4 * StolenIndex(x))));
      }
    }
    for (uint8_t x : {kXreg1, kXreg2, kXreg3}) {
      if (reads & (1u << x)) {
        Emit(EncodeIType(Op::kLw, kAt, x, static_cast<uint16_t>(kBkShadow0 + 4 * StolenIndex(x))));
      }
    }
    EmitOriginal(index);
    for (uint8_t x : {kXreg1, kXreg2, kXreg3}) {
      if (writes & (1u << x)) {
        Emit(EncodeIType(Op::kSw, kAt, x, static_cast<uint16_t>(kBkShadow0 + 4 * StolenIndex(x))));
      }
    }
    for (uint8_t x : {kXreg1, kXreg2, kXreg3}) {
      if (touched & (1u << x)) {
        Emit(EncodeIType(Op::kLw, kAt, x, static_cast<uint16_t>(kBkSpill0 + 4 * StolenIndex(x))));
      }
    }
  }

  // Emits the original instruction at `index` re-registered through `map`
  // (stolen registers replaced by their scavenged scratches).  Like
  // EmitOriginal this records the position so the word's relocation (if
  // any) moves with it; CTIs never reach a window, so no branch fixups.
  void EmitSubstituted(uint32_t index, const RegMap& map) {
    WRL_CHECK(!IsBranch(insts_[index].op));
    inst_new_pos_[index] = static_cast<uint32_t>(out_.size());
    Emit(RewriteRegs(insts_[index], map));
  }

  // The scavenged form of EmitWindow: the tracing state stays put in the
  // stolen registers and the instruction runs renamed onto dead scratches,
  // so the spill/reload protocol (two words per touched register) drops
  // out.  Shadow slots in the bookkeeping area are still read before and
  // written after, keeping them exact for neighboring unscavenged windows.
  void EmitScavWindow(uint32_t index, uint32_t touched, const RegMap& map) {
    const Inst& inst = insts_[index];
    uint32_t reads = RegsRead(inst) & touched;
    uint32_t writes = RegsWritten(inst) & touched;
    if ((RegsRead(inst) | RegsWritten(inst)) & kAtMask) {
      Fail(index, "instruction uses both $at and a stolen register");
    }
    EmitLoadBk();
    for (uint8_t x : {kXreg1, kXreg2, kXreg3}) {
      if (reads & (1u << x)) {
        Emit(EncodeIType(Op::kLw, kAt, map[x], static_cast<uint16_t>(kBkShadow0 + 4 * StolenIndex(x))));
      }
    }
    EmitSubstituted(index, map);
    for (uint8_t x : {kXreg1, kXreg2, kXreg3}) {
      if (writes & (1u << x)) {
        Emit(EncodeIType(Op::kSw, kAt, map[x], static_cast<uint16_t>(kBkShadow0 + 4 * StolenIndex(x))));
      }
    }
    ++result_.scavenged_windows;
  }

  // Refreshes SAVED_RA after an instruction that wrote ra mid-block.
  void EmitSavedRaRefresh() {
    EmitLoadBk();
    Emit(EncodeIType(Op::kSw, kAt, kRa, static_cast<uint16_t>(kBkSavedRa)));
  }

  // ---- The per-instruction rewriting rules ----

  // Instruments memory instruction `index` (not in a delay slot).
  void InstrumentMemory(uint32_t index) {
    const Inst& inst = insts_[index];
    uint32_t touched = (RegsRead(inst) | RegsWritten(inst)) & kStolenMask;
    bool reads_ra = (RegsRead(inst) & kRaMask) != 0;
    bool writes_ra = (RegsWritten(inst) & kRaMask) != 0;
    bool base_stolen = IsStolenReg(inst.rs);
    // A load that overwrites its own base register (lw t0, 0(t0)) cannot
    // ride in the delay slot: the load executes before memtrace, which
    // would then decode a clobbered base value.
    bool self_clobbering = IsLoad(inst.op) && inst.rt == inst.rs;
    bool pack_in_slot = config_.mode == InstrumentMode::kEpoxie && touched == 0 && !reads_ra &&
                        !writes_ra && !self_clobbering;
    // A base of $at is fine in the packed form: memtrace never touches $at
    // before its register-dispatch table reads it.  A base of $ra is NOT —
    // the jal clobbers ra before memtrace runs — so reads_ra forces the
    // surrogate path, and memtrace's dispatch entry for ra reads SAVED_RA.
    if (pack_in_slot) {
      // The common case of Figure 2: jal memtrace with the real memory
      // instruction in the delay slot.
      EmitJalTo(config_.memtrace_symbol);
      EmitOriginal(index);
      return;
    }
    if (base_stolen) {
      std::optional<RegMap> map = FindScavengeMap(index, touched);
      if (map.has_value()) {
        // Scavenged form: load every stolen shadow the instruction reads
        // (the base among them) into its scratch, announce through a
        // surrogate based on the scratch — memtrace preserves everything
        // but $ra and the stolen registers, so the scratch survives the
        // call — then run the instruction renamed.
        EmitLoadBk();
        uint32_t reads = RegsRead(inst) & touched;
        for (uint8_t x : {kXreg1, kXreg2, kXreg3}) {
          if (reads & (1u << x)) {
            Emit(EncodeIType(Op::kLw, kAt, (*map)[x],
                             static_cast<uint16_t>(kBkShadow0 + 4 * StolenIndex(x))));
          }
        }
        EmitJalTo(config_.memtrace_symbol);
        Emit(MakeSurrogate(inst, (*map)[inst.rs]));
        EmitSubstituted(index, *map);
        uint32_t writes = RegsWritten(inst) & touched;
        for (uint8_t x : {kXreg1, kXreg2, kXreg3}) {
          if (writes & (1u << x)) {
            Emit(EncodeIType(Op::kSw, kAt, (*map)[x],
                             static_cast<uint16_t>(kBkShadow0 + 4 * StolenIndex(x))));
          }
        }
        ++result_.scavenged_windows;
        if (writes_ra) {
          EmitSavedRaRefresh();
        }
        return;
      }
      // Materialize the shadow base into $at, hand memtrace a surrogate
      // based on $at, then execute the real instruction in a window.
      EmitLoadBk();
      Emit(EncodeIType(Op::kLw, kAt, kAt,
                       static_cast<uint16_t>(kBkShadow0 + 4 * StolenIndex(inst.rs))));
      EmitJalTo(config_.memtrace_symbol);
      Emit(MakeSurrogate(inst, kAt));
      EmitWindow(index, touched);
      if (writes_ra) {
        EmitSavedRaRefresh();
      }
      return;
    }
    // Surrogate form: jal memtrace; addiu zero, base, off; then the real
    // instruction (optionally in a window).
    EmitJalTo(config_.memtrace_symbol);
    Emit(MakeSurrogate(inst));
    if (touched != 0) {
      std::optional<RegMap> map = FindScavengeMap(index, touched);
      if (map.has_value()) {
        EmitScavWindow(index, touched, *map);
      } else {
        EmitWindow(index, touched);
      }
    } else {
      EmitOriginal(index);
    }
    if (writes_ra) {
      EmitSavedRaRefresh();
    }
  }

  // Instruments a non-memory, non-CTI instruction.
  void InstrumentPlain(uint32_t index) {
    const Inst& inst = insts_[index];
    uint32_t touched = (RegsRead(inst) | RegsWritten(inst)) & kStolenMask;
    if (touched != 0) {
      std::optional<RegMap> map = FindScavengeMap(index, touched);
      if (map.has_value()) {
        EmitScavWindow(index, touched, *map);
      } else {
        EmitWindow(index, touched);
      }
    } else {
      EmitOriginal(index);
    }
    if ((RegsWritten(inst) & kRaMask) != 0) {
      EmitSavedRaRefresh();
    }
  }

  // Emits the CTI at `index` and its delay slot at `index + 1`.
  // `traced` controls whether a memory op in the slot gets a memtrace call.
  void EmitCtiPair(uint32_t index, bool traced) {
    const Inst& cti = insts_[index];
    if (index + 1 >= n_words_) {
      Fail(index, "control transfer at end of text has no delay slot");
    }
    const Inst& slot = insts_[index + 1];
    uint32_t cti_touched = (RegsRead(cti) | (RegsWritten(cti) & ~kRaMask)) & kStolenMask;
    if (cti_touched != 0) {
      Fail(index, "control transfer touches a stolen register");
    }
    if (IsIndirectJump(cti.op) && IsStolenReg(cti.rs)) {
      Fail(index, "indirect jump through a stolen register");
    }
    uint32_t slot_touched = (RegsRead(slot) | RegsWritten(slot)) & kStolenMask;
    if (slot_touched != 0) {
      Fail(index + 1, "delay-slot instruction touches a stolen register");
    }
    bool slot_is_mem = MemAccessBytes(slot.op) != 0;
    if (traced && slot_is_mem) {
      // The trace call is hoisted above the CTI, so the announcement reads
      // the slot's registers *before* the CTI's link write takes effect.
      // Any overlap (ra for jal/bltzal, an arbitrary rd for jalr) would
      // make memtrace record a stale address: reject rather than silently
      // mis-rewrite.
      uint32_t stale = RegsWritten(cti) & RegsRead(slot);
      if (stale != 0) {
        Fail(index + 1,
             StrFormat("delay-slot memory op reads $%s, which the jump writes; the "
                       "hoisted memtrace call cannot legally announce it",
                       RegName(static_cast<uint8_t>(std::countr_zero(stale)))));
      }
      if (IsStolenReg(slot.rs)) {
        Fail(index + 1, "delay-slot memory op based on a stolen register");
      }
      // Hoist the trace call above the CTI; the slot keeps the real op.
      EmitJalTo(config_.memtrace_symbol);
      Emit(MakeSurrogate(slot));
    }
    EmitOriginal(index);
    EmitOriginal(index + 1);
  }

  // ---- Block and object-level passes ----

  struct BlockRange {
    uint32_t start;
    uint32_t end;  // One past the last word.
    uint32_t flags;
  };

  std::vector<BlockRange> ComputeBlocks() const {
    std::vector<BlockRange> blocks;
    std::vector<uint32_t> sorted(leaders_.begin(), leaders_.end());
    for (size_t i = 0; i < sorted.size(); ++i) {
      uint32_t start = sorted[i];
      uint32_t end = (i + 1 < sorted.size()) ? sorted[i + 1] : n_words_;
      if (start >= end) {
        continue;
      }
      uint32_t flags = 0;
      auto it = flags_.find(start);
      if (it != flags_.end()) {
        flags = it->second;
      }
      blocks.push_back({start, end, flags});
    }
    return blocks;
  }

  std::vector<MemOpStatic> BlockMemOps(const BlockRange& block) const {
    std::vector<MemOpStatic> ops;
    for (uint32_t i = block.start; i < block.end; ++i) {
      unsigned bytes = MemAccessBytes(insts_[i].op);
      if (bytes != 0) {
        ops.push_back({static_cast<uint16_t>(i - block.start), IsStore(insts_[i].op),
                       static_cast<uint8_t>(bytes)});
      }
    }
    return ops;
  }

  // The Figure 2 header.  When liveness proves $ra dead at the block leader
  // the `sw ra` save is elided: bbtrace still restores $ra from SAVED_RA in
  // its return slot, but the (stale) value it restores is never read before
  // the next $ra write, so the save is pure overhead.
  void EmitEpoxieHeader(uint32_t n_trace_words, bool elide_save) {
    if (!elide_save) {
      Emit(EncodeIType(Op::kSw, kXreg3, kRa, static_cast<uint16_t>(kBkSavedRa)));
    } else {
      ++result_.elided_ra_saves;
    }
    EmitJalTo(config_.bbtrace_symbol);
    Emit(EncodeIType(Op::kOri, kZero, kZero, static_cast<uint16_t>(n_trace_words)));
  }

  void EmitPixieHeader(const BlockRange& block, uint32_t n_trace_words, uint32_t block_index) {
    Emit(EncodeIType(Op::kSw, kXreg3, kRa, static_cast<uint16_t>(kBkSavedRa)));
    // Runtime translation-table lookup (the dynamic address correction that
    // epoxie does statically).
    Relocation hi;
    hi.offset = static_cast<uint32_t>(out_.size()) * 4;
    hi.section = SectionId::kText;
    hi.type = RelocType::kHi16;
    hi.symbol = kPixieTableSymbol;
    hi.addend = static_cast<int32_t>(block_index * 4);
    new_relocs_.push_back(hi);
    Emit(EncodeIType(Op::kLui, 0, kAt, 0));
    Relocation lo = hi;
    lo.offset = static_cast<uint32_t>(out_.size()) * 4;
    lo.type = RelocType::kLo16;
    new_relocs_.push_back(lo);
    Emit(EncodeIType(Op::kOri, kAt, kAt, 0));
    Emit(EncodeIType(Op::kLw, kAt, kAt, 0));
    // Dynamic instruction counter (pixie counted instructions too).
    EmitLoadBk();
    Emit(EncodeIType(Op::kLw, kAt, kXreg2, static_cast<uint16_t>(kBkInstCount)));
    Emit(EncodeIType(Op::kAddiu, kXreg2, kXreg2, static_cast<uint16_t>(block.end - block.start)));
    Emit(EncodeIType(Op::kSw, kAt, kXreg2, static_cast<uint16_t>(kBkInstCount)));
    EmitJalTo(config_.bbtrace_symbol);
    Emit(EncodeIType(Op::kOri, kZero, kZero, static_cast<uint16_t>(n_trace_words)));
  }

  void EmitAll() {
    std::vector<BlockRange> blocks = ComputeBlocks();
    uint32_t block_index = 0;
    for (const BlockRange& block : blocks) {
      bool traced = (block.flags & (kBlockNoTrace | kBlockHandTraced)) == 0;
      uint32_t header_pos = static_cast<uint32_t>(out_.size());
      std::vector<MemOpStatic> mem_ops = BlockMemOps(block);
      if (traced) {
        uint32_t n_trace_words = 1 + static_cast<uint32_t>(mem_ops.size());
        WRL_CHECK_MSG(n_trace_words < 0x8000, "basic block generates too much trace");
        if (config_.mode == InstrumentMode::kEpoxie) {
          bool elide_save = RaDeadAt(block.start);
          EmitEpoxieHeader(n_trace_words, elide_save);
          // Key = return address of the header's jal: two words past it.
          BlockStatic bs;
          bs.key_offset = (header_pos + (elide_save ? 2 : 3)) * 4;
          bs.orig_offset = block.start * 4;
          bs.num_insts = block.end - block.start;
          bs.flags = block.flags;
          bs.mem_ops = std::move(mem_ops);
          result_.blocks.push_back(std::move(bs));
        } else {
          EmitPixieHeader(block, 1 + static_cast<uint32_t>(mem_ops.size()), block_index);
          // Pixie key: jal is the second-to-last header word.
          BlockStatic bs;
          bs.key_offset = static_cast<uint32_t>(out_.size()) * 4;
          bs.orig_offset = block.start * 4;
          bs.num_insts = block.end - block.start;
          bs.flags = block.flags;
          bs.mem_ops = std::move(mem_ops);
          result_.blocks.push_back(std::move(bs));
        }
      }
      // Control transfers land on the header when the block is traced.
      target_new_pos_[block.start] = traced ? header_pos : static_cast<uint32_t>(out_.size());

      for (uint32_t i = block.start; i < block.end; ++i) {
        const Inst& inst = insts_[i];
        if (HasDelaySlot(inst.op)) {
          if (i + 1 >= block.end) {
            Fail(i, "delay slot crosses a block boundary");
          }
          EmitCtiPair(i, traced);
          ++i;  // Skip the slot.
          continue;
        }
        if (!traced) {
          EmitOriginal(i);
          continue;
        }
        if (MemAccessBytes(inst.op) != 0) {
          InstrumentMemory(i);
        } else {
          InstrumentPlain(i);
        }
      }
      if (traced) {
        result_.blocks.back().instr_words =
            static_cast<uint32_t>(out_.size()) - header_pos;
      }
      ++block_index;
    }
    target_new_pos_[n_words_] = static_cast<uint32_t>(out_.size());
    // Fill target positions for non-leader instructions (used by symbol
    // remapping as a fallback).
    for (uint32_t i = 0; i < n_words_; ++i) {
      if (target_new_pos_[i] == UINT32_MAX) {
        target_new_pos_[i] = inst_new_pos_[i];
      }
    }
    n_blocks_ = block_index;
  }

  void FixBranches() {
    for (const auto& [new_pos, old_target] : branch_fixups_) {
      uint32_t target_pos = target_new_pos_[old_target];
      WRL_CHECK(target_pos != UINT32_MAX);
      int64_t delta = static_cast<int64_t>(target_pos) - (static_cast<int64_t>(new_pos) + 1);
      if (delta < -32768 || delta > 32767) {
        throw Error(StrFormat("epoxie: branch out of range after expansion in '%s'",
                              input_.source_name.c_str()));
      }
      out_[new_pos] = (out_[new_pos] & 0xffff0000u) | (static_cast<uint32_t>(delta) & 0xffffu);
    }
  }

  void BuildOutputObject() {
    ObjectFile& obj = result_.object;
    obj.source_name = input_.source_name + " (instrumented)";
    obj.text.resize(out_.size() * 4);
    for (size_t i = 0; i < out_.size(); ++i) {
      obj.SetTextWord(static_cast<uint32_t>(i * 4), out_[i]);
    }
    obj.data = input_.data;
    obj.bss_size = input_.bss_size;

    // Move the original relocations.
    for (const Relocation& r : input_.relocations) {
      Relocation moved = r;
      if (r.section == SectionId::kText) {
        WRL_CHECK(r.offset % 4 == 0 && r.offset / 4 < n_words_);
        uint32_t new_pos = inst_new_pos_[r.offset / 4];
        WRL_CHECK_MSG(new_pos != UINT32_MAX, "relocation on an unemitted instruction");
        moved.offset = new_pos * 4;
      }
      obj.relocations.push_back(std::move(moved));
    }
    for (Relocation& r : new_relocs_) {
      obj.relocations.push_back(std::move(r));
    }

    // Remap symbols.
    for (const Symbol& s : input_.symbols) {
      Symbol moved = s;
      if (s.section == SectionId::kText) {
        uint32_t index = s.value / 4;
        WRL_CHECK(index <= n_words_);
        moved.value = target_new_pos_[index] * 4;
      }
      obj.symbols.push_back(std::move(moved));
    }

    // Pixie mode: append the translation table to the data segment and
    // define its (local) symbol.
    if (config_.mode == InstrumentMode::kPixie) {
      uint32_t table_offset = static_cast<uint32_t>(obj.data.size());
      while (table_offset % 4 != 0) {
        obj.data.push_back(0);
        ++table_offset;
      }
      for (uint32_t i = 0; i < n_blocks_; ++i) {
        for (int b = 0; b < 4; ++b) {
          obj.data.push_back(0);
        }
      }
      Symbol table;
      table.name = kPixieTableSymbol;
      table.value = table_offset;
      table.section = SectionId::kData;
      table.global = false;
      obj.symbols.push_back(std::move(table));
      result_.added_data_bytes = n_blocks_ * 4;
    }

    // Block annotations at their new positions.
    for (const BlockAnnotation& b : input_.blocks) {
      uint32_t index = b.offset / 4;
      if (index < n_words_ && target_new_pos_[index] != UINT32_MAX) {
        obj.blocks.push_back({target_new_pos_[index] * 4, b.flags});
      }
    }
  }

  static constexpr const char* kPixieTableSymbol = "$pixie_translation_table";

  const ObjectFile& input_;
  const EpoxieConfig& config_;

  uint32_t n_words_ = 0;
  uint32_t n_blocks_ = 0;
  // Interprocedural liveness over the input (engaged only when scavenging).
  std::optional<LivenessInfo> live_;
  std::vector<Inst> insts_;
  std::set<uint32_t> leaders_;
  std::map<uint32_t, uint32_t> flags_;

  std::vector<uint32_t> out_;
  std::vector<Relocation> new_relocs_;
  std::vector<uint32_t> inst_new_pos_;
  std::vector<uint32_t> target_new_pos_;
  std::vector<std::pair<uint32_t, uint32_t>> branch_fixups_;  // (new word pos, old target index)

  InstrumentResult result_;
};

}  // namespace

InstrumentResult Instrument(const ObjectFile& input, const EpoxieConfig& config) {
  return Instrumenter(input, config).Run();
}

}  // namespace wrl
