// epoxie: the link-time binary rewriter (the paper's primary tool, §3.2).
//
// Epoxie consumes a relocatable EWO object and produces an instrumented
// object plus the static per-block information the trace-parsing library
// needs.  The instrumented object is then linked normally; because all
// address uses are visible in the symbol/relocation tables, *every* address
// correction is static — the hallmark that distinguishes epoxie from pixie.
//
// Instrumentation (epoxie mode), exactly as in the paper's Figure 2:
//
//   * each basic block is preceded by a three-instruction header
//         sw   ra, SAVED_RA(xreg3)     # jal will clobber ra
//         jal  bbtrace
//         li   zero, N                 # delay slot: words of trace the
//                                      # block generates (bb word + mem ops)
//     bbtrace stores its return address — the "key" — as the trace entry;
//     at analysis time a lookup table maps the key back to the block's
//     address in the original, uninstrumented binary;
//
//   * each memory instruction becomes "jal memtrace" with the memory
//     instruction in the branch delay slot; memtrace partially decodes the
//     delay-slot word (base register + 16-bit offset) to compute and record
//     the effective address;
//
//   * hazard cases (the instruction reads/writes ra, sits in a branch delay
//     slot, or touches a stolen register) use a surrogate no-op in the delay
//     slot — an addiu to $zero with the same base register and offset — and
//     issue the real instruction separately;
//
//   * uses of the three stolen registers are bracketed in "shadow windows"
//     that spill the tracing state and operate on shadow values kept in the
//     bookkeeping area.
//
// Pixie mode is the baseline the paper compares against: a bigger
// per-block header that performs a runtime translation-table lookup, no
// delay-slot packing, and a translation table in the data segment.  It
// reproduces the 4–6x text growth of pixie/QPT (§3.2 footnote).
#ifndef WRLTRACE_EPOXIE_EPOXIE_H_
#define WRLTRACE_EPOXIE_EPOXIE_H_

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obj/object_file.h"

namespace wrl {

enum class InstrumentMode { kEpoxie, kPixie };

// Liveness-driven scavenging is the default; WRL_SCAVENGE=0 forces the
// unconditional (paper-literal) emission so the bit-identity invariant
// stays A/B-testable.
inline bool ScavengeEnabled() {
  const char* env = std::getenv("WRL_SCAVENGE");
  return env == nullptr || std::strcmp(env, "0") != 0;
}

struct EpoxieConfig {
  InstrumentMode mode = InstrumentMode::kEpoxie;
  // Symbol naming the bookkeeping area in the traced address space.  The
  // link environment binds it: user links provide an absolute symbol at the
  // fixed per-process page (kUserBkBase); kernel links define it in kseg0
  // data.  Epoxie references it through hi16/lo16 relocations, so the
  // correction is — like everything else — static.
  std::string bookkeeping_symbol = "bk_area";
  // Names of the support routines the instrumented code calls.
  std::string bbtrace_symbol = "bbtrace";
  std::string memtrace_symbol = "memtrace";
  // Register scavenging (epoxie mode only): run interprocedural liveness
  // over the input and (a) elide the header `sw ra` save where `$ra` is
  // provably dead at the block leader, (b) redirect shadow windows through
  // a provably dead scratch register instead of spilling the tracing state
  // through $at to the bookkeeping area.  The parsed reference stream is
  // bit-identical either way; only text growth and trace-time dilation
  // shrink.  wrlverify's liveness-proof pass independently re-derives the
  // safety of every elision.
  bool scavenge = ScavengeEnabled();
};

// One memory operation within a basic block: its instruction index in the
// *original* block, whether it stores, and the access width.
struct MemOpStatic {
  uint16_t index = 0;
  bool is_store = false;
  uint8_t bytes = 4;
};

// Static description of one instrumented basic block (the paper's "static
// information about the binary image", §3.2/§3.5).
struct BlockStatic {
  uint32_t key_offset = 0;   // Instrumented-text offset of bbtrace's return point.
  uint32_t orig_offset = 0;  // Original-text offset of the block leader.
  uint32_t num_insts = 0;    // Instructions in the original block.
  uint32_t flags = 0;        // BlockFlags (idle markers, hand-traced, ...).
  // Total instrumented words the block became (header + rewritten body),
  // so per-block text dilation — and the epoxie-inserted instructions a
  // profiler charges back to the block — is exact, not modeled.
  uint32_t instr_words = 0;
  std::vector<MemOpStatic> mem_ops;
};

struct InstrumentResult {
  ObjectFile object;
  std::vector<BlockStatic> blocks;
  uint32_t original_text_words = 0;
  uint32_t instrumented_text_words = 0;
  // Data-segment growth (pixie mode's translation table).
  uint32_t added_data_bytes = 0;
  // Scavenging outcome (zero when EpoxieConfig::scavenge is off): header
  // `sw ra` saves elided, and shadow windows redirected through a dead
  // scratch register instead of the spill/reload protocol.
  uint32_t elided_ra_saves = 0;
  uint32_t scavenged_windows = 0;

  double TextGrowthFactor() const {
    return original_text_words == 0
               ? 1.0
               : static_cast<double>(instrumented_text_words) / original_text_words;
  }
};

// Rewrites `input`.  Blocks flagged kBlockNoTrace or kBlockHandTraced are
// copied verbatim (their branches are still retargeted).  Throws wrl::Error
// on constructs epoxie cannot rewrite (documented in DESIGN.md): control
// transfers that touch stolen registers, instrumentable instructions that
// use both $at and a stolen register, or labels that land on delay slots.
InstrumentResult Instrument(const ObjectFile& input, const EpoxieConfig& config);

}  // namespace wrl

#endif  // WRLTRACE_EPOXIE_EPOXIE_H_
