#include "workloads/workloads.h"

#include <algorithm>

#include "support/error.h"
#include "support/rng.h"
#include "support/strings.h"

namespace wrl {
namespace {

// ---- Input file synthesis -------------------------------------------------

std::vector<uint8_t> TextFile(uint32_t bytes, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out;
  out.reserve(bytes);
  static const char* kWords[] = {"the",  "quick", "brown", "fox",   "jumps", "over",
                                 "lazy", "dog",   "cache", "trace", "tlb",   "kernel"};
  while (out.size() < bytes) {
    const char* w = kWords[rng.Below(12)];
    for (const char* p = w; *p != '\0'; ++p) {
      out.push_back(static_cast<uint8_t>(*p));
    }
    out.push_back(rng.Below(12) == 0 ? '\n' : ' ');
  }
  out.resize(bytes);
  return out;
}

std::vector<uint8_t> BinaryFile(uint32_t bytes, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out(bytes);
  // Mildly compressible: runs and repeated motifs.
  size_t i = 0;
  while (i < out.size()) {
    uint8_t value = static_cast<uint8_t>(rng.Below(64));
    uint32_t run = 1 + rng.Below(12);
    for (uint32_t j = 0; j < run && i < out.size(); ++j) {
      out[i++] = value + static_cast<uint8_t>(j & 3);
    }
  }
  return out;
}

std::vector<uint8_t> TokenFile(uint32_t bytes, uint64_t seed, uint8_t alphabet) {
  Rng rng(seed);
  std::vector<uint8_t> out(bytes);
  for (auto& b : out) {
    b = static_cast<uint8_t>(rng.Below(alphabet));
  }
  return out;
}

uint32_t Scaled(double scale, uint32_t bytes) {
  uint32_t v = static_cast<uint32_t>(bytes * scale);
  return std::max(v, 512u);
}

// ---- Shared assembly fragments ---------------------------------------------

// Opens `fname` (a .data asciiz label) and reads `len` bytes into `buf`;
// leaves the byte count in $s7.  Clobbers a*, v*, t*, uses the stack.
std::string ReadWholeFile(const char* fname_label, const char* buf_label, uint32_t len) {
  return StrFormat(R"(
        la   $a0, %s
        jal  open
        nop
        move $s6, $v0            # fd
        move $a0, $s6
        la   $a1, %s
        li   $a2, %u
        jal  read
        nop
        move $s7, $v0            # bytes read
        move $a0, $s6
        jal  close
        nop
)",
                   fname_label, buf_label, len);
}

// ---- The workloads ----------------------------------------------------------

WorkloadSpec Sed(double scale) {
  WorkloadSpec w;
  w.name = "sed";
  w.description = "The UNIX stream editor run three times over the same 17K input file.";
  uint32_t bytes = Scaled(scale, 17 * 1024);
  w.files.push_back({"sed.in", TextFile(bytes, 101), 0});
  w.files.push_back({"sed.out", {}, bytes + 4096});
  w.source = StrFormat(R"(
        .globl main
main:
        addiu $sp, $sp, -8
        sw   $ra, 4($sp)
        li   $s5, 3              # three runs over the same file
sed_run:
%s
        # Substitute: every 'e' -> 'E', squeeze double spaces, count edits.
        la   $t0, inbuf
        la   $t1, outbuf
        move $t2, $s7
        li   $s0, 0              # edits
        li   $t6, 0              # previous byte
sed_loop:
        blez $t2, sed_emit
        nop
        lbu  $t3, 0($t0)
        addiu $t0, $t0, 1
        addiu $t2, $t2, -1
        li   $t4, 101            # 'e'
        bne  $t3, $t4, sed_nosub
        nop
        li   $t3, 69             # 'E'
        addiu $s0, $s0, 1
sed_nosub:
        li   $t4, 32
        bne  $t3, $t4, sed_keep
        nop
        beq  $t6, $t4, sed_loop  # squeeze: drop repeated space
        nop
sed_keep:
        sb   $t3, 0($t1)
        addiu $t1, $t1, 1
        b    sed_loop
        move $t6, $t3
sed_emit:
        # Write the edited stream to the output file.
        la   $t0, outbuf
        subu $s4, $t1, $t0       # bytes produced after squeezing
        la   $a0, oname
        jal  open
        nop
        move $s6, $v0
        move $a0, $s6
        la   $a1, outbuf
        move $a2, $s4
        jal  write
        nop
        move $a0, $s6
        jal  close
        nop
        addiu $s5, $s5, -1
        bgtz $s5, sed_run
        nop
        move $v0, $s0            # edits from the last pass
        lw   $ra, 4($sp)
        jr   $ra
        addiu $sp, $sp, 8
        .data
fname:  .asciiz "sed.in"
oname:  .asciiz "sed.out"
        .bss
        .align 8
inbuf:  .space %u
outbuf: .space %u
)",
                       ReadWholeFile("fname", "inbuf", bytes).c_str(), bytes + 64, bytes + 64);
  return w;
}

WorkloadSpec Egrep(double scale) {
  WorkloadSpec w;
  w.name = "egrep";
  w.description = "The UNIX pattern search program run three times over a 27K input file.";
  uint32_t bytes = Scaled(scale, 27 * 1024);
  w.files.push_back({"egrep.in", TextFile(bytes, 202), 0});
  w.source = StrFormat(R"(
        .globl main
main:
        addiu $sp, $sp, -8
        sw   $ra, 4($sp)
        li   $s5, 3
        li   $s0, 0              # matching lines
eg_run:
%s
        # Scan for lines containing "fox" with a 3-state matcher.
        la   $t0, inbuf
        move $t1, $s7
        li   $t2, 0              # automaton state
        li   $t3, 0              # line has match
eg_loop:
        blez $t1, eg_done
        nop
        lbu  $t4, 0($t0)
        addiu $t0, $t0, 1
        addiu $t1, $t1, -1
        li   $t5, 10             # newline
        bne  $t4, $t5, eg_chr
        nop
        addu $s0, $s0, $t3       # close the line
        li   $t2, 0
        b    eg_loop
        li   $t3, 0
eg_chr:
        li   $t5, 102            # 'f'
        beq  $t4, $t5, eg_f
        nop
        li   $t5, 111            # 'o'
        beq  $t4, $t5, eg_o
        nop
        li   $t5, 120            # 'x'
        beq  $t4, $t5, eg_x
        nop
        b    eg_loop
        li   $t2, 0
eg_f:
        b    eg_loop
        li   $t2, 1
eg_o:
        li   $t5, 1
        bne  $t2, $t5, eg_reset
        nop
        b    eg_loop
        li   $t2, 2
eg_x:
        li   $t5, 2
        bne  $t2, $t5, eg_reset
        nop
        li   $t3, 1              # full match on this line
        b    eg_loop
        li   $t2, 0
eg_reset:
        b    eg_loop
        li   $t2, 0
eg_done:
        addiu $s5, $s5, -1
        bgtz $s5, eg_run
        nop
        move $v0, $s0
        lw   $ra, 4($sp)
        jr   $ra
        addiu $sp, $sp, 8
        .data
fname:  .asciiz "egrep.in"
        .bss
        .align 8
inbuf:  .space %u
)",
                       ReadWholeFile("fname", "inbuf", bytes).c_str(), bytes + 64);
  return w;
}

WorkloadSpec Yacc(double scale) {
  WorkloadSpec w;
  w.name = "yacc";
  w.description = "The LR(1) parser-generator run on an 11K grammar.";
  uint32_t bytes = Scaled(scale, 11 * 1024);
  w.files.push_back({"yacc.in", TokenFile(bytes, 303, 16), 0});
  w.source = StrFormat(R"(
        .globl main
main:
        addiu $sp, $sp, -8
        sw   $ra, 4($sp)
        # Build the LR action table: 64 states x 16 tokens.
        la   $t0, table
        li   $t1, 0
yc_build:
        sltiu $t2, $t1, 1024
        beq  $t2, $zero, yc_read
        nop
        sll  $t3, $t1, 2
        addu $t3, $t0, $t3
        # action = (state*7 + token*3) mod 64 with shift/reduce tag
        mult $t1, $t1
        mflo $t4
        andi $t4, $t4, 63
        sw   $t4, 0($t3)
        b    yc_build
        addiu $t1, $t1, 1
yc_read:
%s
        # Drive the automaton over the token stream, pushing states.
        la   $t0, inbuf
        move $t1, $s7
        li   $t2, 0              # state
        la   $t3, stack
        li   $s0, 0              # reductions
yc_loop:
        blez $t1, yc_done
        nop
        lbu  $t4, 0($t0)
        addiu $t0, $t0, 1
        addiu $t1, $t1, -1
        andi $t4, $t4, 15
        # next = table[state*16 + token]
        sll  $t5, $t2, 4
        addu $t5, $t5, $t4
        sll  $t5, $t5, 2
        la   $t6, table
        addu $t5, $t6, $t5
        lw   $t2, 0($t5)
        # Push, and "reduce" (pop 2) whenever state is small.
        sw   $t2, 0($t3)
        addiu $t3, $t3, 4
        sltiu $t5, $t2, 8
        beq  $t5, $zero, yc_cksp
        nop
        addiu $s0, $s0, 1
        la   $t6, stack
        addiu $t5, $t6, 8
        sltu $t5, $t3, $t5
        bne  $t5, $zero, yc_loop
        nop
        addiu $t3, $t3, -8       # pop two states
        b    yc_loop
        nop
yc_cksp:
        la   $t6, stack_end
        sltu $t5, $t3, $t6
        bne  $t5, $zero, yc_loop
        nop
        la   $t3, stack          # wrap the parse stack
        b    yc_loop
        nop
yc_done:
        move $v0, $s0
        lw   $ra, 4($sp)
        jr   $ra
        addiu $sp, $sp, 8
        .data
fname:  .asciiz "yacc.in"
        .bss
        .align 8
table:  .space 4096
stack:  .space 16384
stack_end: .space 16
inbuf:  .space %u
)",
                       ReadWholeFile("fname", "inbuf", bytes).c_str(), bytes + 64);
  return w;
}

// gcc: lex -> tree build (sbrk heap, pointer chasing) -> emit.  The token
// handlers are distinct generated functions, giving this workload the
// largest text segment, as in the paper.
WorkloadSpec Gcc(double scale) {
  WorkloadSpec w;
  w.name = "gcc";
  w.description =
      "The GNU C compiler translating a 17K (preprocessed) source file into optimized assembly.";
  uint32_t bytes = Scaled(scale, 17 * 1024);
  w.files.push_back({"gcc.in", TextFile(bytes, 404), 0});
  w.files.push_back({"gcc.out", {}, bytes + 8192});

  // 32 distinct token-kind handlers: each hashes the token value with its
  // own arithmetic recipe (real, distinct code paths — the text bulk).
  std::string handlers;
  std::string dispatch;
  for (int k = 0; k < 32; ++k) {
    handlers += StrFormat(R"(
tok_%d:
        sll  $t5, $a0, %d
        xor  $t5, $t5, $a0
        addiu $t5, $t5, %d
        srl  $t6, $t5, %d
        addu $t5, $t5, $t6
        andi $t5, $t5, 0x3ff
        jr   $ra
        move $v0, $t5
)",
                          k, (k % 7) + 1, k * 37 + 11, (k % 5) + 2);
    dispatch += StrFormat(R"(
        li   $t5, %d
        bne  $s1, $t5, gd_%d
        nop
        jal  tok_%d
        nop
        b    gc_lexed
        nop
gd_%d:
)",
                          k, k, k, k);
  }

  w.source = StrFormat(R"(
        .globl main
main:
        addiu $sp, $sp, -16
        sw   $ra, 12($sp)
        sw   $s0, 8($sp)
%s
        # ---- Phase 1: lex into a heap token array ----
        li   $a0, 65536
        jal  sbrk
        nop
        move $s0, $v0            # token array
        la   $t0, inbuf
        move $t1, $s7
        move $t2, $s0
        li   $s4, 0              # token count
gc_lex:
        blez $t1, gc_parse
        nop
        lbu  $s1, 0($t0)
        addiu $t0, $t0, 1
        addiu $t1, $t1, -1
        andi $s1, $s1, 31
        move $a0, $s1
%s
gc_lexed:
        sw   $v0, 0($t2)
        addiu $t2, $t2, 4
        addiu $s4, $s4, 1
        b    gc_lex
        nop
        # ---- Phase 2: build a binary tree of nodes on the heap ----
gc_parse:
        li   $a0, 262144
        jal  sbrk
        nop
        move $s2, $v0            # node pool: {value, left, right} * 12 bytes
        li   $s3, 0              # nodes allocated
        move $t0, $s0
        move $t1, $s4
        li   $s5, 0              # tree root (none)
gc_tree:
        blez $t1, gc_emit
        nop
        lw   $t2, 0($t0)
        addiu $t0, $t0, 4
        addiu $t1, $t1, -1
        # allocate node
        mult $s3, $s3
        mflo $t3                 # cheap arith per node
        sll  $t4, $s3, 3
        sll  $t5, $s3, 2
        addu $t4, $t4, $t5       # s3 * 12
        addu $t4, $s2, $t4
        sw   $t2, 0($t4)
        sw   $zero, 4($t4)
        sw   $zero, 8($t4)
        addiu $s3, $s3, 1
        # insert: walk from root by comparing values (pointer chasing)
        beq  $s5, $zero, gc_root
        nop
        move $t5, $s5
gc_walk:
        lw   $t6, 0($t5)
        sltu $t6, $t6, $t2
        beq  $t6, $zero, gc_left
        nop
        lw   $t6, 8($t5)
        beq  $t6, $zero, gc_setr
        nop
        b    gc_walk
        move $t5, $t6
gc_left:
        lw   $t6, 4($t5)
        beq  $t6, $zero, gc_setl
        nop
        b    gc_walk
        move $t5, $t6
gc_setr:
        sw   $t4, 8($t5)
        b    gc_tree
        nop
gc_setl:
        sw   $t4, 4($t5)
        b    gc_tree
        nop
gc_root:
        b    gc_tree
        move $s5, $t4
        # ---- Phase 3: emit (iterative preorder via explicit stack) ----
gc_emit:
        la   $t0, estack
        sw   $s5, 0($t0)
        addiu $t0, $t0, 4
        la   $t1, outbuf
        li   $s4, 0              # emitted bytes
gc_pop:
        la   $t2, estack
        beq  $t0, $t2, gc_write
        nop
        addiu $t0, $t0, -4
        lw   $t3, 0($t0)
        beq  $t3, $zero, gc_pop
        nop
        lw   $t4, 0($t3)
        andi $t4, $t4, 0x7f
        sb   $t4, 0($t1)
        addiu $t1, $t1, 1
        addiu $s4, $s4, 1
        lw   $t4, 4($t3)
        sw   $t4, 0($t0)
        addiu $t0, $t0, 4
        lw   $t4, 8($t3)
        sw   $t4, 0($t0)
        b    gc_pop
        addiu $t0, $t0, 4
gc_write:
        la   $a0, oname
        jal  open
        nop
        move $s6, $v0
        move $a0, $s6
        la   $a1, outbuf
        move $a2, $s4
        jal  write
        nop
        move $a0, $s6
        jal  close
        nop
        move $v0, $s3            # nodes built
        lw   $s0, 8($sp)
        lw   $ra, 12($sp)
        jr   $ra
        addiu $sp, $sp, 16

# ---- token-kind handlers (the text bulk) ----
%s
        .data
fname:  .asciiz "gcc.in"
oname:  .asciiz "gcc.out"
        .bss
        .align 8
inbuf:  .space %u
outbuf: .space %u
estack: .space 65536
)",
                       ReadWholeFile("fname", "inbuf", bytes).c_str(), dispatch.c_str(),
                       handlers.c_str(), bytes + 64, bytes + 8192);
  return w;
}

WorkloadSpec Compress(double scale) {
  WorkloadSpec w;
  w.name = "compress";
  w.description =
      "Data compression using Lempel-Ziv encoding.  A 100K file is compressed then uncompressed.";
  uint32_t bytes = Scaled(scale, 100 * 1024);
  w.files.push_back({"comp.in", BinaryFile(bytes, 505), 0});
  w.files.push_back({"comp.out", {}, bytes + 16384});
  w.source = StrFormat(R"(
        .globl main
main:
        addiu $sp, $sp, -8
        sw   $ra, 4($sp)
%s
        # ---- Compress: hash-chain LZ over 16-bit codes ----
        # dict: 4096 entries of {prefix_code<<8 | byte} -> code, linear probe.
        la   $t0, dict
        li   $t1, 0
cz_clear:
        sltiu $t2, $t1, 4096
        beq  $t2, $zero, cz_go
        nop
        sll  $t3, $t1, 2
        addu $t3, $t0, $t3
        addiu $t4, $zero, -1
        sw   $t4, 0($t3)
        b    cz_clear
        addiu $t1, $t1, 1
cz_go:
        la   $s0, inbuf          # input cursor
        addu $s1, $s0, $s7       # input end
        la   $s2, outbuf         # output cursor
        li   $s3, 256            # next free code
        lbu  $s4, 0($s0)         # current prefix = first byte
        addiu $s0, $s0, 1
cz_loop:
        sltu $t0, $s0, $s1
        beq  $t0, $zero, cz_flush
        nop
        lbu  $t1, 0($s0)
        addiu $s0, $s0, 1
        # key = prefix<<8 | byte; probe the dictionary.
        sll  $t2, $s4, 8
        or   $t2, $t2, $t1
        # hash = (key*2654435761) >> 20 & 4095
        lui  $t3, 0x9e37
        ori  $t3, $t3, 0x79b1
        mult $t2, $t3
        mflo $t3
        srl  $t3, $t3, 20
        andi $t3, $t3, 4095
cz_probe:
        sll  $t4, $t3, 2
        la   $t5, dict
        addu $t4, $t5, $t4
        lw   $t5, 0($t4)
        addiu $t6, $zero, -1
        beq  $t5, $t6, cz_miss
        nop
        # entry = key<<12 | code
        srl  $t6, $t5, 12
        beq  $t6, $t2, cz_hit
        nop
        addiu $t3, $t3, 1
        andi $t3, $t3, 4095
        b    cz_probe
        nop
cz_hit:
        andi $s4, $t5, 0xfff     # prefix = found code
        b    cz_loop
        nop
cz_miss:
        # emit prefix as a 16-bit code; insert key -> next code.
        sb   $s4, 0($s2)
        srl  $t6, $s4, 8
        sb   $t6, 1($s2)
        addiu $s2, $s2, 2
        sltiu $t6, $s3, 4096
        beq  $t6, $zero, cz_nostore
        nop
        sll  $t6, $t2, 12
        or   $t6, $t6, $s3
        sw   $t6, 0($t4)
        addiu $s3, $s3, 1
cz_nostore:
        b    cz_loop
        move $s4, $t1            # new prefix = current byte
cz_flush:
        sb   $s4, 0($s2)
        srl  $t6, $s4, 8
        sb   $t6, 1($s2)
        addiu $s2, $s2, 2
        # ---- Write the compressed stream ----
        la   $a0, oname
        jal  open
        nop
        move $s6, $v0
        move $a0, $s6
        la   $a1, outbuf
        la   $t0, outbuf
        subu $a2, $s2, $t0
        move $s5, $a2            # compressed size
        jal  write
        nop
        move $a0, $s6
        jal  close
        nop
        # ---- "Uncompress": replay codes, touching a decode table ----
        la   $t0, outbuf
        addu $t1, $t0, $s5
        la   $t2, dtab
        li   $v0, 0
cu_loop:
        sltu $t3, $t0, $t1
        beq  $t3, $zero, cu_done
        nop
        lbu  $t4, 0($t0)
        lbu  $t5, 1($t0)
        addiu $t0, $t0, 2
        sll  $t5, $t5, 8
        or   $t4, $t4, $t5
        andi $t4, $t4, 4095
        sll  $t4, $t4, 2
        addu $t4, $t2, $t4
        lw   $t5, 0($t4)
        addiu $t5, $t5, 1
        sw   $t5, 0($t4)
        addu $v0, $v0, $t5
        b    cu_loop
        nop
cu_done:
        lw   $ra, 4($sp)
        jr   $ra
        addiu $sp, $sp, 8
        .data
fname:  .asciiz "comp.in"
oname:  .asciiz "comp.out"
        .bss
        .align 8
dict:   .space 16384
dtab:   .space 16384
inbuf:  .space %u
outbuf: .space %u
)",
                       ReadWholeFile("fname", "inbuf", bytes).c_str(), bytes + 64, bytes + 16384);
  return w;
}

WorkloadSpec Espresso(double scale) {
  WorkloadSpec w;
  w.name = "espresso";
  w.description = "A program that minimizes boolean functions, run on a 30K input file.";
  uint32_t bytes = Scaled(scale, 30 * 1024);
  w.files.push_back({"esp.in", TokenFile(bytes, 606, 255), 0});
  w.source = StrFormat(R"(
        .globl main
main:
        addiu $sp, $sp, -8
        sw   $ra, 4($sp)
%s
        # Treat the input as an array of 32-bit cubes; run minimization
        # passes: for each pair window, AND/OR distance tests and absorb.
        la   $s0, inbuf
        srl  $s1, $s7, 2         # cube count
        li   $s2, 6              # passes
        li   $v0, 0
es_pass:
        blez $s2, es_done
        nop
        li   $t0, 0              # i
es_outer:
        addiu $t1, $s1, -1
        sltu $t2, $t0, $t1
        beq  $t2, $zero, es_next_pass
        nop
        sll  $t2, $t0, 2
        addu $t2, $s0, $t2
        lw   $t3, 0($t2)         # cube i
        lw   $t4, 4($t2)         # cube i+1
        and  $t5, $t3, $t4
        or   $t6, $t3, $t4
        xor  $t1, $t3, $t4
        # population-ish count of differing bits (4 rounds)
        srl  $t3, $t1, 1
        lui  $t4, 0x5555
        ori  $t4, $t4, 0x5555
        and  $t3, $t3, $t4
        subu $t1, $t1, $t3
        # absorb when cubes are close: write the OR back
        sltiu $t3, $t1, 16
        beq  $t3, $zero, es_keep
        nop
        sw   $t6, 0($t2)
        sw   $t5, 4($t2)
        addiu $v0, $v0, 1
es_keep:
        b    es_outer
        addiu $t0, $t0, 1
es_next_pass:
        b    es_pass
        addiu $s2, $s2, -1
es_done:
        lw   $ra, 4($sp)
        jr   $ra
        addiu $sp, $sp, 8
        .data
fname:  .asciiz "esp.in"
        .bss
        .align 8
inbuf:  .space %u
)",
                       ReadWholeFile("fname", "inbuf", bytes).c_str(), bytes + 64);
  return w;
}

WorkloadSpec Lisp(double scale) {
  WorkloadSpec w;
  w.name = "lisp";
  w.description = "The 8-queens problem solved in LISP.";
  int repeats = std::max(1, static_cast<int>(3 * scale));
  w.source = StrFormat(R"(
        .globl main
main:
        addiu $sp, $sp, -16
        sw   $ra, 12($sp)
        sw   $s0, 8($sp)
        # Cons-cell heap, as a LISP runtime would allocate.
        li   $a0, 131072
        jal  sbrk
        nop
        la   $t0, heap_ptr
        sw   $v0, 0($t0)
        li   $s0, 0              # total solutions over repeats
        li   $s1, %d             # repeats
lq_rep:
        blez $s1, lq_done
        nop
        li   $a0, 0              # row
        li   $a1, 0              # columns bitmask
        li   $a2, 0              # diag1
        li   $a3, 0              # diag2
        jal  queens
        nop
        addu $s0, $s0, $v0
        b    lq_rep
        addiu $s1, $s1, -1
lq_done:
        move $v0, $s0
        lw   $s0, 8($sp)
        lw   $ra, 12($sp)
        jr   $ra
        addiu $sp, $sp, 16

# queens(row, cols, d1, d2) -> solution count; conses a cell per placement.
queens:
        addiu $sp, $sp, -40
        sw   $ra, 36($sp)
        sw   $s0, 32($sp)
        sw   $s1, 28($sp)
        sw   $s2, 24($sp)
        sw   $s3, 20($sp)
        sw   $s4, 16($sp)
        sw   $s5, 12($sp)
        li   $t0, 8
        bne  $a0, $t0, q_search
        nop
        li   $v0, 1              # a full placement
        b    q_ret
        nop
q_search:
        move $s0, $a0            # row
        move $s1, $a1            # cols
        move $s2, $a2            # d1
        move $s3, $a3            # d2
        li   $s4, 0              # col iterator
        li   $s5, 0              # count
q_col:
        sltiu $t0, $s4, 8
        beq  $t0, $zero, q_done
        nop
        li   $t0, 1
        sllv $t1, $t0, $s4       # col bit
        addu $t2, $s0, $s4
        sllv $t2, $t0, $t2       # d1 bit
        addiu $t3, $s0, 8
        subu $t3, $t3, $s4
        sllv $t3, $t0, $t3       # d2 bit
        and  $t4, $s1, $t1
        bne  $t4, $zero, q_next
        nop
        and  $t4, $s2, $t2
        bne  $t4, $zero, q_next
        nop
        and  $t4, $s3, $t3
        bne  $t4, $zero, q_next
        nop
        # cons (row . col) onto the placement heap
        la   $t4, heap_ptr
        lw   $t5, 0($t4)
        sw   $s0, 0($t5)
        sw   $s4, 4($t5)
        addiu $t5, $t5, 8
        sw   $t5, 0($t4)
        # recurse
        addiu $a0, $s0, 1
        or   $a1, $s1, $t1
        or   $a2, $s2, $t2
        or   $a3, $s3, $t3
        jal  queens
        nop
        addu $s5, $s5, $v0
q_next:
        b    q_col
        addiu $s4, $s4, 1
q_done:
        move $v0, $s5
q_ret:
        lw   $s5, 12($sp)
        lw   $s4, 16($sp)
        lw   $s3, 20($sp)
        lw   $s2, 24($sp)
        lw   $s1, 28($sp)
        lw   $s0, 32($sp)
        lw   $ra, 36($sp)
        jr   $ra
        addiu $sp, $sp, 40
        .bss
        .align 8
heap_ptr: .space 8
)",
                       repeats);
  return w;
}

WorkloadSpec Eqntott(double scale) {
  WorkloadSpec w;
  w.name = "eqntott";
  w.description =
      "A program that converts boolean equations to truth tables using a 1390 byte input file.";
  w.files.push_back({"eqn.in", TokenFile(1390, 707, 255), 0});
  // ~2MB working set touched in TLB-hostile strides (the paper's standout
  // TLB-miss workload).
  uint32_t table_bytes = Scaled(scale, 2 * 1024 * 1024);
  uint32_t passes = std::max(1u, static_cast<uint32_t>(2 * scale));
  w.source = StrFormat(R"(
        .globl main
main:
        addiu $sp, $sp, -8
        sw   $ra, 4($sp)
%s
        li   $a0, %u
        jal  sbrk
        nop
        move $s0, $v0            # truth table
        li   $s1, %u             # words
        # Fill with a page-hostile stride: index = (i * 1031) mod words.
        li   $t0, 0
        li   $v0, 0
eq_fill:
        sltu $t1, $t0, $s1
        beq  $t1, $zero, eq_eval
        nop
        li   $t2, 1031
        mult $t0, $t2
        mflo $t2
        divu $t2, $s1
        mfhi $t2
        sll  $t2, $t2, 2
        addu $t2, $s0, $t2
        sw   $t0, 0($t2)
        b    eq_fill
        addiu $t0, $t0, 1
eq_eval:
        # Evaluation passes: strided reads mixing input bytes in.
        li   $s2, %u             # passes
eq_pass:
        blez $s2, eq_done
        nop
        li   $t0, 0
eq_scan:
        sltu $t1, $t0, $s1
        beq  $t1, $zero, eq_next
        nop
        li   $t2, 2053
        mult $t0, $t2
        mflo $t2
        divu $t2, $s1
        mfhi $t2
        sll  $t2, $t2, 2
        addu $t2, $s0, $t2
        lw   $t3, 0($t2)
        andi $t4, $t0, 1023
        la   $t5, inbuf
        addu $t5, $t5, $t4
        lbu  $t4, 0($t5)
        xor  $t3, $t3, $t4
        addu $v0, $v0, $t3
        b    eq_scan
        addiu $t0, $t0, 7        # coarse stride: ~every other page
eq_next:
        b    eq_pass
        addiu $s2, $s2, -1
eq_done:
        lw   $ra, 4($sp)
        jr   $ra
        addiu $sp, $sp, 8
        .data
fname:  .asciiz "eqn.in"
        .bss
        .align 8
inbuf:  .space 2048
)",
                       ReadWholeFile("fname", "inbuf", 1390).c_str(), table_bytes,
                       table_bytes / 4, passes);
  return w;
}

WorkloadSpec Fpppp(double scale) {
  WorkloadSpec w;
  w.name = "fpppp";
  w.description = "A program that does quantum chemistry analysis (Fortran; fp-intensive).";
  w.fp_intensive = true;
  uint32_t iters = std::max(200u, static_cast<uint32_t>(2000 * scale));
  // Long basic blocks of multiply/divide chains over a small array — the
  // original's signature is enormous basic blocks and fp density.
  std::string chain;
  for (int i = 0; i < 40; ++i) {
    chain += StrFormat(R"(
        lw   $t2, %d($s0)
        mult $t2, $t3
        mflo $t4
        addu $t3, $t4, $t2
        lw   $t5, %d($s0)
        div  $t3, $t5
        mflo $t3
        sw   $t3, %d($s0)
)",
                       (i * 4) % 256, ((i * 12) + 4) % 256, (i * 8) % 256);
  }
  w.source = StrFormat(R"(
        .globl main
main:
        la   $s0, fdata
        # Seed the array with nonzero values.
        li   $t0, 0
fp_seed:
        sltiu $t1, $t0, 64
        beq  $t1, $zero, fp_go
        nop
        sll  $t2, $t0, 2
        addu $t2, $s0, $t2
        sll  $t3, $t0, 3
        addiu $t3, $t3, 17
        sw   $t3, 0($t2)
        b    fp_seed
        addiu $t0, $t0, 1
fp_go:
        li   $s1, %u             # iterations
        li   $t3, 3
fp_iter:
%s
        addiu $s1, $s1, -1
        bgtz $s1, fp_iter
        nop
        move $v0, $t3
        jr   $ra
        nop
        .bss
        .align 8
fdata:  .space 512
)",
                       iters, chain.c_str());
  return w;
}

WorkloadSpec Doduc(double scale) {
  WorkloadSpec w;
  w.name = "doduc";
  w.description =
      "Monte-Carlo simulation of the time evolution of a nuclear reactor component (Fortran).";
  w.fp_intensive = true;
  uint32_t samples = std::max(2000u, static_cast<uint32_t>(60000 * scale));
  w.source = StrFormat(R"(
        .globl main
main:
        li   $s0, %u             # samples
        li   $s1, 12345          # LCG state
        li   $v0, 0              # accepted events
        la   $s2, bins
dd_loop:
        blez $s0, dd_done
        nop
        # LCG step: s1 = s1*1103515245 + 12345
        lui  $t0, 0x41c6
        ori  $t0, $t0, 0x4e6d
        mult $s1, $t0
        mflo $s1
        addiu $s1, $s1, 12345
        srl  $t1, $s1, 16
        andi $t1, $t1, 0x3ff     # event energy bucket
        # Branchy state machine over the energy.
        sltiu $t2, $t1, 200
        bne  $t2, $zero, dd_absorb
        nop
        sltiu $t2, $t1, 600
        bne  $t2, $zero, dd_scatter
        nop
        # fission: heavy arithmetic
        mult $t1, $t1
        mflo $t3
        div  $t3, $t1
        mflo $t3
        addu $v0, $v0, $t3
        b    dd_next
        nop
dd_absorb:
        sll  $t3, $t1, 2
        addu $t3, $s2, $t3
        lw   $t4, 0($t3)
        addiu $t4, $t4, 1
        sw   $t4, 0($t3)
        b    dd_next
        nop
dd_scatter:
        srl  $t3, $t1, 1
        mult $t3, $t1
        mflo $t3
        andi $t3, $t3, 1023
        sll  $t3, $t3, 2
        addu $t3, $s2, $t3
        lw   $t4, 0($t3)
        xor  $t4, $t4, $t1
        sw   $t4, 0($t3)
dd_next:
        b    dd_loop
        addiu $s0, $s0, -1
dd_done:
        jr   $ra
        nop
        .bss
        .align 8
bins:   .space 4096
)",
                       samples);
  return w;
}

WorkloadSpec Liv(double scale) {
  WorkloadSpec w;
  w.name = "liv";
  w.description = "The Livermore Loops benchmark.";
  w.fp_intensive = true;
  uint32_t n = std::max(256u, static_cast<uint32_t>(4096 * scale));
  uint32_t reps = std::max(4u, static_cast<uint32_t>(30 * scale));
  w.source = StrFormat(R"(
        .globl main
main:
        la   $s0, xa
        la   $s1, ya
        la   $s2, za
        li   $s3, %u             # n
        li   $s4, %u             # repetitions
        # Seed y and z.
        li   $t0, 0
lv_seed:
        sltu $t1, $t0, $s3
        beq  $t1, $zero, lv_go
        nop
        sll  $t2, $t0, 2
        addu $t3, $s1, $t2
        sw   $t0, 0($t3)
        addu $t3, $s2, $t2
        addiu $t4, $t0, 7
        sw   $t4, 0($t3)
        b    lv_seed
        addiu $t0, $t0, 1
lv_go:
        li   $v0, 0
lv_rep:
        blez $s4, lv_done
        nop
        # Kernel 1: x[i] = q + y[i]*(r*z[i+10] + t*z[i+11]) — store-heavy.
        li   $t0, 0
        addiu $t5, $s3, -12
lv_k1:
        sltu $t1, $t0, $t5
        beq  $t1, $zero, lv_k5
        nop
        sll  $t2, $t0, 2
        addu $t3, $s2, $t2
        lw   $t4, 40($t3)        # z[i+10]
        lw   $t6, 44($t3)        # z[i+11]
        sll  $t4, $t4, 1
        addu $t4, $t4, $t6
        addu $t3, $s1, $t2
        lw   $t6, 0($t3)         # y[i]
        mult $t4, $t6
        mflo $t4
        addiu $t4, $t4, 5
        addu $t3, $s0, $t2
        sw   $t4, 0($t3)         # x[i]  (write-buffer pressure)
        b    lv_k1
        addiu $t0, $t0, 1
        # Kernel 5: tridiagonal-ish x[i] = z[i] * (y[i] - x[i-1]).
lv_k5:
        li   $t0, 1
lv_k5l:
        sltu $t1, $t0, $t5
        beq  $t1, $zero, lv_next
        nop
        sll  $t2, $t0, 2
        addu $t3, $s0, $t2
        lw   $t4, -4($t3)        # x[i-1]
        addu $t6, $s1, $t2
        lw   $t6, 0($t6)
        subu $t6, $t6, $t4
        addu $t4, $s2, $t2
        lw   $t4, 0($t4)
        mult $t4, $t6
        mflo $t4
        sw   $t4, 0($t3)
        addu $v0, $v0, $t4
        b    lv_k5l
        addiu $t0, $t0, 1
lv_next:
        b    lv_rep
        addiu $s4, $s4, -1
lv_done:
        jr   $ra
        nop
        .bss
        .align 8
xa:     .space %u
ya:     .space %u
za:     .space %u
)",
                       n, reps, n * 4 + 64, n * 4 + 64, n * 4 + 64);
  return w;
}

WorkloadSpec Tomcatv(double scale) {
  WorkloadSpec w;
  w.name = "tomcatv";
  w.description = "A program that generates a vectorized mesh (Fortran).";
  w.fp_intensive = true;
  uint32_t n = std::max(32u, static_cast<uint32_t>(128 * scale));
  uint32_t iters = std::max(2u, static_cast<uint32_t>(8 * scale));
  w.source = StrFormat(R"(
        .globl main
main:
        addiu $sp, $sp, -8
        sw   $ra, 4($sp)
        li   $s3, %u             # n (mesh edge)
        li   $s4, %u             # iterations
        # Mesh of n*n words on the heap.
        mult $s3, $s3
        mflo $a0
        sll  $a0, $a0, 2
        jal  sbrk
        nop
        move $s0, $v0
        # Seed the mesh.
        mult $s3, $s3
        mflo $s1
        li   $t0, 0
tc_seed:
        sltu $t1, $t0, $s1
        beq  $t1, $zero, tc_go
        nop
        sll  $t2, $t0, 2
        addu $t2, $s0, $t2
        sll  $t3, $t0, 1
        addiu $t3, $t3, 3
        sw   $t3, 0($t2)
        b    tc_seed
        addiu $t0, $t0, 1
tc_go:
        li   $v0, 0
tc_iter:
        blez $s4, tc_done
        nop
        # Relaxation sweep: m[i][j] = avg of 4 neighbours (row-major walk).
        li   $t0, 1              # i
tc_row:
        addiu $t1, $s3, -1
        sltu $t2, $t0, $t1
        beq  $t2, $zero, tc_next
        nop
        li   $t3, 1              # j
tc_col:
        sltu $t2, $t3, $t1
        beq  $t2, $zero, tc_rowend
        nop
        # index = i*n + j
        mult $t0, $s3
        mflo $t4
        addu $t4, $t4, $t3
        sll  $t4, $t4, 2
        addu $t4, $s0, $t4
        lw   $t5, -4($t4)        # west
        lw   $t6, 4($t4)         # east
        addu $t5, $t5, $t6
        sll  $t6, $s3, 2
        subu $t2, $t4, $t6
        lw   $t2, 0($t2)         # north
        addu $t5, $t5, $t2
        addu $t2, $t4, $t6
        lw   $t2, 0($t2)         # south
        addu $t5, $t5, $t2
        sra  $t5, $t5, 2
        sw   $t5, 0($t4)
        addu $v0, $v0, $t5
        b    tc_col
        addiu $t3, $t3, 1
tc_rowend:
        b    tc_row
        addiu $t0, $t0, 1
tc_next:
        b    tc_iter
        addiu $s4, $s4, -1
tc_done:
        lw   $ra, 4($sp)
        jr   $ra
        addiu $sp, $sp, 8
)",
                       n, iters);
  return w;
}

}  // namespace

std::vector<WorkloadSpec> PaperWorkloads(double scale) {
  return {Sed(scale),    Egrep(scale),   Yacc(scale),  Gcc(scale),
          Compress(scale), Espresso(scale), Lisp(scale), Eqntott(scale),
          Fpppp(scale),  Doduc(scale),   Liv(scale),   Tomcatv(scale)};
}

WorkloadSpec PaperWorkload(const std::string& name, double scale) {
  for (WorkloadSpec& w : PaperWorkloads(scale)) {
    if (w.name == name) {
      return w;
    }
  }
  throw Error(StrFormat("unknown workload '%s'", name.c_str()));
}

}  // namespace wrl
