// The twelve experimental workloads of the paper's Table 1, rebuilt as DS32
// programs with the characteristic structure of the originals: the same mix
// of file I/O, working-set size, instruction mix, and run length — the
// properties the validation methodology actually exercises.  (The SPEC-era
// sources themselves are a gated dependency; DESIGN.md §2 records the
// substitution.)
//
//   sed       stream editing: 3 passes of byte-level substitution over 17K
//   egrep     pattern search: 3 scans of a 27K file with a small automaton
//   yacc      LR table walking over an 11K token stream
//   gcc       compiler phases: lex, tree build (heap), emit; largest text
//   compress  LZW-style hash compression of a 100K file, then decompression
//   espresso  bitset cube minimization over a 30K input
//   lisp      8-queens by recursive backtracking over cons cells
//   eqntott   truth-table generation: ~2MB working set, TLB-hostile
//   fpppp     long basic blocks of multiply/divide chains (fp-intensive)
//   doduc     Monte-Carlo simulation: RNG, branchy state machine, mult/div
//   liv       Livermore-loop array kernels: write-buffer pressure
//   tomcatv   2D mesh sweeps, the longest-running workload
#ifndef WRLTRACE_WORKLOADS_WORKLOADS_H_
#define WRLTRACE_WORKLOADS_WORKLOADS_H_

#include <string>
#include <vector>

#include "kernel/system_build.h"

namespace wrl {

struct WorkloadSpec {
  std::string name;
  std::string description;   // Table 1's description column.
  std::string source;        // DS32 assembly defining `main`.
  std::vector<DiskFile> files;
  bool fp_intensive = false;  // Table 1 groups the bottom four as FP.
};

// Scale 1.0 reproduces the default sizes above; smaller values shrink the
// workloads proportionally (used by quick tests).
std::vector<WorkloadSpec> PaperWorkloads(double scale = 1.0);

// A single workload by name (throws wrl::Error if unknown).
WorkloadSpec PaperWorkload(const std::string& name, double scale = 1.0);

}  // namespace wrl

#endif  // WRLTRACE_WORKLOADS_WORKLOADS_H_
