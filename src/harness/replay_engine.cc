#include "harness/replay_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

#include "support/error.h"

namespace wrl {

namespace {

uint64_t WallNowUs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// Materializes the parsed stream into fixed-size segments.  A growing
// dense vector would copy every element O(log n) times and briefly hold
// ~3x the stream during each reallocation; segments never move, and the
// final dense stream is reserved exactly once from the parser's counters.
class SegmentCollectSink : public RefBatchSink {
 public:
  static constexpr size_t kSegmentRefs = size_t{1} << 19;

  void OnRefBatch(const TraceRef* refs, size_t count) override {
    while (count > 0) {
      if (segments_.empty() || segments_.back().size() == kSegmentRefs) {
        segments_.emplace_back();
        segments_.back().reserve(kSegmentRefs);
      }
      std::vector<TraceRef>& segment = segments_.back();
      size_t take = std::min(count, kSegmentRefs - segment.size());
      segment.insert(segment.end(), refs, refs + take);
      refs += take;
      count -= take;
      total_ += take;
    }
  }

  uint64_t total() const { return total_; }

  // Appends every segment to `out` (already reserved), freeing each
  // segment as it drains so peak memory is stream + one segment.
  void MoveInto(std::vector<TraceRef>& out) {
    for (std::vector<TraceRef>& segment : segments_) {
      out.insert(out.end(), segment.begin(), segment.end());
      std::vector<TraceRef>().swap(segment);
    }
    segments_.clear();
  }

 private:
  std::vector<std::vector<TraceRef>> segments_;
  uint64_t total_ = 0;
};

}  // namespace

void ReplayEngine::Parse(unsigned decode_workers) {
  if (parsed_) {
    return;
  }
  WRL_CHECK_MSG(source_.log != nullptr, "ReplayEngine has no TraceLog");
  uint64_t wall0 = WallNowUs();
  TraceParser parser(source_.kernel_table);
  for (const auto& [pid, table] : source_.user_tables) {
    parser.SetUserTable(pid, table);
  }
  parser.SetInitialContext(source_.initial_context);
  SegmentCollectSink collector;
  parser.SetBatchSink(&collector);
  auto feed = [&parser](const uint32_t* words, size_t count) { parser.Feed(words, count); };
  if (decode_workers > 1) {
    source_.log->ReplayParallel(decode_workers, feed);
  } else {
    source_.log->Replay(feed);
  }
  parser.Finish();
  parser_stats_ = parser.stats();
  parser_errors_ = parser.errors();
  // Exact-size materialization: the parser has already counted every
  // reference it delivered (refs == ifetches + loads + stores), so the
  // dense stream allocates once and never grows.
  uint64_t total = parser_stats_.ifetches + parser_stats_.loads + parser_stats_.stores;
  WRL_CHECK_MSG(total == collector.total(), "parser counters disagree with collected refs");
  refs_.reserve(total);
  collector.MoveInto(refs_);
  materialized_bytes_ = refs_.size() * sizeof(TraceRef);
  parse_wall_us_ = WallNowUs() - wall0;
  parsed_ = true;
}

std::vector<ReplayEngine::Outcome> ReplayEngine::Run(const std::vector<Config>& configs) {
  return Run(configs, Options());
}

std::vector<ReplayEngine::Outcome> ReplayEngine::Run(const std::vector<Config>& configs,
                                                     const Options& options) {
  Parse(options.decode_workers);
  std::vector<Outcome> outcomes(configs.size());
  std::vector<std::exception_ptr> errors(configs.size());
  uint64_t fanout_wall0 = WallNowUs();

  // One config's replay, on whichever thread claims it.
  auto replay_one = [&](size_t i, EventRecorder* events) {
    Outcome& out = outcomes[i];
    out.name = configs[i].name;
    EventRecorder::Scope scope(events, "replay:" + configs[i].name, "replay");
    uint64_t wall0 = WallNowUs();
    out.sink = configs[i].make();
    if (options.batch) {
      size_t batch = options.batch_refs == 0 ? kRefBatchCapacity : options.batch_refs;
      for (size_t off = 0; off < refs_.size(); off += batch) {
        size_t count = std::min(batch, refs_.size() - off);
        out.sink->OnRefBatch(refs_.data() + off, count);
      }
    } else {
      // The per-ref compatibility path: same stream, one ref per delivery.
      for (const TraceRef& ref : refs_) {
        out.sink->OnRefBatch(&ref, 1);
      }
    }
    out.refs = refs_.size();
    out.wall_us = WallNowUs() - wall0;
  };

  unsigned jobs = options.jobs == 0 ? 1 : options.jobs;
  jobs = static_cast<unsigned>(
      std::min<size_t>(jobs, configs.empty() ? size_t{1} : configs.size()));
  if (jobs <= 1) {
    for (size_t i = 0; i < configs.size(); ++i) {
      replay_one(i, options.events);
    }
  } else {
    // The PR 2 worker-pool pattern: workers claim the next config; results
    // land in config order; timelines are recorded privately and absorbed
    // in config order below, so reports are scheduling-independent.
    std::atomic<size_t> next{0};
    std::vector<EventRecorder> recorders(configs.size());
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t) {
      pool.emplace_back([&] {
        for (size_t i = next.fetch_add(1); i < configs.size(); i = next.fetch_add(1)) {
          try {
            replay_one(i, &recorders[i]);
          } catch (...) {
            errors[i] = std::current_exception();
          }
        }
      });
    }
    for (std::thread& worker : pool) {
      worker.join();
    }
    for (const std::exception_ptr& error : errors) {
      if (error != nullptr) {
        std::rethrow_exception(error);
      }
    }
    for (size_t i = 0; i < configs.size(); ++i) {
      outcomes[i].timeline = recorders[i].TakeEvents();
    }
  }

  last_run_wall_us_ = WallNowUs() - fanout_wall0;
  last_run_refs_ = refs_.size() * configs.size();
  configs_run_ = configs.size();
  last_mrefs_per_sec_ =
      last_run_wall_us_ == 0
          ? 0
          : static_cast<double>(last_run_refs_) / (static_cast<double>(last_run_wall_us_) * 1e-6) /
                1e6;
  if (options.events != nullptr) {
    for (Outcome& out : outcomes) {
      options.events->Absorb(std::move(out.timeline));
      out.timeline.clear();
    }
  }
  return outcomes;
}

void ReplayEngine::RegisterStats(StatsRegistry& registry, const std::string& prefix) {
  registry.AddGauge(prefix + "refs", [this] { return static_cast<double>(refs_.size()); });
  registry.AddCounter(prefix + "materialized_bytes", &materialized_bytes_);
  registry.AddGauge(prefix + "parse_wall_us",
                    [this] { return static_cast<double>(parse_wall_us_); });
  registry.AddGauge(prefix + "configs", [this] { return static_cast<double>(configs_run_); });
  registry.AddGauge(prefix + "delivered_refs",
                    [this] { return static_cast<double>(last_run_refs_); });
  registry.AddGauge(prefix + "wall_us", [this] { return static_cast<double>(last_run_wall_us_); });
  registry.AddGauge(prefix + "mrefs_per_sec", [this] { return last_mrefs_per_sec_; });
}

void ReplayEngine::RegisterParserStats(StatsRegistry& registry, const std::string& prefix) {
  registry.AddCounter(prefix + "words", &parser_stats_.words);
  registry.AddCounter(prefix + "blocks", &parser_stats_.blocks);
  registry.AddCounter(prefix + "refs", &parser_stats_.refs);
  registry.AddCounter(prefix + "ifetches", &parser_stats_.ifetches);
  registry.AddCounter(prefix + "loads", &parser_stats_.loads);
  registry.AddCounter(prefix + "stores", &parser_stats_.stores);
  registry.AddCounter(prefix + "kernel_ifetches", &parser_stats_.kernel_ifetches);
  registry.AddCounter(prefix + "user_ifetches", &parser_stats_.user_ifetches);
  registry.AddCounter(prefix + "idle_instructions", &parser_stats_.idle_instructions);
  registry.AddCounter(prefix + "markers", &parser_stats_.markers);
  registry.AddCounter(prefix + "validation_errors", &parser_stats_.validation_errors);
}

}  // namespace wrl
