// Machine-readable run reports (schema "wrlstats/1").
//
// One JSON document carries everything a harness needs to diff two runs:
//   * per-experiment measured/predicted headline numbers and their deltas
//     (the §5 validation currency: cycles, UTLB misses, idle instructions);
//   * the full wrlstats counter-registry snapshot of every layer;
//   * a flat `metrics` object of doubles — the BENCH_*.json perf-trajectory
//     record — so trend tooling needs no schema knowledge;
//   * the event timeline under `traceEvents`, which makes the whole report
//     loadable as-is in chrome://tracing or ui.perfetto.dev (both treat
//     unknown top-level keys as metadata).
#ifndef WRLTRACE_HARNESS_REPORT_H_
#define WRLTRACE_HARNESS_REPORT_H_

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "stats/events.h"

namespace wrl {

struct RunReportOptions {
  std::string tool;        // Emitting binary ("bench_table2", "tlb_study", ...).
  double clock_hz = 25e6;  // For rendering cycles as seconds.
  double scale = 0;        // Workload scale; 0 = not applicable.
  // Entries kept per profile table (blocks/symbols/pages) when experiments
  // carry an attribution profile; 0 = everything.
  size_t profile_top = 20;
};

// Renders the full report document.
std::string RunReportJson(const std::vector<ExperimentResult>& results,
                          const std::vector<TimelineEvent>& events,
                          const RunReportOptions& options);

// Renders and writes the report; throws wrl::Error on I/O failure.
void WriteRunReport(const std::string& path, const std::vector<ExperimentResult>& results,
                    const std::vector<TimelineEvent>& events, const RunReportOptions& options);

// The schema-light variant for benches that measure something other than
// experiments: just `tool` + flat `metrics` (and the timeline when given).
void WriteMetricsReport(const std::string& path, const std::string& tool,
                        const std::map<std::string, double>& metrics,
                        const std::vector<TimelineEvent>& events, double scale = 0);

// Prints every ExperimentResult warning (parser validation errors,
// degenerate predictions) to `out`, loudly.  Returns the number printed.
size_t PrintResultWarnings(const ExperimentResult& result, std::FILE* out);

}  // namespace wrl

#endif  // WRLTRACE_HARNESS_REPORT_H_
