// Capture-once / replay-many analysis (the ROADMAP's "many scenarios, as
// fast as the hardware allows" leverage for the analysis side).
//
// A configuration sweep used to cost one traced machine run *per
// configuration*, regenerating a byte-identical trace each time.  The
// ReplayEngine inverts that: the captured TraceLog is parsed exactly once
// (one pass of table lookups and block reconstruction), the reconstructed
// reference stream is materialized as a dense array, and each analysis
// configuration replays that array in kRefBatchCapacity-sized batches —
// fanned out across a worker pool (the PR 2 pattern: workers claim the next
// config, results land in config order, per-config EventRecorder timelines
// are absorbed deterministically).  A K-config sweep therefore costs one
// traced run + one parse + K cheap replays.
//
// Bit-identity invariant: the materialized stream is exactly the sequence a
// live per-ref sink would have seen, so every counter and predicted number
// a replayed configuration produces matches the live path bit-for-bit.
// Options::batch=false (or WRL_BATCH=0 in harnesses) delivers the same
// stream one reference at a time for A/B verification.
#ifndef WRLTRACE_HARNESS_REPLAY_ENGINE_H_
#define WRLTRACE_HARNESS_REPLAY_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "stats/events.h"
#include "stats/stats.h"
#include "trace/parser.h"
#include "trace/trace_log.h"

namespace wrl {

// Everything a replay needs to re-parse a captured trace: the chunk source
// (an in-memory TraceLog or an on-disk ArchiveReader — the engine does not
// care which) and the per-address-space lookup tables of the *capturing*
// system (which must stay alive for the engine's lifetime).
struct ReplaySource {
  const TraceChunkSource* log = nullptr;
  const TraceInfoTable* kernel_table = nullptr;
  std::vector<std::pair<uint8_t, const TraceInfoTable*>> user_tables;
  uint8_t initial_context = kKernelPid;
};

class ReplayEngine {
 public:
  explicit ReplayEngine(ReplaySource source) : source_(std::move(source)) {}

  // Parses the log once and materializes the reference stream.  Idempotent;
  // Run() calls it implicitly.  `decode_workers` > 1 decodes the log's
  // independently coded chunks on that many worker threads while the parser
  // consumes them strictly in capture order (TraceLog::ReplayParallel) —
  // the parse sees the identical word sequence either way.  The dense
  // stream is reserved exactly once, from the parser's own ifetch+load+
  // store counters, so materialization never grows by reallocation; its
  // byte cost is exported as the `replay.materialized_bytes` metric.
  void Parse(unsigned decode_workers = 1);

  const TraceParserStats& parser_stats() const { return parser_stats_; }
  const std::vector<std::string>& parser_errors() const { return parser_errors_; }
  const std::vector<TraceRef>& refs() const { return refs_; }

  // One analysis configuration of the fan-out.  `make` builds the config's
  // sink chain and runs on the replay worker thread; the engine keeps the
  // returned sink alive in the Outcome so callers can downcast and harvest
  // results.
  struct Config {
    std::string name;
    std::function<std::unique_ptr<RefBatchSink>()> make;
  };

  struct Outcome {
    std::string name;
    std::unique_ptr<RefBatchSink> sink;
    uint64_t refs = 0;
    uint64_t wall_us = 0;  // Host wall time of this config's replay.
    std::vector<TimelineEvent> timeline;
  };

  struct Options {
    unsigned jobs = 1;
    // Worker threads for the chunk-parallel TraceLog decode feeding the
    // single parse (only the first Run/Parse pays this; 1 = serial).
    unsigned decode_workers = 1;
    // false = per-ref delivery (the WRL_BATCH=0 compatibility/A-B path).
    bool batch = true;
    size_t batch_refs = kRefBatchCapacity;
    // When set, per-config timelines are absorbed here in config order
    // after the pool drains (deterministic regardless of scheduling).
    EventRecorder* events = nullptr;
  };

  // Replays the materialized stream through every config.  Outcomes are in
  // config order.  Throws whatever a config's make/sink throws.
  std::vector<Outcome> Run(const std::vector<Config>& configs, const Options& options);
  std::vector<Outcome> Run(const std::vector<Config>& configs);  // Default options.

  // Aggregate throughput of the last Run(): references delivered across all
  // configs per wall-second of the whole fan-out.
  double mrefs_per_sec() const { return last_mrefs_per_sec_; }
  uint64_t last_run_refs() const { return last_run_refs_; }
  uint64_t last_run_wall_us() const { return last_run_wall_us_; }

  // Binds replay-side metrics (materialized refs, last-run throughput) into
  // `registry` under `prefix`; the engine must outlive snapshots.
  void RegisterStats(StatsRegistry& registry, const std::string& prefix = "replay.");
  // Binds the single parse's parser counters (same names the live path
  // registers) under `prefix`.
  void RegisterParserStats(StatsRegistry& registry, const std::string& prefix = "parser.");

 private:
  ReplaySource source_;
  bool parsed_ = false;
  std::vector<TraceRef> refs_;
  TraceParserStats parser_stats_;
  std::vector<std::string> parser_errors_;
  uint64_t materialized_bytes_ = 0;  // Dense-stream footprint of the capture.
  uint64_t parse_wall_us_ = 0;
  uint64_t last_run_refs_ = 0;
  uint64_t last_run_wall_us_ = 0;
  uint64_t configs_run_ = 0;
  double last_mrefs_per_sec_ = 0;
};

}  // namespace wrl

#endif  // WRLTRACE_HARNESS_REPLAY_ENGINE_H_
