#include "harness/report.h"

#include <cmath>

#include "support/error.h"
#include "support/json.h"
#include "support/strings.h"

namespace wrl {

namespace {

std::string MetricKey(const ExperimentResult& result, const char* leaf) {
  return StrFormat("%s.%s.%s", PersonalityName(result.personality), result.workload.c_str(),
                   leaf);
}

// The flat perf-trajectory record: one double per headline number.
std::map<std::string, double> FlatMetrics(const std::vector<ExperimentResult>& results,
                                          const RunReportOptions& options) {
  std::map<std::string, double> metrics;
  for (const ExperimentResult& r : results) {
    metrics[MetricKey(r, "measured_seconds")] = r.MeasuredSeconds(options.clock_hz);
    metrics[MetricKey(r, "predicted_seconds")] = r.PredictedSeconds(options.clock_hz);
    metrics[MetricKey(r, "time_error_percent")] = r.TimeErrorPercent();
    metrics[MetricKey(r, "measured_utlb_misses")] = static_cast<double>(r.measured_utlb);
    metrics[MetricKey(r, "predicted_utlb_misses")] =
        static_cast<double>(r.prediction.utlb_misses);
    metrics[MetricKey(r, "trace_words")] = static_cast<double>(r.trace_words);
    metrics[MetricKey(r, "parser_errors")] = static_cast<double>(r.parser_errors);
    if (r.trace_log_words > 0) {
      metrics[MetricKey(r, "trace_compression")] = r.trace_compression;
    }
    for (const ReplayVariantResult& v : r.replays) {
      metrics[MetricKey(r, ("replay." + v.name + ".predicted_seconds").c_str())] =
          static_cast<double>(v.prediction.PredictedCycles()) / options.clock_hz;
      metrics[MetricKey(r, ("replay." + v.name + ".predicted_utlb_misses").c_str())] =
          static_cast<double>(v.prediction.utlb_misses);
    }
  }
  // Replay fan-out throughput across the capture-replay experiments (wall-
  // clock dependent, like sim.mips below — a single global key).
  double replay_mrefs_sum = 0;
  size_t replay_experiments = 0;
  for (const ExperimentResult& r : results) {
    if (r.replay_mrefs_per_sec > 0) {
      replay_mrefs_sum += r.replay_mrefs_per_sec;
      ++replay_experiments;
    }
  }
  if (replay_experiments > 0) {
    metrics["replay.mrefs_per_sec"] = replay_mrefs_sum / static_cast<double>(replay_experiments);
  }
  // Single-pass sweep throughput: equivalent-replay references per second
  // (family points × refs / sweep wall), averaged like replay.mrefs_per_sec,
  // plus the speedup over pricing the same points with real replays.
  double sweep_mrefs_sum = 0;
  size_t sweep_experiments = 0;
  for (const ExperimentResult& r : results) {
    if (r.sweep_mrefs_per_sec > 0) {
      sweep_mrefs_sum += r.sweep_mrefs_per_sec;
      ++sweep_experiments;
    }
  }
  if (sweep_experiments > 0) {
    metrics["sweep.mrefs_per_sec"] = sweep_mrefs_sum / static_cast<double>(sweep_experiments);
    if (replay_experiments > 0 && metrics["replay.mrefs_per_sec"] > 0) {
      metrics["sweep.speedup_vs_replay"] =
          metrics["sweep.mrefs_per_sec"] / metrics["replay.mrefs_per_sec"];
    }
  }
  // Simulator throughput: simulated instructions per wall-second of run
  // time, aggregated over the whole suite.  Wall-clock dependent, so it is
  // a single global key — the per-workload keys above stay deterministic.
  uint64_t sim_instructions = 0;
  uint64_t run_wall_us = 0;
  for (const ExperimentResult& r : results) {
    sim_instructions += r.simulated_instructions;
    run_wall_us += r.run_wall_us;
  }
  if (run_wall_us > 0) {
    metrics["sim.mips"] =
        static_cast<double>(sim_instructions) / (static_cast<double>(run_wall_us) * 1e-6) / 1e6;
  }
  return metrics;
}

void WriteMetricsObject(JsonWriter& writer, const std::map<std::string, double>& metrics) {
  writer.Key("metrics").BeginObject();
  for (const auto& [key, value] : metrics) {
    writer.KV(key, value);
  }
  writer.EndObject();
}

void WriteHeader(JsonWriter& writer, const std::string& tool, double scale) {
  writer.KV("schema", "wrlstats/1");
  writer.KV("tool", tool);
  if (scale > 0) {
    writer.KV("scale", scale);
  }
}

void WriteExperiment(JsonWriter& writer, const ExperimentResult& r,
                     const RunReportOptions& options) {
  writer.BeginObject();
  writer.KV("workload", r.workload);
  writer.KV("personality", PersonalityName(r.personality));
  writer.KV("exit_code", static_cast<uint64_t>(r.exit_code));

  writer.Key("measured").BeginObject();
  writer.KV("cycles", r.measured_cycles);
  writer.KV("seconds", r.MeasuredSeconds(options.clock_hz));
  writer.KV("utlb_misses", r.measured_utlb);
  writer.KV("idle_instructions", r.measured_idle_instructions);
  writer.KV("tlb_dropins", r.measured_tlbdropins);
  writer.KV("user_instructions", r.measured_user_instructions);
  writer.EndObject();

  writer.Key("predicted").BeginObject();
  writer.KV("cycles", r.prediction.PredictedCycles());
  writer.KV("seconds", r.PredictedSeconds(options.clock_hz));
  writer.KV("utlb_misses", r.prediction.utlb_misses);
  writer.KV("instructions", r.prediction.instructions);
  writer.KV("idle_instructions", r.prediction.idle_instructions);
  writer.KV("mem_stall_cycles", r.prediction.mem_stall_cycles);
  writer.KV("arith_stall_cycles", r.prediction.arith_stall_cycles);
  writer.KV("io_stall_cycles", r.prediction.io_stall_cycles);
  writer.KV("synthesized_refs", r.prediction.synthesized_refs);
  writer.KV("user_cpi", r.prediction.UserCpi());
  writer.KV("kernel_cpi", r.prediction.KernelCpi());
  writer.EndObject();

  writer.Key("delta").BeginObject();
  writer.KV("time_error_percent", r.TimeErrorPercent());
  double measured_utlb = static_cast<double>(r.measured_utlb);
  writer.KV("utlb_error_percent",
            measured_utlb == 0
                ? 0.0
                : 100.0 * (static_cast<double>(r.prediction.utlb_misses) - measured_utlb) /
                      measured_utlb);
  writer.KV("degenerate_prediction", r.DegeneratePrediction());
  writer.EndObject();

  writer.Key("trace").BeginObject();
  writer.KV("words", r.trace_words);
  writer.KV("parser_errors", r.parser_errors);
  writer.KV("analysis_switches", r.analysis_switches);
  writer.KV("traced_machine_instructions", r.traced_machine_instructions);
  writer.EndObject();

  if (r.trace_log_words > 0) {
    // The capture-replay pipeline's accounting: what the TraceLog held and
    // how fast the fan-out consumed it.
    writer.Key("capture").BeginObject();
    writer.KV("trace_log_words", r.trace_log_words);
    writer.KV("trace_log_bytes", r.trace_log_bytes);
    writer.KV("compression_ratio", r.trace_compression);
    writer.KV("replay_mrefs_per_sec", r.replay_mrefs_per_sec);
    writer.EndObject();
  }
  if (!r.replays.empty()) {
    writer.Key("replays").BeginArray();
    for (const ReplayVariantResult& v : r.replays) {
      writer.BeginObject();
      writer.KV("name", v.name);
      writer.KV("predicted_cycles", v.prediction.PredictedCycles());
      writer.KV("predicted_seconds",
                static_cast<double>(v.prediction.PredictedCycles()) / options.clock_hz);
      writer.KV("predicted_utlb_misses", v.prediction.utlb_misses);
      writer.KV("instructions", v.prediction.instructions);
      writer.KV("mem_stall_cycles", v.prediction.mem_stall_cycles);
      writer.KV("refs", v.refs);
      writer.KV("wall_us", v.wall_us);
      writer.KV("swept", v.swept);
      writer.EndObject();
    }
    writer.EndArray();
  }
  if (r.sweep_ran) {
    // The single-pass sweep: every family point priced by one walk over
    // the reference stream (exact miss counts; derived timing).
    writer.Key("sweep").BeginObject();
    writer.KV("refs", r.sweep.refs);
    writer.KV("synthesized_refs", r.sweep.synthesized_refs);
    writer.KV("family_points", static_cast<uint64_t>(r.sweep.family_points));
    writer.KV("wall_us", r.sweep.wall_us);
    if (r.sweep_mrefs_per_sec > 0) {
      writer.KV("mrefs_per_sec", r.sweep_mrefs_per_sec);
    }
    writer.Key("icache").BeginArray();
    for (const SweepCachePoint& p : r.sweep.icache) {
      writer.BeginObject();
      writer.KV("line_bytes", static_cast<uint64_t>(p.line_bytes));
      writer.KV("size_bytes", static_cast<uint64_t>(p.size_bytes));
      writer.KV("misses", p.misses);
      writer.EndObject();
    }
    writer.EndArray();
    writer.Key("dcache").BeginArray();
    for (const SweepCachePoint& p : r.sweep.dcache) {
      writer.BeginObject();
      writer.KV("line_bytes", static_cast<uint64_t>(p.line_bytes));
      writer.KV("size_bytes", static_cast<uint64_t>(p.size_bytes));
      writer.KV("misses", p.misses);
      writer.EndObject();
    }
    writer.EndArray();
    if (!r.sweep.tlb_lru_misses.empty()) {
      writer.Key("tlb").BeginObject();
      writer.KV("refs", r.sweep.tlb_refs);
      writer.KV("cold_misses", r.sweep.tlb_cold_misses);
      // The exact LRU capacity-miss curve at power-of-two capacities (the
      // full per-entry curve lives in SweepResult for programmatic use).
      writer.Key("lru_misses").BeginArray();
      for (size_t c = 1; c <= r.sweep.tlb_lru_misses.size(); c <<= 1) {
        writer.BeginObject();
        writer.KV("entries", static_cast<uint64_t>(c));
        writer.KV("misses", r.sweep.tlb_lru_misses[c - 1]);
        writer.EndObject();
      }
      writer.EndArray();
      writer.EndObject();
    }
    writer.EndObject();
  }

  if (r.profile.totals.refs > 0) {
    writer.Key("profile");
    r.profile.WriteJson(writer, options.profile_top);
  }

  writer.Key("counters");
  r.stats.WriteJson(writer);

  std::vector<std::string> warnings = r.Warnings();
  writer.Key("warnings").BeginArray();
  for (const std::string& warning : warnings) {
    writer.Value(warning);
  }
  writer.EndArray();
  writer.EndObject();
}

void WriteFile(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    throw Error(StrFormat("cannot open report file '%s' for writing", path.c_str()));
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), file);
  bool ok = written == content.size() && std::fclose(file) == 0;
  if (!ok) {
    throw Error(StrFormat("short write to report file '%s'", path.c_str()));
  }
}

}  // namespace

std::string RunReportJson(const std::vector<ExperimentResult>& results,
                          const std::vector<TimelineEvent>& events,
                          const RunReportOptions& options) {
  JsonWriter writer;
  writer.BeginObject();
  WriteHeader(writer, options.tool, options.scale);
  writer.KV("clock_hz", options.clock_hz);

  WriteMetricsObject(writer, FlatMetrics(results, options));

  writer.Key("experiments").BeginArray();
  for (const ExperimentResult& r : results) {
    WriteExperiment(writer, r, options);
  }
  writer.EndArray();

  uint64_t total_errors = 0;
  for (const ExperimentResult& r : results) {
    total_errors += r.parser_errors;
  }
  writer.Key("totals").BeginObject();
  writer.KV("workloads", static_cast<uint64_t>(results.size()));
  writer.KV("parser_errors", total_errors);
  writer.EndObject();

  // The timeline: the shared recorder's events plus any per-experiment
  // private timelines, concatenated.
  writer.Key("traceEvents").BeginArray();
  WriteChromeTraceEvents(writer, events);
  for (const ExperimentResult& r : results) {
    WriteChromeTraceEvents(writer, r.timeline);
  }
  writer.EndArray();
  writer.EndObject();
  return writer.TakeString();
}

void WriteRunReport(const std::string& path, const std::vector<ExperimentResult>& results,
                    const std::vector<TimelineEvent>& events, const RunReportOptions& options) {
  WriteFile(path, RunReportJson(results, events, options));
}

void WriteMetricsReport(const std::string& path, const std::string& tool,
                        const std::map<std::string, double>& metrics,
                        const std::vector<TimelineEvent>& events, double scale) {
  JsonWriter writer;
  writer.BeginObject();
  WriteHeader(writer, tool, scale);
  WriteMetricsObject(writer, metrics);
  writer.Key("traceEvents").BeginArray();
  WriteChromeTraceEvents(writer, events);
  writer.EndArray();
  writer.EndObject();
  WriteFile(path, writer.TakeString());
}

size_t PrintResultWarnings(const ExperimentResult& result, std::FILE* out) {
  std::vector<std::string> warnings = result.Warnings();
  for (const std::string& warning : warnings) {
    std::fprintf(out, "*** %s ***\n", warning.c_str());
  }
  return warnings.size();
}

}  // namespace wrl
