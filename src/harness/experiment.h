// The validation experiments (paper §5): run each workload twice —
// uninstrumented on the timing machine (*measured*) and instrumented with
// the trace feeding the analysis program (*predicted*) — and compare.
//
//   Table 2 / Figure 3: execution times, measured vs predicted
//   Table 3:            user TLB miss counts, measured vs predicted
#ifndef WRLTRACE_HARNESS_EXPERIMENT_H_
#define WRLTRACE_HARNESS_EXPERIMENT_H_

#include <limits>
#include <string>
#include <vector>

#include "kernel/system_build.h"
#include "prof/prof.h"
#include "sim/predictor.h"
#include "stats/events.h"
#include "stats/stats.h"
#include "sweep/sweep.h"
#include "trace/chunk_ring.h"
#include "trace/trace_archive.h"
#include "trace/trace_log.h"
#include "workloads/workloads.h"

namespace wrl {

// Report/archive spelling of a personality and its inverse (used by run
// reports and wrltrace/1 archive metadata; FromName throws wrl::Error on an
// unknown spelling).
const char* PersonalityName(Personality personality);
Personality PersonalityFromName(const std::string& name);

// One extra analysis configuration of a capture-once / replay-many sweep:
// after the primary analysis replays the captured trace, each variant
// replays the identical stream with its own cache geometry, TLB wiring,
// and page-map draw — no additional traced machine run.
struct ReplayVariant {
  std::string name;
  MemSysConfig memsys;
  unsigned tlb_wired = 8;
  // Page-map permutation multiplier override (0 = the experiment's map).
  uint32_t page_map_mult = 0;
};

struct ReplayVariantResult {
  std::string name;
  Prediction prediction;
  TlbSimStats tlb;
  uint64_t refs = 0;
  uint64_t wall_us = 0;
  // Priced by the single-pass sweep engine instead of a dedicated replay
  // (exact miss counts, derived timing — see DESIGN.md §13).
  bool swept = false;
};

// Single-pass sweep configuration (src/sweep).  When active, one
// SweepEngine pass rides the analysis stream — live behind the parser or
// as one more replay config in capture mode — and (a) prices the explicit
// cache families and TLB curve below, and (b) absorbs every *geometry-only*
// ReplayVariant (same penalties, write buffer, TLB wiring, and page map as
// the primary; power-of-two cache geometry): those variants get exact miss
// counts from the shared pass and derived timing instead of a dedicated
// replay.  Non-sweepable variants still fan out to real replays.
struct SweepOptions {
  // Activates the sweep even with no explicit families (it then covers
  // only the geometry-only replay variants and/or the TLB curve).
  bool enabled = false;
  std::vector<CacheFamilySpec> icache;
  std::vector<CacheFamilySpec> dcache;
  // Capacity bound of the exported LRU TLB miss curve (0 = no curve).
  unsigned tlb_max_entries = 0;

  bool Active() const {
    return enabled || !icache.empty() || !dcache.empty() || tlb_max_entries > 0;
  }
};

struct ExperimentOptions {
  Personality personality = Personality::kUltrix;
  // Untraced clock period; the traced system runs it at 1/15th the rate
  // (paper §4.1).
  uint32_t clock_period = 200000;
  double dilation = 15.0;
  uint32_t trace_buf_bytes = 16u << 20;
  // Liveness-driven epoxie scavenging (WRL_SCAVENGE in the environment by
  // default).  Every counter, prediction, and reconstructed reference is
  // bit-identical either way; only the instrumented text growth — and the
  // traced.epoxie.* dilation metrics derived from it — changes.
  bool scavenge = ScavengeEnabled();
  uint64_t max_instructions = 3'000'000'000;
  // Simulated clock frequency used only to render cycles as seconds.
  double clock_hz = 25e6;
  // Optional shared timeline: build/run/analysis phases and trace drains
  // are recorded here.  When null the experiment records into a private
  // recorder and moves the events into ExperimentResult::timeline.
  EventRecorder* events = nullptr;
  // Worker threads for RunSuite (1 = serial).  Workers run whole
  // experiments with private event recorders; results and (when `events`
  // is shared) timelines are merged back in workload order, so reports are
  // independent of scheduling.  With jobs > 1 each merged experiment's
  // event wall clock restarts at that experiment's start.
  unsigned jobs = 1;
  // Overlap the two halves of one experiment: the measured run executes on
  // a second thread while this thread builds and runs the traced system.
  // All result fields and metrics are unchanged; only wall time shrinks.
  bool parallel_pair = false;
  // Batched parser→analysis reference delivery (the default; WRL_BATCH=0 in
  // the environment, or batch=false here, forces the per-ref std::function
  // path).  Every counter and predicted number is identical either way.
  bool batch = BatchRefsEnabled();
  // Pipelined trace transport: drained chunks flow through a bounded SPSC
  // ring to a consumer thread that runs the parser + analysis sink chain
  // (live mode) or the TraceLog packer (capture mode), so the traced
  // machine keeps simulating while each drain is consumed
  // (simulate ∥ parse ∥ analyze).  On the replay side the same option
  // enables chunk-parallel TraceLog decode.  Defaults to on when the host
  // has more than one hardware thread; WRL_PIPELINE=0 forces the
  // synchronous path and WRL_PIPELINE=1 forces the pipeline even on
  // single-core hosts.  Every counter, trace word, profile, and report
  // value is identical either way; the overlap itself is observable via
  // the trace.pipeline.* metrics, which exist only on pipelined runs.
  bool pipeline = PipelineEnabled();
  // Ring capacity in chunks (one chunk = one trace-buffer drain).
  size_t pipeline_depth = kDefaultPipelineDepth;
  // Capture-once / replay-many: capture the traced run's drained words into
  // a packed TraceLog and run the analysis as a post-run replay of the
  // capture instead of live during the traced run.  Bit-identical results;
  // implied by a non-empty replay_variants.
  bool capture_replay = false;
  // Extra analysis configurations replayed from the captured trace (each a
  // cheap replay, not another traced machine run).  Replays run serially
  // inside the experiment — RunSuite already parallelizes across workloads.
  std::vector<ReplayVariant> replay_variants;
  // Attribution profiling (src/prof): tee the reconstructed reference
  // stream into a TraceProfiler — live behind the parser, or as one more
  // replay config in capture mode — and return the finished Profile in
  // ExperimentResult::profile.  Bit-identical in every mode.
  bool profile = false;
  ProfileOptions profile_options;
  // Single-pass multi-configuration sweep (see SweepOptions above).
  SweepOptions sweep;
  // Tee the capture to a durable wrltrace/1 archive at this path
  // (trace/trace_archive.h): every drained chunk streams to disk as the
  // analysis consumes it, in every transport mode (live, pipelined,
  // capture-replay), so the on-disk chunk sequence is exactly the sequence
  // the analysis saw.  The archive is finalized (directory footer + fsync)
  // after the traced run drains; a crash mid-run leaves a recoverable
  // footerless archive.  Empty = no archive.
  std::string archive_path;
  // Extra identity metadata recorded into the archive alongside the
  // harness's own keys (workload, personality, clock_period, dilation,
  // trace_buf_bytes, scavenge, max_instructions) — e.g. a tool's workload
  // scale, so `wrltrace replay` can rebuild the capturing system.
  ArchiveMeta archive_meta;
  // Live progress heartbeat: RunSuite emits periodic stderr lines
  // (workloads done, refs/sec, sim.mips, ETA).  WRL_PROGRESS=1 in the
  // environment forces it on.  Reports are unaffected — the heartbeat
  // writes only to stderr.
  bool progress = false;
  uint32_t progress_interval_ms = 2000;
};

struct ExperimentResult {
  std::string workload;
  Personality personality = Personality::kUltrix;

  // Measured (uninstrumented run, hardware timer + kernel counters).
  uint64_t measured_cycles = 0;
  uint64_t measured_utlb = 0;
  uint64_t measured_idle_instructions = 0;
  uint64_t measured_tlbdropins = 0;
  uint64_t measured_user_instructions = 0;
  uint32_t exit_code = 0;

  // Predicted (trace-driven simulation).
  Prediction prediction;
  uint64_t traced_machine_instructions = 0;
  uint64_t trace_words = 0;
  uint64_t parser_errors = 0;
  uint64_t analysis_switches = 0;

  // Host wall microseconds spent inside the two simulated runs (builds and
  // analysis excluded) and the simulated instructions they retired — the
  // raw material for the report-level `sim.mips` throughput metric.  Wall
  // clock, hence deliberately *not* part of the per-workload metrics.
  uint64_t run_wall_us = 0;
  uint64_t simulated_instructions = 0;

  // Capture-once / replay-many outputs (capture mode only; empty/zero when
  // the analysis ran live).
  std::vector<ReplayVariantResult> replays;
  uint64_t trace_log_words = 0;
  uint64_t trace_log_bytes = 0;       // Stored (packed) bytes.
  double trace_compression = 0;       // raw_bytes / stored_bytes.
  // Fan-out throughput of the real replays (the sweep pass is excluded —
  // its throughput is sweep_mrefs_per_sec, counted per family point).
  double replay_mrefs_per_sec = 0;

  // Single-pass sweep outputs (sweep_ran only when SweepOptions::Active()).
  bool sweep_ran = false;
  SweepResult sweep;
  // Equivalent-replay throughput of the sweep pass: family points × refs
  // per wall-second of the one pass (capture mode only — live-mode sweeps
  // share the traced run's wall clock and report 0).
  double sweep_mrefs_per_sec = 0;

  // The attribution profile (empty unless ExperimentOptions::profile).
  Profile profile;

  // Full registry snapshot across both runs: `measured.*` and `traced.*`
  // system counters, `parser.*`, and `predicted.*` analysis counters.
  StatsSnapshot stats;
  // The experiment's phase timeline (empty when ExperimentOptions::events
  // supplied a shared recorder — the caller owns the events then).
  std::vector<TimelineEvent> timeline;

  double MeasuredSeconds(double hz) const { return static_cast<double>(measured_cycles) / hz; }
  double PredictedSeconds(double hz) const { return prediction.PredictedCycles() / hz; }
  // A degenerate prediction: the analysis produced no cycles for a workload
  // the hardware measurably ran — the error percentage is meaningless.
  bool DegeneratePrediction() const {
    return prediction.PredictedCycles() <= 0 && measured_cycles != 0;
  }
  double TimeErrorPercent() const {
    double predicted = prediction.PredictedCycles();
    if (measured_cycles == 0) {
      // No measured baseline to compare against: agreement is 0; a nonzero
      // prediction against a zero measurement has unbounded error.
      return predicted <= 0 ? 0 : std::numeric_limits<double>::infinity();
    }
    return 100.0 * (predicted - static_cast<double>(measured_cycles)) /
           static_cast<double>(measured_cycles);
  }
  // Human-readable warnings that must not pass silently: parser validation
  // errors and degenerate predictions.
  std::vector<std::string> Warnings() const;
};

// Runs one workload through both systems.
ExperimentResult RunExperiment(const WorkloadSpec& workload, const ExperimentOptions& options);

// Runs the full Table 2 / Table 3 suite for one personality.
std::vector<ExperimentResult> RunSuite(const std::vector<WorkloadSpec>& workloads,
                                       const ExperimentOptions& options);

}  // namespace wrl

#endif  // WRLTRACE_HARNESS_EXPERIMENT_H_
