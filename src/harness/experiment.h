// The validation experiments (paper §5): run each workload twice —
// uninstrumented on the timing machine (*measured*) and instrumented with
// the trace feeding the analysis program (*predicted*) — and compare.
//
//   Table 2 / Figure 3: execution times, measured vs predicted
//   Table 3:            user TLB miss counts, measured vs predicted
#ifndef WRLTRACE_HARNESS_EXPERIMENT_H_
#define WRLTRACE_HARNESS_EXPERIMENT_H_

#include <string>
#include <vector>

#include "kernel/system_build.h"
#include "sim/predictor.h"
#include "workloads/workloads.h"

namespace wrl {

struct ExperimentOptions {
  Personality personality = Personality::kUltrix;
  // Untraced clock period; the traced system runs it at 1/15th the rate
  // (paper §4.1).
  uint32_t clock_period = 200000;
  double dilation = 15.0;
  uint32_t trace_buf_bytes = 16u << 20;
  uint64_t max_instructions = 3'000'000'000;
  // Simulated clock frequency used only to render cycles as seconds.
  double clock_hz = 25e6;
};

struct ExperimentResult {
  std::string workload;
  Personality personality = Personality::kUltrix;

  // Measured (uninstrumented run, hardware timer + kernel counters).
  uint64_t measured_cycles = 0;
  uint64_t measured_utlb = 0;
  uint64_t measured_idle_instructions = 0;
  uint64_t measured_tlbdropins = 0;
  uint64_t measured_user_instructions = 0;
  uint32_t exit_code = 0;

  // Predicted (trace-driven simulation).
  Prediction prediction;
  uint64_t traced_machine_instructions = 0;
  uint64_t trace_words = 0;
  uint64_t parser_errors = 0;
  uint64_t analysis_switches = 0;

  double MeasuredSeconds(double hz) const { return static_cast<double>(measured_cycles) / hz; }
  double PredictedSeconds(double hz) const { return prediction.PredictedCycles() / hz; }
  double TimeErrorPercent() const {
    if (measured_cycles == 0) {
      return 0;
    }
    return 100.0 * (prediction.PredictedCycles() - static_cast<double>(measured_cycles)) /
           static_cast<double>(measured_cycles);
  }
};

// Runs one workload through both systems.
ExperimentResult RunExperiment(const WorkloadSpec& workload, const ExperimentOptions& options);

// Runs the full Table 2 / Table 3 suite for one personality.
std::vector<ExperimentResult> RunSuite(const std::vector<WorkloadSpec>& workloads,
                                       const ExperimentOptions& options);

}  // namespace wrl

#endif  // WRLTRACE_HARNESS_EXPERIMENT_H_
