#include "harness/bare_runtime.h"

#include "asm/assembler.h"
#include "support/error.h"
#include "support/strings.h"
#include "trace/abi.h"
#include "trace/support_asm.h"

namespace wrl {
namespace {

// Registers both runtimes clear before calling main, so the two runs enter
// the body with identical architectural state.
const char* kClearRegs = R"(
        move $v0, $zero
        move $v1, $zero
        move $a0, $zero
        move $a1, $zero
        move $a2, $zero
        move $a3, $zero
        move $t0, $zero
        move $t1, $zero
        move $t2, $zero
        move $t3, $zero
        move $t4, $zero
        move $t5, $zero
        move $t6, $zero
        move $t7, $zero
        move $t8, $zero
        move $t9, $zero
        move $s0, $zero
        move $s1, $zero
        move $s2, $zero
        move $s3, $zero
        move $s4, $zero
        move $s5, $zero
        move $s6, $zero
        move $s7, $zero
        move $gp, $zero
        move $fp, $zero
)";

// Exception vectors shared by both runtimes: the bare environment expects
// no exceptions, so anything that fires halts with a recognizable code.
const char* kVectors = R"(
        .text
utlb_vec:
        li   $k0, 0xbfd00004
        li   $k1, 0xdeae
        sw   $k1, 0($k0)
        nop
        .align 128
gen_vec:
        li   $k0, 0xbfd00004
        li   $k1, 0xdead
        sw   $k1, 0($k0)
        nop
        .align 512
)";

std::string PlainRuntimeAsm() {
  std::string out = kVectors;
  out += R"(
        .globl _start
_start:
        li   $sp, 0x80f00000
)";
  out += kClearRegs;
  out += R"(
        jal  main
        nop
        li   $t9, 0xbfd00004
        sw   $zero, 0($t9)       # halt(0)
        nop
)";
  return out;
}

// The bare tracing state lives at fixed kseg0 addresses so that the
// instrumented link contributes no .data/.bss of its own — the body's data
// and bss must land at the same virtual addresses as in the original link
// (data addresses in the trace are compared verbatim).
constexpr uint32_t kBareBkAddr = 0x81000000;            // Bookkeeping area.
constexpr uint32_t kBareEndPtrAddr = kBareBkAddr + 0x100;  // Final-pointer slot.
constexpr uint32_t kBareBufferAddr = 0x81010000;        // Trace buffer.

std::string TracedRuntimeAsm(uint32_t buffer_bytes) {
  std::string out = kVectors;
  out += R"(
        .globl _start
_start:
        li   $sp, 0x80f00000
)";
  out += kClearRegs;
  out += StrFormat(R"(
        # Tracing state: xreg3 = bookkeeping, xreg1 = buffer pointer,
        # LIMIT leaves slack so the final block always fits.
        la   $t7, bk_area
        la   $t8, trace_buffer
        sw   $t8, %u($t7)        # BUF_START
)",
                   kBkBufStart);
  // LIMIT = buffer + (buffer_bytes - slack); the displacement exceeds an
  // addiu immediate, so materialize it with li + addu.
  out += StrFormat(R"(
        la   $t9, trace_buffer
        li   $at, %u
        addu $t9, $t9, $at
        sw   $t9, %u($t7)        # LIMIT
        move $t9, $zero
        jal  main
        nop
        la   $t9, trace_end_ptr
        sw   $t8, 0($t9)
        li   $t9, 0xbfd00004
        sw   $zero, 0($t9)       # halt(0)
        nop
)",
                   buffer_bytes - kTraceSlackBytes, kBkLimit);
  return out;
}

// Appends the absolute symbols the tracing runtime and epoxie-generated
// code resolve against.
void AddBareAbsSymbols(ObjectFile& obj) {
  for (const auto& [name, addr] : std::initializer_list<std::pair<const char*, uint32_t>>{
           {"bk_area", kBareBkAddr},
           {"trace_buffer", kBareBufferAddr},
           {"trace_end_ptr", kBareEndPtrAddr}}) {
    Symbol s;
    s.name = name;
    s.value = addr;
    s.section = SectionId::kAbs;
    s.global = true;
    obj.symbols.push_back(std::move(s));
  }
}

constexpr uint32_t kBareTextBase = kKseg0;           // Vectors live at the base.
constexpr uint32_t kBareDataBase = kKseg0 + 0x00800000;  // Same for both links.

Executable LinkBare(const std::vector<ObjectFile>& objects) {
  LinkOptions options;
  options.text_base = kBareTextBase;
  options.fixed_data_base = kBareDataBase;
  return Link(objects, options);
}

std::unique_ptr<Machine> BootBare(const Executable& exe) {
  MachineConfig config;
  auto machine = std::make_unique<Machine>(config);
  machine->LoadImage(exe, [](uint32_t vaddr) { return vaddr - kKseg0; });
  machine->SetPc(exe.entry);
  return machine;
}

}  // namespace

BareBuild BuildBareTraced(std::string_view body_source, const BareBuildOptions& options) {
  BareBuild build;
  ObjectFile body = Assemble("body.s", body_source);

  // Original image: plain runtime + body.
  ObjectFile plain_runtime = Assemble("runtime.s", PlainRuntimeAsm());
  build.original = LinkBare({plain_runtime, body});
  build.body_text_begin = build.original.object_text_bases[1];
  build.body_text_end = build.body_text_begin + static_cast<uint32_t>(body.text.size());

  // Instrumented image: tracing runtime + support + epoxie(body).
  EpoxieConfig epoxie_config;
  epoxie_config.mode = options.mode;
  epoxie_config.scavenge = options.scavenge;
  build.instrument_result = Instrument(body, epoxie_config);
  ObjectFile traced_runtime = Assemble("truntime.s", TracedRuntimeAsm(options.trace_buffer_bytes));
  AddBareAbsSymbols(traced_runtime);
  ObjectFile support = Assemble("support.s", TraceSupportAsm());
  build.instrumented = LinkBare({traced_runtime, support, build.instrument_result.object});

  build.table.AddObject(build.instrument_result.blocks, build.instrumented.object_text_bases[2],
                        build.body_text_begin);
  return build;
}

BareTraceRun RunBareTraced(const BareBuild& build, uint64_t max_instructions) {
  auto machine = BootBare(build.instrumented);
  BareTraceRun result;
  result.run = machine->Run(max_instructions);
  if (!result.run.halted || machine->halt_code() != 0) {
    throw Error(StrFormat("bare traced run failed: halted=%d code=0x%x pc=0x%08x",
                          result.run.halted ? 1 : 0, machine->halt_code(), machine->pc()));
  }
  uint32_t buf = kBareBufferAddr;
  uint32_t end = machine->PhysRead32(kBareEndPtrAddr - kKseg0);
  WRL_CHECK_MSG(end >= buf && (end - buf) % 4 == 0, "corrupt trace pointer");
  result.trace_words.reserve((end - buf) / 4);
  for (uint32_t addr = buf; addr < end; addr += 4) {
    result.trace_words.push_back(machine->PhysRead32(addr - kKseg0));
  }
  result.console_output = machine->console().output();
  return result;
}

RunResult RunBareOriginal(const BareBuild& build, uint64_t max_instructions) {
  auto machine = BootBare(build.original);
  RunResult run = machine->Run(max_instructions);
  if (!run.halted || machine->halt_code() != 0) {
    throw Error(StrFormat("bare original run failed: halted=%d code=0x%x pc=0x%08x",
                          run.halted ? 1 : 0, machine->halt_code(), machine->pc()));
  }
  return run;
}

std::vector<RefEvent> RunBareReference(const BareBuild& build, uint64_t max_instructions) {
  auto machine = BootBare(build.original);
  std::vector<RefEvent> events;
  uint32_t begin = build.body_text_begin;
  uint32_t end = build.body_text_end;
  machine->set_trace_hook([&](const RefEvent& e) {
    if (e.pc >= begin && e.pc < end) {
      events.push_back(e);
    }
  });
  RunResult run = machine->Run(max_instructions);
  if (!run.halted || machine->halt_code() != 0) {
    throw Error(StrFormat("bare reference run failed: halted=%d code=0x%x pc=0x%08x",
                          run.halted ? 1 : 0, machine->halt_code(), machine->pc()));
  }
  return events;
}

BareComparison CompareBareTrace(const BareBuild& build, uint64_t max_instructions) {
  BareComparison cmp;
  cmp.reference = RunBareReference(build, max_instructions);
  BareTraceRun traced = RunBareTraced(build, max_instructions);
  TraceParser parser(&build.table);
  parser.SetInitialContext(kKernelPid);
  parser.SetRefSink([&](const TraceRef& ref) { cmp.parsed.push_back(ref); });
  parser.Feed(traced.trace_words);
  parser.Finish();
  cmp.parser_stats = parser.stats();
  cmp.parser_errors = parser.errors();
  return cmp;
}

}  // namespace wrl
