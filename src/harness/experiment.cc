#include "harness/experiment.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <thread>

#include "harness/replay_engine.h"
#include "support/error.h"
#include "support/strings.h"
#include "trace/parser.h"

namespace wrl {
namespace {

uint64_t WallNowUs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

bool IsPow2(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

// A variant the sweep engine can price exactly: only the (power-of-two)
// cache geometry differs from the primary configuration.  Anything that
// perturbs the reference stream or the non-cache timing — TLB wiring,
// page-map draws, miss penalties, write-buffer shape — needs a real replay.
bool GeometryOnly(const ReplayVariant& v, const PredictorConfig& primary) {
  const MemSysConfig& base = primary.memsys;
  return v.tlb_wired == primary.tlb_wired && v.page_map_mult == 0 &&
         v.memsys.read_miss_penalty == base.read_miss_penalty &&
         v.memsys.uncached_penalty == base.uncached_penalty &&
         v.memsys.wb_depth == base.wb_depth &&
         v.memsys.wb_cycles_per_entry == base.wb_cycles_per_entry &&
         IsPow2(v.memsys.icache.line_bytes) && IsPow2(v.memsys.icache.size_bytes) &&
         IsPow2(v.memsys.dcache.line_bytes) && IsPow2(v.memsys.dcache.size_bytes) &&
         v.memsys.icache.size_bytes >= v.memsys.icache.line_bytes &&
         v.memsys.dcache.size_bytes >= v.memsys.dcache.line_bytes;
}

// Extends `families` so the family at `line` covers `size` (the forest
// prices every power-of-two size in the range anyway).
void CoverFamilyPoint(std::vector<CacheFamilySpec>& families, uint32_t line, uint32_t size) {
  for (CacheFamilySpec& family : families) {
    if (family.line_bytes == line) {
      family.min_size_bytes = std::min(family.min_size_bytes, size);
      family.max_size_bytes = std::max(family.max_size_bytes, size);
      return;
    }
  }
  families.push_back({line, size, size});
}

// Non-owning pass-through, so a stack-allocated analysis chain can serve as
// a ReplayEngine config (which wants to own its sinks).
class BorrowedSink : public RefBatchSink {
 public:
  explicit BorrowedSink(RefBatchSink* target) : target_(target) {}
  void OnRefBatch(const TraceRef* refs, size_t count) override {
    target_->OnRefBatch(refs, count);
  }

 private:
  RefBatchSink* target_;
};

// Live progress heartbeat (stderr only, so reports are untouched): a
// monitor thread prints workloads done, aggregate parse throughput, the
// suite-so-far sim.mips, and a naive ETA every interval.  Workers feed it
// through atomics; enabled by ExperimentOptions::progress or WRL_PROGRESS=1.
class ProgressMeter {
 public:
  ProgressMeter(bool enabled, size_t total, uint32_t interval_ms) : total_(total) {
    const char* env = std::getenv("WRL_PROGRESS");
    enabled_ = (enabled || (env != nullptr && std::strcmp(env, "0") != 0)) && total_ > 0;
    if (!enabled_) {
      return;
    }
    start_us_ = WallNowUs();
    monitor_ = std::thread([this, interval_ms] {
      std::unique_lock<std::mutex> lock(mutex_);
      while (!stop_) {
        cv_.wait_for(lock, std::chrono::milliseconds(interval_ms == 0 ? 1000 : interval_ms));
        if (stop_) {
          break;
        }
        Emit();
      }
    });
  }

  ~ProgressMeter() {
    if (!monitor_.joinable()) {
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    monitor_.join();
    Emit();  // Final line, so even sub-interval suites report once.
  }

  void OnDone(const ExperimentResult& result) {
    if (!enabled_) {
      return;
    }
    done_.fetch_add(1);
    if (result.stats.Has("parser.refs")) {
      refs_.fetch_add(result.stats.CounterValue("parser.refs"));
    }
    sim_insts_.fetch_add(result.simulated_instructions);
    run_wall_us_.fetch_add(result.run_wall_us);
    if (result.sweep_ran) {
      // Sweep passes are reported on their own — one pass prices many
      // family points, so folding them into the replay/ref totals would
      // misstate both.
      sweep_passes_.fetch_add(1);
      sweep_points_.fetch_add(result.sweep.family_points);
      sweep_point_refs_.fetch_add(result.sweep.family_points * result.sweep.refs);
      sweep_wall_us_.fetch_add(result.sweep.wall_us);
    }
  }

 private:
  void Emit() const {
    uint64_t done = done_.load();
    uint64_t elapsed_us = WallNowUs() - start_us_;
    double elapsed_s = static_cast<double>(elapsed_us) * 1e-6;
    double mrefs =
        elapsed_s > 0 ? static_cast<double>(refs_.load()) / elapsed_s / 1e6 : 0.0;
    uint64_t wall = run_wall_us_.load();
    double mips =
        wall > 0 ? static_cast<double>(sim_insts_.load()) / static_cast<double>(wall) : 0.0;
    char eta[32];
    if (done == 0 || done >= total_) {
      std::snprintf(eta, sizeof eta, "--");
    } else {
      double eta_s = elapsed_s * static_cast<double>(total_ - done) / static_cast<double>(done);
      std::snprintf(eta, sizeof eta, "%.0fs", eta_s);
    }
    char sweep[64];
    uint64_t passes = sweep_passes_.load();
    if (passes == 0) {
      sweep[0] = '\0';
    } else {
      // Per-family-point throughput: the equivalent replay rate the sweep
      // passes delivered (points × refs per second of sweep wall time).
      uint64_t sweep_wall = sweep_wall_us_.load();
      double point_mrefs =
          sweep_wall > 0
              ? static_cast<double>(sweep_point_refs_.load()) / static_cast<double>(sweep_wall)
              : 0.0;
      std::snprintf(sweep, sizeof sweep, " | sweep %llu pass(es), %llu pts @ %.0f Mrefs/s",
                    static_cast<unsigned long long>(passes),
                    static_cast<unsigned long long>(sweep_points_.load()), point_mrefs);
    }
    std::fprintf(stderr, "[wrl] %llu/%zu workloads | %.1f Mrefs/s | sim %.1f mips%s | eta %s\n",
                 static_cast<unsigned long long>(done), total_, mrefs, mips, sweep, eta);
  }

  size_t total_;
  bool enabled_ = false;
  uint64_t start_us_ = 0;
  std::atomic<uint64_t> done_{0};
  std::atomic<uint64_t> refs_{0};
  std::atomic<uint64_t> sim_insts_{0};
  std::atomic<uint64_t> run_wall_us_{0};
  std::atomic<uint64_t> sweep_passes_{0};
  std::atomic<uint64_t> sweep_points_{0};
  std::atomic<uint64_t> sweep_point_refs_{0};
  std::atomic<uint64_t> sweep_wall_us_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread monitor_;
};

SystemConfig MakeConfig(const WorkloadSpec& workload, const ExperimentOptions& options,
                        bool tracing, EventRecorder* events) {
  SystemConfig config;
  config.personality = options.personality;
  config.tracing = tracing;
  config.clock_period = tracing
                            ? options.clock_period * static_cast<uint32_t>(options.dilation)
                            : options.clock_period;
  config.program_source = workload.source;
  config.program_name = workload.name;
  config.files = workload.files;
  config.trace_buf_bytes = options.trace_buf_bytes;
  config.scavenge = options.scavenge;
  config.events = events;
  if (options.personality == Personality::kMach) {
    config.policy = PagePolicy::kScrambled;
    config.policy_mult = 9;
  }
  return config;
}

}  // namespace

const char* PersonalityName(Personality personality) {
  return personality == Personality::kUltrix ? "ultrix" : "mach";
}

Personality PersonalityFromName(const std::string& name) {
  if (name == "ultrix") {
    return Personality::kUltrix;
  }
  if (name == "mach") {
    return Personality::kMach;
  }
  throw Error("unknown personality '" + name + "' (expected 'ultrix' or 'mach')");
}

std::vector<std::string> ExperimentResult::Warnings() const {
  std::vector<std::string> warnings;
  if (parser_errors > 0) {
    warnings.push_back(StrFormat(
        "WARNING: '%s' had %llu trace parser validation error(s) — the "
        "reconstructed reference stream (and every prediction from it) is suspect",
        workload.c_str(), static_cast<unsigned long long>(parser_errors)));
  }
  if (DegeneratePrediction()) {
    warnings.push_back(StrFormat(
        "WARNING: '%s' prediction is degenerate: predicted 0 cycles against "
        "%llu measured — the trace produced no usable references",
        workload.c_str(), static_cast<unsigned long long>(measured_cycles)));
  }
  return warnings;
}

ExperimentResult RunExperiment(const WorkloadSpec& workload, const ExperimentOptions& options) {
  ExperimentResult result;
  result.workload = workload.name;
  result.personality = options.personality;

  // Timeline: a private recorder unless the caller shares one for the suite.
  // The experiment phase is opened/closed manually so the completed event is
  // harvestable into result.timeline; a thrown Error abandons the recorder.
  EventRecorder local_events;
  EventRecorder* events = options.events != nullptr ? options.events : &local_events;
  events->Begin("experiment:" + workload.name, "experiment");

  // ---- Measured: the uninstrumented system with the hardware timer ----
  // Built on this thread either way: the traced side only needs the
  // measured *build* outputs (page layouts, original binaries), all of
  // which are immutable once BuildSystem returns, so with parallel_pair
  // the measured *run* can overlap the whole traced half on a helper
  // thread.
  std::unique_ptr<SystemInstance> measured;
  {
    EventRecorder::Scope scope(events, "build.measured", "build");
    measured = BuildSystem(MakeConfig(workload, options, false, events));
  }
  auto [idle_lo, idle_hi] = measured->IdleRange();
  measured->machine().SetIdleRange(idle_lo, idle_hi);

  uint64_t measured_run_wall_us = 0;
  uint64_t traced_run_wall_us = 0;
  // Runs the measured system and fills the measured-side result fields.
  // `ev` is this side's recorder: the shared one when serial, a private
  // one when the pair is overlapped (merged back below).
  auto run_measured = [&](EventRecorder* ev) {
    ev->SetCycleSource([machine = &measured->machine()] { return machine->cycles(); });
    RunResult mr;
    uint64_t wall0 = WallNowUs();
    {
      EventRecorder::Scope scope(ev, "run.measured", "run");
      mr = measured->Run(options.max_instructions);
    }
    measured_run_wall_us = WallNowUs() - wall0;
    if (!mr.halted) {
      throw Error(StrFormat("measured run of '%s' did not halt (pc=0x%08x)",
                            workload.name.c_str(), measured->machine().pc()));
    }
    result.measured_cycles = measured->ProcessCycles(1);
    result.measured_utlb = measured->UtlbMissCount();
    result.measured_idle_instructions = measured->machine().idle_instructions();
    result.measured_tlbdropins = measured->TlbDropins();
    result.measured_user_instructions = measured->machine().user_instructions();
    result.exit_code = measured->ProcessExitCode(1);
  };

  EventRecorder measured_events;
  uint64_t measured_epoch_us = 0;
  std::exception_ptr measured_exc;
  std::thread measured_thread;
  if (options.parallel_pair) {
    measured_epoch_us = events->ElapsedUs();
    measured_thread = std::thread([&] {
      try {
        run_measured(&measured_events);
      } catch (...) {
        measured_exc = std::current_exception();
      }
    });
  } else {
    run_measured(events);
  }

  // ---- Predicted: the traced system driving the analysis program ----
  // Two analysis modes, bit-identical by construction:
  //   * live (default): the parser consumes each drain during the traced
  //     run and feeds the simulator in batches (or per-ref when
  //     options.batch is off);
  //   * capture-replay: the drains are captured into a packed TraceLog and
  //     the analysis — primary config plus every ReplayVariant — replays
  //     the capture after the run (one parse, K cheap replays).
  std::unique_ptr<SystemInstance> traced;
  std::unique_ptr<TraceParser> parser;
  TraceLog trace_log;
  std::unique_ptr<ReplayEngine> engine;
  std::unique_ptr<TraceProfiler> profiler;
  std::unique_ptr<TeeBatchSink> tee;
  if (options.profile) {
    profiler = std::make_unique<TraceProfiler>(options.profile_options);
  }
  PredictorConfig pconfig;
  pconfig.dilation = options.dilation;
  // Page mapping (paper §4.2): the simulator implements the policy.  Under
  // the deterministic policy this reproduces the measured run's map; under
  // Mach's random policy it is *a* mapping with the right distribution but
  // different draws — the repeatability problem the paper reports.
  if (options.personality == Personality::kMach) {
    pconfig.page_map = measured->PageMap(13);  // Different permutation draw.
  } else {
    pconfig.page_map = measured->PageMap();
  }
  TraceDrivenSimulator simulator(pconfig);

  // Partition the replay variants: with the sweep active, geometry-only
  // variants are priced by the single-pass sweep engine; the rest fan out
  // to real replays.  The sweep engine's families are widened to cover
  // every absorbed geometry, and its construction rejects non-power-of-two
  // family specs with a diagnostic naming the offending size.
  const bool sweep_active = options.sweep.Active();
  std::vector<ReplayVariant> replayed_variants;
  std::vector<bool> variant_swept(options.replay_variants.size(), false);
  std::unique_ptr<SweepEngine> sweep_engine;
  if (sweep_active) {
    SweepConfig sweep_config;
    sweep_config.base = pconfig.memsys;
    sweep_config.page_map = pconfig.page_map;
    sweep_config.tlb_wired = pconfig.tlb_wired;
    sweep_config.icache = options.sweep.icache;
    sweep_config.dcache = options.sweep.dcache;
    sweep_config.tlb_max_entries = options.sweep.tlb_max_entries;
    for (size_t i = 0; i < options.replay_variants.size(); ++i) {
      const ReplayVariant& v = options.replay_variants[i];
      if (GeometryOnly(v, pconfig)) {
        variant_swept[i] = true;
        CoverFamilyPoint(sweep_config.icache, v.memsys.icache.line_bytes,
                         v.memsys.icache.size_bytes);
        CoverFamilyPoint(sweep_config.dcache, v.memsys.dcache.line_bytes,
                         v.memsys.dcache.size_bytes);
      } else {
        replayed_variants.push_back(v);
      }
    }
    sweep_engine = std::make_unique<SweepEngine>(sweep_config);
  } else {
    replayed_variants = options.replay_variants;
  }
  // Capture only when something actually replays: when the sweep absorbs
  // every variant the analysis (and the sweep with it) can stay live.
  const bool capture = options.capture_replay || !replayed_variants.empty();
  // Durable capture tee (ExperimentOptions::archive_path): rides the chunk
  // consumer in every transport mode.  Declared before the pipeline so
  // unwinding joins the consumer thread before the writer is destroyed.
  std::unique_ptr<ArchiveWriter> archive;
  // Pipelined transport state.  Declared after every component the consumer
  // thread touches (parser, simulator, profiler, tee, trace_log, archive),
  // so stack unwinding joins the consumer before any of them is destroyed.
  // In pipelined live mode the parser runs on the consumer thread, so it
  // records its Feed phases into a private recorder (no cycle source — the
  // traced machine's cycle counter belongs to the producer thread) that is
  // absorbed into the shared timeline after the pipeline drains.
  std::unique_ptr<EventRecorder> consumer_events;
  uint64_t consumer_epoch_us = 0;
  std::unique_ptr<TracePipeline> pipeline;
  std::exception_ptr traced_exc;
  // Outcomes of the real (non-swept) replays, merged back into
  // result.replays in the caller's variant order after the primary
  // prediction is finalized.
  std::vector<ReplayVariantResult> replay_results;
  uint64_t sweep_outcome_wall_us = 0;
  try {
    // Original binaries, for the pixie-style arithmetic-stall estimate.
    simulator.AddTextImage(measured->kernel_exe());
    simulator.AddTextImage(measured->workload_orig());

    {
      EventRecorder::Scope scope(events, "build.traced", "build");
      traced = BuildSystem(MakeConfig(workload, options, true, events));
    }

    if (profiler != nullptr) {
      // Same tables the parser resolves keys against; symbols from the
      // original images (the address space the reconstructed refs live in).
      profiler->AddTable(kKernelPid, &traced->kernel_table());
      profiler->AddTable(1, &traced->user_table());
      profiler->AddSymbols(kKernelPid, traced->kernel_orig());
      profiler->AddSymbols(1, measured->workload_orig());
      profiler->SetSpaceName(1, workload.name);
      if (options.personality == Personality::kMach) {
        profiler->AddTable(2, &traced->server_table());
        profiler->AddSymbols(2, traced->server_orig());
        profiler->SetSpaceName(2, "server");
      }
    }

    // The chunk consumer: the TraceLog packer (capture mode) or the parser
    // feeding the analysis chain (live mode).  Synchronously it runs inside
    // each drain; pipelined it runs on the consumer thread while the
    // machine simulates ahead.  Either way it sees the identical chunk
    // sequence and boundaries, so every output is bit-identical.
    std::function<void(const uint32_t*, size_t)> consume;
    if (capture) {
      consume = [&trace_log](const uint32_t* words, size_t count) {
        trace_log.Append(words, count);
      };
    } else {
      parser = std::make_unique<TraceParser>(&traced->kernel_table());
      parser->SetUserTable(1, &traced->user_table());
      if (options.personality == Personality::kMach) {
        parser->SetUserTable(2, &traced->server_table());
      }
      parser->SetInitialContext(kKernelPid);
      std::vector<RefBatchSink*> live_sinks{&simulator};
      if (profiler != nullptr) {
        live_sinks.push_back(profiler.get());
      }
      if (sweep_engine != nullptr) {
        live_sinks.push_back(sweep_engine.get());
      }
      if (options.batch) {
        if (live_sinks.size() > 1) {
          tee = std::make_unique<TeeBatchSink>(live_sinks);
          parser->SetBatchSink(tee.get());
        } else {
          parser->SetBatchSink(&simulator);
        }
      } else if (live_sinks.size() > 1) {
        parser->SetRefSink([&simulator, prof = profiler.get(),
                            sweep = sweep_engine.get()](const TraceRef& ref) {
          simulator.OnRef(ref);
          if (prof != nullptr) {
            prof->OnRef(ref);
          }
          if (sweep != nullptr) {
            sweep->OnRef(ref);
          }
        });
      } else {
        parser->SetRefSink([&simulator](const TraceRef& ref) { simulator.OnRef(ref); });
      }
      if (options.pipeline) {
        consumer_events = std::make_unique<EventRecorder>();
        consumer_epoch_us = events->ElapsedUs();
        parser->SetEventRecorder(consumer_events.get());
      } else {
        parser->SetEventRecorder(events);
      }
      consume = [&parser](const uint32_t* words, size_t count) { parser->Feed(words, count); };
    }
    if (!options.archive_path.empty()) {
      // Harness identity keys first, caller extras after; MetaValue returns
      // the first match, so the harness's own identity is authoritative.
      ArchiveMeta meta;
      meta.emplace_back("workload", workload.name);
      meta.emplace_back("personality", PersonalityName(options.personality));
      meta.emplace_back("clock_period", std::to_string(options.clock_period));
      meta.emplace_back("dilation", StrFormat("%.17g", options.dilation));
      meta.emplace_back("trace_buf_bytes", std::to_string(options.trace_buf_bytes));
      meta.emplace_back("scavenge", options.scavenge ? "1" : "0");
      meta.emplace_back("max_instructions", std::to_string(options.max_instructions));
      meta.insert(meta.end(), options.archive_meta.begin(), options.archive_meta.end());
      archive = std::make_unique<ArchiveWriter>(options.archive_path, meta);
      consume = [w = archive.get(),
                 inner = std::move(consume)](const uint32_t* words, size_t count) {
        w->Append(words, count);
        inner(words, count);
      };
    }
    if (options.pipeline) {
      pipeline = std::make_unique<TracePipeline>(std::move(consume), options.pipeline_depth);
      traced->SetTraceSink([p = pipeline.get()](const uint32_t* words, size_t count) {
        p->Produce(words, count);
      });
    } else {
      traced->SetTraceSink(std::move(consume));
    }

    events->SetCycleSource([machine = &traced->machine()] { return machine->cycles(); });
    RunResult tr;
    uint64_t wall0 = WallNowUs();
    {
      EventRecorder::Scope scope(events, "run.traced", "run");
      tr = traced->Run(options.max_instructions);
    }
    traced_run_wall_us = WallNowUs() - wall0;
    if (!tr.halted) {
      throw Error(StrFormat("traced run of '%s' did not halt (pc=0x%08x)", workload.name.c_str(),
                            traced->machine().pc()));
    }
    if (pipeline != nullptr) {
      // Drain the ring and join the consumer; rethrows anything the
      // parser/sink chain threw mid-stream.
      pipeline->Finish();
    }
    if (archive != nullptr) {
      // Every chunk is on disk; seal the directory footer.  A crash before
      // this point leaves a footerless archive the reader recovers by scan.
      archive->Finalize();
    }
    if (capture) {
      // Parse the capture once; fan the batch stream out to the primary
      // analysis chain and every variant.  Variants are cheap replays of
      // the same materialized stream, not traced machine runs.
      ReplaySource source;
      source.log = &trace_log;
      source.kernel_table = &traced->kernel_table();
      source.user_tables.emplace_back(1, &traced->user_table());
      if (options.personality == Personality::kMach) {
        source.user_tables.emplace_back(2, &traced->server_table());
      }
      engine = std::make_unique<ReplayEngine>(std::move(source));
      std::vector<ReplayEngine::Config> configs;
      configs.push_back({"primary", [&simulator] {
                           return std::make_unique<BorrowedSink>(&simulator);
                         }});
      if (profiler != nullptr) {
        // The profiler rides the fan-out as one more cheap replay of the
        // materialized stream — appended first so variant harvesting below
        // can skip it by name-independent position.
        configs.push_back({"profile", [prof = profiler.get()] {
                             return std::make_unique<BorrowedSink>(prof);
                           }});
      }
      if (sweep_engine != nullptr) {
        // The whole family rides the fan-out as ONE extra pass over the
        // materialized stream, whatever the family's size.
        configs.push_back({"sweep", [sweep = sweep_engine.get()] {
                             return std::make_unique<BorrowedSink>(sweep);
                           }});
      }
      const size_t variant_begin =
          1 + (profiler != nullptr ? 1 : 0) + (sweep_engine != nullptr ? 1 : 0);
      for (const ReplayVariant& variant : replayed_variants) {
        PredictorConfig vconfig = pconfig;
        vconfig.memsys = variant.memsys;
        vconfig.tlb_wired = variant.tlb_wired;
        if (variant.page_map_mult != 0) {
          vconfig.page_map = measured->PageMap(variant.page_map_mult);
        }
        configs.push_back({variant.name, [vconfig, &measured] {
                             auto sim = std::make_unique<TraceDrivenSimulator>(vconfig);
                             sim->AddTextImage(measured->kernel_exe());
                             sim->AddTextImage(measured->workload_orig());
                             return sim;
                           }});
      }
      ReplayEngine::Options ropts;
      ropts.batch = options.batch;
      ropts.decode_workers = options.pipeline ? PipelineDecodeWorkers() : 1;
      ropts.events = events;
      {
        EventRecorder::Scope scope(events, "replay:" + workload.name, "analysis");
        std::vector<ReplayEngine::Outcome> outcomes = engine->Run(configs, ropts);
        const size_t sweep_idx =
            sweep_engine != nullptr ? 1 + (profiler != nullptr ? 1 : 0) : outcomes.size();
        if (sweep_idx < outcomes.size()) {
          sweep_outcome_wall_us = outcomes[sweep_idx].wall_us;
        }
        for (size_t i = variant_begin; i < outcomes.size(); ++i) {
          auto* sim = static_cast<TraceDrivenSimulator*>(outcomes[i].sink.get());
          ReplayVariantResult vr;
          vr.name = outcomes[i].name;
          vr.prediction = sim->Finish();
          vr.tlb = sim->tlb().stats();
          vr.refs = outcomes[i].refs;
          vr.wall_us = outcomes[i].wall_us;
          replay_results.push_back(std::move(vr));
        }
        if (sweep_engine != nullptr) {
          // The replay throughput metric counts only real replays: the
          // sweep pass's equivalent-replay rate is sweep_mrefs_per_sec.
          uint64_t replay_refs = 0;
          uint64_t replay_wall_us = 0;
          for (size_t i = 0; i < outcomes.size(); ++i) {
            if (i == sweep_idx) {
              continue;
            }
            replay_refs += outcomes[i].refs;
            replay_wall_us += outcomes[i].wall_us;
          }
          result.replay_mrefs_per_sec =
              replay_wall_us > 0
                  ? static_cast<double>(replay_refs) / static_cast<double>(replay_wall_us)
                  : 0.0;
        } else {
          result.replay_mrefs_per_sec = engine->mrefs_per_sec();
        }
      }
      result.parser_errors = engine->parser_stats().validation_errors;
      result.trace_log_words = trace_log.words();
      result.trace_log_bytes = trace_log.stored_bytes();
      result.trace_compression = trace_log.CompressionRatio();
    } else {
      parser->Finish();
      result.parser_errors = parser->stats().validation_errors;
    }
    if (profiler != nullptr) {
      result.profile = profiler->Finish();
    }
    result.prediction = simulator.Finish();
    if (sweep_engine != nullptr) {
      result.sweep = sweep_engine->Finish();
      result.sweep.wall_us = sweep_outcome_wall_us;
      result.sweep_ran = true;
      if (sweep_outcome_wall_us > 0) {
        // Equivalent-replay throughput: one pass priced `family_points`
        // configurations of `refs` references each.
        result.sweep_mrefs_per_sec =
            static_cast<double>(result.sweep.family_points) *
            static_cast<double>(result.sweep.refs) / static_cast<double>(sweep_outcome_wall_us);
      }
    }
    // Merge the variant results back in the caller's order: swept variants
    // carry exact miss counts from the shared pass and derived timing,
    // replayed ones their own simulator's numbers.
    size_t replayed_idx = 0;
    for (size_t i = 0; i < options.replay_variants.size(); ++i) {
      const ReplayVariant& v = options.replay_variants[i];
      if (variant_swept[i]) {
        ReplayVariantResult vr;
        vr.name = v.name;
        vr.prediction = sweep_engine->DerivePrediction(result.prediction, v.memsys);
        vr.tlb = sweep_engine->tlb_stats();
        vr.refs = result.sweep.refs;
        vr.swept = true;
        result.replays.push_back(std::move(vr));
      } else {
        result.replays.push_back(std::move(replay_results[replayed_idx++]));
      }
    }
    result.traced_machine_instructions = traced->machine().instructions();
    result.trace_words = traced->trace_words_drained();
    result.analysis_switches = traced->AnalysisSwitches();
  } catch (...) {
    traced_exc = std::current_exception();
  }
  if (measured_thread.joinable()) {
    measured_thread.join();
  }
  if (measured_exc != nullptr) {
    std::rethrow_exception(measured_exc);
  }
  if (traced_exc != nullptr) {
    std::rethrow_exception(traced_exc);
  }

  if (traced->ProcessExitCode(1) != result.exit_code) {
    throw Error(StrFormat("'%s': traced exit code %u != measured %u — tracing distorted behavior",
                          workload.name.c_str(), traced->ProcessExitCode(1), result.exit_code));
  }
  result.run_wall_us = measured_run_wall_us + traced_run_wall_us;
  result.simulated_instructions =
      measured->machine().instructions() + traced->machine().instructions();

  // ---- Registry snapshot across every layer of both runs ----
  // Must happen before the SystemInstances go out of scope: the registry
  // bindings point into them.
  StatsRegistry registry;
  measured->RegisterStats(registry, "measured.");
  traced->RegisterStats(registry, "traced.");
  if (capture) {
    engine->RegisterParserStats(registry, "parser.");
    engine->RegisterStats(registry, "replay.");
    trace_log.RegisterStats(registry, "tracelog.");
  } else {
    parser->RegisterStats(registry, "parser.");
  }
  if (archive != nullptr) {
    archive->RegisterStats(registry, "archive.");
  }
  simulator.RegisterStats(registry, "predicted.");
  if (sweep_engine != nullptr) {
    sweep_engine->RegisterStats(registry, "sweep.");
  }
  if (pipeline != nullptr) {
    pipeline->RegisterStats(registry, "trace.pipeline.");
  }
  result.stats = registry.Snapshot();
  if (options.parallel_pair) {
    // Fold the helper thread's run.measured phase back into the shared
    // timeline at its true wall offset.
    events->Absorb(measured_events.TakeEvents(), measured_epoch_us, /*depth_offset=*/1);
  }
  if (consumer_events != nullptr) {
    // Fold the consumer thread's parser phases back in at their true wall
    // offset (nested under the experiment scope, like the measured half).
    events->Absorb(consumer_events->TakeEvents(), consumer_epoch_us, /*depth_offset=*/1);
  }
  events->End();  // experiment:<name>
  events->SetCycleSource(nullptr);
  if (events == &local_events) {
    result.timeline = local_events.TakeEvents();
  }
  return result;
}

std::vector<ExperimentResult> RunSuite(const std::vector<WorkloadSpec>& workloads,
                                       const ExperimentOptions& options) {
  unsigned jobs = options.jobs == 0 ? 1 : options.jobs;
  jobs = static_cast<unsigned>(
      std::min<size_t>(jobs, workloads.empty() ? size_t{1} : workloads.size()));
  ProgressMeter progress(options.progress, workloads.size(), options.progress_interval_ms);
  if (jobs <= 1) {
    std::vector<ExperimentResult> results;
    results.reserve(workloads.size());
    for (const WorkloadSpec& w : workloads) {
      results.push_back(RunExperiment(w, options));
      progress.OnDone(results.back());
    }
    return results;
  }

  // Worker pool: each worker claims the next unstarted workload and runs
  // the whole experiment with a private event recorder (options.events is
  // not thread-safe).  Results land in workload order regardless of which
  // worker finishes first, and timelines are merged back in that same
  // order, so reports are scheduling-independent.
  std::vector<ExperimentResult> results(workloads.size());
  std::vector<std::exception_ptr> errors(workloads.size());
  std::atomic<size_t> next{0};
  ExperimentOptions worker_options = options;
  worker_options.events = nullptr;
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (unsigned t = 0; t < jobs; ++t) {
    pool.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < workloads.size(); i = next.fetch_add(1)) {
        try {
          results[i] = RunExperiment(workloads[i], worker_options);
          progress.OnDone(results[i]);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
    });
  }
  for (std::thread& worker : pool) {
    worker.join();
  }
  for (const std::exception_ptr& error : errors) {
    if (error != nullptr) {
      std::rethrow_exception(error);
    }
  }
  if (options.events != nullptr) {
    for (ExperimentResult& r : results) {
      options.events->Absorb(std::move(r.timeline));
      r.timeline.clear();
    }
  }
  return results;
}

}  // namespace wrl
