#include "harness/experiment.h"

#include "support/error.h"
#include "support/strings.h"
#include "trace/parser.h"

namespace wrl {
namespace {

SystemConfig MakeConfig(const WorkloadSpec& workload, const ExperimentOptions& options,
                        bool tracing, EventRecorder* events) {
  SystemConfig config;
  config.personality = options.personality;
  config.tracing = tracing;
  config.clock_period = tracing
                            ? options.clock_period * static_cast<uint32_t>(options.dilation)
                            : options.clock_period;
  config.program_source = workload.source;
  config.program_name = workload.name;
  config.files = workload.files;
  config.trace_buf_bytes = options.trace_buf_bytes;
  config.events = events;
  if (options.personality == Personality::kMach) {
    config.policy = PagePolicy::kScrambled;
    config.policy_mult = 9;
  }
  return config;
}

}  // namespace

std::vector<std::string> ExperimentResult::Warnings() const {
  std::vector<std::string> warnings;
  if (parser_errors > 0) {
    warnings.push_back(StrFormat(
        "WARNING: '%s' had %llu trace parser validation error(s) — the "
        "reconstructed reference stream (and every prediction from it) is suspect",
        workload.c_str(), static_cast<unsigned long long>(parser_errors)));
  }
  if (DegeneratePrediction()) {
    warnings.push_back(StrFormat(
        "WARNING: '%s' prediction is degenerate: predicted 0 cycles against "
        "%llu measured — the trace produced no usable references",
        workload.c_str(), static_cast<unsigned long long>(measured_cycles)));
  }
  return warnings;
}

ExperimentResult RunExperiment(const WorkloadSpec& workload, const ExperimentOptions& options) {
  ExperimentResult result;
  result.workload = workload.name;
  result.personality = options.personality;

  // Timeline: a private recorder unless the caller shares one for the suite.
  // The experiment phase is opened/closed manually so the completed event is
  // harvestable into result.timeline; a thrown Error abandons the recorder.
  EventRecorder local_events;
  EventRecorder* events = options.events != nullptr ? options.events : &local_events;
  events->Begin("experiment:" + workload.name, "experiment");

  // ---- Measured: the uninstrumented system with the hardware timer ----
  std::unique_ptr<SystemInstance> measured;
  {
    EventRecorder::Scope scope(events, "build.measured", "build");
    measured = BuildSystem(MakeConfig(workload, options, false, events));
  }
  auto [idle_lo, idle_hi] = measured->IdleRange();
  measured->machine().SetIdleRange(idle_lo, idle_hi);
  events->SetCycleSource([machine = &measured->machine()] { return machine->cycles(); });
  RunResult mr;
  {
    EventRecorder::Scope scope(events, "run.measured", "run");
    mr = measured->Run(options.max_instructions);
  }
  if (!mr.halted) {
    throw Error(StrFormat("measured run of '%s' did not halt (pc=0x%08x)",
                          workload.name.c_str(), measured->machine().pc()));
  }
  result.measured_cycles = measured->ProcessCycles(1);
  result.measured_utlb = measured->UtlbMissCount();
  result.measured_idle_instructions = measured->machine().idle_instructions();
  result.measured_tlbdropins = measured->TlbDropins();
  result.measured_user_instructions = measured->machine().user_instructions();
  result.exit_code = measured->ProcessExitCode(1);

  // ---- Predicted: the traced system driving the analysis program ----
  std::unique_ptr<SystemInstance> traced;
  {
    EventRecorder::Scope scope(events, "build.traced", "build");
    traced = BuildSystem(MakeConfig(workload, options, true, events));
  }

  PredictorConfig pconfig;
  pconfig.dilation = options.dilation;
  // Page mapping (paper §4.2): the simulator implements the policy.  Under
  // the deterministic policy this reproduces the measured run's map; under
  // Mach's random policy it is *a* mapping with the right distribution but
  // different draws — the repeatability problem the paper reports.
  if (options.personality == Personality::kMach) {
    pconfig.page_map = measured->PageMap(13);  // Different permutation draw.
  } else {
    pconfig.page_map = measured->PageMap();
  }
  TraceDrivenSimulator simulator(pconfig);
  // Original binaries, for the pixie-style arithmetic-stall estimate.
  simulator.AddTextImage(measured->kernel_exe());
  simulator.AddTextImage(measured->workload_orig());

  TraceParser parser(&traced->kernel_table());
  parser.SetUserTable(1, &traced->user_table());
  if (options.personality == Personality::kMach) {
    parser.SetUserTable(2, &traced->server_table());
  }
  parser.SetInitialContext(kKernelPid);
  parser.SetRefSink([&simulator](const TraceRef& ref) { simulator.OnRef(ref); });
  parser.SetEventRecorder(events);
  traced->SetTraceSink(
      [&parser](const uint32_t* words, size_t count) { parser.Feed(words, count); });

  events->SetCycleSource([machine = &traced->machine()] { return machine->cycles(); });
  RunResult tr;
  {
    EventRecorder::Scope scope(events, "run.traced", "run");
    tr = traced->Run(options.max_instructions);
  }
  if (!tr.halted) {
    throw Error(StrFormat("traced run of '%s' did not halt (pc=0x%08x)", workload.name.c_str(),
                          traced->machine().pc()));
  }
  parser.Finish();
  result.prediction = simulator.Finish();
  result.traced_machine_instructions = traced->machine().instructions();
  result.trace_words = traced->trace_words_drained();
  result.parser_errors = parser.stats().validation_errors;
  result.analysis_switches = traced->AnalysisSwitches();
  if (traced->ProcessExitCode(1) != result.exit_code) {
    throw Error(StrFormat("'%s': traced exit code %u != measured %u — tracing distorted behavior",
                          workload.name.c_str(), traced->ProcessExitCode(1), result.exit_code));
  }

  // ---- Registry snapshot across every layer of both runs ----
  // Must happen before the SystemInstances go out of scope: the registry
  // bindings point into them.
  StatsRegistry registry;
  measured->RegisterStats(registry, "measured.");
  traced->RegisterStats(registry, "traced.");
  parser.RegisterStats(registry, "parser.");
  simulator.RegisterStats(registry, "predicted.");
  result.stats = registry.Snapshot();
  events->End();  // experiment:<name>
  events->SetCycleSource(nullptr);
  if (events == &local_events) {
    result.timeline = local_events.TakeEvents();
  }
  return result;
}

std::vector<ExperimentResult> RunSuite(const std::vector<WorkloadSpec>& workloads,
                                       const ExperimentOptions& options) {
  std::vector<ExperimentResult> results;
  results.reserve(workloads.size());
  for (const WorkloadSpec& w : workloads) {
    results.push_back(RunExperiment(w, options));
  }
  return results;
}

}  // namespace wrl
