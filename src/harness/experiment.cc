#include "harness/experiment.h"

#include "support/error.h"
#include "support/strings.h"
#include "trace/parser.h"

namespace wrl {
namespace {

SystemConfig MakeConfig(const WorkloadSpec& workload, const ExperimentOptions& options,
                        bool tracing) {
  SystemConfig config;
  config.personality = options.personality;
  config.tracing = tracing;
  config.clock_period = tracing
                            ? options.clock_period * static_cast<uint32_t>(options.dilation)
                            : options.clock_period;
  config.program_source = workload.source;
  config.program_name = workload.name;
  config.files = workload.files;
  config.trace_buf_bytes = options.trace_buf_bytes;
  if (options.personality == Personality::kMach) {
    config.policy = PagePolicy::kScrambled;
    config.policy_mult = 9;
  }
  return config;
}

}  // namespace

ExperimentResult RunExperiment(const WorkloadSpec& workload, const ExperimentOptions& options) {
  ExperimentResult result;
  result.workload = workload.name;
  result.personality = options.personality;

  // ---- Measured: the uninstrumented system with the hardware timer ----
  auto measured = BuildSystem(MakeConfig(workload, options, false));
  auto [idle_lo, idle_hi] = measured->IdleRange();
  measured->machine().SetIdleRange(idle_lo, idle_hi);
  RunResult mr = measured->Run(options.max_instructions);
  if (!mr.halted) {
    throw Error(StrFormat("measured run of '%s' did not halt (pc=0x%08x)",
                          workload.name.c_str(), measured->machine().pc()));
  }
  result.measured_cycles = measured->ProcessCycles(1);
  result.measured_utlb = measured->UtlbMissCount();
  result.measured_idle_instructions = measured->machine().idle_instructions();
  result.measured_tlbdropins = measured->TlbDropins();
  result.measured_user_instructions = measured->machine().user_instructions();
  result.exit_code = measured->ProcessExitCode(1);

  // ---- Predicted: the traced system driving the analysis program ----
  auto traced = BuildSystem(MakeConfig(workload, options, true));

  PredictorConfig pconfig;
  pconfig.dilation = options.dilation;
  // Page mapping (paper §4.2): the simulator implements the policy.  Under
  // the deterministic policy this reproduces the measured run's map; under
  // Mach's random policy it is *a* mapping with the right distribution but
  // different draws — the repeatability problem the paper reports.
  if (options.personality == Personality::kMach) {
    pconfig.page_map = measured->PageMap(13);  // Different permutation draw.
  } else {
    pconfig.page_map = measured->PageMap();
  }
  TraceDrivenSimulator simulator(pconfig);
  // Original binaries, for the pixie-style arithmetic-stall estimate.
  simulator.AddTextImage(measured->kernel_exe());
  simulator.AddTextImage(measured->workload_orig());

  TraceParser parser(&traced->kernel_table());
  parser.SetUserTable(1, &traced->user_table());
  if (options.personality == Personality::kMach) {
    parser.SetUserTable(2, &traced->server_table());
  }
  parser.SetInitialContext(kKernelPid);
  parser.SetRefSink([&simulator](const TraceRef& ref) { simulator.OnRef(ref); });
  traced->SetTraceSink(
      [&parser](const uint32_t* words, size_t count) { parser.Feed(words, count); });

  RunResult tr = traced->Run(options.max_instructions);
  if (!tr.halted) {
    throw Error(StrFormat("traced run of '%s' did not halt (pc=0x%08x)", workload.name.c_str(),
                          traced->machine().pc()));
  }
  parser.Finish();
  result.prediction = simulator.Finish();
  result.traced_machine_instructions = traced->machine().instructions();
  result.trace_words = traced->trace_words_drained();
  result.parser_errors = parser.stats().validation_errors;
  result.analysis_switches = traced->AnalysisSwitches();
  if (traced->ProcessExitCode(1) != result.exit_code) {
    throw Error(StrFormat("'%s': traced exit code %u != measured %u — tracing distorted behavior",
                          workload.name.c_str(), traced->ProcessExitCode(1), result.exit_code));
  }
  return result;
}

std::vector<ExperimentResult> RunSuite(const std::vector<WorkloadSpec>& workloads,
                                       const ExperimentOptions& options) {
  std::vector<ExperimentResult> results;
  results.reserve(workloads.size());
  for (const WorkloadSpec& w : workloads) {
    results.push_back(RunExperiment(w, options));
  }
  return results;
}

}  // namespace wrl
