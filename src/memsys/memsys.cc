#include "memsys/memsys.h"

#include "support/error.h"

namespace wrl {

DirectMappedCache::DirectMappedCache(const CacheConfig& config) : config_(config) {
  WRL_CHECK(config.line_bytes > 0 && (config.line_bytes & (config.line_bytes - 1)) == 0);
  WRL_CHECK(config.size_bytes % config.line_bytes == 0);
  num_lines_ = config.size_bytes / config.line_bytes;
  tags_.assign(num_lines_, 0);
  valid_.assign(num_lines_, false);
}

bool DirectMappedCache::Access(uint32_t paddr) {
  uint32_t index = LineIndex(paddr);
  uint32_t tag = Tag(paddr);
  if (valid_[index] && tags_[index] == tag) {
    return true;
  }
  valid_[index] = true;
  tags_[index] = tag;
  return false;
}

bool DirectMappedCache::Update(uint32_t paddr) {
  uint32_t index = LineIndex(paddr);
  return valid_[index] && tags_[index] == Tag(paddr);
}

void DirectMappedCache::Invalidate(uint32_t paddr) {
  uint32_t index = LineIndex(paddr);
  if (valid_[index] && tags_[index] == Tag(paddr)) {
    valid_[index] = false;
  }
}

void DirectMappedCache::InvalidateAll() { valid_.assign(num_lines_, false); }

uint64_t WriteBuffer::Push(uint64_t now) {
  while (!retire_times_.empty() && retire_times_.front() <= now) {
    retire_times_.pop_front();
  }
  uint64_t stall = 0;
  if (retire_times_.size() >= depth_) {
    stall = retire_times_.front() - now;
    retire_times_.pop_front();
  }
  uint64_t issue = now + stall;
  uint64_t retire =
      (retire_times_.empty() ? issue : std::max(issue, retire_times_.back())) + cycles_per_entry_;
  retire_times_.push_back(retire);
  return stall;
}

void WriteBuffer::Reset() { retire_times_.clear(); }

MemorySystem::MemorySystem(const MemSysConfig& config)
    : config_(config),
      icache_(config.icache),
      dcache_(config.dcache),
      write_buffer_(config.wb_depth, config.wb_cycles_per_entry) {}

uint64_t MemorySystem::Fetch(uint32_t paddr, uint64_t now) {
  ++stats_.inst_fetches;
  if (icache_.Access(paddr)) {
    return 0;
  }
  ++stats_.icache_misses;
  return config_.read_miss_penalty;
}

uint64_t MemorySystem::Load(uint32_t paddr, uint64_t now) {
  ++stats_.data_reads;
  if (dcache_.Access(paddr)) {
    return 0;
  }
  ++stats_.dcache_misses;
  return config_.read_miss_penalty;
}

uint64_t MemorySystem::Store(uint32_t paddr, uint64_t now) {
  ++stats_.data_writes;
  dcache_.Update(paddr);  // Write-through, no write-allocate.
  uint64_t stall = write_buffer_.Push(now);
  stats_.wb_stall_cycles += stall;
  return stall;
}

uint64_t MemorySystem::UncachedLoad(uint32_t paddr, uint64_t now) {
  ++stats_.uncached_reads;
  return config_.uncached_penalty;
}

uint64_t MemorySystem::UncachedStore(uint32_t paddr, uint64_t now) {
  ++stats_.uncached_writes;
  uint64_t stall = write_buffer_.Push(now);
  stats_.wb_stall_cycles += stall;
  return stall;
}

void MemorySystem::Reset() {
  icache_.InvalidateAll();
  dcache_.InvalidateAll();
  write_buffer_.Reset();
  stats_ = MemSysStats{};
}

void MemorySystem::RegisterStats(StatsRegistry& registry, const std::string& prefix) {
  registry.AddCounter(prefix + "inst_fetches", &stats_.inst_fetches);
  registry.AddCounter(prefix + "icache_misses", &stats_.icache_misses);
  registry.AddCounter(prefix + "data_reads", &stats_.data_reads);
  registry.AddCounter(prefix + "dcache_misses", &stats_.dcache_misses);
  registry.AddCounter(prefix + "data_writes", &stats_.data_writes);
  registry.AddCounter(prefix + "wb_stall_cycles", &stats_.wb_stall_cycles);
  registry.AddCounter(prefix + "uncached_reads", &stats_.uncached_reads);
  registry.AddCounter(prefix + "uncached_writes", &stats_.uncached_writes);
  registry.AddGauge(prefix + "stall_cycles",
                    [this] { return static_cast<double>(stats_.StallCycles(config_)); });
}

}  // namespace wrl
