#include "memsys/memsys.h"

#include <algorithm>

#include "support/error.h"

namespace wrl {

namespace {

uint32_t Log2Exact(uint32_t value) {
  uint32_t shift = 0;
  while ((1u << shift) < value) {
    ++shift;
  }
  return shift;
}

}  // namespace

DirectMappedCache::DirectMappedCache(const CacheConfig& config) : config_(config) {
  WRL_CHECK(config.line_bytes > 0 && (config.line_bytes & (config.line_bytes - 1)) == 0);
  WRL_CHECK(config.size_bytes % config.line_bytes == 0);
  num_lines_ = config.size_bytes / config.line_bytes;
  // The shift/mask fast path needs a power-of-two line count too, and at
  // least one geometry bit so real (32-bit) tags stay below the sentinel.
  WRL_CHECK(num_lines_ > 0 && (num_lines_ & (num_lines_ - 1)) == 0);
  line_shift_ = Log2Exact(config.line_bytes);
  index_bits_ = Log2Exact(num_lines_);
  index_mask_ = num_lines_ - 1;
  WRL_CHECK(line_shift_ + index_bits_ > 0);
  tags_.assign(num_lines_, kInvalidTag);
}

void DirectMappedCache::InvalidateAll() { tags_.assign(num_lines_, kInvalidTag); }

WriteBuffer::WriteBuffer(unsigned depth, unsigned cycles_per_entry)
    : depth_(depth), cycles_per_entry_(cycles_per_entry) {
  WRL_CHECK(depth_ > 0);
  ring_.assign(depth_, 0);
}

uint64_t WriteBuffer::Push(uint64_t now) {
  // Drop entries that have already retired.
  while (size_ > 0 && ring_[head_] <= now) {
    head_ = head_ + 1 == depth_ ? 0 : head_ + 1;
    --size_;
  }
  uint64_t stall = 0;
  if (size_ >= depth_) {
    stall = ring_[head_] - now;
    head_ = head_ + 1 == depth_ ? 0 : head_ + 1;
    --size_;
  }
  uint64_t issue = now + stall;
  unsigned tail = head_ + size_;
  if (tail >= depth_) {
    tail -= depth_;
  }
  unsigned back = tail == 0 ? depth_ - 1 : tail - 1;
  uint64_t retire =
      (size_ == 0 ? issue : std::max(issue, ring_[back])) + cycles_per_entry_;
  ring_[tail] = retire;
  ++size_;
  return stall;
}

void WriteBuffer::Reset() {
  head_ = 0;
  size_ = 0;
}

MemorySystem::MemorySystem(const MemSysConfig& config)
    : config_(config),
      icache_(config.icache),
      dcache_(config.dcache),
      write_buffer_(config.wb_depth, config.wb_cycles_per_entry) {}

void MemorySystem::Reset() {
  icache_.InvalidateAll();
  dcache_.InvalidateAll();
  write_buffer_.Reset();
  stats_ = MemSysStats{};
}

void MemorySystem::RegisterStats(StatsRegistry& registry, const std::string& prefix) {
  registry.AddCounter(prefix + "inst_fetches", &stats_.inst_fetches);
  registry.AddCounter(prefix + "icache_misses", &stats_.icache_misses);
  registry.AddCounter(prefix + "data_reads", &stats_.data_reads);
  registry.AddCounter(prefix + "dcache_misses", &stats_.dcache_misses);
  registry.AddCounter(prefix + "data_writes", &stats_.data_writes);
  registry.AddCounter(prefix + "wb_stall_cycles", &stats_.wb_stall_cycles);
  registry.AddCounter(prefix + "uncached_reads", &stats_.uncached_reads);
  registry.AddCounter(prefix + "uncached_writes", &stats_.uncached_writes);
  registry.AddGauge(prefix + "stall_cycles",
                    [this] { return static_cast<double>(stats_.StallCycles(config_)); });
}

}  // namespace wrl
