// The memory-system timing model of the simulated DECstation.
//
// One implementation serves two masters:
//   * the "real machine" (src/mach) attaches a MemorySystem to charge stall
//     cycles while executing uninstrumented binaries — this produces the
//     *measured* numbers of Tables 2 and 3;
//   * the trace-driven analysis program (src/sim) feeds the same model with
//     references parsed from the trace — this produces the *predicted*
//     numbers.
//
// The configuration mirrors the DECstation 5000/200: split direct-mapped
// 64 KB instruction and data caches (16-byte I-lines, 4-byte D-lines),
// write-through/no-write-allocate data cache in front of a 6-deep write
// buffer, and a flat miss penalty.  Caches are physically indexed, which is
// why the page-mapping policy matters (paper §4.2).
#ifndef WRLTRACE_MEMSYS_MEMSYS_H_
#define WRLTRACE_MEMSYS_MEMSYS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "stats/stats.h"

namespace wrl {

struct CacheConfig {
  uint32_t size_bytes = 64 * 1024;
  uint32_t line_bytes = 16;
};

// A direct-mapped, physically-indexed cache.  This sits on the per-
// instruction simulation path (one fetch plus up to one data access per
// step), so the geometry — power-of-two line size and line count — is
// turned into shifts/masks once at construction, the hot methods live in
// the header, and an impossible tag value stands in for a valid bit.
class DirectMappedCache {
 public:
  explicit DirectMappedCache(const CacheConfig& config);

  // Looks up `paddr`; on a miss the line is filled.  Returns true on hit.
  bool Access(uint32_t paddr) {
    uint32_t index = LineIndex(paddr);
    uint32_t tag = Tag(paddr);
    if (tags_[index] == tag) {
      return true;
    }
    tags_[index] = tag;
    return false;
  }
  // Write-through update: refreshes the line only if already present
  // (no write allocation).  Returns true if the line was present.
  bool Update(uint32_t paddr) { return tags_[LineIndex(paddr)] == Tag(paddr); }
  // Invalidates the line containing `paddr` (used by I-cache flushes).
  void Invalidate(uint32_t paddr) {
    uint32_t index = LineIndex(paddr);
    if (tags_[index] == Tag(paddr)) {
      tags_[index] = kInvalidTag;
    }
  }
  void InvalidateAll();

  uint32_t num_lines() const { return num_lines_; }
  const CacheConfig& config() const { return config_; }

 private:
  // 32-bit physical addresses leave tags far below this sentinel.
  static constexpr uint32_t kInvalidTag = 0xffffffffu;

  uint32_t LineIndex(uint32_t paddr) const { return (paddr >> line_shift_) & index_mask_; }
  uint32_t Tag(uint32_t paddr) const { return paddr >> (line_shift_ + index_bits_); }

  CacheConfig config_;
  uint32_t num_lines_;
  uint32_t line_shift_;
  uint32_t index_bits_;
  uint32_t index_mask_;
  std::vector<uint32_t> tags_;
};

// The write buffer between the write-through cache and memory.  Entries
// retire at a fixed rate; a store issued while the buffer is full stalls the
// CPU until a slot frees up.  Occupancy never exceeds `depth` entries (a
// push into a full buffer first stalls one entry out), so the retire queue
// is a fixed ring rather than a deque — stores are the hottest data
// references the simulation makes.
class WriteBuffer {
 public:
  WriteBuffer(unsigned depth, unsigned cycles_per_entry);

  // Issues a store at time `now`; returns the number of stall cycles.
  uint64_t Push(uint64_t now);
  void Reset();

 private:
  unsigned depth_;
  unsigned cycles_per_entry_;
  std::vector<uint64_t> ring_;  // depth_ slots.
  unsigned head_ = 0;           // Oldest in-flight entry.
  unsigned size_ = 0;
};

struct MemSysConfig {
  CacheConfig icache{64 * 1024, 16};
  CacheConfig dcache{64 * 1024, 4};
  unsigned read_miss_penalty = 15;  // Cycles per I- or D-cache read miss.
  unsigned uncached_penalty = 15;   // Cycles per uncached read.
  unsigned wb_depth = 6;
  unsigned wb_cycles_per_entry = 5;
};

struct MemSysStats {
  uint64_t inst_fetches = 0;
  uint64_t icache_misses = 0;
  uint64_t data_reads = 0;
  uint64_t dcache_misses = 0;
  uint64_t data_writes = 0;
  uint64_t wb_stall_cycles = 0;
  uint64_t uncached_reads = 0;
  uint64_t uncached_writes = 0;

  // Total memory-system stall cycles under `config` penalties.
  uint64_t StallCycles(const MemSysConfig& config) const {
    return (icache_misses + dcache_misses + uncached_reads) * config.read_miss_penalty +
           wb_stall_cycles;
  }
};

class MemorySystem {
 public:
  explicit MemorySystem(const MemSysConfig& config);

  // Each returns the stall cycles charged for the access at time `now`.
  // Defined here so the per-instruction simulation loop can inline them.
  uint64_t Fetch(uint32_t paddr, uint64_t /*now*/) {
    ++stats_.inst_fetches;
    if (icache_.Access(paddr)) {
      return 0;
    }
    ++stats_.icache_misses;
    return config_.read_miss_penalty;
  }
  uint64_t Load(uint32_t paddr, uint64_t /*now*/) {
    ++stats_.data_reads;
    if (dcache_.Access(paddr)) {
      return 0;
    }
    ++stats_.dcache_misses;
    return config_.read_miss_penalty;
  }
  uint64_t Store(uint32_t paddr, uint64_t now) {
    ++stats_.data_writes;
    dcache_.Update(paddr);  // Write-through, no write-allocate.
    uint64_t stall = write_buffer_.Push(now);
    stats_.wb_stall_cycles += stall;
    return stall;
  }
  uint64_t UncachedLoad(uint32_t /*paddr*/, uint64_t /*now*/) {
    ++stats_.uncached_reads;
    return config_.uncached_penalty;
  }
  uint64_t UncachedStore(uint32_t /*paddr*/, uint64_t now) {
    ++stats_.uncached_writes;
    uint64_t stall = write_buffer_.Push(now);
    stats_.wb_stall_cycles += stall;
    return stall;
  }

  void FlushICache() { icache_.InvalidateAll(); }
  void Reset();

  const MemSysStats& stats() const { return stats_; }
  const MemSysConfig& config() const { return config_; }

  // Binds every counter of `stats()` plus a derived `stall_cycles` gauge
  // into `registry` under `prefix`.  The memory system must outlive
  // snapshots of the registry.
  void RegisterStats(StatsRegistry& registry, const std::string& prefix);

 private:
  MemSysConfig config_;
  DirectMappedCache icache_;
  DirectMappedCache dcache_;
  WriteBuffer write_buffer_;
  MemSysStats stats_;
};

}  // namespace wrl

#endif  // WRLTRACE_MEMSYS_MEMSYS_H_
