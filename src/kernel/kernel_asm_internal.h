// Internal decomposition of the kernel assembly generator.
#ifndef WRLTRACE_KERNEL_KERNEL_ASM_INTERNAL_H_
#define WRLTRACE_KERNEL_KERNEL_ASM_INTERNAL_H_

#include <string>

namespace wrl {

// Part 1 (kernel_asm.cc): vectors, entry/exit stubs, trace flush and
// analysis mode, boot, VM plumbing, dispatch, scheduler, interrupts.
std::string KernelCoreAsm();
// Part 2 (kernel_sys_asm.cc): syscall handlers, filesystem + buffer cache,
// disk driver, IPC, Mach forwarding, kernel data/bss.
std::string KernelSysAsm();

// Replaces every occurrence of %NAME% placeholders with the layout
// constants (see kernel_asm.cc for the table).
std::string SubstituteKernelConstants(std::string text);

}  // namespace wrl

#endif  // WRLTRACE_KERNEL_KERNEL_ASM_INTERNAL_H_
