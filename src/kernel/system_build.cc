#include "kernel/system_build.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "asm/assembler.h"
#include "kernel/kernel_asm.h"
#include "support/error.h"
#include "support/strings.h"
#include "trace/abi.h"
#include "trace/support_asm.h"

namespace wrl {
namespace {

void Put32(std::vector<uint8_t>& v, size_t off, uint32_t val) {
  WRL_CHECK(off + 4 <= v.size());
  std::memcpy(v.data() + off, &val, 4);
}

ObjectFile MakeUserAbsSymbols() {
  ObjectFile obj;
  obj.source_name = "user-abs";
  Symbol bk;
  bk.name = "bk_area";
  bk.value = kUserBkBase;
  bk.section = SectionId::kAbs;
  bk.global = true;
  obj.symbols.push_back(bk);
  return obj;
}

uint32_t PagesFor(uint32_t bytes) { return (bytes + kPageBytes - 1) / kPageBytes; }

uint32_t Gcd(uint32_t a, uint32_t b) { return b == 0 ? a : Gcd(b, a % b); }

}  // namespace

std::vector<uint8_t> BuildDiskImage(const std::vector<DiskFile>& files, uint32_t disk_bytes) {
  std::vector<uint8_t> image(disk_bytes, 0);
  WRL_CHECK_MSG(files.size() <= kFsDirEntries, "too many files for the flat filesystem");
  uint32_t next_sector = kFsBlockSectors;  // Data starts at the first block boundary.
  for (size_t i = 0; i < files.size(); ++i) {
    const DiskFile& f = files[i];
    WRL_CHECK_MSG(f.name.size() < kFsNameBytes, "file name too long");
    size_t entry = i * 32;
    std::memcpy(image.data() + entry, f.name.c_str(), f.name.size() + 1);
    uint32_t length = static_cast<uint32_t>(f.content.size()) + f.extra_capacity;
    uint32_t sectors = (length + 511) / 512;
    // Round the allocation to block boundaries so files never share blocks.
    sectors = ((sectors + kFsBlockSectors - 1) / kFsBlockSectors) * kFsBlockSectors;
    Put32(image, entry + 24, next_sector);
    Put32(image, entry + 28, length);
    WRL_CHECK_MSG((next_sector + sectors) * 512 <= disk_bytes, "disk image overflow");
    if (!f.content.empty()) {
      std::memcpy(image.data() + next_sector * 512, f.content.data(), f.content.size());
    }
    next_sector += sectors;
  }
  return image;
}

std::string UserLibAsm() {
  std::string s = R"(
        .text
        .globl _start
_start:
        jal  main
        nop
        move $a0, $v0
        li   $v0, 1              # exit(main())
        syscall
        nop
ul_spin:
        b    ul_spin
        nop
)";
  struct Stub {
    const char* name;
    uint32_t number;
  };
  const Stub stubs[] = {
      {"write", kSysWrite},        {"read", kSysRead},
      {"open", kSysOpen},          {"close", kSysClose},
      {"sbrk", kSysSbrk},          {"gettime", kSysGetTime},
      {"getpid", kSysGetPid},      {"utlbcount", kSysUtlbCount},
      {"yield", kSysYield},        {"msg_send", kSysMsgSend},
      {"msg_recv", kSysMsgRecv},   {"dev_disk_read", kSysDevDiskRead},
      {"dev_disk_write", kSysDevDiskWrite}, {"vm_copy", kSysVmCopy},
  };
  for (const Stub& stub : stubs) {
    s += StrFormat(R"(
        .globl %s
%s:
        li   $v0, %u
        syscall
        jr   $ra
        nop
)",
                   stub.name, stub.name, stub.number);
  }
  return s;
}

std::string ServerAsm() {
  // The Mach UNIX server: user-level filesystem code (directory lookup,
  // an 8-block cache, write-through) over microkernel device I/O, with
  // vm_copy moving data between the caller's address space and the
  // server's cache.  System code running as user code — exactly the
  // structural difference behind Mach's much larger *user* TLB miss counts
  // in Table 3.
  return R"(
        .globl main
main:
        addiu $sp, $sp, -8
        # Load the directory.
        li   $a0, 0
        la   $a1, srv_dir
        li   $a2, 1
        jal  dev_disk_read
        nop
srv_loop:
        li   $a0, 0
        la   $a1, srv_msg
        jal  msg_recv
        nop
        la   $t0, srv_msg
        lw   $s0, 0($t0)         # op
        lw   $s1, 4($t0)         # a0 (fd or name ptr)
        lw   $s2, 8($t0)         # a1 (buffer)
        lw   $s3, 12($t0)        # a2 (length)
        lw   $s4, 16($t0)        # caller pid
        li   $t1, 4
        beq  $s0, $t1, srv_open
        nop
        li   $t1, 3
        beq  $s0, $t1, srv_read
        nop
        li   $t1, 2
        beq  $s0, $t1, srv_write
        nop
        li   $t1, 5
        beq  $s0, $t1, srv_close
        nop
        addiu $v0, $zero, -1
        b    srv_reply
        nop

# --- open: the kernel copied the name into the message -------------------
srv_open:
        la   $s5, srv_msg
        addiu $s5, $s5, 20       # name
        la   $s6, srv_dir
        li   $s7, 0
so_scan:
        sltiu $t0, $s7, 16
        beq  $t0, $zero, so_notfound
        nop
        sll  $t0, $s7, 5
        addu $t1, $s6, $t0
        lb   $t2, 0($t1)
        beq  $t2, $zero, so_next
        nop
        move $t2, $s5
so_cmp:
        lbu  $t3, 0($t2)
        lbu  $t4, 0($t1)
        bne  $t3, $t4, so_next
        nop
        beq  $t3, $zero, so_found
        nop
        addiu $t2, $t2, 1
        b    so_cmp
        addiu $t1, $t1, 1
so_next:
        b    so_scan
        addiu $s7, $s7, 1
so_notfound:
        addiu $v0, $zero, -1
        b    srv_reply
        nop
so_found:
        la   $t0, srv_fd
        lw   $t1, 0($t0)
        beq  $t1, $zero, so_fd3
        nop
        lw   $t1, 8($t0)
        beq  $t1, $zero, so_fd4
        nop
        addiu $v0, $zero, -1
        b    srv_reply
        nop
so_fd3:
        addiu $t1, $s7, 1
        sw   $t1, 0($t0)
        sw   $zero, 4($t0)
        li   $v0, 3
        b    srv_reply
        nop
so_fd4:
        addiu $t1, $s7, 1
        sw   $t1, 8($t0)
        sw   $zero, 12($t0)
        li   $v0, 4
        b    srv_reply
        nop

srv_close:
        jal  srv_fd_entry
        nop
        bltz $v1, srv_badfd
        nop
        sw   $zero, 0($v1)
        li   $v0, 0
        b    srv_reply
        nop
srv_badfd:
        addiu $v0, $zero, -1
        b    srv_reply
        nop

# --- fd entry for fd in s1 -> v1 (or -1) ----------------------------------
srv_fd_entry:
        addiu $t0, $s1, -3
        sltiu $t1, $t0, 2
        beq  $t1, $zero, sfe_bad
        nop
        sll  $t0, $t0, 3
        la   $v1, srv_fd
        addu $v1, $v1, $t0
        lw   $t0, 0($v1)
        beq  $t0, $zero, sfe_bad
        nop
        jr   $ra
        nop
sfe_bad:
        addiu $v1, $zero, -1
        jr   $ra
        nop

# --- read ------------------------------------------------------------------
srv_read:
        jal  srv_fd_entry
        nop
        bltz $v1, srv_badfd
        nop
        move $s5, $v1            # fd entry
        lw   $t0, 0($s5)
        addiu $t0, $t0, -1
        sll  $t0, $t0, 5
        la   $t1, srv_dir
        addu $t1, $t1, $t0
        lw   $s6, 24($t1)        # start sector
        sll  $s6, $s6, 9         # start byte
        lw   $t2, 28($t1)        # file length
        lw   $s7, 4($s5)         # position
        subu $t0, $t2, $s7
        sltu $t1, $t0, $s3
        beq  $t1, $zero, sr_lenok
        nop
        move $s3, $t0            # clamp remaining to EOF
sr_lenok:
        blez $s3, sr_zero
        nop
        li   $s0, 0              # progress
sr_loop:
        sltu $t0, $s0, $s3
        beq  $t0, $zero, sr_done
        nop
        addu $t0, $s7, $s0
        addu $t0, $s6, $t0       # absolute byte
        srl  $a0, $t0, 12        # block
        andi $s1, $t0, 0xfff     # offset in block (s1 reused; fd done)
        jal  srv_get_block       # v0 = cache slot
        nop
        # chunk = min(4096 - off, remaining - progress)
        li   $t2, 4096
        subu $t2, $t2, $s1
        subu $t3, $s3, $s0
        sltu $t4, $t3, $t2
        beq  $t4, $zero, sr_chunk
        nop
        move $t2, $t3
sr_chunk:
        # vm_copy(caller, caller_buf + progress, cacheblock + off, chunk)
        move $a0, $s4
        addu $a1, $s2, $s0
        sll  $a2, $v0, 12
        la   $t0, srv_cache_data
        addu $a2, $t0, $a2
        addu $a2, $a2, $s1
        move $a3, $t2            # direction 0: local -> remote
        jal  vm_copy
        nop
        b    sr_loop
        addu $s0, $s0, $t2
sr_done:
        addu $s7, $s7, $s3
        sw   $s7, 4($s5)
        move $v0, $s3
        b    srv_reply
        nop
sr_zero:
        li   $v0, 0
        b    srv_reply
        nop

# --- write -----------------------------------------------------------------
srv_write:
        jal  srv_fd_entry
        nop
        bltz $v1, srv_badfd
        nop
        move $s5, $v1
        lw   $t0, 0($s5)
        addiu $t0, $t0, -1
        sll  $t0, $t0, 5
        la   $t1, srv_dir
        addu $t1, $t1, $t0
        lw   $s6, 24($t1)
        sll  $s6, $s6, 9
        lw   $t2, 28($t1)
        lw   $s7, 4($s5)
        subu $t0, $t2, $s7
        sltu $t1, $t0, $s3
        beq  $t1, $zero, sw_lenok
        nop
        move $s3, $t0
sw_lenok:
        blez $s3, sr_zero
        nop
        li   $s0, 0
sw_loop:
        sltu $t0, $s0, $s3
        beq  $t0, $zero, sw_done
        nop
        addu $t0, $s7, $s0
        addu $t0, $s6, $t0
        srl  $a0, $t0, 12
        andi $s1, $t0, 0xfff
        jal  srv_get_block
        nop
        li   $t2, 4096
        subu $t2, $t2, $s1
        subu $t3, $s3, $s0
        sltu $t4, $t3, $t2
        beq  $t4, $zero, sw_chunk
        nop
        move $t2, $t3
sw_chunk:
        # vm_copy(caller, caller_buf + progress, cacheblock + off, chunk)
        # with direction 1: remote -> local.
        move $a0, $s4
        addu $a1, $s2, $s0
        sll  $a2, $v0, 12
        la   $t0, srv_cache_data
        addu $a2, $t0, $a2
        addu $a2, $a2, $s1
        lui  $a3, 0x8000
        or   $a3, $a3, $t2
        move $s1, $v0            # keep the slot across the calls
        jal  vm_copy
        nop
        # Write-through: flush the whole block to disk.
        la   $t0, srv_cache_hdr
        sll  $t1, $s1, 3
        addu $t0, $t0, $t1
        lw   $a0, 0($t0)         # block number
        sll  $a0, $a0, 3         # sector
        sll  $a1, $s1, 12
        la   $t1, srv_cache_data
        addu $a1, $t1, $a1
        li   $a2, 8
        jal  dev_disk_write
        nop
        b    sw_loop
        addu $s0, $s0, $t2
sw_done:
        addu $s7, $s7, $s3
        sw   $s7, 4($s5)
        move $v0, $s3
        b    srv_reply
        nop

# --- srv_get_block: a0 = block -> v0 = slot --------------------------------
srv_get_block:
        addiu $sp, $sp, -12
        sw   $ra, 8($sp)
        sw   $a0, 4($sp)
        la   $t0, srv_cache_hdr
        li   $v0, 0
sgb_scan:
        sltiu $t1, $v0, 8
        beq  $t1, $zero, sgb_miss
        nop
        sll  $t1, $v0, 3
        addu $t1, $t0, $t1
        lw   $t2, 0($t1)
        bne  $t2, $a0, sgb_next
        nop
        lw   $t2, 4($t1)
        beq  $t2, $zero, sgb_next
        nop
        lw   $ra, 8($sp)
        jr   $ra
        addiu $sp, $sp, 12
sgb_next:
        b    sgb_scan
        addiu $v0, $v0, 1
sgb_miss:
        la   $t0, srv_cache_hand
        lw   $v0, 0($t0)
        addiu $t1, $v0, 1
        andi $t1, $t1, 7
        sw   $t1, 0($t0)
        sw   $v0, 0($sp)
        # dev_disk_read(block*8, slot data, 8)
        lw   $a0, 4($sp)
        sll  $a0, $a0, 3
        sll  $a1, $v0, 12
        la   $t0, srv_cache_data
        addu $a1, $t0, $a1
        li   $a2, 8
        jal  dev_disk_read
        nop
        lw   $v0, 0($sp)
        la   $t0, srv_cache_hdr
        sll  $t1, $v0, 3
        addu $t0, $t0, $t1
        lw   $t2, 4($sp)
        sw   $t2, 0($t0)
        li   $t2, 1
        sw   $t2, 4($t0)
        lw   $ra, 8($sp)
        jr   $ra
        addiu $sp, $sp, 12

# --- reply -----------------------------------------------------------------
srv_reply:
        la   $t0, srv_out
        sw   $zero, 0($t0)
        sw   $v0, 4($t0)
        sw   $zero, 8($t0)
        sw   $zero, 12($t0)
        sw   $s4, 16($t0)
        li   $a0, 1
        move $a1, $t0
        jal  msg_send
        nop
        j    srv_loop
        nop

        .bss
        .align 8
srv_msg:        .space 32
srv_out:        .space 32
srv_dir:        .space 512
srv_fd:         .space 16
srv_cache_hdr:  .space 64
srv_cache_hand: .space 4
        .align 4096
srv_cache_data: .space 32768
)";
}

// ---- System building ------------------------------------------------------

namespace {

struct BuiltProgram {
  Executable orig;
  Executable traced;
  TraceInfoTable table;
  double text_growth = 1.0;  // Combined epoxie dilation across the objects.
  uint64_t elided_ra_saves = 0;
  uint64_t scavenged_windows = 0;
};

BuiltProgram BuildUserProgram(const std::string& name, const std::string& source, bool tracing,
                              bool scavenge) {
  BuiltProgram out;
  ObjectFile userlib = Assemble("userlib.s", UserLibAsm());
  ObjectFile prog = Assemble(name + ".s", source);

  LinkOptions orig_opts;
  orig_opts.text_base = kUserTextBase;
  out.orig = Link({userlib, prog}, orig_opts);

  if (!tracing) {
    return out;
  }
  EpoxieConfig econfig;
  econfig.scavenge = scavenge;
  InstrumentResult ilib = Instrument(userlib, econfig);
  InstrumentResult iprog = Instrument(prog, econfig);
  out.elided_ra_saves = ilib.elided_ra_saves + iprog.elided_ra_saves;
  out.scavenged_windows = ilib.scavenged_windows + iprog.scavenged_windows;
  ObjectFile support = Assemble("support.s", TraceSupportAsm());
  ObjectFile abs = MakeUserAbsSymbols();
  LinkOptions traced_opts;
  traced_opts.text_base = kUserTracedTextBase;
  traced_opts.fixed_data_base = out.orig.data_base;
  out.traced = Link({ilib.object, iprog.object, support, abs}, traced_opts);
  WRL_CHECK_MSG(out.traced.bss_base == out.orig.bss_base,
                "instrumented user bss moved; data addresses would not match");
  out.table.AddObject(ilib.blocks, out.traced.object_text_bases[0], out.orig.object_text_bases[0]);
  out.table.AddObject(iprog.blocks, out.traced.object_text_bases[1], out.orig.object_text_bases[1]);
  uint32_t orig_words = ilib.original_text_words + iprog.original_text_words;
  if (orig_words > 0) {
    out.text_growth =
        static_cast<double>(ilib.instrumented_text_words + iprog.instrumented_text_words) /
        orig_words;
  }
  return out;
}

}  // namespace

std::unique_ptr<SystemInstance> BuildSystem(const SystemConfig& config) {
  auto sys_owner = std::make_unique<SystemInstance>();
  SystemInstance& sys = *sys_owner;
  sys.config_ = config;

  // ---- Kernel ----
  ObjectFile kernel_obj = Assemble("kernel.s", KernelAsm());
  ObjectFile support = Assemble("support.s", TraceSupportAsm());
  LinkOptions kopts;
  kopts.text_base = kKseg0;
  kopts.fixed_data_base = kKernelDataBase;
  kopts.entry_symbol = "_start";
  Executable kernel_orig = Link({kernel_obj, support}, kopts);
  sys.kernel_orig_ = kernel_orig;

  if (config.tracing) {
    EpoxieConfig econfig;
    econfig.scavenge = config.scavenge;
    InstrumentResult ikernel = Instrument(kernel_obj, econfig);
    sys.kernel_text_growth_ = ikernel.TextGrowthFactor();
    sys.elided_ra_saves_ += ikernel.elided_ra_saves;
    sys.scavenged_windows_ += ikernel.scavenged_windows;
    sys.kernel_exe_ = Link({ikernel.object, support}, kopts);
    sys.kernel_table_.AddObject(ikernel.blocks, sys.kernel_exe_.object_text_bases[0],
                                kernel_orig.object_text_bases[0]);
    // The vectors are in the leading no-trace region: their offsets must
    // survive instrumentation exactly.
    WRL_CHECK_MSG(sys.kernel_exe_.SymbolAddress("_start") == kKseg0,
                  "instrumented kernel vectors moved");
  } else {
    sys.kernel_exe_ = kernel_orig;
  }
  // Keep an original-kernel copy for idle-range and analysis addressing.
  sys.workload_orig_ = Executable{};  // Set below.

  // ---- User programs ----
  bool mach = config.personality == Personality::kMach;
  BuiltProgram workload = BuildUserProgram(config.program_name, config.program_source,
                                           config.tracing, config.scavenge);
  sys.workload_orig_ = workload.orig;
  sys.workload_exe_ = config.tracing ? workload.traced : workload.orig;
  sys.user_table_ = std::move(workload.table);
  sys.workload_text_growth_ = workload.text_growth;
  sys.elided_ra_saves_ += workload.elided_ra_saves;
  sys.scavenged_windows_ += workload.scavenged_windows;

  BuiltProgram server;
  if (mach) {
    server = BuildUserProgram("server", ServerAsm(), config.tracing, config.scavenge);
    sys.server_orig_ = server.orig;
    sys.server_exe_ = config.tracing ? server.traced : server.orig;
    sys.server_table_ = std::move(server.table);
    sys.server_text_growth_ = server.text_growth;
    sys.elided_ra_saves_ += server.elided_ra_saves;
    sys.scavenged_windows_ += server.scavenged_windows;
  }

  // ---- Machine ----
  MachineConfig mconfig;
  mconfig.phys_bytes = kOsPhysBytes;
  mconfig.timing = true;
  mconfig.disk = config.disk;
  mconfig.fastpath = config.fastpath;
  sys.machine_ = std::make_unique<Machine>(mconfig);
  Machine& m = *sys.machine_;
  m.disk().image() = BuildDiskImage(config.files,
                                    static_cast<uint32_t>(m.disk().image().size()));
  m.LoadImage(sys.kernel_exe_, [](uint32_t v) { return v - kKseg0; });

  // ---- Per-process layout and premapping ----
  uint32_t nprocs = mach ? 2 : 1;
  std::vector<uint8_t> params(kBootHeaderBytes + kMaxProcs * kBootProcStride, 0);
  std::vector<std::pair<uint32_t, uint32_t>> mappings;  // (vpn|flags<<24, pfn)
  uint32_t next_frame = kUserFramePoolPhys >> kPageShift;

  auto build_process = [&](uint32_t pid, const Executable& mapped, const Executable& orig) {
    SystemInstance::ProcLayout layout;
    // Slices within the process's frame region: data+heap, stack, trace,
    // text.  Frame = slice base + (vpn - slice vpn0), permuted for the
    // scrambled policy.
    uint32_t data_vpn0 = orig.data_base >> kPageShift;
    // The initial break is 8-aligned so sbrk hands out aligned regions.
    uint32_t heap_start = (orig.bss_base + orig.bss_size + 7) & ~7u;
    uint32_t data_pages =
        PagesFor(heap_start + config.heap_bytes - orig.data_base);
    // The scrambled permutation needs gcd(mult, pages) == 1.
    while (config.policy == PagePolicy::kScrambled &&
           Gcd(config.policy_mult, data_pages) != 1) {
      ++data_pages;
    }
    uint32_t stack_vpn0 = (kUserStackTop >> kPageShift) - kUserStackPages;
    uint32_t trace_vpn0 = kUserTraceBufBase >> kPageShift;
    uint32_t trace_pages = (kUserTraceBufBytes >> kPageShift) + 1;  // + bookkeeping page
    uint32_t text_vpn0 = mapped.text_base >> kPageShift;
    uint32_t text_pages = PagesFor(static_cast<uint32_t>(mapped.text.size()));

    layout.region_base_page = next_frame;
    layout.data_slice_page = 0;
    layout.data_vpn0 = data_vpn0;
    layout.data_slice_pages = data_pages;
    layout.stack_slice_page = data_pages;
    layout.stack_vpn0 = stack_vpn0;
    layout.trace_slice_page = data_pages + kUserStackPages;
    layout.trace_vpn0 = trace_vpn0;
    layout.text_slice_page = layout.trace_slice_page + trace_pages;
    layout.text_vpn0 = text_vpn0;
    layout.region_pages = layout.text_slice_page + text_pages;
    next_frame += layout.region_pages;
    WRL_CHECK_MSG((next_frame << kPageShift) <= kOsPhysBytes, "out of user frames");

    auto frame_for = [&](uint32_t vpn) -> uint32_t {
      uint32_t slice_base;
      uint32_t index;
      uint32_t slice_pages;
      if (vpn >= text_vpn0 && vpn < text_vpn0 + text_pages) {
        slice_base = layout.text_slice_page;
        index = vpn - text_vpn0;
        slice_pages = text_pages;
      } else if (vpn == (kUserBkBase >> kPageShift)) {
        // The bookkeeping page rides in the last slot of the trace slice.
        slice_base = layout.trace_slice_page;
        index = trace_pages - 1;
        slice_pages = trace_pages;
      } else if (vpn >= trace_vpn0 && vpn < trace_vpn0 + trace_pages - 1) {
        slice_base = layout.trace_slice_page;
        index = vpn - trace_vpn0;
        slice_pages = trace_pages;
      } else if (vpn >= stack_vpn0 && vpn < stack_vpn0 + kUserStackPages) {
        slice_base = layout.stack_slice_page;
        index = vpn - stack_vpn0;
        slice_pages = kUserStackPages;
      } else {
        WRL_CHECK(vpn >= data_vpn0 && vpn < data_vpn0 + data_pages);
        slice_base = layout.data_slice_page;
        index = vpn - data_vpn0;
        slice_pages = data_pages;
      }
      if (config.policy == PagePolicy::kScrambled) {
        index = static_cast<uint32_t>((static_cast<uint64_t>(index) * config.policy_mult) %
                                      slice_pages);
      }
      return layout.region_base_page + slice_base + index;
    };

    // Page content assembly.
    auto page_bytes = [&](uint32_t vpn) -> std::vector<uint8_t> {
      std::vector<uint8_t> page(kPageBytes, 0);
      uint32_t base = vpn << kPageShift;
      auto blend = [&](uint32_t seg_base, const std::vector<uint8_t>& seg) {
        if (base + kPageBytes <= seg_base || base >= seg_base + seg.size()) {
          return;
        }
        uint32_t lo = std::max(base, seg_base);
        uint32_t hi = std::min(base + kPageBytes, seg_base + static_cast<uint32_t>(seg.size()));
        std::memcpy(page.data() + (lo - base), seg.data() + (lo - seg_base), hi - lo);
      };
      blend(mapped.text_base, mapped.text);
      blend(mapped.data_base, mapped.data);
      if (vpn == (kUserBkBase >> kPageShift)) {
        // Bookkeeping page: preset LIMIT and BUF_START.
        uint32_t bk_off = kUserBkBase & (kPageBytes - 1);
        uint32_t limit = kUserTraceBufBase + kUserTraceBufBytes - kTraceSlackBytes;
        std::memcpy(page.data() + bk_off + kBkLimit, &limit, 4);
        uint32_t start = kUserTraceBufBase;
        std::memcpy(page.data() + bk_off + kBkBufStart, &start, 4);
      }
      return page;
    };

    uint32_t premap_start = static_cast<uint32_t>(mappings.size());
    auto premap = [&](uint32_t vpn, bool writable) {
      uint32_t pfn = frame_for(vpn);
      mappings.emplace_back(vpn | (writable ? (1u << 24) : 0), pfn);
      std::vector<uint8_t> content = page_bytes(vpn);
      uint32_t paddr = static_cast<uint32_t>(static_cast<size_t>(pfn) << kPageShift);
      std::memcpy(m.phys().data() + paddr, content.data(), kPageBytes);
      m.InvalidateDecodeRange(paddr, kPageBytes);
    };
    for (uint32_t i = 0; i < text_pages; ++i) {
      premap(text_vpn0 + i, false);
    }
    uint32_t image_data_pages = PagesFor(heap_start - orig.data_base);
    for (uint32_t i = 0; i < image_data_pages; ++i) {
      premap(data_vpn0 + i, true);
    }
    for (uint32_t i = 0; i < kUserStackPages; ++i) {
      premap(stack_vpn0 + i, true);
    }
    if (config.tracing) {
      for (uint32_t i = 0; i + 1 < trace_pages; ++i) {
        premap(trace_vpn0 + i, true);
      }
      premap(kUserBkBase >> kPageShift, true);
    }
    uint32_t premap_count = static_cast<uint32_t>(mappings.size()) - premap_start;

    // Boot parameter process entry.
    size_t e = kBootHeaderBytes + (pid - 1) * kBootProcStride;
    Put32(params, e + 0, mapped.entry);
    Put32(params, e + 4, kUserStackTop - 16);
    Put32(params, e + 8, layout.region_base_page + layout.data_slice_page);
    Put32(params, e + 12, layout.data_slice_pages);
    Put32(params, e + 16, heap_start);
    Put32(params, e + 20, orig.data_base + data_pages * kPageBytes);
    Put32(params, e + 24, premap_count);
    Put32(params, e + 28, premap_start);
    Put32(params, e + 32, PagesFor(heap_start - orig.data_base));  // heap alloc counter start
    if (config.tracing) {
      Put32(params, e + 36, mapped.SymbolAddress("bbtrace_bump"));
      Put32(params, e + 40, mapped.SymbolAddress("memtrace_bump"));
    }
    sys.layouts_.push_back(layout);
  };

  build_process(1, sys.workload_exe_, sys.workload_orig_);
  if (mach) {
    build_process(2, sys.server_exe_, server.orig);
  }

  // ---- Boot parameter header ----
  uint32_t trace_buf_phys = kKernelTraceBufAddr - kKseg0;
  WRL_CHECK(config.trace_buf_bytes <= kKernelTraceBufMaxBytes);
  Put32(params, 0, kBootMagic);
  Put32(params, 4, static_cast<uint32_t>(config.personality));
  Put32(params, 8, config.tracing ? 1 : 0);
  Put32(params, 12, config.clock_period);
  Put32(params, 16, nprocs);
  Put32(params, 20, trace_buf_phys);
  Put32(params, 24, config.trace_buf_bytes);
  Put32(params, 28, static_cast<uint32_t>(config.policy));
  Put32(params, 32, config.policy_mult);
  Put32(params, 36, mach ? 2 : 0);
  Put32(params, 40, kPtPoolPhysBase >> kPageShift);
  Put32(params, 44, kPtPoolPages);
  uint32_t mapping_phys = kBootParamsPhys + 0x8000;
  Put32(params, 48, mapping_phys);
  Put32(params, 52, config.analysis_cycles_per_word);

  m.PhysWrite(kBootParamsPhys, params);
  std::vector<uint8_t> map_bytes(mappings.size() * 8);
  for (size_t i = 0; i < mappings.size(); ++i) {
    Put32(map_bytes, i * 8, mappings[i].first);
    Put32(map_bytes, i * 8 + 4, mappings[i].second);
  }
  if (!map_bytes.empty()) {
    m.PhysWrite(mapping_phys, map_bytes);
  }

  // ---- Tracing transport ----
  if (config.tracing) {
    sys.ktrace_ptr_addr_ = sys.kernel_exe_.SymbolAddress("ktrace_ptr") - kKseg0;
    sys.ktrace_base_ = trace_buf_phys;
    SystemInstance* sys_ptr = &sys;
    m.set_hostcall_handler([sys_ptr](uint32_t value) -> uint32_t {
      if (value == 1) {
        sys_ptr->DrainTrace();
        return static_cast<uint32_t>(sys_ptr->config_.analysis_cycles_per_word) *
               static_cast<uint32_t>(sys_ptr->last_drain_words_);
      }
      return 0;
    });
  }

  return sys_owner;
}

void SystemInstance::DrainTrace() {
  uint32_t ptr = machine_->PhysRead32(ktrace_ptr_addr_);
  uint32_t base_v = ktrace_base_ + kKseg0;
  WRL_CHECK_MSG(ptr >= base_v, "kernel trace pointer below buffer");
  size_t words = (ptr - base_v) / 4;
  last_drain_words_ = words;
  trace_words_drained_ += words;
  ++trace_drains_;
  drain_words_hist_.Record(words);
  if (config_.events != nullptr) {
    config_.events->Instant("trace.drain", "trace", "words", words);
  }
  if (trace_sink_ && words > 0) {
    const uint32_t* data =
        reinterpret_cast<const uint32_t*>(machine_->phys().data() + ktrace_base_);
    trace_sink_(data, words);
  }
}

RunResult SystemInstance::Run(uint64_t max_instructions) {
  RunResult result = machine_->Run(max_instructions);
  if (config_.tracing) {
    DrainTrace();  // Final drain after halt.
  }
  return result;
}

void SystemInstance::RegisterStats(StatsRegistry& registry, const std::string& prefix) {
  machine_->RegisterStats(registry, prefix + "machine.");
  // Kernel stats-block words live in simulated memory; read them lazily.
  registry.AddGauge(prefix + "kernel.utlb_misses",
                    [this] { return static_cast<double>(UtlbMissCount()); });
  registry.AddGauge(prefix + "kernel.tlb_dropins",
                    [this] { return static_cast<double>(TlbDropins()); });
  registry.AddGauge(prefix + "kernel.ktlb_refills",
                    [this] { return static_cast<double>(KtlbRefills()); });
  registry.AddGauge(prefix + "kernel.context_switches",
                    [this] { return static_cast<double>(ContextSwitches()); });
  registry.AddGauge(prefix + "kernel.analysis_switches",
                    [this] { return static_cast<double>(AnalysisSwitches()); });
  if (config_.tracing) {
    registry.AddCounter(prefix + "trace.words_drained", &trace_words_drained_);
    registry.AddCounter(prefix + "trace.drains", &trace_drains_);
    registry.AddHistogram(prefix + "trace.drain_words", &drain_words_hist_);
    registry.AddGauge(prefix + "trace.buffer_capacity_words",
                      [this] { return static_cast<double>(config_.trace_buf_bytes / 4); });
    registry.AddGauge(prefix + "epoxie.kernel_text_growth",
                      [this] { return kernel_text_growth_; });
    registry.AddGauge(prefix + "epoxie.workload_text_growth",
                      [this] { return workload_text_growth_; });
    registry.AddCounter(prefix + "epoxie.elided_ra_saves", &elided_ra_saves_);
    registry.AddCounter(prefix + "epoxie.scavenged_windows", &scavenged_windows_);
    if (config_.personality == Personality::kMach) {
      registry.AddGauge(prefix + "epoxie.server_text_growth",
                        [this] { return server_text_growth_; });
    }
  }
}

std::string SystemInstance::ConsoleOutput() const { return machine_->console().output(); }

uint32_t SystemInstance::StatsWord(uint32_t offset) const {
  return machine_->PhysRead32(kStatsPhys + offset);
}

uint64_t SystemInstance::ProcessCycles(uint32_t pid) const {
  uint32_t start = StatsWord(32 + (pid - 1) * 16 + 0);
  uint32_t end = StatsWord(32 + (pid - 1) * 16 + 4);
  return end >= start ? end - start : 0;
}

uint32_t SystemInstance::ProcessExitCode(uint32_t pid) const {
  return StatsWord(32 + (pid - 1) * 16 + 8);
}

uint32_t SystemInstance::TranslateUserPage(uint32_t pid, uint32_t vpn,
                                           uint32_t mult_override) const {
  WRL_CHECK(pid >= 1 && pid <= layouts_.size());
  const ProcLayout& layout = layouts_[pid - 1];
  uint32_t slice_base;
  uint32_t index;
  uint32_t slice_pages;
  if (vpn >= layout.text_vpn0 && vpn < layout.text_vpn0 + (layout.region_pages - layout.text_slice_page)) {
    slice_base = layout.text_slice_page;
    index = vpn - layout.text_vpn0;
    slice_pages = layout.region_pages - layout.text_slice_page;
  } else if (vpn == (kUserBkBase >> kPageShift)) {
    slice_base = layout.trace_slice_page;
    index = (layout.text_slice_page - layout.trace_slice_page) - 1;
    slice_pages = layout.text_slice_page - layout.trace_slice_page;
  } else if (vpn >= layout.trace_vpn0 &&
             vpn < layout.trace_vpn0 + (layout.text_slice_page - layout.trace_slice_page) - 1) {
    slice_base = layout.trace_slice_page;
    index = vpn - layout.trace_vpn0;
    slice_pages = layout.text_slice_page - layout.trace_slice_page;
  } else if (vpn >= layout.stack_vpn0 && vpn < layout.stack_vpn0 + kUserStackPages) {
    slice_base = layout.stack_slice_page;
    index = vpn - layout.stack_vpn0;
    slice_pages = kUserStackPages;
  } else if (vpn >= layout.data_vpn0 && vpn < layout.data_vpn0 + layout.data_slice_pages) {
    slice_base = layout.data_slice_page;
    index = vpn - layout.data_vpn0;
    slice_pages = layout.data_slice_pages;
  } else {
    // Unknown page (should not happen for referenced pages): identity-ish.
    return layout.region_base_page;
  }
  if (config_.policy == PagePolicy::kScrambled) {
    uint32_t mult = mult_override != 0 ? mult_override : config_.policy_mult;
    index = static_cast<uint32_t>((static_cast<uint64_t>(index) * mult) % slice_pages);
  }
  return layout.region_base_page + slice_base + index;
}

std::pair<uint32_t, uint32_t> SystemInstance::IdleRange() const {
  uint32_t lo = kernel_exe_.SymbolAddress("idle_loop");
  uint32_t hi = kernel_exe_.SymbolAddress("idle_exit");
  return {lo, hi};
}

}  // namespace wrl
