#include "kernel/kernel_asm.h"

#include <initializer_list>

#include "kernel/kernel_asm_internal.h"
#include "kernel/kernel_config.h"
#include "support/error.h"
#include "support/strings.h"
#include "trace/abi.h"

namespace wrl {

std::string SubstituteKernelConstants(std::string text) {
  struct Placeholder {
    const char* name;
    uint32_t value;
  };
  const Placeholder table[] = {
      {"%KSTACKTOP%", kKernelStackTop},
      {"%UBUF%", kUserTraceBufBase},
      {"%UBK%", kUserBkBase},
      {"%MKENTER%", MakeMarker(kMarkKernelEnter)},
      {"%MKEXIT%", MakeMarker(kMarkKernelExit)},
      {"%MKCTXSW%", MakeMarker(kMarkContextSwitch)},
      {"%MKANALYSIS%", MakeMarker(kMarkAnalysis)},
      {"%BKLIMIT%", kBkLimit},
      {"%BKBUFSTART%", kBkBufStart},
      {"%DEVBASE%", kDeviceVirtBase},
      {"%SCRATCH%", kKernelScratchTraceAddr},
      {"%SCRATCHLIM%", kKernelScratchTraceAddr + kKernelScratchTraceBytes - 256},
      {"%BOOTPARAMS%", kKseg0 + kBootParamsPhys},
      {"%STATS%", kKseg0 + kStatsPhys},
      {"%STATSMAGIC%", kStatsMagic},
      {"%BOOTMAGIC%", kBootMagic},
      {"%KSEG2%", kKseg2},
      {"%TRAPFLUSH%", kTrapTraceFlush},
      {"%SLACK%", kTraceSlackBytes},
  };
  for (const Placeholder& p : table) {
    size_t pos;
    while ((pos = text.find(p.name)) != std::string::npos) {
      text.replace(pos, std::string(p.name).size(), StrFormat("0x%x", p.value));
    }
  }
  // Any surviving %UPPERCASE% token is an unresolved placeholder.
  for (size_t pos = text.find('%'); pos != std::string::npos; pos = text.find('%', pos + 1)) {
    size_t end = text.find('%', pos + 1);
    if (end != std::string::npos && end - pos <= 16) {
      std::string token = text.substr(pos + 1, end - pos - 1);
      bool placeholder = !token.empty();
      for (char c : token) {
        if (c < 'A' || c > 'Z') {
          placeholder = false;
        }
      }
      WRL_CHECK_MSG(!placeholder, "unresolved kernel asm placeholder %" + token + "%");
    }
  }
  return text;
}

namespace {

// Registers saved in a nested exception frame (96 bytes on the kernel
// stack): at, v0, v1, a0-a3, t0-t9, ra at offsets 0..68, then hi, lo, epc,
// status, cause at 72..88.
std::string SaveNestedFrame() {
  std::string s;
  const unsigned regs[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 24, 25, 31};
  unsigned off = 0;
  for (unsigned r : regs) {
    s += StrFormat("        sw   $%u, %u($sp)\n", r, off);
    off += 4;
  }
  return s;
}

std::string RestoreNestedFrame() {
  std::string s;
  const unsigned regs[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 24, 25, 31};
  unsigned off = 0;
  for (unsigned r : regs) {
    s += StrFormat("        lw   $%u, %u($sp)\n", r, off);
    off += 4;
  }
  return s;
}

// PCB save/restore of every register except r0/k0/k1 (slot = 4 * regnum).
std::string SavePcbRegs() {
  std::string s;
  for (unsigned r = 1; r < 32; ++r) {
    if (r != 26 && r != 27) {
      s += StrFormat("        sw   $%u, %u($k0)\n", r, r * 4);
    }
  }
  return s;
}

std::string RestorePcbRegs() {
  std::string s;
  for (unsigned r = 1; r < 32; ++r) {
    if (r != 26 && r != 27) {
      s += StrFormat("        lw   $%u, %u($k0)\n", r, r * 4);
    }
  }
  return s;
}

}  // namespace

std::string KernelCoreAsm() {
  std::string s;

  // ===== Vectors =========================================================
  s += R"(
        .text
        .notrace_on
        .globl _start
# ===== UTLB refill vector (0x80000000) ==================================
# Saves EPC to memory first so a nested KTLB miss on the page-table load
# (the kseg2 double fault) can be serviced through the general vector and
# the load simply retried.  Maintains the kernel's user-TLB miss counter
# (Table 3's measured side).  Never traced: the analysis program simulates
# the TLB of the *original* binary instead (paper 4.1).
_start:
utlb_vec:
        mfc0 $k0, $epc
        la   $k1, kstat
        sw   $k0, 0($k1)         # KST_EPC
        lw   $k0, 4($k1)
        addiu $k0, $k0, 1
        sw   $k0, 4($k1)         # KST_UCOUNT++
        mfc0 $k0, $context
        lw   $k0, 0($k0)         # PT load; may KTLB-miss into gen_vec
        mtc0 $k0, $entrylo
        tlbwr
        lw   $k1, 0($k1)         # reload saved EPC (immune to nesting)
        jr   $k1
        rfe
        .align 128
gen_vec:                          # 0x80000080
        j    gen_stub
        nop
        .align 512
reset_vec:                        # 0x80000200
        j    boot_main
        nop

# ===== General exception entry stub ======================================
gen_stub:
        mfc0 $k0, $status
        andi $k0, $k0, 0x8       # KUp: came from user mode?
        beq  $k0, $zero, nested_entry
        nop

# --- Entry from user: full context save into the current PCB ------------
user_entry:
        la   $k0, cur_pcb
        lw   $k0, 0($k0)
)";
  s += SavePcbRegs();
  s += R"(
        mfhi $k1
        sw   $k1, 232($k0)
        mflo $k1
        sw   $k1, 236($k0)
        mfc0 $k1, $epc
        sw   $k1, 128($k0)
        mfc0 $k1, $status
        sw   $k1, 132($k0)
        mfc0 $k1, $cause
        sw   $k1, 240($k0)       # saved NOW: the drain loop's own UTLB
                                 # misses clobber Cause/BadVAddr
        li   $sp, %KSTACKTOP%
        li   $k1, 1
        la   $k0, knest
        sw   $k1, 0($k0)
        # Drain the per-process trace buffer into the in-kernel buffer —
        # this happens on *every* kernel entry, preserving the interleaving
        # of trace from all sources (paper 3.1).
        la   $k0, tracing_on
        lw   $k0, 0($k0)
        beq  $k0, $zero, ue_dispatch
        nop
        la   $k0, cur_pcb
        lw   $k0, 0($k0)
        # Mid-pair window: if the exception hit exactly between a support
        # routine's trace store and its pointer bump, account the written
        # word and skip the bump on resume.
        lw   $t0, 128($k0)       # saved epc
        lw   $t1, 216($k0)       # user bbtrace_bump address
        beq  $t0, $t1, ue_bump
        nop
        lw   $t1, 220($k0)       # user memtrace_bump address
        bne  $t0, $t1, ue_nobump
        nop
ue_bump:
        lw   $t1, 96($k0)
        addiu $t1, $t1, 4
        sw   $t1, 96($k0)        # saved t8 covers the written word
        addiu $t0, $t0, 4
        sw   $t0, 128($k0)       # resume past the bump instruction
ue_nobump:
        lw   $t0, 96($k0)        # saved t8 = user trace pointer
        li   $t1, %UBUF%
        la   $t2, ktrace_ptr
        lw   $t3, 0($t2)
        la   $t4, ktrace_limit_v
        lw   $t4, 0($t4)
        subu $t5, $t0, $t1
        addu $t6, $t3, $t5
        addiu $t6, $t6, 64
        sltu $t6, $t4, $t6
        beq  $t6, $zero, ue_roomok
        nop
        jal  analysis_drain      # make room first (mode switch)
        nop
        la   $t2, ktrace_ptr
        lw   $t3, 0($t2)
        la   $k0, cur_pcb
        lw   $k0, 0($k0)
        lw   $t0, 96($k0)
        li   $t1, %UBUF%
ue_roomok:
        beq  $t1, $t0, ue_drained
        nop
ue_drain_loop:
        lw   $t5, 0($t1)         # user VA load; UTLB misses are fine here
        sw   $t5, 0($t3)
        addiu $t1, $t1, 4
        bne  $t1, $t0, ue_drain_loop
        addiu $t3, $t3, 4
ue_drained:
        # k0/k1 are dead: the drain loop's user loads take UTLB misses and
        # the refill handler owns those registers.  Reload the PCB.
        la   $k0, cur_pcb
        lw   $k0, 0($k0)
        li   $t1, %UBUF%
        sw   $t1, 96($k0)        # reset the user's saved trace pointer
        li   $t5, %MKENTER%
        sw   $t5, 0($t3)
        lw   $t6, 140($k0)       # pid
        sll  $t6, $t6, 8
        lw   $t5, 240($k0)       # the cause saved at entry, not the live one
        srl  $t5, $t5, 2
        andi $t5, $t5, 31
        or   $t6, $t6, $t5
        sw   $t6, 4($t3)
        addiu $t3, $t3, 8
        sw   $t3, 0($t2)
        la   $t7, bk_area        # kernel tracing registers
        move $t8, $t3
ue_dispatch:
        la   $k0, cur_pcb
        lw   $k0, 0($k0)
        lw   $a0, 240($k0)       # dispatch on the *saved* cause
        srl  $a0, $a0, 2
        andi $a0, $a0, 31
        j    kdispatch
        nop

# --- Entry from kernel (nested exception) -------------------------------
nested_entry:
        # The double TLB miss: if the interrupted instruction is inside the
        # UTLB handler, sp may still be the *user's* stack pointer and no
        # frame can be pushed.  Service the kseg2 refill with k0/k1 only,
        # restore the Context register the nested exception clobbered
        # (BadVAddr holds exactly the original Context value), and resume
        # through the retry stub.
        mfc0 $k0, $epc
        lui  $k1, 0x8000
        subu $k0, $k0, $k1
        sltiu $k0, $k0, 0x80
        beq  $k0, $zero, ne_frame
        nop
double_miss:
        mfc0 $k0, $badvaddr
        srl  $k0, $k0, 12
        lui  $k1, 0xc000
        srl  $k1, $k1, 12
        subu $k0, $k0, $k1       # kseg2 page index
        sll  $k0, $k0, 2
        la   $k1, kptdir
        addu $k0, $k1, $k0
        lw   $k0, 0($k0)
        andi $k1, $k0, 0x200     # valid?
        bne  $k1, $zero, dm_fill
        nop
        li   $k0, 0xbfd00004
        li   $k1, 0xdeaf         # unmapped kseg2 page during double miss
        sw   $k1, 0($k0)
        nop
dm_fill:
        mtc0 $k0, $entrylo       # EntryHi holds the faulting kseg2 page
        tlbwr
        la   $k1, kstat
        lw   $k0, 12($k1)
        addiu $k0, $k0, 1
        sw   $k0, 12($k1)        # KST_KTLB++
        mfc0 $k0, $badvaddr
        mtc0 $k0, $context       # restore Context for the retried refill
        rfe                      # pop the nested exception level
        j    utlb_retry
        nop
ne_frame:
        addiu $sp, $sp, -96
)";
  s += SaveNestedFrame();
  s += R"(
        mfhi $k1
        sw   $k1, 72($sp)
        mflo $k1
        sw   $k1, 76($sp)
        mfc0 $k1, $epc
        sw   $k1, 80($sp)
        mfc0 $k1, $status
        sw   $k1, 84($sp)
        mfc0 $k1, $cause
        sw   $k1, 88($sp)
        la   $k0, knest
        lw   $k1, 0($k0)
        addiu $k1, $k1, 1
        sw   $k1, 0($k0)
        # A break from kernel mode is bbtrace reporting a full in-kernel
        # buffer; it must be handled entirely on the untraced path.
        mfc0 $k0, $cause
        srl  $k0, $k0, 2
        andi $k0, $k0, 31
        addiu $k1, $k0, -9       # Exc::kBp
        beq  $k1, $zero, kflush
        nop
        la   $k1, tracing_on
        lw   $k1, 0($k1)
        beq  $k1, $zero, ne_dispatch
        nop
        la   $k1, suspended
        lw   $k1, 0($k1)
        bne  $k1, $zero, ne_suspended
        nop
        # Mid-pair window in the kernel's own support routines: account the
        # written word and skip the bump on resume (see bbtrace_bump).
        lw   $k1, 80($sp)        # interrupted epc
        la   $k0, bbtrace_bump
        beq  $k1, $k0, ne_bump
        nop
        la   $k0, memtrace_bump
        bne  $k1, $k0, ne_nobump
        nop
ne_bump:
        addiu $t8, $t8, 4
        lw   $k0, 80($sp)
        addiu $k0, $k0, 4
        sw   $k0, 80($sp)
ne_nobump:
        lw   $k0, 88($sp)        # saved cause (the bump check used k0)
        srl  $k0, $k0, 2
        andi $k0, $k0, 31
        la   $k1, ktrace_ptr
        sw   $t8, 0($k1)         # sync the interrupted context's pointer
        li   $t0, %MKENTER%
        sw   $t0, 0($t8)
        li   $t0, 0xff00
        or   $t0, $t0, $k0
        sw   $t0, 4($t8)
        addiu $t8, $t8, 8
        sw   $t8, 0($k1)
        la   $t7, bk_area
        b    ne_dispatch
        nop
ne_suspended:
        la   $k1, kscratch_ptr   # analysis mode: discard to scratch
        lw   $t8, 0($k1)
        la   $t7, bk_area
ne_dispatch:
        lw   $a0, 88($sp)        # exception code from the saved cause
        srl  $a0, $a0, 2
        andi $a0, $a0, 31
        j    kdispatch
        nop

# ===== Exception exit =====================================================
        .globl exc_exit
exc_exit:
        la   $k0, knest
        lw   $k1, 0($k0)
        addiu $k1, $k1, -1
        sw   $k1, 0($k0)
        bne  $k1, $zero, nested_exit
        nop
user_exit:
        la   $k0, tracing_on
        lw   $k0, 0($k0)
        beq  $k0, $zero, ux_notrace
        nop
        la   $k0, cur_pcb
        lw   $k0, 0($k0)
        li   $k1, %MKEXIT%
        sw   $k1, 0($t8)
        lw   $k1, 140($k0)
        sw   $k1, 4($t8)
        addiu $t8, $t8, 8
        la   $k1, ktrace_ptr
        sw   $t8, 0($k1)
ux_notrace:
        la   $k0, cur_pcb
        lw   $k0, 0($k0)
        lw   $k1, 144($k0)       # asid
        sll  $k1, $k1, 6
        mtc0 $k1, $entryhi
        lw   $k1, 140($k0)       # pid
        sll  $k1, $k1, 21
        lui  $at, 0xc000
        or   $k1, $k1, $at
        mtc0 $k1, $context       # PTEBase = kseg2 + pid*2MB
        lw   $k1, 232($k0)
        mthi $k1
        lw   $k1, 236($k0)
        mtlo $k1
        lw   $k1, 132($k0)
        mtc0 $k1, $status
)";
  s += RestorePcbRegs();
  s += R"(
        lw   $k1, 128($k0)
        jr   $k1
        rfe

nested_exit:
        la   $k0, tracing_on
        lw   $k0, 0($k0)
        beq  $k0, $zero, nx_restore
        nop
        la   $k0, suspended
        lw   $k0, 0($k0)
        beq  $k0, $zero, nx_marker
        nop
        la   $k0, kscratch_ptr   # suspended: park the scratch pointer
        sw   $t8, 0($k0)
        b    nx_restore
        nop
nx_marker:
        li   $k1, %MKEXIT%
        sw   $k1, 0($t8)
        li   $k1, 0xff
        sw   $k1, 4($t8)
        addiu $t8, $t8, 8
        la   $k0, ktrace_ptr
        sw   $t8, 0($k0)
nx_restore:
)";
  s += RestoreNestedFrame();
  s += R"(
        lw   $k1, 72($sp)
        mthi $k1
        lw   $k1, 76($sp)
        mtlo $k1
        lw   $k1, 84($sp)
        mtc0 $k1, $status
        # Reload the kernel trace pointer from the authoritative global:
        # the stacked copy is stale if the handler generated trace.
        la   $k0, tracing_on
        lw   $k0, 0($k0)
        beq  $k0, $zero, nx_go
        nop
        la   $k0, suspended
        lw   $k0, 0($k0)
        bne  $k0, $zero, nx_go
        nop
        la   $k0, ktrace_ptr
        lw   $t8, 0($k0)
nx_go:
        lw   $k1, 80($sp)
        addiu $sp, $sp, 96
        jr   $k1
        rfe

# ===== write_marker (called from traced kernel code) =====================
# a0 = marker word, a1 = operand.  Untraced: traced code cannot touch the
# real t8 (epoxie shadows the stolen registers), so marker emission happens
# here on its behalf.
        .globl write_marker
write_marker:
        la   $k0, tracing_on
        lw   $k0, 0($k0)
        beq  $k0, $zero, wm_done
        nop
        la   $k0, suspended
        lw   $k0, 0($k0)
        bne  $k0, $zero, wm_done
        nop
        sw   $a0, 0($t8)
        sw   $a1, 4($t8)
        addiu $t8, $t8, 8
        la   $k0, ktrace_ptr
        sw   $t8, 0($k0)
wm_done:
        jr   $ra
        nop

# ===== utlb_retry: resume a double-faulted UTLB refill ===================
# When the UTLB handler's page-table load itself missed in kseg2, the
# nested handler mapped the PT page, restored the Context register, and
# redirected the return here: redo the refill with fresh registers (k0/k1
# were clobbered by the nested exception stub) and return to the original
# user EPC, which the UTLB handler had already saved to memory.
utlb_retry:
        mfc0 $k0, $context
        lw   $k0, 0($k0)
        mtc0 $k0, $entrylo
        # EntryHi still names the *kseg2* page of the nested fault; rebuild
        # the original user page from Context (bits 20:2 are the VPN).
        mfc0 $k0, $context
        sll  $k0, $k0, 11
        srl  $k0, $k0, 11        # uvpn << 2
        sll  $k0, $k0, 10        # user page base (vpn << 12)
        mfc0 $k1, $entryhi
        andi $k1, $k1, 0xfc0     # keep the ASID field
        or   $k0, $k0, $k1
        mtc0 $k0, $entryhi
        tlbwr
        la   $k1, kstat
        lw   $k1, 0($k1)
        jr   $k1
        rfe

# ===== kflush: in-kernel buffer filled (break from kernel bbtrace) ======
kflush:
        la   $k0, ktrace_ptr
        sw   $t8, 0($k0)         # t8 is the truth at the break point
        jal  analysis_drain
        nop
        lw   $k1, 80($sp)
        addiu $k1, $k1, 4        # resume after the break instruction
        sw   $k1, 80($sp)
        la   $k0, knest
        lw   $k1, 0($k0)
        addiu $k1, $k1, -1
        sw   $k1, 0($k0)
)";
  s += RestoreNestedFrame();
  s += R"(
        lw   $k1, 72($sp)
        mthi $k1
        lw   $k1, 76($sp)
        mtlo $k1
        lw   $k1, 84($sp)
        mtc0 $k1, $status
        la   $k0, ktrace_ptr
        lw   $t8, 0($k0)         # fresh buffer
        lw   $k1, 80($sp)
        addiu $sp, $sp, 96
        jr   $k1
        rfe

# ===== analysis_drain: switch to trace-analysis mode =====================
        .globl analysis_drain
analysis_drain:
        addiu $sp, $sp, -16
        sw   $ra, 12($sp)
        sw   $t0, 8($sp)
        sw   $t1, 4($sp)
        sw   $t2, 0($sp)
        li   $t0, 1
        la   $t1, suspended
        sw   $t0, 0($t1)
        la   $t1, bk_area        # bbtrace spills to scratch while suspended
        li   $t0, %SCRATCHLIM%
        sw   $t0, %BKLIMIT%($t1)
        li   $t0, %SCRATCH%
        la   $t1, kscratch_ptr
        sw   $t0, 0($t1)
        la   $t0, kstat
        lw   $t1, 16($t0)
        addiu $t1, $t1, 1
        sw   $t1, 16($t0)        # analysis mode switches++
        li   $t0, %DEVBASE%
        li   $t1, 1
        sw   $t1, 0x40($t0)      # hostcall(1): analysis program drains
        lw   $t1, 0x40($t0)      # reply: analysis cost in cycles
        lw   $t2, 0x08($t0)      # CYCLE_LO
        addu $t2, $t2, $t1
        mfc0 $t1, $status
        ori  $t1, $t1, 1
        mtc0 $t1, $status        # interrupts on: completions become "dirt"
ad_wait:
        lw   $t1, 0x08($t0)
        sltu $t1, $t1, $t2
        bne  $t1, $zero, ad_wait
        nop
        mfc0 $t1, $status
        addiu $t0, $zero, -2
        and  $t1, $t1, $t0
        mtc0 $t1, $status        # interrupts off again
        la   $t1, suspended
        sw   $zero, 0($t1)
        la   $t1, bk_area
        la   $t0, ktrace_limit_v
        lw   $t0, 0($t0)
        sw   $t0, %BKLIMIT%($t1)
        la   $t0, ktrace_base_v
        lw   $t0, 0($t0)
        la   $t1, ktrace_ptr
        sw   $t0, 0($t1)
        lw   $ra, 12($sp)
        lw   $t0, 8($sp)
        lw   $t1, 4($sp)
        lw   $t2, 0($sp)
        jr   $ra
        addiu $sp, $sp, 16
)";

  // ===== Boot ============================================================
  s += R"(
# ===== Boot (untraced) ====================================================
boot_main:
        li   $sp, %KSTACKTOP%
        # Boot runs at nesting depth 1: the kseg2 page-table stores below
        # take KTLB exceptions that must return via the nested path.
        li   $t0, 1
        la   $t1, knest
        sw   $t0, 0($t1)
        # In the instrumented build, boot-time exceptions reach traced
        # kernel code whose block headers write trace unconditionally.
        # Point the trace registers at the scratch (discard) area until the
        # real buffer is armed at the end of boot.
        la   $t7, bk_area
        li   $t8, %SCRATCH%
        li   $t0, %SCRATCHLIM%
        sw   $t0, %BKLIMIT%($t7)
        li   $t0, %SCRATCH%
        la   $t1, kscratch_ptr
        sw   $t0, 0($t1)
        li   $s0, %BOOTPARAMS%   # s0 = boot parameter block
        lw   $t0, 0($s0)
        li   $t1, %BOOTMAGIC%
        beq  $t0, $t1, boot_ok
        nop
        li   $t0, %DEVBASE%
        li   $t1, 0xbadb
        sw   $t1, 4($t0)         # halt: bad boot block
        nop
boot_ok:
        lw   $t0, 4($s0)
        la   $t1, personality
        sw   $t0, 0($t1)
        # NOTE: tracing_on stays 0 until the very end of boot — exceptions
        # taken during boot (kseg2 PT stores) must not touch trace state.
        lw   $t0, 16($s0)
        la   $t1, nprocs
        sw   $t0, 0($t1)
        lw   $t0, 28($s0)
        la   $t1, page_policy
        sw   $t0, 0($t1)
        lw   $t0, 32($s0)
        la   $t1, policy_mult
        sw   $t0, 0($t1)
        lw   $t0, 36($s0)
        la   $t1, server_pid
        sw   $t0, 0($t1)
        lw   $t0, 52($s0)
        la   $t1, analysis_cost
        sw   $t0, 0($t1)
        # PT frame pool.
        lw   $t0, 40($s0)
        sll  $t0, $t0, 12
        la   $t1, next_pt_frame
        sw   $t0, 0($t1)
        lw   $t1, 44($s0)
        sll  $t1, $t1, 12
        addu $t1, $t0, $t1
        la   $t0, pt_pool_end
        sw   $t1, 0($t0)
        # Kernel trace buffer.
        lw   $t0, 20($s0)        # phys base
        lui  $t1, 0x8000
        or   $t0, $t0, $t1       # kseg0 address
        la   $t1, ktrace_base_v
        sw   $t0, 0($t1)
        la   $t1, ktrace_ptr
        sw   $t0, 0($t1)
        lw   $t1, 24($s0)        # bytes
        addu $t1, $t0, $t1
        addiu $t1, $t1, -%SLACK%
        la   $t2, ktrace_limit_v
        sw   $t1, 0($t2)
        la   $t2, bk_area
        sw   $t0, %BKBUFSTART%($t2)
        # (BK LIMIT stays at the scratch limit until boot_go arms tracing.)
        # Load the directory sector with a polled read (interrupts off).
        la   $a0, fs_dir
        li   $a1, 0              # sector 0
        li   $a2, 1
        jal  boot_polled_read
        nop
        # Build every process from its boot entry.
        li   $s1, 0              # index
boot_proc_loop:
        la   $t0, nprocs
        lw   $t0, 0($t0)
        sltu $t1, $s1, $t0
        beq  $t1, $zero, boot_procs_done
        nop
        # s2 = boot entry, s3 = pcb.
        sll  $t0, $s1, 6
        addiu $t0, $t0, 64
        addu $s2, $s0, $t0
        sll  $t0, $s1, 8         # pcb stride 256
        la   $s3, pcb_table
        addu $s3, $s3, $t0
        addiu $t0, $s1, 1
        sw   $t0, 140($s3)       # pid = index + 1
        sw   $t0, 144($s3)       # asid = pid
        lw   $t0, 0($s2)
        sw   $t0, 128($s3)       # epc = entry
        lw   $t0, 4($s2)
        sw   $t0, 116($s3)       # sp slot (29*4)
        li   $t0, 0xc00c         # IM6|IM7 | KUp|IEp
        sw   $t0, 132($s3)       # saved status: rfe drops to user, IE on
        lw   $t0, 8($s2)
        sw   $t0, 160($s3)       # region base page
        lw   $t0, 12($s2)
        sw   $t0, 164($s3)       # region pages
        lw   $t0, 16($s2)
        sw   $t0, 152($s3)       # brk = heap start
        lw   $t0, 20($s2)
        sw   $t0, 156($s3)       # heap limit
        lw   $t0, 32($s2)
        sw   $t0, 168($s3)       # heap pages used
        # Tracing registers for a traced process.
        lw   $t0, 8($s0)
        beq  $t0, $zero, boot_premap
        nop
        li   $t0, %UBK%
        sw   $t0, 60($s3)        # t7 slot (15*4)
        li   $t0, %UBUF%
        sw   $t0, 96($s3)        # t8 slot (24*4)
        lw   $t0, 36($s2)
        sw   $t0, 216($s3)       # user bbtrace_bump address
        lw   $t0, 40($s2)
        sw   $t0, 220($s3)       # user memtrace_bump address
boot_premap:
        # (The traced-process register check above read the boot parameter
        # directly; the global is still off.)
        # Install the premapped pages: entries are (vpn|flags<<24, pfn).
        lw   $s4, 24($s2)        # count
        lw   $s5, 28($s2)        # start index
        lw   $t0, 48($s0)        # mapping array phys
        lui  $t1, 0x8000
        or   $t0, $t0, $t1
        sll  $t1, $s5, 3
        addu $s5, $t0, $t1       # s5 = first entry address
boot_map_loop:
        beq  $s4, $zero, boot_map_done
        nop
        lw   $a1, 0($s5)         # vpn | flags<<24
        lw   $a2, 4($s5)         # pfn
        lw   $a0, 140($s3)       # pid
        jal  map_page
        nop
        addiu $s5, $s5, 8
        b    boot_map_loop
        addiu $s4, $s4, -1
boot_map_done:
        # Ready the process.
        li   $t0, 1
        sw   $t0, 136($s3)
        move $a0, $s3
        jal  ready_enqueue_raw
        nop
        b    boot_proc_loop
        addiu $s1, $s1, 1
boot_procs_done:
        # Program the clock and global status (IM bits armed; IE off until
        # a process runs or the idle loop opens up).
        lw   $t0, 12($s0)
        li   $t1, %DEVBASE%
        sw   $t0, 0x10($t1)
        li   $t0, 0xc000
        mtc0 $t0, $status
        li   $t0, 1
        la   $t1, knest
        sw   $t0, 0($t1)
        # Kernel tracing registers live from here on.
        lw   $t0, 8($s0)
        beq  $t0, $zero, boot_go
        nop
        la   $t7, bk_area
        la   $t0, ktrace_ptr
        lw   $t8, 0($t0)
        la   $t0, ktrace_limit_v
        lw   $t0, 0($t0)
        sw   $t0, %BKLIMIT%($t7)  # arm the real in-kernel buffer
        li   $t0, 1
        la   $t1, tracing_on
        sw   $t0, 0($t1)
boot_go:
        j    schedule
        nop

# --- boot_polled_read: a0 = kseg0 buffer, a1 = sector, a2 = count --------
boot_polled_read:
        li   $t0, %DEVBASE%
        sw   $a1, 0x20($t0)
        lui  $t1, 0x8000
        xor  $t2, $a0, $t1       # phys address of the buffer
        sw   $t2, 0x24($t0)
        sw   $a2, 0x28($t0)
        li   $t1, 1
        sw   $t1, 0x2c($t0)      # CMD = read
bpr_wait:
        lw   $t1, 0x30($t0)
        li   $t2, 2
        bne  $t1, $t2, bpr_wait
        nop
        sw   $zero, 0x34($t0)    # ack
        jr   $ra
        nop

# --- map_page: a0 = pid, a1 = vpn | flags<<24, a2 = pfn ------------------
# Ensures the kseg2 page-table page exists (allocating PT frames from the
# boot pool and registering them in kptdir), then writes the PTE through
# kseg2 — which exercises the KTLB path from the very first boot mapping.
# Untraced: called from boot before tracing is initialized.
        .globl map_page
map_page:
        addiu $sp, $sp, -8
        sw   $ra, 4($sp)
        srl  $t0, $a1, 24        # flags
        lui  $t1, 0x00ff
        ori  $t1, $t1, 0xffff
        and  $a1, $a1, $t1       # vpn
        # PTE value: pfn<<12 | V | (writable ? D : 0).
        sll  $t2, $a2, 12
        ori  $t2, $t2, 0x200     # V
        andi $t3, $t0, 1
        beq  $t3, $zero, mp_ro
        nop
        ori  $t2, $t2, 0x400     # D
mp_ro:
        # PTE address = kseg2 + pid*2MB + vpn*4.
        sll  $t3, $a0, 21
        lui  $t4, 0xc000
        or   $t3, $t3, $t4
        sll  $t4, $a1, 2
        addu $t3, $t3, $t4       # t3 = PTE vaddr (kseg2)
        # Ensure the PT page behind it exists in kptdir.
        move $a1, $t3
        jal  ensure_kseg2_page
        nop
        sw   $t2, 0($t3)         # the store may KTLB-miss; that's the point
        lw   $ra, 4($sp)
        jr   $ra
        addiu $sp, $sp, 8

# --- ensure_kseg2_page: a1 = kseg2 vaddr --------------------------------
# Allocates and zeroes a PT frame for the surrounding kseg2 page if kptdir
# has none yet.
ensure_kseg2_page:
        srl  $t5, $a1, 12
        lui  $t6, 0xc000
        srl  $t6, $t6, 12
        subu $t5, $t5, $t6       # kseg2 page index
        sll  $t5, $t5, 2
        la   $t6, kptdir
        addu $t5, $t6, $t5       # directory slot
        lw   $t6, 0($t5)
        bne  $t6, $zero, ekp_done
        nop
        # Allocate a PT frame.
        la   $t6, next_pt_frame
        lw   $t4, 0($t6)
        la   $t0, pt_pool_end
        lw   $t0, 0($t0)
        sltu $t0, $t4, $t0
        bne  $t0, $zero, ekp_have_frame
        nop
        li   $t0, %DEVBASE%
        li   $t4, 0xdeaf
        sw   $t4, 4($t0)         # halt: out of PT frames
        nop
ekp_have_frame:
        addiu $t0, $t4, 4096
        sw   $t0, 0($t6)
        # Zero the frame through kseg0.
        lui  $t6, 0x8000
        or   $t6, $t6, $t4       # kseg0 address of the frame
        addiu $t0, $t6, 4096
ekp_zero:
        sw   $zero, 0($t6)
        addiu $t6, $t6, 4
        bne  $t6, $t0, ekp_zero
        nop
        # kptdir entry: pfn | D | V | G.
        srl  $t0, $t4, 12
        sll  $t0, $t0, 12
        ori  $t0, $t0, 0x700     # D|V|G
        sw   $t0, 0($t5)
ekp_done:
        jr   $ra
        nop
        .notrace_off
)";

  // ===== Traced dispatch, scheduler, interrupts ==========================
  s += R"(
# ===== Dispatcher (traced kernel code begins here) =======================
# a0 = exception code.  knest distinguishes user entries (1) from nested
# kernel exceptions (>1).
        .globl kdispatch
kdispatch:
        li   $t0, 0              # Exc::kInt
        beq  $a0, $t0, int_dispatch
        nop
        li   $t0, 8              # Exc::kSys
        beq  $a0, $t0, sys_dispatch
        nop
        li   $t0, 9              # Exc::kBp (user bbtrace flush)
        beq  $a0, $t0, bp_dispatch
        nop
        li   $t0, 2              # Exc::kTlbL
        beq  $a0, $t0, tlb_dispatch
        nop
        li   $t0, 3              # Exc::kTlbS
        beq  $a0, $t0, tlb_dispatch
        nop
        li   $t0, 1              # Exc::kMod
        beq  $a0, $t0, fault_kill
        nop
        # AdEL/AdES/RI/Ov and anything else from user: kill the process;
        # from the kernel: panic.
        la   $t0, knest
        lw   $t0, 0($t0)
        li   $t1, 1
        beq  $t0, $t1, fault_kill
        nop
kpanic:
        li   $t0, %DEVBASE%
        li   $t1, 0xdead
        sw   $t1, 4($t0)
        nop
kpanic_spin:
        b    kpanic_spin
        nop

# --- user bbtrace flush: the entry stub already drained the buffer ------
bp_dispatch:
        la   $t0, cur_pcb
        lw   $t0, 0($t0)
        lw   $t1, 128($t0)
        addiu $t1, $t1, 4        # resume past the break
        sw   $t1, 128($t0)
        j    exc_exit
        nop

# --- TLB exceptions at the general vector --------------------------------
# kseg2 (KTLB) refills for kernel mappings; everything else is a real user
# fault (misses already went through the UTLB vector; an invalid PTE lands
# here after the refill retry).
tlb_dispatch:
        mfc0 $t0, $badvaddr
        lui  $t1, 0xc000
        sltu $t2, $t0, $t1
        bne  $t2, $zero, fault_kill
        nop
        # KTLB refill from kptdir (the paper's slow general-vector path).
        srl  $t2, $t0, 12
        lui  $t3, 0xc000
        srl  $t3, $t3, 12
        subu $t2, $t2, $t3
        sll  $t2, $t2, 2
        la   $t3, kptdir
        addu $t2, $t3, $t2
        lw   $t2, 0($t2)
        andi $t3, $t2, 0x200     # valid?
        beq  $t3, $zero, kpanic
        nop
        mtc0 $t2, $entrylo       # EntryHi was set by the hardware
        tlbwr
        la   $t0, kstat
        lw   $t1, 12($t0)
        addiu $t1, $t1, 1
        sw   $t1, 12($t0)        # KST_KTLB++
        # (Double misses never reach this path: the nested entry stub
        # services them stacklessly before pushing a frame.)
        j    exc_exit
        nop

        .globl fault_kill
fault_kill:
        # Kill the current process with a recognizable exit code.
        la   $a0, cur_pcb
        lw   $a0, 0($a0)
        li   $a1, 0xdead
        j    proc_exit
        nop

# --- Interrupts ----------------------------------------------------------
int_dispatch:
        mfc0 $t0, $cause
        srl  $t0, $t0, 8
        andi $t1, $t0, 0x80      # IP7: clock
        bne  $t1, $zero, clock_irq
        nop
        andi $t1, $t0, 0x40      # IP6: disk
        bne  $t1, $zero, disk_irq
        nop
        j    exc_exit            # spurious
        nop

clock_irq:
        li   $t0, %DEVBASE%
        sw   $zero, 0x14($t0)    # CLOCK_ACK
        la   $t0, ticks
        lw   $t1, 0($t0)
        addiu $t1, $t1, 1
        sw   $t1, 0($t0)
        # Preempt only when about to return to user with others ready.
        la   $t0, knest
        lw   $t0, 0($t0)
        li   $t1, 1
        bne  $t0, $t1, ci_done
        nop
        la   $t0, ready_head
        lw   $t0, 0($t0)
        beq  $t0, $zero, ci_done
        nop
        la   $a0, cur_pcb
        lw   $a0, 0($a0)
        beq  $a0, $zero, ci_done
        nop
        li   $t1, 1
        sw   $t1, 136($a0)       # current -> ready
        jal  ready_enqueue
        nop
        j    schedule
        nop
ci_done:
        j    exc_exit
        nop

# ===== Scheduler ==========================================================
# Picks the next ready process; idles when none.  Reached with knest == 1.
        .globl schedule
        .globl idle_loop
        .globl idle_exit
schedule:
        la   $t0, ready_head
        lw   $t1, 0($t0)
        bne  $t1, $zero, sched_pick
        nop
        # Idle loop: interrupts on, counted via the block flags that the
        # analysis program uses for the I/O-stall estimate (paper 3.5/5.1).
        mfc0 $t0, $status
        ori  $t0, $t0, 1
        mtc0 $t0, $status
        .idle_start
idle_loop:
        la   $t0, ready_head
        lw   $t1, 0($t0)
        beq  $t1, $zero, idle_loop
        nop
        .idle_stop
idle_exit:
        mfc0 $t0, $status
        addiu $t1, $zero, -2
        and  $t0, $t0, $t1
        mtc0 $t0, $status        # interrupts off for queue surgery
        b    schedule
        nop
sched_pick:
        # Dequeue the head.
        lw   $t2, 148($t1)       # next
        sw   $t2, 0($t0)
        bne  $t2, $zero, sp_have_tail
        nop
        la   $t3, ready_tail
        sw   $zero, 0($t3)
sp_have_tail:
        li   $t2, 2              # running
        sw   $t2, 136($t1)
        la   $t0, cur_pcb
        lw   $t2, 0($t0)
        sw   $t1, 0($t0)
        # First-run accounting + context-switch marker.
        lw   $t3, 184($t1)       # start_cyc
        bne  $t3, $zero, sp_started
        nop
        li   $t0, %DEVBASE%
        lw   $t3, 0x08($t0)
        bne  $t3, $zero, sp_store_start
        nop
        li   $t3, 1              # cycle 0 still counts as started
sp_store_start:
        sw   $t3, 184($t1)
sp_started:
        beq  $t1, $t2, sp_same
        nop
        la   $t0, cswitch_count
        lw   $t3, 0($t0)
        addiu $t3, $t3, 1
        sw   $t3, 0($t0)
        li   $a0, %MKCTXSW%
        lw   $a1, 140($t1)
        jal  write_marker
        nop
sp_same:
        j    exc_exit
        nop

# --- ready_enqueue: a0 = pcb (traced callers) ----------------------------
        .globl ready_enqueue
ready_enqueue:
        sw   $zero, 148($a0)
        la   $t0, ready_tail
        lw   $t1, 0($t0)
        beq  $t1, $zero, re_empty
        nop
        sw   $a0, 148($t1)
        sw   $a0, 0($t0)
        jr   $ra
        nop
re_empty:
        sw   $a0, 0($t0)
        la   $t1, ready_head
        sw   $a0, 0($t1)
        jr   $ra
        nop

# Untraced alias used during boot (same body, callable before tracing).
        .notrace_on
ready_enqueue_raw:
        sw   $zero, 148($a0)
        la   $t0, ready_tail
        lw   $t1, 0($t0)
        beq  $t1, $zero, rer_empty
        nop
        sw   $a0, 148($t1)
        sw   $a0, 0($t0)
        jr   $ra
        nop
rer_empty:
        sw   $a0, 0($t0)
        la   $t1, ready_head
        sw   $a0, 0($t1)
        jr   $ra
        nop
        .notrace_off
)";
  return s;
}

std::string KernelAsm() {
  return SubstituteKernelConstants(KernelCoreAsm() + KernelSysAsm());
}

}  // namespace wrl
