// Building and booting complete systems: kernel + user processes + disk.
//
// The host side plays boot firmware and, for traced runs, the analysis
// program's transport: it compiles and links the kernel and the workload
// (original and instrumented variants), chooses physical frames for every
// user page according to the page-mapping policy (paper §4.2), writes the
// boot parameter block, preloads the images ("warmed" memory, like the
// paper's warmed buffer cache), builds the disk image for the flat
// filesystem, and services HOSTCALL drains of the in-kernel trace buffer.
#ifndef WRLTRACE_KERNEL_SYSTEM_BUILD_H_
#define WRLTRACE_KERNEL_SYSTEM_BUILD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "epoxie/epoxie.h"
#include "kernel/kernel_config.h"
#include "mach/machine.h"
#include "obj/object_file.h"
#include "stats/events.h"
#include "stats/stats.h"
#include "trace/parser.h"

namespace wrl {

enum class Personality : uint32_t { kUltrix = 0, kMach = 1 };
enum class PagePolicy : uint32_t { kLinear = 0, kScrambled = 1 };

struct DiskFile {
  std::string name;  // Max 23 chars.
  std::vector<uint8_t> content;
  // Extra zero-filled capacity after the content (for writable files).
  uint32_t extra_capacity = 0;
};

struct SystemConfig {
  Personality personality = Personality::kUltrix;
  bool tracing = false;
  // Clock period in cycles.  Traced systems scale this by the dilation
  // factor (paper §4.1: interrupts at 1/15th the standard rate).
  uint32_t clock_period = 200000;
  PagePolicy policy = PagePolicy::kLinear;
  uint32_t policy_mult = 9;  // Odd multiplier for the scrambled permutation.
  uint32_t trace_buf_bytes = 8u << 20;
  uint32_t analysis_cycles_per_word = 20;
  // Liveness-driven scavenging in epoxie (header `sw ra` elision, shadow
  // windows through dead scratch registers).  The reconstructed reference
  // stream and every prediction are bit-identical either way; only the
  // instrumented text growth (and thus dilation) changes.
  bool scavenge = ScavengeEnabled();
  // The workload program (defines `main`).  Under Mach a UNIX-server
  // process is added automatically as pid 2.
  std::string program_source;
  std::string program_name = "workload";
  std::vector<DiskFile> files;
  uint32_t heap_bytes = 8u << 20;  // Heap limit past bss.
  DiskConfig disk;
  // Simulation fast-path layers for the underlying machine (architectural
  // results are identical for any setting; see FastPathConfig).
  FastPathConfig fastpath;
  // Optional timeline: trace drains (mode switches) become instant events.
  EventRecorder* events = nullptr;
};

// Everything known about one bootable instance.
class SystemInstance {
 public:
  SystemInstance() = default;

  Machine& machine() { return *machine_; }
  const Executable& kernel_exe() const { return kernel_exe_; }
  // Original (uninstrumented) images — the address space the reconstructed
  // trace refers to; symbolization sources for the profiler.  For untraced
  // systems kernel_orig == kernel_exe and server_orig == server_exe.
  const Executable& kernel_orig() const { return kernel_orig_; }
  const Executable& workload_orig() const { return workload_orig_; }
  const Executable& server_orig() const { return server_orig_; }
  // Runs to halt; services trace drains along the way for traced systems.
  RunResult Run(uint64_t max_instructions);

  // ---- Results ----
  std::string ConsoleOutput() const;
  // Kernel-written stats block fields.
  uint32_t StatsWord(uint32_t offset) const;
  uint64_t UtlbMissCount() const { return StatsWord(4); }
  uint64_t TlbDropins() const { return StatsWord(8); }
  uint64_t KtlbRefills() const { return StatsWord(12); }
  uint64_t ContextSwitches() const { return StatsWord(20); }
  uint64_t AnalysisSwitches() const { return StatsWord(28); }
  // Per-pid cycles between first schedule and exit.
  uint64_t ProcessCycles(uint32_t pid) const;
  uint32_t ProcessExitCode(uint32_t pid) const;

  // ---- Tracing ----
  // Registers the consumer of raw trace words; called for every drain
  // (mode switch) and once at halt.  Only meaningful when tracing.
  void SetTraceSink(std::function<void(const uint32_t*, size_t)> sink) {
    trace_sink_ = std::move(sink);
  }
  const TraceInfoTable& kernel_table() const { return kernel_table_; }
  const TraceInfoTable& user_table() const { return user_table_; }
  uint64_t trace_words_drained() const { return trace_words_drained_; }

  // The page-mapping function the simulator should use for prediction
  // (paper §4.2: either implement the policy or extract the map).
  // `mult_override` substitutes a different permutation multiplier — used to
  // model the unpredictability of Mach's random mapping policy.
  uint32_t TranslateUserPage(uint32_t pid, uint32_t vpn, uint32_t mult_override = 0) const;
  std::function<uint32_t(uint32_t, uint32_t)> PageMap(uint32_t mult_override = 0) const {
    return [this, mult_override](uint32_t pid, uint32_t vpn) {
      return TranslateUserPage(pid, vpn, mult_override);
    };
  }

  // Idle-loop text range of this kernel build (for machine-side counters).
  std::pair<uint32_t, uint32_t> IdleRange() const;

  // ---- Observability ----
  // Binds this instance's counters into `registry` under `prefix`: the
  // machine (and its memory system), the kernel stats-block words as
  // gauges, the trace transport (drain-size histogram, buffer fill
  // levels), and the epoxie text-dilation ratios of every instrumented
  // image.  The instance must outlive snapshots of the registry.
  void RegisterStats(StatsRegistry& registry, const std::string& prefix = "system.");
  // Epoxie text growth of the instrumented images (1.0 when untraced).
  double kernel_text_growth() const { return kernel_text_growth_; }
  double workload_text_growth() const { return workload_text_growth_; }
  // Scavenging outcome summed over every instrumented object (zero when
  // untraced or SystemConfig::scavenge is off).
  uint64_t elided_ra_saves() const { return elided_ra_saves_; }
  uint64_t scavenged_windows() const { return scavenged_windows_; }

 private:
  friend std::unique_ptr<SystemInstance> BuildSystem(const SystemConfig& config);

  void DrainTrace();

  SystemConfig config_;
  std::unique_ptr<Machine> machine_;
  Executable kernel_exe_;
  Executable kernel_orig_;
  Executable workload_orig_;
  Executable workload_exe_;  // The one actually mapped (orig or traced).
  Executable server_exe_;
  Executable server_orig_;
  TraceInfoTable kernel_table_;
  TraceInfoTable user_table_;    // Workload (pid 1).
  TraceInfoTable server_table_;  // Server (pid 2, Mach only).
  std::function<void(const uint32_t*, size_t)> trace_sink_;
  uint32_t ktrace_ptr_addr_ = 0;  // Phys address of the kernel's ktrace_ptr.
  uint32_t ktrace_base_ = 0;      // Phys address of the buffer.
  uint64_t trace_words_drained_ = 0;
  uint64_t last_drain_words_ = 0;
  uint64_t trace_drains_ = 0;
  Histogram drain_words_hist_;   // Buffer fill level (words) at each drain.
  double kernel_text_growth_ = 1.0;
  double workload_text_growth_ = 1.0;
  double server_text_growth_ = 1.0;
  uint64_t elided_ra_saves_ = 0;
  uint64_t scavenged_windows_ = 0;

  struct ProcLayout {
    uint32_t region_base_page = 0;
    uint32_t region_pages = 0;
    uint32_t data_slice_page = 0;   // Within the region.
    uint32_t data_vpn0 = 0;
    uint32_t stack_slice_page = 0;
    uint32_t stack_vpn0 = 0;
    uint32_t trace_slice_page = 0;
    uint32_t trace_vpn0 = 0;
    uint32_t text_slice_page = 0;
    uint32_t text_vpn0 = 0;
    uint32_t data_slice_pages = 0;
  };
  std::vector<ProcLayout> layouts_;

  const TraceInfoTable* UserTableFor(uint32_t pid) const {
    return pid == 2 ? &server_table_ : &user_table_;
  }

 public:
  const TraceInfoTable& server_table() const { return server_table_; }
};

// Compiles, links, loads, and prepares a bootable system.  (Heap-allocated:
// the machine's host-call handler holds a pointer to the instance.)
std::unique_ptr<SystemInstance> BuildSystem(const SystemConfig& config);

// The user-side syscall wrapper library every workload links against.
std::string UserLibAsm();
// The Mach UNIX-server program (user-level filesystem over device I/O).
std::string ServerAsm();

// Builds the flat-filesystem disk image.
std::vector<uint8_t> BuildDiskImage(const std::vector<DiskFile>& files, uint32_t disk_bytes);

}  // namespace wrl

#endif  // WRLTRACE_KERNEL_SYSTEM_BUILD_H_
