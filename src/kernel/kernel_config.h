// Physical and virtual layout of the simulated operating system, plus the
// boot-parameter protocol between the host loader and the kernel.
//
// The kernel is real DS32 code: it is assembled, optionally instrumented by
// epoxie, linked, and executed on the simulated machine.  The host loader
// plays the role of boot firmware: it places the kernel image, preloads the
// user process images into physical frames chosen by the page-mapping
// policy (paper §4.2), writes the boot parameter block, and starts the
// machine at the reset vector.
#ifndef WRLTRACE_KERNEL_KERNEL_CONFIG_H_
#define WRLTRACE_KERNEL_KERNEL_CONFIG_H_

#include <cstdint>

#include "mach/address_space.h"

namespace wrl {

// ---- Physical memory layout (128 MB machine for OS runs) ----
constexpr uint32_t kOsPhysBytes = 128u << 20;
// Kernel text at phys 0 (kseg0 0x80000000); the traced kernel's bigger text
// must still fit below the boot block.
constexpr uint32_t kBootParamsPhys = 0x00100000;  // Boot parameter block (1 MB).
constexpr uint32_t kStatsPhys = 0x00180000;       // Kernel-written final stats.
// Kernel data/bss pinned here in *both* kernel builds so traced-kernel data
// addresses match the original kernel (paper §3.2).
constexpr uint32_t kKernelDataBase = kKseg0 + 0x00200000;
// Kernel stack (grows down from the top of its region).
constexpr uint32_t kKernelStackTop = kKseg0 + 0x005ff000;
// Page-table frame pool.
constexpr uint32_t kPtPoolPhysBase = 0x00600000;
constexpr uint32_t kPtPoolPages = 512;  // 2 MB of PT frames.
// Kernel tracing state: bookkeeping + the large in-kernel buffer (§4.3).
constexpr uint32_t kKernelBkAddr = kKseg0 + 0x00800000;
constexpr uint32_t kKernelScratchTraceAddr = kKseg0 + 0x00810000;  // Discard area.
constexpr uint32_t kKernelScratchTraceBytes = 256 * 1024;
constexpr uint32_t kKernelTraceBufAddr = kKseg0 + 0x00900000;
constexpr uint32_t kKernelTraceBufMaxBytes = 55u << 20;  // Up to 0x04000000.
// User frame regions start here; the loader carves per-process regions.
constexpr uint32_t kUserFramePoolPhys = 0x04000000;

// ---- User virtual layout ----
constexpr uint32_t kUserTextBase = 0x00400000;        // Original binaries.
constexpr uint32_t kUserTracedTextBase = 0x10000000;  // Instrumented binaries.
constexpr uint32_t kUserStackTop = 0x7fd00000;
constexpr uint32_t kUserStackPages = 16;
// kUserTraceBufBase / kUserBkBase come from trace/abi.h.

// Per-process linear page tables in kseg2: PTEBase(p) = kseg2 + p * 2 MB.
constexpr uint32_t kPteRegionBytes = 0x00200000;

// ---- Syscall numbers (in $v0) ----
enum Syscall : uint32_t {
  kSysExit = 1,
  kSysWrite = 2,
  kSysRead = 3,
  kSysOpen = 4,
  kSysClose = 5,
  kSysSbrk = 6,
  kSysGetTime = 7,
  kSysGetPid = 8,
  kSysUtlbCount = 9,
  kSysYield = 10,
  kSysMsgSend = 12,   // Mach personality.
  kSysMsgRecv = 13,   // Mach personality.
  kSysDevDiskRead = 14,   // Mach: server-only device access.
  kSysDevDiskWrite = 15,  // Mach: server-only device access.
  kSysVmCopy = 16,        // Mach: server-only cross-address-space copy.
};

// ---- Flat filesystem on the simulated disk ----
// Sector 0 holds 16 directory entries of 32 bytes:
//   name[24] (NUL padded), start_sector (u32), length_bytes (u32).
constexpr uint32_t kFsDirEntries = 16;
constexpr uint32_t kFsNameBytes = 24;
constexpr uint32_t kFsBlockBytes = 4096;           // Buffer-cache block.
constexpr uint32_t kFsBlockSectors = kFsBlockBytes / 512;

// ---- Boot parameter block (all u32 little-endian words) ----
// Header:
//   +0   magic (0x424f4f54 "BOOT")
//   +4   personality: 0 = ultrix (monolithic), 1 = mach (microkernel+server)
//   +8   tracing on/off
//   +12  clock period in cycles (0 = off)
//   +16  number of processes
//   +20  trace buffer phys base
//   +24  trace buffer bytes
//   +28  page policy: 0 linear, 1 scrambled (mach random mapping)
//   +32  policy multiplier (odd; used by the scrambled policy)
//   +36  server pid (mach; 0 = none)
//   +40  pt pool phys page number
//   +44  pt pool pages
//   +48  mapping array phys address
//   +52  analysis cost per drained word (cycles; host-charged analysis time)
// Then per-process entries of 64 bytes starting at +64:
//   +0   entry pc          +4  initial sp
//   +8   frame region base (phys page number)
//   +12  frame region pages
//   +16  heap start vaddr  +20 heap limit vaddr
//   +24  premap count      +28 premap start index (into mapping array)
//   +32  heap scramble offset (pages already consumed in the region)
// Mapping array entries are pairs of u32: (vpn | flags<<24, pfn).
//   flag bit 0: writable.
constexpr uint32_t kBootMagic = 0x424f4f54;
constexpr uint32_t kBootHeaderBytes = 64;
constexpr uint32_t kBootProcStride = 64;
constexpr uint32_t kMaxProcs = 8;

// Offsets within the kernel-written stats block:
//   +0   magic 0x53544154 "STAT"
//   +4   utlb miss count (kernel counter — Table 3's measured side)
//   +8   tlbdropin/tlb_map_random count
//   +12  ktlb (kseg2) refill count
//   +16  clock ticks
//   +20  context switches
//   +24  trace words written (traced runs)
//   +28  analysis mode switches
//   +32 + pid*16: per-process {start cycles lo, end cycles lo, exit code, flags}
constexpr uint32_t kStatsMagic = 0x53544154;

}  // namespace wrl

#endif  // WRLTRACE_KERNEL_KERNEL_CONFIG_H_
