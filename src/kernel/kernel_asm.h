// The WRTX kernel: the traced operating system of the reproduction.
//
// One DS32 assembly image implements both personalities:
//   * "ultrix"  — monolithic: file syscalls (open/close/read/write) are
//     handled in the kernel, with a buffer cache, one-block read-ahead,
//     conservative (synchronous write-through) file writes, and explicit
//     tlbdropin() TLB preloads after copyouts;
//   * "mach"    — microkernel: file syscalls become IPC round-trips through
//     a user-level UNIX server; the microkernel provides messages, device
//     block I/O for the server, cross-address-space copies, and
//     tlb_map_random() explicit TLB writes.
//
// Tracing architecture (paper §3.1/§3.3):
//   * the exception entry stub (hand-written, never traced) drains the
//     per-process user trace buffer into the in-kernel buffer on every
//     kernel entry — preserving the global interleaving — and brackets
//     kernel activity with KERNEL_ENTER/KERNEL_EXIT markers;
//   * nested exceptions stack their trace state on the kernel stack; on
//     return to kernel context the trace pointer is reloaded from the
//     authoritative global, not the stacked copy;
//   * kernel code is itself instrumented by epoxie; the delicate parts
//     (vectors, entry/exit stubs, the UTLB refill handler, the trace-flush
//     and analysis-mode paths, boot) sit in .notrace regions;
//   * when the in-kernel buffer fills, the system switches to
//     trace-analysis mode: the host-side analysis program drains the buffer
//     through the HOSTCALL port, the kernel busy-waits out the analysis
//     cost with interrupts enabled, and any activity in that window (e.g. a
//     disk completion) is discarded to a scratch area — the paper's "dirt";
//   * the UTLB refill handler maintains the user-TLB miss counter that
//     provides Table 3's measured side, and is deliberately *not* traced:
//     TLB behavior of the original binary is simulated instead (§4.1).
#ifndef WRLTRACE_KERNEL_KERNEL_ASM_H_
#define WRLTRACE_KERNEL_KERNEL_ASM_H_

#include <string>

namespace wrl {

// Returns the complete kernel assembly source.
std::string KernelAsm();

}  // namespace wrl

#endif  // WRLTRACE_KERNEL_KERNEL_ASM_H_
