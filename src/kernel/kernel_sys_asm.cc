#include <string>

#include "kernel/kernel_asm_internal.h"

namespace wrl {

// Part 2 of the kernel: syscall dispatch and handlers, the flat filesystem
// with its buffer cache and one-block read-ahead, the interrupt-driven disk
// driver, Mach-personality IPC and forwarding, and kernel data.
//
// Register discipline in traced kernel code: t0-t6/a/v are scratch, s0-s7
// usable in syscall context (full PCB save), never t7/t8/t9 (the stolen
// tracing registers), never k0/k1 (stub/UTLB property).  Syscall handlers
// run with s0 = current PCB.
std::string KernelSysAsm() {
  std::string s;

  // ===== Syscall dispatch ================================================
  s += R"(
# ===== Syscalls ===========================================================
sys_dispatch:
        la   $s0, cur_pcb
        lw   $s0, 0($s0)
        lw   $t0, 128($s0)
        addiu $t0, $t0, 4
        sw   $t0, 128($s0)       # return past the syscall by default
        lw   $t0, 8($s0)         # v0 = syscall number
        li   $t1, 1
        beq  $t0, $t1, sys_exit
        nop
        li   $t1, 2
        beq  $t0, $t1, sys_write
        nop
        li   $t1, 3
        beq  $t0, $t1, sys_read
        nop
        li   $t1, 4
        beq  $t0, $t1, sys_open
        nop
        li   $t1, 5
        beq  $t0, $t1, sys_close
        nop
        li   $t1, 6
        beq  $t0, $t1, sys_sbrk
        nop
        li   $t1, 7
        beq  $t0, $t1, sys_gettime
        nop
        li   $t1, 8
        beq  $t0, $t1, sys_getpid
        nop
        li   $t1, 9
        beq  $t0, $t1, sys_utlbcount
        nop
        li   $t1, 10
        beq  $t0, $t1, sys_yield
        nop
        li   $t1, 12
        beq  $t0, $t1, sys_msgsend
        nop
        li   $t1, 13
        beq  $t0, $t1, sys_msgrecv
        nop
        li   $t1, 14
        beq  $t0, $t1, sys_devdiskread
        nop
        li   $t1, 15
        beq  $t0, $t1, sys_devdiskwrite
        nop
        li   $t1, 16
        beq  $t0, $t1, sys_vmcopy
        nop
        j    fault_kill          # unknown syscall
        nop

# --- helpers shared by blocking handlers ---------------------------------
# Restart-block on the disk: save progress, back the PC up to re-execute
# the syscall when the disk completes, and reschedule.
#   a0 = progress value to save
blk_disk_restart:
        sw   $a0, 176($s0)       # op_progress
        li   $t0, 1
        sw   $t0, 180($s0)       # in_restart
        lw   $t0, 128($s0)
        addiu $t0, $t0, -4
        sw   $t0, 128($s0)       # re-execute the syscall on wake
        li   $t0, 3
        sw   $t0, 136($s0)       # blocked
        li   $t0, 1
        sw   $t0, 172($s0)       # channel: disk
        j    schedule
        nop

# Finish a syscall normally: v0 in a0.
sys_return:
        sw   $a0, 8($s0)
        sw   $zero, 180($s0)     # clear restart state
        sw   $zero, 176($s0)
        j    exc_exit
        nop

# --- exit ----------------------------------------------------------------
sys_exit:
        lw   $a1, 16($s0)        # exit code = user a0
        move $a0, $s0
        j    proc_exit
        nop

        .globl proc_exit
proc_exit:
        li   $t0, 4
        sw   $t0, 136($a0)       # zombie
        sw   $a1, 192($a0)
        li   $t0, %DEVBASE%
        lw   $t1, 0x08($t0)
        sw   $t1, 188($a0)       # end cycles
        # Shutdown when every non-server process is a zombie.
        la   $t0, nprocs
        lw   $t0, 0($t0)
        la   $t1, server_pid
        lw   $t1, 0($t1)
        la   $t2, pcb_table
        li   $t3, 0              # index
pe_scan:
        sltu $t4, $t3, $t0
        beq  $t4, $zero, kernel_shutdown
        nop
        sll  $t4, $t3, 8
        addu $t4, $t2, $t4
        lw   $t5, 140($t4)       # pid
        beq  $t5, $t1, pe_next   # the server does not block shutdown
        nop
        lw   $t5, 136($t4)
        li   $t6, 4
        bne  $t5, $t6, pe_alive
        nop
pe_next:
        b    pe_scan
        addiu $t3, $t3, 1
pe_alive:
        la   $t0, cur_pcb
        sw   $zero, 0($t0)
        j    schedule
        nop

        .notrace_on
kernel_shutdown:
        # Final stats block for the host (see kernel_config.h).
        li   $t0, %STATS%
        li   $t1, %STATSMAGIC%
        sw   $t1, 0($t0)
        la   $t1, kstat
        lw   $t2, 4($t1)
        sw   $t2, 4($t0)         # utlb misses
        lw   $t2, 8($t1)
        sw   $t2, 8($t0)         # tlbdropin / tlb_map_random
        lw   $t2, 12($t1)
        sw   $t2, 12($t0)        # ktlb refills
        la   $t1, ticks
        lw   $t2, 0($t1)
        sw   $t2, 16($t0)
        la   $t1, cswitch_count
        lw   $t2, 0($t1)
        sw   $t2, 20($t0)
        la   $t1, kstat
        lw   $t2, 16($t1)
        sw   $t2, 28($t0)        # analysis mode switches
        # Per-process records at +32 + pid*16.
        la   $t1, nprocs
        lw   $t1, 0($t1)
        la   $t2, pcb_table
        li   $t3, 0
ks_loop:
        sltu $t4, $t3, $t1
        beq  $t4, $zero, ks_done
        nop
        sll  $t4, $t3, 8
        addu $t4, $t2, $t4
        addiu $t5, $t3, 1
        sll  $t5, $t5, 4
        addu $t5, $t5, $t0
        addiu $t5, $t5, 16       # +32 + pid*16 = +16 + (idx+1)*16
        lw   $t6, 184($t4)
        sw   $t6, 0($t5)
        lw   $t6, 188($t4)
        sw   $t6, 4($t5)
        lw   $t6, 192($t4)
        sw   $t6, 8($t5)
        lw   $t6, 136($t4)
        sw   $t6, 12($t5)
        b    ks_loop
        addiu $t3, $t3, 1
ks_done:
        # Sync the trace pointer so the host can take the final drain.
        la   $t1, tracing_on
        lw   $t1, 0($t1)
        beq  $t1, $zero, ks_halt
        nop
        la   $t1, ktrace_ptr
        sw   $t8, 0($t1)
ks_halt:
        li   $t1, %DEVBASE%
        sw   $zero, 4($t1)       # halt(0)
        nop
ks_spin:
        b    ks_spin
        nop
        .notrace_off

# --- write ---------------------------------------------------------------
sys_write:
        lw   $t0, 16($s0)        # fd
        li   $t1, 1
        beq  $t0, $t1, sw_console
        nop
        la   $t1, personality
        lw   $t1, 0($t1)
        bne  $t1, $zero, forward_fs
        nop
        j    fs_write
        nop
sw_console:
        lw   $t1, 20($s0)        # buf
        lw   $t2, 24($s0)        # len
        li   $t3, %DEVBASE%
        beq  $t2, $zero, swc_done
        nop
swc_loop:
        lbu  $t4, 0($t1)
        sw   $t4, 0($t3)
        addiu $t1, $t1, 1
        addiu $t2, $t2, -1
        bne  $t2, $zero, swc_loop
        nop
swc_done:
        lw   $a0, 24($s0)
        j    sys_return
        nop

# --- read ----------------------------------------------------------------
sys_read:
        lw   $t0, 16($s0)
        sltiu $t1, $t0, 3
        bne  $t1, $zero, sr_badfd
        nop
        la   $t1, personality
        lw   $t1, 0($t1)
        bne  $t1, $zero, forward_fs
        nop
        j    fs_read
        nop
sr_badfd:
        addiu $a0, $zero, -1
        j    sys_return
        nop

# --- open / close --------------------------------------------------------
sys_open:
        la   $t1, personality
        lw   $t1, 0($t1)
        bne  $t1, $zero, forward_fs
        nop
        j    fs_open
        nop
sys_close:
        la   $t1, personality
        lw   $t1, 0($t1)
        bne  $t1, $zero, forward_fs
        nop
        j    fs_close
        nop

# --- sbrk ----------------------------------------------------------------
sys_sbrk:
        lw   $s1, 152($s0)       # old brk
        lw   $t0, 16($s0)        # increment
        addu $s2, $s1, $t0       # new brk
        lw   $t1, 156($s0)       # heap limit
        sltu $t2, $t1, $s2
        beq  $t2, $zero, sb_ok
        nop
        addiu $a0, $zero, -1
        j    sys_return
        nop
sb_ok:
        # Map pages in [pageup(old brk), pageup(new brk)).
        addiu $t0, $s1, 4095
        srl  $s3, $t0, 12        # first unmapped vpn
        addiu $t0, $s2, 4095
        srl  $s4, $t0, 12        # one past last needed vpn
sb_loop:
        sltu $t0, $s3, $s4
        beq  $t0, $zero, sb_done
        nop
        # Pick the frame by the page-mapping policy.
        lw   $t0, 168($s0)       # heap pages used (allocation counter)
        la   $t1, page_policy
        lw   $t1, 0($t1)
        beq  $t1, $zero, sb_linear
        nop
        # Scrambled (Mach's random mapping): perm(i) = (i*mult) % pages.
        la   $t1, policy_mult
        lw   $t1, 0($t1)
        mult $t0, $t1
        mflo $t1
        lw   $t2, 164($s0)       # region pages
        divu $t1, $t2
        mfhi $t1                 # (i*mult) mod pages
        b    sb_have_offset
        nop
sb_linear:
        move $t1, $t0
sb_have_offset:
        lw   $t2, 160($s0)       # region base page
        addu $t1, $t2, $t1       # pfn
        addiu $t0, $t0, 1
        sw   $t0, 168($s0)
        # Zero the frame through kseg0.
        sll  $t2, $t1, 12
        lui  $t3, 0x8000
        or   $t2, $t2, $t3
        addiu $t3, $t2, 4096
sb_zero:
        sw   $zero, 0($t2)
        addiu $t2, $t2, 4
        bne  $t2, $t3, sb_zero
        nop
        # map_page(pid, vpn | writable, pfn).
        lw   $a0, 140($s0)
        lui  $t0, 0x0100
        or   $a1, $s3, $t0
        move $a2, $t1
        jal  map_page
        nop
        b    sb_loop
        addiu $s3, $s3, 1
sb_done:
        sw   $s2, 152($s0)
        move $a0, $s1
        j    sys_return
        nop

# --- trivial syscalls ----------------------------------------------------
sys_gettime:
        li   $t0, %DEVBASE%
        lw   $a0, 0x08($t0)      # CYCLE_LO
        lw   $t1, 0x0c($t0)      # CYCLE_HI
        sw   $t1, 12($s0)        # v1
        j    sys_return
        nop
sys_getpid:
        lw   $a0, 140($s0)
        j    sys_return
        nop
sys_utlbcount:
        la   $t0, kstat
        lw   $a0, 4($t0)
        j    sys_return
        nop
sys_yield:
        li   $t0, 1
        sw   $t0, 136($s0)
        move $a0, $s0
        jal  ready_enqueue
        nop
        li   $a0, 0
        sw   $a0, 8($s0)
        j    schedule
        nop
)";

  // ===== Filesystem (Ultrix personality) ================================
  s += R"(
# ===== Flat filesystem + buffer cache (monolithic personality) ===========
# Directory: 16 entries of 32 bytes in sector 0, cached at boot in fs_dir.
# Blocks are 4 KB (8 sectors).  Misses DMA into the bounce buffer and are
# installed into the cache; a one-block read-ahead is chained from the disk
# interrupt (the paper's read-ahead distortion source, 5.1).  File writes
# are synchronous write-through — Ultrix's "conservative write policy".

# fd slot address for fd in t0 (3 or 4) -> v1; garbage fd -> branch taken.
fs_fd_slot:
        addiu $t1, $t0, -3
        sltiu $t2, $t1, 2
        beq  $t2, $zero, fsfd_bad
        nop
        sll  $t1, $t1, 3
        addiu $t1, $t1, 196
        addu $v1, $s0, $t1
        jr   $ra
        nop
fsfd_bad:
        addiu $a0, $zero, -1
        j    sys_return
        nop

# --- fs_open: a0 slot has the user name pointer --------------------------
fs_open:
        lw   $s1, 16($s0)        # user name ptr
        la   $s2, fs_dir
        li   $s3, 0              # entry index
fso_scan:
        sltiu $t0, $s3, 16
        beq  $t0, $zero, fso_notfound
        nop
        sll  $t0, $s3, 5
        addu $s4, $s2, $t0       # dir entry
        lb   $t0, 0($s4)
        beq  $t0, $zero, fso_next  # empty entry
        nop
        # Compare names (NUL-terminated, max 24).
        move $t1, $s1            # user
        move $t2, $s4            # dir
fso_cmp:
        lbu  $t3, 0($t1)
        lbu  $t4, 0($t2)
        bne  $t3, $t4, fso_next
        nop
        beq  $t3, $zero, fso_found
        nop
        addiu $t1, $t1, 1
        b    fso_cmp
        addiu $t2, $t2, 1
fso_next:
        b    fso_scan
        addiu $s3, $s3, 1
fso_notfound:
        addiu $a0, $zero, -1
        j    sys_return
        nop
fso_found:
        # Allocate fd 3 or 4.
        lw   $t0, 196($s0)
        beq  $t0, $zero, fso_fd3
        nop
        lw   $t0, 204($s0)
        beq  $t0, $zero, fso_fd4
        nop
        addiu $a0, $zero, -1
        j    sys_return
        nop
fso_fd3:
        addiu $t0, $s3, 1
        sw   $t0, 196($s0)
        sw   $zero, 200($s0)
        li   $a0, 3
        j    sys_return
        nop
fso_fd4:
        addiu $t0, $s3, 1
        sw   $t0, 204($s0)
        sw   $zero, 208($s0)
        li   $a0, 4
        j    sys_return
        nop

fs_close:
        lw   $t0, 16($s0)
        jal  fs_fd_slot
        nop
        sw   $zero, 0($v1)
        li   $a0, 0
        j    sys_return
        nop

# --- fs_read: fd, buf, len ------------------------------------------------
fs_read:
        lw   $t0, 16($s0)
        jal  fs_fd_slot
        nop
        move $s1, $v1            # fd slot
        lw   $t0, 0($s1)         # file index + 1
        beq  $t0, $zero, fsfd_bad
        nop
        addiu $t0, $t0, -1
        sll  $t0, $t0, 5
        la   $t1, fs_dir
        addu $t1, $t1, $t0       # dir entry
        lw   $s2, 24($t1)        # start sector
        sll  $s2, $s2, 9         # absolute start byte on disk
        lw   $s3, 28($t1)        # file length
        lw   $s6, 4($s1)         # position
        # remaining = min(len, filelen - pos)
        subu $t0, $s3, $s6
        lw   $t1, 24($s0)        # len
        sltu $t2, $t0, $t1
        beq  $t2, $zero, fsr_len_ok
        nop
        move $t1, $t0
fsr_len_ok:
        blez $t1, fsr_zero
        nop
        move $s3, $t1            # s3 = remaining
        lw   $s5, 20($s0)        # user buffer
        # progress (restart-aware)
        lw   $t0, 180($s0)
        beq  $t0, $zero, fsr_fresh
        nop
        lw   $s4, 176($s0)
        b    fsr_loop
        nop
fsr_fresh:
        li   $s4, 0
fsr_loop:
        sltu $t0, $s4, $s3
        beq  $t0, $zero, fsr_done
        nop
        # absolute byte = file start + pos + progress
        addu $t0, $s6, $s4
        addu $t0, $s2, $t0
        srl  $s7, $t0, 12        # disk block index
        andi $t1, $t0, 0xfff     # offset in block
        # chunk = min(4096 - off, remaining - progress)
        li   $t2, 4096
        subu $t2, $t2, $t1
        subu $t3, $s3, $s4
        sltu $t4, $t3, $t2
        beq  $t4, $zero, fsr_chunk_ok
        nop
        move $t2, $t3
fsr_chunk_ok:
        # Find the block in the cache.
        move $a0, $s7
        jal  cache_find
        nop
        bltz $v0, fsr_miss
        nop
        # Recompute offset and chunk (cache_find clobbered the temps).
        addu $t0, $s6, $s4
        addu $t0, $s2, $t0
        andi $t1, $t0, 0xfff
        li   $t2, 4096
        subu $t2, $t2, $t1
        subu $t3, $s3, $s4
        sltu $t4, $t3, $t2
        beq  $t4, $zero, fsr_copy_setup
        nop
        move $t2, $t3
fsr_copy_setup:
        # Copy chunk: cache_data[slot] + off -> user buf + progress.
        sll  $t0, $v0, 12
        la   $t3, cache_data
        addu $t0, $t3, $t0
        addu $t0, $t0, $t1       # src
        addu $t3, $s5, $s4       # dst (user VA)
        move $t4, $t2
fsr_copy:
        lbu  $t5, 0($t0)
        sb   $t5, 0($t3)
        addiu $t0, $t0, 1
        addiu $t3, $t3, 1
        addiu $t4, $t4, -1
        bne  $t4, $zero, fsr_copy
        nop
        b    fsr_loop
        addu $s4, $s4, $t2
fsr_miss:
        move $a0, $s7
        jal  cache_fill_or_block  # returns only when the block is cached
        nop
        b    fsr_loop
        nop
fsr_done:
        addu $s6, $s6, $s3
        sw   $s6, 4($s1)         # new position
        # Explicit TLB preload of the last user page touched (tlbdropin).
        addu $a0, $s5, $s3
        addiu $a0, $a0, -1
        jal  tlbdropin
        nop
        move $a0, $s3
        j    sys_return
        nop
fsr_zero:
        li   $a0, 0
        j    sys_return
        nop

# --- cache_fill_or_block: a0 = disk block index ---------------------------
# Installs the block into the cache from the read-ahead buffer or bounce
# buffer if present; otherwise issues a disk read and restart-blocks.
cache_fill_or_block:
        addiu $sp, $sp, -8
        sw   $ra, 4($sp)
        sw   $a0, 0($sp)
        # Read-ahead buffer?
        la   $t0, ra_sector
        lw   $t0, 0($t0)
        sll  $t1, $a0, 3         # sector = block * 8
        bne  $t0, $t1, cfb_try_bounce
        nop
        la   $a1, ra_buf
        jal  cache_install
        nop
        lw   $ra, 4($sp)
        jr   $ra
        addiu $sp, $sp, 8
cfb_try_bounce:
        la   $t0, bounce_sector
        lw   $t0, 0($t0)
        bne  $t0, $t1, cfb_disk
        nop
        la   $t0, bounce_is_read
        lw   $t0, 0($t0)
        beq  $t0, $zero, cfb_disk
        nop
        la   $a1, bounce_buf
        jal  cache_install
        nop
        lw   $ra, 4($sp)
        jr   $ra
        addiu $sp, $sp, 8
cfb_disk:
        la   $t0, disk_busy
        lw   $t0, 0($t0)
        bne  $t0, $zero, cfb_wait
        nop
        # Issue the read into the bounce buffer; remember a read-ahead
        # candidate for the interrupt handler to chain.
        lw   $a0, 0($sp)
        sll  $a0, $a0, 3         # sector
        li   $a1, 8              # sectors per block
        la   $a2, bounce_buf
        lui  $t0, 0x8000
        xor  $a2, $a2, $t0       # phys
        li   $a3, 4              # op: bounce fill
        jal  disk_submit
        nop
        lw   $t0, 0($sp)
        addiu $t0, $t0, 1
        sll  $t0, $t0, 3
        la   $t1, ra_candidate
        sw   $t0, 0($t1)
cfb_wait:
        move $a0, $s4            # preserve the caller's loop progress
        j    blk_disk_restart
        nop

# --- cache_find: a0 = block -> v0 = slot or -1 ----------------------------
cache_find:
        la   $t0, cache_hdr
        li   $v0, 0
cf_loop:
        sltiu $t1, $v0, 16
        beq  $t1, $zero, cf_miss
        nop
        sll  $t1, $v0, 3
        addu $t1, $t0, $t1
        lw   $t2, 0($t1)         # block number (0 = free)
        bne  $t2, $a0, cf_next
        nop
        lw   $t2, 4($t1)         # state: 1 = valid
        li   $t3, 1
        beq  $t2, $t3, cf_hit
        nop
cf_next:
        b    cf_loop
        addiu $v0, $v0, 1
cf_miss:
        addiu $v0, $zero, -1
        jr   $ra
        nop
cf_hit:
        jr   $ra
        nop

# --- cache_install: a0 = block, a1 = source (kseg0 4KB) -> v0 = slot -----
cache_install:
        # Round-robin victim.
        la   $t0, cache_hand
        lw   $v0, 0($t0)
        addiu $t1, $v0, 1
        andi $t1, $t1, 15
        sw   $t1, 0($t0)
        la   $t0, cache_hdr
        sll  $t1, $v0, 3
        addu $t0, $t0, $t1
        sw   $a0, 0($t0)
        li   $t1, 1
        sw   $t1, 4($t0)
        # Copy 1024 words.
        sll  $t0, $v0, 12
        la   $t1, cache_data
        addu $t0, $t1, $t0       # dst
        move $t1, $a1            # src
        addiu $t2, $t0, 4096
ci_copy:
        lw   $t3, 0($t1)
        sw   $t3, 0($t0)
        addiu $t0, $t0, 4
        addiu $t1, $t1, 4
        bne  $t0, $t2, ci_copy
        nop
        jr   $ra
        nop

# --- fs_write: fd, buf, len ------------------------------------------------
# Write-through: each touched block is updated in the cache and immediately
# written to disk before the syscall completes (conservative policy).
fs_write:
        lw   $t0, 16($s0)
        jal  fs_fd_slot
        nop
        move $s1, $v1
        lw   $t0, 0($s1)
        beq  $t0, $zero, fsfd_bad
        nop
        addiu $t0, $t0, -1
        sll  $t0, $t0, 5
        la   $t1, fs_dir
        addu $t1, $t1, $t0
        lw   $s2, 24($t1)
        sll  $s2, $s2, 9         # file start byte
        lw   $s3, 28($t1)        # file length (fixed allocation)
        lw   $s6, 4($s1)         # position
        subu $t0, $s3, $s6
        lw   $t1, 24($s0)
        sltu $t2, $t0, $t1
        beq  $t2, $zero, fsw_len_ok
        nop
        move $t1, $t0
fsw_len_ok:
        blez $t1, fsw_zero
        nop
        move $s3, $t1            # remaining
        lw   $s5, 20($s0)        # user buffer
        lw   $t0, 180($s0)
        beq  $t0, $zero, fsw_fresh
        nop
        lw   $s4, 176($s0)
        b    fsw_loop
        nop
fsw_fresh:
        li   $s4, 0
fsw_loop:
        sltu $t0, $s4, $s3
        beq  $t0, $zero, fsw_done
        nop
        addu $t0, $s6, $s4
        addu $t0, $s2, $t0
        srl  $s7, $t0, 12        # block
        andi $t1, $t0, 0xfff
        li   $t2, 4096
        subu $t2, $t2, $t1
        subu $t3, $s3, $s4
        sltu $t4, $t3, $t2
        beq  $t4, $zero, fsw_chunk_ok
        nop
        move $t2, $t3
fsw_chunk_ok:
        # Flush already acknowledged for this block?  Then this chunk is
        # done (the cache was updated before the write was issued).
        la   $t0, wdone_sector
        lw   $t0, 0($t0)
        sll  $t3, $s7, 3
        bne  $t0, $t3, fsw_ensure
        nop
        la   $t0, wdone_sector
        addiu $t3, $zero, -1
        sw   $t3, 0($t0)
        b    fsw_loop
        addu $s4, $s4, $t2
fsw_ensure:
        move $a0, $s7
        jal  cache_find
        nop
        bgez $v0, fsw_cached
        nop
        move $a0, $s7
        jal  cache_fill_or_block  # read-modify-write needs the old block
        nop
fsw_cached:
        # Recompute offset and chunk (helper calls clobbered the temps).
        addu $t0, $s6, $s4
        addu $t0, $s2, $t0
        andi $t1, $t0, 0xfff
        li   $t2, 4096
        subu $t2, $t2, $t1
        subu $t3, $s3, $s4
        sltu $t4, $t3, $t2
        beq  $t4, $zero, fsw_copy_setup
        nop
        move $t2, $t3
fsw_copy_setup:
        # Update the cached block from the user buffer.
        sll  $t0, $v0, 12
        la   $t3, cache_data
        addu $t0, $t3, $t0
        addu $t0, $t0, $t1       # dst in cache
        addu $t3, $s5, $s4       # src (user VA)
        move $t4, $t2
fsw_copy:
        lbu  $t5, 0($t3)
        sb   $t5, 0($t0)
        addiu $t0, $t0, 1
        addiu $t3, $t3, 1
        addiu $t4, $t4, -1
        bne  $t4, $zero, fsw_copy
        nop
        # Write the whole block through to disk via the bounce buffer.
        la   $t0, disk_busy
        lw   $t0, 0($t0)
        bne  $t0, $zero, fsw_wait
        nop
        sll  $t0, $v0, 12
        la   $t1, cache_data
        addu $t0, $t1, $t0       # src: cache block
        la   $t1, bounce_buf
        addiu $t3, $t0, 4096
fsw_bcopy:
        lw   $t4, 0($t0)
        sw   $t4, 0($t1)
        addiu $t0, $t0, 4
        addiu $t1, $t1, 4
        bne  $t0, $t3, fsw_bcopy
        nop
        sll  $a0, $s7, 3
        li   $a1, 8
        la   $a2, bounce_buf
        lui  $t0, 0x8000
        xor  $a2, $a2, $t0
        li   $a3, 5              # op: write
        jal  disk_submit
        nop
fsw_wait:
        move $a0, $s4
        j    blk_disk_restart
        nop
fsw_done:
        addu $s6, $s6, $s3
        sw   $s6, 4($s1)
        move $a0, $s3
        j    sys_return
        nop
fsw_zero:
        li   $a0, 0
        j    sys_return
        nop

# --- disk_submit: a0 = sector, a1 = count, a2 = phys, a3 = op type -------
        .globl disk_submit
disk_submit:
        li   $t0, %DEVBASE%
        sw   $a0, 0x20($t0)
        sw   $a2, 0x24($t0)
        sw   $a1, 0x28($t0)
        la   $t1, disk_busy
        li   $t2, 1
        sw   $t2, 0($t1)
        la   $t1, disk_op_type
        sw   $a3, 0($t1)
        la   $t1, disk_op_sector
        sw   $a0, 0($t1)
        # Command: reads are op 4 (bounce) and 3 (read-ahead); writes op 5.
        li   $t1, 5
        beq  $a3, $t1, ds_write
        nop
        li   $t1, 1
        sw   $t1, 0x2c($t0)
        jr   $ra
        nop
ds_write:
        li   $t1, 2
        sw   $t1, 0x2c($t0)
        jr   $ra
        nop

# --- disk interrupt -------------------------------------------------------
disk_irq:
        li   $t0, %DEVBASE%
        sw   $zero, 0x34($t0)    # DISK_ACK
        la   $t0, disk_busy
        sw   $zero, 0($t0)
        la   $t0, disk_op_type
        lw   $t1, 0($t0)
        sw   $zero, 0($t0)
        la   $t0, disk_op_sector
        lw   $t2, 0($t0)
        li   $t3, 4
        beq  $t1, $t3, di_fill
        nop
        li   $t3, 5
        beq  $t1, $t3, di_write
        nop
        li   $t3, 3
        beq  $t1, $t3, di_ra
        nop
        b    di_wake
        nop
di_fill:
        la   $t0, bounce_sector
        sw   $t2, 0($t0)
        la   $t0, bounce_is_read
        li   $t1, 1
        sw   $t1, 0($t0)
        # Chain the read-ahead if one was suggested and the device is free.
        la   $t0, ra_candidate
        lw   $t1, 0($t0)
        beq  $t1, $zero, di_wake
        nop
        sw   $zero, 0($t0)
        move $a0, $t1
        li   $a1, 8
        la   $a2, ra_buf
        lui  $t0, 0x8000
        xor  $a2, $a2, $t0
        li   $a3, 3
        jal  disk_submit
        nop
        b    di_wake
        nop
di_write:
        la   $t0, wdone_sector
        sw   $t2, 0($t0)
        b    di_wake
        nop
di_ra:
        la   $t0, ra_sector
        sw   $t2, 0($t0)
di_wake:
        # Ready every process blocked on the disk.
        la   $t0, nprocs
        lw   $t0, 0($t0)
        la   $t1, pcb_table
        li   $t2, 0
dw_loop:
        sltu $t3, $t2, $t0
        beq  $t3, $zero, dw_done
        nop
        sll  $t3, $t2, 8
        addu $t3, $t1, $t3
        lw   $t4, 136($t3)
        li   $t5, 3
        bne  $t4, $t5, dw_next
        nop
        lw   $t4, 172($t3)
        li   $t5, 1
        bne  $t4, $t5, dw_next
        nop
        li   $t4, 1
        sw   $t4, 136($t3)
        sw   $zero, 172($t3)
        addiu $sp, $sp, -8
        sw   $ra, 4($sp)
        sw   $t0, 0($sp)
        move $a0, $t3
        jal  ready_enqueue
        nop
        lw   $ra, 4($sp)
        lw   $t0, 0($sp)
        addiu $sp, $sp, 8
        la   $t1, pcb_table
dw_next:
        b    dw_loop
        addiu $t2, $t2, 1
dw_done:
        j    exc_exit
        nop

# --- tlbdropin: a0 = user vaddr -------------------------------------------
# Explicitly preloads the TLB entry for a user page the kernel just
# touched, so the user does not miss on it (Ultrix tlbdropin / Mach
# tlb_map_random — the simulator does not know about these writes, which is
# a named error source for Table 3).
        .globl tlbdropin
tlbdropin:
        la   $t2, kstat
        lw   $t3, 8($t2)
        addiu $t3, $t3, 1
        sw   $t3, 8($t2)         # calls counted, as the paper reports them
        lui  $t0, 0xffff
        ori  $t0, $t0, 0xf000
        and  $t1, $a0, $t0       # page base
        lw   $t2, 144($s0)       # asid
        sll  $t2, $t2, 6
        or   $t1, $t1, $t2
        mtc0 $t1, $entryhi
        tlbp
        mfc0 $t2, $index
        bgez $t2, td_present
        nop
        # PTE address in kseg2 for (pid, vpn).
        lw   $t2, 140($s0)
        sll  $t2, $t2, 21
        lui  $t3, 0xc000
        or   $t2, $t2, $t3
        srl  $t3, $a0, 12
        sll  $t3, $t3, 2
        addu $t2, $t2, $t3
        lw   $t2, 0($t2)         # PTE (may KTLB-miss; fine)
        mtc0 $t2, $entrylo
        tlbwr
td_present:
        # Restore EntryHi to the current ASID.
        lw   $t2, 144($s0)
        sll  $t2, $t2, 6
        mtc0 $t2, $entryhi
        jr   $ra
        nop
)";

  // ===== Mach personality: IPC, forwarding, device syscalls =============
  s += R"(
# ===== Mach personality ===================================================
# File syscalls become IPC round-trips through the user-level UNIX server:
# the microkernel builds a request message (copying the open() name out of
# the caller), queues it on port 0, wakes the server, and blocks the caller
# until the server's reply delivers v0.

# --- forward_fs: forward the current syscall to the server ----------------
forward_fs:
        la   $t0, server_pid
        lw   $t0, 0($t0)
        beq  $t0, $zero, fault_kill  # no server: cannot happen
        nop
        # Message: op, a0, a1, a2, caller pid, name[12].
        la   $t1, fwd_msg
        lw   $t2, 8($s0)
        sw   $t2, 0($t1)
        lw   $t2, 16($s0)
        sw   $t2, 4($t1)
        lw   $t2, 20($s0)
        sw   $t2, 8($t1)
        lw   $t2, 24($s0)
        sw   $t2, 12($t1)
        lw   $t2, 140($s0)
        sw   $t2, 16($t1)
        # open(): copy the filename into the message (12 bytes max).
        lw   $t2, 8($s0)
        li   $t3, 4
        bne  $t2, $t3, ff_enqueue
        nop
        lw   $t2, 16($s0)        # user name pointer
        addiu $t3, $t1, 20
        li   $t4, 12
ff_name:
        lbu  $t5, 0($t2)
        sb   $t5, 0($t3)
        beq  $t5, $zero, ff_enqueue
        nop
        addiu $t2, $t2, 1
        addiu $t3, $t3, 1
        addiu $t4, $t4, -1
        bne  $t4, $zero, ff_name
        nop
ff_enqueue:
        la   $a0, fwd_msg
        jal  port0_append
        nop
        # Block the caller awaiting the reply (epc stays advanced: the
        # reply delivers v0 directly).
        li   $t0, 3
        sw   $t0, 136($s0)
        sw   $t0, 172($s0)       # channel: reply
        la   $t0, cur_pcb
        sw   $zero, 0($t0)
        j    schedule
        nop

# --- port0_append: a0 = kseg0 message (8 words) ---------------------------
port0_append:
        la   $t0, p0_count
        lw   $t1, 0($t0)
        sltiu $t2, $t1, 8
        beq  $t2, $zero, kpanic  # queue overflow: system bug
        nop
        la   $t2, p0_tail
        lw   $t3, 0($t2)
        sll  $t4, $t3, 5
        la   $t5, p0_msgs
        addu $t4, $t5, $t4
        # Copy 8 words.
        li   $t5, 8
pa_copy:
        lw   $t6, 0($a0)
        sw   $t6, 0($t4)
        addiu $a0, $a0, 4
        addiu $t4, $t4, 4
        addiu $t5, $t5, -1
        bne  $t5, $zero, pa_copy
        nop
        addiu $t3, $t3, 1
        andi $t3, $t3, 7
        sw   $t3, 0($t2)
        addiu $t1, $t1, 1
        sw   $t1, 0($t0)
        # Wake a waiting receiver (the server).
        la   $t0, p0_waiter
        lw   $t1, 0($t0)
        beq  $t1, $zero, pa_done
        nop
        sw   $zero, 0($t0)
        li   $t2, 1
        sw   $t2, 136($t1)
        sw   $zero, 172($t1)
        addiu $sp, $sp, -4
        sw   $ra, 0($sp)
        move $a0, $t1
        jal  ready_enqueue
        nop
        lw   $ra, 0($sp)
        addiu $sp, $sp, 4
pa_done:
        jr   $ra
        nop

# --- msg_recv(port, buf): server receives a request -----------------------
sys_msgrecv:
        la   $t0, p0_count
        lw   $t1, 0($t0)
        bne  $t1, $zero, mr_have
        nop
        # Block with restart: re-execute when a message arrives.
        la   $t1, p0_waiter
        sw   $s0, 0($t1)
        lw   $t1, 128($s0)
        addiu $t1, $t1, -4
        sw   $t1, 128($s0)
        li   $t1, 3
        sw   $t1, 136($s0)
        li   $t1, 2
        sw   $t1, 172($s0)
        la   $t1, cur_pcb
        sw   $zero, 0($t1)
        j    schedule
        nop
mr_have:
        addiu $t1, $t1, -1
        sw   $t1, 0($t0)
        la   $t0, p0_head
        lw   $t1, 0($t0)
        sll  $t2, $t1, 5
        la   $t3, p0_msgs
        addu $t2, $t3, $t2       # message
        addiu $t1, $t1, 1
        andi $t1, $t1, 7
        sw   $t1, 0($t0)
        # Copy 8 words to the receiver's buffer (current address space).
        lw   $t0, 20($s0)        # user buf
        li   $t1, 8
mr_copy:
        lw   $t3, 0($t2)
        sw   $t3, 0($t0)
        addiu $t2, $t2, 4
        addiu $t0, $t0, 4
        addiu $t1, $t1, -1
        bne  $t1, $zero, mr_copy
        nop
        li   $a0, 0
        j    sys_return
        nop

# --- msg_send(port, buf): server replies to a caller ----------------------
sys_msgsend:
        lw   $t0, 20($s0)        # server buf (current AS)
        lw   $t1, 16($t0)        # word 4: caller pid
        addiu $t1, $t1, -1
        sll  $t1, $t1, 8
        la   $t2, pcb_table
        addu $t2, $t2, $t1       # caller pcb
        lw   $t3, 136($t2)
        li   $t4, 3
        bne  $t3, $t4, kpanic
        nop
        lw   $t3, 172($t2)
        bne  $t3, $t4, kpanic    # must be waiting on a reply (channel 3)
        nop
        lw   $t3, 4($t0)         # word 1: result value
        sw   $t3, 8($t2)         # caller's v0
        li   $t3, 1
        sw   $t3, 136($t2)
        sw   $zero, 172($t2)
        move $a0, $t2
        jal  ready_enqueue
        nop
        li   $a0, 0
        j    sys_return
        nop

# --- device block I/O for the server --------------------------------------
sys_devdiskread:
        lw   $t0, 140($s0)
        la   $t1, server_pid
        lw   $t1, 0($t1)
        bne  $t0, $t1, fault_kill
        nop
        lw   $s1, 16($s0)        # sector
        lw   $s2, 20($s0)        # buf
        lw   $s3, 24($s0)        # sector count (<= 8)
        la   $t0, bounce_sector
        lw   $t0, 0($t0)
        bne  $t0, $s1, ddr_fetch
        nop
        la   $t0, bounce_is_read
        lw   $t0, 0($t0)
        beq  $t0, $zero, ddr_fetch
        nop
        # Copy bounce -> server buffer (current AS), then an explicit TLB
        # load for the destination (tlb_map_random).
        la   $t0, bounce_buf
        sll  $t1, $s3, 9
        move $t2, $s2
ddr_copy:
        lw   $t3, 0($t0)
        sw   $t3, 0($t2)
        addiu $t0, $t0, 4
        addiu $t2, $t2, 4
        addiu $t1, $t1, -4
        bne  $t1, $zero, ddr_copy
        nop
        addiu $a0, $t2, -4
        jal  tlbdropin
        nop
        li   $a0, 0
        j    sys_return
        nop
ddr_fetch:
        la   $t0, disk_busy
        lw   $t0, 0($t0)
        bne  $t0, $zero, ddr_wait
        nop
        move $a0, $s1
        move $a1, $s3
        la   $a2, bounce_buf
        lui  $t0, 0x8000
        xor  $a2, $a2, $t0
        li   $a3, 4
        jal  disk_submit
        nop
ddr_wait:
        li   $a0, 0
        j    blk_disk_restart
        nop

sys_devdiskwrite:
        lw   $t0, 140($s0)
        la   $t1, server_pid
        lw   $t1, 0($t1)
        bne  $t0, $t1, fault_kill
        nop
        lw   $s1, 16($s0)        # sector
        lw   $s2, 20($s0)        # buf
        lw   $s3, 24($s0)        # count
        la   $t0, wdone_sector
        lw   $t0, 0($t0)
        bne  $t0, $s1, ddw_issue
        nop
        addiu $t1, $zero, -1
        la   $t0, wdone_sector
        sw   $t1, 0($t0)
        li   $a0, 0
        j    sys_return
        nop
ddw_issue:
        la   $t0, disk_busy
        lw   $t0, 0($t0)
        bne  $t0, $zero, ddw_wait
        nop
        # Copy server buffer -> bounce, then submit the write.
        sll  $t1, $s3, 9
        move $t2, $s2
        la   $t3, bounce_buf
ddw_copy:
        lw   $t4, 0($t2)
        sw   $t4, 0($t3)
        addiu $t2, $t2, 4
        addiu $t3, $t3, 4
        addiu $t1, $t1, -4
        bne  $t1, $zero, ddw_copy
        nop
        la   $t0, bounce_sector
        addiu $t1, $zero, -1
        sw   $t1, 0($t0)         # bounce no longer holds read data
        move $a0, $s1
        move $a1, $s3
        la   $a2, bounce_buf
        lui  $t0, 0x8000
        xor  $a2, $a2, $t0
        li   $a3, 5
        jal  disk_submit
        nop
ddw_wait:
        li   $a0, 0
        j    blk_disk_restart
        nop

# --- vm_copy(pid, remote_va, local_va, len-and-direction) -----------------
# a3 (PCB slot 28): length in bytes; bit 31 set = remote->local, clear =
# local->remote.  Server-only.  Remote pages are reached through the kseg2
# page tables and kseg0 (no TLB entries for foreign address spaces).
sys_vmcopy:
        lw   $t0, 140($s0)
        la   $t1, server_pid
        lw   $t1, 0($t1)
        bne  $t0, $t1, fault_kill
        nop
        lw   $s1, 16($s0)        # remote pid
        lw   $s2, 20($s0)        # remote va
        lw   $s3, 24($s0)        # local va
        lw   $s4, 28($s0)        # len | direction
        srl  $s5, $s4, 31        # direction
        sll  $s4, $s4, 1
        srl  $s4, $s4, 1         # length
vc_loop:
        blez $s4, vc_done
        nop
        # Resolve the remote byte through its page table.
        sll  $t0, $s1, 21
        lui  $t1, 0xc000
        or   $t0, $t0, $t1
        srl  $t1, $s2, 12
        sll  $t1, $t1, 2
        addu $t0, $t0, $t1
        lw   $t0, 0($t0)         # PTE (kseg2 load; may KTLB-miss)
        andi $t1, $t0, 0x200
        beq  $t1, $zero, fault_kill
        nop
        srl  $t0, $t0, 12
        sll  $t0, $t0, 12
        andi $t1, $s2, 0xfff
        or   $t0, $t0, $t1
        lui  $t1, 0x8000
        or   $t0, $t0, $t1       # kseg0 alias of the remote byte
        beq  $s5, $zero, vc_to_remote
        nop
        lbu  $t2, 0($t0)         # remote -> local
        b    vc_store_local
        nop
vc_to_remote:
        lbu  $t2, 0($s3)         # local (current AS)
        sb   $t2, 0($t0)
        b    vc_next
        nop
vc_store_local:
        sb   $t2, 0($s3)
vc_next:
        addiu $s2, $s2, 1
        addiu $s3, $s3, 1
        b    vc_loop
        addiu $s4, $s4, -1
vc_done:
        # Explicit TLB load for the remote page (tlb_map_random): install
        # the final page's translation under the *remote* ASID.
        addiu $t0, $s2, -1
        lui  $t1, 0xffff
        ori  $t1, $t1, 0xf000
        and  $t0, $t0, $t1
        sll  $t1, $s1, 6
        or   $t0, $t0, $t1
        mtc0 $t0, $entryhi
        tlbp
        mfc0 $t1, $index
        bgez $t1, vc_mapped
        nop
        sll  $t1, $s1, 21
        lui  $t2, 0xc000
        or   $t1, $t1, $t2
        addiu $t2, $s2, -1
        srl  $t2, $t2, 12
        sll  $t2, $t2, 2
        addu $t1, $t1, $t2
        lw   $t1, 0($t1)
        mtc0 $t1, $entrylo
        tlbwr
        la   $t1, kstat
        lw   $t2, 8($t1)
        addiu $t2, $t2, 1
        sw   $t2, 8($t1)
vc_mapped:
        lw   $t0, 144($s0)
        sll  $t0, $t0, 6
        mtc0 $t0, $entryhi
        li   $a0, 0
        j    sys_return
        nop
)";

  // ===== Kernel data =====================================================
  s += R"(
# ===== Kernel data ========================================================
        .data
        .align 8
        .globl kstat
kstat:  .word 0, 0, 0, 0, 0, 0, 0, 0   # epc, ucount, dropins, ktlb, analysis...
        .globl tracing_on
tracing_on:     .word 0
suspended:      .word 0
personality:    .word 0
nprocs:         .word 0
page_policy:    .word 0
policy_mult:    .word 0
server_pid:     .word 0
analysis_cost:  .word 0
cur_pcb:        .word 0
ready_head:     .word 0
ready_tail:     .word 0
knest:          .word 0
ticks:          .word 0
cswitch_count:  .word 0
ktrace_base_v:  .word 0
        .globl ktrace_ptr
ktrace_ptr:     .word 0
ktrace_limit_v: .word 0
kscratch_ptr:   .word 0
next_pt_frame:  .word 0
pt_pool_end:    .word 0
disk_busy:      .word 0
disk_op_type:   .word 0
disk_op_sector: .word 0
bounce_sector:  .word 0xffffffff
bounce_is_read: .word 0
wdone_sector:   .word 0xffffffff
ra_sector:      .word 0xffffffff
ra_candidate:   .word 0
cache_hand:     .word 0
p0_head:        .word 0
p0_tail:        .word 0
p0_count:       .word 0
p0_waiter:      .word 0

        .bss
        .align 4096
        .globl bk_area
bk_area:        .space 64
fwd_msg:        .space 32
fs_dir:         .space 512
        .align 8
cache_hdr:      .space 128      # 16 x {block, state}
p0_msgs:        .space 256      # 8 x 32-byte messages
        .align 4096
bounce_buf:     .space 4096
ra_buf:         .space 4096
cache_data:     .space 65536    # 16 x 4 KB
        .globl kptdir
kptdir:         .space 65536    # kseg2 directory: 16K pages = 64 MB of kseg2
        .align 256
pcb_table:      .space 2048     # 8 PCBs x 256 bytes
)";
  return s;
}

}  // namespace wrl
