// wrlprof: trace-attribution profiling (the analysis-side answer to the
// paper's §5 distortion discussion).
//
// The raw trace answers "how many references" (wrlstats counters); the
// profiler answers "which code and which pages".  TraceProfiler is an
// ordinary RefBatchSink, so it consumes the reconstructed reference stream
// anywhere one exists — live behind the parser during a traced run, or as
// a ReplayEngine config over a captured TraceLog — and both paths produce
// bit-identical profiles (no wall clock, no floats, no iteration-order
// dependence in the accumulated state).
//
// Attribution mirrors the parser's cursor state machine from the sink side
// of the ABI.  Within one address space the parser only ever suspends a
// block at a data-await point (ifetch runs are emitted atomically per trace
// word), so a per-space cursor *stack* reattributes every reference to the
// basic block that generated it:
//
//   * an ifetch matching the top cursor's expected next address advances
//     that cursor (mid-block continuation);
//   * otherwise an ifetch naming a known block leader pushes a new cursor
//     (block entry — including nested kernel exceptions interrupting a
//     suspended block);
//   * a load/store is charged to the top cursor when it awaits one;
//   * anything else is counted as unattributed, never guessed.
//
// From the per-block tallies the profiler derives per-symbol rollups (via
// the original images' symbol tables), kernel/user/idle splits, per-page
// reference heatmaps, a windowed working-set curve, and — using the exact
// per-block instrumented sizes epoxie records — the trace-volume and
// dilation attribution of §5: every trace word and every epoxie-inserted
// instruction charged back to the block that caused it.
#ifndef WRLTRACE_PROF_PROF_H_
#define WRLTRACE_PROF_PROF_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obj/object_file.h"
#include "support/json.h"
#include "trace/parser.h"

namespace wrl {

struct ProfileOptions {
  // References per working-set window (every reference counts one).
  uint64_t window_refs = 1u << 18;
  // Heatmap granularity; must be a power of two.
  uint32_t page_bytes = 4096;
};

// Per-basic-block tally, keyed by (address space, original leader address).
struct BlockProfile {
  uint8_t pid = kKernelPid;     // Address space (kKernelPid for kernel).
  std::string space;            // Display name ("kernel", "workload", ...).
  std::string symbol;           // "symbol+0xOFF" covering the leader.
  uint32_t addr = 0;            // Original-binary leader address.
  uint32_t num_insts = 0;       // Static size (original instructions).
  uint32_t instr_words = 0;     // Static instrumented size (0 if unknown).
  uint32_t flags = 0;           // BlockFlags.
  uint64_t entries = 0;
  uint64_t insts = 0;
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t idle_insts = 0;

  // Trace words this block wrote: one key per entry + one per memory op
  // (exactly the parser's input, so Σ TraceWords() == parser.words minus
  // markers/operands).
  uint64_t TraceWords() const { return entries + loads + stores; }
  // Epoxie-inserted instructions executed on behalf of this block: each
  // entry runs the whole instrumented body in place of the original one.
  uint64_t OverheadInsts() const {
    return instr_words > num_insts ? entries * (instr_words - num_insts) : 0;
  }
};

// Per-symbol rollup of the blocks that fall inside it.
struct SymbolProfile {
  uint8_t pid = kKernelPid;
  std::string space;
  std::string name;             // "[unknown]" when no symbol covers the block.
  uint32_t addr = 0;            // Symbol address (0 for [unknown]).
  uint64_t blocks = 0;          // Distinct blocks rolled up.
  uint64_t entries = 0;
  uint64_t insts = 0;
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t trace_words = 0;
  uint64_t overhead_insts = 0;
};

// Per-page reference heatmap entry.
struct PageProfile {
  uint8_t pid = kKernelPid;
  std::string space;
  uint32_t page_addr = 0;       // Page-aligned virtual address.
  uint64_t ifetches = 0;
  uint64_t loads = 0;
  uint64_t stores = 0;

  uint64_t Total() const { return ifetches + loads + stores; }
};

struct ProfileTotals {
  uint64_t refs = 0;
  uint64_t insts = 0;
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t kernel_insts = 0;
  uint64_t user_insts = 0;
  uint64_t idle_insts = 0;
  uint64_t block_entries = 0;
  uint64_t trace_words = 0;      // Σ per-block TraceWords().
  uint64_t overhead_insts = 0;   // Σ per-block OverheadInsts().
  // References the cursor mirror could not attribute to a block (corrupt
  // traces, spaces with no table).  Zero on a healthy trace.
  uint64_t unattributed_insts = 0;
  uint64_t unattributed_data = 0;
};

struct Profile {
  ProfileTotals totals;
  std::vector<BlockProfile> blocks;    // Hottest first (insts desc, pid, addr).
  std::vector<SymbolProfile> symbols;  // Hottest first (insts desc, pid, name).
  std::vector<PageProfile> pages;      // Hottest first (total desc, pid, addr).
  std::vector<uint64_t> working_set;   // Unique pages touched per window.
  uint64_t window_refs = 0;            // Window size the curve used.
  uint64_t tail_refs = 0;              // Refs in the final partial window.
  uint32_t page_bytes = 4096;

  // The `profile` block of wrlstats/1 reports and the payload of wrlprof/1
  // documents.  `top` caps blocks/symbols/pages arrays (0 = everything);
  // totals and the working-set curve are always complete.
  void WriteJson(JsonWriter& writer, size_t top = 0) const;
  // Flamegraph-compatible folded stacks: "space;symbol;block_0xADDR count".
  std::string FoldedStacks() const;
  // Canonical full serialization — the bit-identity comparand in tests.
  std::string CanonicalJson() const;
};

// Accumulates a Profile from a reference stream.  Wiring: AddTable() per
// address space (same tables the parser uses), AddSymbols() per original
// image, then deliver references (it is a RefBatchSink) and Finish().
class TraceProfiler : public RefBatchSink {
 public:
  explicit TraceProfiler(ProfileOptions options = ProfileOptions());

  // Registers the block table for one address space (kKernelPid = kernel).
  // Spaces without a table accumulate only totals/pages as unattributed.
  void AddTable(uint8_t pid, const TraceInfoTable* table);
  // Registers the text symbols of the *original* image for the space:
  // global symbols within [text_base, TextEnd()) become rollup buckets.
  void AddSymbols(uint8_t pid, const Executable& exe);
  // Single-symbol form (tests, hand-built spaces).
  void AddSymbol(uint8_t pid, const std::string& name, uint32_t addr);
  // Display name for the space ("kernel"/"pid<N>" by default).
  void SetSpaceName(uint8_t pid, std::string name);

  void OnRefBatch(const TraceRef* refs, size_t count) override;
  void OnRef(const TraceRef& ref);

  // Sorts, rolls up, and returns the finished profile.  The profiler can
  // keep consuming references afterwards; Finish() snapshots current state.
  Profile Finish() const;

  const ProfileOptions& options() const { return options_; }
  // Resolves `addr` in space `pid` to "symbol+0xOFF" (hex address when no
  // symbol covers it) — the CLI's table renderer.
  std::string Symbolize(uint8_t pid, uint32_t addr) const;
  std::string SpaceName(uint8_t pid) const;

 private:
  struct Cursor {
    const TraceBlockInfo* info = nullptr;
    uint32_t leader = 0;     // Original leader address (tally key).
    uint32_t next_inst = 0;  // Next original instruction index expected.
    uint32_t next_mem = 0;   // Next info->mem_ops entry awaiting data.
    bool awaiting = false;   // An ifetched memory op awaits its data word.
  };

  struct BlockTally {
    const TraceBlockInfo* info = nullptr;
    uint64_t entries = 0;
    uint64_t insts = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t idle_insts = 0;
  };

  struct Space {
    std::string name;
    const TraceInfoTable* table = nullptr;
    // Original leader address -> block info (duplicate leaders keep the
    // entry with the smallest key address, deterministically).
    std::unordered_map<uint32_t, const TraceBlockInfo*> leaders;
    std::unordered_map<uint32_t, uint32_t> leader_keys;  // leader -> key addr.
    std::unordered_map<uint32_t, BlockTally> tallies;
    std::unordered_map<uint32_t, PageProfile> pages;
    // Sorted lazily on first lookup (mutable: Finish() is const).
    mutable std::vector<std::pair<uint32_t, std::string>> symbols;
    mutable bool symbols_sorted = true;
    std::vector<Cursor> stack;
  };

  Space& SpaceFor(uint8_t pid);
  const Space* FindSpace(uint8_t pid) const;
  // Charges one ifetch to `cursor`'s block and advances it; pops the cursor
  // when the block completes without pending memory ops.
  void AdvanceCursor(Space& space, const TraceRef& ref);
  void TouchPage(Space& space, const TraceRef& ref);
  void TouchWorkingSet(uint8_t pid, uint32_t addr);
  // Last sorted symbol at or below `addr`; nullptr when none.
  const std::pair<uint32_t, std::string>* SymbolAtOrBelow(const Space& space,
                                                          uint32_t addr) const;

  ProfileOptions options_;
  uint32_t page_shift_ = 12;
  // std::map: Finish() iterates spaces in pid order for determinism.
  std::map<uint8_t, Space> spaces_;
  ProfileTotals totals_;
  // Working-set curve state: pages touched in the current window.  Pages
  // from different spaces are distinct (key = page | pid<<32... packed in
  // 64 bits).
  std::unordered_set<uint64_t> window_pages_;
  uint64_t window_fill_ = 0;
  std::vector<uint64_t> working_set_;
};

}  // namespace wrl

#endif  // WRLTRACE_PROF_PROF_H_
