#include "prof/prof.h"

#include <algorithm>

#include "support/error.h"
#include "support/strings.h"

namespace wrl {

TraceProfiler::TraceProfiler(ProfileOptions options) : options_(options) {
  WRL_CHECK_MSG(options_.page_bytes != 0 &&
                    (options_.page_bytes & (options_.page_bytes - 1)) == 0,
                "profile page_bytes must be a power of two");
  WRL_CHECK_MSG(options_.window_refs != 0, "profile window_refs must be nonzero");
  page_shift_ = 0;
  while ((1u << page_shift_) != options_.page_bytes) {
    ++page_shift_;
  }
}

TraceProfiler::Space& TraceProfiler::SpaceFor(uint8_t pid) {
  auto [it, inserted] = spaces_.try_emplace(pid);
  if (inserted) {
    it->second.name =
        pid == kKernelPid ? "kernel" : StrFormat("pid%u", static_cast<unsigned>(pid));
  }
  return it->second;
}

const TraceProfiler::Space* TraceProfiler::FindSpace(uint8_t pid) const {
  auto it = spaces_.find(pid);
  return it == spaces_.end() ? nullptr : &it->second;
}

void TraceProfiler::AddTable(uint8_t pid, const TraceInfoTable* table) {
  Space& space = SpaceFor(pid);
  space.table = table;
  space.leaders.clear();
  space.leader_keys.clear();
  if (table == nullptr) {
    return;
  }
  space.leaders.reserve(table->size());
  space.leader_keys.reserve(table->size());
  for (const auto& [key_addr, info] : table->blocks()) {
    auto it = space.leader_keys.find(info.orig_addr);
    // Duplicate leaders (should not happen for well-formed tables) resolve
    // to the smallest key address so the choice is iteration-order-free.
    if (it == space.leader_keys.end() || key_addr < it->second) {
      space.leader_keys[info.orig_addr] = key_addr;
      space.leaders[info.orig_addr] = &info;
    }
  }
}

void TraceProfiler::AddSymbols(uint8_t pid, const Executable& exe) {
  Space& space = SpaceFor(pid);
  for (const auto& [name, addr] : exe.symbols) {
    if (addr >= exe.text_base && addr < exe.TextEnd()) {
      space.symbols.emplace_back(addr, name);
      space.symbols_sorted = false;
    }
  }
}

void TraceProfiler::AddSymbol(uint8_t pid, const std::string& name, uint32_t addr) {
  Space& space = SpaceFor(pid);
  space.symbols.emplace_back(addr, name);
  space.symbols_sorted = false;
}

void TraceProfiler::SetSpaceName(uint8_t pid, std::string name) {
  SpaceFor(pid).name = std::move(name);
}

const std::pair<uint32_t, std::string>* TraceProfiler::SymbolAtOrBelow(
    const Space& space, uint32_t addr) const {
  if (!space.symbols_sorted) {
    std::sort(space.symbols.begin(), space.symbols.end());
    space.symbols_sorted = true;
  }
  auto it = std::upper_bound(
      space.symbols.begin(), space.symbols.end(), addr,
      [](uint32_t a, const std::pair<uint32_t, std::string>& s) { return a < s.first; });
  if (it == space.symbols.begin()) {
    return nullptr;
  }
  return &*(it - 1);
}

std::string TraceProfiler::Symbolize(uint8_t pid, uint32_t addr) const {
  const Space* space = FindSpace(pid);
  const std::pair<uint32_t, std::string>* sym =
      space == nullptr ? nullptr : SymbolAtOrBelow(*space, addr);
  if (sym == nullptr) {
    return StrFormat("0x%08x", addr);
  }
  uint32_t off = addr - sym->first;
  return off == 0 ? sym->second : StrFormat("%s+0x%x", sym->second.c_str(), off);
}

std::string TraceProfiler::SpaceName(uint8_t pid) const {
  const Space* space = FindSpace(pid);
  if (space != nullptr) {
    return space->name;
  }
  return pid == kKernelPid ? "kernel" : StrFormat("pid%u", static_cast<unsigned>(pid));
}

void TraceProfiler::TouchPage(Space& space, const TraceRef& ref) {
  uint32_t page = (ref.addr >> page_shift_) << page_shift_;
  PageProfile& tally = space.pages[page];
  tally.page_addr = page;
  switch (ref.kind) {
    case TraceRef::kIfetch:
      ++tally.ifetches;
      break;
    case TraceRef::kLoad:
      ++tally.loads;
      break;
    case TraceRef::kStore:
      ++tally.stores;
      break;
  }
}

void TraceProfiler::TouchWorkingSet(uint8_t pid, uint32_t addr) {
  uint64_t key = (static_cast<uint64_t>(pid) << 32) | (addr >> page_shift_);
  window_pages_.insert(key);
  if (++window_fill_ == options_.window_refs) {
    working_set_.push_back(window_pages_.size());
    window_pages_.clear();
    window_fill_ = 0;
  }
}

void TraceProfiler::AdvanceCursor(Space& space, const TraceRef& ref) {
  Cursor& cursor = space.stack.back();
  BlockTally& tally = space.tallies[cursor.leader];
  ++tally.insts;
  if (ref.idle) {
    ++tally.idle_insts;
  }
  ++cursor.next_inst;
  const TraceBlockInfo& info = *cursor.info;
  if (cursor.next_mem < info.mem_ops.size() &&
      info.mem_ops[cursor.next_mem].index == cursor.next_inst - 1) {
    cursor.awaiting = true;
  } else if (cursor.next_inst == info.num_insts) {
    space.stack.pop_back();
  }
}

void TraceProfiler::OnRef(const TraceRef& ref) {
  Space& space = SpaceFor(ref.pid);
  ++totals_.refs;
  TouchPage(space, ref);
  TouchWorkingSet(ref.pid, ref.addr);

  if (ref.kind == TraceRef::kIfetch) {
    ++totals_.insts;
    if (ref.kernel) {
      ++totals_.kernel_insts;
    } else {
      ++totals_.user_insts;
    }
    if (ref.idle) {
      ++totals_.idle_insts;
    }
    // Continuation of the block in progress?  (The parser suspends blocks
    // only at data-await points, so a non-awaiting top cursor's next ifetch
    // is always the expected address on a healthy trace.)
    if (!space.stack.empty()) {
      Cursor& top = space.stack.back();
      if (!top.awaiting && ref.addr == top.info->orig_addr + 4 * top.next_inst) {
        AdvanceCursor(space, ref);
        return;
      }
    }
    // Block entry (including a nested exception on top of an awaiting
    // cursor): the leader address must be in the space's table.
    auto it = space.leaders.find(ref.addr);
    if (it == space.leaders.end()) {
      ++totals_.unattributed_insts;
      return;
    }
    Cursor cursor;
    cursor.info = it->second;
    cursor.leader = ref.addr;
    space.stack.push_back(cursor);
    BlockTally& tally = space.tallies[ref.addr];
    tally.info = it->second;
    ++tally.entries;
    ++totals_.block_entries;
    AdvanceCursor(space, ref);
    return;
  }

  // Data reference.
  if (ref.kind == TraceRef::kLoad) {
    ++totals_.loads;
  } else {
    ++totals_.stores;
  }
  if (space.stack.empty() || !space.stack.back().awaiting) {
    ++totals_.unattributed_data;
    return;
  }
  Cursor& top = space.stack.back();
  BlockTally& tally = space.tallies[top.leader];
  if (ref.kind == TraceRef::kLoad) {
    ++tally.loads;
  } else {
    ++tally.stores;
  }
  top.awaiting = false;
  ++top.next_mem;
  if (top.next_inst == top.info->num_insts) {
    space.stack.pop_back();
  }
}

void TraceProfiler::OnRefBatch(const TraceRef* refs, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    OnRef(refs[i]);
  }
}

Profile TraceProfiler::Finish() const {
  Profile profile;
  profile.totals = totals_;
  profile.window_refs = options_.window_refs;
  profile.page_bytes = options_.page_bytes;
  profile.working_set = working_set_;
  profile.tail_refs = window_fill_;
  if (window_fill_ > 0) {
    profile.working_set.push_back(window_pages_.size());
  }

  for (const auto& [pid, space] : spaces_) {
    // Blocks, in address order first (the rollup walk), re-sorted by heat
    // below.
    std::vector<uint32_t> leaders;
    leaders.reserve(space.tallies.size());
    for (const auto& [leader, tally] : space.tallies) {
      (void)tally;
      leaders.push_back(leader);
    }
    std::sort(leaders.begin(), leaders.end());

    std::map<std::pair<uint32_t, std::string>, SymbolProfile> rollup;
    for (uint32_t leader : leaders) {
      const BlockTally& tally = space.tallies.at(leader);
      BlockProfile block;
      block.pid = pid;
      block.space = space.name;
      block.symbol = Symbolize(pid, leader);
      block.addr = leader;
      block.num_insts = tally.info->num_insts;
      block.instr_words = tally.info->instr_words;
      block.flags = tally.info->flags;
      block.entries = tally.entries;
      block.insts = tally.insts;
      block.loads = tally.loads;
      block.stores = tally.stores;
      block.idle_insts = tally.idle_insts;
      profile.totals.trace_words += block.TraceWords();
      profile.totals.overhead_insts += block.OverheadInsts();

      const std::pair<uint32_t, std::string>* sym = SymbolAtOrBelow(space, leader);
      std::pair<uint32_t, std::string> key =
          sym == nullptr ? std::make_pair(0u, std::string("[unknown]")) : *sym;
      SymbolProfile& entry = rollup[key];
      entry.pid = pid;
      entry.space = space.name;
      entry.name = key.second;
      entry.addr = key.first;
      ++entry.blocks;
      entry.entries += block.entries;
      entry.insts += block.insts;
      entry.loads += block.loads;
      entry.stores += block.stores;
      entry.trace_words += block.TraceWords();
      entry.overhead_insts += block.OverheadInsts();

      profile.blocks.push_back(std::move(block));
    }
    for (auto& [key, entry] : rollup) {
      (void)key;
      profile.symbols.push_back(std::move(entry));
    }

    std::vector<uint32_t> page_addrs;
    page_addrs.reserve(space.pages.size());
    for (const auto& [page, tally] : space.pages) {
      (void)tally;
      page_addrs.push_back(page);
    }
    std::sort(page_addrs.begin(), page_addrs.end());
    for (uint32_t page : page_addrs) {
      PageProfile entry = space.pages.at(page);
      entry.pid = pid;
      entry.space = space.name;
      profile.pages.push_back(std::move(entry));
    }
  }

  std::sort(profile.blocks.begin(), profile.blocks.end(),
            [](const BlockProfile& a, const BlockProfile& b) {
              if (a.insts != b.insts) return a.insts > b.insts;
              if (a.pid != b.pid) return a.pid < b.pid;
              return a.addr < b.addr;
            });
  std::sort(profile.symbols.begin(), profile.symbols.end(),
            [](const SymbolProfile& a, const SymbolProfile& b) {
              if (a.insts != b.insts) return a.insts > b.insts;
              if (a.pid != b.pid) return a.pid < b.pid;
              if (a.addr != b.addr) return a.addr < b.addr;
              return a.name < b.name;
            });
  std::sort(profile.pages.begin(), profile.pages.end(),
            [](const PageProfile& a, const PageProfile& b) {
              if (a.Total() != b.Total()) return a.Total() > b.Total();
              if (a.pid != b.pid) return a.pid < b.pid;
              return a.page_addr < b.page_addr;
            });
  return profile;
}

void Profile::WriteJson(JsonWriter& writer, size_t top) const {
  writer.BeginObject();
  writer.Key("totals");
  writer.BeginObject();
  writer.KV("refs", totals.refs);
  writer.KV("insts", totals.insts);
  writer.KV("loads", totals.loads);
  writer.KV("stores", totals.stores);
  writer.KV("kernel_insts", totals.kernel_insts);
  writer.KV("user_insts", totals.user_insts);
  writer.KV("idle_insts", totals.idle_insts);
  writer.KV("block_entries", totals.block_entries);
  writer.KV("trace_words", totals.trace_words);
  writer.KV("overhead_insts", totals.overhead_insts);
  writer.KV("unattributed_insts", totals.unattributed_insts);
  writer.KV("unattributed_data", totals.unattributed_data);
  writer.EndObject();
  writer.KV("window_refs", window_refs);
  writer.KV("tail_refs", tail_refs);
  writer.KV("page_bytes", static_cast<uint64_t>(page_bytes));
  writer.Key("working_set");
  writer.BeginArray();
  for (uint64_t pages_in_window : working_set) {
    writer.Value(pages_in_window);
  }
  writer.EndArray();

  size_t n_blocks = top == 0 ? blocks.size() : std::min(top, blocks.size());
  writer.Key("blocks");
  writer.BeginArray();
  for (size_t i = 0; i < n_blocks; ++i) {
    const BlockProfile& b = blocks[i];
    writer.BeginObject();
    writer.KV("space", b.space);
    writer.KV("addr", StrFormat("0x%08x", b.addr));
    writer.KV("symbol", b.symbol);
    writer.KV("num_insts", static_cast<uint64_t>(b.num_insts));
    writer.KV("instr_words", static_cast<uint64_t>(b.instr_words));
    writer.KV("entries", b.entries);
    writer.KV("insts", b.insts);
    writer.KV("loads", b.loads);
    writer.KV("stores", b.stores);
    writer.KV("idle_insts", b.idle_insts);
    writer.KV("trace_words", b.TraceWords());
    writer.KV("overhead_insts", b.OverheadInsts());
    writer.EndObject();
  }
  writer.EndArray();

  size_t n_symbols = top == 0 ? symbols.size() : std::min(top, symbols.size());
  writer.Key("symbols");
  writer.BeginArray();
  for (size_t i = 0; i < n_symbols; ++i) {
    const SymbolProfile& s = symbols[i];
    writer.BeginObject();
    writer.KV("space", s.space);
    writer.KV("name", s.name);
    writer.KV("addr", StrFormat("0x%08x", s.addr));
    writer.KV("blocks", s.blocks);
    writer.KV("entries", s.entries);
    writer.KV("insts", s.insts);
    writer.KV("loads", s.loads);
    writer.KV("stores", s.stores);
    writer.KV("trace_words", s.trace_words);
    writer.KV("overhead_insts", s.overhead_insts);
    writer.EndObject();
  }
  writer.EndArray();

  size_t n_pages = top == 0 ? pages.size() : std::min(top, pages.size());
  writer.Key("pages");
  writer.BeginArray();
  for (size_t i = 0; i < n_pages; ++i) {
    const PageProfile& p = pages[i];
    writer.BeginObject();
    writer.KV("space", p.space);
    writer.KV("page", StrFormat("0x%08x", p.page_addr));
    writer.KV("ifetches", p.ifetches);
    writer.KV("loads", p.loads);
    writer.KV("stores", p.stores);
    writer.KV("total", p.Total());
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
}

std::string Profile::FoldedStacks() const {
  std::string out;
  for (const BlockProfile& b : blocks) {
    // Strip the +0xOFF suffix: the folded frame names the covering symbol,
    // the leaf frame carries the exact block address.
    std::string symbol = b.symbol;
    size_t plus = symbol.rfind("+0x");
    if (plus != std::string::npos) {
      symbol.resize(plus);
    }
    out += StrFormat("%s;%s;block_0x%08x %llu\n", b.space.c_str(), symbol.c_str(), b.addr,
                     static_cast<unsigned long long>(b.insts));
  }
  return out;
}

std::string Profile::CanonicalJson() const {
  JsonWriter writer(0);
  WriteJson(writer);
  return writer.TakeString();
}

}  // namespace wrl
