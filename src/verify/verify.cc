#include "verify/verify.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "isa/isa.h"
#include "support/json.h"
#include "support/strings.h"
#include "trace/abi.h"

namespace wrl {

const char* VerifySeverityName(VerifySeverity severity) {
  switch (severity) {
    case VerifySeverity::kInfo: return "info";
    case VerifySeverity::kWarning: return "warning";
    case VerifySeverity::kError: return "error";
  }
  return "?";
}

const char* VerifyPassName(VerifyPass pass) {
  switch (pass) {
    case VerifyPass::kCfg: return "cfg";
    case VerifyPass::kShape: return "shape";
    case VerifyPass::kLiveness: return "liveness";
    case VerifyPass::kRelocation: return "relocation";
    case VerifyPass::kTraceTable: return "tracetable";
    case VerifyPass::kScavenge: return "scavenge";
  }
  return "?";
}

size_t VerifyReport::CountForPass(VerifyPass pass) const {
  size_t n = 0;
  for (const VerifyFinding& f : findings) {
    if (f.pass == pass) {
      ++n;
    }
  }
  return n;
}

const VerifyFinding* VerifyReport::FirstForPass(VerifyPass pass) const {
  for (const VerifyFinding& f : findings) {
    if (f.pass == pass) {
      return &f;
    }
  }
  return nullptr;
}

void VerifyReport::Merge(const VerifyReport& other) {
  findings.insert(findings.end(), other.findings.begin(), other.findings.end());
  stats.blocks += other.stats.blocks;
  stats.traced_blocks += other.stats.traced_blocks;
  stats.instructions += other.stats.instructions;
  stats.mem_ops += other.stats.mem_ops;
  stats.relocations += other.stats.relocations;
  stats.errors += other.stats.errors;
  stats.warnings += other.stats.warnings;
}

void VerifyReport::RegisterStats(StatsRegistry& registry, const std::string& prefix) {
  registry.AddCounter(prefix + "blocks", &stats.blocks);
  registry.AddCounter(prefix + "traced_blocks", &stats.traced_blocks);
  registry.AddCounter(prefix + "instructions", &stats.instructions);
  registry.AddCounter(prefix + "mem_ops", &stats.mem_ops);
  registry.AddCounter(prefix + "relocations", &stats.relocations);
  registry.AddCounter(prefix + "errors", &stats.errors);
  registry.AddCounter(prefix + "warnings", &stats.warnings);
}

void VerifyReport::WriteJson(JsonWriter& writer) const {
  writer.BeginObject();
  writer.Key("stats");
  writer.BeginObject();
  writer.KV("blocks", stats.blocks);
  writer.KV("traced_blocks", stats.traced_blocks);
  writer.KV("instructions", stats.instructions);
  writer.KV("mem_ops", stats.mem_ops);
  writer.KV("relocations", stats.relocations);
  writer.KV("errors", stats.errors);
  writer.KV("warnings", stats.warnings);
  writer.EndObject();
  writer.Key("findings");
  writer.BeginArray();
  for (const VerifyFinding& f : findings) {
    writer.BeginObject();
    writer.KV("severity", VerifySeverityName(f.severity));
    writer.KV("pass", VerifyPassName(f.pass));
    writer.KV("pc", StrFormat("0x%08x", f.pc));
    writer.KV("block", static_cast<int64_t>(f.block));
    writer.KV("symbol", f.symbol);
    writer.KV("message", f.message);
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
}

namespace {

// Syntactic role of one instrumented word, decided from the decoded
// instruction and its relocations alone (no walk context).
enum class WordClass : uint8_t {
  kProgram,            // Not recognizably synthesized.
  kTraceCall,          // jal bbtrace / jal memtrace (by relocation symbol).
  kBkLui,              // lui at, %hi(bk_area)
  kBkOri,              // ori at, at, %lo(bk_area)
  kSpillSave,          // sw xN, SPILL_N($at)
  kSpillReload,        // lw xN, SPILL_N($at)
  kShadowLoad,         // lw xN, SHADOW_N($at)
  kShadowStore,        // sw xN, SHADOW_N($at)
  kShadowMaterialize,  // lw at, SHADOW_N($at)  (stolen base for memtrace)
  kRefreshStore,       // sw ra, SAVED_RA($at)  (SAVED_RA refresh tail)
  kScavShadowLoad,     // lw rD, SHADOW_N($at), rD a scavenged scratch
  kScavShadowStore,    // sw rD, SHADOW_N($at), rD a scavenged scratch
};

bool IsSpillOffset(int16_t imm, unsigned* index) {
  for (unsigned i = 0; i < 3; ++i) {
    if (imm == static_cast<int16_t>(kBkSpill0 + 4 * i)) {
      *index = i;
      return true;
    }
  }
  return false;
}

bool IsShadowOffset(int16_t imm, unsigned* index) {
  for (unsigned i = 0; i < 3; ++i) {
    if (imm == static_cast<int16_t>(kBkShadow0 + 4 * i)) {
      *index = i;
      return true;
    }
  }
  return false;
}

uint8_t StolenByIndex(unsigned index) {
  return index == 0 ? kXreg1 : index == 1 ? kXreg2 : kXreg3;
}

constexpr uint32_t kStolenMask = (1u << kXreg1) | (1u << kXreg2) | (1u << kXreg3);
constexpr uint32_t kRaMask = 1u << kRa;

// Registers a scavenged window must never borrow: the constant/assembler
// registers, the kernel scratch pair, stack/global conventions, $ra, and
// the stolen set itself.  (Independent restatement of the rewriter's rule.)
constexpr uint32_t kScratchForbidden = (1u << kZero) | (1u << kAt) | (1u << kK0) |
                                       (1u << kK1) | (1u << kGp) | (1u << kSp) |
                                       (1u << kRa) | kStolenMask;

// Independent recomputation of the interprocedural register liveness that
// justifies epoxie's scavenging rewrites.  This is deliberately NOT the
// src/dataflow solver: it re-derives the same abstract semantics (the
// contract pinned in dataflow/dataflow.h's file comment) by round-robin
// sweeps directly over the instruction array, sharing no analysis code with
// the optimizer.  Both compute the unique least fixpoint of the same
// equation system, so a legitimate rewrite verifies cleanly and any
// disagreement is a genuine finding.
class RefLiveness {
 public:
  explicit RefLiveness(const ObjectFile& obj) : n_(obj.NumTextWords()) {
    insts_.reserve(n_);
    for (uint32_t i = 0; i < n_; ++i) {
      insts_.push_back(Decode(obj.TextWord(i * 4)));
    }
    slot_.assign(n_, false);
    for (uint32_t i = 0; i + 1 < n_; ++i) {
      if (!slot_[i] && HasDelaySlot(insts_[i].op)) {
        slot_[i + 1] = true;
      }
    }
    std::map<std::string, uint32_t> text_syms;
    for (const Symbol& s : obj.symbols) {
      if (s.section == SectionId::kText && s.value % 4 == 0 && s.value / 4 < n_) {
        text_syms.emplace(s.name, s.value / 4);
      }
    }
    for (const Relocation& r : obj.relocations) {
      if (r.section != SectionId::kText || r.type != RelocType::kJump26 ||
          r.offset % 4 != 0 || r.addend != 0) {
        continue;
      }
      auto it = text_syms.find(r.symbol);
      if (it != text_syms.end() && !slot_[it->second]) {
        target_of_.emplace(r.offset / 4, it->second);
      }
    }
    // Local callees: resolvable jal sites outside delay slots.
    std::map<uint32_t, Summary> sums;
    for (const auto& [w, entry] : target_of_) {
      if (insts_[w].op == Op::kJal && !slot_[w]) {
        sums.emplace(entry, Summary{0, kAll});
      }
    }
    std::vector<uint32_t> in_all;
    // The outer summary iteration is monotone and bounded (each of ≤32 bits
    // per summary side flips at most once); the cap is a defensive backstop
    // that degrades to "everything live" (sound: it can only over-report).
    for (int round = 0; round < 4096; ++round) {
      std::vector<uint32_t> in_none = Sweep(0, sums);
      in_all = Sweep(kAll, sums);
      bool changed = false;
      for (auto& [entry, sum] : sums) {
        const Summary next{in_none[entry], ~in_all[entry]};
        if (next.use != sum.use || next.def != sum.def) {
          sum = next;
          changed = true;
        }
      }
      if (!changed) {
        in_ = std::move(in_all);
        return;
      }
    }
    in_.assign(n_, kAll);
  }

  uint32_t LiveIn(uint32_t word) const { return word < in_.size() ? in_[word] : kAll; }

 private:
  static constexpr uint32_t kAll = 0xffffffffu;
  struct Summary {
    uint32_t use;  // May be read before written on some path.
    uint32_t def;  // Written on every path before any read or return.
  };

  static bool Opaque(const Inst& a) {
    return a.op == Op::kInvalid || a.op == Op::kSyscall || a.op == Op::kBreak;
  }

  // in[] at an edge to word `t`; edges off-text or onto a delay-slot word
  // degrade to top.
  uint32_t Edge(const std::vector<uint32_t>& in, int64_t t) const {
    if (t < 0 || t >= static_cast<int64_t>(n_) || slot_[static_cast<uint32_t>(t)]) {
      return kAll;
    }
    return in[static_cast<uint32_t>(t)];
  }

  // Value live immediately after the CTI+slot pair at `i` (between the
  // slot's execution and the transfer's destination side effects).
  uint32_t OutAfterPair(uint32_t i, const std::vector<uint32_t>& in, uint32_t return_top,
                        const std::map<uint32_t, Summary>& sums) const {
    const Inst& a = insts_[i];
    if (IsBranch(a.op)) {
      return Edge(in, static_cast<int64_t>(i) + 1 + a.imm) | Edge(in, static_cast<int64_t>(i) + 2);
    }
    if (a.op == Op::kJ) {
      auto it = target_of_.find(i);
      return it == target_of_.end() ? kAll : Edge(in, it->second);
    }
    if (a.op == Op::kJr) {
      return a.rs == kRa ? return_top : kAll;
    }
    // jal / jalr: callee transfer U ∪ (continuation ∖ D); unknown callees
    // use the conservative (ALL, ∅).
    uint32_t use = kAll;
    uint32_t def = 0;
    if (a.op == Op::kJal) {
      auto it = target_of_.find(i);
      if (it != target_of_.end()) {
        auto sit = sums.find(it->second);
        if (sit != sums.end()) {
          use = sit->second.use;
          def = sit->second.def;
        }
      }
    }
    return use | (Edge(in, static_cast<int64_t>(i) + 2) & ~def);
  }

  // One full solve of the equation system for a fixed `jr $ra` out-value,
  // by repeated descending sweeps to the least fixpoint.
  std::vector<uint32_t> Sweep(uint32_t return_top, const std::map<uint32_t, Summary>& sums) const {
    std::vector<uint32_t> in(n_, 0);
    bool changed = true;
    while (changed) {
      changed = false;
      for (uint32_t i = n_; i-- > 0;) {
        if (slot_[i]) {
          continue;  // Written when its CTI is evaluated.
        }
        const Inst& a = insts_[i];
        uint32_t v;
        if (Opaque(a)) {
          v = kAll;  // Exception entry / undecodable: everything live.
        } else if (HasDelaySlot(a.op)) {
          if (i + 1 >= n_ || HasDelaySlot(insts_[i + 1].op)) {
            v = kAll;  // Truncated pair or CTI in the slot: give up.
          } else {
            const Inst& s = insts_[i + 1];
            const uint32_t after = OutAfterPair(i, in, return_top, sums);
            const uint32_t slot_in =
                Opaque(s) ? kAll : (RegsRead(s) | (after & ~RegsWritten(s)));
            if (slot_in != in[i + 1]) {
              in[i + 1] = slot_in;
              changed = true;
            }
            v = RegsRead(a) | (slot_in & ~RegsWritten(a));
          }
        } else {
          v = RegsRead(a) | (Edge(in, static_cast<int64_t>(i) + 1) & ~RegsWritten(a));
        }
        if (v != in[i]) {
          in[i] = v;
          changed = true;
        }
      }
    }
    return in;
  }

  uint32_t n_;
  std::vector<Inst> insts_;
  std::vector<bool> slot_;
  std::map<uint32_t, uint32_t> target_of_;  // j/jal word -> local entry word.
  std::vector<uint32_t> in_;
};

// Abstract state of one stolen register inside a block (liveness pass).
enum class StolenState : uint8_t {
  kTrace,    // Holds live tracing state; original code must not touch it.
  kSpilled,  // Tracing state saved to the spill slot; register untouched.
  kShadow,   // Holds the program's (shadow) value; tracing state in spill.
};

class ObjectVerifier {
 public:
  ObjectVerifier(const ObjectFile& original, const InstrumentResult& result,
                 const VerifyOptions& options)
      : orig_(original), res_(result), opt_(options),
        pixie_(options.epoxie.mode == InstrumentMode::kPixie) {}

  VerifyReport Run() {
    Setup();
    if (setup_ok_) {
      Walk();
      LivenessPass();
      RelocationPass();
      TraceTablePass();
      ScavengePass();
    }
    return std::move(report_);
  }

 private:
  // Header length in words for the current mode (full, non-elided form).
  unsigned HeaderWords() const { return pixie_ ? 11 : 3; }
  // Raw encoding of the header 'sw ra, SAVED_RA(xreg3)' save word.
  static uint32_t HeaderSaveRaw() {
    return EncodeIType(Op::kSw, kXreg3, kRa, static_cast<uint16_t>(kBkSavedRa));
  }

  void Add(VerifySeverity severity, VerifyPass pass, uint32_t word_pos, int32_t block,
           std::string message) {
    VerifyFinding f;
    f.severity = severity;
    f.pass = pass;
    f.pc = opt_.text_base + word_pos * 4;
    f.block = block;
    if (block >= 0 && static_cast<size_t>(block) < blocks_.size()) {
      f.symbol = SymbolForOrig(blocks_[block].start);
    }
    f.message = std::move(message);
    if (severity == VerifySeverity::kError) {
      ++report_.stats.errors;
    } else if (severity == VerifySeverity::kWarning) {
      ++report_.stats.warnings;
    }
    report_.findings.push_back(std::move(f));
  }
  void Err(VerifyPass pass, uint32_t word_pos, int32_t block, std::string message) {
    Add(VerifySeverity::kError, pass, word_pos, block, std::move(message));
  }
  void Warn(VerifyPass pass, uint32_t word_pos, int32_t block, std::string message) {
    Add(VerifySeverity::kWarning, pass, word_pos, block, std::move(message));
  }

  // ---- Setup: decode both texts, index relocations, derive blocks ----

  void Setup() {
    if (orig_.text.size() % 4 != 0 || res_.object.text.size() % 4 != 0) {
      Err(VerifyPass::kCfg, 0, -1, "text section size is not word-aligned");
      return;
    }
    n_orig_ = orig_.NumTextWords();
    n_inst_ = res_.object.NumTextWords();
    if (res_.original_text_words != n_orig_) {
      Err(VerifyPass::kCfg, 0, -1,
          StrFormat("InstrumentResult claims %u original text words, object has %u",
                    res_.original_text_words, n_orig_));
    }
    oinsts_.reserve(n_orig_);
    for (uint32_t i = 0; i < n_orig_; ++i) {
      oinsts_.push_back(Decode(orig_.TextWord(i * 4)));
    }
    iinsts_.reserve(n_inst_);
    for (uint32_t i = 0; i < n_inst_; ++i) {
      iinsts_.push_back(Decode(res_.object.TextWord(i * 4)));
    }
    for (const Relocation& r : res_.object.relocations) {
      if (r.section == SectionId::kText && r.offset % 4 == 0) {
        irelocs_[r.offset / 4].push_back(&r);
      }
    }

    // Blocks: leaders are the annotation offsets plus offset 0, exactly the
    // rule epoxie applies.
    std::set<uint32_t> leaders;
    std::map<uint32_t, uint32_t> flags;
    for (const BlockAnnotation& b : orig_.blocks) {
      if (b.offset % 4 != 0 || b.offset / 4 > n_orig_) {
        Err(VerifyPass::kCfg, b.offset / 4, -1, "block annotation outside the text section");
        continue;
      }
      leaders.insert(b.offset / 4);
      flags[b.offset / 4] = b.flags;
    }
    if (n_orig_ > 0) {
      leaders.insert(0);
    }
    for (uint32_t i = 0; i + 1 < n_orig_; ++i) {
      if (HasDelaySlot(oinsts_[i].op) && leaders.count(i + 1) != 0) {
        Err(VerifyPass::kCfg, i + 1, -1, "basic-block leader on a delay slot");
      }
    }
    std::vector<uint32_t> sorted(leaders.begin(), leaders.end());
    for (size_t i = 0; i < sorted.size(); ++i) {
      uint32_t start = sorted[i];
      uint32_t end = (i + 1 < sorted.size()) ? sorted[i + 1] : n_orig_;
      if (start >= end) {
        continue;
      }
      Block b;
      b.start = start;
      b.end = end;
      auto it = flags.find(start);
      b.flags = it == flags.end() ? 0 : it->second;
      b.traced = (b.flags & (kBlockNoTrace | kBlockHandTraced)) == 0;
      blocks_.push_back(b);
    }
    report_.stats.blocks = blocks_.size();

    // Static block map, keyed by original offset.
    for (const BlockStatic& bs : res_.blocks) {
      if (!info_by_orig_.emplace(bs.orig_offset, &bs).second) {
        Err(VerifyPass::kTraceTable, bs.key_offset / 4, -1,
            StrFormat("duplicate block-map entry for original offset 0x%x", bs.orig_offset));
      }
    }
    for (size_t bi = 0; bi < blocks_.size(); ++bi) {
      auto it = info_by_orig_.find(blocks_[bi].start * 4);
      blocks_[bi].info = it == info_by_orig_.end() ? nullptr : it->second;
    }

    // Global text symbols of the original object, for attributing findings
    // to their owning procedure (the way wrlprof symbolizes blocks).
    for (const Symbol& s : orig_.symbols) {
      if (s.global && s.section == SectionId::kText && s.value % 4 == 0) {
        syms_.emplace_back(s.value / 4, s.name);
      }
    }
    std::sort(syms_.begin(), syms_.end());

    orig_pos_.assign(n_orig_, UINT32_MAX);
    lifts_.assign(blocks_.size(), BlockLift{});
    setup_ok_ = true;
  }

  // Owning procedure of original word `w`: the last global text symbol at
  // or below it; "" when none precedes.
  std::string SymbolForOrig(uint32_t w) const {
    auto it = std::upper_bound(syms_.begin(), syms_.end(),
                               std::make_pair(w, std::string("\x7f")));
    return it == syms_.begin() ? std::string() : std::prev(it)->second;
  }

  const Relocation* SoleReloc(uint32_t q, RelocType type) const {
    auto it = irelocs_.find(q);
    if (it == irelocs_.end() || it->second.size() != 1 || it->second[0]->type != type) {
      return nullptr;
    }
    return it->second[0];
  }
  bool HasReloc(uint32_t q) const { return irelocs_.count(q) != 0; }

  // Purely syntactic classification of instrumented word `q`.  `stolen`
  // receives the stolen-register number for the spill/shadow classes.
  WordClass Classify(uint32_t q, uint8_t* stolen) const {
    const Inst& in = iinsts_[q];
    unsigned index = 0;
    if (in.op == Op::kJal) {
      const Relocation* r = SoleReloc(q, RelocType::kJump26);
      if (r != nullptr &&
          (r->symbol == opt_.epoxie.bbtrace_symbol || r->symbol == opt_.epoxie.memtrace_symbol)) {
        return WordClass::kTraceCall;
      }
      return WordClass::kProgram;
    }
    if (in.op == Op::kLui && in.rt == kAt) {
      const Relocation* r = SoleReloc(q, RelocType::kHi16);
      if (r != nullptr && r->symbol == opt_.epoxie.bookkeeping_symbol) {
        return WordClass::kBkLui;
      }
      return WordClass::kProgram;
    }
    if (in.op == Op::kOri && in.rt == kAt && in.rs == kAt) {
      const Relocation* r = SoleReloc(q, RelocType::kLo16);
      if (r != nullptr && r->symbol == opt_.epoxie.bookkeeping_symbol) {
        return WordClass::kBkOri;
      }
      return WordClass::kProgram;
    }
    if (HasReloc(q)) {
      return WordClass::kProgram;
    }
    if (in.op == Op::kSw && in.rs == kAt) {
      if (in.rt == kRa && in.imm == static_cast<int16_t>(kBkSavedRa)) {
        return WordClass::kRefreshStore;
      }
      if (IsStolenReg(in.rt) && IsSpillOffset(in.imm, &index) &&
          StolenByIndex(index) == in.rt) {
        *stolen = in.rt;
        return WordClass::kSpillSave;
      }
      if (IsStolenReg(in.rt) && IsShadowOffset(in.imm, &index) &&
          StolenByIndex(index) == in.rt) {
        *stolen = in.rt;
        return WordClass::kShadowStore;
      }
      if (!IsStolenReg(in.rt) && in.rt != kRa && in.rt != kAt && in.rt != kZero &&
          IsShadowOffset(in.imm, &index)) {
        *stolen = StolenByIndex(index);
        return WordClass::kScavShadowStore;
      }
    }
    if (in.op == Op::kLw && in.rs == kAt) {
      if (IsStolenReg(in.rt) && IsSpillOffset(in.imm, &index) &&
          StolenByIndex(index) == in.rt) {
        *stolen = in.rt;
        return WordClass::kSpillReload;
      }
      if (IsStolenReg(in.rt) && IsShadowOffset(in.imm, &index) &&
          StolenByIndex(index) == in.rt) {
        *stolen = in.rt;
        return WordClass::kShadowLoad;
      }
      if (in.rt == kAt && IsShadowOffset(in.imm, &index)) {
        *stolen = StolenByIndex(index);
        return WordClass::kShadowMaterialize;
      }
      if (!IsStolenReg(in.rt) && in.rt != kRa && in.rt != kZero &&
          IsShadowOffset(in.imm, &index)) {
        *stolen = StolenByIndex(index);
        return WordClass::kScavShadowLoad;
      }
    }
    return WordClass::kProgram;
  }

  // The symbol a trace-call jal targets ("" when not a trace call).
  const std::string& TraceCallSymbol(uint32_t q) const {
    static const std::string kEmpty;
    const Relocation* r = SoleReloc(q, RelocType::kJump26);
    return r == nullptr ? kEmpty : r->symbol;
  }

  // ---- The shape walk ----

  struct Block {
    uint32_t start = 0;
    uint32_t end = 0;
    uint32_t flags = 0;
    bool traced = false;
    const BlockStatic* info = nullptr;
  };

  struct BlockLift {
    uint32_t header_pos = UINT32_MAX;  // First instrumented word of the block.
    uint32_t body_pos = UINT32_MAX;    // First word after the header.
    uint32_t end_pos = UINT32_MAX;     // One past the block's last word.
    uint32_t header_n = 0;             // Trace-word count in the header.
    uint32_t actual_mem_ops = 0;       // Memory ops seen in the walk.
    bool walked = false;               // Lift completed without divergence.
    bool save_elided = false;          // Header lacks the 'sw ra' save word.
  };

  // Actual header length of one lifted block.
  unsigned HeaderWordsFor(const BlockLift& lift) const {
    return pixie_ ? 11u : (lift.save_elided ? 2u : 3u);
  }

  // Matches instrumented word `q` against original instruction `i`.
  // Branches compare everything but the (retargeted) immediate.
  bool MatchesOriginal(uint32_t q, uint32_t i) const {
    const Inst& o = oinsts_[i];
    const Inst& w = iinsts_[q];
    if (IsBranch(o.op)) {
      return (w.raw & 0xffff0000u) == (o.raw & 0xffff0000u);
    }
    return w.raw == o.raw;
  }

  void RecordOriginal(uint32_t q, uint32_t i) {
    orig_pos_[i] = q;
    ++report_.stats.instructions;
    if (IsBranch(oinsts_[i].op)) {
      branch_audits_.push_back({q, i});
    }
  }

  // A memtrace announcement waiting for its memory instruction.
  struct Announce {
    uint32_t pc = 0;         // Word position of the delay-slot word.
    uint8_t base = 0;        // Base register in the announced decode.
    int16_t imm = 0;         // Announced offset.
    int shadow_reg = -1;     // Stolen register materialized into $at, or -1.
  };

  // Legality of a memory op riding in the memtrace delay slot (the
  // Figure-2 hazard rules).  Returns an explanation when illegal.
  std::string PackedHazard(const Inst& mem) const {
    if (pixie_) {
      return "pixie mode never packs the memory instruction in the delay slot";
    }
    uint32_t touched = (RegsRead(mem) | RegsWritten(mem)) & kStolenMask;
    if (touched != 0) {
      return "packed memory instruction touches a stolen register";
    }
    if (RegsRead(mem) & kRaMask) {
      return "packed memory instruction reads ra, which the jal clobbers first "
             "(the Figure-2 sw-ra hazard requires the surrogate form)";
    }
    if (RegsWritten(mem) & kRaMask) {
      return "packed memory instruction writes ra";
    }
    if (IsLoad(mem.op) && mem.rt == mem.rs) {
      return "packed self-clobbering load would be decoded after it executes";
    }
    return "";
  }

  // Consumes the pending announcement for memory instruction `i` at `q`.
  // `scav` (when non-null) maps StolenIndex -> scavenged scratch register
  // (-1 = unmapped) for a substituted instruction, whose stolen base is
  // announced through the scratch rather than a $at materialization.
  void ConsumeAnnounce(std::optional<Announce>& pending, uint32_t q, uint32_t i, int32_t bi,
                       const int* scav = nullptr) {
    ++report_.stats.mem_ops;
    const Inst& mem = oinsts_[i];
    if (!pending.has_value()) {
      Err(VerifyPass::kShape, q, bi,
          StrFormat("memory instruction '%s' is not covered by a memtrace announcement",
                    Disassemble(mem, q * 4).c_str()));
      return;
    }
    const Announce& a = *pending;
    bool base_ok = false;
    if (IsStolenReg(mem.rs)) {
      const int scratch = scav == nullptr ? -1 : scav[StolenIndex(mem.rs)];
      base_ok = (a.base == kAt && a.shadow_reg == mem.rs) ||
                (scratch >= 0 && a.base == scratch);
      if (!base_ok && a.base == kAt && a.shadow_reg != mem.rs) {
        Err(VerifyPass::kShape, a.pc, bi,
            StrFormat("surrogate materializes the shadow of $%s but the memory instruction "
                      "is based on $%s",
                      a.shadow_reg >= 0 ? RegName(static_cast<uint8_t>(a.shadow_reg)) : "?",
                      RegName(mem.rs)));
        pending.reset();
        return;
      }
    } else {
      base_ok = a.base == mem.rs;
    }
    if (!base_ok || a.imm != mem.imm) {
      Err(VerifyPass::kShape, a.pc, bi,
          StrFormat("memtrace announcement decodes %d($%s) but the memory instruction "
                    "accesses %d($%s)",
                    a.imm, RegName(a.base), mem.imm, RegName(mem.rs)));
    }
    pending.reset();
  }

  // Matches the epoxie (3-word) or pixie (11-word) block header at q_ for
  // block `bi`.  Returns false on divergence (finding already recorded).
  bool MatchHeader(size_t bi) {
    const Block& b = blocks_[bi];
    BlockLift& lift = lifts_[bi];
    if (q_ >= n_inst_) {
      Err(VerifyPass::kShape, q_, static_cast<int32_t>(bi),
          "instrumented text ends inside a block header");
      return false;
    }
    uint32_t p = q_;
    if (iinsts_[p].raw == HeaderSaveRaw()) {
      ++p;
    } else if (pixie_) {
      Err(VerifyPass::kShape, p, static_cast<int32_t>(bi),
          StrFormat("block header word 0 is '%s', expected 'sw ra, SAVED_RA(xreg3)'",
                    DisassembleWord(iinsts_[p].raw, p * 4).c_str()));
      return false;
    } else {
      // Scavenged (elided-save) header: the word must then be the jal
      // itself; the scavenge pass proves $ra dead at this leader.
      lift.save_elided = true;
    }
    const unsigned need = HeaderWordsFor(lift);
    if (q_ + need > n_inst_) {
      Err(VerifyPass::kShape, q_, static_cast<int32_t>(bi),
          "instrumented text ends inside a block header");
      return false;
    }
    if (pixie_) {
      // lui/ori $at against the translation table, lw $at, 0($at).
      const Relocation* hi = SoleReloc(p, RelocType::kHi16);
      if (iinsts_[p].op != Op::kLui || iinsts_[p].rt != kAt || hi == nullptr) {
        Err(VerifyPass::kShape, p, static_cast<int32_t>(bi),
            "pixie header: missing translation-table lui");
        return false;
      }
      ++p;
      const Relocation* lo = SoleReloc(p, RelocType::kLo16);
      if (iinsts_[p].op != Op::kOri || iinsts_[p].rt != kAt || lo == nullptr ||
          lo->symbol != hi->symbol) {
        Err(VerifyPass::kShape, p, static_cast<int32_t>(bi),
            "pixie header: missing translation-table ori");
        return false;
      }
      ++p;
      if (iinsts_[p].raw != EncodeIType(Op::kLw, kAt, kAt, 0)) {
        Err(VerifyPass::kShape, p, static_cast<int32_t>(bi),
            "pixie header: missing translation-table load");
        return false;
      }
      ++p;
      uint8_t stolen = 0;
      if (Classify(p, &stolen) != WordClass::kBkLui ||
          Classify(p + 1, &stolen) != WordClass::kBkOri) {
        Err(VerifyPass::kShape, p, static_cast<int32_t>(bi),
            "pixie header: missing bookkeeping-area load");
        return false;
      }
      p += 2;
      if (iinsts_[p].raw !=
          EncodeIType(Op::kLw, kAt, kXreg2, static_cast<uint16_t>(kBkInstCount))) {
        Err(VerifyPass::kShape, p, static_cast<int32_t>(bi),
            "pixie header: missing instruction-counter load");
        return false;
      }
      ++p;
      if (iinsts_[p].op != Op::kAddiu || iinsts_[p].rt != kXreg2 || iinsts_[p].rs != kXreg2 ||
          iinsts_[p].imm != static_cast<int16_t>(b.end - b.start)) {
        Err(VerifyPass::kShape, p, static_cast<int32_t>(bi),
            StrFormat("pixie header: instruction-counter increment is %d, block has %u "
                      "instructions",
                      iinsts_[p].op == Op::kAddiu ? iinsts_[p].imm : 0, b.end - b.start));
        return false;
      }
      ++p;
      if (iinsts_[p].raw !=
          EncodeIType(Op::kSw, kAt, kXreg2, static_cast<uint16_t>(kBkInstCount))) {
        Err(VerifyPass::kShape, p, static_cast<int32_t>(bi),
            "pixie header: missing instruction-counter store");
        return false;
      }
      ++p;
    }
    const Relocation* jal = SoleReloc(p, RelocType::kJump26);
    if (iinsts_[p].op != Op::kJal || jal == nullptr ||
        jal->symbol != opt_.epoxie.bbtrace_symbol) {
      Err(VerifyPass::kShape, p, static_cast<int32_t>(bi),
          StrFormat("block header word %u is not 'jal %s'", p - q_,
                    opt_.epoxie.bbtrace_symbol.c_str()));
      return false;
    }
    ++p;
    if (iinsts_[p].op != Op::kOri || iinsts_[p].rt != kZero || iinsts_[p].rs != kZero) {
      Err(VerifyPass::kShape, p, static_cast<int32_t>(bi),
          "bbtrace delay slot is not the 'li zero, N' trace-length word");
      return false;
    }
    lift.header_n = static_cast<uint16_t>(iinsts_[p].imm);
    ++p;
    q_ = p;
    lift.body_pos = q_;
    return true;
  }

  // Re-encodes original instruction `o` with its stolen register fields
  // renamed through `m` (indexed by StolenIndex, -1 = identity).  Written
  // against the shared ISA encoders only — deliberately independent of the
  // rewriter's own substitution code.
  static uint32_t RenameStolen(const Inst& o, const int m[3]) {
    auto ren = [&](uint8_t r) -> uint8_t {
      if (IsStolenReg(r) && m[StolenIndex(r)] >= 0) {
        return static_cast<uint8_t>(m[StolenIndex(r)]);
      }
      return r;
    };
    switch (o.op) {
      case Op::kSll:
      case Op::kSrl:
      case Op::kSra:
      case Op::kSllv:
      case Op::kSrlv:
      case Op::kSrav:
      case Op::kMfhi:
      case Op::kMthi:
      case Op::kMflo:
      case Op::kMtlo:
      case Op::kMult:
      case Op::kMultu:
      case Op::kDiv:
      case Op::kDivu:
      case Op::kAdd:
      case Op::kAddu:
      case Op::kSub:
      case Op::kSubu:
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor:
      case Op::kNor:
      case Op::kSlt:
      case Op::kSltu:
        return EncodeRType(o.op, ren(o.rs), ren(o.rt), ren(o.rd), o.shamt);
      case Op::kMfc0:
      case Op::kMtc0:
        return EncodeCop0(o.op, ren(o.rt), o.rd);
      case Op::kLui:
        return EncodeIType(o.op, 0, ren(o.rt), static_cast<uint16_t>(o.imm));
      default:
        return EncodeIType(o.op, ren(o.rs), ren(o.rt), static_cast<uint16_t>(o.imm));
    }
  }

  // True when instrumented word `q` is exactly original instruction `i`
  // with stolen register fields renamed onto scratches; fills `subst`
  // (indexed by StolenIndex, -1 = untouched).  The map is inferred from
  // the differing register fields and then validated by re-encoding.
  bool TryMatchSubstituted(uint32_t q, uint32_t i, int subst[3]) const {
    const Inst& o = oinsts_[i];
    const Inst& w = iinsts_[q];
    subst[0] = subst[1] = subst[2] = -1;
    if (o.op != w.op || o.op == Op::kInvalid || HasDelaySlot(o.op) || IsBranch(o.op)) {
      return false;
    }
    if (((RegsRead(o) | RegsWritten(o)) & kStolenMask) == 0) {
      return false;  // Nothing to scavenge; the verbatim match already failed.
    }
    auto field = [&](uint8_t oreg, uint8_t wreg) {
      if (oreg == wreg) {
        return true;
      }
      if (!IsStolenReg(oreg)) {
        return false;
      }
      int& slot = subst[StolenIndex(oreg)];
      if (slot < 0) {
        slot = wreg;
      }
      return slot == wreg;
    };
    if (!field(o.rs, w.rs) || !field(o.rt, w.rt) || !field(o.rd, w.rd)) {
      return false;
    }
    if (subst[0] < 0 && subst[1] < 0 && subst[2] < 0) {
      return false;
    }
    return RenameStolen(o, subst) == w.raw;
  }

  // One substituted (register-scavenged) instruction seen in the walk; the
  // scavenge pass proves each scratch dead from independent liveness.
  struct ScavUse {
    uint32_t inst_pos;    // Instrumented word of the substituted instruction.
    uint32_t orig_index;  // Original word index.
    int32_t block;
    int subst[3];         // StolenIndex -> scratch register, -1 = untouched.
  };

  // Walks one block; returns false on divergence (the caller resyncs).
  bool WalkBlock(size_t bi) {
    const Block& b = blocks_[bi];
    BlockLift& lift = lifts_[bi];
    lift.header_pos = q_;
    const int32_t bn = static_cast<int32_t>(bi);

    if (!b.traced) {
      lift.body_pos = q_;
      for (uint32_t i = b.start; i < b.end; ++i, ++q_) {
        if (q_ >= n_inst_ || !MatchesOriginal(q_, i)) {
          Err(VerifyPass::kShape, q_, bn,
              "untraced block is not copied verbatim into the instrumented text");
          return false;
        }
        RecordOriginal(q_, i);
      }
      lift.end_pos = q_;
      lift.walked = true;
      return true;
    }

    ++report_.stats.traced_blocks;
    if (!MatchHeader(bi)) {
      return false;
    }

    uint32_t i = b.start;
    std::optional<Announce> pending;
    int last_at_shadow = -1;       // Stolen register whose shadow sits in $at.
    uint32_t ra_write_pc = UINT32_MAX;  // Original inst that wrote ra, awaiting refresh.
    int scav_map[3] = {-1, -1, -1};  // StolenIndex -> scratch loaded this window.
    uint32_t scav_store_due = 0;     // StolenIndex bits awaiting a shadow write-back.
    uint32_t scav_store_q = 0;       // Where the write-back obligation arose.

    auto scav_window_reset = [&](uint32_t at_q) {
      if (scav_store_due != 0) {
        Err(VerifyPass::kScavenge, scav_store_q == 0 ? at_q : scav_store_q, bn,
            "scavenged write was not stored back to its shadow slot before the "
            "window closed");
        scav_store_due = 0;
      }
      scav_map[0] = scav_map[1] = scav_map[2] = -1;
    };

    auto refresh_due = [&](uint32_t at_q) {
      if (ra_write_pc != UINT32_MAX) {
        Err(VerifyPass::kShape, at_q, bn,
            "ra written mid-block without a SAVED_RA refresh before the next instruction");
        ra_write_pc = UINT32_MAX;
      }
    };

    while (i < b.end) {
      if (q_ >= n_inst_) {
        Err(VerifyPass::kShape, q_, bn, "instrumented text ends mid-block");
        return false;
      }
      // Trace calls take precedence (their raw bits can look like program
      // jals); everything else tries the in-order original match first.
      uint8_t stolen = 0;
      WordClass cls = Classify(q_, &stolen);
      if (cls == WordClass::kTraceCall) {
        const std::string& sym = TraceCallSymbol(q_);
        if (sym == opt_.epoxie.bbtrace_symbol) {
          Err(VerifyPass::kShape, q_, bn, "bbtrace call outside a block header");
          return false;
        }
        if (q_ + 1 >= n_inst_) {
          Err(VerifyPass::kShape, q_, bn, "memtrace call has no delay slot");
          return false;
        }
        const Inst& delay = iinsts_[q_ + 1];
        bool is_packed_op = i < b.end && MemAccessBytes(oinsts_[i].op) != 0 &&
                            !HasDelaySlot(oinsts_[i].op) && MatchesOriginal(q_ + 1, i);
        if (is_packed_op) {
          refresh_due(q_);
          std::string hazard = PackedHazard(oinsts_[i]);
          if (!hazard.empty()) {
            Err(VerifyPass::kShape, q_ + 1, bn, hazard);
          }
          if (pending.has_value()) {
            Err(VerifyPass::kShape, pending->pc, bn,
                "memtrace announcement not followed by its memory instruction");
            pending.reset();
          }
          RecordOriginal(q_ + 1, i);
          ++report_.stats.mem_ops;
          if (RegsWritten(oinsts_[i]) & kRaMask) {
            ra_write_pc = q_ + 1;
          }
          ++i;
          q_ += 2;
          continue;
        }
        if (delay.op == Op::kAddiu && delay.rt == kZero && !HasReloc(q_ + 1)) {
          if (pending.has_value()) {
            Err(VerifyPass::kShape, pending->pc, bn,
                "memtrace announcement not followed by its memory instruction");
          }
          Announce a;
          a.pc = q_ + 1;
          a.base = delay.rs;
          a.imm = delay.imm;
          if (delay.rs == kAt) {
            if (last_at_shadow < 0) {
              Err(VerifyPass::kShape, q_ + 1, bn,
                  "surrogate based on $at without a preceding shadow materialization");
            }
            a.shadow_reg = last_at_shadow;
          }
          pending = a;
          q_ += 2;
          continue;
        }
        Err(VerifyPass::kShape, q_ + 1, bn,
            StrFormat("memtrace delay slot holds '%s', neither the block's next memory "
                      "instruction nor an addiu-to-$zero surrogate",
                      DisassembleWord(delay.raw, (q_ + 1) * 4).c_str()));
        return false;
      }

      if (MatchesOriginal(q_, i)) {
        const Inst& o = oinsts_[i];
        refresh_due(q_);
        if (HasDelaySlot(o.op)) {
          if (i + 1 >= b.end) {
            Err(VerifyPass::kCfg, q_, bn, "delay slot crosses the block boundary");
            return false;
          }
          if (q_ + 1 >= n_inst_ || !MatchesOriginal(q_ + 1, i + 1)) {
            Err(VerifyPass::kShape, q_ + 1, bn,
                "control transfer is not followed by its original delay-slot instruction");
            return false;
          }
          const Inst& slot = oinsts_[i + 1];
          RecordOriginal(q_, i);
          RecordOriginal(q_ + 1, i + 1);
          if (MemAccessBytes(slot.op) != 0) {
            if (RegsWritten(o) & RegsRead(slot)) {
              Err(VerifyPass::kShape, q_ + 1, bn,
                  "delay-slot memory op reads a register its jump writes; the hoisted "
                  "memtrace call records a stale value");
            }
            ConsumeAnnounce(pending, q_ + 1, i + 1, bn);
          } else if (pending.has_value()) {
            Err(VerifyPass::kShape, pending->pc, bn,
                "memtrace announcement not followed by its memory instruction");
            pending.reset();
          }
          i += 2;
          q_ += 2;
          continue;
        }
        RecordOriginal(q_, i);
        if (MemAccessBytes(o.op) != 0) {
          ConsumeAnnounce(pending, q_, i, bn);
        } else if (pending.has_value()) {
          Err(VerifyPass::kShape, pending->pc, bn,
              "memtrace announcement not followed by its memory instruction");
          pending.reset();
        }
        if (RegsWritten(o) & kRaMask) {
          ra_write_pc = q_;
        }
        ++i;
        ++q_;
        continue;
      }

      switch (cls) {
        case WordClass::kBkLui:
        case WordClass::kBkOri:
          last_at_shadow = -1;
          scav_window_reset(q_);
          ++q_;
          continue;
        case WordClass::kShadowMaterialize:
          last_at_shadow = stolen;
          ++q_;
          continue;
        case WordClass::kSpillSave:
        case WordClass::kSpillReload:
        case WordClass::kShadowLoad:
        case WordClass::kShadowStore:
          // Protocol order is the liveness pass's business.
          ++q_;
          continue;
        case WordClass::kScavShadowLoad:
          scav_map[StolenIndex(stolen)] = iinsts_[q_].rt;
          ++q_;
          continue;
        case WordClass::kScavShadowStore: {
          const unsigned x = StolenIndex(stolen);
          if ((scav_store_due & (1u << x)) == 0 || scav_map[x] != iinsts_[q_].rt) {
            Err(VerifyPass::kScavenge, q_, bn,
                StrFormat("shadow write-back of $%s through $%s matches no scavenged "
                          "write in this window",
                          RegName(stolen), RegName(iinsts_[q_].rt)));
          }
          scav_store_due &= ~(1u << x);
          ++q_;
          continue;
        }
        case WordClass::kRefreshStore:
          ra_write_pc = UINT32_MAX;
          ++q_;
          continue;
        default: {
          int subst[3];
          if (TryMatchSubstituted(q_, i, subst)) {
            refresh_due(q_);
            const Inst& o = oinsts_[i];
            for (unsigned x = 0; x < 3; ++x) {
              if (subst[x] < 0) {
                continue;
              }
              const uint8_t sreg = StolenByIndex(x);
              if ((RegsRead(o) & (1u << sreg)) && scav_map[x] != subst[x]) {
                Err(VerifyPass::kScavenge, q_, bn,
                    StrFormat("scavenged read of $%s through $%s without a shadow load "
                              "into it",
                              RegName(sreg), RegName(static_cast<uint8_t>(subst[x]))));
              }
              if (RegsWritten(o) & (1u << sreg)) {
                scav_map[x] = subst[x];
                scav_store_due |= 1u << x;
                scav_store_q = q_;
              }
            }
            scav_uses_.push_back(ScavUse{q_, i, bn, {subst[0], subst[1], subst[2]}});
            RecordOriginal(q_, i);
            if (MemAccessBytes(o.op) != 0) {
              ConsumeAnnounce(pending, q_, i, bn, subst);
            } else if (pending.has_value()) {
              Err(VerifyPass::kShape, pending->pc, bn,
                  "memtrace announcement not followed by its memory instruction");
              pending.reset();
            }
            if (RegsWritten(o) & kRaMask) {
              ra_write_pc = q_;
            }
            ++i;
            ++q_;
            continue;
          }
          Err(VerifyPass::kShape, q_, bn,
              StrFormat("instrumented text diverges from the original block: found '%s', "
                        "expected '%s'",
                        DisassembleWord(iinsts_[q_].raw, q_ * 4).c_str(),
                        Disassemble(oinsts_[i], i * 4).c_str()));
          return false;
        }
      }
    }

    // Trailing synthesized words (the window tail / SAVED_RA refresh of the
    // block's last instruction) belong to this block: consume until the
    // next word stops looking synthesized.
    while (q_ < n_inst_) {
      uint8_t stolen = 0;
      WordClass cls = Classify(q_, &stolen);
      if (cls == WordClass::kProgram || cls == WordClass::kTraceCall) {
        break;
      }
      if (cls == WordClass::kRefreshStore) {
        ra_write_pc = UINT32_MAX;
      }
      if (cls == WordClass::kScavShadowStore) {
        const unsigned x = StolenIndex(stolen);
        if ((scav_store_due & (1u << x)) == 0 || scav_map[x] != iinsts_[q_].rt) {
          Err(VerifyPass::kScavenge, q_, bn,
              StrFormat("shadow write-back of $%s through $%s matches no scavenged "
                        "write in this window",
                        RegName(stolen), RegName(iinsts_[q_].rt)));
        }
        scav_store_due &= ~(1u << x);
      }
      // A bare 'sw ra, SAVED_RA(xreg3)' here is the next block's header.
      if (iinsts_[q_].raw == HeaderSaveRaw()) {
        break;
      }
      ++q_;
    }
    scav_window_reset(q_ == 0 ? 0 : q_ - 1);
    if (pending.has_value()) {
      Err(VerifyPass::kShape, pending->pc, bn,
          "memtrace announcement not followed by its memory instruction");
    }
    if (ra_write_pc != UINT32_MAX) {
      Err(VerifyPass::kShape, ra_write_pc, bn,
          "ra written at the end of a block without a SAVED_RA refresh");
    }
    lift.end_pos = q_;
    lift.walked = true;
    return true;
  }

  void Walk() {
    q_ = 0;
    size_t bi = 0;
    bool complete = true;
    while (bi < blocks_.size()) {
      size_t mem_before = report_.stats.mem_ops;
      bool ok = WalkBlock(bi);
      lifts_[bi].actual_mem_ops = static_cast<uint32_t>(report_.stats.mem_ops - mem_before);
      if (ok && blocks_[bi].traced &&
          lifts_[bi].header_n != 1 + lifts_[bi].actual_mem_ops) {
        Err(VerifyPass::kShape, lifts_[bi].header_pos, static_cast<int32_t>(bi),
            StrFormat("header reserves %u trace words but the block generates %u "
                      "(1 bb word + %u memory ops)",
                      lifts_[bi].header_n, 1 + lifts_[bi].actual_mem_ops,
                      lifts_[bi].actual_mem_ops));
      }
      if (!ok) {
        complete = false;
        // Resync at the next block whose header position the static map
        // pins down.
        size_t bj = bi + 1;
        bool found = false;
        for (; bj < blocks_.size(); ++bj) {
          const BlockStatic* info = blocks_[bj].info;
          if (info == nullptr || info->key_offset % 4 != 0) {
            continue;
          }
          const uint32_t j = info->key_offset / 4;
          // The key points two words past the jal; the header starts one
          // word earlier still when the 'sw ra' save is present (epoxie) or
          // at j-11 (pixie).
          if (pixie_) {
            if (j >= 11 && j - 11 < n_inst_) {
              q_ = j - 11;
              found = true;
              break;
            }
          } else if (j >= 3 && j - 3 < n_inst_ && iinsts_[j - 3].raw == HeaderSaveRaw()) {
            q_ = j - 3;
            found = true;
            break;
          } else if (j >= 2 && j - 2 < n_inst_) {
            q_ = j - 2;
            found = true;
            break;
          }
        }
        if (!found) {
          return;
        }
        bi = bj;
        continue;
      }
      ++bi;
    }
    if (complete && q_ != n_inst_) {
      Err(VerifyPass::kShape, q_, -1,
          StrFormat("%u trailing instrumented words after the last block", n_inst_ - q_));
    }
  }

  // ---- Liveness: abstract interpretation of the stolen registers ----

  void LivenessPass() {
    for (size_t bi = 0; bi < blocks_.size(); ++bi) {
      const Block& b = blocks_[bi];
      const BlockLift& lift = lifts_[bi];
      if (!b.traced || !lift.walked) {
        continue;
      }
      StolenState state[3] = {StolenState::kTrace, StolenState::kTrace, StolenState::kTrace};
      bool spill_saved[3] = {false, false, false};
      const int32_t bn = static_cast<int32_t>(bi);
      auto idx = [](uint8_t reg) { return StolenIndex(reg); };

      for (uint32_t q = lift.body_pos; q < lift.end_pos; ++q) {
        uint8_t stolen = 0;
        WordClass cls = Classify(q, &stolen);
        switch (cls) {
          case WordClass::kTraceCall:
            for (unsigned x = 0; x < 3; ++x) {
              if (state[x] == StolenState::kShadow) {
                Err(VerifyPass::kLiveness, q, bn,
                    StrFormat("support call while $%s holds a shadow value instead of "
                              "tracing state",
                              RegName(StolenByIndex(x))));
                state[x] = StolenState::kTrace;
              }
            }
            break;
          case WordClass::kSpillSave:
            if (state[idx(stolen)] == StolenState::kShadow) {
              Err(VerifyPass::kLiveness, q, bn,
                  StrFormat("spill save of $%s captures a shadow value, not tracing state",
                            RegName(stolen)));
            }
            spill_saved[idx(stolen)] = true;
            if (state[idx(stolen)] == StolenState::kTrace) {
              state[idx(stolen)] = StolenState::kSpilled;
            }
            break;
          case WordClass::kShadowLoad:
            if (!spill_saved[idx(stolen)]) {
              Err(VerifyPass::kLiveness, q, bn,
                  StrFormat("steal of $%s is not dominated by a spill-slot save",
                            RegName(stolen)));
            }
            state[idx(stolen)] = StolenState::kShadow;
            break;
          case WordClass::kShadowStore:
            if (state[idx(stolen)] != StolenState::kShadow) {
              Err(VerifyPass::kLiveness, q, bn,
                  StrFormat("shadow write-back of $%s stores tracing state into the "
                            "shadow slot",
                            RegName(stolen)));
            }
            break;
          case WordClass::kSpillReload:
            if (!spill_saved[idx(stolen)]) {
              Err(VerifyPass::kLiveness, q, bn,
                  StrFormat("spill reload of $%s without a preceding save", RegName(stolen)));
            }
            state[idx(stolen)] = StolenState::kTrace;
            break;
          case WordClass::kBkLui:
          case WordClass::kBkOri:
          case WordClass::kShadowMaterialize:
          case WordClass::kRefreshStore:
          case WordClass::kScavShadowLoad:
          case WordClass::kScavShadowStore:
            // Scavenged windows never move the tracing state out of the
            // stolen registers; the scavenge pass owns their protocol.
            break;
          case WordClass::kProgram: {
            const Inst& in = iinsts_[q];
            uint32_t reads = RegsRead(in) & kStolenMask;
            uint32_t writes = RegsWritten(in) & kStolenMask;
            for (uint8_t x : {kXreg1, kXreg2, kXreg3}) {
              if ((reads & (1u << x)) && state[idx(x)] != StolenState::kShadow) {
                Err(VerifyPass::kLiveness, q, bn,
                    StrFormat("original code reads $%s while it holds tracing state "
                              "(no shadow reload in effect)",
                              RegName(x)));
              }
              if (writes & (1u << x)) {
                if (state[idx(x)] == StolenState::kTrace) {
                  Err(VerifyPass::kLiveness, q, bn,
                      StrFormat("original code clobbers tracing state in $%s without a "
                                "spill save",
                                RegName(x)));
                } else {
                  state[idx(x)] = StolenState::kShadow;
                }
              }
            }
            break;
          }
        }
      }
      for (unsigned x = 0; x < 3; ++x) {
        if (state[x] == StolenState::kShadow) {
          Err(VerifyPass::kLiveness, lift.end_pos == 0 ? 0 : lift.end_pos - 1, bn,
              StrFormat("shadow window for $%s still open at block end",
                        RegName(StolenByIndex(x))));
        }
      }
    }
  }

  // ---- Relocation / address-correction audit ----

  void RelocationPass() {
    // Type/instruction agreement on the instrumented object.
    for (const Relocation& r : res_.object.relocations) {
      ++report_.stats.relocations;
      if (r.section != SectionId::kText) {
        continue;
      }
      if (r.offset % 4 != 0 || r.offset / 4 >= n_inst_) {
        Err(VerifyPass::kRelocation, r.offset / 4, -1,
            StrFormat("text relocation at 0x%x is outside the text section", r.offset));
        continue;
      }
      const Inst& in = iinsts_[r.offset / 4];
      bool ok = true;
      switch (r.type) {
        case RelocType::kJump26:
          ok = in.op == Op::kJ || in.op == Op::kJal;
          break;
        case RelocType::kHi16:
          ok = in.op == Op::kLui;
          break;
        case RelocType::kLo16:
          ok = in.op == Op::kOri || in.op == Op::kAddiu || MemAccessBytes(in.op) != 0;
          break;
        case RelocType::kWord32:
          Warn(VerifyPass::kRelocation, r.offset / 4, -1,
               "raw 32-bit word relocation inside the text section");
          break;
      }
      if (!ok) {
        Err(VerifyPass::kRelocation, r.offset / 4, -1,
            StrFormat("%s relocation patches '%s', which has no such field",
                      r.type == RelocType::kJump26 ? "jump26"
                      : r.type == RelocType::kHi16 ? "hi16"
                                                   : "lo16",
                      DisassembleWord(in.raw, r.offset).c_str()));
      }
    }

    // Every j/jal must be statically correctable: exactly one Jump26 record.
    for (uint32_t q = 0; q < n_inst_; ++q) {
      if (iinsts_[q].op != Op::kJ && iinsts_[q].op != Op::kJal) {
        continue;
      }
      auto it = irelocs_.find(q);
      size_t jumps = 0;
      if (it != irelocs_.end()) {
        for (const Relocation* r : it->second) {
          if (r->type == RelocType::kJump26) {
            ++jumps;
          }
        }
      }
      if (jumps != 1) {
        Err(VerifyPass::kRelocation, q, -1,
            jumps == 0 ? "j/jal without a jump26 relocation cannot be statically corrected"
                       : "j/jal with multiple jump26 relocations");
      }
    }

    // The original object's relocations must survive at their moved
    // offsets with the same symbol/type/addend.
    for (const Relocation& r : orig_.relocations) {
      if (r.section == SectionId::kText) {
        if (r.offset % 4 != 0 || r.offset / 4 >= n_orig_) {
          continue;  // Malformed input object; not this tool's finding.
        }
        uint32_t moved = orig_pos_[r.offset / 4];
        if (moved == UINT32_MAX) {
          continue;  // Instruction never matched (walk diverged there).
        }
        if (!HasMatchingReloc(res_.object.relocations, SectionId::kText, moved * 4, r)) {
          Err(VerifyPass::kRelocation, moved, -1,
              StrFormat("original %s relocation against '%s' was lost or altered by "
                        "instrumentation",
                        r.type == RelocType::kJump26  ? "jump26"
                        : r.type == RelocType::kHi16  ? "hi16"
                        : r.type == RelocType::kLo16  ? "lo16"
                                                      : "word32",
                        r.symbol.c_str()));
        }
      } else {
        if (!HasMatchingReloc(res_.object.relocations, r.section, r.offset, r)) {
          Err(VerifyPass::kRelocation, 0, -1,
              StrFormat("original data relocation against '%s' at 0x%x missing from the "
                        "instrumented object",
                        r.symbol.c_str(), r.offset));
        }
      }
    }

    // Data must be byte-identical (pixie appends its table after the
    // original bytes; epoxie copies).
    if (res_.object.data.size() < orig_.data.size() ||
        !std::equal(orig_.data.begin(), orig_.data.end(), res_.object.data.begin())) {
      Err(VerifyPass::kRelocation, 0, -1, "instrumentation altered the data segment image");
    }
    if (res_.object.bss_size != orig_.bss_size) {
      Err(VerifyPass::kRelocation, 0, -1,
          StrFormat("instrumentation changed bss from %u to %u bytes; traced data "
                    "addresses would not match the original binary",
                    orig_.bss_size, res_.object.bss_size));
    }

    // Branch retargeting: every surviving branch must land exactly on the
    // instrumented position of its original target.
    for (const BranchAudit& a : branch_audits_) {
      const Inst& o = oinsts_[a.orig_index];
      int64_t t = static_cast<int64_t>(a.orig_index) + 1 + o.imm;
      if (t < 0 || t > n_orig_) {
        Err(VerifyPass::kRelocation, a.inst_pos, -1, "original branch target outside the object");
        continue;
      }
      uint32_t expected = LandingPos(static_cast<uint32_t>(t));
      if (expected == UINT32_MAX) {
        continue;  // Target block never lifted; the walk already reported.
      }
      const Inst& w = iinsts_[a.inst_pos];
      int64_t actual = static_cast<int64_t>(a.inst_pos) + 1 + w.imm;
      if (actual != expected) {
        Err(VerifyPass::kRelocation, a.inst_pos, -1,
            StrFormat("branch retargeting is wrong: jumps to word %lld, original target "
                      "0x%x now lives at word %u",
                      static_cast<long long>(actual), static_cast<uint32_t>(t) * 4, expected));
      }
    }
  }

  static bool HasMatchingReloc(const std::vector<Relocation>& relocs, SectionId section,
                               uint32_t offset, const Relocation& want) {
    for (const Relocation& r : relocs) {
      if (r.section == section && r.offset == offset && r.type == want.type &&
          r.symbol == want.symbol && r.addend == want.addend) {
        return true;
      }
    }
    return false;
  }

  // Instrumented word index where a jump/branch to original word `t` lands.
  uint32_t LandingPos(uint32_t t) const {
    if (t == n_orig_) {
      // Branch to the end of text: only meaningful when the walk completed.
      return lifts_.empty() || !lifts_.back().walked ? UINT32_MAX : lifts_.back().end_pos;
    }
    for (size_t bi = 0; bi < blocks_.size(); ++bi) {
      if (blocks_[bi].start == t) {
        return lifts_[bi].header_pos;
      }
    }
    return orig_pos_[t];
  }

  // ---- Trace-table cross-check ----

  void TraceTablePass() {
    std::set<uint32_t> keys;
    for (const BlockStatic& bs : res_.blocks) {
      if (!keys.insert(bs.key_offset).second) {
        Err(VerifyPass::kTraceTable, bs.key_offset / 4, -1,
            StrFormat("duplicate block key 0x%x: two blocks would be indistinguishable "
                      "in the trace",
                      bs.key_offset));
      }
      if (bs.key_offset % 4 != 0 || bs.key_offset / 4 > n_inst_) {
        Err(VerifyPass::kTraceTable, bs.key_offset / 4, -1,
            StrFormat("block key 0x%x lies outside the instrumented text", bs.key_offset));
      }
    }

    std::set<uint32_t> traced_leaders;
    for (size_t bi = 0; bi < blocks_.size(); ++bi) {
      const Block& b = blocks_[bi];
      const BlockLift& lift = lifts_[bi];
      const int32_t bn = static_cast<int32_t>(bi);
      if (!b.traced) {
        if (b.info != nullptr) {
          Err(VerifyPass::kTraceTable, lift.header_pos == UINT32_MAX ? 0 : lift.header_pos, bn,
              "static block map describes an untraced block; the parser would expect "
              "trace that never comes");
        }
        continue;
      }
      traced_leaders.insert(b.start * 4);
      const BlockStatic* info = b.info;
      if (info == nullptr) {
        Err(VerifyPass::kTraceTable, lift.header_pos == UINT32_MAX ? 0 : lift.header_pos, bn,
            StrFormat("traced block at original offset 0x%x is missing from the static "
                      "block map",
                      b.start * 4));
        continue;
      }
      if (info->num_insts != b.end - b.start) {
        Err(VerifyPass::kTraceTable, lift.header_pos, bn,
            StrFormat("block map claims %u instructions, block has %u", info->num_insts,
                      b.end - b.start));
      }
      if (info->flags != b.flags) {
        Err(VerifyPass::kTraceTable, lift.header_pos, bn,
            StrFormat("block map flags 0x%x disagree with annotation flags 0x%x", info->flags,
                      b.flags));
      }
      if (lift.walked && info->key_offset != (lift.header_pos + HeaderWordsFor(lift)) * 4) {
        Err(VerifyPass::kTraceTable, lift.header_pos, bn,
            StrFormat("block key 0x%x does not point at the bbtrace return slot 0x%x",
                      info->key_offset, (lift.header_pos + HeaderWordsFor(lift)) * 4));
      }
      // The load/store map must match the instructions actually present.
      std::vector<MemOpStatic> actual;
      for (uint32_t i = b.start; i < b.end; ++i) {
        unsigned bytes = MemAccessBytes(oinsts_[i].op);
        if (bytes != 0) {
          actual.push_back({static_cast<uint16_t>(i - b.start), IsStore(oinsts_[i].op),
                            static_cast<uint8_t>(bytes)});
        }
      }
      if (info->mem_ops.size() != actual.size()) {
        Err(VerifyPass::kTraceTable, lift.header_pos, bn,
            StrFormat("block map lists %zu memory ops, block text contains %zu",
                      info->mem_ops.size(), actual.size()));
      } else {
        for (size_t k = 0; k < actual.size(); ++k) {
          const MemOpStatic& want = actual[k];
          const MemOpStatic& got = info->mem_ops[k];
          if (got.index != want.index || got.is_store != want.is_store ||
              got.bytes != want.bytes) {
            Err(VerifyPass::kTraceTable,
                orig_pos_[b.start + want.index] == UINT32_MAX ? lift.header_pos
                                                             : orig_pos_[b.start + want.index],
                bn,
                StrFormat("block map memory op %zu (%s, %u bytes, inst %u) disagrees with "
                          "the text (%s, %u bytes, inst %u)",
                          k, got.is_store ? "store" : "load", got.bytes, got.index,
                          want.is_store ? "store" : "load", want.bytes, want.index));
            break;
          }
        }
      }
      if (lift.walked && info->mem_ops.size() == actual.size() &&
          lift.header_n != 1 + info->mem_ops.size()) {
        Err(VerifyPass::kTraceTable, lift.header_pos, bn,
            StrFormat("header reserves %u trace words but the block map implies %zu",
                      lift.header_n, 1 + info->mem_ops.size()));
      }
    }

    for (const BlockStatic& bs : res_.blocks) {
      if (traced_leaders.count(bs.orig_offset) == 0) {
        Err(VerifyPass::kTraceTable, bs.key_offset / 4, -1,
            StrFormat("block map entry for original offset 0x%x matches no traced block",
                      bs.orig_offset));
      }
    }
  }

  // ---- Scavenge proof: independent liveness justifying every rewrite ----

  // Recomputes interprocedural liveness from the *original* object with the
  // self-contained RefLiveness implementation (no code shared with the
  // rewriter's src/dataflow analysis) and proves every elided header save
  // and every scavenged window safe.
  void ScavengePass() {
    bool any_elided = false;
    for (const BlockLift& lift : lifts_) {
      any_elided |= lift.save_elided;
    }
    if (!any_elided && scav_uses_.empty()) {
      return;  // Nothing was rewritten; nothing to prove.
    }
    RefLiveness live(orig_);
    for (size_t bi = 0; bi < blocks_.size(); ++bi) {
      if (!lifts_[bi].save_elided) {
        continue;
      }
      if (live.LiveIn(blocks_[bi].start) & kRaMask) {
        Err(VerifyPass::kScavenge, lifts_[bi].header_pos, static_cast<int32_t>(bi),
            StrFormat("header 'sw ra' save elided but $ra is live at block leader 0x%x",
                      blocks_[bi].start * 4));
      }
    }
    for (const ScavUse& u : scav_uses_) {
      const uint32_t in_live = live.LiveIn(u.orig_index);
      for (unsigned x = 0; x < 3; ++x) {
        if (u.subst[x] < 0) {
          continue;
        }
        const uint8_t d = static_cast<uint8_t>(u.subst[x]);
        if (kScratchForbidden & (1u << d)) {
          Err(VerifyPass::kScavenge, u.inst_pos, u.block,
              StrFormat("scavenged window for $%s borrows reserved register $%s",
                        RegName(StolenByIndex(x)), RegName(d)));
          continue;
        }
        if (in_live & (1u << d)) {
          Err(VerifyPass::kScavenge, u.inst_pos, u.block,
              StrFormat("scavenged scratch $%s is live across the window at original "
                        "pc 0x%x",
                        RegName(d), u.orig_index * 4));
        }
      }
    }
  }

  struct BranchAudit {
    uint32_t inst_pos;    // Instrumented word index of the branch.
    uint32_t orig_index;  // Original word index of the branch.
  };

  const ObjectFile& orig_;
  const InstrumentResult& res_;
  const VerifyOptions& opt_;
  const bool pixie_;

  bool setup_ok_ = false;
  uint32_t n_orig_ = 0;
  uint32_t n_inst_ = 0;
  std::vector<Inst> oinsts_;
  std::vector<Inst> iinsts_;
  std::unordered_map<uint32_t, std::vector<const Relocation*>> irelocs_;
  std::vector<Block> blocks_;
  std::vector<BlockLift> lifts_;
  std::unordered_map<uint32_t, const BlockStatic*> info_by_orig_;
  std::vector<uint32_t> orig_pos_;
  std::vector<BranchAudit> branch_audits_;
  std::vector<ScavUse> scav_uses_;
  std::vector<std::pair<uint32_t, std::string>> syms_;  // (orig word, name), sorted.
  uint32_t q_ = 0;

  VerifyReport report_;
};

}  // namespace

VerifyReport VerifyInstrumentedObject(const ObjectFile& original, const InstrumentResult& result,
                                      const VerifyOptions& options) {
  return ObjectVerifier(original, result, options).Run();
}

VerifyReport VerifyImage(const Executable& exe) {
  VerifyReport report;
  // Symbols by ascending address inside the text segment, for attributing
  // findings to their owning procedure.
  std::vector<std::pair<uint32_t, std::string>> syms;
  for (const auto& [name, addr] : exe.symbols) {
    if (addr >= exe.text_base && addr < exe.TextEnd()) {
      syms.emplace_back(addr, name);
    }
  }
  std::sort(syms.begin(), syms.end());
  auto symbol_for = [&](uint32_t pc) -> std::string {
    if (pc < exe.text_base || pc >= exe.TextEnd()) {
      return "";
    }
    auto it = std::upper_bound(syms.begin(), syms.end(),
                               std::make_pair(pc, std::string("\x7f")));
    return it == syms.begin() ? std::string() : std::prev(it)->second;
  };
  auto add = [&](VerifySeverity severity, uint32_t pc, std::string message) {
    VerifyFinding f;
    f.severity = severity;
    f.pass = VerifyPass::kCfg;
    f.pc = pc;
    f.block = -1;
    f.symbol = symbol_for(pc);
    f.message = std::move(message);
    if (severity == VerifySeverity::kError) {
      ++report.stats.errors;
    } else {
      ++report.stats.warnings;
    }
    report.findings.push_back(std::move(f));
  };

  const uint32_t text_end = exe.TextEnd();
  if (exe.entry < exe.text_base || exe.entry >= text_end || exe.entry % 4 != 0) {
    add(VerifySeverity::kError, exe.entry, "entry point outside the text segment");
  }
  // Segment overlap: text vs data (bss follows data by construction).
  if (exe.data_base < text_end && exe.data_base + exe.data.size() > exe.text_base &&
      !exe.data.empty()) {
    add(VerifySeverity::kError, exe.data_base, "data segment overlaps the text segment");
  }

  const uint32_t n_words = static_cast<uint32_t>(exe.text.size() / 4);
  bool prev_has_slot = false;
  for (uint32_t w = 0; w < n_words; ++w) {
    uint32_t raw = 0;
    std::memcpy(&raw, exe.text.data() + w * 4, 4);
    Inst in = Decode(raw);
    uint32_t pc = exe.text_base + w * 4;
    ++report.stats.instructions;
    if (in.op == Op::kInvalid) {
      add(VerifySeverity::kWarning, pc, "undecodable word in the text segment");
      prev_has_slot = false;
      continue;
    }
    if (HasDelaySlot(in.op)) {
      if (prev_has_slot) {
        add(VerifySeverity::kError, pc,
            "control transfer in the delay slot of another control transfer");
      }
      if (IsBranch(in.op)) {
        uint32_t target = BranchTarget(pc, in.imm);
        if (target < exe.text_base || target >= text_end) {
          add(VerifySeverity::kError, pc,
              StrFormat("branch target 0x%08x outside the text segment", target));
        }
      } else if (IsJump(in.op)) {
        uint32_t target = JumpTarget(pc, in.target);
        if (target < exe.text_base || target >= text_end) {
          add(VerifySeverity::kError, pc,
              StrFormat("jump target 0x%08x outside the text segment", target));
        }
      }
      prev_has_slot = true;
    } else {
      prev_has_slot = false;
    }
  }
  if (prev_has_slot) {
    add(VerifySeverity::kError, exe.text_base + (n_words - 1) * 4,
        "control transfer at the end of text has no delay slot");
  }

  uint32_t last_offset = 0;
  bool first = true;
  for (const BlockAnnotation& b : exe.blocks) {
    if (b.offset < exe.text_base || b.offset >= text_end || b.offset % 4 != 0) {
      add(VerifySeverity::kError, b.offset, "block annotation outside the text segment");
    }
    if (!first && b.offset <= last_offset) {
      add(VerifySeverity::kError, b.offset, "block annotations out of order");
    }
    last_offset = b.offset;
    first = false;
    ++report.stats.blocks;
  }
  return report;
}

}  // namespace wrl
