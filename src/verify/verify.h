// wrlverify: static verification of epoxie-instrumented binaries.
//
// The paper's validation story (§4, Tables 1–3) rests on the rewriter being
// exactly right: every basic block carries its 3-instruction `jal bbtrace`
// header, every memory instruction its `jal memtrace` expansion, stolen
// registers are shadowed, and every address correction is static.  Until
// now those invariants were only checked *dynamically* — a traced run or a
// §4.3 parser defense had to trip.  This library establishes them by
// analysis of the instrumented artifact itself: it lifts instrumented text
// into a basic-block CFG with the ISA decoder and runs six
// dataflow/consistency passes:
//
//   shape       every reachable traced block begins with the 3-instruction
//               bb header (11 for pixie mode) and every load/store is
//               covered by a correct `jal memtrace` announcement — packed
//               in the delay slot only when that is legal (the Figure-2
//               `sw ra` hazard, self-clobbering loads, stolen-register and
//               CTI-clobber hazards all force the surrogate form), with
//               SAVED_RA refreshed after every mid-block ra write;
//   liveness    an abstract interpretation proving original code never
//               reads or clobbers the three stolen registers while they
//               hold tracing state: every steal is dominated by a
//               spill-slot save, reads see shadow-slot reloads, and the
//               tracing state is restored before any support call or block
//               exit;
//   relocation  the relocation/address-correction audit: relocation types
//               agree with the instructions they patch, every j/jal is
//               statically correctable (carries a Jump26 relocation), the
//               original object's relocations survive at their moved
//               offsets, and every retargeted branch lands exactly on the
//               instrumented position of its original target;
//   tracetable  the per-block static load/store maps emitted by epoxie
//               (what TraceInfoTable serves to the parser) agree with the
//               instructions actually present in each block: key offsets
//               point at the bbtrace return slot, instruction counts,
//               flags and memory-op maps match the text, keys are unique;
//   scavenge    the proof-carrying check of the liveness-driven rewrites:
//               interprocedural register liveness is recomputed from the
//               *original* object by an implementation that shares no code
//               with src/dataflow, and every header `sw ra` elision and
//               every scavenged shadow window is proved safe ($ra dead at
//               the elided leader; the borrowed scratch dead across the
//               window, never a reserved register, loaded before every
//               scavenged read and stored back after every write).
//
// Findings are structured diagnostics (severity, pass, pc, block, message)
// that bind into wrlstats and render as the `wrlverify/1` JSON schema; the
// `wrlverify` tool runs the passes over every workload image, the
// pixie-mode baselines, and the instrumented kernel in CI.
#ifndef WRLTRACE_VERIFY_VERIFY_H_
#define WRLTRACE_VERIFY_VERIFY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "epoxie/epoxie.h"
#include "obj/object_file.h"
#include "stats/stats.h"

namespace wrl {

class JsonWriter;

enum class VerifySeverity : uint8_t { kInfo = 0, kWarning = 1, kError = 2 };
const char* VerifySeverityName(VerifySeverity severity);

enum class VerifyPass : uint8_t {
  kCfg = 0,         // Lifting problems: undecodable words, bad block bounds.
  kShape = 1,       // Instrumentation-shape check.
  kLiveness = 2,    // Stolen-register liveness.
  kRelocation = 3,  // Relocation/address-correction audit.
  kTraceTable = 4,  // Static block-map cross-check.
  kScavenge = 5,    // Liveness proof for elided saves / scavenged windows.
};
const char* VerifyPassName(VerifyPass pass);
constexpr unsigned kNumVerifyPasses = 6;

// One structured diagnostic.  `pc` is a byte address in the instrumented
// text (offset-based for raw objects; absolute once VerifyOptions supplies
// the linked text base).
struct VerifyFinding {
  VerifySeverity severity = VerifySeverity::kError;
  VerifyPass pass = VerifyPass::kShape;
  uint32_t pc = 0;
  int32_t block = -1;  // Original-block index, -1 when not block-scoped.
  // Owning procedure of the original block (resolved from the original
  // image's symbol table, like wrlprof); empty when not attributable.
  std::string symbol;
  std::string message;
};

struct VerifyStats {
  uint64_t blocks = 0;        // Basic blocks lifted.
  uint64_t traced_blocks = 0; // Blocks carrying instrumentation.
  uint64_t instructions = 0;  // Original instructions accounted for.
  uint64_t mem_ops = 0;       // Memory operations checked for coverage.
  uint64_t relocations = 0;   // Relocation records audited.
  uint64_t errors = 0;
  uint64_t warnings = 0;
};

struct VerifyReport {
  std::vector<VerifyFinding> findings;
  VerifyStats stats;

  bool ok() const { return stats.errors == 0; }
  // Findings attributed to one pass (any severity).
  size_t CountForPass(VerifyPass pass) const;
  const VerifyFinding* FirstForPass(VerifyPass pass) const;
  // Merges another report (findings appended, stats summed).
  void Merge(const VerifyReport& other);

  // Binds the stats fields into `registry`; the report must outlive
  // snapshots of the registry.
  void RegisterStats(StatsRegistry& registry, const std::string& prefix = "verify.");
  // Renders {stats: {...}, findings: [{severity, pass, pc, block, message}]}.
  void WriteJson(JsonWriter& writer) const;
};

struct VerifyOptions {
  // Mode and support-routine symbol names the instrumented object was
  // produced with (must match the EpoxieConfig used to instrument).
  EpoxieConfig epoxie;
  // Added to every reported pc, so findings against an object that has been
  // linked can be reported in image terms.
  uint32_t text_base = 0;
};

// Object-level verification: checks that `result` (instrumented object +
// static block map) is a faithful instrumentation of `original`.  This is
// the full six-pass analysis.
VerifyReport VerifyInstrumentedObject(const ObjectFile& original, const InstrumentResult& result,
                                      const VerifyOptions& options = {});

// Image-level audit of a linked executable: every control transfer lands
// inside the text segment, no CTI sits in another CTI's delay slot, block
// annotations and the entry point are valid, and segments do not overlap.
// Applies to any image (instrumented or not).
VerifyReport VerifyImage(const Executable& exe);

}  // namespace wrl

#endif  // WRLTRACE_VERIFY_VERIFY_H_
