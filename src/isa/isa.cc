#include "isa/isa.h"

#include <array>

#include "support/error.h"
#include "support/strings.h"

namespace wrl {
namespace {

constexpr std::array<const char*, 32> kRegNames = {
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3", "t0", "t1", "t2",
    "t3",   "t4", "t5", "t6", "t7", "s0", "s1", "s2", "s3", "s4", "s5",
    "s6",   "s7", "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra"};

// MIPS-I primary opcodes.
enum : uint32_t {
  kOpSpecial = 0,
  kOpRegimm = 1,
  kOpJ = 2,
  kOpJal = 3,
  kOpBeq = 4,
  kOpBne = 5,
  kOpBlez = 6,
  kOpBgtz = 7,
  kOpAddi = 8,
  kOpAddiu = 9,
  kOpSlti = 10,
  kOpSltiu = 11,
  kOpAndi = 12,
  kOpOri = 13,
  kOpXori = 14,
  kOpLui = 15,
  kOpCop0 = 16,
  kOpLb = 32,
  kOpLh = 33,
  kOpLw = 35,
  kOpLbu = 36,
  kOpLhu = 37,
  kOpSb = 40,
  kOpSh = 41,
  kOpSw = 43,
};

// SPECIAL function codes.
enum : uint32_t {
  kFnSll = 0,
  kFnSrl = 2,
  kFnSra = 3,
  kFnSllv = 4,
  kFnSrlv = 6,
  kFnSrav = 7,
  kFnJr = 8,
  kFnJalr = 9,
  kFnSyscall = 12,
  kFnBreak = 13,
  kFnMfhi = 16,
  kFnMthi = 17,
  kFnMflo = 18,
  kFnMtlo = 19,
  kFnMult = 24,
  kFnMultu = 25,
  kFnDiv = 26,
  kFnDivu = 27,
  kFnAdd = 32,
  kFnAddu = 33,
  kFnSub = 34,
  kFnSubu = 35,
  kFnAnd = 36,
  kFnOr = 37,
  kFnXor = 38,
  kFnNor = 39,
  kFnSlt = 42,
  kFnSltu = 43,
};

// COP0 CO-format function codes.
enum : uint32_t {
  kFnTlbr = 1,
  kFnTlbwi = 2,
  kFnTlbwr = 6,
  kFnTlbp = 8,
  kFnRfe = 16,
};

Op DecodeSpecial(uint32_t funct) {
  switch (funct) {
    case kFnSll: return Op::kSll;
    case kFnSrl: return Op::kSrl;
    case kFnSra: return Op::kSra;
    case kFnSllv: return Op::kSllv;
    case kFnSrlv: return Op::kSrlv;
    case kFnSrav: return Op::kSrav;
    case kFnJr: return Op::kJr;
    case kFnJalr: return Op::kJalr;
    case kFnSyscall: return Op::kSyscall;
    case kFnBreak: return Op::kBreak;
    case kFnMfhi: return Op::kMfhi;
    case kFnMthi: return Op::kMthi;
    case kFnMflo: return Op::kMflo;
    case kFnMtlo: return Op::kMtlo;
    case kFnMult: return Op::kMult;
    case kFnMultu: return Op::kMultu;
    case kFnDiv: return Op::kDiv;
    case kFnDivu: return Op::kDivu;
    case kFnAdd: return Op::kAdd;
    case kFnAddu: return Op::kAddu;
    case kFnSub: return Op::kSub;
    case kFnSubu: return Op::kSubu;
    case kFnAnd: return Op::kAnd;
    case kFnOr: return Op::kOr;
    case kFnXor: return Op::kXor;
    case kFnNor: return Op::kNor;
    case kFnSlt: return Op::kSlt;
    case kFnSltu: return Op::kSltu;
    default: return Op::kInvalid;
  }
}

uint32_t SpecialFunct(Op op) {
  switch (op) {
    case Op::kSll: return kFnSll;
    case Op::kSrl: return kFnSrl;
    case Op::kSra: return kFnSra;
    case Op::kSllv: return kFnSllv;
    case Op::kSrlv: return kFnSrlv;
    case Op::kSrav: return kFnSrav;
    case Op::kJr: return kFnJr;
    case Op::kJalr: return kFnJalr;
    case Op::kSyscall: return kFnSyscall;
    case Op::kBreak: return kFnBreak;
    case Op::kMfhi: return kFnMfhi;
    case Op::kMthi: return kFnMthi;
    case Op::kMflo: return kFnMflo;
    case Op::kMtlo: return kFnMtlo;
    case Op::kMult: return kFnMult;
    case Op::kMultu: return kFnMultu;
    case Op::kDiv: return kFnDiv;
    case Op::kDivu: return kFnDivu;
    case Op::kAdd: return kFnAdd;
    case Op::kAddu: return kFnAddu;
    case Op::kSub: return kFnSub;
    case Op::kSubu: return kFnSubu;
    case Op::kAnd: return kFnAnd;
    case Op::kOr: return kFnOr;
    case Op::kXor: return kFnXor;
    case Op::kNor: return kFnNor;
    case Op::kSlt: return kFnSlt;
    case Op::kSltu: return kFnSltu;
    default: throw InternalError("not an R-type op");
  }
}

uint32_t PrimaryOpcode(Op op) {
  switch (op) {
    case Op::kJ: return kOpJ;
    case Op::kJal: return kOpJal;
    case Op::kBeq: return kOpBeq;
    case Op::kBne: return kOpBne;
    case Op::kBlez: return kOpBlez;
    case Op::kBgtz: return kOpBgtz;
    case Op::kAddi: return kOpAddi;
    case Op::kAddiu: return kOpAddiu;
    case Op::kSlti: return kOpSlti;
    case Op::kSltiu: return kOpSltiu;
    case Op::kAndi: return kOpAndi;
    case Op::kOri: return kOpOri;
    case Op::kXori: return kOpXori;
    case Op::kLui: return kOpLui;
    case Op::kLb: return kOpLb;
    case Op::kLh: return kOpLh;
    case Op::kLw: return kOpLw;
    case Op::kLbu: return kOpLbu;
    case Op::kLhu: return kOpLhu;
    case Op::kSb: return kOpSb;
    case Op::kSh: return kOpSh;
    case Op::kSw: return kOpSw;
    default: throw InternalError("not an I-type op");
  }
}

}  // namespace

const char* RegName(uint8_t reg) {
  WRL_CHECK(reg < 32);
  return kRegNames[reg];
}

std::optional<uint8_t> ParseRegName(std::string_view name) {
  if (name.size() < 2 || name.front() != '$') {
    return std::nullopt;
  }
  name.remove_prefix(1);
  // Numeric form: $0 .. $31.
  if (name[0] >= '0' && name[0] <= '9') {
    int value = 0;
    for (char c : name) {
      if (c < '0' || c > '9') {
        return std::nullopt;
      }
      value = value * 10 + (c - '0');
    }
    if (value >= 32) {
      return std::nullopt;
    }
    return static_cast<uint8_t>(value);
  }
  for (uint8_t i = 0; i < 32; ++i) {
    if (name == kRegNames[i]) {
      return i;
    }
  }
  if (name == "s8") {  // Alias for fp.
    return kFp;
  }
  return std::nullopt;
}

Inst Decode(uint32_t word) {
  Inst inst;
  inst.raw = word;
  inst.rs = static_cast<uint8_t>((word >> 21) & 31);
  inst.rt = static_cast<uint8_t>((word >> 16) & 31);
  inst.rd = static_cast<uint8_t>((word >> 11) & 31);
  inst.shamt = static_cast<uint8_t>((word >> 6) & 31);
  inst.imm = static_cast<int16_t>(word & 0xffff);
  inst.target = word & 0x03ffffff;
  uint32_t opcode = word >> 26;
  switch (opcode) {
    case kOpSpecial:
      inst.op = DecodeSpecial(word & 63);
      break;
    case kOpRegimm:
      inst.op = (inst.rt == 1) ? Op::kBgez : (inst.rt == 0) ? Op::kBltz : Op::kInvalid;
      break;
    case kOpJ: inst.op = Op::kJ; break;
    case kOpJal: inst.op = Op::kJal; break;
    case kOpBeq: inst.op = Op::kBeq; break;
    case kOpBne: inst.op = Op::kBne; break;
    case kOpBlez: inst.op = Op::kBlez; break;
    case kOpBgtz: inst.op = Op::kBgtz; break;
    case kOpAddi: inst.op = Op::kAddi; break;
    case kOpAddiu: inst.op = Op::kAddiu; break;
    case kOpSlti: inst.op = Op::kSlti; break;
    case kOpSltiu: inst.op = Op::kSltiu; break;
    case kOpAndi: inst.op = Op::kAndi; break;
    case kOpOri: inst.op = Op::kOri; break;
    case kOpXori: inst.op = Op::kXori; break;
    case kOpLui: inst.op = Op::kLui; break;
    case kOpCop0:
      if (inst.rs == 0) {
        inst.op = Op::kMfc0;
      } else if (inst.rs == 4) {
        inst.op = Op::kMtc0;
      } else if (inst.rs & 0x10) {
        switch (word & 63) {
          case kFnTlbr: inst.op = Op::kTlbr; break;
          case kFnTlbwi: inst.op = Op::kTlbwi; break;
          case kFnTlbwr: inst.op = Op::kTlbwr; break;
          case kFnTlbp: inst.op = Op::kTlbp; break;
          case kFnRfe: inst.op = Op::kRfe; break;
          default: inst.op = Op::kInvalid; break;
        }
      }
      break;
    case kOpLb: inst.op = Op::kLb; break;
    case kOpLh: inst.op = Op::kLh; break;
    case kOpLw: inst.op = Op::kLw; break;
    case kOpLbu: inst.op = Op::kLbu; break;
    case kOpLhu: inst.op = Op::kLhu; break;
    case kOpSb: inst.op = Op::kSb; break;
    case kOpSh: inst.op = Op::kSh; break;
    case kOpSw: inst.op = Op::kSw; break;
    default: inst.op = Op::kInvalid; break;
  }
  return inst;
}

bool IsLoad(Op op) {
  switch (op) {
    case Op::kLb:
    case Op::kLh:
    case Op::kLw:
    case Op::kLbu:
    case Op::kLhu:
      return true;
    default:
      return false;
  }
}

bool IsStore(Op op) { return op == Op::kSb || op == Op::kSh || op == Op::kSw; }

unsigned MemAccessBytes(Op op) {
  switch (op) {
    case Op::kLb:
    case Op::kLbu:
    case Op::kSb:
      return 1;
    case Op::kLh:
    case Op::kLhu:
    case Op::kSh:
      return 2;
    case Op::kLw:
    case Op::kSw:
      return 4;
    default:
      return 0;
  }
}

bool IsBranch(Op op) {
  switch (op) {
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlez:
    case Op::kBgtz:
    case Op::kBltz:
    case Op::kBgez:
      return true;
    default:
      return false;
  }
}

bool IsJump(Op op) { return op == Op::kJ || op == Op::kJal; }

bool IsIndirectJump(Op op) { return op == Op::kJr || op == Op::kJalr; }

bool HasDelaySlot(Op op) { return IsBranch(op) || IsJump(op) || IsIndirectJump(op); }

bool EndsBasicBlock(Op op) {
  return HasDelaySlot(op) || op == Op::kSyscall || op == Op::kBreak || op == Op::kRfe;
}

bool IsArithStall(Op op) {
  return op == Op::kMult || op == Op::kMultu || op == Op::kDiv || op == Op::kDivu;
}

unsigned ArithStallCycles(Op op) {
  switch (op) {
    case Op::kMult:
    case Op::kMultu:
      return 11;  // R3000 multiply latency.
    case Op::kDiv:
    case Op::kDivu:
      return 34;  // R3000 divide latency.
    default:
      return 0;
  }
}

uint32_t RegsRead(const Inst& inst) {
  uint32_t mask = 0;
  auto rs = [&] { mask |= 1u << inst.rs; };
  auto rt = [&] { mask |= 1u << inst.rt; };
  switch (inst.op) {
    case Op::kSll:
    case Op::kSrl:
    case Op::kSra:
      rt();
      break;
    case Op::kSllv:
    case Op::kSrlv:
    case Op::kSrav:
    case Op::kAdd:
    case Op::kAddu:
    case Op::kSub:
    case Op::kSubu:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kNor:
    case Op::kSlt:
    case Op::kSltu:
    case Op::kMult:
    case Op::kMultu:
    case Op::kDiv:
    case Op::kDivu:
    case Op::kBeq:
    case Op::kBne:
      rs();
      rt();
      break;
    case Op::kJr:
    case Op::kJalr:
    case Op::kMthi:
    case Op::kMtlo:
    case Op::kBlez:
    case Op::kBgtz:
    case Op::kBltz:
    case Op::kBgez:
    case Op::kAddi:
    case Op::kAddiu:
    case Op::kSlti:
    case Op::kSltiu:
    case Op::kAndi:
    case Op::kOri:
    case Op::kXori:
    case Op::kLb:
    case Op::kLh:
    case Op::kLw:
    case Op::kLbu:
    case Op::kLhu:
      rs();
      break;
    case Op::kSb:
    case Op::kSh:
    case Op::kSw:
      rs();
      rt();
      break;
    case Op::kMtc0:
      rt();
      break;
    default:
      break;
  }
  mask &= ~1u;  // Reads of $zero are not dependencies.
  return mask;
}

uint32_t RegsWritten(const Inst& inst) {
  uint32_t mask = 0;
  switch (inst.op) {
    case Op::kSll:
    case Op::kSrl:
    case Op::kSra:
    case Op::kSllv:
    case Op::kSrlv:
    case Op::kSrav:
    case Op::kMfhi:
    case Op::kMflo:
    case Op::kAdd:
    case Op::kAddu:
    case Op::kSub:
    case Op::kSubu:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kNor:
    case Op::kSlt:
    case Op::kSltu:
      mask |= 1u << inst.rd;
      break;
    case Op::kJalr:
      mask |= 1u << inst.rd;
      break;
    case Op::kJal:
      mask |= 1u << kRa;
      break;
    case Op::kAddi:
    case Op::kAddiu:
    case Op::kSlti:
    case Op::kSltiu:
    case Op::kAndi:
    case Op::kOri:
    case Op::kXori:
    case Op::kLui:
    case Op::kLb:
    case Op::kLh:
    case Op::kLw:
    case Op::kLbu:
    case Op::kLhu:
    case Op::kMfc0:
      mask |= 1u << inst.rt;
      break;
    default:
      break;
  }
  mask &= ~1u;  // Writes to $zero are discarded.
  return mask;
}

uint32_t EncodeRType(Op op, uint8_t rs, uint8_t rt, uint8_t rd, uint8_t shamt) {
  return (kOpSpecial << 26) | (uint32_t{rs} << 21) | (uint32_t{rt} << 16) |
         (uint32_t{rd} << 11) | (uint32_t{shamt} << 6) | SpecialFunct(op);
}

uint32_t EncodeIType(Op op, uint8_t rs, uint8_t rt, uint16_t imm) {
  if (op == Op::kBltz) {
    return (kOpRegimm << 26) | (uint32_t{rs} << 21) | (0u << 16) | imm;
  }
  if (op == Op::kBgez) {
    return (kOpRegimm << 26) | (uint32_t{rs} << 21) | (1u << 16) | imm;
  }
  return (PrimaryOpcode(op) << 26) | (uint32_t{rs} << 21) | (uint32_t{rt} << 16) | imm;
}

uint32_t EncodeJType(Op op, uint32_t target_word_index) {
  WRL_CHECK(op == Op::kJ || op == Op::kJal);
  return (PrimaryOpcode(op) << 26) | (target_word_index & 0x03ffffff);
}

uint32_t EncodeCop0(Op op, uint8_t rt, uint8_t rd) {
  switch (op) {
    case Op::kMfc0:
      return (kOpCop0 << 26) | (0u << 21) | (uint32_t{rt} << 16) | (uint32_t{rd} << 11);
    case Op::kMtc0:
      return (kOpCop0 << 26) | (4u << 21) | (uint32_t{rt} << 16) | (uint32_t{rd} << 11);
    case Op::kTlbr:
      return (kOpCop0 << 26) | (0x10u << 21) | kFnTlbr;
    case Op::kTlbwi:
      return (kOpCop0 << 26) | (0x10u << 21) | kFnTlbwi;
    case Op::kTlbwr:
      return (kOpCop0 << 26) | (0x10u << 21) | kFnTlbwr;
    case Op::kTlbp:
      return (kOpCop0 << 26) | (0x10u << 21) | kFnTlbp;
    case Op::kRfe:
      return (kOpCop0 << 26) | (0x10u << 21) | kFnRfe;
    default:
      throw InternalError("not a COP0 op");
  }
}

uint32_t EncodeTrap(Op op, uint32_t code) {
  WRL_CHECK(op == Op::kSyscall || op == Op::kBreak);
  uint32_t funct = (op == Op::kSyscall) ? kFnSyscall : kFnBreak;
  return (kOpSpecial << 26) | ((code & 0xfffff) << 6) | funct;
}

uint32_t TrapCode(uint32_t word) { return (word >> 6) & 0xfffff; }

std::string Disassemble(const Inst& inst, uint32_t pc) {
  const char* rs = RegName(inst.rs);
  const char* rt = RegName(inst.rt);
  const char* rd = RegName(inst.rd);
  int imm = inst.imm;
  switch (inst.op) {
    case Op::kInvalid: return StrFormat(".word 0x%08x", inst.raw);
    case Op::kSll:
      if (inst.raw == 0) {
        return "nop";
      }
      return StrFormat("sll %s, %s, %u", rd, rt, inst.shamt);
    case Op::kSrl: return StrFormat("srl %s, %s, %u", rd, rt, inst.shamt);
    case Op::kSra: return StrFormat("sra %s, %s, %u", rd, rt, inst.shamt);
    case Op::kSllv: return StrFormat("sllv %s, %s, %s", rd, rt, rs);
    case Op::kSrlv: return StrFormat("srlv %s, %s, %s", rd, rt, rs);
    case Op::kSrav: return StrFormat("srav %s, %s, %s", rd, rt, rs);
    case Op::kJr: return StrFormat("jr %s", rs);
    case Op::kJalr: return StrFormat("jalr %s, %s", rd, rs);
    case Op::kSyscall: return StrFormat("syscall %u", TrapCode(inst.raw));
    case Op::kBreak: return StrFormat("break %u", TrapCode(inst.raw));
    case Op::kMfhi: return StrFormat("mfhi %s", rd);
    case Op::kMthi: return StrFormat("mthi %s", rs);
    case Op::kMflo: return StrFormat("mflo %s", rd);
    case Op::kMtlo: return StrFormat("mtlo %s", rs);
    case Op::kMult: return StrFormat("mult %s, %s", rs, rt);
    case Op::kMultu: return StrFormat("multu %s, %s", rs, rt);
    case Op::kDiv: return StrFormat("div %s, %s", rs, rt);
    case Op::kDivu: return StrFormat("divu %s, %s", rs, rt);
    case Op::kAdd: return StrFormat("add %s, %s, %s", rd, rs, rt);
    case Op::kAddu: return StrFormat("addu %s, %s, %s", rd, rs, rt);
    case Op::kSub: return StrFormat("sub %s, %s, %s", rd, rs, rt);
    case Op::kSubu: return StrFormat("subu %s, %s, %s", rd, rs, rt);
    case Op::kAnd: return StrFormat("and %s, %s, %s", rd, rs, rt);
    case Op::kOr: return StrFormat("or %s, %s, %s", rd, rs, rt);
    case Op::kXor: return StrFormat("xor %s, %s, %s", rd, rs, rt);
    case Op::kNor: return StrFormat("nor %s, %s, %s", rd, rs, rt);
    case Op::kSlt: return StrFormat("slt %s, %s, %s", rd, rs, rt);
    case Op::kSltu: return StrFormat("sltu %s, %s, %s", rd, rs, rt);
    case Op::kBltz: return StrFormat("bltz %s, 0x%08x", rs, BranchTarget(pc, inst.imm));
    case Op::kBgez: return StrFormat("bgez %s, 0x%08x", rs, BranchTarget(pc, inst.imm));
    case Op::kJ: return StrFormat("j 0x%08x", JumpTarget(pc, inst.target));
    case Op::kJal: return StrFormat("jal 0x%08x", JumpTarget(pc, inst.target));
    case Op::kBeq: return StrFormat("beq %s, %s, 0x%08x", rs, rt, BranchTarget(pc, inst.imm));
    case Op::kBne: return StrFormat("bne %s, %s, 0x%08x", rs, rt, BranchTarget(pc, inst.imm));
    case Op::kBlez: return StrFormat("blez %s, 0x%08x", rs, BranchTarget(pc, inst.imm));
    case Op::kBgtz: return StrFormat("bgtz %s, 0x%08x", rs, BranchTarget(pc, inst.imm));
    case Op::kAddi: return StrFormat("addi %s, %s, %d", rt, rs, imm);
    case Op::kAddiu: return StrFormat("addiu %s, %s, %d", rt, rs, imm);
    case Op::kSlti: return StrFormat("slti %s, %s, %d", rt, rs, imm);
    case Op::kSltiu: return StrFormat("sltiu %s, %s, %d", rt, rs, imm);
    case Op::kAndi: return StrFormat("andi %s, %s, 0x%x", rt, rs, imm & 0xffff);
    case Op::kOri: return StrFormat("ori %s, %s, 0x%x", rt, rs, imm & 0xffff);
    case Op::kXori: return StrFormat("xori %s, %s, 0x%x", rt, rs, imm & 0xffff);
    case Op::kLui: return StrFormat("lui %s, 0x%x", rt, imm & 0xffff);
    case Op::kLb: return StrFormat("lb %s, %d(%s)", rt, imm, rs);
    case Op::kLh: return StrFormat("lh %s, %d(%s)", rt, imm, rs);
    case Op::kLw: return StrFormat("lw %s, %d(%s)", rt, imm, rs);
    case Op::kLbu: return StrFormat("lbu %s, %d(%s)", rt, imm, rs);
    case Op::kLhu: return StrFormat("lhu %s, %d(%s)", rt, imm, rs);
    case Op::kSb: return StrFormat("sb %s, %d(%s)", rt, imm, rs);
    case Op::kSh: return StrFormat("sh %s, %d(%s)", rt, imm, rs);
    case Op::kSw: return StrFormat("sw %s, %d(%s)", rt, imm, rs);
    case Op::kMfc0: return StrFormat("mfc0 %s, $%u", rt, inst.rd);
    case Op::kMtc0: return StrFormat("mtc0 %s, $%u", rt, inst.rd);
    case Op::kTlbr: return "tlbr";
    case Op::kTlbwi: return "tlbwi";
    case Op::kTlbwr: return "tlbwr";
    case Op::kTlbp: return "tlbp";
    case Op::kRfe: return "rfe";
  }
  return StrFormat(".word 0x%08x", inst.raw);
}

std::string DisassembleWord(uint32_t word, uint32_t pc) { return Disassemble(Decode(word), pc); }

}  // namespace wrl
