// DS32: the MIPS-I-subset instruction set architecture used throughout the
// reproduction.
//
// DS32 keeps the real MIPS-I opcode assignments so the instrumentation idioms
// from the paper's Figure 2 (jal clobbering ra, branch delay slots, the
// "li zero, N" trace-length no-op) carry over literally.  The subset covers
// everything the kernel, the workloads and epoxie's synthesized code need:
// the full integer ALU, loads/stores of bytes/halfwords/words, branches and
// jumps (one architectural delay slot), mult/div with HI/LO (the source of
// "arithmetic stalls"), syscall/break, and the COP0 system control set
// (mfc0/mtc0, tlbwi/tlbwr/tlbr/tlbp, rfe) in the R3000 style.
#ifndef WRLTRACE_ISA_ISA_H_
#define WRLTRACE_ISA_ISA_H_

#include <cstdint>
#include <optional>
#include <string>

namespace wrl {

// Conventional MIPS register numbers.  The tracing system "steals" three of
// them (see epoxie/epoxie.h); everything else follows the o32 convention.
enum Reg : uint8_t {
  kZero = 0,
  kAt = 1,
  kV0 = 2,
  kV1 = 3,
  kA0 = 4,
  kA1 = 5,
  kA2 = 6,
  kA3 = 7,
  kT0 = 8,
  kT1 = 9,
  kT2 = 10,
  kT3 = 11,
  kT4 = 12,
  kT5 = 13,
  kT6 = 14,
  kT7 = 15,
  kS0 = 16,
  kS1 = 17,
  kS2 = 18,
  kS3 = 19,
  kS4 = 20,
  kS5 = 21,
  kS6 = 22,
  kS7 = 23,
  kT8 = 24,
  kT9 = 25,
  kK0 = 26,
  kK1 = 27,
  kGp = 28,
  kSp = 29,
  kFp = 30,
  kRa = 31,
};

// Returns the conventional name ("t3", "sp", ...) for a register number.
const char* RegName(uint8_t reg);
// Parses "$t3", "$3", "$sp", ... Returns nullopt for anything else.
std::optional<uint8_t> ParseRegName(std::string_view name);

// Every DS32 mnemonic.
enum class Op : uint8_t {
  kInvalid = 0,
  // R-type ALU.
  kSll,
  kSrl,
  kSra,
  kSllv,
  kSrlv,
  kSrav,
  kJr,
  kJalr,
  kSyscall,
  kBreak,
  kMfhi,
  kMthi,
  kMflo,
  kMtlo,
  kMult,
  kMultu,
  kDiv,
  kDivu,
  kAdd,
  kAddu,
  kSub,
  kSubu,
  kAnd,
  kOr,
  kXor,
  kNor,
  kSlt,
  kSltu,
  // REGIMM.
  kBltz,
  kBgez,
  // I/J-type.
  kJ,
  kJal,
  kBeq,
  kBne,
  kBlez,
  kBgtz,
  kAddi,
  kAddiu,
  kSlti,
  kSltiu,
  kAndi,
  kOri,
  kXori,
  kLui,
  // Loads/stores.
  kLb,
  kLh,
  kLw,
  kLbu,
  kLhu,
  kSb,
  kSh,
  kSw,
  // COP0 system control.
  kMfc0,
  kMtc0,
  kTlbr,
  kTlbwi,
  kTlbwr,
  kTlbp,
  kRfe,
};

// COP0 register indices (R3000 assignments).
enum Cop0Reg : uint8_t {
  kCop0Index = 0,
  kCop0Random = 1,
  kCop0EntryLo = 2,
  kCop0Context = 4,
  kCop0BadVAddr = 8,
  kCop0EntryHi = 10,
  kCop0Status = 12,
  kCop0Cause = 13,
  kCop0Epc = 14,
  kCop0Prid = 15,
};

// A decoded DS32 instruction.  Field validity depends on the format, but all
// fields are always extracted so generic code (epoxie, memtrace) can reason
// about rs/imm uniformly.
struct Inst {
  Op op = Op::kInvalid;
  uint8_t rs = 0;      // bits 25:21 — base register for memory ops
  uint8_t rt = 0;      // bits 20:16
  uint8_t rd = 0;      // bits 15:11
  uint8_t shamt = 0;   // bits 10:6
  int16_t imm = 0;     // bits 15:0, sign interpretation depends on op
  uint32_t target = 0; // bits 25:0 for j/jal
  uint32_t raw = 0;
};

// Decodes a raw instruction word.  Unknown encodings yield Op::kInvalid.
Inst Decode(uint32_t word);

// --- Instruction property predicates (used by epoxie and the simulators) ---

bool IsLoad(Op op);
bool IsStore(Op op);
// Number of bytes accessed by a load/store; 0 for everything else.
unsigned MemAccessBytes(Op op);
// Conditional branches (PC-relative, 16-bit offset).
bool IsBranch(Op op);
// j / jal (26-bit region-absolute).
bool IsJump(Op op);
// jr / jalr.
bool IsIndirectJump(Op op);
// Any control transfer with an architectural delay slot.
bool HasDelaySlot(Op op);
// True if the instruction ends a basic block (control transfer or trap).
bool EndsBasicBlock(Op op);
// mult/div family — the instructions that incur "arithmetic stalls".
bool IsArithStall(Op op);
// Latency in cycles of the multiply/divide unit for this op (0 if none).
unsigned ArithStallCycles(Op op);

// Register read/write sets as 32-bit masks (bit n set = register n).
uint32_t RegsRead(const Inst& inst);
uint32_t RegsWritten(const Inst& inst);

// --- Encoders (used by the assembler and by epoxie's synthesized code) ---

uint32_t EncodeRType(Op op, uint8_t rs, uint8_t rt, uint8_t rd, uint8_t shamt);
uint32_t EncodeIType(Op op, uint8_t rs, uint8_t rt, uint16_t imm);
uint32_t EncodeJType(Op op, uint32_t target_word_index);
uint32_t EncodeCop0(Op op, uint8_t rt, uint8_t rd);
// syscall/break with a 20-bit code field (readable by the kernel).
uint32_t EncodeTrap(Op op, uint32_t code);
// Extracts the 20-bit code field of syscall/break.
uint32_t TrapCode(uint32_t word);

// Renders an instruction in assembler syntax ("addiu sp, sp, -24").
std::string Disassemble(const Inst& inst, uint32_t pc);
std::string DisassembleWord(uint32_t word, uint32_t pc);

// Computes the target of a branch at `pc` with the given immediate.
inline uint32_t BranchTarget(uint32_t pc, int16_t imm) {
  return pc + 4 + (static_cast<int32_t>(imm) << 2);
}
// Computes the target of a j/jal at `pc`.
inline uint32_t JumpTarget(uint32_t pc, uint32_t target_field) {
  return ((pc + 4) & 0xf0000000u) | (target_field << 2);
}

}  // namespace wrl

#endif  // WRLTRACE_ISA_ISA_H_
