// The event timeline: a dedicated observation channel, separate from the
// trace payload itself (the tracer/driver split — see PAPERS.md on
// Deransart's observational semantics and HMTT's semantic-event tagging).
//
// Components record scoped phases (image build, trace-generation epochs,
// analysis-mode switches, parser Feed batches) and instant events (trace
// drains) against two clocks at once: host wall-clock microseconds and the
// simulated machine's cycle counter.  The recording is append-only and
// cheap; rendering targets the Chrome trace_event JSON format, so a run
// report drops straight into chrome://tracing or ui.perfetto.dev.
#ifndef WRLTRACE_STATS_EVENTS_H_
#define WRLTRACE_STATS_EVENTS_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace wrl {

class JsonWriter;

struct TimelineEvent {
  std::string name;
  std::string category;
  uint64_t wall_start_us = 0;  // Since recorder construction.
  uint64_t wall_dur_us = 0;
  uint64_t cycle_start = 0;  // Simulated cycles (0 when no cycle source).
  uint64_t cycle_dur = 0;
  int depth = 0;        // Nesting depth at Begin time (0 = top level).
  bool instant = false;  // Instant event: durations are zero.
  // Optional single numeric argument (drain word count, fill level, ...).
  bool has_arg = false;
  std::string arg_name;
  uint64_t arg = 0;
};

// Records a single thread of nested phases plus instant events.  All
// methods are null-tolerant through EventRecorder::Scope, so components
// can hold an optional `EventRecorder*` and pay nothing when unobserved.
class EventRecorder {
 public:
  EventRecorder();

  // Simulated-cycle clock; typically `[&m] { return m.cycles(); }`.  May be
  // reset when the harness switches machines (measured run vs traced run).
  void SetCycleSource(std::function<uint64_t()> source) { cycle_source_ = std::move(source); }

  void Begin(std::string name, std::string category = "phase");
  // Closes the innermost open phase and appends its completed event.
  void End();
  void Instant(std::string name, std::string category = "event");
  void Instant(std::string name, std::string category, std::string arg_name, uint64_t arg);

  size_t open_scopes() const { return open_.size(); }
  // Completed events, in completion order (instants interleaved).
  const std::vector<TimelineEvent>& events() const { return events_; }
  std::vector<TimelineEvent> TakeEvents();

  // Microseconds since this recorder's construction (its wall epoch).
  uint64_t ElapsedUs() const { return NowUs(); }
  // Appends completed events recorded by another (e.g. per-worker)
  // recorder, shifting wall timestamps by `wall_offset_us` (the other
  // recorder's epoch expressed on this recorder's clock) and nesting
  // depths by `depth_offset`.
  void Absorb(std::vector<TimelineEvent> events, uint64_t wall_offset_us = 0,
              int depth_offset = 0);

  // Emits the timeline as a Chrome trace_event JSON array ("X" complete
  // events and "i" instants).  Open scopes are not emitted.
  void WriteChromeTrace(JsonWriter& writer) const;
  // The standalone document form: {"traceEvents": [...], ...metadata}.
  std::string ChromeTraceJson() const;

  // RAII phase scope; a null recorder makes it a no-op.
  class Scope {
   public:
    Scope(EventRecorder* recorder, std::string name, std::string category = "phase")
        : recorder_(recorder) {
      if (recorder_ != nullptr) {
        recorder_->Begin(std::move(name), std::move(category));
      }
    }
    ~Scope() {
      if (recorder_ != nullptr) {
        recorder_->End();
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    EventRecorder* recorder_;
  };

 private:
  uint64_t NowUs() const;
  uint64_t NowCycles() const { return cycle_source_ ? cycle_source_() : 0; }

  std::chrono::steady_clock::time_point epoch_;
  std::function<uint64_t()> cycle_source_;
  std::vector<TimelineEvent> open_;  // Stack of in-flight phases.
  std::vector<TimelineEvent> events_;
};

// Writes one run's Chrome trace events into an already-open JSON array.
void WriteChromeTraceEvents(JsonWriter& writer, const std::vector<TimelineEvent>& events);

}  // namespace wrl

#endif  // WRLTRACE_STATS_EVENTS_H_
