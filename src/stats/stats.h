// wrlstats: the unified counter registry (paper §5's validation currency).
//
// Every layer of the simulator stack — machine, memory system, TLB
// simulator, trace parser, kernel transport, epoxie — accounts for itself
// with ad-hoc counters.  The registry gives those counters one namespace
// ("machine.cycles", "parser.validation_errors", ...), one snapshot
// operation, and one JSON rendering, so the harness can diff measured
// against predicted runs mechanically instead of by hand-written printf.
//
// Three instrument kinds:
//   * Counter    — a monotonically increasing u64 owned by the component;
//                  the registry binds a pointer, so the component's hot
//                  path pays nothing for being observable.
//   * gauge      — a callback evaluated at snapshot time, for values that
//                  are derived (stall-cycle totals, dilation ratios) or
//                  live in simulated memory (kernel stats block words).
//   * Histogram  — power-of-two ("log-scale") buckets for distributions
//                  such as trace-drain sizes and buffer fill levels.
//
// Lifetime: the registry does not own Counter/raw-pointer registrations;
// the registering component must outlive every Snapshot() call.  Registries
// are scoped to one experiment/run, matching how the harness already
// scopes the machines themselves.
#ifndef WRLTRACE_STATS_STATS_H_
#define WRLTRACE_STATS_STATS_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace wrl {

class JsonWriter;

// A monotonically increasing counter.  Behaves like a uint64_t so existing
// accounting code (`++x`, `x += n`, `x = y`, comparisons) keeps reading the
// same; the small API surface beyond that exists for the registry.
class Counter {
 public:
  constexpr Counter() = default;
  constexpr Counter(uint64_t value) : value_(value) {}  // NOLINT(runtime/explicit)

  constexpr operator uint64_t() const { return value_; }  // NOLINT(runtime/explicit)
  uint64_t value() const { return value_; }

  Counter& operator=(uint64_t value) {
    value_ = value;
    return *this;
  }
  Counter& operator++() {
    ++value_;
    return *this;
  }
  Counter& operator--() {
    --value_;
    return *this;
  }
  Counter& operator+=(uint64_t delta) {
    value_ += delta;
    return *this;
  }
  Counter& operator-=(uint64_t delta) {
    value_ -= delta;
    return *this;
  }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

// Log-scale (power-of-two) histogram of u64 samples.  Bucket 0 counts exact
// zeros; bucket i (i >= 1) counts samples in [2^(i-1), 2^i).
class Histogram {
 public:
  static constexpr unsigned kBuckets = 65;  // Zero bucket + one per bit.

  void Record(uint64_t sample);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const { return count_ == 0 ? 0 : static_cast<double>(sum_) / count_; }
  const std::array<uint64_t, kBuckets>& buckets() const { return buckets_; }
  // Index of the highest non-empty bucket + 1 (so reports can trim the tail).
  unsigned UsedBuckets() const;

  void Reset();

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

// One snapshotted instrument value, tagged by kind.
struct StatValue {
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };

  Kind kind = Kind::kCounter;
  uint64_t counter = 0;  // Kind::kCounter.
  double gauge = 0;      // Kind::kGauge.
  // Kind::kHistogram summary.
  uint64_t hist_count = 0;
  uint64_t hist_sum = 0;
  uint64_t hist_min = 0;
  uint64_t hist_max = 0;
  std::vector<uint64_t> hist_buckets;  // Trimmed at the last non-empty bucket.

  // The value as a double regardless of kind (histograms report their sum).
  double AsDouble() const;
};

// A point-in-time copy of every registered instrument, keyed by name.
// std::map keeps the rendering order stable, which keeps report diffs small.
class StatsSnapshot {
 public:
  using Map = std::map<std::string, StatValue>;

  void Set(std::string name, StatValue value) { values_[std::move(name)] = std::move(value); }
  const StatValue* Find(std::string_view name) const;
  bool Has(std::string_view name) const { return Find(name) != nullptr; }
  // Counter value by name; throws wrl::Error when absent.
  uint64_t CounterValue(std::string_view name) const;
  // Gauge value by name; throws wrl::Error when absent.
  double GaugeValue(std::string_view name) const;
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const Map& values() const { return values_; }

  // Renders the snapshot as one JSON object: counters and gauges as
  // numbers, histograms as {count, sum, min, max, mean, buckets}.
  void WriteJson(JsonWriter& writer) const;

 private:
  Map values_;
};

// The registry: name -> instrument bindings.  Not thread-safe (the
// simulator is single-threaded); registration order is irrelevant because
// snapshots are name-sorted.
class StatsRegistry {
 public:
  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  // Binds an existing counter.  Re-registering a name replaces the binding
  // (components may be rebuilt between runs within one registry scope).
  void AddCounter(std::string name, Counter* counter);
  // Binds a plain uint64_t field of a stats struct as a counter.
  void AddCounter(std::string name, uint64_t* value);
  // Registers a gauge callback, evaluated at every Snapshot().
  void AddGauge(std::string name, std::function<double()> gauge);
  // Creates and owns a histogram; the returned pointer stays valid for the
  // registry's lifetime.
  Histogram* AddHistogram(std::string name);
  // Binds an externally owned histogram.
  void AddHistogram(std::string name, Histogram* histogram);

  bool Has(std::string_view name) const;
  size_t size() const { return instruments_.size(); }
  std::vector<std::string> Names() const;
  // Current value of a registered counter; throws wrl::Error when the name
  // is unknown or names a different instrument kind.
  uint64_t CounterValue(std::string_view name) const;

  StatsSnapshot Snapshot() const;
  // Zeroes every bound counter and clears every histogram.  Gauges are
  // derived values and are left to their owners.
  void ResetAll();

 private:
  struct Instrument {
    StatValue::Kind kind = StatValue::Kind::kCounter;
    Counter* counter = nullptr;
    uint64_t* raw = nullptr;
    std::function<double()> gauge;
    Histogram* histogram = nullptr;
  };

  Instrument& Slot(std::string name);

  std::map<std::string, Instrument, std::less<>> instruments_;
  std::vector<std::unique_ptr<Histogram>> owned_histograms_;
};

}  // namespace wrl

#endif  // WRLTRACE_STATS_STATS_H_
