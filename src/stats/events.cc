#include "stats/events.h"

#include "support/error.h"
#include "support/json.h"

namespace wrl {

EventRecorder::EventRecorder() : epoch_(std::chrono::steady_clock::now()) {}

uint64_t EventRecorder::NowUs() const {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - epoch_)
                                   .count());
}

void EventRecorder::Begin(std::string name, std::string category) {
  TimelineEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.wall_start_us = NowUs();
  event.cycle_start = NowCycles();
  event.depth = static_cast<int>(open_.size());
  open_.push_back(std::move(event));
}

void EventRecorder::End() {
  WRL_CHECK_MSG(!open_.empty(), "EventRecorder::End() without a matching Begin()");
  TimelineEvent event = std::move(open_.back());
  open_.pop_back();
  uint64_t now_us = NowUs();
  uint64_t now_cycles = NowCycles();
  event.wall_dur_us = now_us - event.wall_start_us;
  // The cycle source may have been swapped for a fresh machine mid-phase;
  // clamp instead of wrapping.
  event.cycle_dur = now_cycles >= event.cycle_start ? now_cycles - event.cycle_start : 0;
  events_.push_back(std::move(event));
}

void EventRecorder::Instant(std::string name, std::string category) {
  TimelineEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.wall_start_us = NowUs();
  event.cycle_start = NowCycles();
  event.depth = static_cast<int>(open_.size());
  event.instant = true;
  events_.push_back(std::move(event));
}

void EventRecorder::Instant(std::string name, std::string category, std::string arg_name,
                            uint64_t arg) {
  Instant(std::move(name), std::move(category));
  TimelineEvent& event = events_.back();
  event.has_arg = true;
  event.arg_name = std::move(arg_name);
  event.arg = arg;
}

std::vector<TimelineEvent> EventRecorder::TakeEvents() {
  std::vector<TimelineEvent> taken = std::move(events_);
  events_.clear();
  return taken;
}

void EventRecorder::Absorb(std::vector<TimelineEvent> events, uint64_t wall_offset_us,
                           int depth_offset) {
  events_.reserve(events_.size() + events.size());
  for (TimelineEvent& event : events) {
    event.wall_start_us += wall_offset_us;
    event.depth += depth_offset;
    events_.push_back(std::move(event));
  }
}

void WriteChromeTraceEvents(JsonWriter& writer, const std::vector<TimelineEvent>& events) {
  for (const TimelineEvent& event : events) {
    writer.BeginObject();
    writer.KV("name", event.name);
    writer.KV("cat", event.category.empty() ? "phase" : event.category);
    writer.KV("ph", event.instant ? "i" : "X");
    writer.KV("ts", event.wall_start_us);
    if (!event.instant) {
      writer.KV("dur", event.wall_dur_us);
    } else {
      writer.KV("s", "t");  // Thread-scoped instant.
    }
    writer.KV("pid", 1);
    writer.KV("tid", 1);
    writer.Key("args").BeginObject();
    writer.KV("cycle_start", event.cycle_start);
    if (!event.instant) {
      writer.KV("cycle_dur", event.cycle_dur);
    }
    if (event.has_arg) {
      writer.KV(event.arg_name, event.arg);
    }
    writer.EndObject();
    writer.EndObject();
  }
}

void EventRecorder::WriteChromeTrace(JsonWriter& writer) const {
  writer.BeginArray();
  WriteChromeTraceEvents(writer, events_);
  writer.EndArray();
}

std::string EventRecorder::ChromeTraceJson() const {
  JsonWriter writer;
  writer.BeginObject();
  writer.KV("displayTimeUnit", "ms");
  writer.Key("traceEvents");
  WriteChromeTrace(writer);
  writer.EndObject();
  return writer.TakeString();
}

}  // namespace wrl
