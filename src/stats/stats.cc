#include "stats/stats.h"

#include "support/error.h"
#include "support/json.h"
#include "support/strings.h"

namespace wrl {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

namespace {

unsigned BucketFor(uint64_t sample) {
  if (sample == 0) {
    return 0;
  }
  unsigned bit = 0;
  while (sample >>= 1) {
    ++bit;
  }
  return bit + 1;  // Samples in [2^bit, 2^(bit+1)) land in bucket bit+1.
}

std::string MissingName(std::string_view name) {
  return StrFormat("stats: no instrument named '%.*s'", static_cast<int>(name.size()),
                   name.data());
}

}  // namespace

void Histogram::Record(uint64_t sample) {
  ++buckets_[BucketFor(sample)];
  if (count_ == 0 || sample < min_) {
    min_ = sample;
  }
  if (sample > max_) {
    max_ = sample;
  }
  ++count_;
  sum_ += sample;
}

unsigned Histogram::UsedBuckets() const {
  unsigned used = 0;
  for (unsigned i = 0; i < kBuckets; ++i) {
    if (buckets_[i] != 0) {
      used = i + 1;
    }
  }
  return used;
}

void Histogram::Reset() {
  buckets_.fill(0);
  count_ = sum_ = min_ = max_ = 0;
}

// ---------------------------------------------------------------------------
// StatValue / StatsSnapshot
// ---------------------------------------------------------------------------

double StatValue::AsDouble() const {
  switch (kind) {
    case Kind::kCounter:
      return static_cast<double>(counter);
    case Kind::kGauge:
      return gauge;
    case Kind::kHistogram:
      return static_cast<double>(hist_sum);
  }
  return 0;
}

const StatValue* StatsSnapshot::Find(std::string_view name) const {
  auto it = values_.find(std::string(name));
  return it == values_.end() ? nullptr : &it->second;
}

uint64_t StatsSnapshot::CounterValue(std::string_view name) const {
  const StatValue* value = Find(name);
  if (value == nullptr || value->kind != StatValue::Kind::kCounter) {
    throw Error(MissingName(name));
  }
  return value->counter;
}

double StatsSnapshot::GaugeValue(std::string_view name) const {
  const StatValue* value = Find(name);
  if (value == nullptr || value->kind != StatValue::Kind::kGauge) {
    throw Error(MissingName(name));
  }
  return value->gauge;
}

void StatsSnapshot::WriteJson(JsonWriter& writer) const {
  writer.BeginObject();
  for (const auto& [name, value] : values_) {
    writer.Key(name);
    switch (value.kind) {
      case StatValue::Kind::kCounter:
        writer.Value(value.counter);
        break;
      case StatValue::Kind::kGauge:
        writer.Value(value.gauge);
        break;
      case StatValue::Kind::kHistogram:
        writer.BeginObject();
        writer.KV("count", value.hist_count);
        writer.KV("sum", value.hist_sum);
        writer.KV("min", value.hist_min);
        writer.KV("max", value.hist_max);
        writer.KV("mean", value.hist_count == 0
                              ? 0.0
                              : static_cast<double>(value.hist_sum) / value.hist_count);
        writer.Key("log2_buckets").BeginArray();
        for (uint64_t bucket : value.hist_buckets) {
          writer.Value(bucket);
        }
        writer.EndArray();
        writer.EndObject();
        break;
    }
  }
  writer.EndObject();
}

// ---------------------------------------------------------------------------
// StatsRegistry
// ---------------------------------------------------------------------------

StatsRegistry::Instrument& StatsRegistry::Slot(std::string name) {
  return instruments_[std::move(name)] = Instrument{};
}

void StatsRegistry::AddCounter(std::string name, Counter* counter) {
  Instrument& slot = Slot(std::move(name));
  slot.kind = StatValue::Kind::kCounter;
  slot.counter = counter;
}

void StatsRegistry::AddCounter(std::string name, uint64_t* value) {
  Instrument& slot = Slot(std::move(name));
  slot.kind = StatValue::Kind::kCounter;
  slot.raw = value;
}

void StatsRegistry::AddGauge(std::string name, std::function<double()> gauge) {
  Instrument& slot = Slot(std::move(name));
  slot.kind = StatValue::Kind::kGauge;
  slot.gauge = std::move(gauge);
}

Histogram* StatsRegistry::AddHistogram(std::string name) {
  owned_histograms_.push_back(std::make_unique<Histogram>());
  Histogram* histogram = owned_histograms_.back().get();
  AddHistogram(std::move(name), histogram);
  return histogram;
}

void StatsRegistry::AddHistogram(std::string name, Histogram* histogram) {
  Instrument& slot = Slot(std::move(name));
  slot.kind = StatValue::Kind::kHistogram;
  slot.histogram = histogram;
}

bool StatsRegistry::Has(std::string_view name) const {
  return instruments_.find(name) != instruments_.end();
}

std::vector<std::string> StatsRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(instruments_.size());
  for (const auto& [name, instrument] : instruments_) {
    names.push_back(name);
  }
  return names;
}

uint64_t StatsRegistry::CounterValue(std::string_view name) const {
  auto it = instruments_.find(name);
  if (it == instruments_.end() || it->second.kind != StatValue::Kind::kCounter) {
    throw Error(MissingName(name));
  }
  return it->second.counter != nullptr ? it->second.counter->value() : *it->second.raw;
}

StatsSnapshot StatsRegistry::Snapshot() const {
  StatsSnapshot snapshot;
  for (const auto& [name, instrument] : instruments_) {
    StatValue value;
    value.kind = instrument.kind;
    switch (instrument.kind) {
      case StatValue::Kind::kCounter:
        value.counter =
            instrument.counter != nullptr ? instrument.counter->value() : *instrument.raw;
        break;
      case StatValue::Kind::kGauge:
        value.gauge = instrument.gauge();
        break;
      case StatValue::Kind::kHistogram: {
        const Histogram& h = *instrument.histogram;
        value.hist_count = h.count();
        value.hist_sum = h.sum();
        value.hist_min = h.min();
        value.hist_max = h.max();
        unsigned used = h.UsedBuckets();
        value.hist_buckets.assign(h.buckets().begin(), h.buckets().begin() + used);
        break;
      }
    }
    snapshot.Set(name, std::move(value));
  }
  return snapshot;
}

void StatsRegistry::ResetAll() {
  for (auto& [name, instrument] : instruments_) {
    switch (instrument.kind) {
      case StatValue::Kind::kCounter:
        if (instrument.counter != nullptr) {
          instrument.counter->Reset();
        } else {
          *instrument.raw = 0;
        }
        break;
      case StatValue::Kind::kGauge:
        break;
      case StatValue::Kind::kHistogram:
        instrument.histogram->Reset();
        break;
    }
  }
}

}  // namespace wrl
