#include "obj/object_file.h"

#include <algorithm>

#include "support/error.h"
#include "support/strings.h"

namespace wrl {
namespace {

// --- Little helpers for the binary serialization format ---

void Put32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

void PutString(std::vector<uint8_t>& out, const std::string& s) {
  Put32(out, static_cast<uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void PutBytes(std::vector<uint8_t>& out, const std::vector<uint8_t>& bytes) {
  Put32(out, static_cast<uint32_t>(bytes.size()));
  out.insert(out.end(), bytes.begin(), bytes.end());
}

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  uint32_t Get32() {
    if (pos_ + 4 > bytes_.size()) {
      throw Error("truncated object file");
    }
    uint32_t v = bytes_[pos_] | (uint32_t{bytes_[pos_ + 1]} << 8) |
                 (uint32_t{bytes_[pos_ + 2]} << 16) | (uint32_t{bytes_[pos_ + 3]} << 24);
    pos_ += 4;
    return v;
  }

  std::string GetString() {
    uint32_t n = Get32();
    if (pos_ + n > bytes_.size()) {
      throw Error("truncated object file string");
    }
    std::string s(bytes_.begin() + static_cast<long>(pos_),
                  bytes_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return s;
  }

  std::vector<uint8_t> GetBytes() {
    uint32_t n = Get32();
    if (pos_ + n > bytes_.size()) {
      throw Error("truncated object file section");
    }
    std::vector<uint8_t> b(bytes_.begin() + static_cast<long>(pos_),
                           bytes_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return b;
  }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t pos_ = 0;
};

constexpr uint32_t kMagic = 0x314f5745;  // "EWO1"

}  // namespace

uint32_t ObjectFile::TextWord(uint32_t offset) const {
  WRL_CHECK_MSG(offset % 4 == 0 && offset + 4 <= text.size(),
                StrFormat("text word offset %u out of range", offset));
  return text[offset] | (uint32_t{text[offset + 1]} << 8) | (uint32_t{text[offset + 2]} << 16) |
         (uint32_t{text[offset + 3]} << 24);
}

void ObjectFile::SetTextWord(uint32_t offset, uint32_t word) {
  WRL_CHECK_MSG(offset % 4 == 0 && offset + 4 <= text.size(),
                StrFormat("text word offset %u out of range", offset));
  text[offset] = static_cast<uint8_t>(word);
  text[offset + 1] = static_cast<uint8_t>(word >> 8);
  text[offset + 2] = static_cast<uint8_t>(word >> 16);
  text[offset + 3] = static_cast<uint8_t>(word >> 24);
}

std::vector<uint8_t> ObjectFile::Serialize() const {
  std::vector<uint8_t> out;
  Put32(out, kMagic);
  PutString(out, source_name);
  PutBytes(out, text);
  PutBytes(out, data);
  Put32(out, bss_size);
  Put32(out, static_cast<uint32_t>(symbols.size()));
  for (const Symbol& s : symbols) {
    PutString(out, s.name);
    Put32(out, s.value);
    Put32(out, static_cast<uint32_t>(s.section));
    Put32(out, s.global ? 1 : 0);
  }
  Put32(out, static_cast<uint32_t>(relocations.size()));
  for (const Relocation& r : relocations) {
    Put32(out, r.offset);
    Put32(out, static_cast<uint32_t>(r.section));
    Put32(out, static_cast<uint32_t>(r.type));
    PutString(out, r.symbol);
    Put32(out, static_cast<uint32_t>(r.addend));
  }
  Put32(out, static_cast<uint32_t>(blocks.size()));
  for (const BlockAnnotation& b : blocks) {
    Put32(out, b.offset);
    Put32(out, b.flags);
  }
  return out;
}

ObjectFile ObjectFile::Deserialize(const std::vector<uint8_t>& bytes) {
  Reader reader(bytes);
  if (reader.Get32() != kMagic) {
    throw Error("bad object file magic");
  }
  ObjectFile obj;
  obj.source_name = reader.GetString();
  obj.text = reader.GetBytes();
  obj.data = reader.GetBytes();
  obj.bss_size = reader.Get32();
  uint32_t nsyms = reader.Get32();
  for (uint32_t i = 0; i < nsyms; ++i) {
    Symbol s;
    s.name = reader.GetString();
    s.value = reader.Get32();
    s.section = static_cast<SectionId>(reader.Get32());
    s.global = reader.Get32() != 0;
    obj.symbols.push_back(std::move(s));
  }
  uint32_t nrelocs = reader.Get32();
  for (uint32_t i = 0; i < nrelocs; ++i) {
    Relocation r;
    r.offset = reader.Get32();
    r.section = static_cast<SectionId>(reader.Get32());
    r.type = static_cast<RelocType>(reader.Get32());
    r.symbol = reader.GetString();
    r.addend = static_cast<int32_t>(reader.Get32());
    obj.relocations.push_back(std::move(r));
  }
  uint32_t nblocks = reader.Get32();
  for (uint32_t i = 0; i < nblocks; ++i) {
    BlockAnnotation b;
    b.offset = reader.Get32();
    b.flags = reader.Get32();
    obj.blocks.push_back(b);
  }
  return obj;
}

uint32_t Executable::SymbolAddress(const std::string& name) const {
  auto it = symbols.find(name);
  if (it == symbols.end()) {
    throw Error(StrFormat("undefined symbol '%s'", name.c_str()));
  }
  return it->second;
}

namespace {

uint32_t AlignUp(uint32_t value, uint32_t align) {
  return (value + align - 1) & ~(align - 1);
}

struct ObjectLayout {
  uint32_t text_offset = 0;  // Offset of this object's text in the image.
  uint32_t data_offset = 0;
  uint32_t bss_offset = 0;
};

void PatchWord(std::vector<uint8_t>& bytes, uint32_t offset, uint32_t word) {
  WRL_CHECK(offset + 4 <= bytes.size());
  bytes[offset] = static_cast<uint8_t>(word);
  bytes[offset + 1] = static_cast<uint8_t>(word >> 8);
  bytes[offset + 2] = static_cast<uint8_t>(word >> 16);
  bytes[offset + 3] = static_cast<uint8_t>(word >> 24);
}

uint32_t FetchWord(const std::vector<uint8_t>& bytes, uint32_t offset) {
  WRL_CHECK(offset + 4 <= bytes.size());
  return bytes[offset] | (uint32_t{bytes[offset + 1]} << 8) | (uint32_t{bytes[offset + 2]} << 16) |
         (uint32_t{bytes[offset + 3]} << 24);
}

}  // namespace

Executable Link(const std::vector<ObjectFile>& objects, const LinkOptions& options) {
  Executable exe;
  exe.text_base = options.text_base;

  // Pass 1: layout.
  std::vector<ObjectLayout> layouts(objects.size());
  uint32_t text_size = 0;
  for (size_t i = 0; i < objects.size(); ++i) {
    WRL_CHECK_MSG(objects[i].text.size() % 4 == 0,
                  StrFormat("object '%s' text not word-aligned", objects[i].source_name.c_str()));
    layouts[i].text_offset = text_size;
    text_size += static_cast<uint32_t>(objects[i].text.size());
  }
  exe.data_base = options.fixed_data_base != 0
                      ? options.fixed_data_base
                      : AlignUp(options.text_base + text_size, options.data_align);
  uint32_t data_size = 0;
  for (size_t i = 0; i < objects.size(); ++i) {
    data_size = AlignUp(data_size, 8);
    layouts[i].data_offset = data_size;
    data_size += static_cast<uint32_t>(objects[i].data.size());
  }
  exe.bss_base = AlignUp(exe.data_base + data_size, 8);
  uint32_t bss_size = 0;
  for (size_t i = 0; i < objects.size(); ++i) {
    bss_size = AlignUp(bss_size, 8);
    layouts[i].bss_offset = bss_size;
    bss_size += objects[i].bss_size;
  }
  exe.bss_size = bss_size;

  // Pass 2: build the global symbol table.
  auto symbol_base = [&](size_t obj, SectionId section) -> uint32_t {
    switch (section) {
      case SectionId::kText: return exe.text_base + layouts[obj].text_offset;
      case SectionId::kData: return exe.data_base + layouts[obj].data_offset;
      case SectionId::kBss: return exe.bss_base + layouts[obj].bss_offset;
      case SectionId::kAbs: return 0;
    }
    throw InternalError("bad section id");
  };
  // name -> absolute address, for globals; per-object local tables too.
  std::vector<std::map<std::string, uint32_t>> local_symbols(objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    for (const Symbol& s : objects[i].symbols) {
      uint32_t address = symbol_base(i, s.section) + s.value;
      local_symbols[i][s.name] = address;
      if (s.global) {
        auto [it, inserted] = exe.symbols.emplace(s.name, address);
        if (!inserted) {
          throw Error(StrFormat("duplicate global symbol '%s' (in '%s')", s.name.c_str(),
                                objects[i].source_name.c_str()));
        }
      }
    }
  }

  // Pass 3: concatenate section contents.
  exe.text.resize(text_size);
  exe.data.resize(data_size);
  for (size_t i = 0; i < objects.size(); ++i) {
    std::copy(objects[i].text.begin(), objects[i].text.end(),
              exe.text.begin() + layouts[i].text_offset);
    std::copy(objects[i].data.begin(), objects[i].data.end(),
              exe.data.begin() + layouts[i].data_offset);
  }

  // Pass 4: apply relocations.
  for (size_t i = 0; i < objects.size(); ++i) {
    for (const Relocation& r : objects[i].relocations) {
      // Resolve the symbol: local first, then global.
      uint32_t symbol_value;
      auto local_it = local_symbols[i].find(r.symbol);
      if (local_it != local_symbols[i].end()) {
        symbol_value = local_it->second;
      } else {
        auto global_it = exe.symbols.find(r.symbol);
        if (global_it == exe.symbols.end()) {
          throw Error(StrFormat("undefined symbol '%s' referenced from '%s'", r.symbol.c_str(),
                                objects[i].source_name.c_str()));
        }
        symbol_value = global_it->second;
      }
      uint32_t value = symbol_value + static_cast<uint32_t>(r.addend);

      std::vector<uint8_t>* section;
      uint32_t section_offset;
      if (r.section == SectionId::kText) {
        section = &exe.text;
        section_offset = layouts[i].text_offset + r.offset;
      } else if (r.section == SectionId::kData) {
        section = &exe.data;
        section_offset = layouts[i].data_offset + r.offset;
      } else {
        throw Error(StrFormat("relocation in unsupported section in '%s'",
                              objects[i].source_name.c_str()));
      }

      uint32_t word = FetchWord(*section, section_offset);
      switch (r.type) {
        case RelocType::kWord32:
          word = value;
          break;
        case RelocType::kHi16:
          word = (word & 0xffff0000u) | (value >> 16);
          break;
        case RelocType::kLo16:
          word = (word & 0xffff0000u) | (value & 0xffffu);
          break;
        case RelocType::kJump26: {
          uint32_t instr_addr = exe.text_base + section_offset;
          if ((value & 0xf0000000u) != ((instr_addr + 4) & 0xf0000000u)) {
            throw Error(StrFormat("jump from 0x%08x to 0x%08x crosses 256MB region", instr_addr,
                                  value));
          }
          word = (word & 0xfc000000u) | ((value >> 2) & 0x03ffffffu);
          break;
        }
      }
      PatchWord(*section, section_offset, word);
    }
  }

  // Pass 5: merge block annotations (absolute addresses).
  for (size_t i = 0; i < objects.size(); ++i) {
    for (const BlockAnnotation& b : objects[i].blocks) {
      exe.blocks.push_back(
          {exe.text_base + layouts[i].text_offset + b.offset, b.flags});
    }
  }
  std::sort(exe.blocks.begin(), exe.blocks.end(),
            [](const BlockAnnotation& a, const BlockAnnotation& b) { return a.offset < b.offset; });

  for (size_t i = 0; i < objects.size(); ++i) {
    exe.object_text_bases.push_back(exe.text_base + layouts[i].text_offset);
  }
  exe.entry = exe.SymbolAddress(options.entry_symbol);
  return exe;
}

}  // namespace wrl
