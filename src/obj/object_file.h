// The EWO ("Epoxie Workbench Object") relocatable object format, the
// executable image format, and the static linker.
//
// The format exists for the same reason the paper's epoxie works at link time
// rather than on executables: the symbol and relocation tables let the
// instrumenter distinguish *uses of addresses* from coincidentally similar
// constants, so all address correction after code expansion can be done
// statically (paper §3.2).  In addition to symbols and relocations, EWO
// objects carry basic-block annotations: the assembler records every block
// leader it can prove, plus per-block tracing flags (no-trace regions,
// hand-traced routines, idle-loop counter markers) that epoxie and the
// trace-parsing library both consume.
#ifndef WRLTRACE_OBJ_OBJECT_FILE_H_
#define WRLTRACE_OBJ_OBJECT_FILE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wrl {

enum class SectionId : uint8_t { kText = 0, kData = 1, kBss = 2, kAbs = 3 };

struct Symbol {
  std::string name;
  uint32_t value = 0;  // Section-relative offset (absolute for kAbs).
  SectionId section = SectionId::kText;
  bool global = false;
};

enum class RelocType : uint8_t {
  kWord32,   // 32-bit absolute word (.word label, in text or data).
  kHi16,     // lui immediate: (S + A) >> 16   (pure upper half, paired with kLo16/ori).
  kLo16,     // ori/lw/sw immediate: (S + A) & 0xffff.
  kJump26,   // j/jal target field: (S + A) >> 2.
};

struct Relocation {
  uint32_t offset = 0;  // Byte offset within the section the reloc patches.
  SectionId section = SectionId::kText;
  RelocType type = RelocType::kWord32;
  std::string symbol;
  int32_t addend = 0;
};

// Per-basic-block tracing flags.
enum BlockFlags : uint32_t {
  kBlockNone = 0,
  // Part of the tracing system or too delicate to rewrite: epoxie must not
  // instrument it, and the parser must not expect trace from it (paper §3.3).
  kBlockNoTrace = 1u << 0,
  // Instrumented by hand rather than by epoxie; the trace-parsing library
  // recognizes its records as special (paper §3.5).
  kBlockHandTraced = 1u << 1,
  // Entering this block starts/stops the idle-loop instruction counter used
  // for the I/O-stall estimate (paper §3.5, §5.1).
  kBlockIdleStart = 1u << 2,
  kBlockIdleStop = 1u << 3,
};

struct BlockAnnotation {
  uint32_t offset = 0;  // Byte offset of the block leader within .text.
  uint32_t flags = kBlockNone;
};

struct ObjectFile {
  std::string source_name;  // For diagnostics.
  std::vector<uint8_t> text;
  std::vector<uint8_t> data;
  uint32_t bss_size = 0;
  std::vector<Symbol> symbols;
  std::vector<Relocation> relocations;
  std::vector<BlockAnnotation> blocks;  // Sorted by offset, offsets unique.

  // Word accessors for .text (offsets must be word-aligned and in range).
  uint32_t TextWord(uint32_t offset) const;
  void SetTextWord(uint32_t offset, uint32_t word);
  uint32_t NumTextWords() const { return static_cast<uint32_t>(text.size() / 4); }

  // Binary serialization (round-trips exactly; used for on-disk objects).
  std::vector<uint8_t> Serialize() const;
  static ObjectFile Deserialize(const std::vector<uint8_t>& bytes);
};

// A fully linked, absolute image.
struct Executable {
  uint32_t text_base = 0;
  std::vector<uint8_t> text;
  uint32_t data_base = 0;
  std::vector<uint8_t> data;
  uint32_t bss_base = 0;
  uint32_t bss_size = 0;
  uint32_t entry = 0;
  std::map<std::string, uint32_t> symbols;          // Global symbols, absolute.
  std::vector<BlockAnnotation> blocks;              // offset = absolute address.
  // Where each input object's text landed (absolute), in input order — the
  // hook the trace-info builder uses to pair instrumented and original
  // layouts.
  std::vector<uint32_t> object_text_bases;

  uint32_t TextEnd() const { return text_base + static_cast<uint32_t>(text.size()); }
  uint32_t DataEnd() const { return data_base + static_cast<uint32_t>(data.size()); }
  // Address of a required global symbol; throws Error if absent.
  uint32_t SymbolAddress(const std::string& name) const;
};

struct LinkOptions {
  uint32_t text_base = 0x00400000;
  // Data is placed at the first `data_align`-aligned address after text
  // (page-aligned by default so text growth changes text pages only).
  uint32_t data_align = 0x1000;
  // When nonzero, data is placed exactly here instead.  The instrumented
  // link of a binary pins data to the *original* binary's data base so the
  // data addresses recorded in the trace match the uninstrumented program
  // (paper §3.2: "expansion of traced text does not affect the trace
  // addresses generated").
  uint32_t fixed_data_base = 0;
  std::string entry_symbol = "_start";
};

// Links objects into an executable: lays out sections, resolves symbols,
// applies relocations.  Throws wrl::Error on undefined/duplicate symbols or
// malformed relocations.
Executable Link(const std::vector<ObjectFile>& objects, const LinkOptions& options);

}  // namespace wrl

#endif  // WRLTRACE_OBJ_OBJECT_FILE_H_
