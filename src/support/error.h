// Error handling primitives shared by every wrltrace library.
//
// The toolchain components (assembler, linker, epoxie) report user-level
// problems (bad assembly, undefined symbols) with Error, which carries a
// formatted message.  Internal invariant violations use the WRL_CHECK
// macros, which throw InternalError so tests can observe them.
#ifndef WRLTRACE_SUPPORT_ERROR_H_
#define WRLTRACE_SUPPORT_ERROR_H_

#include <stdexcept>
#include <string>

namespace wrl {

// A user-facing error (bad input to a tool, malformed file, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message) : std::runtime_error(message) {}
};

// A violated internal invariant: a bug in wrltrace itself.
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& message) : std::logic_error(message) {}
};

namespace support_internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& detail);
}  // namespace support_internal

}  // namespace wrl

// Always-on invariant check.  Throws wrl::InternalError on failure.
#define WRL_CHECK(expr)                                                        \
  do {                                                                         \
    if (!(expr)) {                                                             \
      ::wrl::support_internal::CheckFailed(__FILE__, __LINE__, #expr, "");     \
    }                                                                          \
  } while (0)

// Invariant check with a formatted detail message (any streamable values).
#define WRL_CHECK_MSG(expr, detail)                                              \
  do {                                                                           \
    if (!(expr)) {                                                               \
      ::wrl::support_internal::CheckFailed(__FILE__, __LINE__, #expr, (detail)); \
    }                                                                            \
  } while (0)

#endif  // WRLTRACE_SUPPORT_ERROR_H_
