// Deterministic pseudo-random number generation.
//
// Every stochastic element of the reproduction (workload data, random page
// mapping policy, Monte-Carlo workloads) draws from this generator so that
// experiments are exactly repeatable from a seed.
#ifndef WRLTRACE_SUPPORT_RNG_H_
#define WRLTRACE_SUPPORT_RNG_H_

#include <cstdint>

namespace wrl {

// SplitMix64: tiny, fast, and high-quality enough for workload synthesis.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next64() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint32_t Next32() { return static_cast<uint32_t>(Next64() >> 32); }

  // Uniform value in [0, bound).  bound must be nonzero.
  uint32_t Below(uint32_t bound) { return static_cast<uint32_t>(Next64() % bound); }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next64() >> 11) * 0x1.0p-53; }

 private:
  uint64_t state_;
};

}  // namespace wrl

#endif  // WRLTRACE_SUPPORT_RNG_H_
