#include "support/strings.h"

#include <cstdio>
#include <cstdlib>

#include "support/error.h"

namespace wrl {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int needed = vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    vsnprintf(out.data(), out.size(), fmt, args);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args);
  return out;
}

std::string Hex32(uint32_t value) { return StrFormat("0x%08x", value); }

std::vector<std::string_view> SplitFields(std::string_view text, std::string_view separators) {
  std::vector<std::string_view> fields;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find_first_of(separators, start);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    if (end > start) {
      fields.push_back(text.substr(start, end - start));
    }
    start = end + 1;
  }
  return fields;
}

std::string_view StripWhitespace(std::string_view text) {
  const char* kSpace = " \t\r\n";
  size_t first = text.find_first_not_of(kSpace);
  if (first == std::string_view::npos) {
    return {};
  }
  size_t last = text.find_last_not_of(kSpace);
  return text.substr(first, last - first + 1);
}

bool HasPrefix(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

int64_t ParseInt(std::string_view text) {
  text = StripWhitespace(text);
  if (text.empty()) {
    throw Error("empty integer literal");
  }
  bool negative = false;
  if (text.front() == '-') {
    negative = true;
    text.remove_prefix(1);
  } else if (text.front() == '+') {
    text.remove_prefix(1);
  }
  if (text.empty()) {
    throw Error("malformed integer literal");
  }
  int base = 10;
  if (HasPrefix(text, "0x") || HasPrefix(text, "0X")) {
    base = 16;
    text.remove_prefix(2);
    if (text.empty()) {
      throw Error("malformed hexadecimal literal");
    }
  }
  int64_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      throw Error(StrFormat("bad digit '%c' in integer literal", c));
    }
    if (digit >= base) {
      throw Error(StrFormat("digit '%c' out of range for base %d", c, base));
    }
    value = value * base + digit;
    if (value > (int64_t{1} << 40)) {
      throw Error("integer literal out of range");
    }
  }
  return negative ? -value : value;
}

}  // namespace wrl
