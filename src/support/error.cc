#include "support/error.h"

#include <sstream>

namespace wrl {
namespace support_internal {

void CheckFailed(const char* file, int line, const char* expr, const std::string& detail) {
  std::ostringstream os;
  os << "WRL_CHECK failed at " << file << ":" << line << ": " << expr;
  if (!detail.empty()) {
    os << " — " << detail;
  }
  throw InternalError(os.str());
}

}  // namespace support_internal
}  // namespace wrl
