#include "support/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/error.h"
#include "support/strings.h"

namespace wrl {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

void JsonWriter::NewlineIndent(size_t depth) {
  if (indent_ == 0) {
    return;
  }
  out_.push_back('\n');
  out_.append(depth * indent_, ' ');
}

void JsonWriter::BeforeValue() {
  WRL_CHECK_MSG(!(started_ && stack_.empty()), "value after the document was closed");
  if (stack_.empty()) {
    started_ = true;
    return;
  }
  if (stack_.back() == Frame::kObject) {
    WRL_CHECK_MSG(key_pending_, "object member emitted without a Key()");
    key_pending_ = false;
    return;  // Key() already handled the comma and indentation.
  }
  if (has_members_.back()) {
    out_.push_back(',');
  }
  has_members_.back() = true;
  NewlineIndent(stack_.size());
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  WRL_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kObject,
                "Key() outside an object");
  WRL_CHECK_MSG(!key_pending_, "two Key() calls in a row");
  if (has_members_.back()) {
    out_.push_back(',');
  }
  has_members_.back() = true;
  NewlineIndent(stack_.size());
  AppendEscaped(key);
  out_.append(indent_ == 0 ? ":" : ": ");
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  stack_.push_back(Frame::kObject);
  has_members_.push_back(false);
  out_.push_back('{');
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  WRL_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kObject && !key_pending_,
                "unbalanced EndObject()");
  bool had = has_members_.back();
  stack_.pop_back();
  has_members_.pop_back();
  if (had) {
    NewlineIndent(stack_.size());
  }
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  stack_.push_back(Frame::kArray);
  has_members_.push_back(false);
  out_.push_back('[');
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  WRL_CHECK_MSG(!stack_.empty() && stack_.back() == Frame::kArray, "unbalanced EndArray()");
  bool had = has_members_.back();
  stack_.pop_back();
  has_members_.pop_back();
  if (had) {
    NewlineIndent(stack_.size());
  }
  out_.push_back(']');
  return *this;
}

void JsonWriter::AppendEscaped(std::string_view text) {
  out_.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out_.append("\\\"");
        break;
      case '\\':
        out_.append("\\\\");
        break;
      case '\n':
        out_.append("\\n");
        break;
      case '\r':
        out_.append("\\r");
        break;
      case '\t':
        out_.append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out_.append(StrFormat("\\u%04x", static_cast<unsigned>(c)));
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

JsonWriter& JsonWriter::Value(std::string_view value) {
  BeforeValue();
  AppendEscaped(value);
  return *this;
}

JsonWriter& JsonWriter::Value(bool value) {
  BeforeValue();
  out_.append(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Value(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    // JSON has no infinity/NaN; report them as strings so the degenerate
    // cases stay visible instead of corrupting the document.
    AppendEscaped(std::isnan(value) ? "nan" : (value > 0 ? "inf" : "-inf"));
    return *this;
  }
  std::string rendered = StrFormat("%.17g", value);
  // Round-trippable but readable: prefer the shortest representation that
  // parses back exactly.
  for (int precision = 1; precision < 17; ++precision) {
    std::string candidate = StrFormat("%.*g", precision, value);
    if (std::strtod(candidate.c_str(), nullptr) == value) {
      rendered = candidate;
      break;
    }
  }
  out_.append(rendered);
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t value) {
  BeforeValue();
  out_.append(StrFormat("%lld", static_cast<long long>(value)));
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t value) {
  BeforeValue();
  out_.append(StrFormat("%llu", static_cast<unsigned long long>(value)));
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_.append("null");
  return *this;
}

std::string JsonWriter::TakeString() {
  WRL_CHECK_MSG(Done(), "TakeString() on an unfinished document");
  if (indent_ != 0) {
    out_.push_back('\n');
  }
  return std::move(out_);
}

// ---------------------------------------------------------------------------
// JsonValue / ParseJson
// ---------------------------------------------------------------------------

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : object) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

const JsonValue& JsonValue::At(std::string_view key) const {
  const JsonValue* found = Find(key);
  if (found == nullptr) {
    throw Error(StrFormat("json: missing object member '%.*s'",
                          static_cast<int>(key.size()), key.data()));
  }
  return *found;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue ParseDocument() {
    JsonValue value = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) {
      Fail("trailing content after the document");
    }
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) {
    throw Error(StrFormat("json: %s at offset %zu", what.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) {
      Fail(StrFormat("expected '%c'", c));
    }
    ++pos_;
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        Fail("unterminated string");
      }
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        Fail("unterminated escape");
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              Fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode (no surrogate-pair handling: our reports are ASCII).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          Fail("unknown escape");
      }
    }
  }

  JsonValue ParseValue() {
    char c = Peek();
    JsonValue value;
    if (c == '{') {
      ++pos_;
      value.kind = JsonValue::Kind::kObject;
      if (!Consume('}')) {
        do {
          std::string key = (SkipWhitespace(), ParseString());
          Expect(':');
          value.object.emplace_back(std::move(key), ParseValue());
        } while (Consume(','));
        Expect('}');
      }
      return value;
    }
    if (c == '[') {
      ++pos_;
      value.kind = JsonValue::Kind::kArray;
      if (!Consume(']')) {
        do {
          value.array.push_back(ParseValue());
        } while (Consume(','));
        Expect(']');
      }
      return value;
    }
    if (c == '"') {
      value.kind = JsonValue::Kind::kString;
      value.string = ParseString();
      return value;
    }
    SkipWhitespace();
    if (ConsumeWord("true")) {
      value.kind = JsonValue::Kind::kBool;
      value.boolean = true;
      return value;
    }
    if (ConsumeWord("false")) {
      value.kind = JsonValue::Kind::kBool;
      value.boolean = false;
      return value;
    }
    if (ConsumeWord("null")) {
      return value;
    }
    // Number.
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      Fail("unexpected character");
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    value.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      Fail("malformed number");
    }
    value.kind = JsonValue::Kind::kNumber;
    return value;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue ParseJson(std::string_view text) { return Parser(text).ParseDocument(); }

}  // namespace wrl
