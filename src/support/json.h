// Minimal JSON emission and parsing for machine-readable run reports.
//
// The observability layer (src/stats) and the experiment harness write
// their reports through JsonWriter: a streaming writer with an explicit
// BeginObject/Key/Value protocol that guarantees well-formed output
// (comma placement, string escaping, stable key order is the caller's
// choice).  ParseJson is the matching reader — just enough of RFC 8259
// to round-trip our own reports in tests and tooling; it is not a
// general-purpose validating parser.
#ifndef WRLTRACE_SUPPORT_JSON_H_
#define WRLTRACE_SUPPORT_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wrl {

// Streaming JSON writer.  Misuse (a value where a key is required, unbalanced
// End calls) throws wrl::InternalError via WRL_CHECK.
class JsonWriter {
 public:
  // `indent` > 0 pretty-prints with that many spaces per level; 0 emits
  // compact single-line JSON.
  explicit JsonWriter(unsigned indent = 2) : indent_(indent) {}

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view value);
  JsonWriter& Value(const char* value) { return Value(std::string_view(value)); }
  JsonWriter& Value(bool value);
  JsonWriter& Value(double value);
  JsonWriter& Value(int64_t value);
  JsonWriter& Value(uint64_t value);
  JsonWriter& Value(int value) { return Value(static_cast<int64_t>(value)); }
  JsonWriter& Value(unsigned value) { return Value(static_cast<uint64_t>(value)); }
  JsonWriter& Null();

  // Key/value in one call, for the common object-member case.
  template <typename T>
  JsonWriter& KV(std::string_view key, T&& value) {
    Key(key);
    return Value(std::forward<T>(value));
  }

  // True once the outermost container is closed.
  bool Done() const { return started_ && stack_.empty(); }
  // Returns the document; requires Done().
  std::string TakeString();

 private:
  enum class Frame : uint8_t { kObject, kArray };

  void BeforeValue();  // Comma/newline bookkeeping shared by all emitters.
  void NewlineIndent(size_t depth);
  void AppendEscaped(std::string_view text);

  unsigned indent_;
  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_members_;
  bool key_pending_ = false;
  bool started_ = false;
};

// A parsed JSON document.  Numbers are kept as double (adequate for our
// counter magnitudes in reports) alongside the exact source text.
struct JsonValue {
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;  // String payload (unescaped).
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // Source order.

  bool IsObject() const { return kind == Kind::kObject; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsNumber() const { return kind == Kind::kNumber; }
  bool IsString() const { return kind == Kind::kString; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
  // Like Find but throws wrl::Error when the member is missing.
  const JsonValue& At(std::string_view key) const;
  bool Has(std::string_view key) const { return Find(key) != nullptr; }
};

// Parses one JSON document; trailing non-whitespace or malformed input
// throws wrl::Error with a position-annotated message.
JsonValue ParseJson(std::string_view text);

}  // namespace wrl

#endif  // WRLTRACE_SUPPORT_JSON_H_
