// Small string utilities used across the toolchain and the harness.
#ifndef WRLTRACE_SUPPORT_STRINGS_H_
#define WRLTRACE_SUPPORT_STRINGS_H_

#include <cstdarg>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wrl {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// 0x%08x rendering of a 32-bit value; the universal notation for addresses.
std::string Hex32(uint32_t value);

// Splits on any character in `separators`; empty fields are dropped.
std::vector<std::string_view> SplitFields(std::string_view text, std::string_view separators);

// Removes leading and trailing whitespace.
std::string_view StripWhitespace(std::string_view text);

// True if `text` begins with `prefix`.
bool HasPrefix(std::string_view text, std::string_view prefix);

// Parses a decimal or 0x-prefixed hexadecimal integer (optionally negative).
// Throws wrl::Error when `text` is not a well-formed number.
int64_t ParseInt(std::string_view text);

}  // namespace wrl

#endif  // WRLTRACE_SUPPORT_STRINGS_H_
