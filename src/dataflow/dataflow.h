// Static-analysis framework over the lifted text of an EWO object: a
// generic backward gen/kill worklist solver plus interprocedural register
// liveness built on it.
//
// Liveness answers, for every text word of the *original* (uninstrumented)
// object, "which registers may be read before they are next written on some
// execution path starting here?".  Epoxie's scavenging rewriter consumes it
// to elide the header `sw ra` save where `$ra` is provably dead at a block
// leader and to redirect shadow windows through provably dead scratch
// registers; the static dilation predictor (dilation.h) reuses the same lift.
//
// The abstract semantics are deliberately exact and closed — the wrlverify
// liveness-proof pass reimplements them independently (no shared analysis
// code) and both must converge to the same least fixpoint:
//
//   * A control-transfer instruction and its delay slot form one
//     execution-ordered unit: pair-in = cti-use ∪ (slot-in ∖ cti-def).
//   * Conditional branches flow to both the (label) target and the
//     fall-through word after the slot.
//   * `j` to a symbol the object defines flows there; an external `j`,
//     a `jr` through anything (return or jump table), a syscall/break,
//     an undecodable word, an edge that leaves the text, and an edge that
//     lands on a delay-slot word all assume ALL registers live — the
//     conservative joins for indirect calls, `jr` tables, and exception
//     entry points.
//   * `jal`/`jalr` apply a callee summary (U = may-use, D = must-define):
//     live-after-slot = U ∪ (live-at-continuation ∖ D).  External or
//     unresolvable callees use the conservative (U, D) = (ALL, ∅); `jal`
//     itself kills `$ra`.
//   * Local callee summaries are an outer fixpoint over two solves of the
//     same equation system differing only in the value assumed live after a
//     `jr $ra` return: U from the system with return-out = ∅ (what the body
//     reads before writing), D from the system with return-out = ALL
//     (complement of entry liveness = registers written on every path
//     before any read or return).  Summaries start optimistic
//     (U = ∅, D = ALL) and iterate monotonically to fixpoint.
#ifndef WRLTRACE_DATAFLOW_DATAFLOW_H_
#define WRLTRACE_DATAFLOW_DATAFLOW_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "obj/object_file.h"

namespace wrl {

// Register-set bitmask, bit n = register n.  kAllRegs is the conservative
// top ("assume everything live").
constexpr uint32_t kAllRegs = 0xffffffffu;

constexpr uint32_t kNoDfNode = 0xffffffffu;

// One node of a backward gen/kill equation system.  Nodes here never need
// more than two control successors (branch target + fall-through); other
// flow (off the end of text, indirect) is folded into `top_out`.
struct DfNode {
  uint32_t gen = 0;      // Registers read by the node (before its writes).
  uint32_t kill = 0;     // Registers written by the node.
  uint32_t top_out = 0;  // Unconditional out-contribution (kAllRegs = top).
  uint32_t succ[2] = {kNoDfNode, kNoDfNode};
};

// Solves out[n] = top_out[n] ∪ ⋃ in[succ]; in[n] = gen[n] ∪ (out[n] ∖
// kill[n]) to the least fixpoint with a predecessor-driven worklist.
// Returns in[] per node.
std::vector<uint32_t> SolveBackwardLiveness(const std::vector<DfNode>& nodes);

// Summary of one local callee: `may_use` = registers some path reads before
// writing; `must_def` = registers every path writes before reading or
// returning.  The conservative unknown-callee summary is (kAllRegs, 0).
struct CallSummary {
  uint32_t may_use = kAllRegs;
  uint32_t must_def = 0;
};

struct LivenessInfo {
  // live_in[i]: registers possibly read before written on some path from
  // text word i.  For a CTI word this is the pair-entry value (CTI plus
  // delay slot as a unit).
  std::vector<uint32_t> live_in;
  // Final summaries of local `jal` targets, keyed by entry word index.
  std::unordered_map<uint32_t, CallSummary> summaries;

  uint32_t LiveIn(uint32_t word_index) const {
    return word_index < live_in.size() ? live_in[word_index] : kAllRegs;
  }
};

// Interprocedural register liveness over `obj`'s text (see file comment for
// the exact semantics).  Cost is a handful of linear worklist solves.
LivenessInfo ComputeLiveness(const ObjectFile& obj);

}  // namespace wrl

#endif  // WRLTRACE_DATAFLOW_DATAFLOW_H_
