#include "dataflow/dataflow.h"

#include <string>

#include "isa/isa.h"

namespace wrl {
namespace {

bool IsTrap(Op op) { return op == Op::kSyscall || op == Op::kBreak; }

// The lifted text of one object: decoded words, delay-slot marking, and
// `j`/`jal` target resolution through Jump26 relocations against the
// object's own text symbols.
class TextLift {
 public:
  explicit TextLift(const ObjectFile& obj) : n_(obj.NumTextWords()) {
    insts_.reserve(n_);
    for (uint32_t i = 0; i < n_; ++i) {
      insts_.push_back(Decode(obj.TextWord(i * 4)));
    }
    slot_.assign(n_, false);
    for (uint32_t i = 0; i + 1 < n_; ++i) {
      if (!slot_[i] && HasDelaySlot(insts_[i].op)) {
        slot_[i + 1] = true;
      }
    }
    std::unordered_map<std::string, uint32_t> text_syms;
    for (const Symbol& s : obj.symbols) {
      if (s.section == SectionId::kText && s.value % 4 == 0 && s.value / 4 < n_) {
        text_syms.emplace(s.name, s.value / 4);
      }
    }
    for (const Relocation& r : obj.relocations) {
      if (r.section != SectionId::kText || r.type != RelocType::kJump26) continue;
      if (r.offset % 4 != 0 || r.addend != 0) continue;
      auto it = text_syms.find(r.symbol);
      if (it == text_syms.end()) continue;
      const uint32_t entry = it->second;
      if (!slot_[entry]) {
        jump_targets_.emplace(r.offset / 4, entry);
      }
    }
  }

  uint32_t n() const { return n_; }
  const Inst& inst(uint32_t i) const { return insts_[i]; }
  bool is_slot(uint32_t i) const { return slot_[i]; }
  // Local target of the j/jal at word i, or kNoDfNode when unresolvable.
  uint32_t JumpTarget(uint32_t i) const {
    auto it = jump_targets_.find(i);
    return it == jump_targets_.end() ? kNoDfNode : it->second;
  }

 private:
  uint32_t n_;
  std::vector<Inst> insts_;
  std::vector<bool> slot_;
  std::unordered_map<uint32_t, uint32_t> jump_targets_;
};

// Adds a control edge from → to; edges leaving the text or landing on a
// delay-slot word degrade to the conservative top.
void AddEdge(std::vector<DfNode>& nodes, uint32_t from, const TextLift& lift, int64_t to) {
  DfNode& nd = nodes[from];
  if (to < 0 || to >= static_cast<int64_t>(lift.n()) || lift.is_slot(static_cast<uint32_t>(to))) {
    nd.top_out = kAllRegs;
    return;
  }
  if (nd.succ[0] == kNoDfNode) {
    nd.succ[0] = static_cast<uint32_t>(to);
  } else {
    nd.succ[1] = static_cast<uint32_t>(to);
  }
}

// Lowers the text into the equation system.  Word i maps to node i (the
// pair-entry node for a CTI); jal/jalr callsites get one extra summary node
// carrying the callee transfer between the delay slot and the continuation.
// `return_top` is the value assumed live after a `jr $ra` return.
std::vector<DfNode> BuildNodes(const TextLift& lift, uint32_t return_top,
                               const std::unordered_map<uint32_t, CallSummary>& summaries) {
  const uint32_t n = lift.n();
  std::vector<DfNode> nodes(n);
  for (uint32_t i = 0; i < n; ++i) {
    const Inst& a = lift.inst(i);
    nodes[i].gen = RegsRead(a);
    nodes[i].kill = RegsWritten(a);
    if (a.op == Op::kInvalid || IsTrap(a.op)) {
      // Exception entry / undecodable: everything live.
      nodes[i].gen = kAllRegs;
      nodes[i].kill = 0;
      continue;
    }
    if (lift.is_slot(i)) continue;  // Wired below by its CTI.
    if (!HasDelaySlot(a.op)) {
      AddEdge(nodes, i, lift, static_cast<int64_t>(i) + 1);
      continue;
    }
    const uint32_t s = i + 1;
    if (s >= n || HasDelaySlot(lift.inst(s).op)) {
      // Truncated pair or CTI in the delay slot: give up on the pair.
      nodes[i].gen = kAllRegs;
      nodes[i].kill = 0;
      continue;
    }
    nodes[i].succ[0] = s;
    if (IsBranch(a.op)) {
      AddEdge(nodes, s, lift, static_cast<int64_t>(i) + 1 + a.imm);
      AddEdge(nodes, s, lift, static_cast<int64_t>(i) + 2);
    } else if (a.op == Op::kJ) {
      const uint32_t t = lift.JumpTarget(i);
      if (t == kNoDfNode) {
        nodes[s].top_out = kAllRegs;
      } else {
        AddEdge(nodes, s, lift, t);
      }
    } else if (a.op == Op::kJr) {
      nodes[s].top_out |= a.rs == kRa ? return_top : kAllRegs;
    } else {  // jal / jalr: summary node between the slot and the return point.
      CallSummary sum;  // Unknown callee: (may_use, must_def) = (ALL, ∅).
      if (a.op == Op::kJal) {
        const uint32_t entry = lift.JumpTarget(i);
        auto it = entry == kNoDfNode ? summaries.end() : summaries.find(entry);
        if (it != summaries.end()) sum = it->second;
      }
      nodes.push_back(DfNode{});
      const uint32_t c = static_cast<uint32_t>(nodes.size() - 1);
      nodes[c].gen = sum.may_use;
      nodes[c].kill = sum.must_def;
      AddEdge(nodes, c, lift, static_cast<int64_t>(i) + 2);
      nodes[s].succ[0] = c;
    }
  }
  return nodes;
}

}  // namespace

std::vector<uint32_t> SolveBackwardLiveness(const std::vector<DfNode>& nodes) {
  const uint32_t n = static_cast<uint32_t>(nodes.size());
  std::vector<uint32_t> in(n, 0);
  // Predecessor CSR arrays drive the worklist.
  std::vector<uint32_t> pred_start(n + 1, 0);
  for (const DfNode& nd : nodes) {
    for (uint32_t s : nd.succ) {
      if (s != kNoDfNode) ++pred_start[s + 1];
    }
  }
  for (uint32_t i = 0; i < n; ++i) pred_start[i + 1] += pred_start[i];
  std::vector<uint32_t> preds(pred_start[n]);
  {
    std::vector<uint32_t> fill(pred_start.begin(), pred_start.end() - 1);
    for (uint32_t p = 0; p < n; ++p) {
      for (uint32_t s : nodes[p].succ) {
        if (s != kNoDfNode) preds[fill[s]++] = p;
      }
    }
  }
  // Seed in program order so later nodes (the useful direction for a
  // backward problem) are processed first.
  std::vector<uint32_t> stack;
  stack.reserve(n);
  std::vector<char> queued(n, 1);
  for (uint32_t i = 0; i < n; ++i) stack.push_back(i);
  while (!stack.empty()) {
    const uint32_t q = stack.back();
    stack.pop_back();
    queued[q] = 0;
    const DfNode& nd = nodes[q];
    uint32_t out = nd.top_out;
    for (uint32_t s : nd.succ) {
      if (s != kNoDfNode) out |= in[s];
    }
    const uint32_t v = nd.gen | (out & ~nd.kill);
    if (v == in[q]) continue;
    in[q] = v;
    for (uint32_t k = pred_start[q]; k < pred_start[q + 1]; ++k) {
      const uint32_t p = preds[k];
      if (!queued[p]) {
        queued[p] = 1;
        stack.push_back(p);
      }
    }
  }
  return in;
}

LivenessInfo ComputeLiveness(const ObjectFile& obj) {
  TextLift lift(obj);
  // Local callee entries = resolvable jal targets; summaries start
  // optimistic (U = ∅, D = ALL) and grow/shrink monotonically.
  std::unordered_map<uint32_t, CallSummary> summaries;
  for (uint32_t i = 0; i < lift.n(); ++i) {
    if (lift.inst(i).op == Op::kJal && !lift.is_slot(i)) {
      const uint32_t entry = lift.JumpTarget(i);
      if (entry != kNoDfNode) {
        summaries.emplace(entry, CallSummary{0, kAllRegs});
      }
    }
  }
  std::vector<uint32_t> in_all;
  for (;;) {
    // System-U (return-out = ∅) yields may-use at each entry; System-D
    // (return-out = ALL) yields must-def as the complement of entry
    // liveness.  The final System-D solution is the answer itself.
    std::vector<uint32_t> in_none = SolveBackwardLiveness(BuildNodes(lift, 0, summaries));
    in_all = SolveBackwardLiveness(BuildNodes(lift, kAllRegs, summaries));
    bool changed = false;
    for (auto& [entry, sum] : summaries) {
      const CallSummary next{in_none[entry], ~in_all[entry]};
      if (next.may_use != sum.may_use || next.must_def != sum.must_def) {
        sum = next;
        changed = true;
      }
    }
    if (!changed) break;
  }
  LivenessInfo info;
  if (lift.n() > 0) {
    info.live_in.assign(in_all.begin(), in_all.begin() + lift.n());
  }
  info.summaries = std::move(summaries);
  return info;
}

}  // namespace wrl
