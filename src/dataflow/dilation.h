// Static dilation prediction: per-procedure trace volume, instrumented-text
// growth, and memtrace density derived purely from the original object, the
// liveness analysis, and epoxie's exact per-block static record — no traced
// run involved.
//
// The per-block figures are exact per entry by construction (epoxie records
// `instr_words` and the memory-op list it actually emitted), so weighting
// them with dynamic entry counts must reproduce wrlprof's OverheadInsts /
// TraceWords reconciliation to the word — the cross-check the tests pin.
#ifndef WRLTRACE_DATAFLOW_DILATION_H_
#define WRLTRACE_DATAFLOW_DILATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "epoxie/epoxie.h"
#include "obj/object_file.h"

namespace wrl {

// One instrumented basic block's static per-entry prediction.
struct BlockDilation {
  uint32_t orig_offset = 0;            // Original-text offset of the leader.
  uint32_t num_insts = 0;              // Original instructions.
  uint32_t instr_words = 0;            // Instrumented words it became.
  uint32_t mem_ops = 0;
  // Trace words one entry writes: the key plus one word per memory op.
  uint32_t TraceWordsPerEntry() const { return 1 + mem_ops; }
  // Epoxie-inserted instructions one entry executes.
  uint32_t OverheadInstsPerEntry() const {
    return instr_words > num_insts ? instr_words - num_insts : 0;
  }
};

// Per-procedure rollup (procedures = global text symbols of the original
// object; leading blocks before the first symbol fall into "[unknown]").
struct ProcDilation {
  std::string name;
  uint32_t addr = 0;          // Original-text offset of the symbol.
  uint32_t blocks = 0;
  uint32_t orig_insts = 0;
  uint32_t instr_words = 0;
  uint32_t mem_ops = 0;
  uint32_t trace_words_per_visit = 0;  // Σ per-block TraceWordsPerEntry().
  // Liveness-derived: leaders where $ra is provably dead, i.e. header
  // saves the scavenging rewriter may elide.
  uint32_t ra_dead_leaders = 0;

  double Growth() const {
    return orig_insts == 0 ? 1.0 : static_cast<double>(instr_words) / orig_insts;
  }
  double MemtraceDensity() const {
    return orig_insts == 0 ? 0.0 : static_cast<double>(mem_ops) / orig_insts;
  }
};

struct DilationPrediction {
  std::vector<BlockDilation> blocks;  // In result-block order.
  std::vector<ProcDilation> procs;    // By ascending symbol address.
  // Whole-object totals (instrumented blocks only).
  uint64_t orig_insts = 0;
  uint64_t instr_words = 0;
  uint64_t mem_ops = 0;
  uint64_t trace_words_per_visit = 0;
  uint32_t ra_dead_leaders = 0;

  double Growth() const {
    return orig_insts == 0 ? 1.0 : static_cast<double>(instr_words) / static_cast<double>(orig_insts);
  }
  double MemtraceDensity() const {
    return orig_insts == 0 ? 0.0 : static_cast<double>(mem_ops) / static_cast<double>(orig_insts);
  }
};

// Predicts dilation for `result` = Instrument(original, ...).
DilationPrediction PredictDilation(const ObjectFile& original, const InstrumentResult& result);

}  // namespace wrl

#endif  // WRLTRACE_DATAFLOW_DILATION_H_
