#include "dataflow/dilation.h"

#include <algorithm>
#include <utility>

#include "dataflow/dataflow.h"

namespace wrl {

DilationPrediction PredictDilation(const ObjectFile& original, const InstrumentResult& result) {
  DilationPrediction out;
  // Procedure buckets: global text symbols of the original object, by
  // ascending offset (ties keep the first name, deterministically).
  std::vector<std::pair<uint32_t, std::string>> syms;
  for (const Symbol& s : original.symbols) {
    if (s.global && s.section == SectionId::kText) {
      syms.emplace_back(s.value, s.name);
    }
  }
  std::sort(syms.begin(), syms.end());
  syms.erase(std::unique(syms.begin(), syms.end(),
                         [](const auto& a, const auto& b) { return a.first == b.first; }),
             syms.end());

  const LivenessInfo live = ComputeLiveness(original);
  constexpr uint32_t kRaBit = 1u << 31;

  out.procs.reserve(syms.size() + 1);
  auto proc_for = [&](uint32_t orig_offset) -> ProcDilation& {
    // Last symbol at or below the block leader; "[unknown]" when none.
    auto it = std::upper_bound(syms.begin(), syms.end(),
                               std::make_pair(orig_offset, std::string("\x7f")));
    std::string name = "[unknown]";
    uint32_t addr = 0;
    if (it != syms.begin()) {
      --it;
      name = it->second;
      addr = it->first;
    }
    for (ProcDilation& p : out.procs) {
      if (p.name == name && p.addr == addr) return p;
    }
    ProcDilation p;
    p.name = std::move(name);
    p.addr = addr;
    out.procs.push_back(std::move(p));
    return out.procs.back();
  };

  for (const BlockStatic& bs : result.blocks) {
    BlockDilation bd;
    bd.orig_offset = bs.orig_offset;
    bd.num_insts = bs.num_insts;
    bd.instr_words = bs.instr_words;
    bd.mem_ops = static_cast<uint32_t>(bs.mem_ops.size());
    ProcDilation& proc = proc_for(bs.orig_offset);
    proc.blocks += 1;
    proc.orig_insts += bd.num_insts;
    proc.instr_words += bd.instr_words;
    proc.mem_ops += bd.mem_ops;
    proc.trace_words_per_visit += bd.TraceWordsPerEntry();
    const bool ra_dead = (live.LiveIn(bs.orig_offset / 4) & kRaBit) == 0;
    if (ra_dead) proc.ra_dead_leaders += 1;

    out.orig_insts += bd.num_insts;
    out.instr_words += bd.instr_words;
    out.mem_ops += bd.mem_ops;
    out.trace_words_per_visit += bd.TraceWordsPerEntry();
    if (ra_dead) out.ra_dead_leaders += 1;
    out.blocks.push_back(bd);
  }
  std::sort(out.procs.begin(), out.procs.end(),
            [](const ProcDilation& a, const ProcDilation& b) {
              return a.addr != b.addr ? a.addr < b.addr : a.name < b.name;
            });
  return out;
}

}  // namespace wrl
