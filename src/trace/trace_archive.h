// Durable wrltrace/1 trace archives: crash-safe on-disk capture and
// cross-run replay (the record-and-replay lesson — rr, HMTT — applied to
// the paper's capture-and-analyze pipeline: the trace stream is a
// first-class storable artifact, not a process-lifetime byproduct).
//
// File layout (all integers little-endian):
//
//   header   "wrlt" | version u32 | flags u32 | meta_bytes u32 |
//            meta_crc u32 | header_crc u32
//   metadata meta_bytes of compact JSON: a flat object of string values
//            carrying the capture's identity (workload, scale, personality,
//            clock period, dilation, epoxie/scavenge settings, ...) —
//            everything a fresh process needs to rebuild the capturing
//            system deterministically and replay the archive bit-identically.
//   chunks   a sequence of records, one per trace-buffer drain:
//              "wrlc" | payload_bytes u32 | word_count u32 |
//              payload_crc u32 | head_crc u32 | payload
//            The payload is the shared chunk codec's coding of the drain
//            (trace/chunk_codec.h) — independently decodable, so any chunk
//            decodes without touching the ones before it.
//   footer   "wrlf" | chunk_count u32 | total_words u64 |
//            directory[chunk_count] {offset u64, payload_bytes u32,
//            word_count u32, payload_crc u32} | dir_crc u32 |
//            footer_bytes u64 | "wrle"
//
// Crash-safety protocol: the writer streams each chunk (flushed as it
// lands) and writes the footer only at Finalize().  A reader that finds a
// valid footer seeks the directory in O(1) and can decode any window of
// chunks in parallel.  A truncated or torn archive — missing footer, torn
// final chunk, interrupted write — is *recovered*, not rejected: the reader
// scans forward validating each chunk's framing CRC and payload CRC, keeps
// every chunk up to the last valid one, and surfaces a loud
// degraded-capture diagnostic.  Only a wrong magic or unknown version is a
// hard failure.  Every CRC is IEEE CRC-32.
#ifndef WRLTRACE_TRACE_TRACE_ARCHIVE_H_
#define WRLTRACE_TRACE_TRACE_ARCHIVE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "stats/stats.h"
#include "trace/chunk_source.h"

namespace wrl {

// IEEE CRC-32 (the zlib/gzip polynomial), used for every archive checksum.
uint32_t Crc32(const uint8_t* data, size_t size, uint32_t seed = 0);

// Flat identity metadata: ordered key/value strings (kept generic here so
// the trace layer needs no knowledge of harness types; the harness and the
// wrltrace tool agree on the key vocabulary).
using ArchiveMeta = std::vector<std::pair<std::string, std::string>>;

constexpr uint32_t kArchiveVersion = 1;

// Streams a capture to disk.  Append() is chunk-granular and flushes, so a
// crash (or a never-called Finalize) loses at most the chunk being written;
// Finalize() writes the directory footer and fsyncs.  Throws wrl::Error on
// I/O failure.
class ArchiveWriter {
 public:
  struct Options {
    bool packed = true;  // Delta/varint payloads; false stores raw words.
  };

  ArchiveWriter(const std::string& path, const ArchiveMeta& meta, const Options& options);
  ArchiveWriter(const std::string& path, const ArchiveMeta& meta)
      : ArchiveWriter(path, meta, Options()) {}
  ~ArchiveWriter();
  ArchiveWriter(const ArchiveWriter&) = delete;
  ArchiveWriter& operator=(const ArchiveWriter&) = delete;

  // Appends one drained chunk (boundaries are preserved on replay).
  void Append(const uint32_t* words, size_t count);
  void Append(const std::vector<uint32_t>& words) { Append(words.data(), words.size()); }

  // Writes the chunk directory footer, fsyncs, and closes.  Idempotent;
  // Append() after Finalize() is an error.
  void Finalize();
  bool finalized() const { return finalized_; }

  const std::string& path() const { return path_; }
  uint64_t words() const { return words_; }
  uint64_t chunks() const { return directory_.size(); }
  // Total file bytes written so far (header + metadata + chunk records).
  uint64_t bytes_written() const { return bytes_written_; }
  // Raw capture bytes (4 per word) over the whole file's footprint.
  double CompressionRatio() const;

  // Binds writer-side counters into `registry`; the writer must outlive
  // snapshots of the registry.
  void RegisterStats(StatsRegistry& registry, const std::string& prefix = "archive.");

 private:
  struct DirEntry {
    uint64_t offset = 0;  // File offset of the chunk record header.
    uint32_t payload_bytes = 0;
    uint32_t word_count = 0;
    uint32_t payload_crc = 0;
  };

  void WriteBytes(const void* data, size_t size);

  std::string path_;
  std::FILE* file_ = nullptr;
  bool packed_;
  bool finalized_ = false;
  std::vector<DirEntry> directory_;
  std::vector<uint8_t> scratch_;  // Reused payload encode buffer.
  uint64_t words_ = 0;
  uint64_t bytes_written_ = 0;
};

// Memory-maps a wrltrace/1 archive and serves it as a TraceChunkSource:
// ReplayEngine (and everything downstream — simulators, sweeps, profilers)
// replays an archive exactly as it would an in-memory TraceLog, including
// windowed chunk-parallel decode via the directory.  Every DecodeChunk
// verifies the chunk's CRC before trusting a byte, so a corrupt payload
// surfaces as a chunk-accurate wrl::Error, never as garbage references.
class ArchiveReader : public TraceChunkSource {
 public:
  // Opens and indexes the archive.  Wrong magic or unknown version throws
  // wrl::Error; a missing/torn footer or torn trailing chunk triggers the
  // recovery scan instead — the readable prefix is served and degraded()
  // reports true with diagnostics().
  explicit ArchiveReader(const std::string& path);
  ~ArchiveReader() override;
  ArchiveReader(const ArchiveReader&) = delete;
  ArchiveReader& operator=(const ArchiveReader&) = delete;

  // ---- TraceChunkSource ----
  size_t chunk_count() const override { return directory_.size(); }
  uint64_t word_count() const override { return words_; }
  void DecodeChunk(size_t index, std::vector<uint32_t>& out) const override;

  const std::string& path() const { return path_; }
  bool packed() const { return packed_; }
  uint64_t file_bytes() const { return file_bytes_; }
  // Sum of coded chunk payload bytes (the compressed capture proper).
  uint64_t payload_bytes() const { return payload_bytes_; }
  double CompressionRatio() const;

  // Identity metadata recorded by the writer.
  const ArchiveMeta& meta() const { return meta_; }
  // Value for `key`, or `fallback` when absent.
  std::string MetaValue(const std::string& key, const std::string& fallback = "") const;

  // True when the archive was recovered from a truncated/torn state: the
  // directory covers only the chunks whose CRCs survived, and
  // diagnostics() says exactly what was lost and where.
  bool degraded() const { return degraded_; }
  const std::vector<std::string>& diagnostics() const { return diagnostics_; }

  // Full integrity sweep: re-checks every directory entry's framing and
  // payload CRC and bounds-decodes every payload.  `findings` collects one
  // structured line per problem; returns true when the archive is clean
  // (recovery diagnostics count as findings).
  bool Verify(std::vector<std::string>* findings = nullptr) const;

 private:
  struct DirEntry {
    uint64_t offset = 0;  // File offset of the chunk record header.
    uint32_t payload_bytes = 0;
    uint32_t word_count = 0;
    uint32_t payload_crc = 0;
  };

  const uint8_t* data() const { return static_cast<const uint8_t*>(map_); }
  bool LoadFooter();
  void RecoverByScan(const std::string& reason);

  std::string path_;
  void* map_ = nullptr;
  uint64_t file_bytes_ = 0;
  bool packed_ = true;
  bool degraded_ = false;
  uint64_t words_ = 0;
  uint64_t payload_bytes_ = 0;
  uint64_t data_start_ = 0;  // First chunk record offset.
  ArchiveMeta meta_;
  std::vector<DirEntry> directory_;
  std::vector<std::string> diagnostics_;
};

}  // namespace wrl

#endif  // WRLTRACE_TRACE_TRACE_ARCHIVE_H_
