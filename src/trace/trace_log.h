// Capture-once trace storage (the "capture once, analyze many ways" leverage
// of hybrid tracing systems — HMTT, the CVA6 efficient-trace work).
//
// A TraceLog records the raw kernel-buffer words exactly as the trace
// transport drained them, preserving drain-chunk boundaries, so any number
// of analysis configurations can later replay the identical stream without
// re-running the traced machine.  Storage is optionally packed with the
// shared chunk codec (trace/chunk_codec.h): per-bucket delta + zigzag +
// LEB128 varints.  Typical system traces pack to roughly half their raw
// size — directly addressing the paper's §4.3 concern that buffer capacity
// bounds continuous tracing — and the achieved ratio is exported as a
// wrlstats metric rather than assumed.  Packing is lossless: Replay()
// reproduces the captured words bit-for-bit in the captured chunking.
//
// Chunks are *independently* coded (predictors reset per chunk, start
// offsets recorded), so TraceLog implements TraceChunkSource: any chunk
// decodes without touching the ones before it, ReplayParallel() fans the
// decode out to worker threads, and the analysis side treats an in-memory
// capture and an on-disk wrltrace/1 archive (trace_archive.h)
// interchangeably.
#ifndef WRLTRACE_TRACE_TRACE_LOG_H_
#define WRLTRACE_TRACE_TRACE_LOG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "stats/stats.h"
#include "trace/chunk_source.h"

namespace wrl {

class TraceLog : public TraceChunkSource {
 public:
  // `packed` selects the delta/varint encoding; unpacked logs store the
  // words verbatim (useful when append cost must be absolutely minimal).
  explicit TraceLog(bool packed = true) : packed_(packed) {}

  // Appends one drained chunk.  Chunk boundaries are preserved and replayed
  // as-is, so a replayed parser sees the same Feed() granularity the live
  // path saw.
  void Append(const uint32_t* words, size_t count);
  void Append(const std::vector<uint32_t>& words) { Append(words.data(), words.size()); }

  // ---- TraceChunkSource ----
  size_t chunk_count() const override { return chunk_words_.size(); }
  uint64_t word_count() const override { return words_; }
  void DecodeChunk(size_t index, std::vector<uint32_t>& out) const override;
  // Unpacked logs hand out their own storage without a decode copy.
  void Replay(const std::function<void(const uint32_t*, size_t)>& sink) const override;
  // An unpacked log has nothing to decode in parallel; it degrades to the
  // zero-copy Replay().
  void ReplayParallel(unsigned workers,
                      const std::function<void(const uint32_t*, size_t)>& sink) const override;

  void Clear();

  bool packed() const { return packed_; }
  uint64_t words() const { return words_; }
  uint64_t chunks() const { return chunk_words_.size(); }
  // Raw payload size (4 bytes per captured word).
  uint64_t raw_bytes() const { return words_ * 4; }
  // Bytes actually held (packed stream or verbatim words).
  uint64_t stored_bytes() const;
  // raw_bytes / stored_bytes; 1.0 for an empty or unpacked log.
  double CompressionRatio() const;

  // Binds capture-side counters and the compression ratio into `registry`;
  // the log must outlive snapshots of the registry.
  void RegisterStats(StatsRegistry& registry, const std::string& prefix = "tracelog.");

 private:
  bool packed_;
  std::vector<uint8_t> bytes_;     // Packed stream (packed_ == true).
  std::vector<uint32_t> raw_;      // Verbatim words (packed_ == false).
  std::vector<uint64_t> chunk_words_;  // Words per appended chunk.
  // Start of each chunk: byte offset into bytes_ (packed) or word offset
  // into raw_ (unpacked).  Chunks decode independently from here.
  std::vector<uint64_t> chunk_starts_;
  uint64_t words_ = 0;
};

}  // namespace wrl

#endif  // WRLTRACE_TRACE_TRACE_LOG_H_
