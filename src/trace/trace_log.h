// Capture-once trace storage (the "capture once, analyze many ways" leverage
// of hybrid tracing systems — HMTT, the CVA6 efficient-trace work).
//
// A TraceLog records the raw kernel-buffer words exactly as the trace
// transport drained them, preserving drain-chunk boundaries, so any number
// of analysis configurations can later replay the identical stream without
// re-running the traced machine.  Storage is optionally packed: trace words
// are strongly clustered (block keys walk text pages, data addresses walk
// the data segment, markers live in one reserved page), so each word is
// delta-encoded against the last word seen in its 16-way bucket (a fold of
// the word's upper address nibbles) and the zigzagged delta is
// LEB128-varint coded.  Typical system
// traces pack to roughly half their raw size — directly addressing the
// paper's §4.3 concern that buffer capacity bounds continuous tracing —
// and the achieved ratio is exported as a wrlstats metric rather than
// assumed.  Packing is lossless: Replay() reproduces the captured words
// bit-for-bit in the captured chunking.
//
// Chunks are *independently* delta-encoded: the per-bucket predictors
// reset at every chunk boundary and each chunk's start offset in the
// packed stream is recorded, so any chunk decodes without touching the
// ones before it.  That costs a handful of full-width varints per chunk
// (noise against the thousands of words a drain holds) and buys
// chunk-parallel decode: ReplayParallel() fans the decode out to worker
// threads while delivering chunks to the sink strictly in capture order —
// the same sequence, boundaries, and words Replay() produces, just faster.
#ifndef WRLTRACE_TRACE_TRACE_LOG_H_
#define WRLTRACE_TRACE_TRACE_LOG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "stats/stats.h"

namespace wrl {

class TraceLog {
 public:
  // `packed` selects the delta/varint encoding; unpacked logs store the
  // words verbatim (useful when append cost must be absolutely minimal).
  explicit TraceLog(bool packed = true) : packed_(packed) {}

  // Appends one drained chunk.  Chunk boundaries are preserved and replayed
  // as-is, so a replayed parser sees the same Feed() granularity the live
  // path saw.
  void Append(const uint32_t* words, size_t count);
  void Append(const std::vector<uint32_t>& words) { Append(words.data(), words.size()); }

  // Decodes the log, invoking `sink` once per captured chunk.
  void Replay(const std::function<void(const uint32_t*, size_t)>& sink) const;
  // Chunk-parallel decode: up to `workers` threads decode chunks
  // concurrently (each chunk is independently coded) while the calling
  // thread invokes `sink` once per chunk in strict capture order — the
  // identical delivery Replay() makes.  In-flight decoded chunks are
  // bounded, so memory stays O(workers), not O(log).  workers <= 1, an
  // unpacked log, or a single-chunk log all degrade to Replay().
  void ReplayParallel(unsigned workers,
                      const std::function<void(const uint32_t*, size_t)>& sink) const;
  // Decodes one chunk (0-based capture order) into `out` (cleared first).
  void DecodeChunk(size_t index, std::vector<uint32_t>& out) const;
  // The whole log as one flat word vector.
  std::vector<uint32_t> Words() const;

  void Clear();

  bool packed() const { return packed_; }
  uint64_t words() const { return words_; }
  uint64_t chunks() const { return chunk_words_.size(); }
  // Raw payload size (4 bytes per captured word).
  uint64_t raw_bytes() const { return words_ * 4; }
  // Bytes actually held (packed stream or verbatim words).
  uint64_t stored_bytes() const;
  // raw_bytes / stored_bytes; 1.0 for an empty or unpacked log.
  double CompressionRatio() const;

  // Binds capture-side counters and the compression ratio into `registry`;
  // the log must outlive snapshots of the registry.
  void RegisterStats(StatsRegistry& registry, const std::string& prefix = "tracelog.");

 private:
  // Predictor selection: fold every upper-address nibble (page-offset bits
  // excluded) so interleaved streams that differ in *any* bit above the
  // page offset — block keys vs data addresses, text vs stack — get
  // separate delta predictors.  The bucket id is stored in the coded
  // stream, so this choice only affects the achieved ratio, never
  // decodability.
  static unsigned Bucket(uint32_t word) {
    return ((word >> 12) ^ (word >> 16) ^ (word >> 20) ^ (word >> 24) ^ (word >> 28)) & 0xfu;
  }

  bool packed_;
  std::vector<uint8_t> bytes_;     // Packed stream (packed_ == true).
  std::vector<uint32_t> raw_;      // Verbatim words (packed_ == false).
  std::vector<uint64_t> chunk_words_;  // Words per appended chunk.
  // Start of each chunk: byte offset into bytes_ (packed) or word offset
  // into raw_ (unpacked).  Chunks decode independently from here.
  std::vector<uint64_t> chunk_starts_;
  uint64_t words_ = 0;
};

}  // namespace wrl

#endif  // WRLTRACE_TRACE_TRACE_LOG_H_
