// The pipelined trace transport (the ISSUE-7 producer/consumer split).
//
// Chen's argument is that software tracing pays off when the trace is
// consumed on the fly — but a synchronous on-the-fly consumer makes the
// traced machine stall for the full cost of every drain.  HMTT-style
// decoupling fixes that: the traced machine (producer) copies each drained
// trace-buffer chunk into a bounded single-producer/single-consumer ring
// and immediately resumes simulating, while a consumer thread runs the
// parser + analysis sink chain over the chunks in drain order
// (simulate ∥ parse ∥ analyze).
//
// Ordering/identity invariant: the ring is strictly FIFO and the consumer
// is a single thread, so the consumer observes exactly the chunk sequence
// (and chunk boundaries) a synchronous sink would have seen.  Every
// counter, trace word, profile, and report byte is therefore identical to
// the synchronous path; only wall-clock overlap changes.  The overlap is
// observable through the producer-stall / consumer-starve / ring-occupancy
// counters each ring exports as `trace.pipeline.*` wrlstats metrics.
//
// Degradation: the pipeline only helps when a second hardware thread can
// run the consumer, so PipelineEnabled() defaults to on for multi-core
// hosts and off (synchronous) for single-core ones.  WRL_PIPELINE=1 forces
// it on (the tests do this to exercise the threaded path everywhere);
// WRL_PIPELINE=0 forces today's synchronous path.
#ifndef WRLTRACE_TRACE_CHUNK_RING_H_
#define WRLTRACE_TRACE_CHUNK_RING_H_

#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "stats/stats.h"

namespace wrl {

// Default ring capacity, in chunks.  A chunk is one trace-buffer drain, so
// even a shallow ring lets the machine run a full buffer ahead of the
// analysis; deeper rings only buy slack against bursty drains.
constexpr size_t kDefaultPipelineDepth = 8;

// The pipeline default: on when a second hardware thread exists to run the
// consumer, overridable either way with WRL_PIPELINE=1 / WRL_PIPELINE=0.
inline bool PipelineEnabled() {
  if (const char* env = std::getenv("WRL_PIPELINE")) {
    return std::strcmp(env, "0") != 0;
  }
  return std::thread::hardware_concurrency() > 1;
}

// Worker count for chunk-parallel TraceLog decode (the replay-side use of
// the same pipelining idea): 1 (serial) when the pipeline is disabled,
// otherwise bounded by the host's hardware threads.
inline unsigned PipelineDecodeWorkers() {
  if (!PipelineEnabled()) {
    return 1;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw < 2 ? 2 : (hw > 8 ? 8 : hw);
}

// A bounded SPSC ring of trace-word chunks.  Push copies the chunk (the
// producer's buffer is the live kernel trace buffer, reused immediately
// after the drain returns); Pop moves the oldest chunk out by swap, so
// slot storage recycles between the two threads without reallocating once
// the ring reaches steady state.
//
// Exactly one producer thread may call Push/Close and one consumer thread
// Pop; Cancel may be called from either side.  The stats accessors are
// meant for after the ring has quiesced (Close + drained, or Cancel).
class ChunkRing {
 public:
  explicit ChunkRing(size_t capacity = kDefaultPipelineDepth);

  // Copies one chunk into the ring, blocking while the ring is full (a
  // producer stall — the machine outran the analysis).  Returns false,
  // dropping the chunk, once the ring has been cancelled.
  bool Push(const uint32_t* words, size_t count);
  // Moves the oldest chunk into `out`, blocking while the ring is empty (a
  // consumer starve — the analysis outran the machine).  Returns false
  // once the ring is closed and drained, or cancelled.
  bool Pop(std::vector<uint32_t>& out);
  // Producer side: no more chunks; the consumer drains what remains.
  void Close();
  // Error path (either side): unblocks both threads and drops queued
  // chunks.  Push returns false afterwards.
  void Cancel();

  bool cancelled() const;

  // ---- Observability (quiesced ring) ----
  uint64_t chunks() const { return chunks_; }
  uint64_t words() const { return words_; }
  uint64_t producer_stalls() const { return producer_stalls_; }
  uint64_t consumer_starves() const { return consumer_starves_; }
  uint64_t max_occupancy() const { return max_occupancy_; }
  size_t capacity() const { return slots_.size(); }
  const Histogram& occupancy_hist() const { return occupancy_hist_; }

  // Binds the ring's counters into `registry` under `prefix`
  // ("trace.pipeline." in the experiment harness).  The ring must have
  // quiesced and must outlive snapshots of the registry.
  void RegisterStats(StatsRegistry& registry, const std::string& prefix = "trace.pipeline.");

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<std::vector<uint32_t>> slots_;
  size_t head_ = 0;  // Oldest occupied slot.
  size_t size_ = 0;  // Occupied slots.
  bool closed_ = false;
  bool cancelled_ = false;

  // Transport accounting (mutated under mutex_; read once quiesced).
  uint64_t chunks_ = 0;
  uint64_t words_ = 0;
  uint64_t producer_stalls_ = 0;
  uint64_t consumer_starves_ = 0;
  uint64_t max_occupancy_ = 0;
  Histogram occupancy_hist_;  // Ring occupancy after each push.
};

// The harness-facing wrapper: owns the ring and the consumer thread.  The
// traced machine's trace sink calls Produce; the consumer thread invokes
// `consume` once per chunk, in drain order.  Finish() closes the ring,
// joins the consumer, and rethrows anything the consumer chain threw — so
// a parser/sink failure mid-stream surfaces on the producer thread as the
// same exception the synchronous path would have thrown.
class TracePipeline {
 public:
  using ChunkFn = std::function<void(const uint32_t*, size_t)>;

  explicit TracePipeline(ChunkFn consume, size_t depth = kDefaultPipelineDepth);
  // Joins without throwing (Finish is the throwing path; the destructor
  // only cleans up after an abandoned pipeline during unwinding).
  ~TracePipeline();

  TracePipeline(const TracePipeline&) = delete;
  TracePipeline& operator=(const TracePipeline&) = delete;

  // Producer side (the trace sink).  If the consumer has already failed,
  // joins it and rethrows its error — the producer learns of a dead
  // analysis at the next drain, not at the end of the run.
  void Produce(const uint32_t* words, size_t count);
  // Closes the ring, joins the consumer, rethrows its error.  Idempotent.
  void Finish();

  const ChunkRing& ring() const { return ring_; }
  void RegisterStats(StatsRegistry& registry, const std::string& prefix = "trace.pipeline.") {
    ring_.RegisterStats(registry, prefix);
  }

 private:
  void Join();  // Close + join, no throw.

  ChunkRing ring_;
  std::thread consumer_;
  std::exception_ptr error_;  // Written by the consumer thread before exit.
  bool finished_ = false;
};

}  // namespace wrl

#endif  // WRLTRACE_TRACE_CHUNK_RING_H_
