#include "trace/parser.h"

#include "mach/address_space.h"
#include "support/error.h"
#include "support/strings.h"

namespace wrl {

void TraceInfoTable::Add(uint32_t key_addr, TraceBlockInfo info) {
  WRL_CHECK_MSG(blocks_.emplace(key_addr, std::move(info)).second,
                StrFormat("duplicate trace key 0x%08x", key_addr));
}

void TraceInfoTable::AddObject(const std::vector<BlockStatic>& blocks,
                               uint32_t instrumented_text_base, uint32_t original_text_base) {
  blocks_.reserve(blocks_.size() + blocks.size());
  for (const BlockStatic& b : blocks) {
    TraceBlockInfo info;
    info.orig_addr = original_text_base + b.orig_offset;
    info.num_insts = b.num_insts;
    info.flags = b.flags;
    info.instr_words = b.instr_words;
    info.mem_ops = b.mem_ops;
    Add(instrumented_text_base + b.key_offset, std::move(info));
  }
}

const TraceBlockInfo* TraceInfoTable::Find(uint32_t key_addr) const {
  auto it = blocks_.find(key_addr);
  return it == blocks_.end() ? nullptr : &it->second;
}

TraceParser::TraceParser(const TraceInfoTable* kernel_table) : kernel_table_(kernel_table) {}

void TraceParser::SetUserTable(uint8_t pid, const TraceInfoTable* table) {
  user_tables_[pid] = table;
}

const TraceInfoTable* TraceParser::CurrentTable() const {
  if (pid_ == kKernelPid) {
    return kernel_table_;
  }
  auto it = user_tables_.find(pid_);
  return it == user_tables_.end() ? nullptr : it->second;
}

void TraceParser::RecordError(const std::string& message) {
  ++stats_.validation_errors;
  if (errors_.size() < 64) {  // Keep the first occurrences; count the rest.
    errors_.push_back(message);
  }
}

void TraceParser::EmitRef(const TraceRef& ref) {
  ++stats_.refs;
  switch (ref.kind) {
    case TraceRef::kIfetch:
      ++stats_.ifetches;
      if (ref.kernel) {
        ++stats_.kernel_ifetches;
      } else {
        ++stats_.user_ifetches;
      }
      if (ref.idle) {
        ++stats_.idle_instructions;
      }
      break;
    case TraceRef::kLoad:
      ++stats_.loads;
      break;
    case TraceRef::kStore:
      ++stats_.stores;
      break;
  }
  if (batch_sink_ != nullptr) {
    batch_.push_back(ref);
    if (batch_.size() >= batch_capacity_) {
      FlushBatch();
    }
  }
  if (ref_sink_) {
    ref_sink_(ref);
  }
}

void TraceParser::SetBatchSink(RefBatchSink* sink, size_t batch_refs) {
  FlushBatch();
  batch_sink_ = sink;
  batch_capacity_ = batch_refs == 0 ? 1 : batch_refs;
  batch_.reserve(batch_capacity_);
}

void TraceParser::FlushBatch() {
  if (batch_sink_ == nullptr || batch_.empty()) {
    return;
  }
  batch_sink_->OnRefBatch(batch_.data(), batch_.size());
  batch_.clear();
}

void TraceParser::EmitFetches() {
  const TraceBlockInfo& info = *cursor_.info;
  bool kernel = pid_ == kKernelPid;
  while (cursor_.next_inst < info.num_insts) {
    uint32_t addr = info.orig_addr + 4 * cursor_.next_inst;
    if (kernel && addr < kKseg0) {
      RecordError(StrFormat("kernel instruction address 0x%08x outside kernel space", addr));
    }
    EmitRef({TraceRef::kIfetch, addr, 4, pid_, kernel, idle_});
    ++cursor_.next_inst;
    if (cursor_.next_mem < info.mem_ops.size() &&
        cursor_.next_inst - 1 == info.mem_ops[cursor_.next_mem].index) {
      return;  // Await this memory op's data word.
    }
  }
  // Block complete.
  if (cursor_.next_mem != info.mem_ops.size()) {
    RecordError(StrFormat("block 0x%08x completed with %zu of %zu memory ops", info.orig_addr,
                          static_cast<size_t>(cursor_.next_mem), info.mem_ops.size()));
  }
  cursor_ = BlockCursor{};
}

void TraceParser::HandleKey(uint32_t word) {
  if (cursor_.active()) {
    RecordError(StrFormat("new block key 0x%08x while block 0x%08x still expects %zu data words",
                          word, cursor_.info->orig_addr,
                          cursor_.info->mem_ops.size() - cursor_.next_mem));
    cursor_ = BlockCursor{};
  }
  const TraceInfoTable* table = CurrentTable();
  if (table == nullptr) {
    RecordError(StrFormat("trace from context %u with no lookup table", pid_));
    return;
  }
  const TraceBlockInfo* info = table->Find(word);
  if (info == nullptr) {
    RecordError(StrFormat("key 0x%08x is not a valid basic block for context %u", word, pid_));
    return;
  }
  ++stats_.blocks;
  if (info->flags & kBlockIdleStart) {
    idle_ = true;
  }
  if (info->flags & kBlockIdleStop) {
    idle_ = false;
  }
  cursor_.info = info;
  cursor_.next_inst = 0;
  cursor_.next_mem = 0;
  EmitFetches();
}

void TraceParser::HandleData(uint32_t word) {
  const TraceBlockInfo& info = *cursor_.info;
  const MemOpStatic& op = info.mem_ops[cursor_.next_mem];
  EmitRef({op.is_store ? TraceRef::kStore : TraceRef::kLoad, word, op.bytes, pid_,
           pid_ == kKernelPid, idle_});
  ++cursor_.next_mem;
  EmitFetches();
}

void TraceParser::HandleMarker(uint32_t word) {
  ++stats_.markers;
  MarkerCode code = MarkerCodeOf(word);
  if (MarkerOperands(code) > 0) {
    expecting_operand_ = true;
    pending_marker_ = code;
    return;
  }
  if (meta_sink_) {
    meta_sink_(code, 0);
  }
}

void TraceParser::HandleOperand(uint32_t word) {
  expecting_operand_ = false;
  MarkerCode code = pending_marker_;
  if (meta_sink_) {
    meta_sink_(code, word);
  }
  switch (code) {
    case kMarkKernelEnter: {
      // Suspend the current context; enter (or nest into) the kernel.
      Context ctx{pid_, cursor_, idle_};
      if (pid_ == kKernelPid) {
        kernel_stack_.push_back(ctx);
      } else {
        suspended_users_[pid_] = ctx;
        last_suspended_user_ = pid_;
      }
      pid_ = kKernelPid;
      cursor_ = BlockCursor{};
      idle_ = false;
      break;
    }
    case kMarkKernelExit: {
      uint8_t pid = static_cast<uint8_t>(word & 0xff);
      if (cursor_.active()) {
        RecordError(StrFormat("kernel exit with block 0x%08x in flight", cursor_.info->orig_addr));
        cursor_ = BlockCursor{};
      }
      if (pid == kKernelPid) {
        if (kernel_stack_.empty()) {
          // Double-TLB-miss asymmetry: the nested exception interrupted the
          // *untraced* UTLB handler, which is invisible to the trace — the
          // suspended context is really the user that missed.  Resume the
          // most recently suspended user context.
          if (last_suspended_user_ != kKernelPid &&
              suspended_users_.count(last_suspended_user_) != 0) {
            auto it = suspended_users_.find(last_suspended_user_);
            pid_ = it->second.pid;
            cursor_ = it->second.cursor;
            idle_ = it->second.idle;
            suspended_users_.erase(it);
            last_suspended_user_ = kKernelPid;
          } else {
            RecordError("kernel exit to kernel with empty nesting stack");
          }
          break;
        }
        Context ctx = kernel_stack_.back();
        kernel_stack_.pop_back();
        pid_ = ctx.pid;
        cursor_ = ctx.cursor;
        idle_ = ctx.idle;
      } else {
        auto it = suspended_users_.find(pid);
        if (it == suspended_users_.end()) {
          // First-ever entry to this process: fresh context.
          pid_ = pid;
          cursor_ = BlockCursor{};
          idle_ = false;
        } else {
          pid_ = it->second.pid;
          cursor_ = it->second.cursor;
          idle_ = it->second.idle;
          suspended_users_.erase(it);
        }
      }
      break;
    }
    case kMarkContextSwitch:
    case kMarkAnalysis:
      break;  // Informational.
    default:
      break;
  }
}

void TraceParser::Feed(const uint32_t* words, size_t count) {
  EventRecorder::Scope scope(events_, "parser.feed", "parser");
  if (events_ != nullptr) {
    events_->Instant("parser.feed_words", "parser", "words", count);
  }
  for (size_t i = 0; i < count; ++i) {
    uint32_t word = words[i];
    ++stats_.words;
    if (expecting_operand_) {
      HandleOperand(word);
    } else if (IsMarkerWord(word)) {
      HandleMarker(word);
    } else if (cursor_.active()) {
      HandleData(word);
    } else {
      HandleKey(word);
    }
  }
}

void TraceParser::Finish() {
  FlushBatch();
  if (expecting_operand_) {
    RecordError("trace ends inside a marker");
  }
  if (cursor_.active()) {
    RecordError(StrFormat("trace ends with block 0x%08x in flight", cursor_.info->orig_addr));
  }
}

void TraceParser::RegisterStats(StatsRegistry& registry, const std::string& prefix) {
  registry.AddCounter(prefix + "words", &stats_.words);
  registry.AddCounter(prefix + "blocks", &stats_.blocks);
  registry.AddCounter(prefix + "refs", &stats_.refs);
  registry.AddCounter(prefix + "ifetches", &stats_.ifetches);
  registry.AddCounter(prefix + "loads", &stats_.loads);
  registry.AddCounter(prefix + "stores", &stats_.stores);
  registry.AddCounter(prefix + "kernel_ifetches", &stats_.kernel_ifetches);
  registry.AddCounter(prefix + "user_ifetches", &stats_.user_ifetches);
  registry.AddCounter(prefix + "idle_instructions", &stats_.idle_instructions);
  registry.AddCounter(prefix + "markers", &stats_.markers);
  registry.AddCounter(prefix + "validation_errors", &stats_.validation_errors);
}

}  // namespace wrl
