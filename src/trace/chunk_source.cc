#include "trace/chunk_source.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

namespace wrl {

void TraceChunkSource::Replay(
    const std::function<void(const uint32_t*, size_t)>& sink) const {
  std::vector<uint32_t> buffer;
  const size_t n = chunk_count();
  for (size_t i = 0; i < n; ++i) {
    DecodeChunk(i, buffer);
    sink(buffer.data(), buffer.size());
  }
}

void TraceChunkSource::ReplayParallel(
    unsigned workers, const std::function<void(const uint32_t*, size_t)>& sink) const {
  const size_t n = chunk_count();
  if (workers <= 1 || n <= 1) {
    Replay(sink);
    return;
  }
  workers = static_cast<unsigned>(std::min<size_t>(workers, n));
  // In-flight bound: decoded-but-undelivered chunks never exceed the
  // window, so peak memory is O(workers × chunk), not O(capture).
  const size_t window = static_cast<size_t>(workers) * 4;

  std::mutex mutex;
  std::condition_variable chunk_ready;   // Signals the delivery loop.
  std::condition_variable window_open;   // Signals waiting decoders.
  std::vector<std::vector<uint32_t>> decoded(n);
  std::vector<uint8_t> ready(n, 0);      // Guarded by mutex.
  size_t delivered = 0;                  // Guarded by mutex.
  bool abandoned = false;                // Sink threw; decoders bail out.
  std::atomic<size_t> next{0};
  std::exception_ptr decode_error;       // First decoder failure (if any).

  auto decode_worker = [&] {
    std::vector<uint32_t> buffer;
    try {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        {
          std::unique_lock<std::mutex> lock(mutex);
          window_open.wait(lock, [&] { return i < delivered + window || abandoned; });
          if (abandoned) {
            return;
          }
        }
        DecodeChunk(i, buffer);
        {
          std::lock_guard<std::mutex> lock(mutex);
          decoded[i] = std::move(buffer);
          ready[i] = 1;
        }
        buffer = std::vector<uint32_t>();
        chunk_ready.notify_all();
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex);
      if (decode_error == nullptr) {
        decode_error = std::current_exception();
      }
      abandoned = true;
      chunk_ready.notify_all();
      window_open.notify_all();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) {
    pool.emplace_back(decode_worker);
  }

  // Strict in-order delivery on the calling thread: the sink (typically a
  // stateful parser) sees exactly the Replay() sequence.
  std::exception_ptr sink_error;
  for (size_t i = 0; i < n; ++i) {
    std::vector<uint32_t> chunk;
    {
      std::unique_lock<std::mutex> lock(mutex);
      chunk_ready.wait(lock, [&] { return ready[i] != 0 || abandoned; });
      if (abandoned && ready[i] == 0) {
        break;
      }
      chunk = std::move(decoded[i]);
      delivered = i + 1;
    }
    window_open.notify_all();
    try {
      sink(chunk.data(), chunk.size());
    } catch (...) {
      sink_error = std::current_exception();
      std::lock_guard<std::mutex> lock(mutex);
      abandoned = true;
      window_open.notify_all();
      break;
    }
  }
  for (std::thread& worker : pool) {
    worker.join();
  }
  if (sink_error != nullptr) {
    std::rethrow_exception(sink_error);
  }
  if (decode_error != nullptr) {
    std::rethrow_exception(decode_error);
  }
}

std::vector<uint32_t> TraceChunkSource::Words() const {
  std::vector<uint32_t> all;
  all.reserve(word_count());
  Replay([&all](const uint32_t* words, size_t count) {
    all.insert(all.end(), words, words + count);
  });
  return all;
}

}  // namespace wrl
