// The hand-written trace support routines the instrumented code calls.
//
// bbtrace and memtrace are the runtime half of epoxie: bbtrace records the
// basic-block key and performs the only buffer-room check (the "li zero, N"
// delay-slot no-op tells it how many words the whole block will write, so
// memtrace never needs to check); memtrace partially decodes the delay-slot
// instruction to compute and record the effective address.  Both preserve
// every program register, restore ra before returning (paper §3.2), and are
// themselves never traced (.notrace region).
//
// The same source serves user processes and the kernel: all addressing is
// relative to xreg3 (the bookkeeping base), and the buffer-full path raises
// a break exception that the kernel resolves for either mode (draining a
// per-process buffer, or switching the system to trace-analysis mode).
#ifndef WRLTRACE_TRACE_SUPPORT_ASM_H_
#define WRLTRACE_TRACE_SUPPORT_ASM_H_

#include <string>

namespace wrl {

// Returns the DS32 assembly source of bbtrace/memtrace.  Assemble and link
// it into every traced image.
std::string TraceSupportAsm();

}  // namespace wrl

#endif  // WRLTRACE_TRACE_SUPPORT_ASM_H_
