#include "trace/trace_archive.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/error.h"
#include "support/json.h"
#include "trace/chunk_codec.h"

namespace wrl {
namespace {

constexpr char kFileMagic[4] = {'w', 'r', 'l', 't'};
constexpr char kChunkMagic[4] = {'w', 'r', 'l', 'c'};
constexpr char kFooterMagic[4] = {'w', 'r', 'l', 'f'};
constexpr char kEndMagic[4] = {'w', 'r', 'l', 'e'};

constexpr size_t kHeaderBytes = 24;    // magic + version + flags + meta_bytes + 2 CRCs.
constexpr size_t kChunkHeadBytes = 20; // magic + payload_bytes + word_count + 2 CRCs.
constexpr size_t kDirEntryBytes = 20;  // offset u64 + payload_bytes + word_count + crc.
constexpr size_t kFooterFixedBytes = 16;  // magic + chunk_count + total_words.
constexpr size_t kFooterTailBytes = 12;   // footer_bytes u64 + end magic.
constexpr uint32_t kFlagPacked = 1u << 0;

void PutU32(std::vector<uint8_t>& out, uint32_t value) {
  out.push_back(static_cast<uint8_t>(value));
  out.push_back(static_cast<uint8_t>(value >> 8));
  out.push_back(static_cast<uint8_t>(value >> 16));
  out.push_back(static_cast<uint8_t>(value >> 24));
}

void PutU64(std::vector<uint8_t>& out, uint64_t value) {
  PutU32(out, static_cast<uint32_t>(value));
  PutU32(out, static_cast<uint32_t>(value >> 32));
}

uint32_t ReadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t ReadU64(const uint8_t* p) {
  return static_cast<uint64_t>(ReadU32(p)) | static_cast<uint64_t>(ReadU32(p + 4)) << 32;
}

std::string SerializeMeta(const ArchiveMeta& meta) {
  JsonWriter writer(0);
  writer.BeginObject();
  for (const auto& [key, value] : meta) {
    writer.KV(key, value);
  }
  writer.EndObject();
  return writer.TakeString();
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size, uint32_t seed) {
  // IEEE reflected polynomial, classic byte-at-a-time table.
  static const auto table = [] {
    std::vector<uint32_t> t(256);
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0xedb88320u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ data[i]) & 0xffu];
  }
  return ~crc;
}

// ---------------------------------------------------------------------------
// ArchiveWriter
// ---------------------------------------------------------------------------

ArchiveWriter::ArchiveWriter(const std::string& path, const ArchiveMeta& meta,
                             const Options& options)
    : path_(path), packed_(options.packed) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw Error("archive: cannot create '" + path + "': " + std::strerror(errno));
  }
  const std::string meta_json = SerializeMeta(meta);
  std::vector<uint8_t> header;
  header.reserve(kHeaderBytes + meta_json.size());
  header.insert(header.end(), kFileMagic, kFileMagic + 4);
  PutU32(header, kArchiveVersion);
  PutU32(header, packed_ ? kFlagPacked : 0u);
  PutU32(header, static_cast<uint32_t>(meta_json.size()));
  PutU32(header,
         Crc32(reinterpret_cast<const uint8_t*>(meta_json.data()), meta_json.size()));
  PutU32(header, Crc32(header.data(), header.size()));
  header.insert(header.end(), meta_json.begin(), meta_json.end());
  WriteBytes(header.data(), header.size());
  if (std::fflush(file_) != 0) {
    throw Error("archive: flush failed for '" + path_ + "': " + std::strerror(errno));
  }
}

ArchiveWriter::~ArchiveWriter() {
  // An unfinalized writer leaves a footerless (recoverable) archive behind —
  // exactly the torn state the reader's scan recovery is for.
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

void ArchiveWriter::WriteBytes(const void* data, size_t size) {
  if (std::fwrite(data, 1, size, file_) != size) {
    throw Error("archive: short write to '" + path_ + "': " + std::strerror(errno));
  }
  bytes_written_ += size;
}

void ArchiveWriter::Append(const uint32_t* words, size_t count) {
  WRL_CHECK_MSG(!finalized_, "ArchiveWriter::Append after Finalize");
  scratch_.clear();
  if (packed_) {
    codec::EncodeChunk(words, count, scratch_);
  } else {
    scratch_.reserve(count * 4);
    for (size_t i = 0; i < count; ++i) {
      PutU32(scratch_, words[i]);
    }
  }
  DirEntry entry;
  entry.offset = bytes_written_;
  entry.payload_bytes = static_cast<uint32_t>(scratch_.size());
  entry.word_count = static_cast<uint32_t>(count);
  entry.payload_crc = Crc32(scratch_.data(), scratch_.size());

  std::vector<uint8_t> head;
  head.reserve(kChunkHeadBytes);
  head.insert(head.end(), kChunkMagic, kChunkMagic + 4);
  PutU32(head, entry.payload_bytes);
  PutU32(head, entry.word_count);
  PutU32(head, entry.payload_crc);
  PutU32(head, Crc32(head.data(), head.size()));
  WriteBytes(head.data(), head.size());
  WriteBytes(scratch_.data(), scratch_.size());
  // Chunk-granular flush: a crash after this point keeps the chunk.
  if (std::fflush(file_) != 0) {
    throw Error("archive: flush failed for '" + path_ + "': " + std::strerror(errno));
  }
  directory_.push_back(entry);
  words_ += count;
}

void ArchiveWriter::Finalize() {
  if (finalized_) {
    return;
  }
  std::vector<uint8_t> footer;
  footer.reserve(kFooterFixedBytes + directory_.size() * kDirEntryBytes + 4 +
                 kFooterTailBytes);
  footer.insert(footer.end(), kFooterMagic, kFooterMagic + 4);
  PutU32(footer, static_cast<uint32_t>(directory_.size()));
  PutU64(footer, words_);
  for (const DirEntry& entry : directory_) {
    PutU64(footer, entry.offset);
    PutU32(footer, entry.payload_bytes);
    PutU32(footer, entry.word_count);
    PutU32(footer, entry.payload_crc);
  }
  PutU32(footer, Crc32(footer.data(), footer.size()));
  PutU64(footer, footer.size() + kFooterTailBytes);
  footer.insert(footer.end(), kEndMagic, kEndMagic + 4);
  WriteBytes(footer.data(), footer.size());
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    throw Error("archive: finalize flush failed for '" + path_ + "': " +
                std::strerror(errno));
  }
  std::fclose(file_);
  file_ = nullptr;
  finalized_ = true;
}

double ArchiveWriter::CompressionRatio() const {
  return bytes_written_ == 0
             ? 1.0
             : static_cast<double>(words_ * 4) / static_cast<double>(bytes_written_);
}

void ArchiveWriter::RegisterStats(StatsRegistry& registry, const std::string& prefix) {
  registry.AddCounter(prefix + "words", &words_);
  registry.AddCounter(prefix + "file_bytes", &bytes_written_);
  registry.AddGauge(prefix + "chunks", [this] { return static_cast<double>(chunks()); });
  registry.AddGauge(prefix + "compression_ratio", [this] { return CompressionRatio(); });
  registry.AddGauge(prefix + "finalized", [this] { return finalized_ ? 1.0 : 0.0; });
}

// ---------------------------------------------------------------------------
// ArchiveReader
// ---------------------------------------------------------------------------

ArchiveReader::ArchiveReader(const std::string& path) : path_(path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw Error("archive: cannot open '" + path + "': " + std::strerror(errno));
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    throw Error("archive: cannot stat '" + path + "': " + std::strerror(err));
  }
  file_bytes_ = static_cast<uint64_t>(st.st_size);
  if (file_bytes_ < kHeaderBytes) {
    ::close(fd);
    throw Error("archive: '" + path + "' is not a wrltrace archive (only " +
                std::to_string(file_bytes_) + " bytes)");
  }
  map_ = ::mmap(nullptr, file_bytes_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map_ == MAP_FAILED) {
    map_ = nullptr;
    throw Error("archive: mmap of '" + path + "' failed: " + std::strerror(errno));
  }

  const uint8_t* head = data();
  if (std::memcmp(head, kFileMagic, 4) != 0) {
    throw Error("archive: '" + path + "' has wrong magic (not a wrltrace archive)");
  }
  if (Crc32(head, kHeaderBytes - 4) != ReadU32(head + 20)) {
    throw Error("archive: '" + path + "' header checksum mismatch");
  }
  const uint32_t version = ReadU32(head + 4);
  if (version != kArchiveVersion) {
    throw Error("archive: '" + path + "' is wrltrace version " + std::to_string(version) +
                "; this build reads version " + std::to_string(kArchiveVersion));
  }
  packed_ = (ReadU32(head + 8) & kFlagPacked) != 0;
  const uint32_t meta_bytes = ReadU32(head + 12);
  if (kHeaderBytes + static_cast<uint64_t>(meta_bytes) > file_bytes_) {
    throw Error("archive: '" + path + "' truncated inside identity metadata");
  }
  if (Crc32(head + kHeaderBytes, meta_bytes) != ReadU32(head + 16)) {
    throw Error("archive: '" + path + "' identity metadata checksum mismatch");
  }
  const std::string meta_json(reinterpret_cast<const char*>(head + kHeaderBytes),
                              meta_bytes);
  JsonValue parsed = ParseJson(meta_json);
  if (!parsed.IsObject()) {
    throw Error("archive: '" + path + "' identity metadata is not a JSON object");
  }
  for (const auto& [key, value] : parsed.object) {
    if (!value.IsString()) {
      throw Error("archive: '" + path + "' metadata key '" + key + "' is not a string");
    }
    meta_.emplace_back(key, value.string);
  }
  data_start_ = kHeaderBytes + meta_bytes;

  if (!LoadFooter()) {
    RecoverByScan("footer missing or torn (unfinalized or truncated capture)");
  }
}

ArchiveReader::~ArchiveReader() {
  if (map_ != nullptr) {
    ::munmap(map_, file_bytes_);
  }
}

bool ArchiveReader::LoadFooter() {
  if (file_bytes_ < data_start_ + kFooterFixedBytes + 4 + kFooterTailBytes) {
    return false;
  }
  const uint8_t* tail = data() + file_bytes_ - kFooterTailBytes;
  if (std::memcmp(tail + 8, kEndMagic, 4) != 0) {
    return false;
  }
  const uint64_t footer_bytes = ReadU64(tail);
  if (footer_bytes < kFooterFixedBytes + 4 + kFooterTailBytes ||
      footer_bytes > file_bytes_ - data_start_) {
    return false;
  }
  const uint64_t fstart = file_bytes_ - footer_bytes;
  const uint8_t* footer = data() + fstart;
  if (std::memcmp(footer, kFooterMagic, 4) != 0) {
    return false;
  }
  const uint32_t chunk_count = ReadU32(footer + 4);
  const uint64_t dir_bytes = static_cast<uint64_t>(chunk_count) * kDirEntryBytes;
  if (footer_bytes != kFooterFixedBytes + dir_bytes + 4 + kFooterTailBytes) {
    return false;
  }
  if (Crc32(footer, kFooterFixedBytes + dir_bytes) !=
      ReadU32(footer + kFooterFixedBytes + dir_bytes)) {
    return false;
  }
  std::vector<DirEntry> directory;
  directory.reserve(chunk_count);
  uint64_t payload_total = 0;
  uint64_t word_total = 0;
  const uint8_t* p = footer + kFooterFixedBytes;
  for (uint32_t i = 0; i < chunk_count; ++i, p += kDirEntryBytes) {
    DirEntry entry;
    entry.offset = ReadU64(p);
    entry.payload_bytes = ReadU32(p + 8);
    entry.word_count = ReadU32(p + 12);
    entry.payload_crc = ReadU32(p + 16);
    // Every entry must frame a chunk wholly inside the data region.
    if (entry.offset < data_start_ ||
        entry.offset + kChunkHeadBytes + entry.payload_bytes > fstart) {
      return false;
    }
    payload_total += entry.payload_bytes;
    word_total += entry.word_count;
    directory.push_back(entry);
  }
  if (word_total != ReadU64(footer + 8)) {
    return false;
  }
  directory_ = std::move(directory);
  words_ = word_total;
  payload_bytes_ = payload_total;
  return true;
}

void ArchiveReader::RecoverByScan(const std::string& reason) {
  degraded_ = true;
  diagnostics_.push_back("degraded capture: " + reason + "; scanning '" + path_ +
                         "' for intact chunks");
  uint64_t offset = data_start_;
  while (true) {
    if (offset + kChunkHeadBytes > file_bytes_) {
      if (offset < file_bytes_) {
        diagnostics_.push_back("chunk " + std::to_string(directory_.size()) +
                               " at offset " + std::to_string(offset) + ": only " +
                               std::to_string(file_bytes_ - offset) +
                               " bytes remain (torn record header); stopping");
      }
      break;
    }
    const uint8_t* head = data() + offset;
    if (std::memcmp(head, kChunkMagic, 4) != 0) {
      diagnostics_.push_back("chunk " + std::to_string(directory_.size()) + " at offset " +
                             std::to_string(offset) +
                             ": bad record magic (footer debris or corruption); stopping");
      break;
    }
    if (Crc32(head, kChunkHeadBytes - 4) != ReadU32(head + 16)) {
      diagnostics_.push_back("chunk " + std::to_string(directory_.size()) + " at offset " +
                             std::to_string(offset) +
                             ": record header checksum mismatch; stopping");
      break;
    }
    DirEntry entry;
    entry.offset = offset;
    entry.payload_bytes = ReadU32(head + 4);
    entry.word_count = ReadU32(head + 8);
    entry.payload_crc = ReadU32(head + 12);
    if (offset + kChunkHeadBytes + entry.payload_bytes > file_bytes_) {
      diagnostics_.push_back(
          "chunk " + std::to_string(directory_.size()) + " at offset " +
          std::to_string(offset) + ": payload torn (" +
          std::to_string(file_bytes_ - offset - kChunkHeadBytes) + " of " +
          std::to_string(entry.payload_bytes) + " bytes present); stopping");
      break;
    }
    if (Crc32(head + kChunkHeadBytes, entry.payload_bytes) != entry.payload_crc) {
      diagnostics_.push_back("chunk " + std::to_string(directory_.size()) + " at offset " +
                             std::to_string(offset) +
                             ": payload checksum mismatch; stopping");
      break;
    }
    directory_.push_back(entry);
    words_ += entry.word_count;
    payload_bytes_ += entry.payload_bytes;
    offset += kChunkHeadBytes + entry.payload_bytes;
  }
  diagnostics_.push_back("recovered " + std::to_string(directory_.size()) + " chunk(s), " +
                         std::to_string(words_) + " word(s); " +
                         std::to_string(file_bytes_ - offset) +
                         " byte(s) of tail unusable");
}

void ArchiveReader::DecodeChunk(size_t index, std::vector<uint32_t>& out) const {
  WRL_CHECK_MSG(index < directory_.size(), "ArchiveReader chunk index out of range");
  const DirEntry& entry = directory_[index];
  const uint8_t* payload = data() + entry.offset + kChunkHeadBytes;
  if (Crc32(payload, entry.payload_bytes) != entry.payload_crc) {
    throw Error("archive: '" + path_ + "' chunk " + std::to_string(index) +
                " payload checksum mismatch (corrupt archive)");
  }
  out.clear();
  out.reserve(entry.word_count);
  if (!packed_) {
    if (entry.payload_bytes != entry.word_count * 4) {
      throw Error("archive: '" + path_ + "' chunk " + std::to_string(index) +
                  " raw payload size disagrees with its word count");
    }
    for (uint32_t i = 0; i < entry.word_count; ++i) {
      out.push_back(ReadU32(payload + static_cast<size_t>(i) * 4));
    }
    return;
  }
  if (!codec::DecodeChunkBounded(payload, entry.payload_bytes, entry.word_count, out)) {
    throw Error("archive: '" + path_ + "' chunk " + std::to_string(index) +
                " payload is malformed (does not decode to its framed word count)");
  }
}

std::string ArchiveReader::MetaValue(const std::string& key,
                                     const std::string& fallback) const {
  for (const auto& [k, v] : meta_) {
    if (k == key) {
      return v;
    }
  }
  return fallback;
}

double ArchiveReader::CompressionRatio() const {
  return payload_bytes_ == 0
             ? 1.0
             : static_cast<double>(words_ * 4) / static_cast<double>(payload_bytes_);
}

bool ArchiveReader::Verify(std::vector<std::string>* findings) const {
  std::vector<std::string> local;
  std::vector<std::string>& out = findings != nullptr ? *findings : local;
  const size_t before = out.size();
  out.insert(out.end(), diagnostics_.begin(), diagnostics_.end());
  std::vector<uint32_t> buffer;
  for (size_t i = 0; i < directory_.size(); ++i) {
    const DirEntry& entry = directory_[i];
    const uint8_t* head = data() + entry.offset;
    if (std::memcmp(head, kChunkMagic, 4) != 0 ||
        Crc32(head, kChunkHeadBytes - 4) != ReadU32(head + 16)) {
      out.push_back("chunk " + std::to_string(i) + ": record header corrupt");
      continue;
    }
    if (ReadU32(head + 4) != entry.payload_bytes || ReadU32(head + 8) != entry.word_count ||
        ReadU32(head + 12) != entry.payload_crc) {
      out.push_back("chunk " + std::to_string(i) +
                    ": record header disagrees with chunk directory");
      continue;
    }
    const uint8_t* payload = head + kChunkHeadBytes;
    if (Crc32(payload, entry.payload_bytes) != entry.payload_crc) {
      out.push_back("chunk " + std::to_string(i) + ": payload checksum mismatch");
      continue;
    }
    buffer.clear();
    buffer.reserve(entry.word_count);
    if (packed_) {
      if (!codec::DecodeChunkBounded(payload, entry.payload_bytes, entry.word_count,
                                     buffer)) {
        out.push_back("chunk " + std::to_string(i) + ": payload does not decode cleanly");
      }
    } else if (entry.payload_bytes != entry.word_count * 4) {
      out.push_back("chunk " + std::to_string(i) +
                    ": raw payload size disagrees with its word count");
    }
  }
  return out.size() == before;
}

}  // namespace wrl
