#include "trace/chunk_ring.h"

#include "support/error.h"

namespace wrl {

ChunkRing::ChunkRing(size_t capacity) : slots_(capacity == 0 ? 1 : capacity) {}

bool ChunkRing::Push(const uint32_t* words, size_t count) {
  std::unique_lock<std::mutex> lock(mutex_);
  WRL_CHECK_MSG(!closed_, "ChunkRing::Push after Close");
  if (size_ == slots_.size() && !cancelled_) {
    ++producer_stalls_;
    not_full_.wait(lock, [this] { return size_ < slots_.size() || cancelled_; });
  }
  if (cancelled_) {
    return false;
  }
  std::vector<uint32_t>& slot = slots_[(head_ + size_) % slots_.size()];
  slot.assign(words, words + count);
  ++size_;
  ++chunks_;
  words_ += count;
  if (size_ > max_occupancy_) {
    max_occupancy_ = size_;
  }
  occupancy_hist_.Record(size_);
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool ChunkRing::Pop(std::vector<uint32_t>& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (size_ == 0 && !closed_ && !cancelled_) {
    ++consumer_starves_;
    not_empty_.wait(lock, [this] { return size_ > 0 || closed_ || cancelled_; });
  }
  if (cancelled_ || size_ == 0) {
    return false;  // Cancelled, or closed and fully drained.
  }
  out.swap(slots_[head_]);
  slots_[head_].clear();  // Recycled storage; capacity kept.
  head_ = (head_ + 1) % slots_.size();
  --size_;
  lock.unlock();
  not_full_.notify_one();
  return true;
}

void ChunkRing::Close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_empty_.notify_all();
}

void ChunkRing::Cancel() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cancelled_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool ChunkRing::cancelled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cancelled_;
}

void ChunkRing::RegisterStats(StatsRegistry& registry, const std::string& prefix) {
  registry.AddCounter(prefix + "chunks", &chunks_);
  registry.AddCounter(prefix + "words", &words_);
  registry.AddCounter(prefix + "producer_stalls", &producer_stalls_);
  registry.AddCounter(prefix + "consumer_starves", &consumer_starves_);
  registry.AddCounter(prefix + "max_occupancy", &max_occupancy_);
  registry.AddGauge(prefix + "capacity", [this] { return static_cast<double>(capacity()); });
  registry.AddHistogram(prefix + "occupancy", &occupancy_hist_);
}

TracePipeline::TracePipeline(ChunkFn consume, size_t depth) : ring_(depth) {
  consumer_ = std::thread([this, consume = std::move(consume)] {
    try {
      std::vector<uint32_t> chunk;
      while (ring_.Pop(chunk)) {
        consume(chunk.data(), chunk.size());
      }
    } catch (...) {
      error_ = std::current_exception();
      ring_.Cancel();  // Unblock (and fail) the producer.
    }
  });
}

TracePipeline::~TracePipeline() { Join(); }

void TracePipeline::Join() {
  if (consumer_.joinable()) {
    ring_.Close();
    consumer_.join();
  }
}

void TracePipeline::Produce(const uint32_t* words, size_t count) {
  if (!ring_.Push(words, count)) {
    // The consumer cancelled the ring: surface its error here, exactly
    // where a synchronous sink would have thrown.
    Finish();
    throw Error("trace pipeline consumer failed without recording an error");
  }
}

void TracePipeline::Finish() {
  if (!finished_) {
    Join();
    finished_ = true;
  }
  if (error_ != nullptr) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

}  // namespace wrl
