#include "trace/support_asm.h"

#include "isa/isa.h"
#include "support/strings.h"
#include "trace/abi.h"

namespace wrl {

std::string TraceSupportAsm() {
  std::string out;
  // Register aliases, fixed by the ABI: xreg1=$t8 (ptr), xreg2=$t9
  // (scratch), xreg3=$t7 (bookkeeping base).
  out += StrFormat(R"(
# ---- trace support library (never traced) ----
        .text
        .notrace_on
        .globl bbtrace
        .globl memtrace

# bbtrace: called from the 3-word block header
#     sw ra, SAVED_RA(xreg3) ; jal bbtrace ; li zero, N
# On entry ra = block key (the address after the delay slot).  Checks that
# the whole block's N trace words fit below LIMIT; if not, raises the
# trace-flush break so the kernel can drain/switch modes; then stores the
# key and returns with ra restored to the program's value.
bbtrace:
        sw   $ra, %u($t7)          # TMP_RA = return point / key
        lw   $t9, -4($ra)          # the "li zero, N" word
        andi $t9, $t9, 0xffff      # N (trace words for this block)
        sll  $t9, $t9, 2
        addu $t9, $t8, $t9         # end = ptr + 4*N
        lw   $ra, %u($t7)          # LIMIT
        sltu $ra, $ra, $t9         # limit < end ?
        bne  $ra, $zero, bbtrace_full
        nop
bbtrace_store:
        lw   $ra, %u($t7)          # TMP_RA (the key)
        sw   $ra, 0($t8)           # one-word trace entry
        .globl bbtrace_bump
bbtrace_bump:                      # exception here = word written, pointer
        addiu $t8, $t8, 4          # not yet bumped; the kernel entry stub
        jr   $ra                   # compensates (see kernel_asm.cc)
        lw   $ra, %u($t7)          # delay: restore the program's ra
bbtrace_full:
        break %u                   # kernel drains / switches to analysis
        b    bbtrace_store         # room is guaranteed afterwards
        nop
)",
                   kBkTmpRa, kBkLimit, kBkTmpRa, kBkSavedRa, kTrapTraceFlush);

  out += StrFormat(R"(
# memtrace: called as "jal memtrace" with the memory instruction (or its
# addiu-to-$zero surrogate) in the delay slot.  Decodes base register and
# 16-bit offset from the delay-slot word, dispatches through a 32-entry
# table to fetch the base register's value, records base+offset, and
# returns with ra restored.
memtrace:
        sw   $ra, %u($t7)          # TMP_RA
        lw   $t9, -4($ra)          # the delay-slot instruction word
        sw   $t9, %u($t7)          # TMP_INSTR (offset needed later)
        srl  $t9, $t9, 18          # base register number * 8
        andi $t9, $t9, 0xf8
        la   $ra, getreg_table
        addu $t9, $ra, $t9
        jr   $t9
        nop
)",
                   kBkTmpRa, kBkTmpInstr);

  // The register dispatch table: entry i copies the program-visible value
  // of register i into $t9.  Stolen registers cannot appear as bases
  // (epoxie rewrote them), so their entries trap.  ra's program-visible
  // value lives in SAVED_RA.
  out += "getreg_table:\n";
  for (unsigned reg = 0; reg < 32; ++reg) {
    if (reg == kXreg1 || reg == kXreg2 || reg == kXreg3) {
      out += StrFormat("        break 63               # $%s is stolen; unreachable\n",
                       RegName(static_cast<uint8_t>(reg)));
      out += "        nop\n";
    } else if (reg == kRa) {
      out += "        b    mt_have\n";
      out += StrFormat("        lw   $t9, %u($t7)      # program's ra = SAVED_RA\n", kBkSavedRa);
    } else {
      out += "        b    mt_have\n";
      out += StrFormat("        move $t9, $%s\n", RegName(static_cast<uint8_t>(reg)));
    }
  }

  out += StrFormat(R"(
mt_have:
        lw   $ra, %u($t7)          # TMP_INSTR
        sll  $ra, $ra, 16
        sra  $ra, $ra, 16          # sign-extended 16-bit offset
        addu $t9, $t9, $ra         # effective address
        sw   $t9, 0($t8)           # one-word trace entry
        .globl memtrace_bump
memtrace_bump:                     # same mid-pair window as bbtrace_bump
        addiu $t8, $t8, 4
        lw   $t9, %u($t7)          # TMP_RA
        jr   $t9
        lw   $ra, %u($t7)          # delay: restore the program's ra
        .notrace_off
)",
                   kBkTmpInstr, kBkTmpRa, kBkSavedRa);
  return out;
}

}  // namespace wrl
