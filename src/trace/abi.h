// The tracing ABI: every constant shared between epoxie-generated code, the
// hand-written trace support routines (bbtrace/memtrace), the traced kernel,
// and the host-side trace-parsing library.
//
// Register convention (paper §3.2: "the tracing system requires three
// registers for its own use, referred to symbolically as xreg1, xreg2 and
// xreg3"):
//   xreg1 ($t8)  current trace-buffer pointer
//   xreg2 ($t9)  scratch for the support routines
//   xreg3 ($t7)  bookkeeping-area base address
//
// Uses of these stolen registers in original code are rewritten by epoxie to
// operate on "shadow" values in the bookkeeping area.
//
// Bookkeeping area layout (offsets off xreg3, or off $at inside epoxie's
// shadow windows):
//   +0   SAVED_RA   the program's ra, re-saved at every basic-block header
//   +4   TMP_RA     support-routine return point
//   +8   TMP_INSTR  memtrace scratch: the delay-slot instruction word
//   +12  LIMIT      trace-buffer limit (flush when a block would pass it)
//   +16  SHADOW1..3 shadow values of the three stolen registers
//   +28  SPILL1..3  tracing state spilled across a shadow window
//   +40  BUF_START  buffer reset address (used by the flush paths)
#ifndef WRLTRACE_TRACE_ABI_H_
#define WRLTRACE_TRACE_ABI_H_

#include <cstdint>

#include "isa/isa.h"
#include "mach/address_space.h"

namespace wrl {

// Stolen registers.
constexpr uint8_t kXreg1 = kT8;  // Trace pointer.
constexpr uint8_t kXreg2 = kT9;  // Scratch.
constexpr uint8_t kXreg3 = kT7;  // Bookkeeping base.

inline bool IsStolenReg(uint8_t reg) { return reg == kXreg1 || reg == kXreg2 || reg == kXreg3; }
// Index (0..2) of a stolen register, for shadow/spill slot addressing.
inline unsigned StolenIndex(uint8_t reg) { return reg == kXreg1 ? 0 : reg == kXreg2 ? 1 : 2; }

// Bookkeeping offsets.
constexpr uint32_t kBkSavedRa = 0;
constexpr uint32_t kBkTmpRa = 4;
constexpr uint32_t kBkTmpInstr = 8;
constexpr uint32_t kBkLimit = 12;
constexpr uint32_t kBkShadow0 = 16;  // +4*StolenIndex
constexpr uint32_t kBkSpill0 = 28;   // +4*StolenIndex
constexpr uint32_t kBkBufStart = 40;
constexpr uint32_t kBkInstCount = 44;  // Pixie mode's dynamic instruction counter.
constexpr uint32_t kBkBytes = 64;

// ---- Per-process user trace pages (fixed virtual addresses) ----
constexpr uint32_t kUserTraceBufBase = 0x7f000000;
constexpr uint32_t kUserTraceBufBytes = 64 * 1024;
constexpr uint32_t kUserBkBase = 0x7fff0000;  // One bookkeeping page.
// Room the flush check leaves below the true end of a buffer, so markers and
// the final block always fit.
constexpr uint32_t kTraceSlackBytes = 1024;

// break-instruction code the user-level bbtrace uses to request a flush of
// the per-process buffer into the in-kernel buffer.
constexpr uint32_t kTrapTraceFlush = 64;

// ---- Trace markers ----
// A trace entry is one machine word (paper §3.3).  Words in the top page
// (kMarkerBase..) are markers written by the (hand-instrumented) kernel
// entry/exit paths; everything else is a basic-block key or a data address.
enum MarkerCode : uint32_t {
  kMarkKernelEnter = 0,  // +1 operand: (pid << 8) | exception code
  kMarkKernelExit = 1,   // +1 operand: pid returning to (0xff = idle/none)
  kMarkContextSwitch = 2,  // +1 operand: new pid
  kMarkTraceOn = 3,
  kMarkTraceOff = 4,
  kMarkAnalysis = 5,  // +1 operand: words drained (mode-switch boundary)
};

constexpr uint32_t MakeMarker(MarkerCode code) { return kMarkerBase | static_cast<uint32_t>(code); }
inline bool IsMarkerWord(uint32_t word) { return word >= kMarkerBase; }
inline MarkerCode MarkerCodeOf(uint32_t word) {
  return static_cast<MarkerCode>(word & (kPageBytes - 1));
}
// Number of operand words following a marker.
inline unsigned MarkerOperands(MarkerCode code) {
  switch (code) {
    case kMarkKernelEnter:
    case kMarkKernelExit:
    case kMarkContextSwitch:
    case kMarkAnalysis:
      return 1;
    case kMarkTraceOn:
    case kMarkTraceOff:
      return 0;
  }
  return 0;
}

}  // namespace wrl

#endif  // WRLTRACE_TRACE_ABI_H_
