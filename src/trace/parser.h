// The trace-parsing library (paper §3.3/§3.5).
//
// Trace entries are single machine words.  A word is one of:
//   * a marker (reserved top page — see trace/abi.h), written by the
//     hand-instrumented kernel entry/exit paths;
//   * a basic-block key — the return address bbtrace recorded — which the
//     parser maps through a per-address-space lookup table to the block's
//     address in the *original, uninstrumented* binary plus its static
//     description (instruction count, positions and kinds of memory ops);
//   * a data address recorded by memtrace, attributed to the next memory
//     operation of the block in progress.
//
// The parser reconstructs the exact interleaving of instruction and data
// references and handles blocks interrupted mid-flight by exceptions: a
// KERNEL_ENTER marker suspends the current block (per-process for user
// contexts, on a stack for nested kernel exceptions — the Ultrix port's
// lesson from §3.5), and the matching KERNEL_EXIT resumes it.
//
// Defensive tracing (§4.3): the format's redundancy — known block lengths,
// known memory-op counts, address-space membership of keys — lets the
// parser detect missing or corrupt words with high probability.  Violations
// are recorded, counted, and surfaced; parsing continues where possible.
#ifndef WRLTRACE_TRACE_PARSER_H_
#define WRLTRACE_TRACE_PARSER_H_

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "epoxie/epoxie.h"
#include "stats/events.h"
#include "stats/stats.h"
#include "trace/abi.h"

namespace wrl {

// Static description of one basic block, keyed by absolute instrumented
// key address, describing the block in *original* address terms.
struct TraceBlockInfo {
  uint32_t orig_addr = 0;
  uint32_t num_insts = 0;
  uint32_t flags = 0;
  std::vector<MemOpStatic> mem_ops;
  // Instrumented words the block occupies (0 when the producer does not
  // know); lets consumers charge epoxie's inserted instructions back to
  // the block exactly.
  uint32_t instr_words = 0;
};

// The per-address-space lookup table ("static information about the binary
// image", §3.2).
class TraceInfoTable {
 public:
  void Add(uint32_t key_addr, TraceBlockInfo info);
  // Registers every block of an instrumented object, given where that
  // object's text landed in the instrumented and original links.
  void AddObject(const std::vector<BlockStatic>& blocks, uint32_t instrumented_text_base,
                 uint32_t original_text_base);
  const TraceBlockInfo* Find(uint32_t key_addr) const;
  size_t size() const { return blocks_.size(); }
  // Full table, for consumers (e.g. the profiler) that index blocks by
  // original leader address rather than by key.
  const std::unordered_map<uint32_t, TraceBlockInfo>& blocks() const { return blocks_; }

 private:
  std::unordered_map<uint32_t, TraceBlockInfo> blocks_;
};

// One reconstructed reference.
struct TraceRef {
  enum Kind : uint8_t { kIfetch, kLoad, kStore };
  Kind kind;
  uint32_t addr;   // Original-binary virtual address.
  uint8_t bytes;
  uint8_t pid;     // 0xff for kernel.
  bool kernel;
  bool idle;       // Inside the kernel idle loop (per block flags).
};

constexpr uint8_t kKernelPid = 0xff;

// ---- Batched reference delivery ----
//
// The parser reconstructs tens of references per trace word; delivering
// each one through a std::function costs an indirect call per reference.
// Batch delivery amortizes that: references accumulate in a dense buffer
// and consumers receive ~4K at a time through this typed interface, paying
// one virtual call per batch and iterating a contiguous array in their own
// tight loop.  The per-ref std::function sink remains as a compatibility
// shim (and as the WRL_BATCH=0 A/B reference path); both deliver the
// identical reference sequence.
constexpr size_t kRefBatchCapacity = 4096;

class RefBatchSink {
 public:
  virtual ~RefBatchSink() = default;
  virtual void OnRefBatch(const TraceRef* refs, size_t count) = 0;
};

// Adapts a per-ref functor to the batch interface, for consumers not worth
// converting.
class RefFnSink : public RefBatchSink {
 public:
  explicit RefFnSink(std::function<void(const TraceRef&)> fn) : fn_(std::move(fn)) {}
  void OnRefBatch(const TraceRef* refs, size_t count) override {
    for (size_t i = 0; i < count; ++i) {
      fn_(refs[i]);
    }
  }

 private:
  std::function<void(const TraceRef&)> fn_;
};

// Fans one batch stream out to several consumers (e.g. a cache simulator
// plus a profiler on the same live run).  Delivery order is the sink order
// given at construction; each sink sees the identical batches.
class TeeBatchSink : public RefBatchSink {
 public:
  explicit TeeBatchSink(std::vector<RefBatchSink*> sinks) : sinks_(std::move(sinks)) {}
  void OnRefBatch(const TraceRef* refs, size_t count) override {
    for (RefBatchSink* sink : sinks_) {
      sink->OnRefBatch(refs, count);
    }
  }

 private:
  std::vector<RefBatchSink*> sinks_;
};

// Batched delivery is the default; WRL_BATCH=0 forces every harness onto
// the per-ref slow path so the bit-identity invariant stays A/B-testable.
inline bool BatchRefsEnabled() {
  const char* env = std::getenv("WRL_BATCH");
  return env == nullptr || std::strcmp(env, "0") != 0;
}

struct TraceParserStats {
  uint64_t words = 0;
  uint64_t blocks = 0;
  uint64_t refs = 0;
  uint64_t ifetches = 0;
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t kernel_ifetches = 0;
  uint64_t user_ifetches = 0;
  uint64_t idle_instructions = 0;
  uint64_t markers = 0;
  uint64_t validation_errors = 0;
};

class TraceParser {
 public:
  // `kernel_table` may be null for user-only traces.
  explicit TraceParser(const TraceInfoTable* kernel_table);

  void SetUserTable(uint8_t pid, const TraceInfoTable* table);
  void SetRefSink(std::function<void(const TraceRef&)> sink) { ref_sink_ = std::move(sink); }
  // Batched delivery: references accumulate into fixed-size batches handed
  // to `sink` (the same sequence SetRefSink would see, in the same order).
  // Batches flush when full and at Finish(); call FlushBatch() to force an
  // earlier flush.  Both sinks may be set at once (each gets every ref).
  void SetBatchSink(RefBatchSink* sink, size_t batch_refs = kRefBatchCapacity);
  // Delivers any buffered references to the batch sink now.
  void FlushBatch();
  void SetMetaSink(std::function<void(MarkerCode, uint32_t)> sink) {
    meta_sink_ = std::move(sink);
  }
  // The parser starts in user context for `pid` (kKernelPid for kernel).
  void SetInitialContext(uint8_t pid) { pid_ = pid; }

  void Feed(const uint32_t* words, size_t count);
  void Feed(const std::vector<uint32_t>& words) { Feed(words.data(), words.size()); }
  // Declares end-of-trace: an in-flight block becomes a validation error.
  void Finish();

  const TraceParserStats& stats() const { return stats_; }
  const std::vector<std::string>& errors() const { return errors_; }

  // Binds every field of `stats()` into `registry`; the parser must outlive
  // snapshots of the registry.
  void RegisterStats(StatsRegistry& registry, const std::string& prefix = "parser.");
  // Optional timeline: each Feed() batch becomes a scoped phase.
  void SetEventRecorder(EventRecorder* events) { events_ = events; }

 private:
  struct BlockCursor {
    const TraceBlockInfo* info = nullptr;
    uint32_t next_inst = 0;  // Next original instruction index to fetch.
    uint32_t next_mem = 0;   // Next entry of info->mem_ops awaiting data.
    bool active() const { return info != nullptr; }
  };

  struct Context {
    uint8_t pid = kKernelPid;
    BlockCursor cursor;
    bool idle = false;
  };

  void HandleMarker(uint32_t word);
  void HandleOperand(uint32_t word);
  void HandleKey(uint32_t word);
  void HandleData(uint32_t word);
  void EmitFetches();  // Advances the cursor to the next data dependency.
  void EmitRef(const TraceRef& ref);
  void RecordError(const std::string& message);
  const TraceInfoTable* CurrentTable() const;

  const TraceInfoTable* kernel_table_;
  std::unordered_map<uint8_t, const TraceInfoTable*> user_tables_;

  // Current context.
  uint8_t pid_ = kKernelPid;
  BlockCursor cursor_;
  bool idle_ = false;

  // Suspended user contexts (by pid) and nested kernel contexts (stack).
  std::unordered_map<uint8_t, Context> suspended_users_;
  std::vector<Context> kernel_stack_;
  uint8_t last_suspended_user_ = kKernelPid;

  // Marker operand in flight.
  bool expecting_operand_ = false;
  MarkerCode pending_marker_ = kMarkTraceOn;

  std::function<void(const TraceRef&)> ref_sink_;
  RefBatchSink* batch_sink_ = nullptr;
  size_t batch_capacity_ = kRefBatchCapacity;
  std::vector<TraceRef> batch_;
  std::function<void(MarkerCode, uint32_t)> meta_sink_;
  EventRecorder* events_ = nullptr;
  TraceParserStats stats_;
  std::vector<std::string> errors_;
};

}  // namespace wrl

#endif  // WRLTRACE_TRACE_PARSER_H_
