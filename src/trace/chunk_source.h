// The replayable-capture abstraction: any store of independently decodable
// trace chunks — the in-memory TraceLog or an on-disk wrltrace/1 archive
// (trace_archive.h) — presents the same surface to the analysis side, so
// ReplayEngine, sweeps, and tools never care where a capture lives.
//
// The contract every source honors:
//   * chunks preserve the capture's drain boundaries, so a replayed parser
//     sees the same Feed() granularity the live path saw;
//   * DecodeChunk(i) depends only on chunk i (independent coding), which is
//     what makes windowed chunk-parallel decode and O(1) seek possible;
//   * Replay() and ReplayParallel() deliver the identical word sequence in
//     the identical chunking — the bit-identity invariant every analysis
//     mode is tested against.
#ifndef WRLTRACE_TRACE_CHUNK_SOURCE_H_
#define WRLTRACE_TRACE_CHUNK_SOURCE_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace wrl {

class TraceChunkSource {
 public:
  virtual ~TraceChunkSource() = default;

  // Chunks in capture order.
  virtual size_t chunk_count() const = 0;
  // Total trace words across every chunk.
  virtual uint64_t word_count() const = 0;
  // Decodes one chunk (0-based capture order) into `out` (cleared first).
  virtual void DecodeChunk(size_t index, std::vector<uint32_t>& out) const = 0;

  // Decodes the capture, invoking `sink` once per chunk in capture order.
  // The default decodes through DecodeChunk; sources with a cheaper path
  // (e.g. an unpacked TraceLog handing out its own storage) override it.
  virtual void Replay(const std::function<void(const uint32_t*, size_t)>& sink) const;

  // Chunk-parallel decode: up to `workers` threads decode chunks
  // concurrently while the calling thread invokes `sink` once per chunk in
  // strict capture order — the identical delivery Replay() makes.
  // In-flight decoded chunks are bounded, so memory stays O(workers), not
  // O(capture).  workers <= 1 or a single-chunk source degrade to Replay().
  virtual void ReplayParallel(unsigned workers,
                              const std::function<void(const uint32_t*, size_t)>& sink) const;

  // The whole capture as one flat word vector.
  std::vector<uint32_t> Words() const;
};

}  // namespace wrl

#endif  // WRLTRACE_TRACE_CHUNK_SOURCE_H_
