#include "trace/trace_log.h"

#include "support/error.h"
#include "trace/chunk_codec.h"

namespace wrl {

void TraceLog::Append(const uint32_t* words, size_t count) {
  chunk_words_.push_back(count);
  chunk_starts_.push_back(packed_ ? bytes_.size() : raw_.size());
  words_ += count;
  if (!packed_) {
    raw_.insert(raw_.end(), words, words + count);
    return;
  }
  // Fresh predictors per chunk (the codec's contract), so chunks decode
  // independently — the chunk-parallel replay relies on this.
  codec::EncodeChunk(words, count, bytes_);
}

void TraceLog::DecodeChunk(size_t index, std::vector<uint32_t>& out) const {
  WRL_CHECK_MSG(index < chunk_words_.size(), "TraceLog chunk index out of range");
  uint64_t count = chunk_words_[index];
  out.clear();
  out.reserve(count);
  if (!packed_) {
    const uint32_t* begin = raw_.data() + chunk_starts_[index];
    out.insert(out.end(), begin, begin + count);
    return;
  }
  codec::DecodeChunk(bytes_.data(), chunk_starts_[index], count, out);
}

void TraceLog::Replay(const std::function<void(const uint32_t*, size_t)>& sink) const {
  if (!packed_) {
    size_t offset = 0;
    for (uint64_t chunk : chunk_words_) {
      sink(raw_.data() + offset, chunk);
      offset += chunk;
    }
    return;
  }
  TraceChunkSource::Replay(sink);
}

void TraceLog::ReplayParallel(
    unsigned workers, const std::function<void(const uint32_t*, size_t)>& sink) const {
  if (!packed_) {
    Replay(sink);
    return;
  }
  TraceChunkSource::ReplayParallel(workers, sink);
}

void TraceLog::Clear() {
  bytes_.clear();
  raw_.clear();
  chunk_words_.clear();
  chunk_starts_.clear();
  words_ = 0;
}

uint64_t TraceLog::stored_bytes() const {
  return packed_ ? bytes_.size() : raw_.size() * 4;
}

double TraceLog::CompressionRatio() const {
  uint64_t stored = stored_bytes();
  return stored == 0 ? 1.0 : static_cast<double>(raw_bytes()) / static_cast<double>(stored);
}

void TraceLog::RegisterStats(StatsRegistry& registry, const std::string& prefix) {
  registry.AddCounter(prefix + "words", &words_);
  registry.AddGauge(prefix + "chunks", [this] { return static_cast<double>(chunks()); });
  registry.AddGauge(prefix + "raw_bytes", [this] { return static_cast<double>(raw_bytes()); });
  registry.AddGauge(prefix + "stored_bytes",
                    [this] { return static_cast<double>(stored_bytes()); });
  registry.AddGauge(prefix + "compression_ratio", [this] { return CompressionRatio(); });
}

}  // namespace wrl
