#include "trace/trace_log.h"

namespace wrl {

namespace {

// Zigzag keeps small negative deltas small: 0,-1,1,-2,2 -> 0,1,2,3,4.
inline uint32_t ZigZag(int32_t value) {
  return (static_cast<uint32_t>(value) << 1) ^ static_cast<uint32_t>(value >> 31);
}
inline int32_t UnZigZag(uint32_t value) {
  return static_cast<int32_t>((value >> 1) ^ (~(value & 1) + 1));
}

inline void PutVarint(std::vector<uint8_t>& out, uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

inline uint64_t GetVarint(const uint8_t* data, size_t& pos) {
  uint64_t value = 0;
  unsigned shift = 0;
  while (true) {
    uint8_t byte = data[pos++];
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return value;
    }
    shift += 7;
  }
}

}  // namespace

void TraceLog::Append(const uint32_t* words, size_t count) {
  chunk_words_.push_back(count);
  words_ += count;
  if (!packed_) {
    raw_.insert(raw_.end(), words, words + count);
    return;
  }
  for (size_t i = 0; i < count; ++i) {
    uint32_t word = words[i];
    unsigned bucket = Bucket(word);
    // Modular subtraction keeps the delta within int32 regardless of wrap.
    int32_t delta = static_cast<int32_t>(word - prev_[bucket]);
    prev_[bucket] = word;
    PutVarint(bytes_, (static_cast<uint64_t>(ZigZag(delta)) << 4) | bucket);
  }
}

void TraceLog::Replay(const std::function<void(const uint32_t*, size_t)>& sink) const {
  if (!packed_) {
    size_t offset = 0;
    for (uint64_t chunk : chunk_words_) {
      sink(raw_.data() + offset, chunk);
      offset += chunk;
    }
    return;
  }
  uint32_t prev[16] = {};
  size_t pos = 0;
  std::vector<uint32_t> buffer;
  for (uint64_t chunk : chunk_words_) {
    buffer.clear();
    buffer.reserve(chunk);
    for (uint64_t i = 0; i < chunk; ++i) {
      uint64_t coded = GetVarint(bytes_.data(), pos);
      unsigned bucket = coded & 0xf;
      uint32_t word = prev[bucket] + static_cast<uint32_t>(UnZigZag(
                                         static_cast<uint32_t>(coded >> 4)));
      prev[bucket] = word;
      buffer.push_back(word);
    }
    sink(buffer.data(), buffer.size());
  }
}

std::vector<uint32_t> TraceLog::Words() const {
  std::vector<uint32_t> all;
  all.reserve(words_);
  Replay([&all](const uint32_t* words, size_t count) {
    all.insert(all.end(), words, words + count);
  });
  return all;
}

void TraceLog::Clear() {
  bytes_.clear();
  raw_.clear();
  chunk_words_.clear();
  words_ = 0;
  for (uint32_t& p : prev_) {
    p = 0;
  }
}

uint64_t TraceLog::stored_bytes() const {
  return packed_ ? bytes_.size() : raw_.size() * 4;
}

double TraceLog::CompressionRatio() const {
  uint64_t stored = stored_bytes();
  return stored == 0 ? 1.0 : static_cast<double>(raw_bytes()) / static_cast<double>(stored);
}

void TraceLog::RegisterStats(StatsRegistry& registry, const std::string& prefix) {
  registry.AddCounter(prefix + "words", &words_);
  registry.AddGauge(prefix + "chunks", [this] { return static_cast<double>(chunks()); });
  registry.AddGauge(prefix + "raw_bytes", [this] { return static_cast<double>(raw_bytes()); });
  registry.AddGauge(prefix + "stored_bytes",
                    [this] { return static_cast<double>(stored_bytes()); });
  registry.AddGauge(prefix + "compression_ratio", [this] { return CompressionRatio(); });
}

}  // namespace wrl
