#include "trace/trace_log.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "support/error.h"

namespace wrl {

namespace {

// Zigzag keeps small negative deltas small: 0,-1,1,-2,2 -> 0,1,2,3,4.
inline uint32_t ZigZag(int32_t value) {
  return (static_cast<uint32_t>(value) << 1) ^ static_cast<uint32_t>(value >> 31);
}
inline int32_t UnZigZag(uint32_t value) {
  return static_cast<int32_t>((value >> 1) ^ (~(value & 1) + 1));
}

inline void PutVarint(std::vector<uint8_t>& out, uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

inline uint64_t GetVarint(const uint8_t* data, size_t& pos) {
  uint64_t value = 0;
  unsigned shift = 0;
  while (true) {
    uint8_t byte = data[pos++];
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return value;
    }
    shift += 7;
  }
}

}  // namespace

void TraceLog::Append(const uint32_t* words, size_t count) {
  chunk_words_.push_back(count);
  chunk_starts_.push_back(packed_ ? bytes_.size() : raw_.size());
  words_ += count;
  if (!packed_) {
    raw_.insert(raw_.end(), words, words + count);
    return;
  }
  // Fresh predictors per chunk, so chunks decode independently (the
  // chunk-parallel replay relies on this).
  uint32_t prev[16] = {};
  for (size_t i = 0; i < count; ++i) {
    uint32_t word = words[i];
    unsigned bucket = Bucket(word);
    // Modular subtraction keeps the delta within int32 regardless of wrap.
    int32_t delta = static_cast<int32_t>(word - prev[bucket]);
    prev[bucket] = word;
    PutVarint(bytes_, (static_cast<uint64_t>(ZigZag(delta)) << 4) | bucket);
  }
}

void TraceLog::DecodeChunk(size_t index, std::vector<uint32_t>& out) const {
  WRL_CHECK_MSG(index < chunk_words_.size(), "TraceLog chunk index out of range");
  uint64_t count = chunk_words_[index];
  out.clear();
  out.reserve(count);
  if (!packed_) {
    const uint32_t* begin = raw_.data() + chunk_starts_[index];
    out.insert(out.end(), begin, begin + count);
    return;
  }
  uint32_t prev[16] = {};
  size_t pos = chunk_starts_[index];
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t coded = GetVarint(bytes_.data(), pos);
    unsigned bucket = coded & 0xf;
    uint32_t word =
        prev[bucket] + static_cast<uint32_t>(UnZigZag(static_cast<uint32_t>(coded >> 4)));
    prev[bucket] = word;
    out.push_back(word);
  }
}

void TraceLog::Replay(const std::function<void(const uint32_t*, size_t)>& sink) const {
  if (!packed_) {
    size_t offset = 0;
    for (uint64_t chunk : chunk_words_) {
      sink(raw_.data() + offset, chunk);
      offset += chunk;
    }
    return;
  }
  std::vector<uint32_t> buffer;
  for (size_t i = 0; i < chunk_words_.size(); ++i) {
    DecodeChunk(i, buffer);
    sink(buffer.data(), buffer.size());
  }
}

void TraceLog::ReplayParallel(
    unsigned workers, const std::function<void(const uint32_t*, size_t)>& sink) const {
  const size_t n = chunk_words_.size();
  if (!packed_ || workers <= 1 || n <= 1) {
    Replay(sink);
    return;
  }
  workers = static_cast<unsigned>(std::min<size_t>(workers, n));
  // In-flight bound: decoded-but-undelivered chunks never exceed the
  // window, so peak memory is O(workers × chunk), not O(log).
  const size_t window = static_cast<size_t>(workers) * 4;

  std::mutex mutex;
  std::condition_variable chunk_ready;   // Signals the delivery loop.
  std::condition_variable window_open;   // Signals waiting decoders.
  std::vector<std::vector<uint32_t>> decoded(n);
  std::vector<uint8_t> ready(n, 0);      // Guarded by mutex.
  size_t delivered = 0;                  // Guarded by mutex.
  bool abandoned = false;                // Sink threw; decoders bail out.
  std::atomic<size_t> next{0};
  std::exception_ptr decode_error;       // First decoder failure (if any).

  auto decode_worker = [&] {
    std::vector<uint32_t> buffer;
    try {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        {
          std::unique_lock<std::mutex> lock(mutex);
          window_open.wait(lock, [&] { return i < delivered + window || abandoned; });
          if (abandoned) {
            return;
          }
        }
        DecodeChunk(i, buffer);
        {
          std::lock_guard<std::mutex> lock(mutex);
          decoded[i] = std::move(buffer);
          ready[i] = 1;
        }
        buffer = std::vector<uint32_t>();
        chunk_ready.notify_all();
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex);
      if (decode_error == nullptr) {
        decode_error = std::current_exception();
      }
      abandoned = true;
      chunk_ready.notify_all();
      window_open.notify_all();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) {
    pool.emplace_back(decode_worker);
  }

  // Strict in-order delivery on the calling thread: the sink (typically a
  // stateful parser) sees exactly the Replay() sequence.
  std::exception_ptr sink_error;
  for (size_t i = 0; i < n; ++i) {
    std::vector<uint32_t> chunk;
    {
      std::unique_lock<std::mutex> lock(mutex);
      chunk_ready.wait(lock, [&] { return ready[i] != 0 || abandoned; });
      if (abandoned && ready[i] == 0) {
        break;
      }
      chunk = std::move(decoded[i]);
      delivered = i + 1;
    }
    window_open.notify_all();
    try {
      sink(chunk.data(), chunk.size());
    } catch (...) {
      sink_error = std::current_exception();
      std::lock_guard<std::mutex> lock(mutex);
      abandoned = true;
      window_open.notify_all();
      break;
    }
  }
  for (std::thread& worker : pool) {
    worker.join();
  }
  if (sink_error != nullptr) {
    std::rethrow_exception(sink_error);
  }
  if (decode_error != nullptr) {
    std::rethrow_exception(decode_error);
  }
}

std::vector<uint32_t> TraceLog::Words() const {
  std::vector<uint32_t> all;
  all.reserve(words_);
  Replay([&all](const uint32_t* words, size_t count) {
    all.insert(all.end(), words, words + count);
  });
  return all;
}

void TraceLog::Clear() {
  bytes_.clear();
  raw_.clear();
  chunk_words_.clear();
  chunk_starts_.clear();
  words_ = 0;
}

uint64_t TraceLog::stored_bytes() const {
  return packed_ ? bytes_.size() : raw_.size() * 4;
}

double TraceLog::CompressionRatio() const {
  uint64_t stored = stored_bytes();
  return stored == 0 ? 1.0 : static_cast<double>(raw_bytes()) / static_cast<double>(stored);
}

void TraceLog::RegisterStats(StatsRegistry& registry, const std::string& prefix) {
  registry.AddCounter(prefix + "words", &words_);
  registry.AddGauge(prefix + "chunks", [this] { return static_cast<double>(chunks()); });
  registry.AddGauge(prefix + "raw_bytes", [this] { return static_cast<double>(raw_bytes()); });
  registry.AddGauge(prefix + "stored_bytes",
                    [this] { return static_cast<double>(stored_bytes()); });
  registry.AddGauge(prefix + "compression_ratio", [this] { return CompressionRatio(); });
}

}  // namespace wrl
