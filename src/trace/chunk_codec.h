// The per-chunk trace-word coding shared by the in-memory TraceLog and the
// on-disk wrltrace/1 archive (trace_archive.h): bucketed delta prediction +
// zigzag + LEB128 varints.
//
// Trace words are strongly clustered (block keys walk text pages, data
// addresses walk the data segment, markers live in one reserved page), so
// each word is delta-encoded against the last word seen in its 16-way
// bucket — a fold of the word's upper address nibbles — and the zigzagged
// delta is varint coded with the bucket id in the low four bits.  The
// predictors reset at every chunk boundary, so every chunk decodes
// independently (the foundation of both chunk-parallel decode and the
// archive's O(1) seek).
//
// Keeping the coder in one header guarantees a TraceLog capture and an
// archive of the same words are byte-identical payloads: the archive's CRCs
// protect exactly the bytes the in-memory path would have produced.
#ifndef WRLTRACE_TRACE_CHUNK_CODEC_H_
#define WRLTRACE_TRACE_CHUNK_CODEC_H_

#include <cstdint>
#include <vector>

namespace wrl {
namespace codec {

// Zigzag keeps small negative deltas small: 0,-1,1,-2,2 -> 0,1,2,3,4.
inline uint32_t ZigZag(int32_t value) {
  return (static_cast<uint32_t>(value) << 1) ^ static_cast<uint32_t>(value >> 31);
}
inline int32_t UnZigZag(uint32_t value) {
  return static_cast<int32_t>((value >> 1) ^ (~(value & 1) + 1));
}

inline void PutVarint(std::vector<uint8_t>& out, uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

// Trusted decode (in-memory streams we encoded ourselves).
inline uint64_t GetVarint(const uint8_t* data, size_t& pos) {
  uint64_t value = 0;
  unsigned shift = 0;
  while (true) {
    uint8_t byte = data[pos++];
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return value;
    }
    shift += 7;
  }
}

// Bounds-checked decode for payloads read back from disk: returns false on
// buffer overrun or a varint wider than 64 bits (corrupt data must never
// walk past the mapped payload).
inline bool GetVarintBounded(const uint8_t* data, size_t size, size_t& pos, uint64_t& out) {
  uint64_t value = 0;
  unsigned shift = 0;
  while (pos < size && shift < 64) {
    uint8_t byte = data[pos++];
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      out = value;
      return true;
    }
    shift += 7;
  }
  return false;
}

// Predictor selection: fold every upper-address nibble (page-offset bits
// excluded) so interleaved streams that differ in *any* bit above the page
// offset — block keys vs data addresses, text vs stack — get separate delta
// predictors.  The bucket id travels in the coded stream, so this choice
// only affects the achieved ratio, never decodability.
inline unsigned Bucket(uint32_t word) {
  return ((word >> 12) ^ (word >> 16) ^ (word >> 20) ^ (word >> 24) ^ (word >> 28)) & 0xfu;
}

// Appends the packed coding of one chunk to `out`.
inline void EncodeChunk(const uint32_t* words, size_t count, std::vector<uint8_t>& out) {
  uint32_t prev[16] = {};
  for (size_t i = 0; i < count; ++i) {
    uint32_t word = words[i];
    unsigned bucket = Bucket(word);
    // Modular subtraction keeps the delta within int32 regardless of wrap.
    int32_t delta = static_cast<int32_t>(word - prev[bucket]);
    prev[bucket] = word;
    PutVarint(out, (static_cast<uint64_t>(ZigZag(delta)) << 4) | bucket);
  }
}

// Trusted decode of `count` words starting at `pos`; returns the position
// one past the chunk's last coded byte.
inline size_t DecodeChunk(const uint8_t* data, size_t pos, uint64_t count,
                          std::vector<uint32_t>& out) {
  uint32_t prev[16] = {};
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t coded = GetVarint(data, pos);
    unsigned bucket = coded & 0xf;
    uint32_t word =
        prev[bucket] + static_cast<uint32_t>(UnZigZag(static_cast<uint32_t>(coded >> 4)));
    prev[bucket] = word;
    out.push_back(word);
  }
  return pos;
}

// Bounds-checked decode of a whole payload read back from disk: exactly
// `count` words must consume exactly `size` bytes.  Returns false on
// overrun, short payload, or trailing bytes — any of which means the
// payload does not carry the words its framing claims.
inline bool DecodeChunkBounded(const uint8_t* data, size_t size, uint64_t count,
                               std::vector<uint32_t>& out) {
  uint32_t prev[16] = {};
  size_t pos = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t coded = 0;
    if (!GetVarintBounded(data, size, pos, coded)) {
      return false;
    }
    unsigned bucket = coded & 0xf;
    uint32_t word =
        prev[bucket] + static_cast<uint32_t>(UnZigZag(static_cast<uint32_t>(coded >> 4)));
    prev[bucket] = word;
    out.push_back(word);
  }
  return pos == size;
}

}  // namespace codec
}  // namespace wrl

#endif  // WRLTRACE_TRACE_CHUNK_CODEC_H_
