#include "sim/tlb_sim.h"

#include "mach/address_space.h"

namespace wrl {

bool TlbSimulator::OnRef(const TraceRef& ref) {
  if (ref.kind == TraceRef::kIfetch) {
    ++instruction_counter_;
  }
  uint32_t vaddr = ref.addr;
  if (InKseg0(vaddr) || InKseg1(vaddr)) {
    return false;  // Unmapped segments never touch the TLB.
  }
  uint8_t asid = (ref.pid == kKernelPid) ? 0 : ref.pid;
  if (InKseg2(vaddr)) {
    // Mapped kernel segment: global entries.
    auto index = tlb_.Lookup(vaddr, asid);
    if (!index) {
      ++stats_.ktlb_misses;
      unsigned slot = tlb_.Random(instruction_counter_);
      tlb_.entry(slot) = {MakeEntryHi(vaddr, asid),
                          MakeEntryLo(vaddr & 0x0ffff000u, true, true, true)};
    }
    return false;
  }
  // kuseg: the user segment (the kernel also reaches user buffers here).
  // The ASID must be the *owning* process's — for kernel references we use
  // the current process context recorded in the trace; kernel refs carry
  // pid of the interrupted user where known.  Our parser tags kernel refs
  // with kKernelPid, so attribute them to ASID of the last user context via
  // the pid embedded in the reference when not kernel.
  ++stats_.user_refs;
  if (ref.pid != kKernelPid) {
    asid = ref.pid;
  } else {
    asid = last_user_asid_ == 0 ? 1 : last_user_asid_;
  }
  if (ref.pid != kKernelPid) {
    last_user_asid_ = ref.pid;
  }
  auto index = tlb_.Lookup(vaddr, asid);
  if (index && tlb_.entry(*index).valid()) {
    return false;
  }
  ++stats_.utlb_misses;
  unsigned slot = tlb_.Random(instruction_counter_);
  tlb_.entry(slot) = {MakeEntryHi(vaddr, asid), MakeEntryLo(0, true, true, false)};
  SynthesizeHandler({ref.kind, vaddr, 4, asid, false, false});
  return true;
}

void TlbSimulator::SynthesizeHandler(const TraceRef& ref) {
  if (synth_sink_ == nullptr) {
    return;
  }
  // One batch per miss: thirteen fetches at the dedicated refill vector,
  // then the linear page-table load in kseg2 (PTEBase + vpn*4).
  TraceRef handler[kHandlerInstructions + 1];
  for (unsigned i = 0; i < kHandlerInstructions; ++i) {
    handler[i] = {TraceRef::kIfetch, kVecUtlbMiss + 4 * i, 4, kKernelPid, true, false};
  }
  uint32_t pte_addr = kKseg2 + (static_cast<uint32_t>(ref.pid) << 21) + ((ref.addr >> 12) << 2);
  handler[kHandlerInstructions] = {TraceRef::kLoad, pte_addr, 4, kKernelPid, true, false};
  synth_sink_->OnRefBatch(handler, kHandlerInstructions + 1);
}

}  // namespace wrl
