#include "sim/predictor.h"

#include <cstring>

#include "isa/isa.h"
#include "mach/address_space.h"

namespace wrl {

TraceDrivenSimulator::TraceDrivenSimulator(const PredictorConfig& config)
    : config_(config), memsys_(config.memsys), tlb_(config.tlb_wired) {
  tlb_.SetSynthesizedSink(&synth_sink_);
}

void TraceDrivenSimulator::SynthSink::OnRefBatch(const TraceRef* refs, size_t count) {
  owner_->result_.synthesized_refs += count;
  for (size_t i = 0; i < count; ++i) {
    owner_->Access(refs[i]);
  }
}

void TraceDrivenSimulator::AddTextImage(const Executable& exe) {
  images_.push_back({exe.text_base, exe.text});
}

uint32_t TraceDrivenSimulator::TextWordAt(uint32_t addr) const {
  for (const Image& image : images_) {
    if (addr >= image.base && addr + 4 <= image.base + image.text.size()) {
      uint32_t w;
      std::memcpy(&w, image.text.data() + (addr - image.base), 4);
      return w;
    }
  }
  return 0;
}

uint32_t TraceDrivenSimulator::Translate(const TraceRef& ref) const {
  return TranslateRef(ref, config_.page_map);
}

void TraceDrivenSimulator::Access(const TraceRef& ref) {
  uint32_t paddr = Translate(ref);
  bool uncached = InKseg1(ref.addr);
  uint64_t stall = 0;
  switch (ref.kind) {
    case TraceRef::kIfetch:
      stall = uncached ? memsys_.UncachedLoad(paddr, now_) : memsys_.Fetch(paddr, now_);
      break;
    case TraceRef::kLoad:
      stall = uncached ? memsys_.UncachedLoad(paddr, now_) : memsys_.Load(paddr, now_);
      break;
    case TraceRef::kStore:
      stall = uncached ? memsys_.UncachedStore(paddr, now_) : memsys_.Store(paddr, now_);
      break;
  }
  result_.mem_stall_cycles += stall;
  if (current_is_kernel_) {
    result_.kernel_stall_cycles += stall;
  } else {
    result_.user_stall_cycles += stall;
  }
  now_ += stall;
  if (ref.kind == TraceRef::kIfetch) {
    ++now_;  // One CPU cycle per instruction drives write-buffer drain.
  }
}

void TraceDrivenSimulator::OnRef(const TraceRef& ref) {
  current_is_kernel_ = ref.kernel;
  if (ref.kind == TraceRef::kIfetch) {
    ++result_.instructions;
    if (ref.idle) {
      ++result_.idle_instructions;
    } else if (ref.kernel) {
      ++result_.kernel_instructions;
    }
    if (!ref.kernel) {
      ++result_.user_instructions;
    }
    // Pixie-style arithmetic-stall estimate from the original text.
    uint32_t word = TextWordAt(ref.addr);
    if (word != 0) {
      Op op = Decode(word).op;
      if (IsArithStall(op)) {
        result_.arith_stall_cycles += ArithStallCycles(op);
      }
    }
  }
  tlb_.OnRef(ref);
  Access(ref);
}

void TraceDrivenSimulator::OnRefBatch(const TraceRef* refs, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    OnRef(refs[i]);
  }
}

Prediction TraceDrivenSimulator::Finish() {
  result_.utlb_misses = tlb_.stats().utlb_misses;
  result_.io_stall_cycles = static_cast<double>(result_.idle_instructions) * config_.dilation;
  result_.memsys_stats = memsys_.stats();
  return result_;
}

void TraceDrivenSimulator::RegisterStats(StatsRegistry& registry, const std::string& prefix) {
  registry.AddCounter(prefix + "instructions", &result_.instructions);
  registry.AddCounter(prefix + "idle_instructions", &result_.idle_instructions);
  registry.AddCounter(prefix + "mem_stall_cycles", &result_.mem_stall_cycles);
  registry.AddCounter(prefix + "arith_stall_cycles", &result_.arith_stall_cycles);
  registry.AddCounter(prefix + "synthesized_refs", &result_.synthesized_refs);
  registry.AddCounter(prefix + "user_instructions", &result_.user_instructions);
  registry.AddCounter(prefix + "kernel_instructions", &result_.kernel_instructions);
  registry.AddCounter(prefix + "user_stall_cycles", &result_.user_stall_cycles);
  registry.AddCounter(prefix + "kernel_stall_cycles", &result_.kernel_stall_cycles);
  registry.AddGauge(prefix + "predicted_cycles", [this] { return result_.PredictedCycles(); });
  registry.AddGauge(prefix + "io_stall_cycles", [this] { return result_.io_stall_cycles; });
  memsys_.RegisterStats(registry, prefix + "memsys.");
  tlb_.RegisterStats(registry, prefix + "tlbsim.");
}

}  // namespace wrl
