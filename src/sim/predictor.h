// The trace-driven memory-system simulation and execution-time predictor —
// the analysis program of Figure 1, producing the *predicted* columns of
// Tables 2 and 3.
//
// Predicted time is the sum of four components (paper §5.1):
//   * one CPU cycle per (non-idle) traced instruction;
//   * memory-system stall cycles: I-cache misses, D-cache read misses,
//     uncached reads, and write-buffer stalls, simulated on the same
//     MemorySystem model the machine uses, with virtual-to-physical
//     translation supplied by the page-mapping policy (§4.2);
//   * arithmetic stalls, estimated pixie-style by decoding multiply/divide
//     instructions in the *original* binary images at the traced addresses;
//   * I/O stalls, estimated by scaling the idle-loop instruction count from
//     the trace by the instrumentation dilation factor (~15).
//
// Known, deliberate imperfections (the paper's §5.1 error sources): no
// pipeline overlap, no exception entry/exit cycles, approximate disk/idle
// scaling, approximate page mapping under Mach's random policy, and TLB
// replacement randomness.
#ifndef WRLTRACE_SIM_PREDICTOR_H_
#define WRLTRACE_SIM_PREDICTOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "mach/address_space.h"
#include "memsys/memsys.h"
#include "obj/object_file.h"
#include "sim/tlb_sim.h"
#include "trace/parser.h"

namespace wrl {

// Virtual page -> physical frame, per process (pid, vpn) -> pfn.
using PageMapFn = std::function<uint32_t(uint32_t pid, uint32_t vpn)>;

// The analysis-side virtual-to-physical translation, shared by the
// trace-driven simulator and the sweep engine so every consumer of the
// reference stream indexes the physically-indexed caches identically:
// kseg0/kseg1 strip the segment bits; kseg2 page-table pages use a stable
// synthetic mapping inside the PT pool (runtime frames are unknowable from
// the trace — a tiny and deliberate approximation); kuseg goes through the
// page-mapping policy, with kernel references attributed to pid 1.
inline uint32_t TranslateRef(const TraceRef& ref, const PageMapFn& page_map) {
  uint32_t vaddr = ref.addr;
  if (InKseg0(vaddr) || InKseg1(vaddr)) {
    return vaddr & 0x1fffffffu;
  }
  if (InKseg2(vaddr)) {
    return 0x00600000u | (vaddr & 0x001ff000u) | (vaddr & 0xfffu);
  }
  uint32_t pid = ref.pid == kKernelPid ? 1 : ref.pid;
  uint32_t pfn = page_map ? page_map(pid, vaddr >> 12) : (vaddr >> 12);
  return (pfn << 12) | (vaddr & 0xfffu);
}

struct PredictorConfig {
  MemSysConfig memsys;
  // The idle-loop scaling factor compensating for time dilation.
  double dilation = 15.0;
  PageMapFn page_map;
  // Wired entries of the simulated TLB (replay sweeps vary this).
  unsigned tlb_wired = 8;
};

struct Prediction {
  uint64_t instructions = 0;       // Traced instructions (incl. idle).
  uint64_t idle_instructions = 0;  // Idle-loop instructions in the trace.
  uint64_t mem_stall_cycles = 0;
  uint64_t arith_stall_cycles = 0;
  double io_stall_cycles = 0;      // Idle estimate after dilation scaling.
  uint64_t utlb_misses = 0;        // Table 3's predicted value.
  uint64_t synthesized_refs = 0;
  MemSysStats memsys_stats;
  // Per-mode breakdown (kernel vs user), for CPI comparisons (§3.4).
  uint64_t user_instructions = 0;
  uint64_t kernel_instructions = 0;  // Excluding idle.
  uint64_t user_stall_cycles = 0;
  uint64_t kernel_stall_cycles = 0;

  double UserCpi() const {
    return user_instructions == 0
               ? 0
               : 1.0 + static_cast<double>(user_stall_cycles) / user_instructions;
  }
  double KernelCpi() const {
    return kernel_instructions == 0
               ? 0
               : 1.0 + static_cast<double>(kernel_stall_cycles) / kernel_instructions;
  }

  double PredictedCycles() const {
    return static_cast<double>(instructions - idle_instructions) +
           static_cast<double>(mem_stall_cycles) + static_cast<double>(arith_stall_cycles) +
           io_stall_cycles;
  }
};

// Consumes the reconstructed reference stream (feed it as the parser's
// batch sink, or per-ref through OnRef) and produces the prediction.
class TraceDrivenSimulator : public RefBatchSink {
 public:
  explicit TraceDrivenSimulator(const PredictorConfig& config);

  // Registers an original binary image so arithmetic stalls can be
  // estimated pixie-style from its text.
  void AddTextImage(const Executable& exe);

  void OnRef(const TraceRef& ref);
  // Batched entry point: a tight loop over OnRef with the per-call sink
  // indirection amortized away.  Identical arithmetic, identical results.
  void OnRefBatch(const TraceRef* refs, size_t count) override;
  // Finalizes and returns the prediction.
  Prediction Finish();

  const TlbSimulator& tlb() const { return tlb_; }

  // Binds the running prediction counters, the analysis memory system
  // (under `<prefix>memsys.`), and the TLB simulator (under
  // `<prefix>tlbsim.`) into `registry`.  Snapshot after Finish() for final
  // values; the simulator must outlive snapshots of the registry.
  void RegisterStats(StatsRegistry& registry, const std::string& prefix = "predictor.");

 private:
  // Receives the synthesized UTLB-handler batches from the TLB simulator
  // and folds them into the cache simulation (counted, but not re-run
  // through the TLB).  A nested adapter rather than the simulator itself:
  // TraceDrivenSimulator's own OnRefBatch treats refs as main-stream.
  class SynthSink : public RefBatchSink {
   public:
    explicit SynthSink(TraceDrivenSimulator* owner) : owner_(owner) {}
    void OnRefBatch(const TraceRef* refs, size_t count) override;

   private:
    TraceDrivenSimulator* owner_;
  };

  void Access(const TraceRef& ref);
  bool current_is_kernel_ = false;
  uint32_t Translate(const TraceRef& ref) const;
  // Decoded original instruction word at an original text address (0 if
  // unknown).
  uint32_t TextWordAt(uint32_t addr) const;

  PredictorConfig config_;
  MemorySystem memsys_;
  TlbSimulator tlb_;
  SynthSink synth_sink_{this};
  Prediction result_;
  uint64_t now_ = 0;  // Simulated cycle time driving the write buffer.

  struct Image {
    uint32_t base;
    std::vector<uint8_t> text;
  };
  std::vector<Image> images_;
};

}  // namespace wrl

#endif  // WRLTRACE_SIM_PREDICTOR_H_
