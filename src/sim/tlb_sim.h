// The TLB simulator used during trace analysis (paper §4.1).
//
// The traced system deliberately does not trace its UTLB miss handler: the
// instrumented system's doubled text would make the handler's behavior
// unrepresentative.  Instead, the analysis program simulates the TLB of the
// *original* binary from the reconstructed reference stream, counts misses
// (Table 3's predicted column), and synthesizes the handler's own
// references — thirteen instruction fetches at the refill vector and one
// page-table load in kseg2 — into the stream the cache simulation consumes.
//
// The simulated TLB mirrors the hardware: 64 fully-associative entries,
// eight wired, ASID-tagged, random replacement driven by an instruction
// counter.  The counter here advances with the *simulated* stream, not the
// real machine's, so replacement decisions diverge — the residual
// randomness error the paper observes in §5.2.  The kernel's explicit
// tlbdropin()/tlb_map_random() preloads are likewise invisible here, the
// other named error source.
#ifndef WRLTRACE_SIM_TLB_SIM_H_
#define WRLTRACE_SIM_TLB_SIM_H_

#include <cstdint>
#include <string>

#include "mach/tlb.h"
#include "stats/stats.h"
#include "trace/parser.h"

namespace wrl {

struct TlbSimStats {
  uint64_t user_refs = 0;      // kuseg references (either mode).
  uint64_t utlb_misses = 0;    // kuseg misses (the Table 3 number).
  uint64_t ktlb_misses = 0;    // kseg2 misses (slow general-vector path).
};

class TlbSimulator : public RefBatchSink {
 public:
  // Number of instructions the synthesized UTLB handler executes (our
  // handler: counter maintenance + Context load + tlbwr + return).
  static constexpr unsigned kHandlerInstructions = 13;

  explicit TlbSimulator(unsigned wired = 8) : tlb_(wired) {}

  // Synthesized handler references are reported here (for cache
  // simulation): one OnRefBatch call per miss, carrying the whole
  // handler — kHandlerInstructions fetches plus the page-table load — so
  // the TLB→cache hand-off is batched and devirtualized like every other
  // sink edge (no per-ref std::function on the hot path).
  void SetSynthesizedSink(RefBatchSink* sink) { synth_sink_ = sink; }

  // Processes one reference from the parsed trace.  Returns true if the
  // reference took a UTLB miss (and the handler was synthesized).
  bool OnRef(const TraceRef& ref);
  // Batched entry point: tight loop over OnRef, identical results.
  void OnRefBatch(const TraceRef* refs, size_t count) override {
    for (size_t i = 0; i < count; ++i) {
      OnRef(refs[i]);
    }
  }

  const TlbSimStats& stats() const { return stats_; }

  // Binds the miss breakdown into `registry`; the simulator must outlive
  // snapshots of the registry.
  void RegisterStats(StatsRegistry& registry, const std::string& prefix = "tlbsim.") {
    registry.AddCounter(prefix + "user_refs", &stats_.user_refs);
    registry.AddCounter(prefix + "utlb_misses", &stats_.utlb_misses);
    registry.AddCounter(prefix + "ktlb_misses", &stats_.ktlb_misses);
  }

 private:
  void SynthesizeHandler(const TraceRef& ref);

  Tlb tlb_;
  uint64_t instruction_counter_ = 0;
  uint8_t last_user_asid_ = 0;
  TlbSimStats stats_;
  RefBatchSink* synth_sink_ = nullptr;
};

}  // namespace wrl

#endif  // WRLTRACE_SIM_TLB_SIM_H_
