// Single-pass multi-configuration sweeps (Mattson et al. 1970; Hill &
// Smith 1989): price a whole family of memory-system geometries in ONE
// pass over the reconstructed reference stream instead of one replay per
// configuration.
//
// Two classic results carry the subsystem:
//
//   * Forest simulation for the direct-mapped, physically-indexed caches
//     of src/memsys.  For power-of-two line counts at a fixed line size,
//     set membership is nested: two line addresses that conflict in a
//     cache of 2^(b+1) lines (equal mod 2^(b+1)) also conflict in the
//     2^b-line cache, so a reference that hits at size 2^b hits at every
//     larger size.  Each reference therefore has one *threshold* level —
//     the smallest family member it hits in — and a single walk down the
//     per-level last-line tables yields exact hit/miss counts for every
//     size at once, bit-identical to what an independent
//     TraceDrivenSimulator replay at that geometry reports (the cache
//     contents of src/memsys are exactly "last line to touch this set":
//     reads fill on miss, write-through stores allocate nothing).
//
//   * LRU stack distances for fully-associative structures.  The stack
//     (inclusion) property makes the miss count of an LRU structure of
//     capacity C a suffix sum of the stack-distance histogram, so one
//     pass yields the exact capacity-miss curve for *every* capacity —
//     used for the TLB's compulsory+capacity curve and doubling as the
//     working-set/reuse-distance profile exported through wrlstats.
//
// The SweepEngine is a RefBatchSink, so it rides everything the analysis
// side already has: the live parser tee, the capture-replay fan-out, and
// the PR 7 pipeline.  It mirrors TraceDrivenSimulator's reference
// ordering exactly — one TlbSimulator (the family shares the TLB
// configuration; geometry changes cannot perturb it) synthesizes the
// UTLB-handler references into the cache stream *before* the triggering
// reference, as the per-config replay does — so family-point miss counts
// are exact, not sampled.  Timing for a family point is *derived*
// (cycles = primary + Δmisses × penalty, write-buffer occupancy carried
// from the primary run — see DerivePrediction), which is the one
// documented approximation: miss counts are exact, stall cycles inherit
// the primary run's write-buffer history.
#ifndef WRLTRACE_SWEEP_SWEEP_H_
#define WRLTRACE_SWEEP_SWEEP_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/predictor.h"
#include "sim/tlb_sim.h"
#include "stats/stats.h"
#include "trace/parser.h"

namespace wrl {

// ---- Forest simulation -------------------------------------------------

// Exact single-pass simulation of every direct-mapped cache with line size
// `line_bytes` and a power-of-two size in [min_size_bytes, max_size_bytes].
// All parameters must be powers of two (rejected loudly otherwise — a
// silent rounding would change which configurations the sweep prices).
class CacheForest {
 public:
  CacheForest(uint32_t line_bytes, uint32_t min_size_bytes, uint32_t max_size_bytes);

  // One read (instruction fetch or load) of physical address `paddr`.
  // Stores never touch the family: src/memsys is write-through with no
  // write allocation, so they cannot change any member's contents.
  void Access(uint32_t paddr) {
    const uint32_t line = paddr >> line_shift_;
    // Walk every level; nesting makes the hit set an up-set of levels, so
    // the smallest hit level is the reference's threshold.
    unsigned threshold = kMissEverywhere;
    size_t offset = 0;
    for (unsigned level = 0; level < levels_; ++level) {
      const uint32_t index = line & ((1u << (min_bits_ + level)) - 1u);
      uint32_t& last = last_[offset + index];
      if (last == line && threshold == kMissEverywhere) {
        threshold = level;
      }
      last = line;
      offset += size_t{1} << (min_bits_ + level);
    }
    ++accesses_;
    if (threshold == kMissEverywhere) {
      ++cold_or_conflict_everywhere_;
    } else {
      ++hits_at_level_[threshold];
    }
  }

  // Exact miss count for the family member of `size_bytes` (must be in
  // the family; throws otherwise).
  uint64_t Misses(uint32_t size_bytes) const;

  uint64_t accesses() const { return accesses_; }
  uint32_t line_bytes() const { return line_bytes_; }
  uint32_t min_size_bytes() const { return min_size_bytes_; }
  uint32_t max_size_bytes() const { return max_size_bytes_; }
  // Every size in the family, smallest first.
  std::vector<uint32_t> FamilySizes() const;

 private:
  static constexpr unsigned kMissEverywhere = 0xffffffffu;
  // Line addresses are paddr >> line_shift <= 2^30, far below the sentinel.
  static constexpr uint32_t kNoLine = 0xffffffffu;

  uint32_t line_bytes_;
  uint32_t min_size_bytes_;
  uint32_t max_size_bytes_;
  uint32_t line_shift_;
  unsigned min_bits_;  // log2(line count) of the smallest member.
  unsigned levels_;    // Family members (one per power of two).
  std::vector<uint32_t> last_;  // Concatenated per-level last-line tables.
  std::vector<uint64_t> hits_at_level_;
  uint64_t cold_or_conflict_everywhere_ = 0;
  uint64_t accesses_ = 0;
};

// ---- LRU stack distances -----------------------------------------------

// Exact stack-distance (reuse-distance) profile over an arbitrary key
// stream: one pass yields the miss count of a fully-associative LRU
// structure of every capacity.  Distances are computed with a Fenwick
// tree over last-access timestamps (compacted periodically so memory
// stays proportional to the number of distinct keys, not stream length).
class StackDistanceProfiler {
 public:
  StackDistanceProfiler();

  // Touches `key`; returns its stack distance (0 = first touch).
  uint64_t Access(uint64_t key);

  uint64_t accesses() const { return accesses_; }
  // First-touch (compulsory) misses — infinite stack distance.
  uint64_t cold_misses() const { return cold_misses_; }
  // Exact misses of an LRU structure with `capacity` slots (capacity 0 =
  // everything misses).
  uint64_t MissesAtCapacity(unsigned capacity) const;
  // distance_counts()[d] = references that hit at stack position d+1 (the
  // reuse-distance histogram; its length is the deepest reuse seen).
  const std::vector<uint64_t>& distance_counts() const { return distance_counts_; }
  uint64_t distinct_keys() const { return last_time_.size(); }

 private:
  void FenwickAdd(size_t pos, int delta);
  uint64_t FenwickPrefix(size_t pos) const;  // Sum of [0, pos].
  void Compact();

  std::unordered_map<uint64_t, uint32_t> last_time_;
  std::vector<int32_t> fenwick_;  // 1-based; covers timestamps [0, window).
  size_t window_ = 0;
  uint32_t time_ = 0;
  uint64_t live_ = 0;  // Keys currently marked in the tree.
  std::vector<uint64_t> distance_counts_;
  uint64_t cold_misses_ = 0;
  uint64_t accesses_ = 0;
};

// ---- The sweep engine --------------------------------------------------

// One cache family: every power-of-two size in [min_size_bytes,
// max_size_bytes] at `line_bytes` lines.
struct CacheFamilySpec {
  uint32_t line_bytes = 0;
  uint32_t min_size_bytes = 0;
  uint32_t max_size_bytes = 0;
};

struct SweepConfig {
  // The primary analysis configuration: penalties for derived timing, the
  // page map and TLB wiring that fix the (shared) reference stream.
  MemSysConfig base;
  PageMapFn page_map;
  unsigned tlb_wired = 8;
  // Families priced for the I- and D-cache (each may hold several line
  // sizes; every family is walked in the same single pass).
  std::vector<CacheFamilySpec> icache;
  std::vector<CacheFamilySpec> dcache;
  // Capacity bound of the exported LRU TLB miss curve (0 = no curve).
  unsigned tlb_max_entries = 0;
};

struct SweepCachePoint {
  uint32_t line_bytes = 0;
  uint32_t size_bytes = 0;
  uint64_t misses = 0;
};

struct SweepResult {
  std::vector<SweepCachePoint> icache;
  std::vector<SweepCachePoint> dcache;
  // tlb_lru_misses[c-1] = exact misses of a c-entry fully-associative LRU
  // TLB over the kuseg reference stream (compulsory + capacity; the
  // random-replacement production TLB is priced by TlbSimulator instead).
  std::vector<uint64_t> tlb_lru_misses;
  uint64_t tlb_cold_misses = 0;
  uint64_t tlb_refs = 0;
  uint64_t refs = 0;              // Main-stream references consumed.
  uint64_t ifetches = 0;
  uint64_t synthesized_refs = 0;  // UTLB-handler refs folded into the walk.
  TlbSimStats tlb;                // The shared production-TLB simulation.
  // Family points priced (all cache sizes across all families).  The
  // harness divides points × refs by the pass wall time for the
  // sweep.mrefs_per_sec metric.
  size_t family_points = 0;
  uint64_t wall_us = 0;           // Filled by the harness (capture mode).
};

class SweepEngine : public RefBatchSink {
 public:
  explicit SweepEngine(const SweepConfig& config);

  void OnRef(const TraceRef& ref);
  void OnRefBatch(const TraceRef* refs, size_t count) override;

  // Finalizes (idempotent) and returns the result.
  const SweepResult& Finish();

  // Exact miss counts for one family point; throws wrl::Error when the
  // geometry is not covered by any family.
  uint64_t IcacheMisses(uint32_t line_bytes, uint32_t size_bytes) const;
  uint64_t DcacheMisses(uint32_t line_bytes, uint32_t size_bytes) const;
  bool CoversIcache(uint32_t line_bytes, uint32_t size_bytes) const;
  bool CoversDcache(uint32_t line_bytes, uint32_t size_bytes) const;

  // Derived timing for a geometry family point: the primary replay's
  // Prediction with the cache miss counts swapped for the point's exact
  // counts and the memory-stall total rebuilt as
  //   stalls = primary stalls + (Δicache + Δdcache misses) × read penalty,
  // i.e. uncached stalls and the write-buffer occupancy are carried from
  // the primary run (the §13 approximation: misses exact, write-buffer
  // history inherited).  The per-mode user/kernel stall split is likewise
  // carried over unchanged.
  Prediction DerivePrediction(const Prediction& primary, const MemSysConfig& geometry) const;

  const TlbSimStats& tlb_stats() const { return tlb_.stats(); }

  // Binds sweep counters and the reuse-distance histogram into `registry`;
  // the engine must outlive snapshots.
  void RegisterStats(StatsRegistry& registry, const std::string& prefix = "sweep.");

 private:
  // Synthesized UTLB-handler references arrive here as one batch per miss
  // (the devirtualized TlbSimulator sink ABI) and enter the forests ahead
  // of the triggering reference, exactly as TraceDrivenSimulator orders
  // its cache accesses.
  class SynthSink : public RefBatchSink {
   public:
    explicit SynthSink(SweepEngine* owner) : owner_(owner) {}
    void OnRefBatch(const TraceRef* refs, size_t count) override {
      owner_->OnSynthBatch(refs, count);
    }

   private:
    SweepEngine* owner_;
  };

  void OnSynthBatch(const TraceRef* refs, size_t count);
  void CacheAccess(const TraceRef& ref);
  const CacheForest* FindForest(const std::vector<CacheForest>& forests, uint32_t line_bytes,
                                uint32_t size_bytes) const;

  SweepConfig config_;
  TlbSimulator tlb_;
  SynthSink synth_sink_{this};
  std::vector<CacheForest> iforests_;
  std::vector<CacheForest> dforests_;
  StackDistanceProfiler tlb_stack_;
  uint8_t last_user_asid_ = 0;
  Histogram reuse_hist_;  // Log-scale reuse distances (working-set shape).
  uint64_t refs_ = 0;
  uint64_t ifetches_ = 0;
  uint64_t synthesized_refs_ = 0;
  uint64_t uncached_reads_ = 0;
  bool finished_ = false;
  SweepResult result_;
};

}  // namespace wrl

#endif  // WRLTRACE_SWEEP_SWEEP_H_
