#include "sweep/sweep.h"

#include <algorithm>
#include <utility>

#include "mach/address_space.h"
#include "support/error.h"
#include "support/strings.h"

namespace wrl {
namespace {

bool IsPow2(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

unsigned Log2(uint32_t v) {
  unsigned bits = 0;
  while ((1u << bits) < v) {
    ++bits;
  }
  return bits;
}

}  // namespace

// ---- CacheForest -------------------------------------------------------

CacheForest::CacheForest(uint32_t line_bytes, uint32_t min_size_bytes, uint32_t max_size_bytes)
    : line_bytes_(line_bytes), min_size_bytes_(min_size_bytes), max_size_bytes_(max_size_bytes) {
  if (!IsPow2(line_bytes)) {
    throw Error(StrFormat("sweep: line size %u is not a power of two", line_bytes));
  }
  if (!IsPow2(min_size_bytes)) {
    throw Error(StrFormat("sweep: cache size %u is not a power of two", min_size_bytes));
  }
  if (!IsPow2(max_size_bytes)) {
    throw Error(StrFormat("sweep: cache size %u is not a power of two", max_size_bytes));
  }
  if (min_size_bytes < line_bytes) {
    throw Error(StrFormat("sweep: cache size %u is smaller than its %u-byte line", min_size_bytes,
                          line_bytes));
  }
  if (max_size_bytes < min_size_bytes) {
    throw Error(StrFormat("sweep: cache family [%u, %u] is inverted", min_size_bytes,
                          max_size_bytes));
  }
  line_shift_ = Log2(line_bytes);
  min_bits_ = Log2(min_size_bytes / line_bytes);
  const unsigned max_bits = Log2(max_size_bytes / line_bytes);
  levels_ = max_bits - min_bits_ + 1;
  size_t total = 0;
  for (unsigned level = 0; level < levels_; ++level) {
    total += size_t{1} << (min_bits_ + level);
  }
  last_.assign(total, kNoLine);
  hits_at_level_.assign(levels_, 0);
}

uint64_t CacheForest::Misses(uint32_t size_bytes) const {
  if (!IsPow2(size_bytes)) {
    throw Error(StrFormat("sweep: cache size %u is not a power of two", size_bytes));
  }
  if (size_bytes < min_size_bytes_ || size_bytes > max_size_bytes_) {
    throw Error(StrFormat("sweep: cache size %u outside family [%u, %u] at line %u", size_bytes,
                          min_size_bytes_, max_size_bytes_, line_bytes_));
  }
  const unsigned level = Log2(size_bytes / line_bytes_) - min_bits_;
  // The hit set is an up-set of levels: a reference whose threshold is
  // `level` or smaller hits in this family member.
  uint64_t hits = 0;
  for (unsigned l = 0; l <= level; ++l) {
    hits += hits_at_level_[l];
  }
  return accesses_ - hits;
}

std::vector<uint32_t> CacheForest::FamilySizes() const {
  std::vector<uint32_t> sizes;
  sizes.reserve(levels_);
  for (unsigned level = 0; level < levels_; ++level) {
    sizes.push_back(line_bytes_ << (min_bits_ + level));
  }
  return sizes;
}

// ---- StackDistanceProfiler ---------------------------------------------

namespace {
// Small enough that every realistic trace exercises compaction, large
// enough that compaction cost (O(live keys) each) stays negligible.
constexpr size_t kMinWindow = 4096;
}  // namespace

StackDistanceProfiler::StackDistanceProfiler() : window_(kMinWindow) {
  fenwick_.assign(window_ + 1, 0);
}

void StackDistanceProfiler::FenwickAdd(size_t pos, int delta) {
  for (size_t i = pos + 1; i <= window_; i += i & (~i + 1)) {
    fenwick_[i] += delta;
  }
}

uint64_t StackDistanceProfiler::FenwickPrefix(size_t pos) const {
  int64_t sum = 0;
  for (size_t i = pos + 1; i > 0; i -= i & (~i + 1)) {
    sum += fenwick_[i];
  }
  return static_cast<uint64_t>(sum);
}

void StackDistanceProfiler::Compact() {
  // Renumber live keys 0..live-1 in LRU order (ascending last-access time
  // preserves every relative order, hence every future stack distance).
  std::vector<std::pair<uint32_t, uint64_t>> order;
  order.reserve(last_time_.size());
  for (const auto& [key, t] : last_time_) {
    order.emplace_back(t, key);
  }
  std::sort(order.begin(), order.end());
  size_t want = std::max<size_t>(kMinWindow, 2 * order.size());
  window_ = 1;
  while (window_ < want) {
    window_ <<= 1;
  }
  fenwick_.assign(window_ + 1, 0);
  uint32_t t = 0;
  for (const auto& [old_time, key] : order) {
    (void)old_time;
    last_time_[key] = t;
    FenwickAdd(t, 1);
    ++t;
  }
  time_ = t;
}

uint64_t StackDistanceProfiler::Access(uint64_t key) {
  ++accesses_;
  uint64_t distance = 0;
  auto it = last_time_.find(key);
  if (it == last_time_.end()) {
    ++cold_misses_;
  } else {
    // Stack position = keys touched more recently than `key`, plus itself.
    const uint64_t later = live_ - FenwickPrefix(it->second);
    distance = later + 1;
    if (distance_counts_.size() < distance) {
      distance_counts_.resize(distance, 0);
    }
    ++distance_counts_[distance - 1];
    FenwickAdd(it->second, -1);
    --live_;
    // Erase before a possible Compact(): compaction rebuilds the tree from
    // `last_time_`, and this key is about to get a fresh timestamp below —
    // leaving the stale entry in place would double-mark it.
    last_time_.erase(it);
  }
  if (time_ >= window_) {
    Compact();
  }
  const uint32_t now = time_++;
  last_time_[key] = now;
  FenwickAdd(now, 1);
  ++live_;
  return distance;
}

uint64_t StackDistanceProfiler::MissesAtCapacity(unsigned capacity) const {
  uint64_t misses = cold_misses_;
  for (size_t d = capacity; d < distance_counts_.size(); ++d) {
    misses += distance_counts_[d];
  }
  return misses;
}

// ---- SweepEngine -------------------------------------------------------

SweepEngine::SweepEngine(const SweepConfig& config) : config_(config), tlb_(config.tlb_wired) {
  for (const CacheFamilySpec& spec : config.icache) {
    iforests_.emplace_back(spec.line_bytes, spec.min_size_bytes, spec.max_size_bytes);
  }
  for (const CacheFamilySpec& spec : config.dcache) {
    dforests_.emplace_back(spec.line_bytes, spec.min_size_bytes, spec.max_size_bytes);
  }
  tlb_.SetSynthesizedSink(&synth_sink_);
}

void SweepEngine::CacheAccess(const TraceRef& ref) {
  if (InKseg1(ref.addr)) {
    // Uncached segment: a flat penalty, never a cache access — no family
    // member can disagree about it.
    if (ref.kind != TraceRef::kStore) {
      ++uncached_reads_;
    }
    return;
  }
  const uint32_t paddr = TranslateRef(ref, config_.page_map);
  switch (ref.kind) {
    case TraceRef::kIfetch:
      for (CacheForest& forest : iforests_) {
        forest.Access(paddr);
      }
      break;
    case TraceRef::kLoad:
      for (CacheForest& forest : dforests_) {
        forest.Access(paddr);
      }
      break;
    case TraceRef::kStore:
      // Write-through, no write allocation: stores cannot change any
      // family member's contents and their write-buffer cost is geometry-
      // independent, so the forests ignore them.
      break;
  }
}

void SweepEngine::OnSynthBatch(const TraceRef* refs, size_t count) {
  synthesized_refs_ += count;
  for (size_t i = 0; i < count; ++i) {
    CacheAccess(refs[i]);
  }
}

void SweepEngine::OnRef(const TraceRef& ref) {
  ++refs_;
  if (ref.kind == TraceRef::kIfetch) {
    ++ifetches_;
  }
  if (InKuseg(ref.addr)) {
    // Mirror TlbSimulator's ASID attribution so the LRU curve prices the
    // same key stream the production TLB sees.
    uint8_t asid;
    if (ref.pid != kKernelPid) {
      asid = ref.pid;
      last_user_asid_ = ref.pid;
    } else {
      asid = last_user_asid_ == 0 ? 1 : last_user_asid_;
    }
    const uint64_t key = (static_cast<uint64_t>(asid) << 20) | (ref.addr >> kPageShift);
    const uint64_t distance = tlb_stack_.Access(key);
    if (distance != 0) {
      reuse_hist_.Record(distance);
    }
  }
  // Same ordering as TraceDrivenSimulator::OnRef: the TLB simulation first
  // (synthesized handler refs enter the forests through OnSynthBatch,
  // ahead of the triggering reference), then the reference itself.
  tlb_.OnRef(ref);
  CacheAccess(ref);
}

void SweepEngine::OnRefBatch(const TraceRef* refs, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    OnRef(refs[i]);
  }
}

const CacheForest* SweepEngine::FindForest(const std::vector<CacheForest>& forests,
                                           uint32_t line_bytes, uint32_t size_bytes) const {
  for (const CacheForest& forest : forests) {
    if (forest.line_bytes() == line_bytes && size_bytes >= forest.min_size_bytes() &&
        size_bytes <= forest.max_size_bytes() && IsPow2(size_bytes)) {
      return &forest;
    }
  }
  return nullptr;
}

bool SweepEngine::CoversIcache(uint32_t line_bytes, uint32_t size_bytes) const {
  return FindForest(iforests_, line_bytes, size_bytes) != nullptr;
}

bool SweepEngine::CoversDcache(uint32_t line_bytes, uint32_t size_bytes) const {
  return FindForest(dforests_, line_bytes, size_bytes) != nullptr;
}

uint64_t SweepEngine::IcacheMisses(uint32_t line_bytes, uint32_t size_bytes) const {
  const CacheForest* forest = FindForest(iforests_, line_bytes, size_bytes);
  if (forest == nullptr) {
    throw Error(StrFormat("sweep: no I-cache family covers size %u at line %u", size_bytes,
                          line_bytes));
  }
  return forest->Misses(size_bytes);
}

uint64_t SweepEngine::DcacheMisses(uint32_t line_bytes, uint32_t size_bytes) const {
  const CacheForest* forest = FindForest(dforests_, line_bytes, size_bytes);
  if (forest == nullptr) {
    throw Error(StrFormat("sweep: no D-cache family covers size %u at line %u", size_bytes,
                          line_bytes));
  }
  return forest->Misses(size_bytes);
}

Prediction SweepEngine::DerivePrediction(const Prediction& primary,
                                         const MemSysConfig& geometry) const {
  Prediction derived = primary;
  const uint64_t icache = IcacheMisses(geometry.icache.line_bytes, geometry.icache.size_bytes);
  const uint64_t dcache = DcacheMisses(geometry.dcache.line_bytes, geometry.dcache.size_bytes);
  const int64_t delta = static_cast<int64_t>(icache + dcache) -
                        static_cast<int64_t>(primary.memsys_stats.icache_misses +
                                             primary.memsys_stats.dcache_misses);
  derived.memsys_stats.icache_misses = icache;
  derived.memsys_stats.dcache_misses = dcache;
  const int64_t stall_delta = delta * static_cast<int64_t>(geometry.read_miss_penalty);
  // Uncached penalties and the write-buffer history are carried over from
  // the primary run (DESIGN.md §13's one approximation); the miss counts
  // above are exact.  The total can only underflow if the primary stalls
  // were entirely cache misses and the family point has fewer — clamp.
  const int64_t stalls = static_cast<int64_t>(primary.mem_stall_cycles) + stall_delta;
  derived.mem_stall_cycles = stalls < 0 ? 0 : static_cast<uint64_t>(stalls);
  const int64_t user = static_cast<int64_t>(primary.user_stall_cycles);
  const int64_t kernel = static_cast<int64_t>(primary.kernel_stall_cycles);
  // Attribute the stall delta to user/kernel proportionally to the primary
  // split (the sweep does not track per-mode thresholds).
  if (user + kernel > 0) {
    const int64_t user_share = stall_delta * user / (user + kernel);
    const int64_t new_user = user + user_share;
    const int64_t new_kernel = kernel + (stall_delta - user_share);
    derived.user_stall_cycles = new_user < 0 ? 0 : static_cast<uint64_t>(new_user);
    derived.kernel_stall_cycles = new_kernel < 0 ? 0 : static_cast<uint64_t>(new_kernel);
  }
  return derived;
}

const SweepResult& SweepEngine::Finish() {
  if (finished_) {
    return result_;
  }
  finished_ = true;
  result_ = SweepResult{};
  for (const CacheForest& forest : iforests_) {
    for (uint32_t size : forest.FamilySizes()) {
      result_.icache.push_back({forest.line_bytes(), size, forest.Misses(size)});
    }
  }
  for (const CacheForest& forest : dforests_) {
    for (uint32_t size : forest.FamilySizes()) {
      result_.dcache.push_back({forest.line_bytes(), size, forest.Misses(size)});
    }
  }
  if (config_.tlb_max_entries > 0) {
    result_.tlb_lru_misses.reserve(config_.tlb_max_entries);
    for (unsigned c = 1; c <= config_.tlb_max_entries; ++c) {
      result_.tlb_lru_misses.push_back(tlb_stack_.MissesAtCapacity(c));
    }
  }
  result_.tlb_cold_misses = tlb_stack_.cold_misses();
  result_.tlb_refs = tlb_stack_.accesses();
  result_.refs = refs_;
  result_.ifetches = ifetches_;
  result_.synthesized_refs = synthesized_refs_;
  result_.tlb = tlb_.stats();
  result_.family_points = result_.icache.size() + result_.dcache.size();
  return result_;
}

void SweepEngine::RegisterStats(StatsRegistry& registry, const std::string& prefix) {
  registry.AddCounter(prefix + "refs", &refs_);
  registry.AddCounter(prefix + "ifetches", &ifetches_);
  registry.AddCounter(prefix + "synthesized_refs", &synthesized_refs_);
  registry.AddCounter(prefix + "uncached_reads", &uncached_reads_);
  registry.AddGauge(prefix + "family_points",
                    [this] { return static_cast<double>(iforests_.size() + dforests_.size()); });
  registry.AddGauge(prefix + "tlb_distinct_pages",
                    [this] { return static_cast<double>(tlb_stack_.distinct_keys()); });
  registry.AddGauge(prefix + "tlb_cold_misses",
                    [this] { return static_cast<double>(tlb_stack_.cold_misses()); });
  registry.AddHistogram(prefix + "tlb_reuse_distance", &reuse_hist_);
  tlb_.RegisterStats(registry, prefix + "tlbsim.");
}

}  // namespace wrl
