// The DS32 assembler.
//
// Translates assembly text into EWO object files.  The dialect is classic
// MIPS assembler syntax with explicit delay slots (no instruction
// reordering): the kernel, the trace support library and all workloads are
// written in it.  Beyond instructions, the assembler:
//
//   * resolves local branches and emits relocations (hi16/lo16/jump26/word32)
//     for everything address-shaped, so the link-time instrumenter can do all
//     address correction statically (paper §3.2);
//   * identifies basic-block leaders (labels, branch targets, post-delay-slot
//     fall-throughs) and records them as block annotations, the raw material
//     for both epoxie and the trace-parsing library;
//   * supports tracing-control directives for no-trace regions, hand-traced
//     routines and the idle-loop counter markers (paper §3.3, §3.5).
//
// Directives: .text .data .globl .word .half .byte .ascii .asciiz .space
// .align .notrace_on .notrace_off .handtraced_on .handtraced_off
// .idle_start .idle_stop
//
// Pseudo-instructions: nop, move, li, la, b, beqz, bnez, lw/sw-with-symbol.
#ifndef WRLTRACE_ASM_ASSEMBLER_H_
#define WRLTRACE_ASM_ASSEMBLER_H_

#include <string>
#include <string_view>

#include "obj/object_file.h"

namespace wrl {

// Assembles `source` into an object file.  `source_name` is used in
// diagnostics.  Throws wrl::Error with file:line context on any problem.
ObjectFile Assemble(std::string_view source_name, std::string_view source);

}  // namespace wrl

#endif  // WRLTRACE_ASM_ASSEMBLER_H_
