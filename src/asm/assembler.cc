#include "asm/assembler.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "isa/isa.h"
#include "support/error.h"
#include "support/strings.h"

namespace wrl {
namespace {

// COP0 register names accepted by mfc0/mtc0 in addition to $N.
std::optional<uint8_t> ParseCop0Name(std::string_view name) {
  struct Entry {
    const char* name;
    uint8_t reg;
  };
  static constexpr Entry kNames[] = {
      {"index", kCop0Index},     {"random", kCop0Random}, {"entrylo", kCop0EntryLo},
      {"context", kCop0Context}, {"badvaddr", kCop0BadVAddr}, {"entryhi", kCop0EntryHi},
      {"status", kCop0Status},   {"cause", kCop0Cause},   {"epc", kCop0Epc},
      {"prid", kCop0Prid},
  };
  for (const Entry& e : kNames) {
    if (name == e.name) {
      return e.reg;
    }
  }
  return std::nullopt;
}

// A symbol reference with optional +/- offset: "sym", "sym+8", "sym-4".
struct SymbolRef {
  std::string symbol;
  int32_t addend = 0;
};

class Assembler {
 public:
  Assembler(std::string_view source_name, std::string_view source)
      : source_name_(source_name), source_(source) {}

  ObjectFile Run() {
    obj_.source_name = std::string(source_name_);
    size_t start = 0;
    line_number_ = 0;
    while (start <= source_.size()) {
      size_t end = source_.find('\n', start);
      if (end == std::string_view::npos) {
        end = source_.size();
      }
      ++line_number_;
      ProcessLine(source_.substr(start, end - start));
      start = end + 1;
      if (end == source_.size()) {
        break;
      }
    }
    ApplyBranchFixups();
    ComputeBlocks();
    return std::move(obj_);
  }

 private:
  // ---- Diagnostics ----
  [[noreturn]] void Fail(const std::string& message) const {
    throw Error(StrFormat("%s:%d: %s", std::string(source_name_).c_str(), line_number_,
                          message.c_str()));
  }

  // ---- Line processing ----
  void ProcessLine(std::string_view raw_line) {
    // Strip comments.  '#' introduces a comment except inside a string.
    std::string_view line = raw_line;
    bool in_string = false;
    for (size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '"' && (i == 0 || line[i - 1] != '\\')) {
        in_string = !in_string;
      } else if (line[i] == '#' && !in_string) {
        line = line.substr(0, i);
        break;
      }
    }
    line = StripWhitespace(line);

    // Labels (possibly several).
    while (true) {
      size_t colon = line.find(':');
      if (colon == std::string_view::npos) {
        break;
      }
      std::string_view label = StripWhitespace(line.substr(0, colon));
      if (label.empty() || !IsIdentifier(label)) {
        break;  // ':' belongs to something else (not expected in this dialect).
      }
      DefineLabel(std::string(label));
      line = StripWhitespace(line.substr(colon + 1));
    }
    if (line.empty()) {
      return;
    }
    if (line.front() == '.') {
      ProcessDirective(line);
    } else {
      ProcessInstruction(line);
    }
  }

  static bool IsIdentifier(std::string_view s) {
    if (s.empty()) {
      return false;
    }
    for (char c : s) {
      if (!(isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' || c == '$')) {
        return false;
      }
    }
    return !(s[0] >= '0' && s[0] <= '9');
  }

  void DefineLabel(const std::string& name) {
    if (defined_.count(name) != 0) {
      Fail(StrFormat("label '%s' redefined", name.c_str()));
    }
    defined_.insert(name);
    Symbol sym;
    sym.name = name;
    sym.section = section_;
    sym.value = SectionSize();
    sym.global = globals_.count(name) != 0;
    obj_.symbols.push_back(sym);
    if (section_ == SectionId::kText) {
      leaders_.insert(sym.value);
    }
  }

  uint32_t SectionSize() const {
    switch (section_) {
      case SectionId::kText: return static_cast<uint32_t>(obj_.text.size());
      case SectionId::kData: return static_cast<uint32_t>(obj_.data.size());
      case SectionId::kBss: return obj_.bss_size;
      default: throw InternalError("bad current section");
    }
  }

  // ---- Directives ----
  void ProcessDirective(std::string_view line) {
    auto fields = SplitFields(line, " \t,");
    std::string_view dir = fields[0];
    if (dir == ".text") {
      section_ = SectionId::kText;
    } else if (dir == ".data") {
      section_ = SectionId::kData;
    } else if (dir == ".bss") {
      section_ = SectionId::kBss;
    } else if (dir == ".globl" || dir == ".global") {
      if (fields.size() < 2) {
        Fail(".globl requires a symbol");
      }
      for (size_t i = 1; i < fields.size(); ++i) {
        MarkGlobal(std::string(fields[i]));
      }
    } else if (dir == ".word") {
      for (size_t i = 1; i < fields.size(); ++i) {
        EmitDataWord(fields[i]);
      }
    } else if (dir == ".half") {
      for (size_t i = 1; i < fields.size(); ++i) {
        int64_t v = ParseIntOrFail(fields[i]);
        EmitDataByte(static_cast<uint8_t>(v));
        EmitDataByte(static_cast<uint8_t>(v >> 8));
      }
    } else if (dir == ".byte") {
      for (size_t i = 1; i < fields.size(); ++i) {
        EmitDataByte(static_cast<uint8_t>(ParseIntOrFail(fields[i])));
      }
    } else if (dir == ".ascii" || dir == ".asciiz") {
      EmitString(line, dir == ".asciiz");
    } else if (dir == ".space") {
      if (fields.size() != 2) {
        Fail(".space requires a size");
      }
      uint32_t n = static_cast<uint32_t>(ParseIntOrFail(fields[1]));
      if (section_ == SectionId::kBss) {
        obj_.bss_size += n;
      } else if (section_ == SectionId::kText) {
        // Zero-filled text: zero decodes as nop, so this lays out exception
        // vectors and padding safely.
        for (uint32_t i = 0; i < n; ++i) {
          obj_.text.push_back(0);
        }
      } else {
        for (uint32_t i = 0; i < n; ++i) {
          EmitDataByte(0);
        }
      }
    } else if (dir == ".align") {
      if (fields.size() != 2) {
        Fail(".align requires an alignment");
      }
      uint32_t align = static_cast<uint32_t>(ParseIntOrFail(fields[1]));
      if (align == 0 || (align & (align - 1)) != 0) {
        Fail(".align argument must be a power of two");
      }
      while (SectionSize() % align != 0) {
        if (section_ == SectionId::kBss) {
          ++obj_.bss_size;
        } else if (section_ == SectionId::kText) {
          obj_.text.push_back(0);
        } else {
          EmitDataByte(0);
        }
      }
    } else if (dir == ".notrace_on") {
      region_flags_ |= kBlockNoTrace;
    } else if (dir == ".notrace_off") {
      region_flags_ &= ~kBlockNoTrace;
    } else if (dir == ".handtraced_on") {
      region_flags_ |= kBlockHandTraced;
    } else if (dir == ".handtraced_off") {
      region_flags_ &= ~kBlockHandTraced;
    } else if (dir == ".idle_start") {
      point_flags_[static_cast<uint32_t>(obj_.text.size())] |= kBlockIdleStart;
    } else if (dir == ".idle_stop") {
      point_flags_[static_cast<uint32_t>(obj_.text.size())] |= kBlockIdleStop;
    } else {
      Fail(StrFormat("unknown directive '%s'", std::string(dir).c_str()));
    }
  }

  void MarkGlobal(const std::string& name) {
    globals_.insert(name);
    for (Symbol& s : obj_.symbols) {
      if (s.name == name) {
        s.global = true;
      }
    }
  }

  void EmitDataByte(uint8_t b) {
    if (section_ == SectionId::kText) {
      Fail("data directive in .text");
    }
    if (section_ == SectionId::kBss) {
      Fail("initialized data in .bss");
    }
    obj_.data.push_back(b);
  }

  void EmitDataWord(std::string_view field) {
    if (section_ != SectionId::kData) {
      Fail(".word outside .data");
    }
    while (obj_.data.size() % 4 != 0) {
      obj_.data.push_back(0);
    }
    // Either a number or a symbol(+offset).
    if (!field.empty() && (isdigit(static_cast<unsigned char>(field[0])) || field[0] == '-' ||
                           field[0] == '+')) {
      uint32_t v = static_cast<uint32_t>(ParseIntOrFail(field));
      for (int i = 0; i < 4; ++i) {
        obj_.data.push_back(static_cast<uint8_t>(v >> (8 * i)));
      }
    } else {
      SymbolRef ref = ParseSymbolRef(field);
      Relocation r;
      r.offset = static_cast<uint32_t>(obj_.data.size());
      r.section = SectionId::kData;
      r.type = RelocType::kWord32;
      r.symbol = ref.symbol;
      r.addend = ref.addend;
      obj_.relocations.push_back(r);
      for (int i = 0; i < 4; ++i) {
        obj_.data.push_back(0);
      }
    }
  }

  void EmitString(std::string_view line, bool zero_terminate) {
    size_t open = line.find('"');
    size_t close = line.rfind('"');
    if (open == std::string_view::npos || close <= open) {
      Fail("malformed string literal");
    }
    std::string_view body = line.substr(open + 1, close - open - 1);
    for (size_t i = 0; i < body.size(); ++i) {
      char c = body[i];
      if (c == '\\' && i + 1 < body.size()) {
        ++i;
        switch (body[i]) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '0': c = '\0'; break;
          case '\\': c = '\\'; break;
          case '"': c = '"'; break;
          default: Fail(StrFormat("unknown escape '\\%c'", body[i]));
        }
      }
      EmitDataByte(static_cast<uint8_t>(c));
    }
    if (zero_terminate) {
      EmitDataByte(0);
    }
  }

  int64_t ParseIntOrFail(std::string_view text) const {
    try {
      return ParseInt(text);
    } catch (const Error& e) {
      Fail(e.what());
    }
  }

  SymbolRef ParseSymbolRef(std::string_view text) const {
    SymbolRef ref;
    size_t plus = text.find_first_of("+-", 1);
    if (plus == std::string_view::npos) {
      ref.symbol = std::string(StripWhitespace(text));
    } else {
      ref.symbol = std::string(StripWhitespace(text.substr(0, plus)));
      std::string_view tail = text.substr(plus);
      ref.addend = static_cast<int32_t>(ParseIntOrFail(tail));
    }
    if (!IsIdentifier(ref.symbol)) {
      Fail(StrFormat("bad symbol reference '%s'", std::string(text).c_str()));
    }
    return ref;
  }

  // ---- Instruction emission ----
  uint32_t Here() const { return static_cast<uint32_t>(obj_.text.size()); }

  void EmitWord(uint32_t word) {
    if (section_ != SectionId::kText) {
      Fail("instruction outside .text");
    }
    for (int i = 0; i < 4; ++i) {
      obj_.text.push_back(static_cast<uint8_t>(word >> (8 * i)));
    }
  }

  uint8_t ParseReg(std::string_view token) const {
    auto reg = ParseRegName(StripWhitespace(token));
    if (!reg) {
      Fail(StrFormat("bad register '%s'", std::string(token).c_str()));
    }
    return *reg;
  }

  // Parses "off($base)" or "sym" forms used by loads/stores.
  struct MemOperand {
    bool direct = true;  // off($base) form.
    int32_t offset = 0;
    uint8_t base = 0;
    SymbolRef ref;  // For the symbol form.
  };

  MemOperand ParseMemOperand(std::string_view text) const {
    MemOperand m;
    text = StripWhitespace(text);
    size_t open = text.find('(');
    if (open != std::string_view::npos) {
      size_t close = text.find(')', open);
      if (close == std::string_view::npos) {
        Fail("missing ')' in memory operand");
      }
      std::string_view off = StripWhitespace(text.substr(0, open));
      m.offset = off.empty() ? 0 : static_cast<int32_t>(ParseIntOrFail(off));
      if (m.offset < -32768 || m.offset > 32767) {
        Fail("memory offset out of 16-bit range");
      }
      m.base = ParseReg(text.substr(open + 1, close - open - 1));
      return m;
    }
    m.direct = false;
    m.ref = ParseSymbolRef(text);
    return m;
  }

  void AddTextReloc(RelocType type, const SymbolRef& ref) {
    Relocation r;
    r.offset = Here();
    r.section = SectionId::kText;
    r.type = type;
    r.symbol = ref.symbol;
    r.addend = ref.addend;
    obj_.relocations.push_back(r);
  }

  // Emits "lui $reg, %hi(sym)" + "ori $reg, $reg, %lo(sym)".
  void EmitLoadAddress(uint8_t reg, const SymbolRef& ref) {
    AddTextReloc(RelocType::kHi16, ref);
    EmitWord(EncodeIType(Op::kLui, 0, reg, 0));
    AddTextReloc(RelocType::kLo16, ref);
    EmitWord(EncodeIType(Op::kOri, reg, reg, 0));
  }

  void EmitBranch(Op op, uint8_t rs, uint8_t rt, std::string_view label) {
    branch_fixups_.push_back({Here(), std::string(StripWhitespace(label)), line_number_});
    EmitWord(EncodeIType(op, rs, rt, 0));
  }

  void ProcessInstruction(std::string_view line) {
    if (section_ != SectionId::kText) {
      Fail("instruction outside .text");
    }
    // Mnemonic = first whitespace-delimited token; rest = comma-separated operands.
    size_t space = line.find_first_of(" \t");
    std::string_view mnemonic = (space == std::string_view::npos) ? line : line.substr(0, space);
    std::string_view rest =
        (space == std::string_view::npos) ? std::string_view{} : line.substr(space + 1);
    std::vector<std::string_view> ops;
    // Split on commas only: memory operands contain parens, not commas.
    {
      size_t start = 0;
      std::string_view text = rest;
      while (start < text.size()) {
        size_t comma = text.find(',', start);
        if (comma == std::string_view::npos) {
          comma = text.size();
        }
        std::string_view field = StripWhitespace(text.substr(start, comma - start));
        if (!field.empty()) {
          ops.push_back(field);
        }
        start = comma + 1;
      }
    }
    Emit(mnemonic, ops);
  }

  void Need(const std::vector<std::string_view>& ops, size_t n) const {
    if (ops.size() != n) {
      Fail(StrFormat("expected %zu operands, got %zu", n, ops.size()));
    }
  }

  void Emit(std::string_view m, const std::vector<std::string_view>& ops) {
    // --- Pseudo-instructions ---
    if (m == "nop") {
      Need(ops, 0);
      EmitWord(0);
      return;
    }
    if (m == "move") {
      Need(ops, 2);
      EmitWord(EncodeRType(Op::kAddu, ParseReg(ops[1]), kZero, ParseReg(ops[0]), 0));
      return;
    }
    if (m == "li") {
      Need(ops, 2);
      uint8_t rt = ParseReg(ops[0]);
      int64_t value = ParseIntOrFail(ops[1]);
      if (value < -(int64_t{1} << 31) || value > 0xffffffffLL) {
        Fail("li immediate out of 32-bit range");
      }
      uint32_t v = static_cast<uint32_t>(value);
      if (v <= 0xffff) {
        EmitWord(EncodeIType(Op::kOri, kZero, rt, static_cast<uint16_t>(v)));
      } else if (value >= -32768 && value < 0) {
        EmitWord(EncodeIType(Op::kAddiu, kZero, rt, static_cast<uint16_t>(v & 0xffff)));
      } else {
        EmitWord(EncodeIType(Op::kLui, 0, rt, static_cast<uint16_t>(v >> 16)));
        if ((v & 0xffff) != 0) {
          EmitWord(EncodeIType(Op::kOri, rt, rt, static_cast<uint16_t>(v & 0xffff)));
        }
      }
      return;
    }
    if (m == "la") {
      Need(ops, 2);
      EmitLoadAddress(ParseReg(ops[0]), ParseSymbolRef(ops[1]));
      return;
    }
    if (m == "b") {
      Need(ops, 1);
      EmitBranch(Op::kBeq, kZero, kZero, ops[0]);
      return;
    }
    if (m == "beqz") {
      Need(ops, 2);
      EmitBranch(Op::kBeq, ParseReg(ops[0]), kZero, ops[1]);
      return;
    }
    if (m == "bnez") {
      Need(ops, 2);
      EmitBranch(Op::kBne, ParseReg(ops[0]), kZero, ops[1]);
      return;
    }

    // --- Loads and stores ---
    struct MemOp {
      const char* name;
      Op op;
    };
    static constexpr MemOp kMemOps[] = {
        {"lb", Op::kLb}, {"lh", Op::kLh}, {"lw", Op::kLw},  {"lbu", Op::kLbu},
        {"lhu", Op::kLhu}, {"sb", Op::kSb}, {"sh", Op::kSh}, {"sw", Op::kSw},
    };
    for (const MemOp& mo : kMemOps) {
      if (m == mo.name) {
        Need(ops, 2);
        uint8_t rt = ParseReg(ops[0]);
        MemOperand mem = ParseMemOperand(ops[1]);
        if (mem.direct) {
          EmitWord(EncodeIType(mo.op, mem.base, rt,
                               static_cast<uint16_t>(mem.offset & 0xffff)));
        } else {
          // Symbol form: materialize the address in $at.
          EmitLoadAddress(kAt, mem.ref);
          EmitWord(EncodeIType(mo.op, kAt, rt, 0));
        }
        return;
      }
    }

    // --- Three-register ALU ---
    struct RROp {
      const char* name;
      Op op;
    };
    static constexpr RROp kRROps[] = {
        {"add", Op::kAdd},   {"addu", Op::kAddu}, {"sub", Op::kSub}, {"subu", Op::kSubu},
        {"and", Op::kAnd},   {"or", Op::kOr},     {"xor", Op::kXor}, {"nor", Op::kNor},
        {"slt", Op::kSlt},   {"sltu", Op::kSltu},
    };
    for (const RROp& ro : kRROps) {
      if (m == ro.name) {
        Need(ops, 3);
        EmitWord(EncodeRType(ro.op, ParseReg(ops[1]), ParseReg(ops[2]), ParseReg(ops[0]), 0));
        return;
      }
    }

    // --- Shifts ---
    if (m == "sll" || m == "srl" || m == "sra") {
      Need(ops, 3);
      Op op = (m == "sll") ? Op::kSll : (m == "srl") ? Op::kSrl : Op::kSra;
      int64_t sh = ParseIntOrFail(ops[2]);
      if (sh < 0 || sh > 31) {
        Fail("shift amount out of range");
      }
      EmitWord(EncodeRType(op, 0, ParseReg(ops[1]), ParseReg(ops[0]),
                           static_cast<uint8_t>(sh)));
      return;
    }
    if (m == "sllv" || m == "srlv" || m == "srav") {
      Need(ops, 3);
      Op op = (m == "sllv") ? Op::kSllv : (m == "srlv") ? Op::kSrlv : Op::kSrav;
      EmitWord(EncodeRType(op, ParseReg(ops[2]), ParseReg(ops[1]), ParseReg(ops[0]), 0));
      return;
    }

    // --- Immediate ALU ---
    struct IOp {
      const char* name;
      Op op;
      bool unsigned_imm;
    };
    static constexpr IOp kIOps[] = {
        {"addi", Op::kAddi, false}, {"addiu", Op::kAddiu, false}, {"slti", Op::kSlti, false},
        {"sltiu", Op::kSltiu, false}, {"andi", Op::kAndi, true},  {"ori", Op::kOri, true},
        {"xori", Op::kXori, true},
    };
    for (const IOp& io : kIOps) {
      if (m == io.name) {
        Need(ops, 3);
        int64_t imm = ParseIntOrFail(ops[2]);
        if (io.unsigned_imm ? (imm < 0 || imm > 0xffff) : (imm < -32768 || imm > 32767)) {
          Fail("immediate out of 16-bit range");
        }
        EmitWord(EncodeIType(io.op, ParseReg(ops[1]), ParseReg(ops[0]),
                             static_cast<uint16_t>(imm & 0xffff)));
        return;
      }
    }
    if (m == "lui") {
      Need(ops, 2);
      int64_t imm = ParseIntOrFail(ops[1]);
      if (imm < 0 || imm > 0xffff) {
        Fail("lui immediate out of range");
      }
      EmitWord(EncodeIType(Op::kLui, 0, ParseReg(ops[0]), static_cast<uint16_t>(imm)));
      return;
    }

    // --- Multiply/divide unit ---
    if (m == "mult" || m == "multu" || m == "div" || m == "divu") {
      Need(ops, 2);
      Op op = (m == "mult") ? Op::kMult
              : (m == "multu") ? Op::kMultu
              : (m == "div") ? Op::kDiv
                             : Op::kDivu;
      EmitWord(EncodeRType(op, ParseReg(ops[0]), ParseReg(ops[1]), 0, 0));
      return;
    }
    if (m == "mfhi" || m == "mflo") {
      Need(ops, 1);
      EmitWord(EncodeRType(m == "mfhi" ? Op::kMfhi : Op::kMflo, 0, 0, ParseReg(ops[0]), 0));
      return;
    }
    if (m == "mthi" || m == "mtlo") {
      Need(ops, 1);
      EmitWord(EncodeRType(m == "mthi" ? Op::kMthi : Op::kMtlo, ParseReg(ops[0]), 0, 0, 0));
      return;
    }

    // --- Branches ---
    if (m == "beq" || m == "bne") {
      Need(ops, 3);
      EmitBranch(m == "beq" ? Op::kBeq : Op::kBne, ParseReg(ops[0]), ParseReg(ops[1]), ops[2]);
      return;
    }
    if (m == "blez" || m == "bgtz" || m == "bltz" || m == "bgez") {
      Need(ops, 2);
      Op op = (m == "blez") ? Op::kBlez
              : (m == "bgtz") ? Op::kBgtz
              : (m == "bltz") ? Op::kBltz
                              : Op::kBgez;
      EmitBranch(op, ParseReg(ops[0]), 0, ops[1]);
      return;
    }

    // --- Jumps ---
    if (m == "j" || m == "jal") {
      Need(ops, 1);
      AddTextReloc(RelocType::kJump26, ParseSymbolRef(ops[0]));
      EmitWord(EncodeJType(m == "j" ? Op::kJ : Op::kJal, 0));
      return;
    }
    if (m == "jr") {
      Need(ops, 1);
      EmitWord(EncodeRType(Op::kJr, ParseReg(ops[0]), 0, 0, 0));
      return;
    }
    if (m == "jalr") {
      if (ops.size() == 1) {
        EmitWord(EncodeRType(Op::kJalr, ParseReg(ops[0]), 0, kRa, 0));
      } else {
        Need(ops, 2);
        EmitWord(EncodeRType(Op::kJalr, ParseReg(ops[1]), 0, ParseReg(ops[0]), 0));
      }
      return;
    }

    // --- Traps ---
    if (m == "syscall" || m == "break") {
      uint32_t code = 0;
      if (ops.size() == 1) {
        code = static_cast<uint32_t>(ParseIntOrFail(ops[0]));
      } else {
        Need(ops, 0);
      }
      EmitWord(EncodeTrap(m == "syscall" ? Op::kSyscall : Op::kBreak, code));
      return;
    }

    // --- COP0 ---
    if (m == "mfc0" || m == "mtc0") {
      Need(ops, 2);
      uint8_t rt = ParseReg(ops[0]);
      std::string_view cr = StripWhitespace(ops[1]);
      if (!cr.empty() && cr[0] == '$') {
        cr.remove_prefix(1);
      }
      uint8_t rd;
      if (auto named = ParseCop0Name(cr)) {
        rd = *named;
      } else if (!cr.empty() && cr[0] >= '0' && cr[0] <= '9') {
        rd = static_cast<uint8_t>(ParseIntOrFail(cr));
      } else {
        Fail(StrFormat("bad cop0 register '%s'", std::string(cr).c_str()));
        return;
      }
      EmitWord(EncodeCop0(m == "mfc0" ? Op::kMfc0 : Op::kMtc0, rt, rd));
      return;
    }
    if (m == "tlbr" || m == "tlbwi" || m == "tlbwr" || m == "tlbp" || m == "rfe") {
      Need(ops, 0);
      Op op = (m == "tlbr") ? Op::kTlbr
              : (m == "tlbwi") ? Op::kTlbwi
              : (m == "tlbwr") ? Op::kTlbwr
              : (m == "tlbp") ? Op::kTlbp
                              : Op::kRfe;
      EmitWord(EncodeCop0(op, 0, 0));
      return;
    }

    Fail(StrFormat("unknown mnemonic '%s'", std::string(m).c_str()));
  }

  // ---- Branch resolution ----
  struct BranchFixup {
    uint32_t offset;  // Text offset of the branch instruction.
    std::string label;
    int line;
  };

  void ApplyBranchFixups() {
    // Build a local symbol table (text symbols only).
    std::map<std::string, uint32_t> text_symbols;
    for (const Symbol& s : obj_.symbols) {
      if (s.section == SectionId::kText) {
        text_symbols[s.name] = s.value;
      }
    }
    for (const BranchFixup& fix : branch_fixups_) {
      auto it = text_symbols.find(fix.label);
      if (it == text_symbols.end()) {
        throw Error(StrFormat("%s:%d: branch to undefined or non-local label '%s'",
                              std::string(source_name_).c_str(), fix.line, fix.label.c_str()));
      }
      int64_t delta = (static_cast<int64_t>(it->second) - (fix.offset + 4)) / 4;
      if (delta < -32768 || delta > 32767) {
        throw Error(StrFormat("%s:%d: branch to '%s' out of range", std::string(source_name_).c_str(),
                              fix.line, fix.label.c_str()));
      }
      uint32_t word = obj_.TextWord(fix.offset);
      obj_.SetTextWord(fix.offset, (word & 0xffff0000u) | (static_cast<uint32_t>(delta) & 0xffffu));
      leaders_.insert(it->second);
    }
  }

  // ---- Basic-block identification ----
  void ComputeBlocks() {
    uint32_t n_words = obj_.NumTextWords();
    if (n_words == 0) {
      return;
    }
    leaders_.insert(0);
    for (uint32_t off = 0; off < n_words * 4; off += 4) {
      Inst inst = Decode(obj_.TextWord(off));
      if (EndsBasicBlock(inst.op)) {
        // The instruction after the delay slot (or after a trap) starts a
        // new block.
        uint32_t next = off + (HasDelaySlot(inst.op) ? 8 : 4);
        if (next < n_words * 4) {
          leaders_.insert(next);
        }
      }
    }
    // Region flags: replay the per-instruction region state.  We tracked the
    // region directives during emission via flag_changes_.
    for (uint32_t leader : leaders_) {
      BlockAnnotation b;
      b.offset = leader;
      b.flags = RegionFlagsAt(leader);
      auto it = point_flags_.find(leader);
      if (it != point_flags_.end()) {
        b.flags |= it->second;
      }
      obj_.blocks.push_back(b);
    }
  }

  uint32_t RegionFlagsAt(uint32_t offset) const {
    uint32_t flags = 0;
    for (const auto& [change_offset, change_flags] : flag_changes_) {
      if (change_offset > offset) {
        break;
      }
      flags = change_flags;
    }
    return flags;
  }

  std::string_view source_name_;
  std::string_view source_;
  int line_number_ = 0;

  ObjectFile obj_;
  SectionId section_ = SectionId::kText;
  std::set<std::string> globals_;
  std::set<std::string> defined_;
  std::vector<BranchFixup> branch_fixups_;
  std::set<uint32_t> leaders_;
  // Region tracing flags, recorded as (text offset, flags-from-here) pairs.
  uint32_t region_flags_rep_ = 0;
  std::vector<std::pair<uint32_t, uint32_t>> flag_changes_{{0, 0}};
  // Point flags (idle start/stop) keyed by text offset.
  std::map<uint32_t, uint32_t> point_flags_;

  // Intercept region flag changes so we can replay them by offset.
  struct RegionFlagsProxy {
    Assembler* owner;
    RegionFlagsProxy& operator|=(uint32_t bits) {
      owner->region_flags_rep_ |= bits;
      owner->flag_changes_.emplace_back(static_cast<uint32_t>(owner->obj_.text.size()),
                                        owner->region_flags_rep_);
      return *this;
    }
    RegionFlagsProxy& operator&=(uint32_t bits) {
      owner->region_flags_rep_ &= bits;
      owner->flag_changes_.emplace_back(static_cast<uint32_t>(owner->obj_.text.size()),
                                        owner->region_flags_rep_);
      return *this;
    }
  };
  RegionFlagsProxy region_flags_{this};
};

}  // namespace

ObjectFile Assemble(std::string_view source_name, std::string_view source) {
  return Assembler(source_name, source).Run();
}

}  // namespace wrl
