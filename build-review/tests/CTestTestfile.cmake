# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/support_test[1]_include.cmake")
include("/root/repo/build-review/tests/json_test[1]_include.cmake")
include("/root/repo/build-review/tests/stats_test[1]_include.cmake")
include("/root/repo/build-review/tests/isa_test[1]_include.cmake")
include("/root/repo/build-review/tests/assembler_test[1]_include.cmake")
include("/root/repo/build-review/tests/linker_test[1]_include.cmake")
include("/root/repo/build-review/tests/memsys_test[1]_include.cmake")
include("/root/repo/build-review/tests/machine_test[1]_include.cmake")
include("/root/repo/build-review/tests/epoxie_test[1]_include.cmake")
include("/root/repo/build-review/tests/kernel_test[1]_include.cmake")
include("/root/repo/build-review/tests/traced_system_test[1]_include.cmake")
include("/root/repo/build-review/tests/sim_test[1]_include.cmake")
include("/root/repo/build-review/tests/workload_test[1]_include.cmake")
include("/root/repo/build-review/tests/parser_test[1]_include.cmake")
include("/root/repo/build-review/tests/parser_defense_test[1]_include.cmake")
include("/root/repo/build-review/tests/replay_test[1]_include.cmake")
include("/root/repo/build-review/tests/fastpath_test[1]_include.cmake")
include("/root/repo/build-review/tests/verify_test[1]_include.cmake")
include("/root/repo/build-review/tests/prof_test[1]_include.cmake")
include("/root/repo/build-review/tests/pipeline_test[1]_include.cmake")
