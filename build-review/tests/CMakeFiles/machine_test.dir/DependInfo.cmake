
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/machine_test.cc" "tests/CMakeFiles/machine_test.dir/machine_test.cc.o" "gcc" "tests/CMakeFiles/machine_test.dir/machine_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/mach/CMakeFiles/wrl_mach.dir/DependInfo.cmake"
  "/root/repo/build-review/src/asm/CMakeFiles/wrl_asm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/memsys/CMakeFiles/wrl_memsys.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/wrl_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obj/CMakeFiles/wrl_obj.dir/DependInfo.cmake"
  "/root/repo/build-review/src/isa/CMakeFiles/wrl_isa.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/wrl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
