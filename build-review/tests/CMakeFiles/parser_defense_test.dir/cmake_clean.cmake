file(REMOVE_RECURSE
  "CMakeFiles/parser_defense_test.dir/parser_defense_test.cc.o"
  "CMakeFiles/parser_defense_test.dir/parser_defense_test.cc.o.d"
  "parser_defense_test"
  "parser_defense_test.pdb"
  "parser_defense_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parser_defense_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
