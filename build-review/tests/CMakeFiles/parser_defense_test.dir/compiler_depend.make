# Empty compiler generated dependencies file for parser_defense_test.
# This may be replaced when dependencies are built.
