# Empty dependencies file for traced_system_test.
# This may be replaced when dependencies are built.
