file(REMOVE_RECURSE
  "CMakeFiles/traced_system_test.dir/traced_system_test.cc.o"
  "CMakeFiles/traced_system_test.dir/traced_system_test.cc.o.d"
  "traced_system_test"
  "traced_system_test.pdb"
  "traced_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traced_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
