# Empty dependencies file for memsys_test.
# This may be replaced when dependencies are built.
