file(REMOVE_RECURSE
  "CMakeFiles/memsys_test.dir/memsys_test.cc.o"
  "CMakeFiles/memsys_test.dir/memsys_test.cc.o.d"
  "memsys_test"
  "memsys_test.pdb"
  "memsys_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsys_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
