file(REMOVE_RECURSE
  "CMakeFiles/epoxie_test.dir/epoxie_test.cc.o"
  "CMakeFiles/epoxie_test.dir/epoxie_test.cc.o.d"
  "epoxie_test"
  "epoxie_test.pdb"
  "epoxie_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epoxie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
