# Empty compiler generated dependencies file for epoxie_test.
# This may be replaced when dependencies are built.
