
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2.cc" "bench/CMakeFiles/bench_table2.dir/bench_table2.cc.o" "gcc" "bench/CMakeFiles/bench_table2.dir/bench_table2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/harness/CMakeFiles/wrl_harness.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workloads/CMakeFiles/wrl_workloads.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/wrl_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/kernel/CMakeFiles/wrl_kernel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/asm/CMakeFiles/wrl_asm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/prof/CMakeFiles/wrl_prof.dir/DependInfo.cmake"
  "/root/repo/build-review/src/trace/CMakeFiles/wrl_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/epoxie/CMakeFiles/wrl_epoxie.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mach/CMakeFiles/wrl_mach.dir/DependInfo.cmake"
  "/root/repo/build-review/src/memsys/CMakeFiles/wrl_memsys.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/wrl_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obj/CMakeFiles/wrl_obj.dir/DependInfo.cmake"
  "/root/repo/build-review/src/isa/CMakeFiles/wrl_isa.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/wrl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
