file(REMOVE_RECURSE
  "CMakeFiles/bench_dilation.dir/bench_dilation.cc.o"
  "CMakeFiles/bench_dilation.dir/bench_dilation.cc.o.d"
  "bench_dilation"
  "bench_dilation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dilation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
