# Empty dependencies file for bench_dilation.
# This may be replaced when dependencies are built.
