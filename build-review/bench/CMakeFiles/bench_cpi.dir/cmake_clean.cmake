file(REMOVE_RECURSE
  "CMakeFiles/bench_cpi.dir/bench_cpi.cc.o"
  "CMakeFiles/bench_cpi.dir/bench_cpi.cc.o.d"
  "bench_cpi"
  "bench_cpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
