# Empty dependencies file for bench_cpi.
# This may be replaced when dependencies are built.
