# Empty dependencies file for bench_text_expansion.
# This may be replaced when dependencies are built.
