file(REMOVE_RECURSE
  "CMakeFiles/bench_text_expansion.dir/bench_text_expansion.cc.o"
  "CMakeFiles/bench_text_expansion.dir/bench_text_expansion.cc.o.d"
  "bench_text_expansion"
  "bench_text_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_text_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
