file(REMOVE_RECURSE
  "CMakeFiles/bench_buffer.dir/bench_buffer.cc.o"
  "CMakeFiles/bench_buffer.dir/bench_buffer.cc.o.d"
  "bench_buffer"
  "bench_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
