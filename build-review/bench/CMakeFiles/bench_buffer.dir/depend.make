# Empty dependencies file for bench_buffer.
# This may be replaced when dependencies are built.
