file(REMOVE_RECURSE
  "CMakeFiles/wrlprof.dir/wrlprof.cc.o"
  "CMakeFiles/wrlprof.dir/wrlprof.cc.o.d"
  "wrlprof"
  "wrlprof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrlprof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
