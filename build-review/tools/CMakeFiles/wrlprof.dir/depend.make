# Empty dependencies file for wrlprof.
# This may be replaced when dependencies are built.
