# Empty compiler generated dependencies file for wrlbench_diff.
# This may be replaced when dependencies are built.
