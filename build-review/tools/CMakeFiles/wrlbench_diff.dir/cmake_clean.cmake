file(REMOVE_RECURSE
  "CMakeFiles/wrlbench_diff.dir/wrlbench_diff.cc.o"
  "CMakeFiles/wrlbench_diff.dir/wrlbench_diff.cc.o.d"
  "wrlbench_diff"
  "wrlbench_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrlbench_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
