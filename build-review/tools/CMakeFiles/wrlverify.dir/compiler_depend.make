# Empty compiler generated dependencies file for wrlverify.
# This may be replaced when dependencies are built.
