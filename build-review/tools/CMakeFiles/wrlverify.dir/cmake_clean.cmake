file(REMOVE_RECURSE
  "CMakeFiles/wrlverify.dir/wrlverify.cc.o"
  "CMakeFiles/wrlverify.dir/wrlverify.cc.o.d"
  "wrlverify"
  "wrlverify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrlverify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
