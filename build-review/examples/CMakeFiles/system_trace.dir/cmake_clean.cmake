file(REMOVE_RECURSE
  "CMakeFiles/system_trace.dir/system_trace.cpp.o"
  "CMakeFiles/system_trace.dir/system_trace.cpp.o.d"
  "system_trace"
  "system_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
