# Empty dependencies file for system_trace.
# This may be replaced when dependencies are built.
