file(REMOVE_RECURSE
  "CMakeFiles/tlb_study.dir/tlb_study.cpp.o"
  "CMakeFiles/tlb_study.dir/tlb_study.cpp.o.d"
  "tlb_study"
  "tlb_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlb_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
