# Empty dependencies file for tlb_study.
# This may be replaced when dependencies are built.
