# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("stats")
subdirs("isa")
subdirs("obj")
subdirs("asm")
subdirs("mach")
subdirs("memsys")
subdirs("epoxie")
subdirs("verify")
subdirs("trace")
subdirs("kernel")
subdirs("sim")
subdirs("prof")
subdirs("workloads")
subdirs("harness")
