file(REMOVE_RECURSE
  "CMakeFiles/wrl_epoxie.dir/epoxie.cc.o"
  "CMakeFiles/wrl_epoxie.dir/epoxie.cc.o.d"
  "libwrl_epoxie.a"
  "libwrl_epoxie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrl_epoxie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
