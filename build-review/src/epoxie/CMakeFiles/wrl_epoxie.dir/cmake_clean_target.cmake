file(REMOVE_RECURSE
  "libwrl_epoxie.a"
)
