# Empty dependencies file for wrl_epoxie.
# This may be replaced when dependencies are built.
