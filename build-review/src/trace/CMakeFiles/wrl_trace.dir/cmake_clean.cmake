file(REMOVE_RECURSE
  "CMakeFiles/wrl_trace.dir/chunk_ring.cc.o"
  "CMakeFiles/wrl_trace.dir/chunk_ring.cc.o.d"
  "CMakeFiles/wrl_trace.dir/parser.cc.o"
  "CMakeFiles/wrl_trace.dir/parser.cc.o.d"
  "CMakeFiles/wrl_trace.dir/support_asm.cc.o"
  "CMakeFiles/wrl_trace.dir/support_asm.cc.o.d"
  "CMakeFiles/wrl_trace.dir/trace_log.cc.o"
  "CMakeFiles/wrl_trace.dir/trace_log.cc.o.d"
  "libwrl_trace.a"
  "libwrl_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrl_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
