
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/chunk_ring.cc" "src/trace/CMakeFiles/wrl_trace.dir/chunk_ring.cc.o" "gcc" "src/trace/CMakeFiles/wrl_trace.dir/chunk_ring.cc.o.d"
  "/root/repo/src/trace/parser.cc" "src/trace/CMakeFiles/wrl_trace.dir/parser.cc.o" "gcc" "src/trace/CMakeFiles/wrl_trace.dir/parser.cc.o.d"
  "/root/repo/src/trace/support_asm.cc" "src/trace/CMakeFiles/wrl_trace.dir/support_asm.cc.o" "gcc" "src/trace/CMakeFiles/wrl_trace.dir/support_asm.cc.o.d"
  "/root/repo/src/trace/trace_log.cc" "src/trace/CMakeFiles/wrl_trace.dir/trace_log.cc.o" "gcc" "src/trace/CMakeFiles/wrl_trace.dir/trace_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/epoxie/CMakeFiles/wrl_epoxie.dir/DependInfo.cmake"
  "/root/repo/build-review/src/isa/CMakeFiles/wrl_isa.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mach/CMakeFiles/wrl_mach.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/wrl_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/wrl_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obj/CMakeFiles/wrl_obj.dir/DependInfo.cmake"
  "/root/repo/build-review/src/memsys/CMakeFiles/wrl_memsys.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
