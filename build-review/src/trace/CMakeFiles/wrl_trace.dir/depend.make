# Empty dependencies file for wrl_trace.
# This may be replaced when dependencies are built.
