file(REMOVE_RECURSE
  "libwrl_trace.a"
)
