# Empty compiler generated dependencies file for wrl_obj.
# This may be replaced when dependencies are built.
