file(REMOVE_RECURSE
  "libwrl_obj.a"
)
