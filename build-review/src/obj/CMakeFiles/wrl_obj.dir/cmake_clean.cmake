file(REMOVE_RECURSE
  "CMakeFiles/wrl_obj.dir/object_file.cc.o"
  "CMakeFiles/wrl_obj.dir/object_file.cc.o.d"
  "libwrl_obj.a"
  "libwrl_obj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrl_obj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
