file(REMOVE_RECURSE
  "CMakeFiles/wrl_stats.dir/events.cc.o"
  "CMakeFiles/wrl_stats.dir/events.cc.o.d"
  "CMakeFiles/wrl_stats.dir/stats.cc.o"
  "CMakeFiles/wrl_stats.dir/stats.cc.o.d"
  "libwrl_stats.a"
  "libwrl_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrl_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
