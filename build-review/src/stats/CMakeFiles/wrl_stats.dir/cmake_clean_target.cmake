file(REMOVE_RECURSE
  "libwrl_stats.a"
)
