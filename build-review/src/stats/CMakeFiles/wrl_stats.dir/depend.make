# Empty dependencies file for wrl_stats.
# This may be replaced when dependencies are built.
