# Empty compiler generated dependencies file for wrl_prof.
# This may be replaced when dependencies are built.
