file(REMOVE_RECURSE
  "CMakeFiles/wrl_prof.dir/prof.cc.o"
  "CMakeFiles/wrl_prof.dir/prof.cc.o.d"
  "libwrl_prof.a"
  "libwrl_prof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrl_prof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
