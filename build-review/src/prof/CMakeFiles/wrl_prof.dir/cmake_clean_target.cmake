file(REMOVE_RECURSE
  "libwrl_prof.a"
)
