# Empty compiler generated dependencies file for wrl_support.
# This may be replaced when dependencies are built.
