file(REMOVE_RECURSE
  "CMakeFiles/wrl_support.dir/error.cc.o"
  "CMakeFiles/wrl_support.dir/error.cc.o.d"
  "CMakeFiles/wrl_support.dir/json.cc.o"
  "CMakeFiles/wrl_support.dir/json.cc.o.d"
  "CMakeFiles/wrl_support.dir/strings.cc.o"
  "CMakeFiles/wrl_support.dir/strings.cc.o.d"
  "libwrl_support.a"
  "libwrl_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrl_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
