file(REMOVE_RECURSE
  "libwrl_support.a"
)
