file(REMOVE_RECURSE
  "libwrl_sim.a"
)
