# Empty compiler generated dependencies file for wrl_sim.
# This may be replaced when dependencies are built.
