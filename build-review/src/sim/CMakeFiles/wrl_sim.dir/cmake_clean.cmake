file(REMOVE_RECURSE
  "CMakeFiles/wrl_sim.dir/predictor.cc.o"
  "CMakeFiles/wrl_sim.dir/predictor.cc.o.d"
  "CMakeFiles/wrl_sim.dir/tlb_sim.cc.o"
  "CMakeFiles/wrl_sim.dir/tlb_sim.cc.o.d"
  "libwrl_sim.a"
  "libwrl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
