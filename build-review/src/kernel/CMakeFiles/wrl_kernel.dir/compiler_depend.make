# Empty compiler generated dependencies file for wrl_kernel.
# This may be replaced when dependencies are built.
