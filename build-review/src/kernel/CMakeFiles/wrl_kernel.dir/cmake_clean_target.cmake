file(REMOVE_RECURSE
  "libwrl_kernel.a"
)
