file(REMOVE_RECURSE
  "CMakeFiles/wrl_kernel.dir/kernel_asm.cc.o"
  "CMakeFiles/wrl_kernel.dir/kernel_asm.cc.o.d"
  "CMakeFiles/wrl_kernel.dir/kernel_sys_asm.cc.o"
  "CMakeFiles/wrl_kernel.dir/kernel_sys_asm.cc.o.d"
  "CMakeFiles/wrl_kernel.dir/system_build.cc.o"
  "CMakeFiles/wrl_kernel.dir/system_build.cc.o.d"
  "libwrl_kernel.a"
  "libwrl_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrl_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
