file(REMOVE_RECURSE
  "CMakeFiles/wrl_isa.dir/isa.cc.o"
  "CMakeFiles/wrl_isa.dir/isa.cc.o.d"
  "libwrl_isa.a"
  "libwrl_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrl_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
