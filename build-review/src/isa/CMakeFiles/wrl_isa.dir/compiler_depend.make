# Empty compiler generated dependencies file for wrl_isa.
# This may be replaced when dependencies are built.
