file(REMOVE_RECURSE
  "libwrl_isa.a"
)
