file(REMOVE_RECURSE
  "CMakeFiles/wrl_harness.dir/bare_runtime.cc.o"
  "CMakeFiles/wrl_harness.dir/bare_runtime.cc.o.d"
  "CMakeFiles/wrl_harness.dir/experiment.cc.o"
  "CMakeFiles/wrl_harness.dir/experiment.cc.o.d"
  "CMakeFiles/wrl_harness.dir/replay_engine.cc.o"
  "CMakeFiles/wrl_harness.dir/replay_engine.cc.o.d"
  "CMakeFiles/wrl_harness.dir/report.cc.o"
  "CMakeFiles/wrl_harness.dir/report.cc.o.d"
  "libwrl_harness.a"
  "libwrl_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrl_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
