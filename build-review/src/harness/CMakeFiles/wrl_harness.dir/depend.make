# Empty dependencies file for wrl_harness.
# This may be replaced when dependencies are built.
