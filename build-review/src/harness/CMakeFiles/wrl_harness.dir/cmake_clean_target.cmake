file(REMOVE_RECURSE
  "libwrl_harness.a"
)
