file(REMOVE_RECURSE
  "CMakeFiles/wrl_verify.dir/verify.cc.o"
  "CMakeFiles/wrl_verify.dir/verify.cc.o.d"
  "libwrl_verify.a"
  "libwrl_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrl_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
