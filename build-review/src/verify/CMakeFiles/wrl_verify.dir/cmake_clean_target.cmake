file(REMOVE_RECURSE
  "libwrl_verify.a"
)
