# Empty dependencies file for wrl_verify.
# This may be replaced when dependencies are built.
