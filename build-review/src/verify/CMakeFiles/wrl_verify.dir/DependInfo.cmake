
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verify/verify.cc" "src/verify/CMakeFiles/wrl_verify.dir/verify.cc.o" "gcc" "src/verify/CMakeFiles/wrl_verify.dir/verify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/epoxie/CMakeFiles/wrl_epoxie.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obj/CMakeFiles/wrl_obj.dir/DependInfo.cmake"
  "/root/repo/build-review/src/isa/CMakeFiles/wrl_isa.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/wrl_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/wrl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
