# Empty compiler generated dependencies file for wrl_workloads.
# This may be replaced when dependencies are built.
