file(REMOVE_RECURSE
  "CMakeFiles/wrl_workloads.dir/workloads.cc.o"
  "CMakeFiles/wrl_workloads.dir/workloads.cc.o.d"
  "libwrl_workloads.a"
  "libwrl_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrl_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
