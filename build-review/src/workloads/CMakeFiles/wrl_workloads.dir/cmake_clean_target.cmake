file(REMOVE_RECURSE
  "libwrl_workloads.a"
)
