file(REMOVE_RECURSE
  "libwrl_mach.a"
)
