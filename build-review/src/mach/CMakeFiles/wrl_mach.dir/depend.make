# Empty dependencies file for wrl_mach.
# This may be replaced when dependencies are built.
