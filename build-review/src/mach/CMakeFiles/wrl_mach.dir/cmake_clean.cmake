file(REMOVE_RECURSE
  "CMakeFiles/wrl_mach.dir/devices.cc.o"
  "CMakeFiles/wrl_mach.dir/devices.cc.o.d"
  "CMakeFiles/wrl_mach.dir/machine.cc.o"
  "CMakeFiles/wrl_mach.dir/machine.cc.o.d"
  "CMakeFiles/wrl_mach.dir/tlb.cc.o"
  "CMakeFiles/wrl_mach.dir/tlb.cc.o.d"
  "libwrl_mach.a"
  "libwrl_mach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrl_mach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
