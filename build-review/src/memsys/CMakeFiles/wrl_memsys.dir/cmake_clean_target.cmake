file(REMOVE_RECURSE
  "libwrl_memsys.a"
)
