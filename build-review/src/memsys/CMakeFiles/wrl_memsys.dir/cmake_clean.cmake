file(REMOVE_RECURSE
  "CMakeFiles/wrl_memsys.dir/memsys.cc.o"
  "CMakeFiles/wrl_memsys.dir/memsys.cc.o.d"
  "libwrl_memsys.a"
  "libwrl_memsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrl_memsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
