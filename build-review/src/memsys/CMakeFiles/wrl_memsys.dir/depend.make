# Empty dependencies file for wrl_memsys.
# This may be replaced when dependencies are built.
