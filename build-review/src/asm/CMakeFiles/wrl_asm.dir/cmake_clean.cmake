file(REMOVE_RECURSE
  "CMakeFiles/wrl_asm.dir/assembler.cc.o"
  "CMakeFiles/wrl_asm.dir/assembler.cc.o.d"
  "libwrl_asm.a"
  "libwrl_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrl_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
