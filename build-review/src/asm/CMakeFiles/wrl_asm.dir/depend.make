# Empty dependencies file for wrl_asm.
# This may be replaced when dependencies are built.
