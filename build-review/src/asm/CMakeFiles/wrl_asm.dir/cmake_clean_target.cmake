file(REMOVE_RECURSE
  "libwrl_asm.a"
)
