// System tracing end to end: boot the traced WRTX system (kernel + a file
// workload), collect the complete interleaved trace — user and kernel —
// through the analysis pipeline, and summarize what the paper's Figure 1
// architecture delivers.
//
//   $ ./build/examples/system_trace [ultrix|mach]
#include <cstdio>
#include <cstring>

#include "kernel/system_build.h"
#include "trace/parser.h"

using namespace wrl;

int main(int argc, char** argv) {
  Personality personality =
      (argc > 1 && std::strcmp(argv[1], "mach") == 0) ? Personality::kMach : Personality::kUltrix;

  SystemConfig config;
  config.personality = personality;
  config.tracing = true;
  config.clock_period = 200000 * 15;  // 1/15th rate (paper §4.1).
  if (personality == Personality::kMach) {
    config.policy = PagePolicy::kScrambled;
  }
  std::vector<uint8_t> content(24000);
  for (size_t i = 0; i < content.size(); ++i) {
    content[i] = static_cast<uint8_t>('A' + (i % 23));
  }
  config.files = {{"input", content, 0}};
  config.program_source = R"(
        .globl main
main:
        addiu $sp, $sp, -12
        sw   $ra, 8($sp)
        la   $a0, fname
        jal  open
        nop
        move $a0, $v0
        la   $a1, buf
        li   $a2, 24000
        jal  read
        nop
        # Checksum the data.
        la   $t0, buf
        move $t1, $v0
        li   $v0, 0
cs:     blez $t1, csdone
        nop
        lbu  $t2, 0($t0)
        addu $v0, $v0, $t2
        addiu $t0, $t0, 1
        b    cs
        addiu $t1, $t1, -1
csdone:
        lw   $ra, 8($sp)
        jr   $ra
        addiu $sp, $sp, 12
        .data
fname:  .asciiz "input"
        .bss
buf:    .space 24576
)";

  printf("booting the traced %s system...\n",
         personality == Personality::kMach ? "Mach 3.0 (microkernel + UNIX server)" : "Ultrix");
  auto sys = BuildSystem(config);

  TraceParser parser(&sys->kernel_table());
  parser.SetUserTable(1, &sys->user_table());
  if (personality == Personality::kMach) {
    parser.SetUserTable(2, &sys->server_table());
  }
  parser.SetInitialContext(kKernelPid);

  uint64_t kernel_entries = 0;
  parser.SetMetaSink([&](MarkerCode code, uint32_t /*operand*/) {
    if (code == kMarkKernelEnter) {
      ++kernel_entries;
    }
  });
  sys->SetTraceSink([&parser](const uint32_t* w, size_t n) { parser.Feed(w, n); });

  RunResult r = sys->Run(2'000'000'000ull);
  parser.Finish();
  const TraceParserStats& s = parser.stats();

  printf("halted: %s, workload exit code %u (checksum)\n", r.halted ? "yes" : "NO",
         sys->ProcessExitCode(1));
  printf("\n--- trace summary (original-binary addresses) ---\n");
  printf("trace words drained:   %llu\n",
         static_cast<unsigned long long>(sys->trace_words_drained()));
  printf("basic blocks:          %llu\n", static_cast<unsigned long long>(s.blocks));
  printf("references:            %llu (%llu ifetch, %llu load, %llu store)\n",
         static_cast<unsigned long long>(s.refs), static_cast<unsigned long long>(s.ifetches),
         static_cast<unsigned long long>(s.loads), static_cast<unsigned long long>(s.stores));
  printf("user instructions:     %llu\n", static_cast<unsigned long long>(s.user_ifetches));
  printf("kernel instructions:   %llu (idle-loop: %llu)\n",
         static_cast<unsigned long long>(s.kernel_ifetches),
         static_cast<unsigned long long>(s.idle_instructions));
  printf("kernel entries:        %llu (each drained the per-process buffer)\n",
         static_cast<unsigned long long>(kernel_entries));
  printf("analysis mode switches:%llu\n", static_cast<unsigned long long>(sys->AnalysisSwitches()));
  printf("validation errors:     %llu\n",
         static_cast<unsigned long long>(s.validation_errors));
  printf("kernel UTLB counter:   %llu (the handler itself is untraced)\n",
         static_cast<unsigned long long>(sys->UtlbMissCount()));
  if (s.validation_errors > 0) {
    fprintf(stderr, "*** WARNING: %llu trace validation errors — the reconstructed trace "
            "is suspect ***\n",
            static_cast<unsigned long long>(s.validation_errors));
    return 1;
  }
  return 0;
}
