// A TLB study in the style the paper's traces enabled (its reference [9],
// "A Simulation Based Study of TLB Performance"): sweep the simulated TLB
// size over one workload's trace and watch the miss curve, then compare the
// 64-entry point against the real kernel counter.
//
//   $ ./build/examples/tlb_study [--json report.json]
//
// With --json the run emits a wrlstats/1 report: the full counter-registry
// snapshot of the traced and measured systems, the sweep's miss curve, and
// the event timeline (load the file in chrome://tracing or ui.perfetto.dev).
#include <cstdio>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "kernel/system_build.h"
#include "sim/tlb_sim.h"
#include "stats/events.h"
#include "stats/stats.h"
#include "support/json.h"
#include "trace/parser.h"
#include "workloads/workloads.h"

using namespace wrl;

namespace {

// A size-parameterized variant of the analysis TLB (the production one is
// fixed at the hardware's 64 entries).
class SweepTlb {
 public:
  explicit SweepTlb(unsigned entries) : entries_(entries), slots_(entries) {}

  void OnRef(const TraceRef& ref) {
    if (ref.kind == TraceRef::kIfetch) {
      ++count_;
    }
    if (ref.addr >= 0x80000000u) {
      return;
    }
    uint32_t key = (ref.addr >> 12) << 8 | (ref.pid == kKernelPid ? last_asid_ : ref.pid);
    if (ref.pid != kKernelPid) {
      last_asid_ = ref.pid;
    }
    for (const uint32_t slot : slots_) {
      if (slot == key) {
        return;
      }
    }
    ++misses_;
    slots_[count_ % entries_] = key;
  }

  uint64_t misses() const { return misses_; }

 private:
  unsigned entries_;
  std::vector<uint32_t> slots_;
  uint64_t count_ = 0;
  uint64_t misses_ = 0;
  uint8_t last_asid_ = 1;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = BenchJsonPath(argc, argv);
  unsigned jobs = BenchJobs(argc, argv);
  constexpr double kScale = 0.15;
  WorkloadSpec w = PaperWorkload("eqntott", kScale);  // The TLB-hostile one.
  printf("collecting the system trace of %s...\n", w.name.c_str());

  EventRecorder events;
  SystemConfig config;
  config.tracing = true;
  config.clock_period = 200000 * 15;
  config.program_source = w.source;
  config.program_name = w.name;
  config.files = w.files;
  config.events = &events;
  auto sys = BuildSystem(config);

  const unsigned sizes[] = {8, 16, 32, 64, 128, 256};
  std::vector<SweepTlb> sweeps;
  for (unsigned entries : sizes) {
    sweeps.emplace_back(entries);
  }
  TlbSimulator production;  // The faithful 64-entry model.
  TraceParser parser(&sys->kernel_table());
  parser.SetUserTable(1, &sys->user_table());
  parser.SetInitialContext(kKernelPid);
  parser.SetEventRecorder(&events);
  parser.SetRefSink([&](const TraceRef& ref) {
    production.OnRef(ref);
    for (SweepTlb& t : sweeps) {
      t.OnRef(ref);
    }
  });
  sys->SetTraceSink([&parser](const uint32_t* words, size_t n) { parser.Feed(words, n); });

  // The measured (uninstrumented) system is independent of the sweep; with
  // --jobs > 1 its run overlaps the traced run on a helper thread.
  SystemConfig untraced = config;
  untraced.tracing = false;
  untraced.clock_period = 200000;
  untraced.events = nullptr;
  auto measured = BuildSystem(untraced);
  EventRecorder measured_events;
  uint64_t measured_epoch_us = 0;
  std::exception_ptr measured_exc;
  std::thread measured_thread;
  auto run_measured = [&](EventRecorder* ev) {
    ev->SetCycleSource([m = &measured->machine()]() -> uint64_t { return m->cycles(); });
    EventRecorder::Scope scope(ev, "run.measured:eqntott", "run");
    measured->Run(3'000'000'000ull);
  };
  if (jobs > 1) {
    printf("overlapping the measured run on a second worker (--jobs %u)...\n", jobs);
    measured_epoch_us = events.ElapsedUs();
    measured_thread = std::thread([&] {
      try {
        run_measured(&measured_events);
      } catch (...) {
        measured_exc = std::current_exception();
      }
    });
  }

  RunResult r;
  {
    events.SetCycleSource([m = &sys->machine()]() -> uint64_t { return m->cycles(); });
    EventRecorder::Scope scope(&events, "run.traced:eqntott", "run");
    r = sys->Run(3'000'000'000ull);
    parser.Finish();
  }
  if (measured_thread.joinable()) {
    measured_thread.join();
    if (measured_exc != nullptr) {
      std::rethrow_exception(measured_exc);
    }
    events.Absorb(measured_events.TakeEvents(), measured_epoch_us);
  }
  if (!r.halted) {
    printf("did not halt!\n");
    return 1;
  }
  if (parser.stats().validation_errors > 0) {
    fprintf(stderr, "*** WARNING: %llu trace validation errors — the reconstructed trace "
            "is suspect ***\n",
            static_cast<unsigned long long>(parser.stats().validation_errors));
  }

  printf("\n%-10s %12s\n", "entries", "misses");
  for (size_t i = 0; i < sweeps.size(); ++i) {
    printf("%8u   %12llu\n", sizes[i], static_cast<unsigned long long>(sweeps[i].misses()));
  }
  printf("\nfaithful 64-entry simulation (random replacement, synthesized\n");
  printf("handler refs): %llu misses\n",
         static_cast<unsigned long long>(production.stats().utlb_misses));

  if (jobs <= 1) {
    run_measured(&events);
  }
  events.SetCycleSource(nullptr);
  printf("measured on the uninstrumented system (kernel counter): %llu misses\n",
         static_cast<unsigned long long>(measured->UtlbMissCount()));

  if (!json_path.empty()) {
    // The wrlstats report: everything above, machine-readable.
    StatsRegistry registry;
    sys->RegisterStats(registry, "traced.");
    measured->RegisterStats(registry, "measured.");
    parser.RegisterStats(registry, "parser.");
    production.RegisterStats(registry, "tlbsim.");
    for (size_t i = 0; i < sweeps.size(); ++i) {
      const SweepTlb* sweep = &sweeps[i];
      registry.AddGauge("sweep.entries_" + std::to_string(sizes[i]) + ".misses",
                        [sweep] { return static_cast<double>(sweep->misses()); });
    }
    StatsSnapshot snapshot = registry.Snapshot();

    JsonWriter writer;
    writer.BeginObject();
    writer.KV("schema", "wrlstats/1");
    writer.KV("tool", "tlb_study");
    writer.KV("scale", kScale);
    writer.KV("clock_hz", 25e6);
    writer.Key("metrics").BeginObject();
    writer.KV("eqntott.measured_cycles", static_cast<double>(measured->machine().cycles()));
    writer.KV("eqntott.measured_utlb_misses", static_cast<double>(measured->UtlbMissCount()));
    writer.KV("eqntott.simulated_utlb_misses",
              static_cast<double>(production.stats().utlb_misses));
    writer.KV("eqntott.parser_errors",
              static_cast<double>(parser.stats().validation_errors));
    for (size_t i = 0; i < sweeps.size(); ++i) {
      writer.KV("eqntott.sweep.entries_" + std::to_string(sizes[i]) + ".misses",
                static_cast<double>(sweeps[i].misses()));
    }
    writer.EndObject();
    writer.Key("counters");
    snapshot.WriteJson(writer);
    writer.Key("traceEvents").BeginArray();
    WriteChromeTraceEvents(writer, events.events());
    writer.EndArray();
    writer.EndObject();

    std::string json = writer.TakeString();
    std::FILE* file = std::fopen(json_path.c_str(), "w");
    if (file == nullptr ||
        std::fwrite(json.data(), 1, json.size(), file) != json.size() ||
        std::fclose(file) != 0) {
      fprintf(stderr, "cannot write report to %s\n", json_path.c_str());
      return 1;
    }
    fprintf(stderr, "wrote run report to %s\n", json_path.c_str());
  }
  return 0;
}
