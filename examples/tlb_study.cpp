// A TLB study in the style the paper's traces enabled (its reference [9],
// "A Simulation Based Study of TLB Performance"), rebuilt on the
// capture-once / replay-many pipeline: the traced machine runs *once*,
// its drained trace is captured into a packed TraceLog, and every analysis
// configuration — the faithful 64-entry production model plus the size
// sweep — is a cheap replay of that capture, fanned out across --jobs
// workers.  A K-config sweep costs one traced run + K replays instead of
// K traced runs.
//
//   $ ./build/examples/tlb_study [--scale=S] [--jobs N] [--sweep-sizes=8,64,...]
//                                [--json report.json]
//
// With --json the run emits a wrlstats/1 report: the full counter-registry
// snapshot of the traced and measured systems, the capture's compression
// ratio, the replay fan-out throughput (replay.mrefs_per_sec) next to the
// live-analysis bound it replaces, the sweep's miss curve, and the event
// timeline (load the file in chrome://tracing or ui.perfetto.dev).
#include <cstdio>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "harness/replay_engine.h"
#include "kernel/system_build.h"
#include "sim/tlb_sim.h"
#include "stats/events.h"
#include "stats/stats.h"
#include "support/json.h"
#include "trace/parser.h"
#include "trace/trace_log.h"
#include "workloads/workloads.h"

using namespace wrl;

namespace {

// A size-parameterized variant of the analysis TLB (the production one is
// fixed at the hardware's 64 entries).  Consumes the replayed stream in
// batches.
class SweepTlb : public RefBatchSink {
 public:
  explicit SweepTlb(unsigned entries) : entries_(entries), slots_(entries) {}

  void OnRefBatch(const TraceRef* refs, size_t count) override {
    for (size_t i = 0; i < count; ++i) {
      OnRef(refs[i]);
    }
  }

  void OnRef(const TraceRef& ref) {
    if (ref.kind == TraceRef::kIfetch) {
      ++count_;
    }
    if (ref.addr >= 0x80000000u) {
      return;
    }
    uint32_t key = (ref.addr >> 12) << 8 | (ref.pid == kKernelPid ? last_asid_ : ref.pid);
    if (ref.pid != kKernelPid) {
      last_asid_ = ref.pid;
    }
    for (const uint32_t slot : slots_) {
      if (slot == key) {
        return;
      }
    }
    ++misses_;
    slots_[count_ % entries_] = key;
  }

  unsigned entries() const { return entries_; }
  uint64_t misses() const { return misses_; }

 private:
  unsigned entries_;
  std::vector<uint32_t> slots_;
  uint64_t count_ = 0;
  uint64_t misses_ = 0;
  uint8_t last_asid_ = 1;
};

// --sweep-sizes=8,16,... (default: the classic curve).
std::vector<unsigned> SweepSizes(int argc, char** argv) {
  std::string spec = "8,16,32,64,128,256";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--sweep-sizes=", 0) == 0) {
      spec = arg.substr(14);
    }
  }
  std::vector<unsigned> sizes;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    unsigned value = static_cast<unsigned>(std::atoi(spec.substr(pos, comma - pos).c_str()));
    if (value > 0) {
      sizes.push_back(value);
    }
    pos = comma + 1;
  }
  return sizes;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = BenchJsonPath(argc, argv);
  unsigned jobs = BenchJobs(argc, argv);
  const double scale = BenchScaleOr(argc, argv, 0.15);
  const std::vector<unsigned> sizes = SweepSizes(argc, argv);
  WorkloadSpec w = PaperWorkload("eqntott", scale);  // The TLB-hostile one.
  printf("collecting the system trace of %s (one traced run, %zu replay configs)...\n",
         w.name.c_str(), sizes.size() + 1);

  EventRecorder events;
  SystemConfig config;
  config.tracing = true;
  config.clock_period = 200000 * 15;
  config.program_source = w.source;
  config.program_name = w.name;
  config.files = w.files;
  config.events = &events;
  auto sys = BuildSystem(config);

  // Capture once: the drains land in the packed TraceLog; nothing is
  // parsed while the machine runs.
  TraceLog log;
  sys->SetTraceSink([&log](const uint32_t* words, size_t n) { log.Append(words, n); });

  // The measured (uninstrumented) system is independent of the sweep; with
  // --jobs > 1 its run overlaps the traced run on a helper thread.
  SystemConfig untraced = config;
  untraced.tracing = false;
  untraced.clock_period = 200000;
  untraced.events = nullptr;
  auto measured = BuildSystem(untraced);
  EventRecorder measured_events;
  uint64_t measured_epoch_us = 0;
  std::exception_ptr measured_exc;
  std::thread measured_thread;
  auto run_measured = [&](EventRecorder* ev) {
    ev->SetCycleSource([m = &measured->machine()]() -> uint64_t { return m->cycles(); });
    EventRecorder::Scope scope(ev, "run.measured:" + w.name, "run");
    measured->Run(3'000'000'000ull);
  };
  if (jobs > 1) {
    printf("overlapping the measured run on a second worker (--jobs %u)...\n", jobs);
    measured_epoch_us = events.ElapsedUs();
    measured_thread = std::thread([&] {
      try {
        run_measured(&measured_events);
      } catch (...) {
        measured_exc = std::current_exception();
      }
    });
  }

  RunResult r;
  uint64_t traced_wall_us = 0;
  {
    events.SetCycleSource([m = &sys->machine()]() -> uint64_t { return m->cycles(); });
    EventRecorder::Scope scope(&events, "run.traced:" + w.name, "run");
    uint64_t wall0 = events.ElapsedUs();
    r = sys->Run(3'000'000'000ull);
    traced_wall_us = events.ElapsedUs() - wall0;
  }
  if (measured_thread.joinable()) {
    measured_thread.join();
    if (measured_exc != nullptr) {
      std::rethrow_exception(measured_exc);
    }
    events.Absorb(measured_events.TakeEvents(), measured_epoch_us);
  }
  events.SetCycleSource(nullptr);
  if (!r.halted) {
    printf("did not halt!\n");
    return 1;
  }

  // Replay many: one parse of the capture, then the production model and
  // every sweep size consume the same materialized stream in parallel.
  ReplaySource source;
  source.log = &log;
  source.kernel_table = &sys->kernel_table();
  source.user_tables.emplace_back(1, &sys->user_table());
  ReplayEngine engine(std::move(source));
  {
    EventRecorder::Scope scope(&events, "replay.parse", "analysis");
    engine.Parse();
  }
  if (engine.parser_stats().validation_errors > 0) {
    fprintf(stderr, "*** WARNING: %llu trace validation errors — the reconstructed trace "
            "is suspect ***\n",
            static_cast<unsigned long long>(engine.parser_stats().validation_errors));
  }

  std::vector<ReplayEngine::Config> configs;
  configs.push_back({"production64", [] { return std::make_unique<TlbSimulator>(); }});
  for (unsigned entries : sizes) {
    configs.push_back({"sweep" + std::to_string(entries), [entries] {
                         return std::make_unique<SweepTlb>(entries);
                       }});
  }
  ReplayEngine::Options ropts;
  ropts.jobs = jobs;
  ropts.batch = BatchRefsEnabled();
  ropts.events = &events;
  std::vector<ReplayEngine::Outcome> outcomes;
  {
    EventRecorder::Scope scope(&events, "replay.fanout", "analysis");
    outcomes = engine.Run(configs, ropts);
  }
  auto* production = static_cast<TlbSimulator*>(outcomes[0].sink.get());

  printf("\n%-10s %12s\n", "entries", "misses");
  for (size_t i = 1; i < outcomes.size(); ++i) {
    auto* sweep = static_cast<SweepTlb*>(outcomes[i].sink.get());
    printf("%8u   %12llu\n", sweep->entries(), static_cast<unsigned long long>(sweep->misses()));
  }
  printf("\nfaithful 64-entry simulation (random replacement, synthesized\n");
  printf("handler refs): %llu misses\n",
         static_cast<unsigned long long>(production->stats().utlb_misses));

  if (jobs <= 1) {
    run_measured(&events);
    events.SetCycleSource(nullptr);
  }
  printf("measured on the uninstrumented system (kernel counter): %llu misses\n",
         static_cast<unsigned long long>(measured->UtlbMissCount()));

  // Throughput accounting: the replay fan-out against the live-analysis
  // bound it replaced (refs over the traced machine run's wall time — the
  // fastest live analysis could possibly go, since it runs in lockstep
  // with trace generation).
  const double refs = static_cast<double>(engine.refs().size());
  const double live_mrefs =
      traced_wall_us == 0 ? 0 : refs / (static_cast<double>(traced_wall_us) * 1e-6) / 1e6;
  const double speedup = live_mrefs == 0 ? 0 : engine.mrefs_per_sec() / live_mrefs;
  printf("\ncapture: %llu words -> %llu bytes (%.2fx compression)\n",
         static_cast<unsigned long long>(log.words()),
         static_cast<unsigned long long>(log.stored_bytes()), log.CompressionRatio());
  printf("replay:  %zu configs x %.1fM refs at %.1f Mrefs/s (live-analysis bound "
         "%.1f Mrefs/s, %.1fx)\n",
         outcomes.size(), refs / 1e6, engine.mrefs_per_sec(), live_mrefs, speedup);

  if (!json_path.empty()) {
    // The wrlstats report: everything above, machine-readable.
    StatsRegistry registry;
    sys->RegisterStats(registry, "traced.");
    measured->RegisterStats(registry, "measured.");
    engine.RegisterParserStats(registry, "parser.");
    engine.RegisterStats(registry, "replay.");
    log.RegisterStats(registry, "tracelog.");
    production->RegisterStats(registry, "tlbsim.");
    for (size_t i = 1; i < outcomes.size(); ++i) {
      const auto* sweep = static_cast<const SweepTlb*>(outcomes[i].sink.get());
      registry.AddGauge("sweep.entries_" + std::to_string(sweep->entries()) + ".misses",
                        [sweep] { return static_cast<double>(sweep->misses()); });
    }
    StatsSnapshot snapshot = registry.Snapshot();

    JsonWriter writer;
    writer.BeginObject();
    writer.KV("schema", "wrlstats/1");
    writer.KV("tool", "tlb_study");
    writer.KV("scale", scale);
    writer.KV("clock_hz", 25e6);
    writer.Key("metrics").BeginObject();
    writer.KV("eqntott.measured_cycles", static_cast<double>(measured->machine().cycles()));
    writer.KV("eqntott.measured_utlb_misses", static_cast<double>(measured->UtlbMissCount()));
    writer.KV("eqntott.simulated_utlb_misses",
              static_cast<double>(production->stats().utlb_misses));
    writer.KV("eqntott.parser_errors",
              static_cast<double>(engine.parser_stats().validation_errors));
    writer.KV("traced_machine_runs", 1.0);
    writer.KV("replay.configs", static_cast<double>(outcomes.size()));
    writer.KV("replay.refs", refs);
    writer.KV("replay.mrefs_per_sec", engine.mrefs_per_sec());
    writer.KV("live.mrefs_per_sec", live_mrefs);
    writer.KV("replay.speedup_vs_live", speedup);
    writer.KV("tracelog.words", static_cast<double>(log.words()));
    writer.KV("tracelog.stored_bytes", static_cast<double>(log.stored_bytes()));
    writer.KV("tracelog.compression_ratio", log.CompressionRatio());
    for (size_t i = 1; i < outcomes.size(); ++i) {
      const auto* sweep = static_cast<const SweepTlb*>(outcomes[i].sink.get());
      writer.KV("eqntott.sweep.entries_" + std::to_string(sweep->entries()) + ".misses",
                static_cast<double>(sweep->misses()));
    }
    writer.EndObject();
    writer.Key("counters");
    snapshot.WriteJson(writer);
    writer.Key("traceEvents").BeginArray();
    WriteChromeTraceEvents(writer, events.events());
    writer.EndArray();
    writer.EndObject();

    std::string json = writer.TakeString();
    std::FILE* file = std::fopen(json_path.c_str(), "w");
    if (file == nullptr ||
        std::fwrite(json.data(), 1, json.size(), file) != json.size() ||
        std::fclose(file) != 0) {
      fprintf(stderr, "cannot write report to %s\n", json_path.c_str());
      return 1;
    }
    fprintf(stderr, "wrote run report to %s\n", json_path.c_str());
  }
  return 0;
}
