// A TLB study in the style the paper's traces enabled (its reference [9],
// "A Simulation Based Study of TLB Performance"): sweep the simulated TLB
// size over one workload's trace and watch the miss curve, then compare the
// 64-entry point against the real kernel counter.
//
//   $ ./build/examples/tlb_study
#include <cstdio>
#include <vector>

#include "kernel/system_build.h"
#include "sim/tlb_sim.h"
#include "trace/parser.h"
#include "workloads/workloads.h"

using namespace wrl;

namespace {

// A size-parameterized variant of the analysis TLB (the production one is
// fixed at the hardware's 64 entries).
class SweepTlb {
 public:
  explicit SweepTlb(unsigned entries) : entries_(entries), slots_(entries) {}

  void OnRef(const TraceRef& ref) {
    if (ref.kind == TraceRef::kIfetch) {
      ++count_;
    }
    if (ref.addr >= 0x80000000u) {
      return;
    }
    uint32_t key = (ref.addr >> 12) << 8 | (ref.pid == kKernelPid ? last_asid_ : ref.pid);
    if (ref.pid != kKernelPid) {
      last_asid_ = ref.pid;
    }
    for (const uint32_t slot : slots_) {
      if (slot == key) {
        return;
      }
    }
    ++misses_;
    slots_[count_ % entries_] = key;
  }

  uint64_t misses() const { return misses_; }

 private:
  unsigned entries_;
  std::vector<uint32_t> slots_;
  uint64_t count_ = 0;
  uint64_t misses_ = 0;
  uint8_t last_asid_ = 1;
};

}  // namespace

int main() {
  WorkloadSpec w = PaperWorkload("eqntott", 0.15);  // The TLB-hostile one.
  printf("collecting the system trace of %s...\n", w.name.c_str());

  SystemConfig config;
  config.tracing = true;
  config.clock_period = 200000 * 15;
  config.program_source = w.source;
  config.program_name = w.name;
  config.files = w.files;
  auto sys = BuildSystem(config);

  std::vector<SweepTlb> sweeps;
  for (unsigned entries : {8u, 16u, 32u, 64u, 128u, 256u}) {
    sweeps.emplace_back(entries);
  }
  TlbSimulator production;  // The faithful 64-entry model.
  TraceParser parser(&sys->kernel_table());
  parser.SetUserTable(1, &sys->user_table());
  parser.SetInitialContext(kKernelPid);
  parser.SetRefSink([&](const TraceRef& ref) {
    production.OnRef(ref);
    for (SweepTlb& t : sweeps) {
      t.OnRef(ref);
    }
  });
  sys->SetTraceSink([&parser](const uint32_t* words, size_t n) { parser.Feed(words, n); });
  RunResult r = sys->Run(3'000'000'000ull);
  parser.Finish();
  if (!r.halted) {
    printf("did not halt!\n");
    return 1;
  }

  printf("\n%-10s %12s\n", "entries", "misses");
  unsigned sizes[] = {8, 16, 32, 64, 128, 256};
  for (size_t i = 0; i < sweeps.size(); ++i) {
    printf("%8u   %12llu\n", sizes[i], static_cast<unsigned long long>(sweeps[i].misses()));
  }
  printf("\nfaithful 64-entry simulation (random replacement, synthesized\n");
  printf("handler refs): %llu misses\n",
         static_cast<unsigned long long>(production.stats().utlb_misses));

  SystemConfig untraced = config;
  untraced.tracing = false;
  untraced.clock_period = 200000;
  auto measured = BuildSystem(untraced);
  measured->Run(3'000'000'000ull);
  printf("measured on the uninstrumented system (kernel counter): %llu misses\n",
         static_cast<unsigned long long>(measured->UtlbMissCount()));
  return 0;
}
