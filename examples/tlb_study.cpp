// A TLB study in the style the paper's traces enabled (its reference [9],
// "A Simulation Based Study of TLB Performance"), rebuilt on the
// single-pass sweep engine: the traced machine runs *once*, its drained
// trace is captured into a packed TraceLog, and the whole configuration
// family — every TLB capacity on the LRU curve plus an 8-point cache-size
// family — is priced by ONE pass over the materialized stream
// (Mattson-style stack distances for the TLB, Hill-&-Smith forest
// simulation for the caches), next to the faithful 64-entry production
// model.  A K-point sweep costs one traced run + one parse + one pass,
// instead of the K replays the previous revision fanned out.
//
//   $ ./build/examples/tlb_study [--scale=S] [--jobs N] [--sweep-sizes=8,64,...]
//                                [--check] [--json report.json]
//
// --check replays every cache family point through an independent
// TraceDrivenSimulator and fails loudly unless the sweep's miss counts are
// bit-identical — the exactness contract, verified on demand.
//
// With --json the run emits a wrlstats/1 report: the full counter-registry
// snapshot of the traced and measured systems, the capture's compression
// ratio, the replay/sweep throughput next to the live-analysis bound, the
// TLB miss curves, the cache family, and the event timeline (load the file
// in chrome://tracing or ui.perfetto.dev).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "harness/replay_engine.h"
#include "kernel/system_build.h"
#include "sim/predictor.h"
#include "sim/tlb_sim.h"
#include "stats/events.h"
#include "stats/stats.h"
#include "support/json.h"
#include "sweep/sweep.h"
#include "trace/parser.h"
#include "trace/trace_log.h"
#include "workloads/workloads.h"

using namespace wrl;

namespace {

// The 8-point cache-size family priced by the sweep (alongside the TLB
// curve): 4 KB through 512 KB at the production line sizes.
constexpr uint32_t kCacheFamilyMin = 4 * 1024;
constexpr uint32_t kCacheFamilyMax = 512 * 1024;
constexpr uint32_t kIcacheLine = 16;
constexpr uint32_t kDcacheLine = 4;

// --sweep-sizes=8,16,... (default: the classic curve).
std::vector<unsigned> SweepSizes(int argc, char** argv) {
  std::string spec = "8,16,32,64,128,256";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--sweep-sizes=", 0) == 0) {
      spec = arg.substr(14);
    }
  }
  std::vector<unsigned> sizes;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    unsigned value = static_cast<unsigned>(std::atoi(spec.substr(pos, comma - pos).c_str()));
    if (value > 0) {
      sizes.push_back(value);
    }
    pos = comma + 1;
  }
  return sizes;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = BenchJsonPath(argc, argv);
  unsigned jobs = BenchJobs(argc, argv);
  const double scale = BenchScaleOr(argc, argv, 0.15);
  const bool check = HasFlag(argc, argv, "--check");
  const std::vector<unsigned> sizes = SweepSizes(argc, argv);
  const unsigned max_entries =
      sizes.empty() ? 64u : *std::max_element(sizes.begin(), sizes.end());
  WorkloadSpec w = PaperWorkload("eqntott", scale);  // The TLB-hostile one.
  printf("collecting the system trace of %s (one traced run, one sweep pass)...\n",
         w.name.c_str());

  EventRecorder events;
  SystemConfig config;
  config.tracing = true;
  config.clock_period = 200000 * 15;
  config.program_source = w.source;
  config.program_name = w.name;
  config.files = w.files;
  config.events = &events;
  auto sys = BuildSystem(config);

  // Capture once: the drains land in the packed TraceLog; nothing is
  // parsed while the machine runs.
  TraceLog log;
  sys->SetTraceSink([&log](const uint32_t* words, size_t n) { log.Append(words, n); });

  // The measured (uninstrumented) system is independent of the sweep; with
  // --jobs > 1 its run overlaps the traced run on a helper thread.
  SystemConfig untraced = config;
  untraced.tracing = false;
  untraced.clock_period = 200000;
  untraced.events = nullptr;
  auto measured = BuildSystem(untraced);
  EventRecorder measured_events;
  uint64_t measured_epoch_us = 0;
  std::exception_ptr measured_exc;
  std::thread measured_thread;
  auto run_measured = [&](EventRecorder* ev) {
    ev->SetCycleSource([m = &measured->machine()]() -> uint64_t { return m->cycles(); });
    EventRecorder::Scope scope(ev, "run.measured:" + w.name, "run");
    measured->Run(3'000'000'000ull);
  };
  if (jobs > 1) {
    printf("overlapping the measured run on a second worker (--jobs %u)...\n", jobs);
    measured_epoch_us = events.ElapsedUs();
    measured_thread = std::thread([&] {
      try {
        run_measured(&measured_events);
      } catch (...) {
        measured_exc = std::current_exception();
      }
    });
  }

  RunResult r;
  uint64_t traced_wall_us = 0;
  {
    events.SetCycleSource([m = &sys->machine()]() -> uint64_t { return m->cycles(); });
    EventRecorder::Scope scope(&events, "run.traced:" + w.name, "run");
    uint64_t wall0 = events.ElapsedUs();
    r = sys->Run(3'000'000'000ull);
    traced_wall_us = events.ElapsedUs() - wall0;
  }
  if (measured_thread.joinable()) {
    measured_thread.join();
    if (measured_exc != nullptr) {
      std::rethrow_exception(measured_exc);
    }
    events.Absorb(measured_events.TakeEvents(), measured_epoch_us);
  }
  events.SetCycleSource(nullptr);
  if (!r.halted) {
    printf("did not halt!\n");
    return 1;
  }

  // One parse of the capture, then exactly two consumers of the same
  // materialized stream: the faithful production TLB and the sweep engine
  // pricing every other configuration in its one pass.
  ReplaySource source;
  source.log = &log;
  source.kernel_table = &sys->kernel_table();
  source.user_tables.emplace_back(1, &sys->user_table());
  ReplayEngine engine(std::move(source));
  {
    EventRecorder::Scope scope(&events, "replay.parse", "analysis");
    engine.Parse();
  }
  if (engine.parser_stats().validation_errors > 0) {
    fprintf(stderr, "*** WARNING: %llu trace validation errors — the reconstructed trace "
            "is suspect ***\n",
            static_cast<unsigned long long>(engine.parser_stats().validation_errors));
  }

  SweepConfig sweep_config;
  sweep_config.page_map = measured->PageMap();
  sweep_config.tlb_max_entries = max_entries;
  sweep_config.icache.push_back({kIcacheLine, kCacheFamilyMin, kCacheFamilyMax});
  sweep_config.dcache.push_back({kDcacheLine, kCacheFamilyMin, kCacheFamilyMax});

  std::vector<ReplayEngine::Config> configs;
  configs.push_back({"production64", [] { return std::make_unique<TlbSimulator>(); }});
  configs.push_back(
      {"sweep", [&sweep_config] { return std::make_unique<SweepEngine>(sweep_config); }});
  ReplayEngine::Options ropts;
  ropts.jobs = jobs;
  ropts.batch = BatchRefsEnabled();
  ropts.events = &events;
  std::vector<ReplayEngine::Outcome> outcomes;
  {
    EventRecorder::Scope scope(&events, "replay.fanout", "analysis");
    outcomes = engine.Run(configs, ropts);
  }
  auto* production = static_cast<TlbSimulator*>(outcomes[0].sink.get());
  auto* sweep = static_cast<SweepEngine*>(outcomes[1].sink.get());
  const SweepResult& sres = sweep->Finish();
  const uint64_t sweep_wall_us = outcomes[1].wall_us;

  printf("\nLRU TLB capacity-miss curve (exact, one stack-distance pass):\n");
  printf("%-10s %12s\n", "entries", "misses");
  for (unsigned entries : sizes) {
    if (entries == 0 || entries > sres.tlb_lru_misses.size()) {
      continue;
    }
    printf("%8u   %12llu\n", entries,
           static_cast<unsigned long long>(sres.tlb_lru_misses[entries - 1]));
  }
  printf("\ncache-size family (exact, same pass; line %u/%u bytes):\n", kIcacheLine, kDcacheLine);
  printf("%-10s %12s %12s\n", "size", "i-misses", "d-misses");
  for (size_t i = 0; i < sres.icache.size(); ++i) {
    printf("%7uK   %12llu %12llu\n", sres.icache[i].size_bytes / 1024,
           static_cast<unsigned long long>(sres.icache[i].misses),
           static_cast<unsigned long long>(sres.dcache[i].misses));
  }
  printf("\nfaithful 64-entry simulation (random replacement, synthesized\n");
  printf("handler refs): %llu misses\n",
         static_cast<unsigned long long>(production->stats().utlb_misses));

  if (jobs <= 1) {
    run_measured(&events);
    events.SetCycleSource(nullptr);
  }
  printf("measured on the uninstrumented system (kernel counter): %llu misses\n",
         static_cast<unsigned long long>(measured->UtlbMissCount()));

  // --check: replay every cache family point through an independent
  // TraceDrivenSimulator and demand bit-identical miss counts.  Also the
  // honest speedup measurement: those K replays are exactly what the sweep
  // pass replaced.
  uint64_t check_wall_us = 0;
  if (check) {
    printf("\nverifying %zu family points against independent replays...\n", sres.icache.size());
    std::vector<ReplayEngine::Config> check_configs;
    for (const SweepCachePoint& point : sres.icache) {
      PredictorConfig pc;
      pc.page_map = measured->PageMap();
      pc.memsys.icache = {point.size_bytes, point.line_bytes};
      check_configs.push_back({"check" + std::to_string(point.size_bytes), [pc] {
                                 return std::make_unique<TraceDrivenSimulator>(pc);
                               }});
    }
    std::vector<ReplayEngine::Outcome> check_outcomes;
    {
      EventRecorder::Scope scope(&events, "replay.check", "analysis");
      check_outcomes = engine.Run(check_configs, ropts);
    }
    for (size_t i = 0; i < check_outcomes.size(); ++i) {
      auto* sim = static_cast<TraceDrivenSimulator*>(check_outcomes[i].sink.get());
      Prediction p = sim->Finish();
      const SweepCachePoint& point = sres.icache[i];
      check_wall_us += check_outcomes[i].wall_us;
      if (p.memsys_stats.icache_misses != point.misses ||
          p.memsys_stats.dcache_misses != sweep->DcacheMisses(kDcacheLine, 64 * 1024)) {
        fprintf(stderr,
                "*** MISMATCH at %uK: sweep i=%llu d=%llu, replay i=%llu d=%llu ***\n",
                point.size_bytes / 1024, static_cast<unsigned long long>(point.misses),
                static_cast<unsigned long long>(sweep->DcacheMisses(kDcacheLine, 64 * 1024)),
                static_cast<unsigned long long>(p.memsys_stats.icache_misses),
                static_cast<unsigned long long>(p.memsys_stats.dcache_misses));
        return 1;
      }
    }
    printf("all %zu points bit-identical; %zu replays took %.1fms vs one %.1fms sweep pass "
           "(%.1fx)\n",
           sres.icache.size(), check_outcomes.size(),
           static_cast<double>(check_wall_us) / 1000.0,
           static_cast<double>(sweep_wall_us) / 1000.0,
           sweep_wall_us == 0
               ? 0.0
               : static_cast<double>(check_wall_us) / static_cast<double>(sweep_wall_us));
  }

  // Throughput accounting: the replay fan-out against the live-analysis
  // bound it replaced (refs over the traced machine run's wall time — the
  // fastest live analysis could possibly go, since it runs in lockstep
  // with trace generation), and the sweep's equivalent-replay rate (one
  // pass pricing family_points configurations at once).  The replay rate
  // covers the real replays only — the sweep pass is priced per family
  // point by sweep.mrefs_per_sec, matching the harness's accounting.
  const double refs = static_cast<double>(engine.refs().size());
  const double live_mrefs =
      traced_wall_us == 0 ? 0 : refs / (static_cast<double>(traced_wall_us) * 1e-6) / 1e6;
  const double replay_mrefs =
      outcomes[0].wall_us == 0 ? 0 : refs / static_cast<double>(outcomes[0].wall_us);
  const double speedup = live_mrefs == 0 ? 0 : replay_mrefs / live_mrefs;
  const double sweep_mrefs =
      sweep_wall_us == 0
          ? 0
          : static_cast<double>(sres.family_points) * refs / static_cast<double>(sweep_wall_us);
  printf("\ncapture: %llu words -> %llu bytes (%.2fx compression)\n",
         static_cast<unsigned long long>(log.words()),
         static_cast<unsigned long long>(log.stored_bytes()), log.CompressionRatio());
  printf("replay:  %zu configs x %.1fM refs; fan-out at %.1f Mrefs/s (live-analysis "
         "bound %.1f Mrefs/s, %.1fx)\n",
         outcomes.size(), refs / 1e6, replay_mrefs, live_mrefs, speedup);
  printf("sweep:   %zu family points + %u-entry TLB curve in one pass "
         "(%.0f Mrefs/s equivalent)\n",
         sres.family_points, max_entries, sweep_mrefs);

  if (!json_path.empty()) {
    // The wrlstats report: everything above, machine-readable.
    StatsRegistry registry;
    sys->RegisterStats(registry, "traced.");
    measured->RegisterStats(registry, "measured.");
    engine.RegisterParserStats(registry, "parser.");
    engine.RegisterStats(registry, "replay.");
    log.RegisterStats(registry, "tracelog.");
    production->RegisterStats(registry, "tlbsim.");
    sweep->RegisterStats(registry, "sweep.");
    StatsSnapshot snapshot = registry.Snapshot();

    JsonWriter writer;
    writer.BeginObject();
    writer.KV("schema", "wrlstats/1");
    writer.KV("tool", "tlb_study");
    writer.KV("scale", scale);
    writer.KV("clock_hz", 25e6);
    writer.Key("metrics").BeginObject();
    writer.KV("eqntott.measured_cycles", static_cast<double>(measured->machine().cycles()));
    writer.KV("eqntott.measured_utlb_misses", static_cast<double>(measured->UtlbMissCount()));
    writer.KV("eqntott.simulated_utlb_misses",
              static_cast<double>(production->stats().utlb_misses));
    writer.KV("eqntott.parser_errors",
              static_cast<double>(engine.parser_stats().validation_errors));
    writer.KV("traced_machine_runs", 1.0);
    writer.KV("replay.configs", static_cast<double>(outcomes.size()));
    writer.KV("replay.refs", refs);
    writer.KV("replay.mrefs_per_sec", replay_mrefs);
    writer.KV("live.mrefs_per_sec", live_mrefs);
    writer.KV("replay.speedup_vs_live", speedup);
    writer.KV("tracelog.words", static_cast<double>(log.words()));
    writer.KV("tracelog.stored_bytes", static_cast<double>(log.stored_bytes()));
    writer.KV("tracelog.compression_ratio", log.CompressionRatio());
    writer.KV("sweep.family_points", static_cast<double>(sres.family_points));
    writer.KV("sweep.tlb_max_entries", static_cast<double>(max_entries));
    if (sweep_mrefs > 0) {
      writer.KV("sweep.mrefs_per_sec", sweep_mrefs);
    }
    if (check && check_wall_us > 0 && sweep_wall_us > 0) {
      writer.KV("sweep.speedup_vs_replay",
                static_cast<double>(check_wall_us) / static_cast<double>(sweep_wall_us));
    }
    for (unsigned entries : sizes) {
      if (entries == 0 || entries > sres.tlb_lru_misses.size()) {
        continue;
      }
      writer.KV("eqntott.sweep.entries_" + std::to_string(entries) + ".misses",
                static_cast<double>(sres.tlb_lru_misses[entries - 1]));
    }
    for (size_t i = 0; i < sres.icache.size(); ++i) {
      const std::string kb = std::to_string(sres.icache[i].size_bytes / 1024);
      writer.KV("eqntott.sweep.icache_" + kb + "k.misses",
                static_cast<double>(sres.icache[i].misses));
      writer.KV("eqntott.sweep.dcache_" + kb + "k.misses",
                static_cast<double>(sres.dcache[i].misses));
    }
    writer.EndObject();
    writer.Key("counters");
    snapshot.WriteJson(writer);
    writer.Key("traceEvents").BeginArray();
    WriteChromeTraceEvents(writer, events.events());
    writer.EndArray();
    writer.EndObject();

    std::string json = writer.TakeString();
    std::FILE* file = std::fopen(json_path.c_str(), "w");
    if (file == nullptr ||
        std::fwrite(json.data(), 1, json.size(), file) != json.size() ||
        std::fclose(file) != 0) {
      fprintf(stderr, "cannot write report to %s\n", json_path.c_str());
      return 1;
    }
    fprintf(stderr, "wrote run report to %s\n", json_path.c_str());
  }
  return 0;
}
