// Quickstart: assemble a tiny program, instrument it with epoxie, run it
// traced on the bare machine, and print the reconstructed address trace
// next to the ground truth from the hardware reference hook.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "harness/bare_runtime.h"
#include "support/strings.h"

using namespace wrl;

int main() {
  const char* program = R"(
        .globl main
main:
        la   $t0, buf            # a few loads and stores over a buffer
        li   $t1, 3
        sw   $t1, 0($t0)
        lw   $t2, 0($t0)
        addu $t2, $t2, $t2
        sw   $t2, 4($t0)
        lw   $t3, 4($t0)
        jr   $ra
        nop
        .data
buf:    .space 16
)";

  printf("building: assemble -> epoxie -> link (original and instrumented)\n");
  BareBuild build = BuildBareTraced(program);
  printf("  original text:      %u words\n", build.instrument_result.original_text_words);
  printf("  instrumented text:  %u words (%.2fx growth; the paper: 1.9-2.3x)\n",
         build.instrument_result.instrumented_text_words,
         build.instrument_result.TextGrowthFactor());

  printf("\nrunning both and comparing the reference streams:\n");
  BareComparison cmp = CompareBareTrace(build);
  printf("  %-28s | %s\n", "software trace (parsed)", "hardware reference");
  size_t n = std::max(cmp.parsed.size(), cmp.reference.size());
  const char* kKind[] = {"ifetch", "load  ", "store "};
  for (size_t i = 0; i < n; ++i) {
    std::string left = i < cmp.parsed.size()
                           ? StrFormat("%s %s", kKind[cmp.parsed[i].kind],
                                       Hex32(cmp.parsed[i].addr).c_str())
                           : "(none)";
    std::string right = i < cmp.reference.size()
                            ? StrFormat("%s %s", kKind[cmp.reference[i].kind],
                                        Hex32(cmp.reference[i].vaddr).c_str())
                            : "(none)";
    bool match = i < cmp.parsed.size() && i < cmp.reference.size() &&
                 cmp.parsed[i].kind == static_cast<int>(cmp.reference[i].kind) &&
                 cmp.parsed[i].addr == cmp.reference[i].vaddr;
    printf("  %-28s | %-28s %s\n", left.c_str(), right.c_str(), match ? "" : "  <-- MISMATCH");
  }
  printf("\n%zu references, parser errors: %zu\n", cmp.parsed.size(), cmp.parser_errors.size());
  if (!cmp.parser_errors.empty()) {
    fprintf(stderr, "*** WARNING: %zu parser errors — the software trace diverged from the "
            "hardware reference ***\n",
            cmp.parser_errors.size());
    for (const std::string& e : cmp.parser_errors) {
      fprintf(stderr, "***   %s ***\n", e.c_str());
    }
    return 1;
  }
  printf("(every line matches: the software trace is exact — the paper's §4.3\n");
  printf("validation against an independent CPU simulator)\n");
  return 0;
}
