// The wrltrace/1 durable archive's contract (trace_archive.h): a capture
// written to disk round-trips bit-identically through a fresh reader, the
// crash-safety protocol recovers every intact chunk of a truncated or torn
// archive with loud chunk-accurate diagnostics, corrupt payloads are
// detected by CRC before a byte is trusted, and an archived experiment
// capture replays through the ReplayEngine to the exact analysis counters
// the live run produced.
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/replay_engine.h"
#include "kernel/system_build.h"
#include "sim/predictor.h"
#include "support/error.h"
#include "trace/chunk_codec.h"
#include "trace/trace_archive.h"
#include "trace/trace_log.h"

namespace wrl {
namespace {

std::string TempPath(const std::string& name) { return testing::TempDir() + name; }

// Deterministic address-like trace words: clustered walks through a few
// "spaces" with occasional jumps, like a real interleaved system trace.
std::vector<std::vector<uint32_t>> SyntheticChunks(size_t chunks, size_t words_per_chunk) {
  std::vector<std::vector<uint32_t>> out(chunks);
  uint32_t state = 0x2545f491;
  uint32_t walkers[3] = {0x80001000, 0x10008000, 0x7fff8000};
  for (size_t c = 0; c < chunks; ++c) {
    out[c].reserve(words_per_chunk);
    for (size_t i = 0; i < words_per_chunk; ++i) {
      state = state * 1664525u + 1013904223u;
      uint32_t& walker = walkers[state % 3];
      walker += ((state >> 8) % 5) * 4;
      if ((state & 0xff) == 0) {
        walker ^= (state >> 4) & 0xffff0;  // Occasional long jump.
      }
      out[c].push_back(walker);
    }
  }
  return out;
}

ArchiveMeta TestMeta() {
  return {{"workload", "synthetic"}, {"personality", "ultrix"}, {"scale", "1"}};
}

void WriteTestArchive(const std::string& path,
                      const std::vector<std::vector<uint32_t>>& chunks, bool packed = true,
                      bool finalize = true) {
  ArchiveWriter::Options options;
  options.packed = packed;
  ArchiveWriter writer(path, TestMeta(), options);
  for (const auto& chunk : chunks) {
    writer.Append(chunk);
  }
  if (finalize) {
    writer.Finalize();
  }
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

uint32_t FileU32(const std::string& bytes, size_t offset) {
  return static_cast<uint32_t>(static_cast<uint8_t>(bytes[offset])) |
         static_cast<uint32_t>(static_cast<uint8_t>(bytes[offset + 1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(bytes[offset + 2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(bytes[offset + 3])) << 24;
}

// File offset of chunk `index`'s record header (walks the chunk framing).
size_t ChunkOffset(const std::string& bytes, size_t index) {
  size_t offset = 24 + FileU32(bytes, 12);  // Header + metadata.
  for (size_t i = 0; i < index; ++i) {
    offset += 20 + FileU32(bytes, offset + 4);
  }
  return offset;
}

std::vector<uint32_t> AllWords(const std::vector<std::vector<uint32_t>>& chunks) {
  std::vector<uint32_t> all;
  for (const auto& chunk : chunks) {
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  return all;
}

// ---- Round trips ----

TEST(ArchiveRoundTrip, WriterReaderBitIdentical) {
  const std::string path = TempPath("roundtrip.wrl");
  auto chunks = SyntheticChunks(7, 523);
  WriteTestArchive(path, chunks);

  ArchiveReader archive(path);
  EXPECT_FALSE(archive.degraded());
  EXPECT_TRUE(archive.packed());
  ASSERT_EQ(archive.chunk_count(), chunks.size());
  EXPECT_EQ(archive.word_count(), 7u * 523u);
  EXPECT_EQ(archive.MetaValue("workload"), "synthetic");
  EXPECT_EQ(archive.MetaValue("personality"), "ultrix");
  EXPECT_EQ(archive.MetaValue("missing", "fallback"), "fallback");
  EXPECT_GT(archive.CompressionRatio(), 1.0);

  std::vector<uint32_t> decoded;
  for (size_t i = 0; i < chunks.size(); ++i) {
    archive.DecodeChunk(i, decoded);
    EXPECT_EQ(decoded, chunks[i]) << "chunk " << i;
  }
  EXPECT_EQ(archive.Words(), AllWords(chunks));

  std::vector<std::string> findings;
  EXPECT_TRUE(archive.Verify(&findings));
  EXPECT_TRUE(findings.empty());
}

TEST(ArchiveRoundTrip, RawPayloadMode) {
  const std::string path = TempPath("raw.wrl");
  auto chunks = SyntheticChunks(3, 97);
  WriteTestArchive(path, chunks, /*packed=*/false);

  ArchiveReader archive(path);
  EXPECT_FALSE(archive.packed());
  EXPECT_EQ(archive.payload_bytes(), 3u * 97u * 4u);
  EXPECT_EQ(archive.Words(), AllWords(chunks));
  EXPECT_TRUE(archive.Verify());
}

TEST(ArchiveRoundTrip, EmptyArchive) {
  const std::string path = TempPath("empty.wrl");
  WriteTestArchive(path, {});
  ArchiveReader archive(path);
  EXPECT_FALSE(archive.degraded());
  EXPECT_EQ(archive.chunk_count(), 0u);
  EXPECT_EQ(archive.word_count(), 0u);
  EXPECT_TRUE(archive.Verify());
}

TEST(ArchiveRoundTrip, ParallelDecodeMatchesSerial) {
  const std::string path = TempPath("parallel.wrl");
  auto chunks = SyntheticChunks(13, 301);
  WriteTestArchive(path, chunks);
  ArchiveReader archive(path);

  std::vector<std::vector<uint32_t>> serial;
  archive.Replay([&serial](const uint32_t* words, size_t count) {
    serial.emplace_back(words, words + count);
  });
  std::vector<std::vector<uint32_t>> parallel;
  archive.ReplayParallel(4, [&parallel](const uint32_t* words, size_t count) {
    parallel.emplace_back(words, words + count);
  });
  // Identical words in identical chunk boundaries — the bit-identity
  // invariant windowed decode is tested against.
  EXPECT_EQ(serial, parallel);
}

TEST(ArchiveRoundTrip, PayloadsShareTheTraceLogCodec) {
  const std::string path = TempPath("codec.wrl");
  auto chunks = SyntheticChunks(5, 400);
  WriteTestArchive(path, chunks);
  TraceLog log;
  for (const auto& chunk : chunks) {
    log.Append(chunk);
  }
  // One codec, two stores: the archive's payload bytes are exactly the
  // packed bytes the in-memory TraceLog holds.
  ArchiveReader archive(path);
  EXPECT_EQ(archive.payload_bytes(), log.stored_bytes());
  EXPECT_EQ(archive.Words(), log.Words());
}

// ---- Crash safety and corruption ----

TEST(ArchiveCorruption, UnfinalizedWriterIsRecoverable) {
  const std::string path = TempPath("unfinalized.wrl");
  auto chunks = SyntheticChunks(4, 211);
  WriteTestArchive(path, chunks, /*packed=*/true, /*finalize=*/false);

  ArchiveReader archive(path);
  EXPECT_TRUE(archive.degraded());
  EXPECT_FALSE(archive.diagnostics().empty());
  ASSERT_EQ(archive.chunk_count(), chunks.size());  // Every chunk was flushed.
  EXPECT_EQ(archive.Words(), AllWords(chunks));
  // Degraded state is a loud finding even when every chunk survived.
  std::vector<std::string> findings;
  EXPECT_FALSE(archive.Verify(&findings));
  EXPECT_FALSE(findings.empty());
}

TEST(ArchiveCorruption, TruncatedFooterRecoversEveryChunk) {
  const std::string path = TempPath("truncfooter.wrl");
  auto chunks = SyntheticChunks(5, 163);
  WriteTestArchive(path, chunks);
  std::string bytes = ReadFileBytes(path);
  WriteFileBytes(path, bytes.substr(0, bytes.size() - 7));  // Tear the footer tail.

  ArchiveReader archive(path);
  EXPECT_TRUE(archive.degraded());
  ASSERT_EQ(archive.chunk_count(), chunks.size());
  EXPECT_EQ(archive.Words(), AllWords(chunks));
  // The scan stops at the footer debris with a chunk-accurate diagnostic.
  bool mentioned = false;
  for (const std::string& line : archive.diagnostics()) {
    mentioned = mentioned || line.find("chunk 5") != std::string::npos;
  }
  EXPECT_TRUE(mentioned);
}

TEST(ArchiveCorruption, TornFinalChunkKeepsThePrefix) {
  const std::string path = TempPath("tornchunk.wrl");
  auto chunks = SyntheticChunks(6, 149);
  WriteTestArchive(path, chunks);
  std::string pristine = ReadFileBytes(path);

  // Cut mid-payload of the final chunk (no footer, half a payload): the
  // recovered prefix must replay bit-identically to the pristine prefix.
  const size_t last = ChunkOffset(pristine, 5);
  WriteFileBytes(path, pristine.substr(0, last + 20 + FileU32(pristine, last + 4) / 2));

  ArchiveReader archive(path);
  EXPECT_TRUE(archive.degraded());
  ASSERT_EQ(archive.chunk_count(), 5u);
  std::vector<uint32_t> expect;
  for (size_t i = 0; i < 5; ++i) {
    expect.insert(expect.end(), chunks[i].begin(), chunks[i].end());
  }
  EXPECT_EQ(archive.Words(), expect);
  bool torn = false;
  for (const std::string& line : archive.diagnostics()) {
    torn = torn || (line.find("chunk 5") != std::string::npos &&
                    line.find("torn") != std::string::npos);
  }
  EXPECT_TRUE(torn) << "diagnostics must name the torn chunk";
}

TEST(ArchiveCorruption, FlippedPayloadByteIsDetectedAtDecode) {
  const std::string path = TempPath("flippayload.wrl");
  auto chunks = SyntheticChunks(4, 131);
  WriteTestArchive(path, chunks);
  std::string bytes = ReadFileBytes(path);
  bytes[ChunkOffset(bytes, 2) + 20 + 5] ^= 0x40;  // One payload byte of chunk 2.
  WriteFileBytes(path, bytes);

  // The footer is intact, so the archive opens cleanly — but the corrupt
  // chunk must throw at decode with its index, and Verify must find it.
  ArchiveReader archive(path);
  EXPECT_FALSE(archive.degraded());
  std::vector<uint32_t> decoded;
  archive.DecodeChunk(1, decoded);  // Neighbors decode independently.
  EXPECT_EQ(decoded, chunks[1]);
  try {
    archive.DecodeChunk(2, decoded);
    FAIL() << "corrupt chunk decoded without error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("chunk 2"), std::string::npos) << e.what();
  }
  std::vector<std::string> findings;
  EXPECT_FALSE(archive.Verify(&findings));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].find("chunk 2"), std::string::npos);
}

TEST(ArchiveCorruption, FlippedCrcFieldIsACorruptRecordHeader) {
  const std::string path = TempPath("flipcrc.wrl");
  auto chunks = SyntheticChunks(3, 101);
  WriteTestArchive(path, chunks);
  std::string bytes = ReadFileBytes(path);
  bytes[ChunkOffset(bytes, 1) + 12] ^= 0x01;  // payload_crc field of chunk 1.
  WriteFileBytes(path, bytes);

  ArchiveReader archive(path);
  std::vector<std::string> findings;
  EXPECT_FALSE(archive.Verify(&findings));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].find("chunk 1"), std::string::npos);
  EXPECT_NE(findings[0].find("header"), std::string::npos);
}

TEST(ArchiveCorruption, CorruptDirectoryFallsBackToScan) {
  const std::string path = TempPath("baddir.wrl");
  auto chunks = SyntheticChunks(4, 87);
  WriteTestArchive(path, chunks);
  std::string bytes = ReadFileBytes(path);
  // Flip a byte inside the footer directory: dir_crc fails, the reader
  // falls back to the forward scan, and every chunk (all intact) survives.
  bytes[bytes.size() - 20] ^= 0x80;
  WriteFileBytes(path, bytes);

  ArchiveReader archive(path);
  EXPECT_TRUE(archive.degraded());
  ASSERT_EQ(archive.chunk_count(), chunks.size());
  EXPECT_EQ(archive.Words(), AllWords(chunks));
}

TEST(ArchiveCorruption, WrongMagicIsAHardError) {
  const std::string path = TempPath("badmagic.wrl");
  WriteTestArchive(path, SyntheticChunks(1, 10));
  std::string bytes = ReadFileBytes(path);
  bytes[0] = 'X';
  WriteFileBytes(path, bytes);
  EXPECT_THROW(ArchiveReader{path}, Error);
}

TEST(ArchiveCorruption, UnknownVersionIsAHardError) {
  const std::string path = TempPath("badversion.wrl");
  WriteTestArchive(path, SyntheticChunks(1, 10));
  std::string bytes = ReadFileBytes(path);
  bytes[4] = 99;  // version = 99 …
  uint32_t crc =   // … with a valid header CRC, so only the version trips.
      Crc32(reinterpret_cast<const uint8_t*>(bytes.data()), 20);
  for (int i = 0; i < 4; ++i) {
    bytes[20 + i] = static_cast<char>(crc >> (8 * i));
  }
  WriteFileBytes(path, bytes);
  try {
    ArchiveReader archive(path);
    FAIL() << "unknown version accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos) << e.what();
  }
}

TEST(ArchiveCorruption, TruncatedHeaderIsAHardError) {
  const std::string path = TempPath("shortheader.wrl");
  WriteTestArchive(path, SyntheticChunks(1, 10));
  WriteFileBytes(path, ReadFileBytes(path).substr(0, 10));
  EXPECT_THROW(ArchiveReader{path}, Error);
}

// ---- End-to-end: archived experiment captures ----

const char* kBody = R"(
        .globl main
main:
        addiu $sp, $sp, -8
        sw   $ra, 4($sp)
        la   $t0, table
        li   $t1, 0
        li   $t2, 64
fill:   sll  $t3, $t1, 2
        addu $t3, $t0, $t3
        sw   $t1, 0($t3)
        addiu $t1, $t1, 1
        bne  $t1, $t2, fill
        nop
        li   $t1, 0
        li   $v0, 0
sum:    sll  $t3, $t1, 2
        addu $t3, $t0, $t3
        lw   $t4, 0($t3)
        addu $v0, $v0, $t4
        addiu $t1, $t1, 1
        bne  $t1, $t2, sum
        nop
        lw   $ra, 4($sp)
        jr   $ra
        addiu $sp, $sp, 8
        .data
table:  .space 256
)";

WorkloadSpec UnitWorkload() {
  WorkloadSpec w;
  w.name = "unit";
  w.description = "tiny compute kernel";
  w.source = kBody;
  return w;
}

TEST(ArchiveExperiment, TeeReplaysToTheLiveAnalysisCountersBitForBit) {
  const std::string path = TempPath("experiment.wrl");
  ExperimentOptions options;
  options.archive_path = path;
  ExperimentResult live = RunExperiment(UnitWorkload(), options);

  // The archive.* instruments rode the run.
  ASSERT_TRUE(live.stats.Has("archive.words"));
  EXPECT_EQ(live.stats.CounterValue("archive.words"), live.trace_words);
  EXPECT_EQ(live.stats.GaugeValue("archive.finalized"), 1.0);

  // Fresh reader + freshly rebuilt capturing system (deterministic builds),
  // exactly what a separate process would do.
  ArchiveReader archive(path);
  EXPECT_FALSE(archive.degraded());
  EXPECT_EQ(archive.word_count(), live.trace_words);
  EXPECT_EQ(archive.MetaValue("workload"), "unit");

  auto make_config = [&](bool tracing) {
    SystemConfig config;
    config.tracing = tracing;
    config.clock_period = tracing ? 200000 * 15 : 200000;
    config.program_source = kBody;
    config.program_name = "unit";
    config.trace_buf_bytes = 16u << 20;
    config.scavenge = options.scavenge;
    return config;
  };
  auto measured = BuildSystem(make_config(false));
  auto traced = BuildSystem(make_config(true));

  PredictorConfig pconfig;
  pconfig.dilation = options.dilation;
  pconfig.page_map = measured->PageMap();
  TraceDrivenSimulator simulator(pconfig);
  simulator.AddTextImage(measured->kernel_exe());
  simulator.AddTextImage(measured->workload_orig());

  ReplaySource source;
  source.log = &archive;
  source.kernel_table = &traced->kernel_table();
  source.user_tables.emplace_back(1, &traced->user_table());
  ReplayEngine engine(std::move(source));
  engine.Parse();
  const std::vector<TraceRef>& refs = engine.refs();
  for (size_t i = 0; i < refs.size(); i += kRefBatchCapacity) {
    simulator.OnRefBatch(refs.data() + i, std::min(kRefBatchCapacity, refs.size() - i));
  }
  simulator.Finish();

  StatsRegistry registry;
  engine.RegisterParserStats(registry, "parser.");
  simulator.RegisterStats(registry, "predicted.");
  StatsSnapshot replayed = registry.Snapshot();

  // Every analysis counter the live run produced, reproduced exactly.
  size_t compared = 0;
  for (const auto& [name, value] : replayed.values()) {
    const StatValue* expect = live.stats.Find(name);
    ASSERT_NE(expect, nullptr) << name;
    if (value.kind == StatValue::Kind::kCounter) {
      EXPECT_EQ(value.counter, expect->counter) << name;
      ++compared;
    } else if (value.kind == StatValue::Kind::kGauge) {
      EXPECT_EQ(value.gauge, expect->gauge) << name;
      ++compared;
    }
  }
  EXPECT_GT(compared, 10u);
}

TEST(ArchiveExperiment, PipelinedAndSynchronousTeesWriteIdenticalArchives) {
  const std::string path_a = TempPath("tee_sync.wrl");
  const std::string path_b = TempPath("tee_pipe.wrl");
  ExperimentOptions sync_options;
  sync_options.pipeline = false;
  sync_options.archive_path = path_a;
  ExperimentOptions pipe_options;
  pipe_options.pipeline = true;
  pipe_options.pipeline_depth = 3;
  pipe_options.archive_path = path_b;
  RunExperiment(UnitWorkload(), sync_options);
  RunExperiment(UnitWorkload(), pipe_options);

  ArchiveReader a(path_a);
  ArchiveReader b(path_b);
  ASSERT_EQ(a.chunk_count(), b.chunk_count());
  EXPECT_EQ(a.word_count(), b.word_count());
  std::vector<uint32_t> wa;
  std::vector<uint32_t> wb;
  for (size_t i = 0; i < a.chunk_count(); ++i) {
    a.DecodeChunk(i, wa);
    b.DecodeChunk(i, wb);
    EXPECT_EQ(wa, wb) << "chunk " << i;
  }
}

TEST(ArchiveExperiment, CaptureReplayModeTeesTheSameCapture) {
  const std::string path = TempPath("tee_capture.wrl");
  ExperimentOptions options;
  options.capture_replay = true;
  options.archive_path = path;
  ExperimentResult result = RunExperiment(UnitWorkload(), options);

  ArchiveReader archive(path);
  EXPECT_EQ(archive.word_count(), result.trace_log_words);
  // Shared codec: the on-disk payload bytes equal the TraceLog's packed
  // footprint the experiment reported.
  EXPECT_EQ(archive.payload_bytes(), result.trace_log_bytes);
}

}  // namespace
}  // namespace wrl
