// Unit tests for the JSON support layer: the streaming writer's protocol
// (nesting, commas, escaping), the reader, and a round trip of a run-report
// shaped document carrying the §5 headline counters.
#include "support/json.h"

#include <gtest/gtest.h>

#include <limits>

#include "support/error.h"

namespace wrl {
namespace {

TEST(JsonWriter, CompactObject) {
  JsonWriter w(0);
  w.BeginObject();
  w.KV("a", 1);
  w.KV("b", true);
  w.Key("c").BeginArray().Value(1).Value(2).EndArray();
  w.EndObject();
  EXPECT_EQ(w.TakeString(), R"({"a":1,"b":true,"c":[1,2]})");
}

TEST(JsonWriter, PrettyPrintIndents) {
  JsonWriter w(2);
  w.BeginObject();
  w.KV("a", 1);
  w.EndObject();
  EXPECT_EQ(w.TakeString(), "{\n  \"a\": 1\n}\n");
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter w(2);
  w.BeginObject();
  w.Key("obj").BeginObject().EndObject();
  w.Key("arr").BeginArray().EndArray();
  w.EndObject();
  EXPECT_EQ(w.TakeString(), "{\n  \"obj\": {},\n  \"arr\": []\n}\n");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w(0);
  w.BeginObject();
  w.KV("s", "a\"b\\c\nd\te");
  w.KV("ctl", std::string_view("\x01", 1));
  w.EndObject();
  EXPECT_EQ(w.TakeString(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\",\"ctl\":\"\\u0001\"}");
}

TEST(JsonWriter, NumberKinds) {
  JsonWriter w(0);
  w.BeginArray();
  w.Value(static_cast<uint64_t>(18446744073709551615ull));
  w.Value(static_cast<int64_t>(-42));
  w.Value(0.5);
  w.Null();
  w.EndArray();
  EXPECT_EQ(w.TakeString(), "[18446744073709551615,-42,0.5,null]");
}

TEST(JsonWriter, NonFiniteDoublesBecomeStrings) {
  JsonWriter w(0);
  w.BeginArray();
  w.Value(std::numeric_limits<double>::infinity());
  w.Value(-std::numeric_limits<double>::infinity());
  w.Value(std::numeric_limits<double>::quiet_NaN());
  w.EndArray();
  EXPECT_EQ(w.TakeString(), R"(["inf","-inf","nan"])");
}

TEST(JsonWriter, MisuseThrows) {
  JsonWriter w;
  w.BeginObject();
  EXPECT_THROW(w.Value(1), InternalError);  // Value without a Key.
  EXPECT_THROW(w.EndArray(), InternalError);
  EXPECT_FALSE(w.Done());
}

TEST(JsonParse, Scalars) {
  EXPECT_EQ(ParseJson("null").kind, JsonValue::Kind::kNull);
  EXPECT_TRUE(ParseJson("true").boolean);
  EXPECT_FALSE(ParseJson("false").boolean);
  EXPECT_DOUBLE_EQ(ParseJson("-12.5e2").number, -1250.0);
  EXPECT_EQ(ParseJson(R"("hi\n\t\"\\")").string, "hi\n\t\"\\");
  EXPECT_EQ(ParseJson(R"("\u0041")").string, "A");
}

TEST(JsonParse, ObjectPreservesSourceOrder) {
  JsonValue v = ParseJson(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(v.IsObject());
  ASSERT_EQ(v.object.size(), 3u);
  EXPECT_EQ(v.object[0].first, "z");
  EXPECT_EQ(v.object[1].first, "a");
  EXPECT_EQ(v.object[2].first, "m");
  EXPECT_DOUBLE_EQ(v.At("a").number, 2.0);
  EXPECT_TRUE(v.Has("m"));
  EXPECT_EQ(v.Find("absent"), nullptr);
  EXPECT_THROW(v.At("absent"), Error);
}

TEST(JsonParse, NestedStructure) {
  JsonValue v = ParseJson(R"({"arr": [1, {"k": "v"}, [true]]})");
  const JsonValue& arr = v.At("arr");
  ASSERT_TRUE(arr.IsArray());
  ASSERT_EQ(arr.array.size(), 3u);
  EXPECT_EQ(arr.array[1].At("k").string, "v");
  EXPECT_TRUE(arr.array[2].array[0].boolean);
}

TEST(JsonParse, MalformedInputThrows) {
  EXPECT_THROW(ParseJson(""), Error);
  EXPECT_THROW(ParseJson("{"), Error);
  EXPECT_THROW(ParseJson("[1,]"), Error);
  EXPECT_THROW(ParseJson("\"unterminated"), Error);
  EXPECT_THROW(ParseJson("nulx"), Error);
  EXPECT_THROW(ParseJson("{} trailing"), Error);
}

// A run-report shaped document with the §5 headline counters (cycles, UTLB
// misses, idle instructions) survives a write -> parse round trip intact.
TEST(JsonRoundTrip, ExperimentReportShape) {
  JsonWriter w;
  w.BeginObject();
  w.KV("schema", "wrlstats/1");
  w.KV("tool", "json_test");
  w.Key("metrics").BeginObject();
  w.KV("ultrix.sed.measured_seconds", 0.1875);
  w.KV("ultrix.sed.time_error_percent", -3.25);
  w.EndObject();
  w.Key("experiments").BeginArray();
  w.BeginObject();
  w.KV("workload", "sed");
  w.KV("personality", "ultrix");
  w.Key("measured").BeginObject();
  w.KV("cycles", static_cast<uint64_t>(4688000));
  w.KV("utlb_misses", static_cast<uint64_t>(1234));
  w.KV("idle_instructions", static_cast<uint64_t>(99));
  w.EndObject();
  w.Key("predicted").BeginObject();
  w.KV("cycles", static_cast<uint64_t>(4535000));
  w.KV("utlb_misses", static_cast<uint64_t>(1190));
  w.EndObject();
  w.EndObject();
  w.EndArray();
  w.Key("traceEvents").BeginArray().EndArray();
  w.EndObject();
  ASSERT_TRUE(w.Done());

  JsonValue v = ParseJson(w.TakeString());
  EXPECT_EQ(v.At("schema").string, "wrlstats/1");
  EXPECT_DOUBLE_EQ(v.At("metrics").At("ultrix.sed.time_error_percent").number, -3.25);
  const JsonValue& exp = v.At("experiments").array.at(0);
  EXPECT_EQ(exp.At("workload").string, "sed");
  EXPECT_DOUBLE_EQ(exp.At("measured").At("cycles").number, 4688000.0);
  EXPECT_DOUBLE_EQ(exp.At("measured").At("utlb_misses").number, 1234.0);
  EXPECT_DOUBLE_EQ(exp.At("measured").At("idle_instructions").number, 99.0);
  EXPECT_DOUBLE_EQ(exp.At("predicted").At("cycles").number, 4535000.0);
  EXPECT_TRUE(v.At("traceEvents").IsArray());
}

}  // namespace
}  // namespace wrl
