#include <gtest/gtest.h>

#include "support/error.h"
#include "support/rng.h"
#include "support/strings.h"

namespace wrl {
namespace {

TEST(Strings, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(Hex32(0xdeadbeef), "0xdeadbeef");
  EXPECT_EQ(Hex32(5), "0x00000005");
}

TEST(Strings, SplitFields) {
  auto f = SplitFields("a, b,,c", " ,");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "b");
  EXPECT_EQ(f[2], "c");
  EXPECT_TRUE(SplitFields("", ",").empty());
}

TEST(Strings, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace("\t \n"), "");
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(ParseInt("42"), 42);
  EXPECT_EQ(ParseInt("-17"), -17);
  EXPECT_EQ(ParseInt("0x10"), 16);
  EXPECT_EQ(ParseInt("0xFFFFFFFF"), 0xffffffffLL);
  EXPECT_EQ(ParseInt(" 7 "), 7);
  EXPECT_THROW(ParseInt(""), Error);
  EXPECT_THROW(ParseInt("12x"), Error);
  EXPECT_THROW(ParseInt("0x"), Error);
  EXPECT_THROW(ParseInt("9a"), Error);
}

TEST(Error, CheckMacroThrowsInternalError) {
  EXPECT_THROW(WRL_CHECK(false), InternalError);
  EXPECT_NO_THROW(WRL_CHECK(true));
  try {
    WRL_CHECK_MSG(1 == 2, "details here");
    FAIL();
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("details here"), std::string::npos);
  }
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(Rng, BelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, RoughlyUniform) {
  Rng rng(11);
  int buckets[10] = {0};
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    ++buckets[rng.Below(10)];
  }
  for (int count : buckets) {
    EXPECT_NEAR(count, kSamples / 10, kSamples / 100);
  }
}

}  // namespace
}  // namespace wrl
