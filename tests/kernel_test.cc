// Kernel bring-up tests: boot the WRTX kernel on the simulated machine and
// exercise syscalls, scheduling, the TLB paths, file I/O, and both
// personalities — all untraced (the tracing integration has its own suite).
#include <gtest/gtest.h>

#include "kernel/system_build.h"
#include "support/strings.h"

namespace wrl {
namespace {

constexpr uint64_t kBudget = 80'000'000;

std::unique_ptr<SystemInstance> Boot(const std::string& program,
                                     Personality personality = Personality::kUltrix,
                                     std::vector<DiskFile> files = {}) {
  SystemConfig config;
  config.personality = personality;
  config.tracing = false;
  config.program_source = program;
  config.files = std::move(files);
  if (personality == Personality::kMach) {
    config.policy = PagePolicy::kScrambled;
  }
  return BuildSystem(config);
}

TEST(Kernel, BootAndExit) {
  auto sys = Boot(R"(
        .globl main
main:
        jr   $ra
        li   $v0, 7              # exit code via main's return value
)");
  RunResult r = sys->Run(kBudget);
  ASSERT_TRUE(r.halted) << "pc=" << Hex32(sys->machine().pc());
  EXPECT_EQ(r.halt_code, 0u);
  EXPECT_EQ(sys->ProcessExitCode(1), 7u);
  EXPECT_GT(sys->ProcessCycles(1), 0u);
}

TEST(Kernel, ConsoleWrite) {
  auto sys = Boot(R"(
        .globl main
main:
        addiu $sp, $sp, -8
        sw   $ra, 4($sp)
        li   $a0, 1
        la   $a1, msg
        li   $a2, 13
        jal  write
        nop
        lw   $ra, 4($sp)
        jr   $ra
        addiu $sp, $sp, 8
        .data
msg:    .asciiz "hello, kernel"
)");
  RunResult r = sys->Run(kBudget);
  ASSERT_TRUE(r.halted);
  EXPECT_EQ(sys->ConsoleOutput(), "hello, kernel");
}

TEST(Kernel, UtlbMissesAreCountedAndServiced) {
  // Touch a spread of data pages; every first touch is a UTLB miss the
  // kernel handler must service and count.
  auto sys = Boot(R"(
        .globl main
main:
        addiu $sp, $sp, -8
        sw   $ra, 4($sp)
        la   $t0, big
        li   $t1, 16             # pages
        li   $t2, 0
touch:  sw   $t2, 0($t0)
        addiu $t0, $t0, 4096
        addiu $t2, $t2, 1
        bne  $t2, $t1, touch
        nop
        jal  utlbcount
        nop
        move $v0, $v0
        lw   $ra, 4($sp)
        jr   $ra
        addiu $sp, $sp, 8
        .bss
        .align 4096
big:    .space 65536
)");
  RunResult r = sys->Run(kBudget);
  ASSERT_TRUE(r.halted);
  EXPECT_GT(sys->UtlbMissCount(), 16u);  // Data pages + text/stack misses.
  EXPECT_EQ(sys->UtlbMissCount(), sys->machine().utlb_miss_exceptions());
}

TEST(Kernel, KtlbRefillsHappen) {
  // Page tables live in kseg2: the very first user mapping at boot forces
  // KTLB refills through the general vector.
  auto sys = Boot(R"(
        .globl main
main:   jr   $ra
        li   $v0, 0
)");
  RunResult r = sys->Run(kBudget);
  ASSERT_TRUE(r.halted);
  EXPECT_GT(sys->KtlbRefills(), 0u);
}

TEST(Kernel, SbrkGrowsHeap) {
  auto sys = Boot(R"(
        .globl main
main:
        addiu $sp, $sp, -12
        sw   $ra, 8($sp)
        li   $a0, 8192
        jal  sbrk
        nop
        sw   $v0, 4($sp)
        # Write into the new pages.
        lw   $t0, 4($sp)
        li   $t1, 1234
        sw   $t1, 0($t0)
        sw   $t1, 8188($t0)
        lw   $t2, 0($t0)
        lw   $t3, 8188($t0)
        addu $v0, $t2, $t3       # 2468
        lw   $ra, 8($sp)
        jr   $ra
        addiu $sp, $sp, 12
)");
  RunResult r = sys->Run(kBudget);
  ASSERT_TRUE(r.halted);
  EXPECT_EQ(sys->ProcessExitCode(1), 2468u);
}

TEST(Kernel, GetTimeAdvances) {
  auto sys = Boot(R"(
        .globl main
main:
        addiu $sp, $sp, -12
        sw   $ra, 8($sp)
        jal  gettime
        nop
        sw   $v0, 4($sp)
        jal  gettime
        nop
        lw   $t0, 4($sp)
        subu $v0, $v0, $t0       # elapsed > 0
        sltu $v0, $zero, $v0
        lw   $ra, 8($sp)
        jr   $ra
        addiu $sp, $sp, 12
)");
  RunResult r = sys->Run(kBudget);
  ASSERT_TRUE(r.halted);
  EXPECT_EQ(sys->ProcessExitCode(1), 1u);
}

TEST(Kernel, FileReadUltrix) {
  std::vector<uint8_t> content;
  for (int i = 0; i < 6000; ++i) {
    content.push_back(static_cast<uint8_t>('a' + (i % 26)));
  }
  auto sys = Boot(R"(
        .globl main
main:
        addiu $sp, $sp, -12
        sw   $ra, 8($sp)
        la   $a0, fname
        jal  open
        nop
        sw   $v0, 4($sp)         # fd
        lw   $a0, 4($sp)
        la   $a1, buf
        li   $a2, 6000
        jal  read
        nop
        sw   $v0, 0($sp)         # bytes read
        # Checksum a few positions: buf[0]='a', buf[25]='z', buf[26]='a'.
        la   $t0, buf
        lbu  $t1, 0($t0)
        lbu  $t2, 25($t0)
        lbu  $t3, 5999($t0)
        addu $v0, $t1, $t2
        addu $v0, $v0, $t3
        lw   $t4, 0($sp)
        addu $v0, $v0, $t4       # + 6000
        lw   $ra, 8($sp)
        jr   $ra
        addiu $sp, $sp, 12
        .data
fname:  .asciiz "data.in"
        .bss
buf:    .space 8192
)",
                  Personality::kUltrix, {{"data.in", content, 0}});
  RunResult r = sys->Run(kBudget);
  ASSERT_TRUE(r.halted) << "pc=" << Hex32(sys->machine().pc());
  // 'a' + 'z' + content[5999] + 6000.
  uint32_t expected = 'a' + 'z' + ('a' + (5999 % 26)) + 6000;
  EXPECT_EQ(sys->ProcessExitCode(1), expected);
  EXPECT_GT(sys->machine().disk().operations(), 1u);  // Dir + data blocks.
}

TEST(Kernel, FileWriteReadBackUltrix) {
  auto sys = Boot(R"(
        .globl main
main:
        addiu $sp, $sp, -12
        sw   $ra, 8($sp)
        la   $a0, fname
        jal  open
        nop
        sw   $v0, 4($sp)
        # Write a pattern.
        lw   $a0, 4($sp)
        la   $a1, out
        li   $a2, 512
        jal  write
        nop
        lw   $a0, 4($sp)
        jal  close
        nop
        # Reopen and read back.
        la   $a0, fname
        jal  open
        nop
        sw   $v0, 4($sp)
        lw   $a0, 4($sp)
        la   $a1, in
        li   $a2, 512
        jal  read
        nop
        la   $t0, in
        lbu  $t1, 0($t0)
        lbu  $t2, 511($t0)
        addu $v0, $t1, $t2
        lw   $ra, 8($sp)
        jr   $ra
        addiu $sp, $sp, 12
        .data
fname:  .asciiz "scratch"
out_pre: .byte 0
        .align 4
out:    .space 512
        .bss
in:     .space 512
)",
                  Personality::kUltrix, {{"scratch", {}, 4096}});
  // Fill the output pattern before boot: patch the workload image? Easier:
  // initialize in the program itself.
  // (The .data out buffer is zero; write a marker first via code instead.)
  RunResult r = sys->Run(kBudget);
  ASSERT_TRUE(r.halted) << "pc=" << Hex32(sys->machine().pc());
  EXPECT_EQ(sys->ProcessExitCode(1), 0u);  // Zero pattern reads back as zero.
}

TEST(Kernel, MachPersonalityFileRead) {
  std::vector<uint8_t> content;
  for (int i = 0; i < 5000; ++i) {
    content.push_back(static_cast<uint8_t>(i & 0xff));
  }
  auto sys = Boot(R"(
        .globl main
main:
        addiu $sp, $sp, -12
        sw   $ra, 8($sp)
        la   $a0, fname
        jal  open
        nop
        sw   $v0, 4($sp)
        lw   $a0, 4($sp)
        la   $a1, buf
        li   $a2, 5000
        jal  read
        nop
        sw   $v0, 0($sp)
        la   $t0, buf
        lbu  $t1, 1($t0)         # 1
        lbu  $t2, 4999($t0)      # 4999 & 0xff = 135
        addu $v0, $t1, $t2
        lw   $t3, 0($sp)
        addu $v0, $v0, $t3       # + 5000
        lw   $ra, 8($sp)
        jr   $ra
        addiu $sp, $sp, 12
        .data
fname:  .asciiz "data.in"
        .bss
buf:    .space 8192
)",
                  Personality::kMach, {{"data.in", content, 0}});
  RunResult r = sys->Run(kBudget);
  ASSERT_TRUE(r.halted) << "pc=" << Hex32(sys->machine().pc());
  EXPECT_EQ(sys->ProcessExitCode(1), 1u + 135u + 5000u);
  // The paper's Mach signature: explicit tlb_map_random TLB loads.
  EXPECT_GT(sys->TlbDropins(), 0u);
  EXPECT_GT(sys->ContextSwitches(), 2u);  // Client/server switching.
}

TEST(Kernel, UltrixUsesTlbDropin) {
  std::vector<uint8_t> content(4096, 'x');
  auto sys = Boot(R"(
        .globl main
main:
        addiu $sp, $sp, -12
        sw   $ra, 8($sp)
        la   $a0, fname
        jal  open
        nop
        move $a0, $v0
        la   $a1, buf
        li   $a2, 4096
        jal  read
        nop
        move $v0, $zero
        lw   $ra, 8($sp)
        jr   $ra
        addiu $sp, $sp, 12
        .data
fname:  .asciiz "f"
        .bss
buf:    .space 4096
)",
                  Personality::kUltrix, {{"f", content, 0}});
  RunResult r = sys->Run(kBudget);
  ASSERT_TRUE(r.halted);
  EXPECT_GT(sys->TlbDropins(), 0u);
}

TEST(Kernel, ClockTicksAndIdleLoopRuns) {
  // A program that does disk I/O forces idle time while waiting.
  std::vector<uint8_t> content(20000, 'y');
  auto sys = Boot(R"(
        .globl main
main:
        addiu $sp, $sp, -12
        sw   $ra, 8($sp)
        la   $a0, fname
        jal  open
        nop
        move $a0, $v0
        la   $a1, buf
        li   $a2, 20000
        jal  read
        nop
        move $v0, $zero
        lw   $ra, 8($sp)
        jr   $ra
        addiu $sp, $sp, 12
        .data
fname:  .asciiz "f"
        .bss
buf:    .space 20480
)",
                  Personality::kUltrix, {{"f", content, 0}});
  auto [idle_lo, idle_hi] = sys->IdleRange();
  sys->machine().SetIdleRange(idle_lo, idle_hi);
  RunResult r = sys->Run(kBudget);
  ASSERT_TRUE(r.halted);
  EXPECT_GT(sys->machine().idle_instructions(), 100u);
  EXPECT_GT(sys->machine().clock().ticks(), 0u);
}

}  // namespace
}  // namespace wrl
