#include "asm/assembler.h"

#include <gtest/gtest.h>

#include "isa/isa.h"
#include "support/error.h"

namespace wrl {
namespace {

TEST(Assembler, BasicInstructions) {
  ObjectFile obj = Assemble("t.s", R"(
        .text
        addu  $t0, $t1, $t2
        addiu $sp, $sp, -24
        sw    $ra, 20($sp)
        lw    $v0, 0($a0)
        nop
)");
  ASSERT_EQ(obj.NumTextWords(), 5u);
  EXPECT_EQ(Decode(obj.TextWord(0)).op, Op::kAddu);
  Inst addiu = Decode(obj.TextWord(4));
  EXPECT_EQ(addiu.op, Op::kAddiu);
  EXPECT_EQ(addiu.imm, -24);
  Inst sw = Decode(obj.TextWord(8));
  EXPECT_EQ(sw.op, Op::kSw);
  EXPECT_EQ(sw.rt, kRa);
  EXPECT_EQ(sw.rs, kSp);
  EXPECT_EQ(sw.imm, 20);
  EXPECT_EQ(obj.TextWord(16), 0u);
}

TEST(Assembler, CommentsAndLabels) {
  ObjectFile obj = Assemble("t.s", R"(
# full-line comment
start:  nop          # trailing comment
loop:   b loop       # spin
        nop
)");
  EXPECT_EQ(obj.NumTextWords(), 3u);
  bool found_start = false;
  bool found_loop = false;
  for (const Symbol& s : obj.symbols) {
    if (s.name == "start") {
      found_start = true;
      EXPECT_EQ(s.value, 0u);
    }
    if (s.name == "loop") {
      found_loop = true;
      EXPECT_EQ(s.value, 4u);
    }
  }
  EXPECT_TRUE(found_start);
  EXPECT_TRUE(found_loop);
}

TEST(Assembler, BranchResolution) {
  ObjectFile obj = Assemble("t.s", R"(
        beq  $t0, $t1, fwd
        nop
        nop
fwd:    bne  $t0, $zero, fwd
        nop
)");
  // beq at 0, target at 12: offset = (12 - 4) / 4 = 2.
  EXPECT_EQ(Decode(obj.TextWord(0)).imm, 2);
  // bne at 12, target 12: offset = (12 - 16) / 4 = -1.
  EXPECT_EQ(Decode(obj.TextWord(12)).imm, -1);
}

TEST(Assembler, BranchToUndefinedLabelFails) {
  EXPECT_THROW(Assemble("t.s", "beq $t0, $t1, nowhere\nnop\n"), Error);
}

TEST(Assembler, LiExpansions) {
  ObjectFile obj = Assemble("t.s", R"(
        li $t0, 42
        li $t1, -5
        li $t2, 0x12345678
        li $t3, 0x10000
)");
  // 42 -> ori (1 word).
  Inst i0 = Decode(obj.TextWord(0));
  EXPECT_EQ(i0.op, Op::kOri);
  EXPECT_EQ(static_cast<uint16_t>(i0.imm), 42);
  // -5 -> addiu (1 word).
  Inst i1 = Decode(obj.TextWord(4));
  EXPECT_EQ(i1.op, Op::kAddiu);
  EXPECT_EQ(i1.imm, -5);
  // 0x12345678 -> lui + ori.
  EXPECT_EQ(Decode(obj.TextWord(8)).op, Op::kLui);
  EXPECT_EQ(Decode(obj.TextWord(12)).op, Op::kOri);
  // 0x10000 -> lui only (low half zero).
  EXPECT_EQ(Decode(obj.TextWord(16)).op, Op::kLui);
  EXPECT_EQ(obj.NumTextWords(), 5u);
}

TEST(Assembler, LiZeroEncodesTraceLengthNoOp) {
  // The paper's "li zero, N" delay-slot no-op must encode N in the
  // immediate field of an ori to $zero.
  ObjectFile obj = Assemble("t.s", "li $zero, 4\n");
  Inst inst = Decode(obj.TextWord(0));
  EXPECT_EQ(inst.op, Op::kOri);
  EXPECT_EQ(inst.rt, kZero);
  EXPECT_EQ(inst.imm, 4);
}

TEST(Assembler, LaEmitsRelocations) {
  ObjectFile obj = Assemble("t.s", R"(
        .text
        la $a0, message
        .data
message: .asciiz "hello"
)");
  ASSERT_EQ(obj.relocations.size(), 2u);
  EXPECT_EQ(obj.relocations[0].type, RelocType::kHi16);
  EXPECT_EQ(obj.relocations[0].offset, 0u);
  EXPECT_EQ(obj.relocations[0].symbol, "message");
  EXPECT_EQ(obj.relocations[1].type, RelocType::kLo16);
  EXPECT_EQ(obj.relocations[1].offset, 4u);
}

TEST(Assembler, JumpEmitsReloc) {
  ObjectFile obj = Assemble("t.s", R"(
        jal helper
        nop
helper: jr $ra
        nop
)");
  ASSERT_EQ(obj.relocations.size(), 1u);
  EXPECT_EQ(obj.relocations[0].type, RelocType::kJump26);
  EXPECT_EQ(obj.relocations[0].symbol, "helper");
}

TEST(Assembler, DataDirectives) {
  ObjectFile obj = Assemble("t.s", R"(
        .data
bytes:  .byte 1, 2, 3
        .align 4
words:  .word 0x11223344, -1
str:    .asciiz "a\nb"
        .space 3
)");
  ASSERT_EQ(obj.data.size(), 4u + 8u + 4u + 3u);
  EXPECT_EQ(obj.data[0], 1);
  EXPECT_EQ(obj.data[3], 0);  // align padding
  EXPECT_EQ(obj.data[4], 0x44);
  EXPECT_EQ(obj.data[7], 0x11);
  EXPECT_EQ(obj.data[12], 'a');
  EXPECT_EQ(obj.data[13], '\n');
  EXPECT_EQ(obj.data[15], 0);  // asciiz terminator
}

TEST(Assembler, WordWithSymbolEmitsDataReloc) {
  ObjectFile obj = Assemble("t.s", R"(
        .text
entry:  nop
        .data
table:  .word entry, entry+4
)");
  ASSERT_EQ(obj.relocations.size(), 2u);
  EXPECT_EQ(obj.relocations[0].section, SectionId::kData);
  EXPECT_EQ(obj.relocations[0].type, RelocType::kWord32);
  EXPECT_EQ(obj.relocations[1].addend, 4);
}

TEST(Assembler, BssSpace) {
  ObjectFile obj = Assemble("t.s", R"(
        .bss
buf:    .space 4096
buf2:   .space 16
)");
  EXPECT_EQ(obj.bss_size, 4112u);
}

TEST(Assembler, GlobalSymbols) {
  ObjectFile obj = Assemble("t.s", R"(
        .globl _start
_start: nop
local:  nop
)");
  for (const Symbol& s : obj.symbols) {
    if (s.name == "_start") {
      EXPECT_TRUE(s.global);
    }
    if (s.name == "local") {
      EXPECT_FALSE(s.global);
    }
  }
}

TEST(Assembler, DuplicateLabelFails) {
  EXPECT_THROW(Assemble("t.s", "a: nop\na: nop\n"), Error);
}

TEST(Assembler, Cop0Instructions) {
  ObjectFile obj = Assemble("t.s", R"(
        mfc0 $k0, $badvaddr
        mtc0 $k1, $entryhi
        mfc0 $t0, $12
        tlbwr
        rfe
)");
  EXPECT_EQ(Decode(obj.TextWord(0)).op, Op::kMfc0);
  EXPECT_EQ(Decode(obj.TextWord(0)).rd, kCop0BadVAddr);
  EXPECT_EQ(Decode(obj.TextWord(4)).op, Op::kMtc0);
  EXPECT_EQ(Decode(obj.TextWord(8)).rd, kCop0Status);
  EXPECT_EQ(Decode(obj.TextWord(12)).op, Op::kTlbwr);
  EXPECT_EQ(Decode(obj.TextWord(16)).op, Op::kRfe);
}

TEST(Assembler, SyscallWithCode) {
  ObjectFile obj = Assemble("t.s", "syscall 17\nbreak 3\nsyscall\n");
  EXPECT_EQ(TrapCode(obj.TextWord(0)), 17u);
  EXPECT_EQ(TrapCode(obj.TextWord(4)), 3u);
  EXPECT_EQ(TrapCode(obj.TextWord(8)), 0u);
}

TEST(Assembler, BlockLeaders) {
  ObjectFile obj = Assemble("t.s", R"(
_start: nop                 # block 0 @0
        beq $t0, $t1, skip  # ends block
        nop                 # delay slot
        nop                 # block @12 (post-delay-slot)
skip:   nop                 # block @16 (label + branch target)
        jal f               # ends block
        nop                 # delay slot
        nop                 # block @28
f:      jr $ra              # block @32
        nop
)");
  std::vector<uint32_t> leaders;
  for (const BlockAnnotation& b : obj.blocks) {
    leaders.push_back(b.offset);
  }
  EXPECT_EQ(leaders, (std::vector<uint32_t>{0, 12, 16, 28, 32}));
}

TEST(Assembler, NoTraceRegionFlags) {
  ObjectFile obj = Assemble("t.s", R"(
normal: nop
        jr $ra
        nop
        .notrace_on
secret: nop
        jr $ra
        nop
        .notrace_off
after:  nop
)");
  for (const BlockAnnotation& b : obj.blocks) {
    bool in_secret = b.offset >= 12 && b.offset < 24;
    EXPECT_EQ((b.flags & kBlockNoTrace) != 0, in_secret) << "offset " << b.offset;
  }
}

TEST(Assembler, IdleFlagsAttachToBlock) {
  ObjectFile obj = Assemble("t.s", R"(
        nop
        jr $ra
        nop
        .idle_start
idle:   b idle
        nop
)");
  bool found = false;
  for (const BlockAnnotation& b : obj.blocks) {
    if (b.offset == 12) {
      EXPECT_TRUE(b.flags & kBlockIdleStart);
      found = true;
    } else {
      EXPECT_FALSE(b.flags & kBlockIdleStart);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    Assemble("file.s", "nop\nnop\nbogus $t0\n");
    FAIL() << "expected error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("file.s:3"), std::string::npos) << e.what();
  }
}

TEST(Assembler, MemoryOffsetRangeChecked) {
  EXPECT_THROW(Assemble("t.s", "lw $t0, 40000($t1)\n"), Error);
  EXPECT_NO_THROW(Assemble("t.s", "lw $t0, -32768($t1)\n"));
}

TEST(Assembler, ImmediateRangeChecked) {
  EXPECT_THROW(Assemble("t.s", "addiu $t0, $t1, 40000\n"), Error);
  EXPECT_THROW(Assemble("t.s", "andi $t0, $t1, -1\n"), Error);
  EXPECT_NO_THROW(Assemble("t.s", "andi $t0, $t1, 0xffff\n"));
}

TEST(ObjectFileSerialization, RoundTrip) {
  ObjectFile obj = Assemble("round.s", R"(
        .text
        .globl _start
_start: la $a0, data
        jal f
        nop
        syscall 1
f:      jr $ra
        nop
        .notrace_on
hidden: nop
        .notrace_off
        .data
data:   .word _start, 99
        .bss
scratch: .space 256
)");
  std::vector<uint8_t> bytes = obj.Serialize();
  ObjectFile copy = ObjectFile::Deserialize(bytes);
  EXPECT_EQ(copy.source_name, obj.source_name);
  EXPECT_EQ(copy.text, obj.text);
  EXPECT_EQ(copy.data, obj.data);
  EXPECT_EQ(copy.bss_size, obj.bss_size);
  ASSERT_EQ(copy.symbols.size(), obj.symbols.size());
  for (size_t i = 0; i < copy.symbols.size(); ++i) {
    EXPECT_EQ(copy.symbols[i].name, obj.symbols[i].name);
    EXPECT_EQ(copy.symbols[i].value, obj.symbols[i].value);
    EXPECT_EQ(copy.symbols[i].global, obj.symbols[i].global);
  }
  ASSERT_EQ(copy.relocations.size(), obj.relocations.size());
  ASSERT_EQ(copy.blocks.size(), obj.blocks.size());
  for (size_t i = 0; i < copy.blocks.size(); ++i) {
    EXPECT_EQ(copy.blocks[i].offset, obj.blocks[i].offset);
    EXPECT_EQ(copy.blocks[i].flags, obj.blocks[i].flags);
  }
}

TEST(ObjectFileSerialization, RejectsBadMagic) {
  std::vector<uint8_t> bytes = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_THROW(ObjectFile::Deserialize(bytes), Error);
}

}  // namespace
}  // namespace wrl
