// The fast-path contract (mach/machine.h FastPathConfig): predecode,
// micro-TLB, and event-driven devices are pure optimizations.  With any of
// them on or off, the machine must produce byte-identical architectural
// results — every trace word, cycle count, and counter.  These tests hold
// it to that, and poke the invalidation edges where each cache could go
// stale: self-modifying code, DMA into predecoded text, TLB rewrites, and
// ASID switches.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kernel/system_build.h"
#include "stats/stats.h"
#include "support/json.h"
#include "tests/test_util.h"

namespace wrl {
namespace {

// ---------------------------------------------------------------------------
// Whole-system determinism: a traced workload run with all fast paths on
// must be byte-identical — trace words, cycles, and the full counter
// registry — to the all-off slow path.

struct TracedCapture {
  std::vector<uint32_t> trace_words;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  std::string counters_json;
};

TracedCapture RunTracedWith(const FastPathConfig& fastpath) {
  SystemConfig config;
  config.tracing = true;
  config.clock_period = 200000 * 15;
  config.fastpath = fastpath;
  config.program_source = R"(
        .globl main
main:
        addiu $sp, $sp, -8
        sw   $ra, 4($sp)
        la   $t0, table
        li   $t1, 0
        li   $t2, 64
fill:   sll  $t3, $t1, 2
        addu $t3, $t0, $t3
        sw   $t1, 0($t3)
        addiu $t1, $t1, 1
        bne  $t1, $t2, fill
        nop
        li   $t1, 0
        li   $v0, 0
sum:    sll  $t3, $t1, 2
        addu $t3, $t0, $t3
        lw   $t4, 0($t3)
        addu $v0, $v0, $t4
        addiu $t1, $t1, 1
        bne  $t1, $t2, sum
        nop
        lw   $ra, 4($sp)
        jr   $ra
        addiu $sp, $sp, 8
        .data
table:  .space 256
)";
  auto sys = BuildSystem(config);

  TracedCapture capture;
  sys->SetTraceSink([&](const uint32_t* words, size_t count) {
    capture.trace_words.insert(capture.trace_words.end(), words, words + count);
  });
  RunResult r = sys->Run(400'000'000);
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(sys->machine().halt_code(), 0u);
  capture.cycles = sys->machine().cycles();
  capture.instructions = sys->machine().instructions();

  StatsRegistry registry;
  sys->RegisterStats(registry, "sys.");
  JsonWriter writer;
  registry.Snapshot().WriteJson(writer);
  capture.counters_json = writer.TakeString();
  return capture;
}

TEST(FastPath, TracedSystemByteIdenticalToSlowPath) {
  TracedCapture fast = RunTracedWith(FastPathConfig{});
  TracedCapture slow = RunTracedWith(FastPathConfig::AllOff());
  EXPECT_EQ(fast.cycles, slow.cycles);
  EXPECT_EQ(fast.instructions, slow.instructions);
  ASSERT_EQ(fast.trace_words.size(), slow.trace_words.size());
  EXPECT_EQ(fast.trace_words, slow.trace_words);
  EXPECT_EQ(fast.counters_json, slow.counters_json);
}

// Each layer individually must also be invisible.
TEST(FastPath, EachLayerAloneIsByteIdentical) {
  TracedCapture slow = RunTracedWith(FastPathConfig::AllOff());
  for (int layer = 0; layer < 3; ++layer) {
    FastPathConfig one = FastPathConfig::AllOff();
    one.predecode = layer == 0;
    one.micro_tlb = layer == 1;
    one.event_devices = layer == 2;
    TracedCapture run = RunTracedWith(one);
    EXPECT_EQ(run.cycles, slow.cycles) << "layer " << layer;
    EXPECT_EQ(run.trace_words, slow.trace_words) << "layer " << layer;
    EXPECT_EQ(run.counters_json, slow.counters_json) << "layer " << layer;
  }
}

// ---------------------------------------------------------------------------
// Invalidation edges, run under both configurations.

std::unique_ptr<Machine> RunWithFastpath(const std::string& source, bool on,
                                         MachineConfig config = {}) {
  config.fastpath = on ? FastPathConfig{} : FastPathConfig::AllOff();
  return RunBareProgram(source, 1'000'000, config);
}

// For programs that lay out their own exception vectors (linked at kseg0
// base so the UTLB/general handlers land at 0x80000000/0x80000080).
std::unique_ptr<Machine> RunVectored(const std::string& source, bool on) {
  MachineConfig config;
  config.fastpath = on ? FastPathConfig{} : FastPathConfig::AllOff();
  ObjectFile obj = Assemble("t.s", source);
  LinkOptions options;
  options.text_base = kKseg0;
  Executable exe = Link({obj}, options);
  auto m = std::make_unique<Machine>(config);
  LoadBare(*m, exe);
  m->Run(1'000'000);
  EXPECT_TRUE(m->halted());
  return m;
}

// A store into an already-executed (and therefore predecoded) text page
// must be visible to the next fetch of that instruction.
constexpr const char* kSelfModifyingProgram = R"(
        .globl _start
_start: li   $v0, 0
        li   $t5, 2
pass:
patch:  addiu $v0, $v0, 1        # pass 2 executes the patched version
        la   $t0, patch
        li   $t1, 0x24420064     # addiu $v0, $v0, 100
        sw   $t1, 0($t0)
        addiu $t5, $t5, -1
        bne  $t5, $zero, pass
        nop
        li   $t9, 0xbfd00004
        sw   $v0, 0($t9)         # halt(v0)
        nop
spin:   b    spin
        nop
)";

TEST(FastPath, SelfModifyingCodeRedecodes) {
  // Pass 1 adds 1, pass 2 executes the patched add of 100.
  EXPECT_EQ(RunWithFastpath(kSelfModifyingProgram, true)->halt_code(), 101u);
  EXPECT_EQ(RunWithFastpath(kSelfModifyingProgram, false)->halt_code(), 101u);
}

// Disk DMA into a predecoded text page must invalidate the cached decode.
uint32_t RunDmaOverwrite(bool fastpath_on) {
  MachineConfig config;
  config.fastpath = fastpath_on ? FastPathConfig{} : FastPathConfig::AllOff();
  config.disk.seek_cycles = 500;
  config.disk.per_sector_cycles = 100;
  Machine m{config};
  // Sector 3 holds the replacement routine: li $v0, 42; jr $ra; nop.
  const uint32_t replacement[3] = {0x2402002a, 0x03e00008, 0x00000000};
  for (int w = 0; w < 3; ++w) {
    for (int b = 0; b < 4; ++b) {
      m.disk().image()[3 * 512 + w * 4 + b] =
          static_cast<uint8_t>(replacement[w] >> (8 * b));
    }
  }
  Executable exe = BuildBareProgram(R"(
        .globl _start
_start: # Plant routine A at phys 0x200000: li $v0, 7; jr $ra; nop.
        li   $t2, 0x80200000
        li   $t1, 0x24020007
        sw   $t1, 0($t2)
        li   $t1, 0x03e00008
        sw   $t1, 4($t2)
        sw   $zero, 8($t2)
        jalr $t2                 # v0 = 7 (page now predecoded)
        nop
        addu $s0, $v0, $zero
        # DMA sector 3 over the same page and wait for completion.
        li   $t9, 0xbfd00000
        li   $t0, 3
        sw   $t0, 0x20($t9)      # DISK_SECTOR
        li   $t0, 0x00200000
        sw   $t0, 0x24($t9)      # DISK_ADDR
        li   $t0, 1
        sw   $t0, 0x28($t9)      # DISK_COUNT
        sw   $t0, 0x2c($t9)      # DISK_CMD = read
poll:   lw   $t1, 0x30($t9)      # DISK_STATUS
        li   $t3, 2              # 2 = done
        bne  $t1, $t3, poll
        nop
        sw   $zero, 0x34($t9)    # DISK_ACK
        jalr $t2                 # must execute the DMA'd routine: v0 = 42
        nop
        li   $t4, 100
        mult $s0, $t4
        mflo $t5
        addu $v0, $t5, $v0       # halt(first * 100 + second)
        li   $t9, 0xbfd00004
        sw   $v0, 0($t9)
        nop
spin:   b    spin
        nop
)");
  LoadBare(m, exe);
  m.Run(1'000'000);
  EXPECT_TRUE(m.halted());
  return m.halt_code();
}

TEST(FastPath, DmaInvalidatesPredecodedPage) {
  EXPECT_EQ(RunDmaOverwrite(true), 742u);
  EXPECT_EQ(RunDmaOverwrite(false), 742u);
}

// Rewriting a TLB entry with tlbwi must flush the micro-TLB: the next load
// through the same virtual page has to see the new frame.
constexpr const char* kTlbRewriteProgram = R"(
        .globl _start
        .space 0x80              # UTLB vector unused (entry always present)
gen:    mfc0 $k0, $cause
        srl  $k0, $k0, 2
        andi $v0, $k0, 31
        li   $t9, 0xbfd00004
        sw   $v0, 0($t9)
        nop
        .space 0x100
_start: # Distinct values in phys pages 0x100 and 0x101.
        li   $t0, 0x80100000
        li   $t1, 1111
        sw   $t1, 0x10($t0)
        li   $t0, 0x80101000
        li   $t1, 2222
        sw   $t1, 0x10($t0)
        # Map user page 0 -> pfn 0x100 (dirty|valid).
        mtc0 $zero, $entryhi
        li   $t1, 0x00100600
        mtc0 $t1, $entrylo
        mtc0 $zero, $index
        tlbwi
        li   $t2, 0x10
        lw   $t3, 0($t2)         # 1111; primes the micro-TLB
        # Rewrite index 0 -> pfn 0x101.
        li   $t1, 0x00101600
        mtc0 $t1, $entrylo
        tlbwi
        lw   $t4, 0($t2)         # must read 2222, not a stale 1111
        addu $v0, $t3, $t4       # halt(3333)
        li   $t9, 0xbfd00004
        sw   $v0, 0($t9)
        nop
spin:   b    spin
        nop
)";

TEST(FastPath, TlbRewriteInvalidatesMicroTlb) {
  EXPECT_EQ(RunVectored(kTlbRewriteProgram, true)->halt_code(), 3333u);
  EXPECT_EQ(RunVectored(kTlbRewriteProgram, false)->halt_code(), 3333u);
}

// Switching the ASID in EntryHi must flush the micro-TLB: a non-global
// entry cached under the old ASID may not satisfy the new address space.
constexpr const char* kAsidSwitchProgram = R"(
        .globl _start
utlb:   li   $v0, 77             # UTLB miss is the expected outcome
        li   $t9, 0xbfd00004
        sw   $v0, 0($t9)
        nop
        .align 128
gen:    mfc0 $k0, $cause
        srl  $k0, $k0, 2
        andi $v0, $k0, 31
        li   $t9, 0xbfd00004
        sw   $v0, 0($t9)
        nop
        .space 0x100
_start: # Map user page 0 under asid 0 (non-global).
        mtc0 $zero, $entryhi
        li   $t1, 0x00100600
        mtc0 $t1, $entrylo
        mtc0 $zero, $index
        tlbwi
        li   $t2, 0x10
        lw   $t3, 0($t2)         # hit under asid 0; primes the micro-TLB
        li   $t1, 0x40           # EntryHi: asid 1
        mtc0 $t1, $entryhi
        lw   $t4, 0($t2)         # must MISS now -> UTLB vector -> halt(77)
        li   $v0, 1              # reached only if the stale entry hit
        li   $t9, 0xbfd00004
        sw   $v0, 0($t9)
        nop
spin:   b    spin
        nop
)";

TEST(FastPath, AsidSwitchInvalidatesMicroTlb) {
  EXPECT_EQ(RunVectored(kAsidSwitchProgram, true)->halt_code(), 77u);
  EXPECT_EQ(RunVectored(kAsidSwitchProgram, false)->halt_code(), 77u);
}

}  // namespace
}  // namespace wrl
