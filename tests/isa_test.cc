#include "isa/isa.h"

#include <gtest/gtest.h>

namespace wrl {
namespace {

TEST(RegNames, RoundTrip) {
  for (uint8_t i = 0; i < 32; ++i) {
    std::string dollar = std::string("$") + RegName(i);
    auto parsed = ParseRegName(dollar);
    ASSERT_TRUE(parsed.has_value()) << dollar;
    EXPECT_EQ(*parsed, i);
  }
}

TEST(RegNames, NumericForm) {
  EXPECT_EQ(ParseRegName("$0"), kZero);
  EXPECT_EQ(ParseRegName("$31"), kRa);
  EXPECT_EQ(ParseRegName("$15"), kT7);
  EXPECT_FALSE(ParseRegName("$32").has_value());
  EXPECT_FALSE(ParseRegName("t0").has_value());
  EXPECT_FALSE(ParseRegName("$").has_value());
}

TEST(RegNames, S8AliasesFp) { EXPECT_EQ(ParseRegName("$s8"), kFp); }

TEST(Decode, RTypeFields) {
  uint32_t word = EncodeRType(Op::kAddu, kT0, kT1, kT2, 0);
  Inst inst = Decode(word);
  EXPECT_EQ(inst.op, Op::kAddu);
  EXPECT_EQ(inst.rs, kT0);
  EXPECT_EQ(inst.rt, kT1);
  EXPECT_EQ(inst.rd, kT2);
}

TEST(Decode, ITypeSignedImmediate) {
  uint32_t word = EncodeIType(Op::kAddiu, kSp, kSp, static_cast<uint16_t>(-24));
  Inst inst = Decode(word);
  EXPECT_EQ(inst.op, Op::kAddiu);
  EXPECT_EQ(inst.imm, -24);
}

TEST(Decode, JTypeTarget) {
  uint32_t word = EncodeJType(Op::kJal, 0x12345);
  Inst inst = Decode(word);
  EXPECT_EQ(inst.op, Op::kJal);
  EXPECT_EQ(inst.target, 0x12345u);
}

TEST(Decode, NopIsSllZero) {
  Inst inst = Decode(0);
  EXPECT_EQ(inst.op, Op::kSll);
  EXPECT_EQ(Disassemble(inst, 0), "nop");
}

TEST(Decode, Regimm) {
  EXPECT_EQ(Decode(EncodeIType(Op::kBltz, kA0, 0, 4)).op, Op::kBltz);
  EXPECT_EQ(Decode(EncodeIType(Op::kBgez, kA0, 0, 4)).op, Op::kBgez);
}

TEST(Decode, Cop0Forms) {
  EXPECT_EQ(Decode(EncodeCop0(Op::kMfc0, kK0, kCop0Status)).op, Op::kMfc0);
  EXPECT_EQ(Decode(EncodeCop0(Op::kMtc0, kK0, kCop0EntryHi)).op, Op::kMtc0);
  EXPECT_EQ(Decode(EncodeCop0(Op::kTlbwr, 0, 0)).op, Op::kTlbwr);
  EXPECT_EQ(Decode(EncodeCop0(Op::kTlbwi, 0, 0)).op, Op::kTlbwi);
  EXPECT_EQ(Decode(EncodeCop0(Op::kTlbp, 0, 0)).op, Op::kTlbp);
  EXPECT_EQ(Decode(EncodeCop0(Op::kTlbr, 0, 0)).op, Op::kTlbr);
  EXPECT_EQ(Decode(EncodeCop0(Op::kRfe, 0, 0)).op, Op::kRfe);
}

TEST(Decode, TrapCodeRoundTrip) {
  uint32_t word = EncodeTrap(Op::kSyscall, 0x1234);
  EXPECT_EQ(Decode(word).op, Op::kSyscall);
  EXPECT_EQ(TrapCode(word), 0x1234u);
  word = EncodeTrap(Op::kBreak, 7);
  EXPECT_EQ(Decode(word).op, Op::kBreak);
  EXPECT_EQ(TrapCode(word), 7u);
}

TEST(Decode, InvalidOpcode) {
  EXPECT_EQ(Decode(0xffffffffu).op, Op::kInvalid);
  // SPECIAL with an unassigned funct.
  EXPECT_EQ(Decode(63u).op, Op::kInvalid);
}

TEST(Properties, LoadsAndStores) {
  EXPECT_TRUE(IsLoad(Op::kLw));
  EXPECT_TRUE(IsLoad(Op::kLbu));
  EXPECT_FALSE(IsLoad(Op::kSw));
  EXPECT_TRUE(IsStore(Op::kSb));
  EXPECT_FALSE(IsStore(Op::kLw));
  EXPECT_EQ(MemAccessBytes(Op::kLw), 4u);
  EXPECT_EQ(MemAccessBytes(Op::kLh), 2u);
  EXPECT_EQ(MemAccessBytes(Op::kSb), 1u);
  EXPECT_EQ(MemAccessBytes(Op::kAddu), 0u);
}

TEST(Properties, ControlTransfer) {
  EXPECT_TRUE(IsBranch(Op::kBeq));
  EXPECT_TRUE(IsBranch(Op::kBgez));
  EXPECT_FALSE(IsBranch(Op::kJ));
  EXPECT_TRUE(IsJump(Op::kJal));
  EXPECT_TRUE(IsIndirectJump(Op::kJr));
  EXPECT_TRUE(HasDelaySlot(Op::kJalr));
  EXPECT_FALSE(HasDelaySlot(Op::kSyscall));
  EXPECT_TRUE(EndsBasicBlock(Op::kSyscall));
  EXPECT_TRUE(EndsBasicBlock(Op::kBreak));
  EXPECT_TRUE(EndsBasicBlock(Op::kRfe));
  EXPECT_FALSE(EndsBasicBlock(Op::kAddu));
}

TEST(Properties, ArithStalls) {
  EXPECT_TRUE(IsArithStall(Op::kMult));
  EXPECT_TRUE(IsArithStall(Op::kDivu));
  EXPECT_FALSE(IsArithStall(Op::kAddu));
  EXPECT_GT(ArithStallCycles(Op::kDiv), ArithStallCycles(Op::kMult));
}

TEST(Properties, RegsReadWrite) {
  // sw rt, off(rs) reads both.
  Inst sw = Decode(EncodeIType(Op::kSw, kSp, kRa, 20));
  EXPECT_EQ(RegsRead(sw), (1u << kSp) | (1u << kRa));
  EXPECT_EQ(RegsWritten(sw), 0u);
  // lw rt, off(rs) reads rs, writes rt.
  Inst lw = Decode(EncodeIType(Op::kLw, kSp, kRa, 20));
  EXPECT_EQ(RegsRead(lw), 1u << kSp);
  EXPECT_EQ(RegsWritten(lw), 1u << kRa);
  // jal writes ra.
  Inst jal = Decode(EncodeJType(Op::kJal, 0));
  EXPECT_EQ(RegsWritten(jal), 1u << kRa);
  // Reads/writes of $zero are masked off.
  Inst nop = Decode(0);
  EXPECT_EQ(RegsRead(nop), 0u);
  EXPECT_EQ(RegsWritten(nop), 0u);
}

TEST(Properties, BranchAndJumpTargets) {
  EXPECT_EQ(BranchTarget(0x1000, 4), 0x1014u);
  EXPECT_EQ(BranchTarget(0x1000, -1), 0x1000u);
  EXPECT_EQ(JumpTarget(0x80000000, 0x20), 0x80000080u);
}

TEST(Disassemble, PaperFigure2Sequence) {
  // The "before" column of the paper's Figure 2.
  EXPECT_EQ(DisassembleWord(EncodeIType(Op::kAddiu, kSp, kSp, static_cast<uint16_t>(-24)), 0),
            "addiu sp, sp, -24");
  EXPECT_EQ(DisassembleWord(EncodeIType(Op::kSw, kSp, kRa, 20), 0), "sw ra, 20(sp)");
  EXPECT_EQ(DisassembleWord(EncodeIType(Op::kSw, kSp, kA0, 24), 0), "sw a0, 24(sp)");
}

// Exhaustive encode/decode round-trip over register fields for a sample of
// each format.
class RoundTripTest : public ::testing::TestWithParam<uint8_t> {};

TEST_P(RoundTripTest, RType) {
  uint8_t r = GetParam();
  Inst inst = Decode(EncodeRType(Op::kSubu, r, r, r, 0));
  EXPECT_EQ(inst.op, Op::kSubu);
  EXPECT_EQ(inst.rs, r);
  EXPECT_EQ(inst.rt, r);
  EXPECT_EQ(inst.rd, r);
}

TEST_P(RoundTripTest, IType) {
  uint8_t r = GetParam();
  Inst inst = Decode(EncodeIType(Op::kOri, r, r, 0xbeef));
  EXPECT_EQ(inst.op, Op::kOri);
  EXPECT_EQ(inst.rs, r);
  EXPECT_EQ(inst.rt, r);
  EXPECT_EQ(static_cast<uint16_t>(inst.imm), 0xbeef);
}

INSTANTIATE_TEST_SUITE_P(AllRegisters, RoundTripTest,
                         ::testing::Range<uint8_t>(0, 32));

}  // namespace
}  // namespace wrl
