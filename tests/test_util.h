// Shared helpers for wrltrace tests: assemble/link tiny kernel-mode
// programs and run them bare on the machine.
#ifndef WRLTRACE_TESTS_TEST_UTIL_H_
#define WRLTRACE_TESTS_TEST_UTIL_H_

#include <string_view>

#include "asm/assembler.h"
#include "mach/machine.h"
#include "obj/object_file.h"

namespace wrl {

// Links a single assembly source at the reset vector (kernel mode, kseg0).
// The program starts executing at its first instruction.
inline Executable BuildBareProgram(std::string_view source) {
  ObjectFile obj = Assemble("test.s", source);
  LinkOptions options;
  options.text_base = kVecReset;
  options.entry_symbol = "_start";
  return Link({obj}, options);
}

// Loads a kseg0-linked executable into physical memory at its natural
// physical addresses (paddr = vaddr - kseg0).
inline void LoadBare(Machine& machine, const Executable& exe) {
  machine.LoadImage(exe, [](uint32_t vaddr) { return vaddr - kKseg0; });
  machine.SetPc(exe.entry);
}

// Assembles, links, loads, and runs `source` until halt (or the instruction
// budget runs out).  Returns the machine for inspection.
inline std::unique_ptr<Machine> RunBareProgram(std::string_view source,
                                               uint64_t max_instructions = 1'000'000,
                                               MachineConfig config = {}) {
  Executable exe = BuildBareProgram(source);
  auto machine = std::make_unique<Machine>(config);
  LoadBare(*machine, exe);
  machine->Run(max_instructions);
  return machine;
}

}  // namespace wrl

#endif  // WRLTRACE_TESTS_TEST_UTIL_H_
