// The pipelined trace transport's contract (ISSUE 7): chunks flow through
// the bounded SPSC ring in strict drain order, so a pipelined experiment is
// byte-identical to the synchronous one — every counter, trace word,
// profile, and predicted number — in live, capture-replay, profiled, and
// per-ref-shim modes.  The transport itself must apply backpressure when
// the consumer is slow, count its stalls/starves, shut down cleanly when
// the consumer chain throws mid-stream, and the replay-side chunk-parallel
// TraceLog decode must deliver the identical word sequence and chunk
// boundaries at every worker count.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harness/bare_runtime.h"
#include "harness/experiment.h"
#include "harness/replay_engine.h"
#include "sim/tlb_sim.h"
#include "stats/stats.h"
#include "support/error.h"
#include "support/rng.h"
#include "trace/chunk_ring.h"
#include "trace/trace_log.h"

namespace wrl {
namespace {

const char* kBody = R"(
        .globl main
main:
        addiu $sp, $sp, -8
        sw   $ra, 4($sp)
        la   $t0, table
        li   $t1, 0
        li   $t2, 96
fill:   sll  $t3, $t1, 2
        addu $t3, $t0, $t3
        sw   $t1, 0($t3)
        addiu $t1, $t1, 1
        bne  $t1, $t2, fill
        nop
        li   $t1, 0
        li   $v0, 0
sum:    sll  $t3, $t1, 2
        addu $t3, $t0, $t3
        lw   $t4, 0($t3)
        addu $v0, $v0, $t4
        addiu $t1, $t1, 1
        bne  $t1, $t2, sum
        nop
        lw   $ra, 4($sp)
        jr   $ra
        addiu $sp, $sp, 8
        .data
table:  .space 384
)";

// ---- ChunkRing transport ----

TEST(ChunkRing, PreservesOrderUnderBackpressure) {
  constexpr size_t kChunks = 64;
  constexpr size_t kWordsPerChunk = 17;
  ChunkRing ring(2);
  std::vector<uint32_t> first_words;
  std::thread consumer([&] {
    std::vector<uint32_t> chunk;
    while (ring.Pop(chunk)) {
      // An artificially slow consumer: the tiny ring must fill and the
      // producer must stall rather than drop or reorder chunks.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      ASSERT_EQ(chunk.size(), kWordsPerChunk);
      first_words.push_back(chunk[0]);
    }
  });
  for (size_t i = 0; i < kChunks; ++i) {
    std::vector<uint32_t> words(kWordsPerChunk, static_cast<uint32_t>(i));
    ASSERT_TRUE(ring.Push(words.data(), words.size()));
  }
  ring.Close();
  consumer.join();

  ASSERT_EQ(first_words.size(), kChunks);
  for (size_t i = 0; i < kChunks; ++i) {
    EXPECT_EQ(first_words[i], static_cast<uint32_t>(i)) << i;
  }
  EXPECT_EQ(ring.chunks(), kChunks);
  EXPECT_EQ(ring.words(), kChunks * kWordsPerChunk);
  EXPECT_GT(ring.producer_stalls(), 0u);
  EXPECT_LE(ring.max_occupancy(), ring.capacity());
  EXPECT_EQ(ring.occupancy_hist().count(), kChunks);
}

TEST(ChunkRing, CountsConsumerStarves) {
  ChunkRing ring(4);
  std::atomic<uint64_t> seen{0};
  std::thread consumer([&] {
    std::vector<uint32_t> chunk;
    while (ring.Pop(chunk)) {
      seen += chunk.size();
    }
  });
  for (uint32_t i = 0; i < 8; ++i) {
    // A slow producer: the consumer drains instantly and must wait.
    std::this_thread::sleep_for(std::chrono::microseconds(500));
    ASSERT_TRUE(ring.Push(&i, 1));
  }
  ring.Close();
  consumer.join();
  EXPECT_EQ(seen.load(), 8u);
  EXPECT_GE(ring.consumer_starves(), 1u);
  EXPECT_EQ(ring.producer_stalls(), 0u);
}

TEST(ChunkRing, CancelUnblocksBlockedProducer) {
  ChunkRing ring(1);
  uint32_t word = 1;
  ASSERT_TRUE(ring.Push(&word, 1));  // Fills the ring.
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ring.Cancel();
  });
  // Blocks on the full ring until Cancel, then reports the drop.
  EXPECT_FALSE(ring.Push(&word, 1));
  canceller.join();
  EXPECT_TRUE(ring.cancelled());
  std::vector<uint32_t> out;
  EXPECT_FALSE(ring.Pop(out));  // Cancelled rings drop queued chunks too.
}

// ---- TracePipeline shutdown ----

TEST(TracePipeline, ConsumerErrorSurfacesMidStream) {
  // The consumer chain fails on its third chunk; the producer must learn of
  // the death at a subsequent drain (or Finish) as the consumer's own
  // exception, with no hang and no silent drop.
  size_t consumed = 0;
  TracePipeline pipeline(
      [&consumed](const uint32_t*, size_t) {
        if (++consumed == 3) {
          throw Error("parser failed mid-stream");
        }
      },
      2);
  uint32_t word = 7;
  bool threw = false;
  try {
    for (int i = 0; i < 1000; ++i) {
      pipeline.Produce(&word, 1);
    }
    pipeline.Finish();
  } catch (const Error& e) {
    threw = true;
    EXPECT_STREQ(e.what(), "parser failed mid-stream");
  }
  EXPECT_TRUE(threw);
  EXPECT_GE(consumed, 3u);
  // The error was delivered once; a later Finish is a clean no-op.
  EXPECT_NO_THROW(pipeline.Finish());
}

TEST(TracePipeline, AbandonedPipelineJoinsQuietly) {
  // Unwinding past a pipeline whose consumer failed must not terminate:
  // the destructor joins without throwing.
  TracePipeline pipeline([](const uint32_t*, size_t) { throw Error("dead on arrival"); }, 2);
  uint32_t word = 1;
  pipeline.Produce(&word, 1);
  // Destructor runs here with the error still queued.
}

// ---- Chunk-parallel TraceLog decode ----

TEST(TraceLogParallel, DecodeEquivalenceAcrossWorkerCounts) {
  // Enough chunks to exceed every worker count's in-flight window, with
  // adversarial random words (every top nibble, variable chunk sizes).
  Rng rng(1234);
  TraceLog log;
  for (int chunk = 0; chunk < 23; ++chunk) {
    std::vector<uint32_t> words(1 + rng.Below(257));
    for (auto& w : words) {
      w = rng.Below(0xffffffffu);
    }
    log.Append(words.data(), words.size());
  }

  std::vector<uint32_t> ref_words;
  std::vector<size_t> ref_chunks;
  log.Replay([&](const uint32_t* w, size_t n) {
    ref_words.insert(ref_words.end(), w, w + n);
    ref_chunks.push_back(n);
  });

  for (unsigned workers : {1u, 2u, 3u, 8u}) {
    SCOPED_TRACE(workers);
    std::vector<uint32_t> words;
    std::vector<size_t> chunks;
    log.ReplayParallel(workers, [&](const uint32_t* w, size_t n) {
      words.insert(words.end(), w, w + n);
      chunks.push_back(n);
    });
    EXPECT_EQ(words, ref_words);
    EXPECT_EQ(chunks, ref_chunks);
  }
}

TEST(TraceLogParallel, DecodeEquivalenceOnRealTrace) {
  BareBuild build = BuildBareTraced(kBody);
  BareTraceRun run = RunBareTraced(build);
  ASSERT_GT(run.trace_words.size(), 64u);

  // Append in slices so the log has several independently coded chunks,
  // like a multi-drain capture.
  TraceLog log;
  size_t slice = run.trace_words.size() / 5 + 1;
  for (size_t off = 0; off < run.trace_words.size(); off += slice) {
    size_t count = std::min(slice, run.trace_words.size() - off);
    log.Append(run.trace_words.data() + off, count);
  }
  ASSERT_GT(log.chunks(), 1u);

  for (unsigned workers : {2u, 4u}) {
    SCOPED_TRACE(workers);
    std::vector<uint32_t> words;
    log.ReplayParallel(workers,
                       [&](const uint32_t* w, size_t n) { words.insert(words.end(), w, w + n); });
    EXPECT_EQ(words, run.trace_words);
  }
}

TEST(TraceLogParallel, SinkErrorPropagatesWithoutHanging) {
  Rng rng(7);
  TraceLog log;
  for (int chunk = 0; chunk < 16; ++chunk) {
    std::vector<uint32_t> words(64);
    for (auto& w : words) {
      w = rng.Below(0xffffffffu);
    }
    log.Append(words.data(), words.size());
  }
  size_t delivered = 0;
  EXPECT_THROW(log.ReplayParallel(4,
                                  [&](const uint32_t*, size_t) {
                                    if (++delivered == 3) {
                                      throw Error("analysis failed");
                                    }
                                  }),
               Error);
  EXPECT_EQ(delivered, 3u);  // Strict order: nothing past the failure.
}

// ---- ReplayEngine: parallel decode identity and exact materialization ----

TEST(ReplayEngine, ParallelDecodeMatchesSerialParse) {
  BareBuild build = BuildBareTraced(kBody);
  BareTraceRun run = RunBareTraced(build);

  TraceLog log;
  size_t slice = run.trace_words.size() / 7 + 1;
  for (size_t off = 0; off < run.trace_words.size(); off += slice) {
    size_t count = std::min(slice, run.trace_words.size() - off);
    log.Append(run.trace_words.data() + off, count);
  }
  ASSERT_GT(log.chunks(), 1u);

  auto make_engine = [&] {
    ReplaySource source;
    source.log = &log;
    source.kernel_table = &build.table;
    return ReplayEngine(std::move(source));
  };

  ReplayEngine serial = make_engine();
  serial.Parse(1);
  ReplayEngine parallel = make_engine();
  parallel.Parse(4);

  EXPECT_EQ(parallel.parser_stats().words, serial.parser_stats().words);
  EXPECT_EQ(parallel.parser_stats().refs, serial.parser_stats().refs);
  EXPECT_EQ(parallel.parser_stats().blocks, serial.parser_stats().blocks);
  EXPECT_EQ(parallel.parser_stats().validation_errors, serial.parser_stats().validation_errors);
  ASSERT_EQ(parallel.refs().size(), serial.refs().size());
  for (size_t i = 0; i < serial.refs().size(); ++i) {
    const TraceRef& a = serial.refs()[i];
    const TraceRef& b = parallel.refs()[i];
    ASSERT_TRUE(a.kind == b.kind && a.addr == b.addr && a.bytes == b.bytes && a.pid == b.pid &&
                a.kernel == b.kernel && a.idle == b.idle)
        << "ref " << i << " diverged";
  }

  // Same downstream analysis either way.
  ReplayEngine::Options options;
  std::vector<ReplayEngine::Config> configs;
  configs.push_back({"tlb", [] { return std::make_unique<TlbSimulator>(); }});
  auto a = serial.Run(configs, options);
  auto b = parallel.Run(configs, options);
  EXPECT_EQ(static_cast<TlbSimulator*>(a[0].sink.get())->stats().utlb_misses,
            static_cast<TlbSimulator*>(b[0].sink.get())->stats().utlb_misses);
}

TEST(ReplayEngine, MaterializesExactlyOnce) {
  BareBuild build = BuildBareTraced(kBody);
  BareTraceRun run = RunBareTraced(build);
  TraceLog log;
  log.Append(run.trace_words.data(), run.trace_words.size());

  ReplaySource source;
  source.log = &log;
  source.kernel_table = &build.table;
  ReplayEngine engine(std::move(source));
  engine.Parse();

  const TraceParserStats& stats = engine.parser_stats();
  uint64_t expected = stats.ifetches + stats.loads + stats.stores;
  ASSERT_GT(expected, 0u);
  EXPECT_EQ(engine.refs().size(), expected);
  // The single exact reserve: the dense stream never grew by reallocation.
  EXPECT_EQ(engine.refs().capacity(), engine.refs().size());

  StatsRegistry registry;
  engine.RegisterStats(registry);
  StatsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("replay.materialized_bytes"),
            engine.refs().size() * sizeof(TraceRef));
}

// ---- Experiment-level byte identity: pipelined vs synchronous ----

// Names excluded from identity comparison: the pipeline's own transport
// counters (they exist only on pipelined runs and their stall/starve values
// depend on scheduling) and anything wall-clock derived.
bool TimingOrTransportName(const std::string& name) {
  return name.rfind("trace.pipeline.", 0) == 0 || name.find("wall") != std::string::npos ||
         name.find("per_sec") != std::string::npos || name.find("mips") != std::string::npos;
}

void ExpectSameStats(const StatsSnapshot& pipelined, const StatsSnapshot& sync) {
  for (const auto& [name, value] : sync.values()) {
    if (TimingOrTransportName(name)) {
      continue;
    }
    const StatValue* other = pipelined.Find(name);
    ASSERT_NE(other, nullptr) << "pipelined run lost metric " << name;
    ASSERT_EQ(other->kind, value.kind) << name;
    switch (value.kind) {
      case StatValue::Kind::kCounter:
        EXPECT_EQ(other->counter, value.counter) << name;
        break;
      case StatValue::Kind::kGauge:
        EXPECT_EQ(other->gauge, value.gauge) << name;
        break;
      case StatValue::Kind::kHistogram:
        EXPECT_EQ(other->hist_count, value.hist_count) << name;
        EXPECT_EQ(other->hist_sum, value.hist_sum) << name;
        EXPECT_EQ(other->hist_min, value.hist_min) << name;
        EXPECT_EQ(other->hist_max, value.hist_max) << name;
        EXPECT_EQ(other->hist_buckets, value.hist_buckets) << name;
        break;
    }
  }
  // And nothing new appeared beyond the transport counters.
  for (const auto& [name, value] : pipelined.values()) {
    if (!TimingOrTransportName(name)) {
      EXPECT_TRUE(sync.Has(name)) << "pipelined run grew metric " << name;
    }
  }
}

void ExpectSamePrediction(const Prediction& a, const Prediction& b) {
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.idle_instructions, b.idle_instructions);
  EXPECT_EQ(a.mem_stall_cycles, b.mem_stall_cycles);
  EXPECT_EQ(a.arith_stall_cycles, b.arith_stall_cycles);
  EXPECT_EQ(a.io_stall_cycles, b.io_stall_cycles);
  EXPECT_EQ(a.utlb_misses, b.utlb_misses);
  EXPECT_EQ(a.synthesized_refs, b.synthesized_refs);
  EXPECT_EQ(a.user_instructions, b.user_instructions);
  EXPECT_EQ(a.kernel_instructions, b.kernel_instructions);
}

WorkloadSpec UnitWorkload() {
  WorkloadSpec w;
  w.name = "unit";
  w.description = "tiny compute kernel";
  w.source = kBody;
  return w;
}

void ExpectSameExperiment(const ExperimentResult& pipelined, const ExperimentResult& sync) {
  EXPECT_EQ(pipelined.measured_cycles, sync.measured_cycles);
  EXPECT_EQ(pipelined.measured_utlb, sync.measured_utlb);
  EXPECT_EQ(pipelined.exit_code, sync.exit_code);
  EXPECT_EQ(pipelined.trace_words, sync.trace_words);
  EXPECT_EQ(pipelined.parser_errors, sync.parser_errors);
  EXPECT_EQ(pipelined.analysis_switches, sync.analysis_switches);
  EXPECT_EQ(pipelined.traced_machine_instructions, sync.traced_machine_instructions);
  ExpectSamePrediction(pipelined.prediction, sync.prediction);
  ExpectSameStats(pipelined.stats, sync.stats);
}

// Runs the workload with the pipeline forced on and off (the host may have
// one core, where the default degrades to synchronous) and applies `mod` to
// both option sets.
template <typename Mod>
void RunBothAndCompare(const Mod& mod) {
  WorkloadSpec w = UnitWorkload();

  ExperimentOptions pipelined_options;
  pipelined_options.pipeline = true;
  pipelined_options.pipeline_depth = 3;  // Small ring: exercise wraparound.
  mod(pipelined_options);
  ExperimentResult pipelined = RunExperiment(w, pipelined_options);

  ExperimentOptions sync_options;
  sync_options.pipeline = false;
  mod(sync_options);
  ExperimentResult sync = RunExperiment(w, sync_options);

  ExpectSameExperiment(pipelined, sync);

  // The transport counters exist exactly on the pipelined run, and the ring
  // carried every drained trace word.
  ASSERT_TRUE(pipelined.stats.Has("trace.pipeline.chunks"));
  EXPECT_FALSE(sync.stats.Has("trace.pipeline.chunks"));
  EXPECT_GE(pipelined.stats.CounterValue("trace.pipeline.chunks"), 1u);
  EXPECT_EQ(pipelined.stats.CounterValue("trace.pipeline.words"), pipelined.trace_words);
}

TEST(PipelinedExperiment, LiveAnalysisIsByteIdentical) {
  RunBothAndCompare([](ExperimentOptions&) {});
}

TEST(PipelinedExperiment, CaptureReplayIsByteIdentical) {
  WorkloadSpec w = UnitWorkload();

  ExperimentOptions pipelined_options;
  pipelined_options.pipeline = true;
  pipelined_options.capture_replay = true;
  ReplayVariant baseline;
  baseline.name = "baseline";
  pipelined_options.replay_variants.push_back(baseline);
  ExperimentResult pipelined = RunExperiment(w, pipelined_options);

  ExperimentOptions sync_options = pipelined_options;
  sync_options.pipeline = false;
  ExperimentResult sync = RunExperiment(w, sync_options);

  ExpectSameExperiment(pipelined, sync);
  EXPECT_EQ(pipelined.trace_log_words, sync.trace_log_words);
  EXPECT_EQ(pipelined.trace_log_bytes, sync.trace_log_bytes);
  ASSERT_EQ(pipelined.replays.size(), sync.replays.size());
  for (size_t i = 0; i < sync.replays.size(); ++i) {
    EXPECT_EQ(pipelined.replays[i].name, sync.replays[i].name);
    ExpectSamePrediction(pipelined.replays[i].prediction, sync.replays[i].prediction);
    EXPECT_EQ(pipelined.replays[i].refs, sync.replays[i].refs);
  }
}

TEST(PipelinedExperiment, ProfiledRunIsByteIdentical) {
  WorkloadSpec w = UnitWorkload();

  ExperimentOptions pipelined_options;
  pipelined_options.pipeline = true;
  pipelined_options.profile = true;
  ExperimentResult pipelined = RunExperiment(w, pipelined_options);

  ExperimentOptions sync_options = pipelined_options;
  sync_options.pipeline = false;
  ExperimentResult sync = RunExperiment(w, sync_options);

  ExpectSameExperiment(pipelined, sync);
  EXPECT_EQ(pipelined.profile.CanonicalJson(), sync.profile.CanonicalJson());
}

TEST(PipelinedExperiment, PerRefShimIsByteIdentical) {
  // The WRL_BATCH=0 compatibility path under the pipeline: the consumer
  // thread drives the per-ref std::function chain.
  RunBothAndCompare([](ExperimentOptions& options) { options.batch = false; });
}

}  // namespace
}  // namespace wrl
