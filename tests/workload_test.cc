// The Table 1 workloads: each must build, run to a clean exit on the
// uninstrumented Ultrix system, and behave identically under tracing (the
// end-to-end "tracing does not distort results" property).  The full
// measured-vs-predicted experiment runs for a sample of workloads.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "kernel/system_build.h"
#include "workloads/workloads.h"

namespace wrl {
namespace {

constexpr double kScale = 0.05;  // Tiny but structurally complete.
constexpr uint64_t kBudget = 1'500'000'000;

class WorkloadRuns : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadRuns, UntracedUltrix) {
  WorkloadSpec w = PaperWorkload(GetParam(), kScale);
  SystemConfig config;
  config.program_source = w.source;
  config.program_name = w.name;
  config.files = w.files;
  auto sys = BuildSystem(config);
  RunResult r = sys->Run(kBudget);
  ASSERT_TRUE(r.halted) << w.name;
  EXPECT_EQ(r.halt_code, 0u);
  EXPECT_NE(sys->ProcessExitCode(1), 0xdeadu) << w.name << " was killed";
  EXPECT_GT(sys->machine().user_instructions(), 1000u);
}

TEST_P(WorkloadRuns, UntracedMach) {
  WorkloadSpec w = PaperWorkload(GetParam(), kScale);
  SystemConfig config;
  config.personality = Personality::kMach;
  config.policy = PagePolicy::kScrambled;
  config.program_source = w.source;
  config.program_name = w.name;
  config.files = w.files;
  auto sys = BuildSystem(config);
  RunResult r = sys->Run(kBudget);
  ASSERT_TRUE(r.halted) << w.name;
  EXPECT_NE(sys->ProcessExitCode(1), 0xdeadu) << w.name << " was killed";
}

TEST_P(WorkloadRuns, SameResultUnderBothPersonalities) {
  WorkloadSpec w = PaperWorkload(GetParam(), kScale);
  SystemConfig ultrix;
  ultrix.program_source = w.source;
  ultrix.files = w.files;
  auto u = BuildSystem(ultrix);
  u->Run(kBudget);
  SystemConfig mach = ultrix;
  mach.personality = Personality::kMach;
  mach.policy = PagePolicy::kScrambled;
  auto m = BuildSystem(mach);
  m->Run(kBudget);
  EXPECT_EQ(u->ProcessExitCode(1), m->ProcessExitCode(1)) << w.name;
}

INSTANTIATE_TEST_SUITE_P(AllTwelve, WorkloadRuns,
                         ::testing::Values("sed", "egrep", "yacc", "gcc", "compress", "espresso",
                                           "lisp", "eqntott", "fpppp", "doduc", "liv", "tomcatv"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

TEST(Experiment, SedEndToEnd) {
  // The full §5 methodology on one workload: measured vs predicted with no
  // parser errors and identical program behavior.
  ExperimentOptions options;
  ExperimentResult r = RunExperiment(PaperWorkload("sed", 0.1), options);
  EXPECT_EQ(r.parser_errors, 0u);
  EXPECT_GT(r.measured_cycles, 0u);
  EXPECT_GT(r.prediction.PredictedCycles(), 0.0);
  // The prediction tracks the measurement within the paper-ish band.
  EXPECT_LT(std::abs(r.TimeErrorPercent()), 40.0);
}

TEST(Experiment, EqntottTlbShape) {
  // eqntott is the TLB-dominant workload: its measured misses must dwarf a
  // compute-bound workload's, and the prediction must land in the same
  // order of magnitude (random replacement precludes exactness, §5.2).
  ExperimentOptions options;
  ExperimentResult eqntott = RunExperiment(PaperWorkload("eqntott", 0.1), options);
  ExperimentResult lisp = RunExperiment(PaperWorkload("lisp", 0.1), options);
  EXPECT_GT(eqntott.measured_utlb, 10u * std::max<uint64_t>(lisp.measured_utlb, 1));
  EXPECT_GT(eqntott.prediction.utlb_misses, eqntott.measured_utlb / 3);
  EXPECT_LT(eqntott.prediction.utlb_misses, eqntott.measured_utlb * 3);
}

TEST(Experiment, MachShowsClientServerStructure) {
  ExperimentOptions options;
  options.personality = Personality::kMach;
  ExperimentResult r = RunExperiment(PaperWorkload("egrep", 0.1), options);
  EXPECT_EQ(r.parser_errors, 0u);
  EXPECT_GT(r.measured_tlbdropins, 0u);  // tlb_map_random fired.
}

}  // namespace
}  // namespace wrl
