// The capture-once / replay-many pipeline's contract: a TraceLog stores the
// drained trace words losslessly, and a batched replay of the capture
// produces bit-identical parser stats, Prediction, and TLB miss counts to
// the live per-ref path — with batching on or off, serial or on a worker
// pool.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "harness/bare_runtime.h"
#include "harness/experiment.h"
#include "harness/replay_engine.h"
#include "sim/predictor.h"
#include "sim/tlb_sim.h"
#include "support/rng.h"
#include "trace/parser.h"
#include "trace/trace_log.h"

namespace wrl {
namespace {

const char* kBody = R"(
        .globl main
main:
        addiu $sp, $sp, -8
        sw   $ra, 4($sp)
        la   $t0, table
        li   $t1, 0
        li   $t2, 96
fill:   sll  $t3, $t1, 2
        addu $t3, $t0, $t3
        sw   $t1, 0($t3)
        addiu $t1, $t1, 1
        bne  $t1, $t2, fill
        nop
        li   $t1, 0
        li   $v0, 0
sum:    sll  $t3, $t1, 2
        addu $t3, $t0, $t3
        lw   $t4, 0($t3)
        addu $v0, $v0, $t4
        addiu $t1, $t1, 1
        bne  $t1, $t2, sum
        nop
        lw   $ra, 4($sp)
        jr   $ra
        addiu $sp, $sp, 8
        .data
table:  .space 384
)";

std::vector<uint32_t> ReplayAll(const TraceLog& log, std::vector<size_t>* chunks = nullptr) {
  std::vector<uint32_t> words;
  log.Replay([&](const uint32_t* w, size_t n) {
    words.insert(words.end(), w, w + n);
    if (chunks != nullptr) {
      chunks->push_back(n);
    }
  });
  return words;
}

TEST(TraceLog, RoundtripPreservesWordsAndChunks) {
  TraceLog log;
  std::vector<uint32_t> a = {0x10000010, 0x00500000, 0x80001234};
  std::vector<uint32_t> b = {0x10000014, 0x10000018, 0x7fff0000, 0x00000000};
  log.Append(a.data(), a.size());
  log.Append(b.data(), b.size());
  EXPECT_EQ(log.words(), a.size() + b.size());
  EXPECT_EQ(log.chunks(), 2u);

  std::vector<size_t> chunks;
  std::vector<uint32_t> out = ReplayAll(log, &chunks);
  std::vector<uint32_t> expect = a;
  expect.insert(expect.end(), b.begin(), b.end());
  EXPECT_EQ(out, expect);
  EXPECT_EQ(chunks, (std::vector<size_t>{a.size(), b.size()}));
}

TEST(TraceLog, RoundtripRandomWordsExactly) {
  // Addresses across every top nibble, adversarial for the delta packer.
  Rng rng(99);
  TraceLog log;
  std::vector<uint32_t> all;
  for (int chunk = 0; chunk < 7; ++chunk) {
    std::vector<uint32_t> words(1 + rng.Below(300));
    for (auto& w : words) {
      w = rng.Below(0xffffffffu);
    }
    log.Append(words.data(), words.size());
    all.insert(all.end(), words.begin(), words.end());
  }
  EXPECT_EQ(ReplayAll(log), all);
  EXPECT_EQ(log.raw_bytes(), all.size() * 4);
  EXPECT_GT(log.stored_bytes(), 0u);
}

TEST(TraceLog, PacksRealTraceSmallerThanRaw) {
  BareBuild build = BuildBareTraced(kBody);
  BareTraceRun run = RunBareTraced(build);
  ASSERT_FALSE(run.trace_words.empty());
  TraceLog log;
  log.Append(run.trace_words.data(), run.trace_words.size());
  EXPECT_EQ(ReplayAll(log), run.trace_words);
  // Real traces are delta-friendly; the varint packing must win.
  EXPECT_GT(log.CompressionRatio(), 1.0);
  EXPECT_LT(log.stored_bytes(), log.raw_bytes());
}

struct LiveOutcome {
  TraceParserStats stats;
  Prediction prediction;
  TlbSimStats tlb;
};

// The reference path: per-ref live analysis in lockstep with the parse.
LiveOutcome RunLive(const BareBuild& build, const BareTraceRun& run) {
  LiveOutcome out;
  TraceDrivenSimulator sim((PredictorConfig()));
  TlbSimulator tlb;
  TraceParser parser(&build.table);
  parser.SetInitialContext(kKernelPid);
  parser.SetRefSink([&](const TraceRef& r) {
    sim.OnRef(r);
    tlb.OnRef(r);
  });
  parser.Feed(run.trace_words);
  parser.Finish();
  out.stats = parser.stats();
  out.prediction = sim.Finish();
  out.tlb = tlb.stats();
  return out;
}

void ExpectSamePrediction(const Prediction& a, const Prediction& b) {
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.idle_instructions, b.idle_instructions);
  EXPECT_EQ(a.mem_stall_cycles, b.mem_stall_cycles);
  EXPECT_EQ(a.arith_stall_cycles, b.arith_stall_cycles);
  EXPECT_EQ(a.io_stall_cycles, b.io_stall_cycles);
  EXPECT_EQ(a.utlb_misses, b.utlb_misses);
  EXPECT_EQ(a.synthesized_refs, b.synthesized_refs);
  EXPECT_EQ(a.user_instructions, b.user_instructions);
  EXPECT_EQ(a.kernel_instructions, b.kernel_instructions);
}

TEST(ReplayEngine, BatchedReplayBitIdenticalToLive) {
  BareBuild build = BuildBareTraced(kBody);
  BareTraceRun run = RunBareTraced(build);
  LiveOutcome live = RunLive(build, run);

  TraceLog log;
  log.Append(run.trace_words.data(), run.trace_words.size());
  ReplaySource source;
  source.log = &log;
  source.kernel_table = &build.table;
  ReplayEngine engine(std::move(source));

  std::vector<ReplayEngine::Config> configs;
  configs.push_back(
      {"sim", [] { return std::make_unique<TraceDrivenSimulator>(PredictorConfig()); }});
  configs.push_back({"tlb", [] { return std::make_unique<TlbSimulator>(); }});

  for (bool batch : {true, false}) {
    SCOPED_TRACE(batch ? "batched" : "per-ref");
    ReplayEngine::Options options;
    options.batch = batch;
    std::vector<ReplayEngine::Outcome> outcomes = engine.Run(configs, options);
    ASSERT_EQ(outcomes.size(), 2u);

    // The single parse saw the same stream the live parser saw.
    EXPECT_EQ(engine.parser_stats().refs, live.stats.refs);
    EXPECT_EQ(engine.parser_stats().words, live.stats.words);
    EXPECT_EQ(engine.parser_stats().blocks, live.stats.blocks);
    EXPECT_EQ(engine.parser_stats().validation_errors, live.stats.validation_errors);

    auto* sim = static_cast<TraceDrivenSimulator*>(outcomes[0].sink.get());
    ExpectSamePrediction(sim->Finish(), live.prediction);
    auto* tlb = static_cast<TlbSimulator*>(outcomes[1].sink.get());
    EXPECT_EQ(tlb->stats().utlb_misses, live.tlb.utlb_misses);
    EXPECT_EQ(tlb->stats().user_refs, live.tlb.user_refs);
  }
}

TEST(ReplayEngine, OddBatchSizesDeliverIdenticalResults) {
  BareBuild build = BuildBareTraced(kBody);
  BareTraceRun run = RunBareTraced(build);
  LiveOutcome live = RunLive(build, run);

  TraceLog log;
  log.Append(run.trace_words.data(), run.trace_words.size());
  ReplaySource source;
  source.log = &log;
  source.kernel_table = &build.table;
  ReplayEngine engine(std::move(source));

  for (size_t batch_refs : {size_t{1}, size_t{7}, size_t{100}, kRefBatchCapacity}) {
    SCOPED_TRACE(batch_refs);
    ReplayEngine::Options options;
    options.batch_refs = batch_refs;
    std::vector<ReplayEngine::Outcome> outcomes =
        engine.Run({{"tlb", [] { return std::make_unique<TlbSimulator>(); }}}, options);
    auto* tlb = static_cast<TlbSimulator*>(outcomes[0].sink.get());
    EXPECT_EQ(tlb->stats().utlb_misses, live.tlb.utlb_misses);
  }
}

TEST(ReplayEngine, WorkerPoolIsDeterministic) {
  BareBuild build = BuildBareTraced(kBody);
  BareTraceRun run = RunBareTraced(build);

  TraceLog log;
  log.Append(run.trace_words.data(), run.trace_words.size());
  ReplaySource source;
  source.log = &log;
  source.kernel_table = &build.table;
  ReplayEngine engine(std::move(source));

  // Six configs with distinct wired sizes, serial vs pooled.
  std::vector<ReplayEngine::Config> configs;
  for (unsigned wired : {1u, 2u, 4u, 8u, 16u, 32u}) {
    configs.push_back({"wired" + std::to_string(wired),
                       [wired] { return std::make_unique<TlbSimulator>(wired); }});
  }
  ReplayEngine::Options serial;
  ReplayEngine::Options pooled;
  pooled.jobs = 4;
  std::vector<ReplayEngine::Outcome> a = engine.Run(configs, serial);
  std::vector<ReplayEngine::Outcome> b = engine.Run(configs, pooled);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name) << i;
    EXPECT_EQ(static_cast<TlbSimulator*>(a[i].sink.get())->stats().utlb_misses,
              static_cast<TlbSimulator*>(b[i].sink.get())->stats().utlb_misses)
        << i;
  }
}

// The end-to-end harness contract: a capture-replay experiment reports the
// same measured and predicted numbers as the live-analysis experiment, and
// a replay variant configured identically to the primary reproduces the
// primary's prediction exactly.
TEST(ReplayExperiment, CaptureReplayMatchesLiveExperiment) {
  WorkloadSpec w;
  w.name = "unit";
  w.description = "tiny compute kernel";
  w.source = kBody;

  ExperimentOptions live_options;
  ExperimentResult live = RunExperiment(w, live_options);

  ExperimentOptions capture_options;
  capture_options.capture_replay = true;
  ReplayVariant baseline;
  baseline.name = "baseline";  // Identical to the primary configuration.
  capture_options.replay_variants.push_back(baseline);
  ExperimentResult captured = RunExperiment(w, capture_options);

  EXPECT_EQ(captured.measured_cycles, live.measured_cycles);
  EXPECT_EQ(captured.parser_errors, live.parser_errors);
  EXPECT_EQ(captured.trace_words, live.trace_words);
  ExpectSamePrediction(captured.prediction, live.prediction);

  ASSERT_EQ(captured.replays.size(), 1u);
  ExpectSamePrediction(captured.replays[0].prediction, captured.prediction);
  EXPECT_GT(captured.trace_log_words, 0u);
  EXPECT_GT(captured.trace_compression, 0.0);
}

}  // namespace
}  // namespace wrl
