// Unit tests for the analysis-side simulators: the TLB model, the
// trace-driven memory-system simulation, and the time predictor's formula.
#include <gtest/gtest.h>

#include "sim/predictor.h"
#include "sim/tlb_sim.h"

namespace wrl {
namespace {

TraceRef UserLoad(uint32_t addr, uint8_t pid = 1) {
  return {TraceRef::kLoad, addr, 4, pid, false, false};
}
TraceRef UserFetch(uint32_t addr, uint8_t pid = 1) {
  return {TraceRef::kIfetch, addr, 4, pid, false, false};
}

TEST(TlbSimulator, FirstTouchMissesOnly) {
  TlbSimulator tlb;
  EXPECT_TRUE(tlb.OnRef(UserLoad(0x00400000)));
  EXPECT_FALSE(tlb.OnRef(UserLoad(0x00400010)));
  EXPECT_FALSE(tlb.OnRef(UserLoad(0x00400ffc)));
  EXPECT_TRUE(tlb.OnRef(UserLoad(0x00401000)));
  EXPECT_EQ(tlb.stats().utlb_misses, 2u);
}

TEST(TlbSimulator, UnmappedSegmentsBypass) {
  TlbSimulator tlb;
  EXPECT_FALSE(tlb.OnRef({TraceRef::kLoad, 0x80123456, 4, kKernelPid, true, false}));
  EXPECT_FALSE(tlb.OnRef({TraceRef::kLoad, 0xa0000010, 4, kKernelPid, true, false}));
  EXPECT_EQ(tlb.stats().utlb_misses, 0u);
}

TEST(TlbSimulator, Kseg2CountsAsKtlb) {
  TlbSimulator tlb;
  tlb.OnRef({TraceRef::kLoad, 0xc0200000, 4, kKernelPid, true, false});
  EXPECT_EQ(tlb.stats().ktlb_misses, 1u);
  tlb.OnRef({TraceRef::kLoad, 0xc0200100, 4, kKernelPid, true, false});
  EXPECT_EQ(tlb.stats().ktlb_misses, 1u);  // Same page: now cached.
}

TEST(TlbSimulator, AsidsIsolateProcesses) {
  TlbSimulator tlb;
  EXPECT_TRUE(tlb.OnRef(UserLoad(0x00400000, 1)));
  tlb.OnRef(UserFetch(0x10000000, 1));  // Advance the replacement counter so
  tlb.OnRef(UserFetch(0x10000004, 1));  // the next refill picks another slot.
  EXPECT_TRUE(tlb.OnRef(UserLoad(0x00400000, 2)));  // Other ASID misses too.
  tlb.OnRef(UserFetch(0x10000008, 1));
  EXPECT_FALSE(tlb.OnRef(UserLoad(0x00400000, 1)));
  EXPECT_FALSE(tlb.OnRef(UserLoad(0x00400000, 2)));
}

TEST(TlbSimulator, CapacityEvictions) {
  TlbSimulator tlb;
  // Touch far more pages than the 64 entries hold, twice.
  for (int round = 0; round < 2; ++round) {
    for (uint32_t p = 0; p < 256; ++p) {
      tlb.OnRef(UserLoad(0x00400000 + p * kPageBytes));
      tlb.OnRef(UserFetch(0x10000000));  // Advance the random counter.
    }
  }
  // Round 2 must miss heavily again (working set >> capacity).
  EXPECT_GT(tlb.stats().utlb_misses, 300u);
}

TEST(TlbSimulator, SynthesizesHandlerRefs) {
  TlbSimulator tlb;
  std::vector<TraceRef> synth;
  RefFnSink sink([&](const TraceRef& r) { synth.push_back(r); });
  tlb.SetSynthesizedSink(&sink);
  tlb.OnRef(UserLoad(0x00400000, 3));
  ASSERT_EQ(synth.size(), TlbSimulator::kHandlerInstructions + 1u);
  for (unsigned i = 0; i < TlbSimulator::kHandlerInstructions; ++i) {
    EXPECT_EQ(synth[i].kind, TraceRef::kIfetch);
    EXPECT_EQ(synth[i].addr, kVecUtlbMiss + 4 * i);
  }
  const TraceRef& pte = synth.back();
  EXPECT_EQ(pte.kind, TraceRef::kLoad);
  // PTE address: kseg2 + pid*2MB + vpn*4.
  EXPECT_EQ(pte.addr, 0xc0000000u + (3u << 21) + ((0x00400000u >> 12) << 2));
}

TEST(Predictor, CountsAndFormula) {
  PredictorConfig config;
  config.dilation = 15.0;
  config.page_map = [](uint32_t, uint32_t vpn) { return vpn; };  // Identity.
  TraceDrivenSimulator sim(config);
  // 10 plain instructions + 2 idle instructions.
  for (int i = 0; i < 10; ++i) {
    sim.OnRef({TraceRef::kIfetch, 0x00400000u + 4 * i, 4, 1, false, false});
  }
  for (int i = 0; i < 2; ++i) {
    sim.OnRef({TraceRef::kIfetch, 0x80001000u + 4 * i, 4, kKernelPid, true, true});
  }
  Prediction p = sim.Finish();
  EXPECT_EQ(p.instructions, 12u);
  EXPECT_EQ(p.idle_instructions, 2u);
  EXPECT_EQ(p.user_instructions, 10u);
  // predicted = (12-2) + memstalls + 0 + 2*15
  EXPECT_DOUBLE_EQ(p.PredictedCycles(),
                   10.0 + static_cast<double>(p.mem_stall_cycles) + 30.0);
}

TEST(Predictor, ArithStallsFromTextImage) {
  Executable exe;
  exe.text_base = 0x00400000;
  // mult, then addu.
  uint32_t mult = EncodeRType(Op::kMult, kT0, kT1, 0, 0);
  uint32_t addu = EncodeRType(Op::kAddu, kT0, kT1, kT2, 0);
  for (uint32_t w : {mult, addu}) {
    for (int i = 0; i < 4; ++i) {
      exe.text.push_back(static_cast<uint8_t>(w >> (8 * i)));
    }
  }
  PredictorConfig config;
  config.page_map = [](uint32_t, uint32_t vpn) { return vpn; };
  TraceDrivenSimulator sim(config);
  sim.AddTextImage(exe);
  sim.OnRef({TraceRef::kIfetch, 0x00400000, 4, 1, false, false});
  sim.OnRef({TraceRef::kIfetch, 0x00400004, 4, 1, false, false});
  Prediction p = sim.Finish();
  EXPECT_EQ(p.arith_stall_cycles, ArithStallCycles(Op::kMult));
}

TEST(Predictor, PageMapDrivesPhysicalIndexing) {
  // Two VPNs that collide in the cache only under one of two mappings.
  MemSysConfig small;
  small.dcache = {8192, 16};  // 2-page cache: frame parity selects the half.
  auto run = [&](bool collide) {
    PredictorConfig config;
    config.memsys = small;
    // Colliding mapping: distinct frames with equal cache index (0x100 and
    // 0x102 both land in the even half); benign mapping: adjacent frames.
    config.page_map = [collide](uint32_t, uint32_t vpn) {
      return collide ? ((vpn & 1) ? 0x102u : 0x100u) : 0x100u + (vpn & 1);
    };
    TraceDrivenSimulator sim(config);
    // Pre-warm the TLB (with the replacement counter advancing) so the
    // measurement loop sees pure cache behavior, not synthesized refills.
    sim.OnRef(UserLoad(0x00400000));
    sim.OnRef(UserFetch(0x10000000));
    sim.OnRef(UserFetch(0x10000004));
    sim.OnRef(UserLoad(0x00401000));
    uint64_t warm = sim.Finish().memsys_stats.dcache_misses;
    for (int i = 0; i < 50; ++i) {
      sim.OnRef(UserLoad(0x00400000));
      sim.OnRef(UserLoad(0x00401000));
    }
    return sim.Finish().memsys_stats.dcache_misses - warm;
  };
  EXPECT_GT(run(true), 3 * (run(false) + 1));
}

TEST(Predictor, SynthesizedHandlerRefsAreSimulated) {
  PredictorConfig config;
  config.page_map = [](uint32_t, uint32_t vpn) { return vpn; };
  TraceDrivenSimulator sim(config);
  sim.OnRef(UserLoad(0x00400000));  // Miss -> synthesizes handler refs.
  Prediction p = sim.Finish();
  EXPECT_EQ(p.synthesized_refs, TlbSimulator::kHandlerInstructions + 1u);
  EXPECT_EQ(p.utlb_misses, 1u);
  // The handler fetches hit the instruction cache path.
  EXPECT_GE(p.memsys_stats.inst_fetches, TlbSimulator::kHandlerInstructions);
}

TEST(Predictor, KernelUserCpiSplit) {
  PredictorConfig config;
  config.page_map = [](uint32_t, uint32_t vpn) { return vpn; };
  TraceDrivenSimulator sim(config);
  for (int i = 0; i < 100; ++i) {
    sim.OnRef({TraceRef::kIfetch, 0x00400000u + 4 * (i % 4), 4, 1, false, false});
  }
  for (int i = 0; i < 100; ++i) {
    // Kernel instructions spread over many lines: worse locality.
    sim.OnRef({TraceRef::kIfetch, 0x80000000u + 64 * i, 4, kKernelPid, true, false});
  }
  Prediction p = sim.Finish();
  EXPECT_EQ(p.user_instructions, 100u);
  EXPECT_EQ(p.kernel_instructions, 100u);
  EXPECT_GT(p.KernelCpi(), p.UserCpi());
}

}  // namespace
}  // namespace wrl
