#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "isa/isa.h"
#include "obj/object_file.h"
#include "support/error.h"

namespace wrl {
namespace {

TEST(Linker, SingleObjectLayout) {
  ObjectFile obj = Assemble("a.s", R"(
        .globl _start
_start: nop
        nop
        .data
d:      .word 7
        .bss
b:      .space 64
)");
  LinkOptions options;
  options.text_base = 0x00400000;
  Executable exe = Link({obj}, options);
  EXPECT_EQ(exe.text_base, 0x00400000u);
  EXPECT_EQ(exe.text.size(), 8u);
  EXPECT_EQ(exe.data_base, 0x00401000u);  // Page-aligned after text.
  EXPECT_EQ(exe.entry, 0x00400000u);
  EXPECT_EQ(exe.bss_size, 64u);
  EXPECT_GE(exe.bss_base, exe.DataEnd());
}

TEST(Linker, CrossObjectSymbolResolution) {
  ObjectFile a = Assemble("a.s", R"(
        .globl _start
_start: jal helper
        nop
loop:   b loop
        nop
)");
  ObjectFile b = Assemble("b.s", R"(
        .globl helper
helper: jr $ra
        nop
)");
  Executable exe = Link({a, b}, {});
  uint32_t helper_addr = exe.SymbolAddress("helper");
  EXPECT_EQ(helper_addr, exe.text_base + 16u);  // After a.s's 4 words.
  // The jal's target field must point at helper.
  uint32_t jal_word = exe.text[0] | (uint32_t{exe.text[1]} << 8) | (uint32_t{exe.text[2]} << 16) |
                      (uint32_t{exe.text[3]} << 24);
  Inst jal = Decode(jal_word);
  EXPECT_EQ(jal.op, Op::kJal);
  EXPECT_EQ(JumpTarget(exe.text_base, jal.target), helper_addr);
}

TEST(Linker, HiLoRelocation) {
  ObjectFile obj = Assemble("a.s", R"(
        .globl _start
        .globl buffer
_start: la $a0, buffer
        .data
        .space 12
buffer: .word 0
)");
  LinkOptions options;
  options.text_base = 0x80020000;
  Executable exe = Link({obj}, options);
  uint32_t buffer_addr = exe.SymbolAddress("buffer");
  Inst lui = Decode(exe.text[0] | (uint32_t{exe.text[1]} << 8) | (uint32_t{exe.text[2]} << 16) |
                    (uint32_t{exe.text[3]} << 24));
  Inst ori = Decode(exe.text[4] | (uint32_t{exe.text[5]} << 8) | (uint32_t{exe.text[6]} << 16) |
                    (uint32_t{exe.text[7]} << 24));
  EXPECT_EQ(lui.op, Op::kLui);
  EXPECT_EQ(ori.op, Op::kOri);
  uint32_t materialized = (static_cast<uint32_t>(static_cast<uint16_t>(lui.imm)) << 16) |
                          static_cast<uint16_t>(ori.imm);
  EXPECT_EQ(materialized, buffer_addr);
}

TEST(Linker, Word32DataRelocation) {
  ObjectFile obj = Assemble("a.s", R"(
        .globl _start
_start: nop
        .data
ptr:    .word _start+8
)");
  Executable exe = Link({obj}, {});
  uint32_t word = exe.data[0] | (uint32_t{exe.data[1]} << 8) | (uint32_t{exe.data[2]} << 16) |
                  (uint32_t{exe.data[3]} << 24);
  EXPECT_EQ(word, exe.entry + 8);
}

TEST(Linker, UndefinedSymbolFails) {
  ObjectFile obj = Assemble("a.s", ".globl _start\n_start: jal missing\nnop\n");
  EXPECT_THROW(Link({obj}, {}), Error);
}

TEST(Linker, DuplicateGlobalFails) {
  ObjectFile a = Assemble("a.s", ".globl f\nf: nop\n");
  ObjectFile b = Assemble("b.s", ".globl f\nf: nop\n");
  ObjectFile main = Assemble("m.s", ".globl _start\n_start: nop\n");
  EXPECT_THROW(Link({main, a, b}, {}), Error);
}

TEST(Linker, LocalSymbolsDoNotCollide) {
  ObjectFile a = Assemble("a.s", ".globl _start\n_start: b spin\nnop\nspin: b spin\nnop\n");
  ObjectFile b = Assemble("b.s", "spin: b spin\nnop\n");
  EXPECT_NO_THROW(Link({a, b}, {}));
}

TEST(Linker, MissingEntrySymbolFails) {
  ObjectFile obj = Assemble("a.s", "f: nop\n");
  EXPECT_THROW(Link({obj}, {}), Error);
}

TEST(Linker, BlockAnnotationsBecomeAbsolute) {
  ObjectFile a = Assemble("a.s", ".globl _start\n_start: nop\njr $ra\nnop\n");
  ObjectFile b = Assemble("b.s", "g: nop\n");
  Executable exe = Link({a, b}, {});
  ASSERT_GE(exe.blocks.size(), 2u);
  EXPECT_EQ(exe.blocks.front().offset, exe.text_base);
  // b.s's first block sits after a.s's 3 words.
  bool found = false;
  for (const BlockAnnotation& blk : exe.blocks) {
    if (blk.offset == exe.text_base + 12) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Linker, JumpAcrossRegionBoundaryFails) {
  // A jump from low text to a kseg0 target crosses the 256MB region.
  ObjectFile a = Assemble("a.s", ".globl _start\n_start: j far\nnop\n");
  ObjectFile b = Assemble("b.s", ".globl far\nfar: nop\n");
  LinkOptions low;
  low.text_base = 0x00400000;
  EXPECT_NO_THROW(Link({a, b}, low));
  // Force an absolute symbol far away via kAbs is not expressible in
  // assembly; instead link at a base whose +4 lands in a different region
  // than the target would be — covered implicitly by the in-range case.
}

}  // namespace
}  // namespace wrl
