// Tests for the static-analysis framework (src/dataflow): the backward
// gen/kill solver against a brute-force path-reachability oracle on
// randomized small CFGs, hand-computed interprocedural liveness (callee
// summaries, CTI+slot pairing, the conservative joins), and the static
// dilation predictor's bookkeeping.
#include "dataflow/dataflow.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "asm/assembler.h"
#include "dataflow/dilation.h"
#include "epoxie/epoxie.h"

namespace wrl {
namespace {

// MIPS register numbers for readable bit assertions.
constexpr unsigned kV0 = 2, kV1 = 3, kA0 = 4, kA1 = 5, kA2 = 6;
constexpr unsigned kT0 = 8, kT1 = 9, kS0 = 16, kRa = 31;

bool Has(uint32_t mask, unsigned reg) { return (mask & (1u << reg)) != 0; }

// ---- Solver vs brute force ---------------------------------------------
//
// The solver's equation system is in[n] = gen[n] ∪ (out[n] ∖ kill[n]) with
// out[n] = top_out[n] ∪ ⋃ in[succ].  Unrolled per register that is plain
// reachability: r ∈ in[n] iff some path n = v0 → v1 → … → vk has
// r ∉ kill[vi] for every i < k and ends at a node where r ∈ gen[vk], or
// r ∈ top_out[vk] with r ∉ kill[vk].  The oracle walks exactly that,
// register by register, with a visited set — no fixpoint, no sharing with
// the worklist solver.
bool OracleLive(const std::vector<DfNode>& nodes, uint32_t start, unsigned reg) {
  const uint32_t bit = 1u << reg;
  std::vector<char> visited(nodes.size(), 0);
  std::vector<uint32_t> stack = {start};
  while (!stack.empty()) {
    uint32_t n = stack.back();
    stack.pop_back();
    if (visited[n]) continue;
    visited[n] = 1;
    const DfNode& node = nodes[n];
    if (node.gen & bit) return true;
    if (node.kill & bit) continue;  // Killed: neither top_out nor succs count.
    if (node.top_out & bit) return true;
    for (uint32_t s : node.succ) {
      if (s != kNoDfNode && s < nodes.size() && !visited[s]) stack.push_back(s);
    }
  }
  return false;
}

TEST(SolveBackwardLiveness, HandComputedDiamond) {
  // 0 → {1,2} → 3; 3 has no successors but top_out = ALL (block exit).
  std::vector<DfNode> nodes(4);
  nodes[0].gen = 1u << kA0;
  nodes[0].kill = 1u << kV0;
  nodes[0].succ[0] = 1;
  nodes[0].succ[1] = 2;
  nodes[1].gen = 1u << kV0;  // Reads v0 — but 0 kills it first.
  nodes[1].kill = 1u << kT0;
  nodes[1].succ[0] = 3;
  nodes[2].kill = (1u << kT0) | (1u << kT1);
  nodes[2].succ[0] = 3;
  nodes[3].gen = 1u << kT1;
  nodes[3].top_out = kAllRegs;

  std::vector<uint32_t> in = SolveBackwardLiveness(nodes);
  // t1 flows through node 1 (which doesn't kill it) but not node 2.
  EXPECT_TRUE(Has(in[1], kT1));
  EXPECT_FALSE(Has(in[2], kT1));
  EXPECT_TRUE(Has(in[0], kT1));  // Via the node-1 arm.
  // v0 is live into node 1 but killed by node 0.
  EXPECT_TRUE(Has(in[1], kV0));
  EXPECT_FALSE(Has(in[0], kV0));
  // t0 is killed on both arms and node 3's top_out can't resurrect it
  // upstream of the kills.
  EXPECT_TRUE(Has(in[3], kT0));  // top_out = ALL.
  EXPECT_FALSE(Has(in[0], kT0));
  // a0 is read immediately.
  EXPECT_TRUE(Has(in[0], kA0));
}

TEST(SolveBackwardLiveness, MatchesOracleOnRandomCfgs) {
  // Seeded: the same graphs every run.  Small graphs, dense masks over 8
  // registers, cycles and dead ends included.
  std::mt19937 rng(0x5eed);
  for (int trial = 0; trial < 200; ++trial) {
    const uint32_t n = 2 + rng() % 11;
    std::vector<DfNode> nodes(n);
    for (DfNode& node : nodes) {
      node.gen = rng() & 0xffu;
      node.kill = rng() & 0xffu;
      switch (rng() % 4) {
        case 0: node.top_out = 0; break;
        case 1: node.top_out = kAllRegs; break;
        default: node.top_out = rng() & 0xffu; break;
      }
      for (uint32_t& s : node.succ) {
        s = (rng() % 3 == 0) ? kNoDfNode : rng() % n;
      }
    }
    std::vector<uint32_t> in = SolveBackwardLiveness(nodes);
    ASSERT_EQ(in.size(), nodes.size());
    for (uint32_t i = 0; i < n; ++i) {
      uint32_t expect = 0;
      for (unsigned reg = 0; reg < 32; ++reg) {
        if (OracleLive(nodes, i, reg)) expect |= 1u << reg;
      }
      ASSERT_EQ(in[i], expect) << "trial " << trial << " node " << i;
    }
  }
}

// ---- Interprocedural liveness on assembled objects ----------------------

LivenessInfo Analyze(const char* src) { return ComputeLiveness(Assemble("t.s", src)); }

TEST(ComputeLiveness, StraightLineKillsBeforeUse) {
  LivenessInfo live = Analyze(R"(
        .globl main
main:   addiu $t0, $zero, 5
        addu  $v0, $t0, $t0
        jr    $ra
        nop
)");
  // t0 and v0 are written before any read on every path from word 0; the
  // `jr $ra` return conservatively assumes everything else live.
  EXPECT_FALSE(Has(live.LiveIn(0), kT0));
  EXPECT_FALSE(Has(live.LiveIn(0), kV0));
  EXPECT_TRUE(Has(live.LiveIn(0), kRa));
  EXPECT_TRUE(Has(live.LiveIn(0), kS0));
  // At word 1 the addiu result is about to be read.
  EXPECT_TRUE(Has(live.LiveIn(1), kT0));
  EXPECT_FALSE(Has(live.LiveIn(1), kV0));
}

TEST(ComputeLiveness, CtiAndSlotFormOneUnit) {
  LivenessInfo live = Analyze(R"(
        .globl main
main:   jr    $ra
        addu  $v0, $a0, $a1
)");
  // pair-in = cti-use ∪ (slot-in ∖ cti-def): the slot's operands are live
  // at the pair even though the jr itself only reads $ra; the slot's def
  // (v0) is dead because it happens after every upstream point.
  uint32_t in = live.LiveIn(0);
  EXPECT_TRUE(Has(in, kRa));
  EXPECT_TRUE(Has(in, kA0));
  EXPECT_TRUE(Has(in, kA1));
  EXPECT_FALSE(Has(in, kV0));
}

TEST(ComputeLiveness, BranchJoinsBothArms) {
  LivenessInfo live = Analyze(R"(
        .globl main
main:   beq   $a0, $zero, skip
        nop
        addu  $v0, $a1, $zero
        jr    $ra
        nop
skip:   addu  $v0, $a2, $zero
        jr    $ra
        nop
)");
  uint32_t in = live.LiveIn(0);
  EXPECT_TRUE(Has(in, kA0));  // The branch condition.
  EXPECT_TRUE(Has(in, kA1));  // Fall-through arm.
  EXPECT_TRUE(Has(in, kA2));  // Taken arm.
  EXPECT_FALSE(Has(in, kV0));  // Defined on both arms before any read.
}

TEST(ComputeLiveness, JumpTableAndTrapAssumeAllLive) {
  LivenessInfo table = Analyze(R"(
        .globl main
main:   jr    $t0
        nop
)");
  EXPECT_EQ(table.LiveIn(0), kAllRegs);

  LivenessInfo trap = Analyze(R"(
        .globl main
main:   syscall
        jr    $ra
        nop
)");
  EXPECT_EQ(trap.LiveIn(0), kAllRegs);
}

TEST(ComputeLiveness, LocalCalleeSummary) {
  const char* src = R"(
        .globl main
        .globl callee
main:   jal   callee
        nop
        addu  $s0, $v0, $zero
        jr    $ra
        nop
callee: addu  $v0, $a0, $a0
        jr    $ra
        nop
)";
  ObjectFile obj = Assemble("t.s", src);
  LivenessInfo live = ComputeLiveness(obj);

  // callee starts at word 5 (main is 5 words).
  auto it = live.summaries.find(5);
  ASSERT_NE(it, live.summaries.end());
  const CallSummary& sum = it->second;
  EXPECT_TRUE(Has(sum.may_use, kA0));   // Read before any write.
  EXPECT_FALSE(Has(sum.may_use, kV0));  // Written first.
  EXPECT_FALSE(Has(sum.may_use, kT0));  // Never touched.
  EXPECT_TRUE(Has(sum.must_def, kV0));  // Defined on the only path.
  EXPECT_FALSE(Has(sum.must_def, kA0));
  EXPECT_FALSE(Has(sum.must_def, kT0));

  // At the call site the summary applies: a0 is live into the callee; v0
  // and s0 are dead (callee must-defines v0, s0 is written before read at
  // the continuation); jal itself kills ra.
  uint32_t in = live.LiveIn(0);
  EXPECT_TRUE(Has(in, kA0));
  EXPECT_FALSE(Has(in, kV0));
  EXPECT_FALSE(Has(in, kS0));
  EXPECT_FALSE(Has(in, kRa));
  // s1..s7 survive untouched through call and continuation to the final
  // conservative return.
  EXPECT_TRUE(Has(in, kS0 + 1));
}

TEST(ComputeLiveness, ExternalCalleeIsConservative) {
  LivenessInfo live = Analyze(R"(
        .globl main
main:   jal   printf
        nop
        jr    $ra
        nop
)");
  // Unknown callee: (U, D) = (ALL, ∅), minus jal's own kill of $ra.
  uint32_t in = live.LiveIn(0);
  EXPECT_TRUE(Has(in, kV0));
  EXPECT_TRUE(Has(in, kA0));
  EXPECT_TRUE(Has(in, kT0));
  EXPECT_FALSE(Has(in, kRa));  // jal writes ra before the callee could read it.
}

TEST(ComputeLiveness, RecursiveSummaryConverges) {
  // Self-recursive callee: the optimistic (U = ∅, D = ALL) start must
  // iterate to the correct fixpoint, not stick at the optimistic value.
  const char* src = R"(
        .globl main
        .globl down
main:   jal   down
        nop
        jr    $ra
        nop
down:   beq   $a0, $zero, done
        nop
        addiu $sp, $sp, -8
        sw    $ra, 4($sp)
        jal   down
        addiu $a0, $a0, -1
        lw    $ra, 4($sp)
        addiu $sp, $sp, 8
done:   addu  $v0, $a0, $zero
        jr    $ra
        nop
)";
  ObjectFile obj = Assemble("t.s", src);
  LivenessInfo live = ComputeLiveness(obj);
  auto it = live.summaries.find(4);  // `down` at word 4.
  ASSERT_NE(it, live.summaries.end());
  EXPECT_TRUE(Has(it->second.may_use, kA0));
  EXPECT_TRUE(Has(it->second.must_def, kV0));  // Every path ends in `done`.
  EXPECT_FALSE(Has(it->second.must_def, kT0));
}

// ---- Static dilation prediction -----------------------------------------

TEST(PredictDilation, AccountsEveryBlockAndBucketsByProcedure) {
  const char* src = R"(
        .globl main
        .globl helper
main:   addiu $sp, $sp, -8
        sw    $ra, 4($sp)
        jal   helper
        nop
        lw    $ra, 4($sp)
        jr    $ra
        addiu $sp, $sp, 8
helper: sw    $a0, 0($sp)
        jr    $ra
        lw    $v0, 0($sp)
)";
  ObjectFile obj = Assemble("t.s", src);
  EpoxieConfig config;
  InstrumentResult res = Instrument(obj, config);
  DilationPrediction pred = PredictDilation(obj, res);

  ASSERT_EQ(pred.blocks.size(), res.blocks.size());
  uint64_t orig = 0, instr = 0, mem = 0;
  for (const BlockStatic& bs : res.blocks) {
    orig += bs.num_insts;
    instr += bs.instr_words;
    mem += bs.mem_ops.size();
  }
  EXPECT_EQ(pred.orig_insts, orig);
  EXPECT_EQ(pred.instr_words, instr);
  EXPECT_EQ(pred.mem_ops, mem);
  EXPECT_GT(pred.Growth(), 1.0);

  // Two procedures, and the per-proc rollup re-sums to the totals.
  ASSERT_EQ(pred.procs.size(), 2u);
  EXPECT_EQ(pred.procs[0].name, "main");
  EXPECT_EQ(pred.procs[1].name, "helper");
  uint64_t proc_insts = 0, proc_words = 0;
  for (const ProcDilation& p : pred.procs) {
    proc_insts += p.orig_insts;
    proc_words += p.instr_words;
  }
  EXPECT_EQ(proc_insts, pred.orig_insts);
  EXPECT_EQ(proc_words, pred.instr_words);
}

}  // namespace
}  // namespace wrl
